// fav — command-line front end to the fault-attack vulnerability framework.
//
//   fav info                             design + benchmark overview
//   fav characterize                     register characterization table
//   fav evaluate   [options]             SSF estimation
//   fav harden     [options]             critical cells + hardening report
//   fav export-verilog [--out FILE]      structural Verilog of the SoC
//   fav trace      [options] --out FILE  VCD of the golden run
//
// Common options:
//   --benchmark write|read|exec|dma   (default write)
//   --samples N                   (default 3000)
//   --seed S                      (default 2017)
//   --strategy random|cone|importance   (default importance)
//   --t-range N                   (default 50)
//   --radius R                    (default 1.5)
//   --coverage C                  (default 0.95, harden only)
//   --threads N                   (default 1; 0 = all hardware threads.
//                                  Estimates are bitwise-identical for every
//                                  N — see DESIGN.md, parallel engine)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>

#include "core/framework.h"
#include "core/hardening.h"
#include "netlist/verilog.h"
#include "rtl/vcd.h"

using namespace fav;

namespace {

struct Options {
  std::string command;
  std::string benchmark = "write";
  std::string strategy = "importance";
  std::string out;
  std::size_t samples = 3000;
  std::uint64_t seed = 2017;
  int t_range = 50;
  double radius = 1.5;
  double coverage = 0.95;
  std::size_t threads = 1;

  core::FrameworkConfig framework_config() const {
    core::FrameworkConfig cfg;
    cfg.evaluator.threads = threads;
    return cfg;
  }
};

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg != nullptr) std::fprintf(stderr, "error: %s\n\n", msg);
  std::fprintf(stderr,
               "usage: fav <info|characterize|evaluate|harden|export-verilog|"
               "trace> [options]\n"
               "options: --benchmark write|read|exec|dma  --samples N  --seed S\n"
               "         --strategy random|cone|importance  --t-range N\n"
               "         --radius R  --coverage C  --out FILE\n"
               "         --threads N (0 = all hardware threads)\n");
  std::exit(2);
}

Options parse(int argc, char** argv) {
  if (argc < 2) usage();
  Options o;
  o.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--benchmark") {
      o.benchmark = value();
    } else if (arg == "--samples") {
      o.samples = std::stoul(value());
    } else if (arg == "--seed") {
      o.seed = std::stoull(value());
    } else if (arg == "--strategy") {
      o.strategy = value();
    } else if (arg == "--t-range") {
      o.t_range = std::stoi(value());
    } else if (arg == "--radius") {
      o.radius = std::stod(value());
    } else if (arg == "--coverage") {
      o.coverage = std::stod(value());
    } else if (arg == "--threads") {
      o.threads = std::stoul(value());
    } else if (arg == "--out") {
      o.out = value();
    } else {
      usage(("unknown option " + arg).c_str());
    }
  }
  return o;
}

soc::SecurityBenchmark pick_benchmark(const std::string& name) {
  if (name == "write") return soc::make_illegal_write_benchmark();
  if (name == "read") return soc::make_illegal_read_benchmark();
  if (name == "exec") return soc::make_illegal_exec_benchmark();
  if (name == "dma") return soc::make_dma_exfiltration_benchmark();
  usage(("unknown benchmark '" + name + "'").c_str());
}

int cmd_info(const Options& o) {
  core::FaultAttackEvaluator fw(pick_benchmark(o.benchmark));
  const auto& nl = fw.soc().netlist();
  std::printf("MCU16 design\n");
  std::printf("  gates            : %zu\n", nl.gate_count());
  std::printf("  registers (DFFs) : %zu\n", nl.dffs().size());
  std::printf("  logic levels     : %d\n", nl.max_level());
  std::printf("  clock period     : %.1f (critical path %.1f)\n",
              fw.injector().timing().clock_period(),
              fw.injector().timing().critical_path());
  std::printf("  placed cells     : %zu (%.0f x %.0f)\n",
              fw.placement().placed_nodes().size(), fw.placement().width(),
              fw.placement().height());
  std::printf("benchmark '%s'\n", fw.benchmark().name.c_str());
  std::printf("  golden run       : %llu cycles\n",
              static_cast<unsigned long long>(fw.golden().length()));
  std::printf("  target cycle Tt  : %llu\n",
              static_cast<unsigned long long>(fw.target_cycle()));
  std::printf("  memory-type bits : %zu / %d\n",
              fw.characterization().memory_type_bits().size(),
              rtl::Machine::reg_map().total_bits());
  return 0;
}

int cmd_characterize(const Options& o) {
  core::FaultAttackEvaluator fw(pick_benchmark(o.benchmark));
  const auto& map = rtl::Machine::reg_map();
  const auto& charac = fw.characterization();
  std::printf("%-14s %10s %14s %10s\n", "field", "lifetime", "contamination",
              "mem-type");
  for (std::size_t fi = 0; fi < map.fields().size(); ++fi) {
    const auto& f = map.fields()[fi];
    double lt = 0, ct = 0;
    int mem = 0;
    for (int b = 0; b < f.width; ++b) {
      lt += charac.bit(f.offset + b).avg_lifetime;
      ct += charac.bit(f.offset + b).avg_contamination;
      mem += charac.is_memory_type(f.offset + b) ? 1 : 0;
    }
    std::printf("%-14s %10.1f %14.2f %7d/%d\n", f.name.c_str(), lt / f.width,
                ct / f.width, mem, f.width);
  }
  return 0;
}

mc::SsfResult run_eval(core::FaultAttackEvaluator& fw, const Options& o) {
  const auto attack = fw.subblock_attack_model(o.radius, o.t_range);
  std::unique_ptr<mc::Sampler> sampler;
  if (o.strategy == "random") {
    sampler = fw.make_random_sampler(attack);
  } else if (o.strategy == "cone") {
    sampler = fw.make_cone_sampler(attack);
  } else if (o.strategy == "importance") {
    sampler = fw.make_importance_sampler(attack);
  } else {
    usage(("unknown strategy '" + o.strategy + "'").c_str());
  }
  Rng rng(o.seed);
  return fw.evaluator().run(*sampler, rng, o.samples);
}

int cmd_evaluate(const Options& o) {
  core::FaultAttackEvaluator fw(pick_benchmark(o.benchmark),
                                o.framework_config());
  const auto res = run_eval(fw, o);
  std::printf("benchmark  : %s\n", fw.benchmark().name.c_str());
  std::printf("strategy   : %s (n=%zu, seed=%llu)\n", o.strategy.c_str(),
              o.samples, static_cast<unsigned long long>(o.seed));
  std::printf("SSF        : %.6f\n", res.ssf());
  std::printf("std error  : %.6f\n", res.stats.standard_error());
  std::printf("variance   : %.3e\n", res.sample_variance());
  std::printf("successes  : %zu\n", res.successes);
  std::printf("paths      : %zu masked / %zu analytical / %zu rtl\n",
              res.masked, res.analytical, res.rtl);
  const auto& map = rtl::Machine::reg_map();
  const auto fields = core::select_critical_fields(res, 0.95);
  std::printf("critical   :");
  for (const int f : fields) std::printf(" %s", map.field(f).name.c_str());
  std::printf("\n");
  return 0;
}

int cmd_harden(const Options& o) {
  core::FaultAttackEvaluator fw(pick_benchmark(o.benchmark),
                                o.framework_config());
  const auto res = run_eval(fw, o);
  const auto cells = core::select_critical_bits(res, o.coverage);
  Rng rng(o.seed + 1);
  const auto report = core::evaluate_hardening(fw.evaluator(), fw.soc(), res,
                                               cells, {}, rng);
  const auto& map = rtl::Machine::reg_map();
  std::printf("baseline SSF : %.6f\n", report.base_ssf);
  std::printf("hardened SSF : %.6f  (%.1fx better)\n", report.hardened_ssf,
              report.improvement());
  std::printf("cells        : %zu of %zu (%.1f%%)\n",
              report.protected_bits.size(), report.total_register_bits,
              100.0 * report.protected_register_fraction());
  std::printf("area overhead: %.2f%%\n", 100.0 * report.area_overhead);
  std::printf("hardened     :");
  for (const int bit : report.protected_bits) {
    const auto [fi, b] = map.locate(bit);
    std::printf(" %s[%d]", map.field(fi).name.c_str(), b);
  }
  std::printf("\n");
  return 0;
}

int cmd_export_verilog(const Options& o) {
  const soc::SocNetlist soc;
  if (o.out.empty()) {
    netlist::write_verilog(soc.netlist(), std::cout, "mcu16");
  } else {
    std::ofstream f(o.out);
    if (!f) usage(("cannot open " + o.out).c_str());
    netlist::write_verilog(soc.netlist(), f, "mcu16");
    std::printf("wrote %s\n", o.out.c_str());
  }
  return 0;
}

int cmd_trace(const Options& o) {
  if (o.out.empty()) usage("trace requires --out FILE");
  const soc::SecurityBenchmark bench = pick_benchmark(o.benchmark);
  std::ofstream f(o.out);
  if (!f) usage(("cannot open " + o.out).c_str());
  rtl::VcdWriter vcd(f);
  rtl::Machine m(bench.program);
  while (!m.halted() && m.cycle() < bench.max_cycles) {
    vcd.sample(m.cycle(), m.state());
    m.step();
  }
  vcd.sample(m.cycle(), m.state());
  std::printf("wrote %s (%zu samples)\n", o.out.c_str(),
              vcd.samples_written());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options o = parse(argc, argv);
    if (o.command == "info") return cmd_info(o);
    if (o.command == "characterize") return cmd_characterize(o);
    if (o.command == "evaluate") return cmd_evaluate(o);
    if (o.command == "harden") return cmd_harden(o);
    if (o.command == "export-verilog") return cmd_export_verilog(o);
    if (o.command == "trace") return cmd_trace(o);
    usage(("unknown command '" + o.command + "'").c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fav: %s\n", e.what());
    return 1;
  }
}
