// fav — command-line front end to the fault-attack vulnerability framework.
//
//   fav info                             design + benchmark overview
//   fav characterize                     register characterization table
//   fav evaluate   [options]             SSF estimation
//   fav harden     [options]             critical cells + hardening report
//   fav export-verilog [--out FILE]      structural Verilog of the SoC
//   fav trace      [options] --out FILE  VCD of the golden run
//   fav serve  --socket PATH [--max-campaigns N] [--max-queued N]
//              [--campaign-deadline-ms N] [--heartbeat-interval-ms N]
//              [--state-dir DIR] [--stats-out FILE]
//                                        long-running campaign daemon on a
//                                        Unix socket (see DESIGN.md §6k, §6m).
//                                        --state-dir enables the crash-
//                                        recovery ledger: campaigns accepted
//                                        before a daemon crash are re-run
//                                        (resuming their journal) on restart
//   fav submit --socket PATH [--idle-timeout-ms N] [--busy-retries N]
//              [--retry-backoff-ms N] [evaluate options]
//                                        run a campaign on a serving daemon;
//                                        prints the same stdout block and
//                                        writes the same run report as a
//                                        local `fav evaluate`. SIGINT/SIGTERM
//                                        cancels the served campaign (the
//                                        daemon stops it cooperatively and
//                                        ships the partial, resumable
//                                        report); a full queue is retried
//                                        with exponential backoff
//
// Common options:
//   --benchmark write|read|exec|dma   (default write)
//   --technique radiation|clock-glitch|voltage-glitch  (default radiation)
//   --samples N                   (default 3000)
//   --seed S                      (default 2017)
//   --strategy random|cone|importance   (default importance; for
//                                  clock-glitch and voltage-glitch all
//                                  strategies map to the technique's uniform
//                                  sampler)
//   --exhaustive                  evaluate only: sweep the technique's
//                                  entire enumerable fault space exactly
//                                  once instead of Monte Carlo sampling.
//                                  --samples/--strategy are ignored; the
//                                  result is the exact SSF with
//                                  coverage 1.0, bitwise-identical at every
//                                  --threads/--batch-lanes/--supervise
//                                  setting and across kill + --resume
//   --space-limit N               cap an --exhaustive sweep at the first N
//                                  enumeration indices (coverage < 1.0;
//                                  mainly for smoke tests)
//   --t-range N                   (default 50)
//   --radius R                    (default 1.5, radiation only)
//   --coverage C                  (default 0.95, harden only)
//   --record-capacity N           cap on kept per-sample records
//                                  (default 200000; 0 = unlimited)
//   --threads N                   (default 1; 0 = all hardware threads.
//                                  Estimates are bitwise-identical for every
//                                  N — see DESIGN.md, parallel engine)
//   --batch-lanes N               (default 64; 0/1 = scalar) word-parallel
//                                  lanes for same-injection-cycle samples.
//                                  Results are bitwise-identical for every
//                                  N — batching only changes throughput
//   --cycle-budget N              per-sample RTL cycle budget (0 = unlimited)
//   --deadline-ms N               per-sample wall-clock deadline (0 = none;
//                                  trades determinism for hang protection)
//   --journal DIR                 evaluate only: crash-safe shard journal
//   --resume                      replay the journal in --journal DIR and
//                                  continue from the first missing sample
//   --precharac-cache PATH        persist the pre-characterization bundle
//                                  (cones, signatures, lifetimes, potency) to
//                                  PATH and load it on later runs instead of
//                                  re-elaborating. The artifact is integrity
//                                  checked end to end; any mismatch falls
//                                  back to recompute-and-rewrite. Results are
//                                  bitwise-identical with and without the
//                                  cache. Forwarded to supervised workers,
//                                  which coordinate through PATH.lock
//   --no-precharac-cache          clear an earlier --precharac-cache
//   --supervise N                 evaluate only: run the campaign across N
//                                  worker *processes* (requires --journal).
//                                  Workers that crash or wedge are SIGKILLed
//                                  and restarted; samples that keep killing
//                                  workers are quarantined as failed records.
//                                  Estimates are bitwise-identical to the
//                                  single-process engine at every N.
//   --heartbeat-ms N              supervise only: per-sample liveness
//                                  deadline before a worker is presumed
//                                  wedged (default 30000)
//   --shard-size N                samples per journal shard: the flush /
//                                  commit granularity, and the per-worker
//                                  assignment size under --supervise
//                                  (default 256)
//   --metrics-out FILE            evaluate only: JSON run report (phase
//                                  timings, outcome-path counters, ESS)
//   --trace-out FILE              evaluate only: Chrome-trace events
//                                  (load in chrome://tracing or Perfetto)
//   --progress                    evaluate only: throttled stderr progress
//                                  (samples/s, running SSF +- CI, ESS)
//
// All flag values are validated strictly: unknown flags, non-numeric or
// out-of-range values exit with the usage message and status 2 instead of
// silently defaulting.
//
// Exit codes: 0 success, 1 runtime failure, 2 usage error, 3 campaign
// interrupted but resumable — SIGINT/SIGTERM, or the journal device filling
// up / failing mid-campaign (partial results journaled; rerun with --resume
// to continue).
//
// `--chaos-write-nth N` / `--chaos-fsync-nth N` are hidden test-only flags:
// they make the Nth low-level campaign file write (or fsync) in this process
// — and, when supervising, in every worker — fail with ENOSPC, driving the
// degraded-I/O paths deterministically (see util/io.h ChaosFile).
//
// `fav worker` is a hidden command spawned by `--supervise`; it speaks the
// supervisor pipe protocol on stdin/stdout (see mc/supervisor.h) and is not
// meant to be invoked by hand.
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <charconv>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <functional>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/framework.h"
#include "mc/serve.h"
#include "mc/supervisor.h"
#include "core/hardening.h"
#include "core/run_report.h"
#include "netlist/verilog.h"
#include "rtl/vcd.h"
#include "util/io.h"

using namespace fav;

namespace {

/// Graceful-stop flag set by SIGINT/SIGTERM: the engine (or supervisor)
/// finishes the in-flight chunk, flushes a partial run report marked
/// interrupted, and exits with code 3. The handler is installed with
/// SA_RESETHAND, so a second signal terminates immediately.
std::atomic<bool> g_stop{false};

void handle_stop_signal(int) { g_stop.store(true, std::memory_order_relaxed); }

void install_stop_handlers() {
  struct sigaction sa {};
  sa.sa_handler = handle_stop_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESETHAND;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
}

const char* g_argv0 = "fav";

struct Options {
  std::string command;
  std::string benchmark = "write";
  std::string technique = "radiation";
  std::string strategy = "importance";
  std::string out;
  std::string journal;
  std::string precharac_cache;
  std::string metrics_out;
  std::string trace_out;
  bool progress = false;
  bool resume = false;
  // Exhaustive sweep: enumerate the technique's bound fault space instead of
  // sampling (--samples/--strategy ignored; space_limit 0 = whole space).
  bool exhaustive = false;
  std::uint64_t space_limit = 0;
  std::size_t samples = 3000;
  std::uint64_t seed = 2017;
  int t_range = 50;
  double radius = 1.5;
  double coverage = 0.95;
  std::size_t threads = 1;
  std::size_t batch_lanes = 64;
  std::uint64_t cycle_budget = 0;
  std::uint64_t deadline_ms = 0;
  // Capped by default: a capacity-less 1e6+-sample campaign keeps every
  // record in memory (estimates and contribution maps are unaffected by the
  // cap — see EvaluatorConfig::record_capacity).
  std::size_t record_capacity = 200'000;
  // Multi-process supervisor (0 = in-process engine).
  std::size_t supervise = 0;
  std::uint64_t heartbeat_ms = 30000;
  std::size_t shard_size = 256;
  // Serving tier (`fav serve` / `fav submit`).
  std::string socket;
  std::size_t max_campaigns = 2;
  std::size_t max_queued = 16;
  std::uint64_t campaign_deadline_ms = 0;    // 0 = no deadline
  std::uint64_t heartbeat_interval_ms = 1000;  // 0 = heartbeats off
  std::string state_dir;   // serve: crash-recovery ledger lives here
  std::string stats_out;   // serve: JSON stats snapshot path
  // Hidden `fav worker` mode (spawned by the supervisor).
  std::size_t worker_id = 0;
  // Test-only chaos injection, forwarded to workers (see WorkerHeartbeat).
  std::uint64_t crash_after = 0;
  std::uint64_t crash_on = mc::kNoCrashIndex;
  // Test-only degraded-I/O injection: make the Nth physical file write /
  // fsync fail with ENOSPC (0 = off; see util/io.h ChaosFile).
  std::uint64_t chaos_write_nth = 0;
  std::uint64_t chaos_fsync_nth = 0;

  core::FrameworkConfig framework_config() const {
    core::FrameworkConfig cfg;
    cfg.technique = technique;
    cfg.mode = exhaustive ? "exhaustive" : "sampled";
    cfg.precharac_cache_path = precharac_cache;
    cfg.evaluator.threads = threads;
    cfg.evaluator.batch_lanes = batch_lanes;
    cfg.evaluator.cycle_budget = cycle_budget;
    cfg.evaluator.sample_deadline_ms = deadline_ms;
    cfg.evaluator.record_capacity = record_capacity;
    return cfg;
  }
};

/// Usage errors are exceptions, not exits: the serve daemon parses untrusted
/// request argv with the same parser as main(), and a bad request must fail
/// that one campaign (kError frame, exit code 2), never the daemon. main()
/// catches this, prints the usage text and exits 2 — the historical CLI
/// behavior.
struct UsageError {
  std::string message;
};

[[noreturn]] void usage(const char* msg = nullptr) {
  throw UsageError{msg != nullptr ? msg : ""};
}

void print_usage(const std::string& message) {
  if (!message.empty()) {
    std::fprintf(stderr, "error: %s\n\n", message.c_str());
  }
  std::fprintf(stderr,
               "usage: fav <info|characterize|evaluate|harden|export-verilog|"
               "trace|serve|submit> [options]\n"
               "options: --benchmark write|read|exec|dma  --samples N\n"
               "         --seed S\n"
               "         --technique radiation|clock-glitch|voltage-glitch\n"
               "         --strategy random|cone|importance  --t-range N\n"
               "         --exhaustive  --space-limit N\n"
               "                              (evaluate only: sweep the whole\n"
               "                               fault space exactly once)\n"
               "         --radius R  --coverage C  --out FILE\n"
               "         --record-capacity N (0 = unlimited)\n"
               "         --threads N (0 = all hardware threads)\n"
               "         --batch-lanes N (0/1 = scalar, default 64)\n"
               "         --cycle-budget N  --deadline-ms N (0 = unlimited)\n"
               "         --journal DIR  --resume (evaluate only)\n"
               "         --precharac-cache PATH  --no-precharac-cache\n"
               "                              (evaluate/harden: persist and\n"
               "                               reuse the pre-characterization\n"
               "                               bundle; integrity-checked)\n"
               "         --supervise N  --heartbeat-ms N\n"
               "         --shard-size N (evaluate only, needs --journal)\n"
               "         --metrics-out FILE  --trace-out FILE  --progress\n"
               "                              (evaluate only)\n"
               "         --socket PATH        (serve/submit: Unix socket)\n"
               "         --max-campaigns N    (serve: concurrent campaigns,\n"
               "                              default 2)\n"
               "         --max-queued N       (serve: admission queue depth,\n"
               "                              default 16; overflow is refused\n"
               "                              with a busy/retry-after frame)\n"
               "         --campaign-deadline-ms N\n"
               "                              (serve: stop campaigns that run\n"
               "                              longer than N ms; partial result\n"
               "                              is journaled and resumable)\n"
               "         --heartbeat-interval-ms N\n"
               "                              (serve: keep-alive cadence to\n"
               "                              clients, default 1000, 0 = off)\n"
               "         --state-dir DIR      (serve: crash-recovery ledger;\n"
               "                              interrupted campaigns re-run on\n"
               "                              restart, resuming their journal)\n"
               "         --stats-out FILE     (serve: JSON stats snapshot,\n"
               "                              atomically rewritten as\n"
               "                              campaigns finish)\n"
               "         --idle-timeout-ms N  (submit: fail if no frame from\n"
               "                              the daemon in N ms, default\n"
               "                              30000, 0 = wait forever)\n"
               "         --busy-retries N     (submit: reconnect attempts\n"
               "                              after a busy refusal, default 4)\n"
               "         --retry-backoff-ms N (submit: backoff base, default\n"
               "                              0 = use the server's hint)\n");
}

// Strict numeric parsing: the whole token must parse and land in range,
// otherwise the CLI exits through usage() — no silent defaulting, no silent
// prefix parses ("12abc"), no unsigned wrap-around ("-5" as a count).
std::uint64_t parse_u64(const std::string& flag, const std::string& value,
                        std::uint64_t min, std::uint64_t max) {
  std::uint64_t parsed = 0;
  const char* begin = value.c_str();
  const char* end = begin + value.size();
  const auto [ptr, ec] = std::from_chars(begin, end, parsed);
  if (value.empty() || ec != std::errc{} || ptr != end) {
    usage((flag + " expects an unsigned integer, got '" + value + "'").c_str());
  }
  if (parsed < min || parsed > max) {
    usage((flag + " value " + value + " out of range [" +
           std::to_string(min) + ", " + std::to_string(max) + "]")
              .c_str());
  }
  return parsed;
}

double parse_double(const std::string& flag, const std::string& value,
                    double min, double max) {
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (value.empty() || end != value.c_str() + value.size() ||
      !std::isfinite(parsed)) {
    usage((flag + " expects a finite number, got '" + value + "'").c_str());
  }
  if (parsed < min || parsed > max) {
    usage((flag + " value " + value + " out of range [" +
           std::to_string(min) + ", " + std::to_string(max) + "]")
              .c_str());
  }
  return parsed;
}

/// Parses `args` = {command, flag...}. Called with main()'s argv and with
/// request argv arriving over the serve socket — both go through identical
/// validation, which is half of the served == local identity guarantee.
Options parse(const std::vector<std::string>& args) {
  if (args.empty()) usage();
  Options o;
  o.command = args[0];
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string arg = args[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= args.size()) usage(("missing value for " + arg).c_str());
      return args[++i];
    };
    if (arg == "--benchmark") {
      o.benchmark = value();
    } else if (arg == "--technique") {
      o.technique = value();
    } else if (arg == "--record-capacity") {
      o.record_capacity = parse_u64(arg, value(), 0, 1'000'000'000);
    } else if (arg == "--samples") {
      o.samples = parse_u64(arg, value(), 1, 1'000'000'000);
    } else if (arg == "--seed") {
      o.seed = parse_u64(arg, value(), 0, UINT64_MAX);
    } else if (arg == "--strategy") {
      o.strategy = value();
    } else if (arg == "--t-range") {
      o.t_range = static_cast<int>(parse_u64(arg, value(), 1, 1'000'000));
    } else if (arg == "--radius") {
      o.radius = parse_double(arg, value(), 0.0, 1e6);
    } else if (arg == "--coverage") {
      o.coverage = parse_double(arg, value(), 1e-9, 1.0);
    } else if (arg == "--threads") {
      o.threads = parse_u64(arg, value(), 0, 4096);
    } else if (arg == "--batch-lanes") {
      o.batch_lanes = parse_u64(arg, value(), 0, 64);
    } else if (arg == "--cycle-budget") {
      o.cycle_budget = parse_u64(arg, value(), 0, UINT64_MAX);
    } else if (arg == "--deadline-ms") {
      o.deadline_ms = parse_u64(arg, value(), 0, UINT64_MAX);
    } else if (arg == "--journal") {
      o.journal = value();
    } else if (arg == "--precharac-cache") {
      o.precharac_cache = value();
    } else if (arg == "--no-precharac-cache") {
      o.precharac_cache.clear();
    } else if (arg == "--chaos-write-nth") {
      o.chaos_write_nth = parse_u64(arg, value(), 1, UINT64_MAX);
    } else if (arg == "--chaos-fsync-nth") {
      o.chaos_fsync_nth = parse_u64(arg, value(), 1, UINT64_MAX);
    } else if (arg == "--supervise") {
      o.supervise = parse_u64(arg, value(), 1, 1024);
    } else if (arg == "--heartbeat-ms") {
      o.heartbeat_ms = parse_u64(arg, value(), 1, 86'400'000);
    } else if (arg == "--shard-size") {
      o.shard_size = parse_u64(arg, value(), 1, 1'000'000'000);
    } else if (arg == "--socket") {
      o.socket = value();
    } else if (arg == "--max-campaigns") {
      o.max_campaigns = parse_u64(arg, value(), 1, 256);
    } else if (arg == "--max-queued") {
      o.max_queued = parse_u64(arg, value(), 0, 4096);
    } else if (arg == "--campaign-deadline-ms") {
      o.campaign_deadline_ms = parse_u64(arg, value(), 0, 86'400'000);
    } else if (arg == "--heartbeat-interval-ms") {
      o.heartbeat_interval_ms = parse_u64(arg, value(), 0, 3'600'000);
    } else if (arg == "--state-dir") {
      o.state_dir = value();
    } else if (arg == "--stats-out") {
      o.stats_out = value();
    } else if (arg == "--worker-id") {
      o.worker_id = parse_u64(arg, value(), 0, 1024);
    } else if (arg == "--crash-after-samples") {
      o.crash_after = parse_u64(arg, value(), 1, UINT64_MAX);
    } else if (arg == "--crash-on-sample-index") {
      o.crash_on = parse_u64(arg, value(), 0, UINT64_MAX);
    } else if (arg == "--resume") {
      o.resume = true;
    } else if (arg == "--exhaustive") {
      o.exhaustive = true;
    } else if (arg == "--space-limit") {
      o.space_limit = parse_u64(arg, value(), 1, UINT64_MAX);
    } else if (arg == "--metrics-out") {
      o.metrics_out = value();
    } else if (arg == "--trace-out") {
      o.trace_out = value();
    } else if (arg == "--progress") {
      o.progress = true;
    } else if (arg == "--out") {
      o.out = value();
    } else {
      usage(("unknown option " + arg).c_str());
    }
  }
  if (o.strategy != "random" && o.strategy != "cone" &&
      o.strategy != "importance") {
    usage(("unknown strategy '" + o.strategy + "'").c_str());
  }
  if (o.technique != "radiation" && o.technique != "clock-glitch" &&
      o.technique != "voltage-glitch") {
    usage(("unknown technique '" + o.technique + "'").c_str());
  }
  if (o.exhaustive && o.command != "evaluate" && o.command != "worker") {
    usage("--exhaustive only applies to the evaluate command");
  }
  if (o.space_limit != 0 && !o.exhaustive) {
    usage("--space-limit requires --exhaustive");
  }
  if (o.resume && o.journal.empty()) usage("--resume requires --journal DIR");
  if (!o.journal.empty() && o.command != "evaluate" &&
      o.command != "worker") {
    usage("--journal only applies to the evaluate command");
  }
  if ((!o.metrics_out.empty() || !o.trace_out.empty() || o.progress) &&
      o.command != "evaluate") {
    usage("--metrics-out/--trace-out/--progress only apply to the evaluate "
          "command");
  }
  if (o.supervise > 0) {
    if (o.command != "evaluate") {
      usage("--supervise only applies to the evaluate command");
    }
    if (o.journal.empty()) usage("--supervise requires --journal DIR");
    if (!o.trace_out.empty()) {
      usage("--trace-out is not supported with --supervise (worker processes "
            "do not ship trace events)");
    }
  }
  if (o.command == "worker" && o.journal.empty()) {
    usage("worker requires --journal DIR");
  }
  if ((o.crash_after != 0 || o.crash_on != mc::kNoCrashIndex) &&
      o.command != "worker" && o.supervise == 0) {
    usage("--crash-after-samples/--crash-on-sample-index only apply to "
          "supervised campaigns and worker mode");
  }
  if (!o.precharac_cache.empty() && o.command != "evaluate" &&
      o.command != "worker" && o.command != "harden") {
    usage("--precharac-cache only applies to the evaluate and harden "
          "commands");
  }
  if ((o.chaos_write_nth != 0 || o.chaos_fsync_nth != 0) &&
      o.command != "evaluate" && o.command != "worker") {
    usage("--chaos-write-nth/--chaos-fsync-nth only apply to the evaluate "
          "command and worker mode");
  }
  // `submit` never reaches parse() with --socket (cmd_submit strips it and
  // validates the remainder as an evaluate command), so here the flag is
  // serve-only.
  if (o.command == "serve" && o.socket.empty()) {
    usage("serve requires --socket PATH");
  }
  if (!o.socket.empty() && o.command != "serve") {
    usage("--socket only applies to the serve and submit commands");
  }
  if ((!o.state_dir.empty() || !o.stats_out.empty()) &&
      o.command != "serve") {
    usage("--state-dir/--stats-out only apply to the serve command");
  }
  return o;
}

soc::SecurityBenchmark pick_benchmark(const std::string& name) {
  if (name == "write") return soc::make_illegal_write_benchmark();
  if (name == "read") return soc::make_illegal_read_benchmark();
  if (name == "exec") return soc::make_illegal_exec_benchmark();
  if (name == "dma") return soc::make_dma_exfiltration_benchmark();
  usage(("unknown benchmark '" + name + "'").c_str());
}

int cmd_info(const Options& o) {
  core::FaultAttackEvaluator fw(pick_benchmark(o.benchmark));
  const auto& nl = fw.soc().netlist();
  std::printf("MCU16 design\n");
  std::printf("  gates            : %zu\n", nl.gate_count());
  std::printf("  registers (DFFs) : %zu\n", nl.dffs().size());
  std::printf("  logic levels     : %d\n", nl.max_level());
  std::printf("  clock period     : %.1f (critical path %.1f)\n",
              fw.injector().timing().clock_period(),
              fw.injector().timing().critical_path());
  std::printf("  placed cells     : %zu (%.0f x %.0f)\n",
              fw.placement().placed_nodes().size(), fw.placement().width(),
              fw.placement().height());
  std::printf("benchmark '%s'\n", fw.benchmark().name.c_str());
  std::printf("  golden run       : %llu cycles\n",
              static_cast<unsigned long long>(fw.golden().length()));
  std::printf("  target cycle Tt  : %llu\n",
              static_cast<unsigned long long>(fw.target_cycle()));
  std::printf("  memory-type bits : %zu / %d\n",
              fw.characterization().memory_type_bits().size(),
              rtl::Machine::reg_map().total_bits());
  return 0;
}

int cmd_characterize(const Options& o) {
  core::FaultAttackEvaluator fw(pick_benchmark(o.benchmark));
  const auto& map = rtl::Machine::reg_map();
  const auto& charac = fw.characterization();
  std::printf("%-14s %10s %14s %10s\n", "field", "lifetime", "contamination",
              "mem-type");
  for (std::size_t fi = 0; fi < map.fields().size(); ++fi) {
    const auto& f = map.fields()[fi];
    double lt = 0, ct = 0;
    int mem = 0;
    for (int b = 0; b < f.width; ++b) {
      lt += charac.bit(f.offset + b).avg_lifetime;
      ct += charac.bit(f.offset + b).avg_contamination;
      mem += charac.is_memory_type(f.offset + b) ? 1 : 0;
    }
    std::printf("%-14s %10.1f %14.2f %7d/%d\n", f.name.c_str(), lt / f.width,
                ct / f.width, mem, f.width);
  }
  return 0;
}

/// Campaign identity for the journal: any option that changes the sample
/// stream or its evaluation changes the fingerprint, so a stale journal from
/// a different configuration is rejected on --resume. Exhaustive sweeps pass
/// strategy "exhaustive" (disjoint from every sampler name, so a sampled
/// journal can never cross-resume an exhaustive one) and `samples` = the
/// effective enumeration count min(space, --space-limit).
std::uint64_t campaign_fingerprint(const Options& o,
                                   const std::string& actual_strategy,
                                   std::size_t samples) {
  core::CampaignKey key;
  key.benchmark = o.benchmark;
  key.technique = o.technique;
  key.strategy = actual_strategy;
  key.seed = o.seed;
  key.samples = samples;
  key.t_range = o.t_range;
  key.radius = o.radius;
  key.cycle_budget = o.cycle_budget;
  return core::campaign_fingerprint(key);
}

/// Full-precision double formatting for worker argv: std::to_string would
/// truncate to 6 decimals and hand the workers a *different* sample stream.
std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string self_exe_path() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    return buf;
  }
  return g_argv0;
}

/// argv of a `fav worker` process: everything that identifies the campaign,
/// so the worker re-derives the bitwise-identical sample batch. Workers
/// always keep full records (--record-capacity 0) — the journal needs every
/// record of an assigned shard.
std::vector<std::string> worker_command(const Options& o) {
  std::vector<std::string> argv = {
      self_exe_path(), "worker",
      "--benchmark", o.benchmark,
      "--technique", o.technique,
      "--strategy", o.strategy,
      "--samples", std::to_string(o.samples),
      "--seed", std::to_string(o.seed),
      "--t-range", std::to_string(o.t_range),
      "--radius", format_double(o.radius),
      "--cycle-budget", std::to_string(o.cycle_budget),
      "--deadline-ms", std::to_string(o.deadline_ms),
      "--threads", std::to_string(o.threads),
      "--batch-lanes", std::to_string(o.batch_lanes),
      "--record-capacity", "0",
      "--journal", o.journal};
  if (o.exhaustive) {
    // Workers re-derive the identical enumeration from the bound space, so
    // the batch never crosses the pipe.
    argv.push_back("--exhaustive");
    if (o.space_limit != 0) {
      argv.push_back("--space-limit");
      argv.push_back(std::to_string(o.space_limit));
    }
  }
  if (!o.precharac_cache.empty()) {
    // Workers share the supervisor's artifact: whoever elaborates first
    // writes it under PATH.lock, the rest load (core/framework.h).
    argv.push_back("--precharac-cache");
    argv.push_back(o.precharac_cache);
  }
  if (o.chaos_write_nth != 0) {
    argv.push_back("--chaos-write-nth");
    argv.push_back(std::to_string(o.chaos_write_nth));
  }
  if (o.chaos_fsync_nth != 0) {
    argv.push_back("--chaos-fsync-nth");
    argv.push_back(std::to_string(o.chaos_fsync_nth));
  }
  if (o.crash_on != mc::kNoCrashIndex) {
    // Deterministic chaos: rides every incarnation so the shard containing
    // this index keeps killing workers and exercises the quarantine path.
    argv.push_back("--crash-on-sample-index");
    argv.push_back(std::to_string(o.crash_on));
  }
  return argv;
}

struct EvalOutcome {
  Status status = Status::ok();  // non-ok: res is meaningless
  mc::SsfResult res;
  /// Samples the campaign set out to evaluate: --samples when sampling, the
  /// effective enumeration count min(space, --space-limit) when exhaustive.
  std::size_t total = 0;
  bool supervised = false;
  std::size_t restarts = 0;
  std::size_t quarantined_shards = 0;
  std::size_t quarantined_samples = 0;
  std::size_t storage_full_stops = 0;
};

/// Runs the campaign (in-process, journaled, or supervised per `o`).
/// `on_sample`, when set, ticks once per evaluated sample on the supervised
/// path — the serving tier's progress stream (the in-process engine routes
/// progress through EvaluatorConfig::on_sample instead).
/// Builds the supervisor config shared by the sampled and exhaustive paths.
mc::SupervisorConfig make_supervisor_config(
    core::FaultAttackEvaluator& fw, const Options& o,
    const std::string& strategy, std::size_t samples,
    const std::function<void()>& on_sample,
    const std::atomic<bool>* stop) {
  mc::SupervisorConfig sc;
  sc.workers = o.supervise;
  sc.shard_size = o.shard_size;
  sc.heartbeat_ms = o.heartbeat_ms;
  sc.worker_command = worker_command(o);
  if (o.crash_after != 0) {
    // One-shot chaos: worker 0's first incarnation only, so restarts make
    // progress and no shard can be killed twice by the injection alone.
    sc.first_spawn_args = {"--crash-after-samples",
                           std::to_string(o.crash_after)};
  }
  sc.dir = o.journal;
  sc.resume = o.resume;
  sc.fingerprint = campaign_fingerprint(o, strategy, samples);
  sc.context = o.benchmark + "/" + o.technique + "/" + strategy;
  sc.metrics = fw.evaluator().config().metrics;
  sc.progress = fw.evaluator().config().progress;
  sc.on_sample = on_sample;
  sc.stop = stop;
  return sc;
}

EvalOutcome take_supervised(Result<mc::SupervisedResult>&& result) {
  EvalOutcome out;
  if (!result.is_ok()) {
    out.status = Status(result.status().code(),
                        "supervised run failed: " +
                            result.status().to_string());
    return out;
  }
  out.res = std::move(result.value().result);
  out.supervised = true;
  out.restarts = result.value().restarts;
  out.quarantined_shards = result.value().quarantined_shards;
  out.quarantined_samples = result.value().quarantined_samples;
  out.storage_full_stops = result.value().storage_full_stops;
  return out;
}

/// Exhaustive sweep: bind the technique's fault space, then stream the
/// enumeration through the same in-process / journaled / supervised paths a
/// sampled campaign uses. No sampler is built — the "strategy" is the
/// literal "exhaustive".
EvalOutcome run_eval_exhaustive(core::FaultAttackEvaluator& fw,
                                const Options& o,
                                const std::function<void()>& on_sample,
                                const std::atomic<bool>* stop) {
  const std::uint64_t space = fw.bind_exhaustive_space(o.t_range, o.radius);
  const std::uint64_t n =
      (o.space_limit != 0 && o.space_limit < space) ? o.space_limit : space;
  if (o.supervise > 0) {
    const mc::SupervisorConfig sc = make_supervisor_config(
        fw, o, "exhaustive", static_cast<std::size_t>(n), on_sample, stop);
    mc::CampaignSupervisor supervisor(fw.evaluator(), sc);
    // The supervisor cross-checks journaled samples against this batch; the
    // workers re-derive the identical enumeration from --exhaustive.
    std::vector<faultsim::FaultSample> batch;
    fw.technique().enumerate(0, n, batch);
    EvalOutcome out = take_supervised(supervisor.run_batch(std::move(batch)));
    out.total = static_cast<std::size_t>(n);
    // The merged worker result doesn't know the space it was carved from —
    // stamp it so coverage reporting matches the in-process sweep.
    if (out.status.is_ok()) out.res.fault_space_size = space;
    return out;
  }
  EvalOutcome out;
  out.total = static_cast<std::size_t>(n);
  if (o.journal.empty()) {
    out.res = fw.evaluator().run_exhaustive(o.space_limit);
    return out;
  }
  mc::JournalOptions jopt;
  jopt.dir = o.journal;
  jopt.resume = o.resume;
  jopt.shard_size = o.shard_size;
  jopt.fingerprint =
      campaign_fingerprint(o, "exhaustive", static_cast<std::size_t>(n));
  jopt.context = o.benchmark + "/" + o.technique + "/exhaustive";
  Result<mc::SsfResult> result =
      fw.evaluator().run_exhaustive_journaled(jopt, o.space_limit);
  if (!result.is_ok()) {
    out.status = Status(result.status().code(),
                        "journaled run failed: " +
                            result.status().to_string());
    return out;
  }
  out.res = std::move(result).value();
  return out;
}

core::SamplerSelection select_sampler(core::FaultAttackEvaluator& fw,
                                      const Options& o) {
  if (o.technique == "clock-glitch") {
    return fw.make_sampler_with_fallback(fw.glitch_attack_model(o.t_range),
                                         o.strategy);
  }
  if (o.technique == "voltage-glitch") {
    return fw.make_sampler_with_fallback(fw.voltage_attack_model(o.t_range),
                                         o.strategy);
  }
  return fw.make_sampler_with_fallback(
      fw.subblock_attack_model(o.radius, o.t_range), o.strategy);
}

EvalOutcome run_eval(core::FaultAttackEvaluator& fw, const Options& o,
                     std::string* actual_strategy = nullptr,
                     const std::function<void()>& on_sample = {},
                     const std::atomic<bool>* stop = &g_stop) {
  if (o.exhaustive) {
    if (actual_strategy != nullptr) *actual_strategy = "exhaustive";
    return run_eval_exhaustive(fw, o, on_sample, stop);
  }
  core::SamplerSelection sel = select_sampler(fw, o);
  if (sel.downgraded()) {
    std::fprintf(stderr, "fav: strategy downgraded %s -> %s (%s)\n",
                 sel.requested.c_str(), sel.actual.c_str(),
                 sel.downgrade_reason.c_str());
  }
  if (actual_strategy != nullptr) *actual_strategy = sel.actual;
  Rng rng(o.seed);
  EvalOutcome out;
  out.total = o.samples;
  if (o.supervise > 0) {
    const mc::SupervisorConfig sc =
        make_supervisor_config(fw, o, sel.actual, o.samples, on_sample, stop);
    mc::CampaignSupervisor supervisor(fw.evaluator(), sc);
    EvalOutcome sup =
        take_supervised(supervisor.run(*sel.sampler, rng, o.samples));
    sup.total = o.samples;
    return sup;
  }
  if (o.journal.empty()) {
    out.res = fw.evaluator().run(*sel.sampler, rng, o.samples);
    return out;
  }
  mc::JournalOptions jopt;
  jopt.dir = o.journal;
  jopt.resume = o.resume;
  jopt.shard_size = o.shard_size;
  jopt.fingerprint = campaign_fingerprint(o, sel.actual, o.samples);
  jopt.context = o.benchmark + "/" + o.technique + "/" + sel.actual;
  Result<mc::SsfResult> result =
      fw.evaluator().run_journaled(*sel.sampler, rng, o.samples, jopt);
  if (!result.is_ok()) {
    out.status = Status(result.status().code(),
                        "journaled run failed: " +
                            result.status().to_string());
    return out;
  }
  out.res = std::move(result).value();
  return out;
}

/// printf-append onto a campaign's stdout block. The block is built into a
/// string (not printed directly) so a served campaign ships the exact bytes
/// a local run would print.
__attribute__((format(printf, 2, 3))) void append_f(std::string& out,
                                                    const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  char buf[1024];
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n < 0) {
    va_end(ap2);
    return;
  }
  if (static_cast<std::size_t>(n) < sizeof(buf)) {
    out.append(buf, static_cast<std::size_t>(n));
  } else {
    std::string big(static_cast<std::size_t>(n) + 1, '\0');
    std::vsnprintf(big.data(), big.size(), fmt, ap2);
    big.resize(static_cast<std::size_t>(n));
    out += big;
  }
  va_end(ap2);
}

void append_failures(std::string& out, const mc::SsfResult& res) {
  if (res.failed == 0 && res.retried == 0) return;
  append_f(out,
           "failures   : %zu failed / %zu retried (%.4f%% of weight)\n",
           res.failed, res.retried, 100.0 * res.failed_weight_fraction());
  for (const auto& [code, count] : res.failure_counts) {
    append_f(out, "             %s x%zu\n", error_code_name(code), count);
  }
}

/// Everything one evaluate campaign produced: the exit code, the exact
/// stdout block a local `fav evaluate` prints, and the run-report JSON when
/// the campaign asked for one. Built by run_evaluate_campaign for local and
/// served campaigns alike — the single code path is the identity guarantee.
struct CampaignOutput {
  int exit_code = 1;
  std::string stdout_block;
  std::string report_json;
  std::string error;  // non-empty: the campaign failed before a result
};

/// The whole evaluate pipeline: sinks, framework elaboration, the campaign
/// run (in-process / journaled / supervised), the stdout block, and the run
/// report. `local_files` writes --metrics-out / --trace-out to disk here
/// (local `fav evaluate`); the serve daemon passes false and ships
/// report_json back to the client, which writes its own file — except for
/// crash-recovered campaigns, whose client is long gone: the daemon re-runs
/// those with local_files = true so the report lands at the originally
/// requested path. `stop` is the cooperative-stop token the engine polls:
/// &g_stop for local runs, the per-campaign cancel token for served ones.
CampaignOutput run_evaluate_campaign(const Options& o, bool local_files,
                                     const mc::ProgressFn& progress,
                                     const std::atomic<bool>* stop) {
  CampaignOutput out;
  // Observability sinks live here (campaign scope); the evaluator only sees
  // non-null pointers for what was requested, so unused channels stay
  // zero-cost.
  MetricsSink metrics;
  TraceBuffer trace;
  std::optional<ProgressMeter> meter;
  if (o.progress) meter.emplace(o.samples);
  core::FrameworkConfig cfg = o.framework_config();
  if (!o.metrics_out.empty()) cfg.evaluator.metrics = &metrics;
  if (!o.trace_out.empty()) cfg.evaluator.trace = &trace;
  if (meter.has_value()) cfg.evaluator.progress = &*meter;
  cfg.evaluator.stop = stop;
  // Served progress: the in-process engine ticks through the evaluator's
  // on_sample (any worker thread); supervised campaigns tick through the
  // supervisor's on_sample hook below. Both count evaluated samples.
  std::atomic<std::uint64_t> completed{0};
  auto tick = [&completed, &progress, &o] {
    progress(completed.fetch_add(1, std::memory_order_relaxed) + 1,
             o.samples);
  };
  if (progress && o.supervise == 0) {
    cfg.evaluator.on_sample = [&tick](const mc::SampleRecord&,
                                      std::size_t) { tick(); };
  }
  if (o.chaos_write_nth != 0 || o.chaos_fsync_nth != 0) {
    io::ChaosFile chaos;
    chaos.fail_write_at = o.chaos_write_nth;
    chaos.fail_fsync_at = o.chaos_fsync_nth;
    io::chaos_install(chaos);
  }
  core::FaultAttackEvaluator fw(pick_benchmark(o.benchmark), cfg);
  std::string actual_strategy = o.strategy;
  const std::uint64_t t0 = monotonic_ns();
  const EvalOutcome eval =
      run_eval(fw, o, &actual_strategy,
               (progress && o.supervise > 0) ? std::function<void()>(tick)
                                             : std::function<void()>{},
               stop);
  // The injected fault targets the campaign write path; clear it so the
  // interrupted run report below can still land (the real-world analogue is
  // a report on a different device than the full journal disk).
  io::chaos_reset();
  if (!eval.status.is_ok()) {
    out.error = eval.status.to_string();
    out.exit_code = 1;
    return out;
  }
  const mc::SsfResult& res = eval.res;
  const double elapsed_s = static_cast<double>(monotonic_ns() - t0) * 1e-9;
  if (meter.has_value()) meter->finish();
  append_f(out.stdout_block, "benchmark  : %s\n", fw.benchmark().name.c_str());
  append_f(out.stdout_block, "technique  : %s\n", fw.technique().name());
  append_f(out.stdout_block, "strategy   : %s (n=%zu, seed=%llu)\n",
           actual_strategy.c_str(), eval.total,
           static_cast<unsigned long long>(o.seed));
  if (res.fault_space_size > 0) {
    append_f(out.stdout_block,
             "fault space: size %llu, evaluated %zu, coverage %.6f\n",
             static_cast<unsigned long long>(res.fault_space_size),
             res.evaluated, res.coverage());
  }
  if (res.interrupted) {
    append_f(out.stdout_block,
             "interrupted: yes — %zu of %zu samples evaluated "
             "(rerun with --resume to continue)\n",
             res.evaluated, eval.total);
  }
  if (eval.supervised) {
    append_f(out.stdout_block,
             "supervisor : %zu worker(s), %zu restart(s), %zu shard(s) / "
             "%zu sample(s) quarantined\n",
             o.supervise, eval.restarts, eval.quarantined_shards,
             eval.quarantined_samples);
    if (eval.storage_full_stops > 0) {
      append_f(out.stdout_block,
               "storage    : %zu worker(s) stopped on a full/failing "
               "journal device\n",
               eval.storage_full_stops);
    }
  }
  const core::PrecharacCacheReport& cache = fw.precharac_cache();
  if (cache.enabled) {
    append_f(out.stdout_block, "precharac  : cache %s (%s)%s\n",
             cache.outcome.c_str(), cache.path.c_str(),
             cache.stored ? ", stored" : "");
  }
  append_f(out.stdout_block, "SSF        : %.6f\n", res.ssf());
  append_f(out.stdout_block, "std error  : %.6f\n",
           res.stats.standard_error());
  append_f(out.stdout_block, "variance   : %.3e\n", res.sample_variance());
  append_f(out.stdout_block, "ESS        : %.1f of %zu\n",
           res.effective_sample_size(), eval.total);
  append_f(out.stdout_block, "successes  : %zu\n", res.successes);
  append_f(out.stdout_block,
           "paths      : %zu masked / %zu analytical / %zu rtl\n", res.masked,
           res.analytical, res.rtl);
  append_failures(out.stdout_block, res);
  if (!o.metrics_out.empty()) {
    metrics.merge(fw.metrics());  // pre-characterization + sampler provenance
    std::ostringstream report;
    core::RunReportInputs in;
    in.benchmark = o.benchmark;
    in.technique = o.technique;
    in.strategy = actual_strategy;
    in.mode = o.exhaustive ? "exhaustive" : "sampled";
    in.samples = eval.total;
    in.seed = o.seed;
    in.threads = o.threads;
    in.batch_lanes = o.batch_lanes;
    in.supervise = o.supervise;
    in.supervised = eval.supervised;
    in.restarts = eval.restarts;
    in.quarantined_shards = eval.quarantined_shards;
    in.quarantined_samples = eval.quarantined_samples;
    in.storage_full_stops = eval.storage_full_stops;
    in.cache = cache;
    in.elapsed_s = elapsed_s;
    in.result = &res;
    in.metrics = &metrics;
    core::write_run_report(report, in);
    out.report_json = report.str();
    if (local_files) {
      const Status written =
          io::atomic_write_file(o.metrics_out, out.report_json);
      if (!written.is_ok()) {
        out.error = "cannot write run report: " + written.to_string();
        out.exit_code = 1;
        return out;
      }
    }
    append_f(out.stdout_block, "run report : %s\n", o.metrics_out.c_str());
  }
  if (!o.trace_out.empty()) {
    std::ostringstream events;
    trace.write_json(events);
    if (local_files) {
      const Status written = io::atomic_write_file(o.trace_out, events.str());
      if (!written.is_ok()) {
        out.error = "cannot write trace: " + written.to_string();
        out.exit_code = 1;
        return out;
      }
    }
    append_f(out.stdout_block, "trace      : %s (%zu events)\n",
             o.trace_out.c_str(), trace.size());
  }
  const auto& map = rtl::Machine::reg_map();
  const auto fields = core::select_critical_fields(res, 0.95);
  append_f(out.stdout_block, "critical   :");
  for (const int f : fields) {
    append_f(out.stdout_block, " %s", map.field(f).name.c_str());
  }
  append_f(out.stdout_block, "\n");
  out.exit_code = res.interrupted ? 3 : 0;
  return out;
}

int cmd_evaluate(const Options& o) {
  install_stop_handlers();
  const CampaignOutput out = run_evaluate_campaign(o, true, {}, &g_stop);
  if (!out.error.empty()) {
    std::fprintf(stderr, "fav: %s\n", out.error.c_str());
    return out.exit_code != 0 ? out.exit_code : 1;
  }
  std::fputs(out.stdout_block.c_str(), stdout);
  return out.exit_code;
}

/// Journal directories in use by in-flight served campaigns. Two concurrent
/// campaigns sharing a journal would interleave shard files and corrupt both
/// results, so the daemon reserves the (canonicalized) directory for the
/// campaign's lifetime and refuses the second request.
std::mutex g_journal_registry_mu;
std::set<std::string> g_journal_registry;

bool reserve_journal(const std::string& dir, std::string* key) {
  std::error_code ec;
  const std::filesystem::path canon =
      std::filesystem::weakly_canonical(dir, ec);
  *key = ec ? dir : canon.string();
  std::lock_guard<std::mutex> lock(g_journal_registry_mu);
  return g_journal_registry.insert(*key).second;
}

void release_journal(const std::string& key) {
  std::lock_guard<std::mutex> lock(g_journal_registry_mu);
  g_journal_registry.erase(key);
}

/// The serve daemon's CampaignRunner: parses the request argv with the same
/// parser as main() and runs the same campaign path as a local
/// `fav evaluate` — which is the served == local identity guarantee. A bad
/// request fails this one campaign (never the daemon), and flags with
/// process-global or client-side-file side effects are refused per-request.
/// `cancel` is the per-campaign stop token the server trips on client
/// disconnect / explicit cancel / deadline / daemon drain; `local_files` is
/// false for live clients (the report ships over the socket) and true for
/// crash-recovered campaigns (the daemon writes --metrics-out itself).
mc::CampaignOutcome run_served_campaign(const std::vector<std::string>& args,
                                        const mc::ProgressFn& progress,
                                        const std::atomic<bool>& cancel,
                                        bool local_files) {
  mc::CampaignOutcome out;
  Options o;
  try {
    o = parse(args);
  } catch (const UsageError& e) {
    out.error = e.message.empty() ? "invalid campaign request" : e.message;
    out.exit_code = 2;
    return out;
  }
  if (o.command != "evaluate") {
    out.error =
        "served campaigns must be 'evaluate' requests, got '" + o.command +
        "'";
    out.exit_code = 2;
    return out;
  }
  if (o.chaos_write_nth != 0 || o.chaos_fsync_nth != 0) {
    out.error = "--chaos-write-nth / --chaos-fsync-nth are process-global "
                "and cannot run on a shared daemon";
    out.exit_code = 2;
    return out;
  }
  if (o.crash_after != 0 || o.crash_on != mc::kNoCrashIndex) {
    out.error = "crash-injection flags cannot run on a shared daemon";
    out.exit_code = 2;
    return out;
  }
  if (!o.trace_out.empty()) {
    out.error = "--trace-out is not supported for served campaigns "
                "(run locally)";
    out.exit_code = 2;
    return out;
  }
  std::string journal_key;
  const bool has_journal = !o.journal.empty();
  if (has_journal && !reserve_journal(o.journal, &journal_key)) {
    out.error = "journal directory '" + o.journal +
                "' is in use by another in-flight campaign";
    out.exit_code = 1;
    return out;
  }
  try {
    const CampaignOutput run =
        run_evaluate_campaign(o, local_files, progress, &cancel);
    out.exit_code = run.exit_code;
    out.stdout_block = run.stdout_block;
    out.report_json = run.report_json;
    out.error = run.error;
  } catch (const StatusError& e) {
    out.error = std::string("[") + error_code_name(e.code()) + "] " + e.what();
    out.exit_code = 1;
  } catch (const std::exception& e) {
    out.error = e.what();
    out.exit_code = 1;
  }
  if (has_journal) release_journal(journal_key);
  return out;
}

int cmd_serve(const Options& o) {
  install_stop_handlers();
  // Streaming to a client that vanished must surface as a write error on
  // that one socket, never kill the daemon.
  ::signal(SIGPIPE, SIG_IGN);
  mc::ServeConfig sc;
  sc.socket_path = o.socket;
  sc.max_concurrent = o.max_campaigns;
  sc.max_queued = o.max_queued;
  sc.campaign_deadline_ms = o.campaign_deadline_ms;
  sc.heartbeat_interval_ms = o.heartbeat_interval_ms;
  sc.stats_path = o.stats_out;
  sc.stop = &g_stop;
  if (!o.state_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(o.state_dir, ec);
    if (ec) {
      std::fprintf(stderr, "fav serve: cannot create state dir %s: %s\n",
                   o.state_dir.c_str(), ec.message().c_str());
      return 1;
    }
    sc.ledger_path =
        (std::filesystem::path(o.state_dir) / "ledger.fvl").string();
  }
  // Recovered campaigns have no client: the daemon itself writes the
  // originally requested --metrics-out, so the report still lands where the
  // (long-gone) submitter asked.
  sc.recovery_runner = [](const std::vector<std::string>& args,
                          const mc::ProgressFn& progress,
                          const std::atomic<bool>& cancel) {
    return run_served_campaign(args, progress, cancel, true);
  };
  mc::CampaignServer server(
      sc, [](const std::vector<std::string>& args,
             const mc::ProgressFn& progress, const std::atomic<bool>& cancel) {
        return run_served_campaign(args, progress, cancel, false);
      });
  const Status status = server.serve();
  if (!status.is_ok()) {
    std::fprintf(stderr, "fav serve: %s\n", status.to_string().c_str());
    return 1;
  }
  return 0;
}

/// `fav submit --socket PATH <evaluate flags>`: runs the campaign on a
/// serving daemon and reproduces a local `fav evaluate` byte for byte — the
/// same stdout block on stdout, the same run report written to the *client's*
/// --metrics-out path, the same exit code.
int cmd_submit(const std::vector<std::string>& raw) {
  std::string socket;
  std::uint64_t idle_timeout_ms = 30'000;  // 0 = wait forever
  std::size_t busy_retries = 4;
  std::uint64_t retry_backoff_ms = 0;  // 0 = use the server's hint
  std::vector<std::string> fwd;
  fwd.push_back("evaluate");
  for (std::size_t i = 0; i < raw.size(); ++i) {
    const std::string& arg = raw[i];
    auto value = [&]() -> const std::string& {
      if (i + 1 >= raw.size()) usage(("missing value for " + arg).c_str());
      return raw[++i];
    };
    if (arg == "--socket") {
      socket = value();
    } else if (arg == "--idle-timeout-ms") {
      idle_timeout_ms = parse_u64(arg, value(), 0, 86'400'000);
    } else if (arg == "--busy-retries") {
      busy_retries = parse_u64(arg, value(), 0, 1000);
    } else if (arg == "--retry-backoff-ms") {
      retry_backoff_ms = parse_u64(arg, value(), 0, 3'600'000);
    } else {
      fwd.push_back(arg);
    }
  }
  if (socket.empty()) usage("submit requires --socket PATH");
  // Validate client-side with the same parser the server will run, so a
  // typo fails here with the usage text instead of after a round-trip.
  const Options o = parse(fwd);
  // Ctrl-C cancels the served campaign: submit ships a cancel frame, the
  // daemon stops the campaign cooperatively and returns the partial
  // (resumable) result with exit code 3 — same contract as a local SIGINT.
  install_stop_handlers();
  mc::SubmitOptions opts;
  if (o.progress) {
    opts.on_progress = [](std::uint64_t done, std::uint64_t total) {
      std::fprintf(stderr, "fav submit: %llu / %llu samples\n",
                   static_cast<unsigned long long>(done),
                   static_cast<unsigned long long>(total));
    };
  }
  opts.on_busy = [](std::uint64_t delay_ms) {
    std::fprintf(stderr,
                 "fav submit: server busy, retrying in %llu ms\n",
                 static_cast<unsigned long long>(delay_ms));
  };
  opts.idle_timeout_ms =
      idle_timeout_ms == 0 ? -1 : static_cast<int>(idle_timeout_ms);
  opts.cancel = &g_stop;
  opts.busy_retries = busy_retries;
  opts.retry_backoff_ms = retry_backoff_ms;
  const Result<mc::SubmitResult> sent =
      mc::submit_campaign(socket, fwd, opts);
  if (!sent.is_ok()) {
    std::fprintf(stderr, "fav submit: %s\n",
                 sent.status().to_string().c_str());
    return 1;
  }
  const mc::SubmitResult& res = sent.value();
  if (!res.error.empty()) {
    std::fprintf(stderr, "fav: %s\n", res.error.c_str());
    return res.exit_code != 0 ? res.exit_code : 1;
  }
  // The daemon ships the report bytes; the file lands wherever the *client*
  // asked, exactly like a local run.
  if (!o.metrics_out.empty() && !res.report_json.empty()) {
    const Status written =
        io::atomic_write_file(o.metrics_out, res.report_json);
    if (!written.is_ok()) {
      std::fprintf(stderr, "fav: cannot write run report: %s\n",
                   written.to_string().c_str());
      return 1;
    }
  }
  std::fputs(res.stdout_block.c_str(), stdout);
  return res.exit_code;
}

/// Hidden worker mode (spawned by --supervise): stdin/stdout are the
/// supervisor's protocol pipes, so nothing in this path may print to stdout.
/// Elaborates the identical framework from the forwarded campaign flags,
/// re-draws the full batch, and serves shard assignments until SHUTDOWN/EOF.
int cmd_worker(const Options& o) {
  // The supervisor coordinates shutdown over the pipe; a terminal SIGINT
  // (Ctrl-C hits the whole foreground process group) must not kill workers
  // mid-shard. SIGTERM stays default: it is the PDEATHSIG delivered when the
  // supervisor dies, and workers must not outlive it.
  ::signal(SIGPIPE, SIG_IGN);
  ::signal(SIGINT, SIG_IGN);
  if (o.chaos_write_nth != 0 || o.chaos_fsync_nth != 0) {
    io::ChaosFile chaos;
    chaos.fail_write_at = o.chaos_write_nth;
    chaos.fail_fsync_at = o.chaos_fsync_nth;
    io::chaos_install(chaos);
  }
  static mc::WorkerHeartbeat heartbeat(STDOUT_FILENO);
  heartbeat.set_crash_after(o.crash_after);
  heartbeat.set_crash_on(o.crash_on);
  MetricsSink metrics;
  core::FrameworkConfig cfg = o.framework_config();
  cfg.evaluator.record_capacity = 0;  // the journal needs every record
  cfg.evaluator.metrics = &metrics;
  // The supervisor runs the one global reduction over the merged journals;
  // workers shipping reduce-derived counters would double-count them.
  cfg.evaluator.reduce_metrics = false;
  cfg.evaluator.on_sample = [](const mc::SampleRecord& record,
                               std::size_t slice_index) {
    heartbeat.on_sample(record, slice_index);
  };
  core::FaultAttackEvaluator fw(pick_benchmark(o.benchmark), cfg);
  std::string actual = o.strategy;
  std::size_t total = o.samples;
  std::vector<faultsim::FaultSample> samples;
  if (o.exhaustive) {
    // Re-derive the identical enumeration the supervisor (and every sibling
    // worker) computes from the same flags — the batch never crosses the
    // pipe, exactly like the sampled path re-draws from the seed.
    const std::uint64_t space = fw.bind_exhaustive_space(o.t_range, o.radius);
    const std::uint64_t n =
        (o.space_limit != 0 && o.space_limit < space) ? o.space_limit : space;
    total = static_cast<std::size_t>(n);
    actual = "exhaustive";
    fw.technique().enumerate(0, n, samples);
  } else {
    const core::SamplerSelection sel = select_sampler(fw, o);
    actual = sel.actual;
    Rng rng(o.seed);
    samples = fw.evaluator().draw_batch(*sel.sampler, rng, o.samples);
  }
  mc::WorkerLoopOptions wopt;
  wopt.dir = o.journal;
  wopt.worker_id = o.worker_id;
  wopt.fingerprint = campaign_fingerprint(o, actual, total);
  wopt.context = o.benchmark + "/" + o.technique + "/" + actual;
  wopt.in_fd = STDIN_FILENO;
  wopt.out_fd = STDOUT_FILENO;
  const Status status =
      mc::run_worker_loop(fw.evaluator(), samples, heartbeat, wopt, &metrics);
  if (!status.is_ok()) {
    std::fprintf(stderr, "fav worker %zu: %s\n", o.worker_id,
                 status.to_string().c_str());
    // Storage full/failing: every journaled shard is intact, so signal the
    // supervisor to stop the fleet gracefully instead of treating this
    // worker as crashed (no attempts charge, no quarantine, no respawn).
    if (status.code() == ErrorCode::kStorageFull) {
      return mc::kExitResumableStop;
    }
    return 1;
  }
  return 0;
}

int cmd_harden(const Options& o) {
  core::FaultAttackEvaluator fw(pick_benchmark(o.benchmark),
                                o.framework_config());
  const EvalOutcome eval = run_eval(fw, o);
  if (!eval.status.is_ok()) {
    std::fprintf(stderr, "fav: %s\n", eval.status.to_string().c_str());
    return 1;
  }
  const auto& res = eval.res;
  const auto cells = core::select_critical_bits(res, o.coverage);
  Rng rng(o.seed + 1);
  const auto report = core::evaluate_hardening(fw.evaluator(), fw.soc(), res,
                                               cells, {}, rng);
  const auto& map = rtl::Machine::reg_map();
  std::printf("baseline SSF : %.6f\n", report.base_ssf);
  std::printf("hardened SSF : %.6f  (%.1fx better)\n", report.hardened_ssf,
              report.improvement());
  std::printf("cells        : %zu of %zu (%.1f%%)\n",
              report.protected_bits.size(), report.total_register_bits,
              100.0 * report.protected_register_fraction());
  std::printf("area overhead: %.2f%%\n", 100.0 * report.area_overhead);
  std::printf("hardened     :");
  for (const int bit : report.protected_bits) {
    const auto [fi, b] = map.locate(bit);
    std::printf(" %s[%d]", map.field(fi).name.c_str(), b);
  }
  std::printf("\n");
  return 0;
}

int cmd_export_verilog(const Options& o) {
  const soc::SocNetlist soc;
  if (o.out.empty()) {
    netlist::write_verilog(soc.netlist(), std::cout, "mcu16");
  } else {
    std::ofstream f(o.out);
    if (!f) usage(("cannot open " + o.out).c_str());
    netlist::write_verilog(soc.netlist(), f, "mcu16");
    std::printf("wrote %s\n", o.out.c_str());
  }
  return 0;
}

int cmd_trace(const Options& o) {
  if (o.out.empty()) usage("trace requires --out FILE");
  const soc::SecurityBenchmark bench = pick_benchmark(o.benchmark);
  std::ofstream f(o.out);
  if (!f) usage(("cannot open " + o.out).c_str());
  rtl::VcdWriter vcd(f);
  rtl::Machine m(bench.program);
  while (!m.halted() && m.cycle() < bench.max_cycles) {
    vcd.sample(m.cycle(), m.state());
    m.step();
  }
  vcd.sample(m.cycle(), m.state());
  std::printf("wrote %s (%zu samples)\n", o.out.c_str(),
              vcd.samples_written());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 0 && argv[0] != nullptr) g_argv0 = argv[0];
  const std::vector<std::string> args(argv + (argc > 0 ? 1 : 0),
                                      argv + argc);
  try {
    // `submit` owns its argv (it strips --socket before reusing the evaluate
    // parser), so it is dispatched before the common parse.
    if (!args.empty() && args[0] == "submit") {
      return cmd_submit({args.begin() + 1, args.end()});
    }
    const Options o = parse(args);
    if (o.command == "info") return cmd_info(o);
    if (o.command == "characterize") return cmd_characterize(o);
    if (o.command == "evaluate") return cmd_evaluate(o);
    if (o.command == "serve") return cmd_serve(o);
    if (o.command == "worker") return cmd_worker(o);
    if (o.command == "harden") return cmd_harden(o);
    if (o.command == "export-verilog") return cmd_export_verilog(o);
    if (o.command == "trace") return cmd_trace(o);
    usage(("unknown command '" + o.command + "'").c_str());
  } catch (const UsageError& e) {
    print_usage(e.message);
    return 2;
  } catch (const StatusError& e) {
    std::fprintf(stderr, "fav: [%s] %s\n", error_code_name(e.code()),
                 e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fav: %s\n", e.what());
    return 1;
  }
}
