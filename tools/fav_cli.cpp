// fav — command-line front end to the fault-attack vulnerability framework.
//
//   fav info                             design + benchmark overview
//   fav characterize                     register characterization table
//   fav evaluate   [options]             SSF estimation
//   fav harden     [options]             critical cells + hardening report
//   fav export-verilog [--out FILE]      structural Verilog of the SoC
//   fav trace      [options] --out FILE  VCD of the golden run
//
// Common options:
//   --benchmark write|read|exec|dma   (default write)
//   --technique radiation|clock-glitch  (default radiation)
//   --samples N                   (default 3000)
//   --seed S                      (default 2017)
//   --strategy random|cone|importance   (default importance; for
//                                  clock-glitch all strategies map to the
//                                  uniform glitch sampler)
//   --t-range N                   (default 50)
//   --radius R                    (default 1.5, radiation only)
//   --coverage C                  (default 0.95, harden only)
//   --record-capacity N           cap on kept per-sample records
//                                  (default 200000; 0 = unlimited)
//   --threads N                   (default 1; 0 = all hardware threads.
//                                  Estimates are bitwise-identical for every
//                                  N — see DESIGN.md, parallel engine)
//   --batch-lanes N               (default 64; 0/1 = scalar) word-parallel
//                                  lanes for same-injection-cycle samples.
//                                  Results are bitwise-identical for every
//                                  N — batching only changes throughput
//   --cycle-budget N              per-sample RTL cycle budget (0 = unlimited)
//   --deadline-ms N               per-sample wall-clock deadline (0 = none;
//                                  trades determinism for hang protection)
//   --journal DIR                 evaluate only: crash-safe shard journal
//   --resume                      replay the journal in --journal DIR and
//                                  continue from the first missing sample
//   --precharac-cache PATH        persist the pre-characterization bundle
//                                  (cones, signatures, lifetimes, potency) to
//                                  PATH and load it on later runs instead of
//                                  re-elaborating. The artifact is integrity
//                                  checked end to end; any mismatch falls
//                                  back to recompute-and-rewrite. Results are
//                                  bitwise-identical with and without the
//                                  cache. Forwarded to supervised workers,
//                                  which coordinate through PATH.lock
//   --no-precharac-cache          clear an earlier --precharac-cache
//   --supervise N                 evaluate only: run the campaign across N
//                                  worker *processes* (requires --journal).
//                                  Workers that crash or wedge are SIGKILLed
//                                  and restarted; samples that keep killing
//                                  workers are quarantined as failed records.
//                                  Estimates are bitwise-identical to the
//                                  single-process engine at every N.
//   --heartbeat-ms N              supervise only: per-sample liveness
//                                  deadline before a worker is presumed
//                                  wedged (default 30000)
//   --shard-size N                samples per journal shard: the flush /
//                                  commit granularity, and the per-worker
//                                  assignment size under --supervise
//                                  (default 256)
//   --metrics-out FILE            evaluate only: JSON run report (phase
//                                  timings, outcome-path counters, ESS)
//   --trace-out FILE              evaluate only: Chrome-trace events
//                                  (load in chrome://tracing or Perfetto)
//   --progress                    evaluate only: throttled stderr progress
//                                  (samples/s, running SSF +- CI, ESS)
//
// All flag values are validated strictly: unknown flags, non-numeric or
// out-of-range values exit with the usage message and status 2 instead of
// silently defaulting.
//
// Exit codes: 0 success, 1 runtime failure, 2 usage error, 3 campaign
// interrupted but resumable — SIGINT/SIGTERM, or the journal device filling
// up / failing mid-campaign (partial results journaled; rerun with --resume
// to continue).
//
// `--chaos-write-nth N` / `--chaos-fsync-nth N` are hidden test-only flags:
// they make the Nth low-level campaign file write (or fsync) in this process
// — and, when supervising, in every worker — fail with ENOSPC, driving the
// degraded-I/O paths deterministically (see util/io.h ChaosFile).
//
// `fav worker` is a hidden command spawned by `--supervise`; it speaks the
// supervisor pipe protocol on stdin/stdout (see mc/supervisor.h) and is not
// meant to be invoked by hand.
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/framework.h"
#include "mc/supervisor.h"
#include "core/hardening.h"
#include "netlist/verilog.h"
#include "rtl/vcd.h"
#include "util/io.h"

using namespace fav;

namespace {

/// Graceful-stop flag set by SIGINT/SIGTERM: the engine (or supervisor)
/// finishes the in-flight chunk, flushes a partial run report marked
/// interrupted, and exits with code 3. The handler is installed with
/// SA_RESETHAND, so a second signal terminates immediately.
std::atomic<bool> g_stop{false};

void handle_stop_signal(int) { g_stop.store(true, std::memory_order_relaxed); }

void install_stop_handlers() {
  struct sigaction sa {};
  sa.sa_handler = handle_stop_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESETHAND;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
}

const char* g_argv0 = "fav";

struct Options {
  std::string command;
  std::string benchmark = "write";
  std::string technique = "radiation";
  std::string strategy = "importance";
  std::string out;
  std::string journal;
  std::string precharac_cache;
  std::string metrics_out;
  std::string trace_out;
  bool progress = false;
  bool resume = false;
  std::size_t samples = 3000;
  std::uint64_t seed = 2017;
  int t_range = 50;
  double radius = 1.5;
  double coverage = 0.95;
  std::size_t threads = 1;
  std::size_t batch_lanes = 64;
  std::uint64_t cycle_budget = 0;
  std::uint64_t deadline_ms = 0;
  // Capped by default: a capacity-less 1e6+-sample campaign keeps every
  // record in memory (estimates and contribution maps are unaffected by the
  // cap — see EvaluatorConfig::record_capacity).
  std::size_t record_capacity = 200'000;
  // Multi-process supervisor (0 = in-process engine).
  std::size_t supervise = 0;
  std::uint64_t heartbeat_ms = 30000;
  std::size_t shard_size = 256;
  // Hidden `fav worker` mode (spawned by the supervisor).
  std::size_t worker_id = 0;
  // Test-only chaos injection, forwarded to workers (see WorkerHeartbeat).
  std::uint64_t crash_after = 0;
  std::uint64_t crash_on = mc::kNoCrashIndex;
  // Test-only degraded-I/O injection: make the Nth physical file write /
  // fsync fail with ENOSPC (0 = off; see util/io.h ChaosFile).
  std::uint64_t chaos_write_nth = 0;
  std::uint64_t chaos_fsync_nth = 0;

  core::FrameworkConfig framework_config() const {
    core::FrameworkConfig cfg;
    cfg.technique = technique;
    cfg.precharac_cache_path = precharac_cache;
    cfg.evaluator.threads = threads;
    cfg.evaluator.batch_lanes = batch_lanes;
    cfg.evaluator.cycle_budget = cycle_budget;
    cfg.evaluator.sample_deadline_ms = deadline_ms;
    cfg.evaluator.record_capacity = record_capacity;
    return cfg;
  }
};

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg != nullptr) std::fprintf(stderr, "error: %s\n\n", msg);
  std::fprintf(stderr,
               "usage: fav <info|characterize|evaluate|harden|export-verilog|"
               "trace> [options]\n"
               "options: --benchmark write|read|exec|dma  --samples N\n"
               "         --seed S\n"
               "         --technique radiation|clock-glitch\n"
               "         --strategy random|cone|importance  --t-range N\n"
               "         --radius R  --coverage C  --out FILE\n"
               "         --record-capacity N (0 = unlimited)\n"
               "         --threads N (0 = all hardware threads)\n"
               "         --batch-lanes N (0/1 = scalar, default 64)\n"
               "         --cycle-budget N  --deadline-ms N (0 = unlimited)\n"
               "         --journal DIR  --resume (evaluate only)\n"
               "         --precharac-cache PATH  --no-precharac-cache\n"
               "                              (evaluate/harden: persist and\n"
               "                               reuse the pre-characterization\n"
               "                               bundle; integrity-checked)\n"
               "         --supervise N  --heartbeat-ms N\n"
               "         --shard-size N (evaluate only, needs --journal)\n"
               "         --metrics-out FILE  --trace-out FILE  --progress\n"
               "                              (evaluate only)\n");
  std::exit(2);
}

// Strict numeric parsing: the whole token must parse and land in range,
// otherwise the CLI exits through usage() — no silent defaulting, no silent
// prefix parses ("12abc"), no unsigned wrap-around ("-5" as a count).
std::uint64_t parse_u64(const std::string& flag, const std::string& value,
                        std::uint64_t min, std::uint64_t max) {
  std::uint64_t parsed = 0;
  const char* begin = value.c_str();
  const char* end = begin + value.size();
  const auto [ptr, ec] = std::from_chars(begin, end, parsed);
  if (value.empty() || ec != std::errc{} || ptr != end) {
    usage((flag + " expects an unsigned integer, got '" + value + "'").c_str());
  }
  if (parsed < min || parsed > max) {
    usage((flag + " value " + value + " out of range [" +
           std::to_string(min) + ", " + std::to_string(max) + "]")
              .c_str());
  }
  return parsed;
}

double parse_double(const std::string& flag, const std::string& value,
                    double min, double max) {
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (value.empty() || end != value.c_str() + value.size() ||
      !std::isfinite(parsed)) {
    usage((flag + " expects a finite number, got '" + value + "'").c_str());
  }
  if (parsed < min || parsed > max) {
    usage((flag + " value " + value + " out of range [" +
           std::to_string(min) + ", " + std::to_string(max) + "]")
              .c_str());
  }
  return parsed;
}

Options parse(int argc, char** argv) {
  if (argc < 2) usage();
  Options o;
  o.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--benchmark") {
      o.benchmark = value();
    } else if (arg == "--technique") {
      o.technique = value();
    } else if (arg == "--record-capacity") {
      o.record_capacity = parse_u64(arg, value(), 0, 1'000'000'000);
    } else if (arg == "--samples") {
      o.samples = parse_u64(arg, value(), 1, 1'000'000'000);
    } else if (arg == "--seed") {
      o.seed = parse_u64(arg, value(), 0, UINT64_MAX);
    } else if (arg == "--strategy") {
      o.strategy = value();
    } else if (arg == "--t-range") {
      o.t_range = static_cast<int>(parse_u64(arg, value(), 1, 1'000'000));
    } else if (arg == "--radius") {
      o.radius = parse_double(arg, value(), 0.0, 1e6);
    } else if (arg == "--coverage") {
      o.coverage = parse_double(arg, value(), 1e-9, 1.0);
    } else if (arg == "--threads") {
      o.threads = parse_u64(arg, value(), 0, 4096);
    } else if (arg == "--batch-lanes") {
      o.batch_lanes = parse_u64(arg, value(), 0, 64);
    } else if (arg == "--cycle-budget") {
      o.cycle_budget = parse_u64(arg, value(), 0, UINT64_MAX);
    } else if (arg == "--deadline-ms") {
      o.deadline_ms = parse_u64(arg, value(), 0, UINT64_MAX);
    } else if (arg == "--journal") {
      o.journal = value();
    } else if (arg == "--precharac-cache") {
      o.precharac_cache = value();
    } else if (arg == "--no-precharac-cache") {
      o.precharac_cache.clear();
    } else if (arg == "--chaos-write-nth") {
      o.chaos_write_nth = parse_u64(arg, value(), 1, UINT64_MAX);
    } else if (arg == "--chaos-fsync-nth") {
      o.chaos_fsync_nth = parse_u64(arg, value(), 1, UINT64_MAX);
    } else if (arg == "--supervise") {
      o.supervise = parse_u64(arg, value(), 1, 1024);
    } else if (arg == "--heartbeat-ms") {
      o.heartbeat_ms = parse_u64(arg, value(), 1, 86'400'000);
    } else if (arg == "--shard-size") {
      o.shard_size = parse_u64(arg, value(), 1, 1'000'000'000);
    } else if (arg == "--worker-id") {
      o.worker_id = parse_u64(arg, value(), 0, 1024);
    } else if (arg == "--crash-after-samples") {
      o.crash_after = parse_u64(arg, value(), 1, UINT64_MAX);
    } else if (arg == "--crash-on-sample-index") {
      o.crash_on = parse_u64(arg, value(), 0, UINT64_MAX);
    } else if (arg == "--resume") {
      o.resume = true;
    } else if (arg == "--metrics-out") {
      o.metrics_out = value();
    } else if (arg == "--trace-out") {
      o.trace_out = value();
    } else if (arg == "--progress") {
      o.progress = true;
    } else if (arg == "--out") {
      o.out = value();
    } else {
      usage(("unknown option " + arg).c_str());
    }
  }
  if (o.strategy != "random" && o.strategy != "cone" &&
      o.strategy != "importance") {
    usage(("unknown strategy '" + o.strategy + "'").c_str());
  }
  if (o.technique != "radiation" && o.technique != "clock-glitch") {
    usage(("unknown technique '" + o.technique + "'").c_str());
  }
  if (o.resume && o.journal.empty()) usage("--resume requires --journal DIR");
  if (!o.journal.empty() && o.command != "evaluate" &&
      o.command != "worker") {
    usage("--journal only applies to the evaluate command");
  }
  if ((!o.metrics_out.empty() || !o.trace_out.empty() || o.progress) &&
      o.command != "evaluate") {
    usage("--metrics-out/--trace-out/--progress only apply to the evaluate "
          "command");
  }
  if (o.supervise > 0) {
    if (o.command != "evaluate") {
      usage("--supervise only applies to the evaluate command");
    }
    if (o.journal.empty()) usage("--supervise requires --journal DIR");
    if (!o.trace_out.empty()) {
      usage("--trace-out is not supported with --supervise (worker processes "
            "do not ship trace events)");
    }
  }
  if (o.command == "worker" && o.journal.empty()) {
    usage("worker requires --journal DIR");
  }
  if ((o.crash_after != 0 || o.crash_on != mc::kNoCrashIndex) &&
      o.command != "worker" && o.supervise == 0) {
    usage("--crash-after-samples/--crash-on-sample-index only apply to "
          "supervised campaigns and worker mode");
  }
  if (!o.precharac_cache.empty() && o.command != "evaluate" &&
      o.command != "worker" && o.command != "harden") {
    usage("--precharac-cache only applies to the evaluate and harden "
          "commands");
  }
  if ((o.chaos_write_nth != 0 || o.chaos_fsync_nth != 0) &&
      o.command != "evaluate" && o.command != "worker") {
    usage("--chaos-write-nth/--chaos-fsync-nth only apply to the evaluate "
          "command and worker mode");
  }
  return o;
}

soc::SecurityBenchmark pick_benchmark(const std::string& name) {
  if (name == "write") return soc::make_illegal_write_benchmark();
  if (name == "read") return soc::make_illegal_read_benchmark();
  if (name == "exec") return soc::make_illegal_exec_benchmark();
  if (name == "dma") return soc::make_dma_exfiltration_benchmark();
  usage(("unknown benchmark '" + name + "'").c_str());
}

int cmd_info(const Options& o) {
  core::FaultAttackEvaluator fw(pick_benchmark(o.benchmark));
  const auto& nl = fw.soc().netlist();
  std::printf("MCU16 design\n");
  std::printf("  gates            : %zu\n", nl.gate_count());
  std::printf("  registers (DFFs) : %zu\n", nl.dffs().size());
  std::printf("  logic levels     : %d\n", nl.max_level());
  std::printf("  clock period     : %.1f (critical path %.1f)\n",
              fw.injector().timing().clock_period(),
              fw.injector().timing().critical_path());
  std::printf("  placed cells     : %zu (%.0f x %.0f)\n",
              fw.placement().placed_nodes().size(), fw.placement().width(),
              fw.placement().height());
  std::printf("benchmark '%s'\n", fw.benchmark().name.c_str());
  std::printf("  golden run       : %llu cycles\n",
              static_cast<unsigned long long>(fw.golden().length()));
  std::printf("  target cycle Tt  : %llu\n",
              static_cast<unsigned long long>(fw.target_cycle()));
  std::printf("  memory-type bits : %zu / %d\n",
              fw.characterization().memory_type_bits().size(),
              rtl::Machine::reg_map().total_bits());
  return 0;
}

int cmd_characterize(const Options& o) {
  core::FaultAttackEvaluator fw(pick_benchmark(o.benchmark));
  const auto& map = rtl::Machine::reg_map();
  const auto& charac = fw.characterization();
  std::printf("%-14s %10s %14s %10s\n", "field", "lifetime", "contamination",
              "mem-type");
  for (std::size_t fi = 0; fi < map.fields().size(); ++fi) {
    const auto& f = map.fields()[fi];
    double lt = 0, ct = 0;
    int mem = 0;
    for (int b = 0; b < f.width; ++b) {
      lt += charac.bit(f.offset + b).avg_lifetime;
      ct += charac.bit(f.offset + b).avg_contamination;
      mem += charac.is_memory_type(f.offset + b) ? 1 : 0;
    }
    std::printf("%-14s %10.1f %14.2f %7d/%d\n", f.name.c_str(), lt / f.width,
                ct / f.width, mem, f.width);
  }
  return 0;
}

/// Campaign identity for the journal: any option that changes the sample
/// stream or its evaluation changes the fingerprint, so a stale journal from
/// a different configuration is rejected on --resume.
std::uint64_t campaign_fingerprint(const Options& o,
                                   const std::string& actual_strategy) {
  core::CampaignKey key;
  key.benchmark = o.benchmark;
  key.technique = o.technique;
  key.strategy = actual_strategy;
  key.seed = o.seed;
  key.samples = o.samples;
  key.t_range = o.t_range;
  key.radius = o.radius;
  key.cycle_budget = o.cycle_budget;
  return core::campaign_fingerprint(key);
}

/// Minimal JSON string escaping for free-form report fields (cache paths
/// and fallback detail strings can carry quotes or backslashes).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// Full-precision double formatting for worker argv: std::to_string would
/// truncate to 6 decimals and hand the workers a *different* sample stream.
std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string self_exe_path() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    return buf;
  }
  return g_argv0;
}

/// argv of a `fav worker` process: everything that identifies the campaign,
/// so the worker re-derives the bitwise-identical sample batch. Workers
/// always keep full records (--record-capacity 0) — the journal needs every
/// record of an assigned shard.
std::vector<std::string> worker_command(const Options& o) {
  std::vector<std::string> argv = {
      self_exe_path(), "worker",
      "--benchmark", o.benchmark,
      "--technique", o.technique,
      "--strategy", o.strategy,
      "--samples", std::to_string(o.samples),
      "--seed", std::to_string(o.seed),
      "--t-range", std::to_string(o.t_range),
      "--radius", format_double(o.radius),
      "--cycle-budget", std::to_string(o.cycle_budget),
      "--deadline-ms", std::to_string(o.deadline_ms),
      "--threads", std::to_string(o.threads),
      "--batch-lanes", std::to_string(o.batch_lanes),
      "--record-capacity", "0",
      "--journal", o.journal};
  if (!o.precharac_cache.empty()) {
    // Workers share the supervisor's artifact: whoever elaborates first
    // writes it under PATH.lock, the rest load (core/framework.h).
    argv.push_back("--precharac-cache");
    argv.push_back(o.precharac_cache);
  }
  if (o.chaos_write_nth != 0) {
    argv.push_back("--chaos-write-nth");
    argv.push_back(std::to_string(o.chaos_write_nth));
  }
  if (o.chaos_fsync_nth != 0) {
    argv.push_back("--chaos-fsync-nth");
    argv.push_back(std::to_string(o.chaos_fsync_nth));
  }
  if (o.crash_on != mc::kNoCrashIndex) {
    // Deterministic chaos: rides every incarnation so the shard containing
    // this index keeps killing workers and exercises the quarantine path.
    argv.push_back("--crash-on-sample-index");
    argv.push_back(std::to_string(o.crash_on));
  }
  return argv;
}

struct EvalOutcome {
  mc::SsfResult res;
  bool supervised = false;
  std::size_t restarts = 0;
  std::size_t quarantined_shards = 0;
  std::size_t quarantined_samples = 0;
  std::size_t storage_full_stops = 0;
};

EvalOutcome run_eval(core::FaultAttackEvaluator& fw, const Options& o,
                     std::string* actual_strategy = nullptr) {
  core::SamplerSelection sel;
  if (o.technique == "clock-glitch") {
    sel = fw.make_sampler_with_fallback(fw.glitch_attack_model(o.t_range),
                                        o.strategy);
  } else {
    sel = fw.make_sampler_with_fallback(
        fw.subblock_attack_model(o.radius, o.t_range), o.strategy);
  }
  if (sel.downgraded()) {
    std::fprintf(stderr, "fav: strategy downgraded %s -> %s (%s)\n",
                 sel.requested.c_str(), sel.actual.c_str(),
                 sel.downgrade_reason.c_str());
  }
  if (actual_strategy != nullptr) *actual_strategy = sel.actual;
  Rng rng(o.seed);
  EvalOutcome out;
  if (o.supervise > 0) {
    mc::SupervisorConfig sc;
    sc.workers = o.supervise;
    sc.shard_size = o.shard_size;
    sc.heartbeat_ms = o.heartbeat_ms;
    sc.worker_command = worker_command(o);
    if (o.crash_after != 0) {
      // One-shot chaos: worker 0's first incarnation only, so restarts make
      // progress and no shard can be killed twice by the injection alone.
      sc.first_spawn_args = {"--crash-after-samples",
                             std::to_string(o.crash_after)};
    }
    sc.dir = o.journal;
    sc.resume = o.resume;
    sc.fingerprint = campaign_fingerprint(o, sel.actual);
    sc.context = o.benchmark + "/" + o.technique + "/" + sel.actual;
    sc.metrics = fw.evaluator().config().metrics;
    sc.progress = fw.evaluator().config().progress;
    sc.stop = &g_stop;
    mc::CampaignSupervisor supervisor(fw.evaluator(), sc);
    Result<mc::SupervisedResult> result =
        supervisor.run(*sel.sampler, rng, o.samples);
    if (!result.is_ok()) {
      std::fprintf(stderr, "fav: supervised run failed: %s\n",
                   result.status().to_string().c_str());
      std::exit(1);
    }
    out.res = std::move(result.value().result);
    out.supervised = true;
    out.restarts = result.value().restarts;
    out.quarantined_shards = result.value().quarantined_shards;
    out.quarantined_samples = result.value().quarantined_samples;
    out.storage_full_stops = result.value().storage_full_stops;
    return out;
  }
  if (o.journal.empty()) {
    out.res = fw.evaluator().run(*sel.sampler, rng, o.samples);
    return out;
  }
  mc::JournalOptions jopt;
  jopt.dir = o.journal;
  jopt.resume = o.resume;
  jopt.shard_size = o.shard_size;
  jopt.fingerprint = campaign_fingerprint(o, sel.actual);
  jopt.context = o.benchmark + "/" + o.technique + "/" + sel.actual;
  Result<mc::SsfResult> result =
      fw.evaluator().run_journaled(*sel.sampler, rng, o.samples, jopt);
  if (!result.is_ok()) {
    std::fprintf(stderr, "fav: journaled run failed: %s\n",
                 result.status().to_string().c_str());
    std::exit(1);
  }
  out.res = std::move(result).value();
  return out;
}

void print_failures(const mc::SsfResult& res) {
  if (res.failed == 0 && res.retried == 0) return;
  std::printf("failures   : %zu failed / %zu retried (%.4f%% of weight)\n",
              res.failed, res.retried, 100.0 * res.failed_weight_fraction());
  for (const auto& [code, count] : res.failure_counts) {
    std::printf("             %s x%zu\n", error_code_name(code), count);
  }
}

/// JSON run report (schema fav.run_report.v1): campaign identity, estimate
/// quality (SSF, CI, ESS), outcome-path split and the merged metrics sink
/// (per-phase timers, counters, gauges). Machine-readable companion to the
/// human-readable stdout block of cmd_evaluate.
void write_run_report(std::ostream& out, const Options& o,
                      const std::string& strategy, const EvalOutcome& eval,
                      const core::PrecharacCacheReport& cache,
                      double elapsed_s, const MetricsSink& metrics) {
  const mc::SsfResult& res = eval.res;
  auto num = [&out](double v) {
    if (std::isfinite(v)) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", v);
      out << buf;
    } else {
      out << "null";
    }
  };
  const double se = res.stats.standard_error();
  out << "{\n"
      << "  \"schema\": \"fav.run_report.v1\",\n"
      << "  \"benchmark\": \"" << o.benchmark << "\",\n"
      << "  \"technique\": \"" << o.technique << "\",\n"
      << "  \"strategy\": \"" << strategy << "\",\n"
      << "  \"samples\": " << o.samples << ",\n"
      << "  \"evaluated\": " << res.evaluated << ",\n"
      << "  \"interrupted\": " << (res.interrupted ? "true" : "false") << ",\n"
      << "  \"seed\": " << o.seed << ",\n"
      << "  \"threads\": " << o.threads << ",\n"
      << "  \"batch_lanes\": " << o.batch_lanes << ",\n"
      << "  \"supervise\": " << o.supervise << ",\n";
  if (eval.supervised) {
    out << "  \"supervisor\": {\"restarts\": " << eval.restarts
        << ", \"quarantined_shards\": " << eval.quarantined_shards
        << ", \"quarantined_samples\": " << eval.quarantined_samples
        << ", \"storage_full_stops\": " << eval.storage_full_stops
        << "},\n";
  }
  out << "  \"precharac_cache\": {\"enabled\": "
      << (cache.enabled ? "true" : "false") << ", \"path\": \""
      << json_escape(cache.path) << "\", \"outcome\": \"" << cache.outcome
      << "\", \"detail\": \"" << json_escape(cache.detail)
      << "\", \"stored\": " << (cache.stored ? "true" : "false") << "},\n";
  out << "  \"elapsed_s\": ";
  num(elapsed_s);
  out << ",\n  \"samples_per_s\": ";
  num(elapsed_s > 0.0 ? static_cast<double>(res.evaluated) / elapsed_s : 0.0);
  out << ",\n  \"ssf\": ";
  num(res.ssf());
  out << ",\n  \"std_error\": ";
  num(se);
  out << ",\n  \"ci95_half_width\": ";
  num(1.96 * se);
  out << ",\n  \"variance\": ";
  num(res.sample_variance());
  out << ",\n  \"ess\": ";
  num(res.effective_sample_size());
  out << ",\n  \"successes\": " << res.successes << ",\n"
      << "  \"paths\": {\"masked\": " << res.masked
      << ", \"analytical\": " << res.analytical << ", \"rtl\": " << res.rtl
      << ", \"failed\": " << res.failed << "},\n"
      << "  \"retried\": " << res.retried << ",\n"
      << "  \"failed_weight_fraction\": ";
  num(res.failed_weight_fraction());
  out << ",\n  \"failure_counts\": {";
  bool first_fail = true;
  for (const auto& [code, count] : res.failure_counts) {
    if (!first_fail) out << ", ";
    first_fail = false;
    out << "\"" << error_code_name(code) << "\": " << count;
  }
  out << "},\n  \"metrics\": ";
  metrics.write_json(out);
  out << "\n}\n";
}

int cmd_evaluate(const Options& o) {
  // Observability sinks live here (campaign scope); the evaluator only sees
  // non-null pointers for what was requested, so unused channels stay
  // zero-cost.
  MetricsSink metrics;
  TraceBuffer trace;
  std::optional<ProgressMeter> progress;
  if (o.progress) progress.emplace(o.samples);
  core::FrameworkConfig cfg = o.framework_config();
  if (!o.metrics_out.empty()) cfg.evaluator.metrics = &metrics;
  if (!o.trace_out.empty()) cfg.evaluator.trace = &trace;
  if (progress.has_value()) cfg.evaluator.progress = &*progress;
  cfg.evaluator.stop = &g_stop;
  install_stop_handlers();
  if (o.chaos_write_nth != 0 || o.chaos_fsync_nth != 0) {
    io::ChaosFile chaos;
    chaos.fail_write_at = o.chaos_write_nth;
    chaos.fail_fsync_at = o.chaos_fsync_nth;
    io::chaos_install(chaos);
  }
  core::FaultAttackEvaluator fw(pick_benchmark(o.benchmark), cfg);
  std::string actual_strategy = o.strategy;
  const std::uint64_t t0 = monotonic_ns();
  const EvalOutcome eval = run_eval(fw, o, &actual_strategy);
  // The injected fault targets the campaign write path; clear it so the
  // interrupted run report below can still land (the real-world analogue is
  // a report on a different device than the full journal disk).
  io::chaos_reset();
  const mc::SsfResult& res = eval.res;
  const double elapsed_s =
      static_cast<double>(monotonic_ns() - t0) * 1e-9;
  if (progress.has_value()) progress->finish();
  std::printf("benchmark  : %s\n", fw.benchmark().name.c_str());
  std::printf("technique  : %s\n", fw.technique().name());
  std::printf("strategy   : %s (n=%zu, seed=%llu)\n", actual_strategy.c_str(),
              o.samples, static_cast<unsigned long long>(o.seed));
  if (res.interrupted) {
    std::printf("interrupted: yes — %zu of %zu samples evaluated "
                "(rerun with --resume to continue)\n",
                res.evaluated, o.samples);
  }
  if (eval.supervised) {
    std::printf("supervisor : %zu worker(s), %zu restart(s), %zu shard(s) / "
                "%zu sample(s) quarantined\n",
                o.supervise, eval.restarts, eval.quarantined_shards,
                eval.quarantined_samples);
    if (eval.storage_full_stops > 0) {
      std::printf("storage    : %zu worker(s) stopped on a full/failing "
                  "journal device\n",
                  eval.storage_full_stops);
    }
  }
  const core::PrecharacCacheReport& cache = fw.precharac_cache();
  if (cache.enabled) {
    std::printf("precharac  : cache %s (%s)%s\n", cache.outcome.c_str(),
                cache.path.c_str(), cache.stored ? ", stored" : "");
  }
  std::printf("SSF        : %.6f\n", res.ssf());
  std::printf("std error  : %.6f\n", res.stats.standard_error());
  std::printf("variance   : %.3e\n", res.sample_variance());
  std::printf("ESS        : %.1f of %zu\n", res.effective_sample_size(),
              o.samples);
  std::printf("successes  : %zu\n", res.successes);
  std::printf("paths      : %zu masked / %zu analytical / %zu rtl\n",
              res.masked, res.analytical, res.rtl);
  print_failures(res);
  if (!o.metrics_out.empty()) {
    metrics.merge(fw.metrics());  // pre-characterization + sampler provenance
    std::ostringstream report;
    write_run_report(report, o, actual_strategy, eval, cache, elapsed_s,
                     metrics);
    const Status written = io::atomic_write_file(o.metrics_out, report.str());
    if (!written.is_ok()) {
      std::fprintf(stderr, "fav: cannot write run report: %s\n",
                   written.to_string().c_str());
      return 1;
    }
    std::printf("run report : %s\n", o.metrics_out.c_str());
  }
  if (!o.trace_out.empty()) {
    std::ostringstream events;
    trace.write_json(events);
    const Status written = io::atomic_write_file(o.trace_out, events.str());
    if (!written.is_ok()) {
      std::fprintf(stderr, "fav: cannot write trace: %s\n",
                   written.to_string().c_str());
      return 1;
    }
    std::printf("trace      : %s (%zu events)\n", o.trace_out.c_str(),
                trace.size());
  }
  const auto& map = rtl::Machine::reg_map();
  const auto fields = core::select_critical_fields(res, 0.95);
  std::printf("critical   :");
  for (const int f : fields) std::printf(" %s", map.field(f).name.c_str());
  std::printf("\n");
  return res.interrupted ? 3 : 0;
}

/// Hidden worker mode (spawned by --supervise): stdin/stdout are the
/// supervisor's protocol pipes, so nothing in this path may print to stdout.
/// Elaborates the identical framework from the forwarded campaign flags,
/// re-draws the full batch, and serves shard assignments until SHUTDOWN/EOF.
int cmd_worker(const Options& o) {
  // The supervisor coordinates shutdown over the pipe; a terminal SIGINT
  // (Ctrl-C hits the whole foreground process group) must not kill workers
  // mid-shard. SIGTERM stays default: it is the PDEATHSIG delivered when the
  // supervisor dies, and workers must not outlive it.
  ::signal(SIGPIPE, SIG_IGN);
  ::signal(SIGINT, SIG_IGN);
  if (o.chaos_write_nth != 0 || o.chaos_fsync_nth != 0) {
    io::ChaosFile chaos;
    chaos.fail_write_at = o.chaos_write_nth;
    chaos.fail_fsync_at = o.chaos_fsync_nth;
    io::chaos_install(chaos);
  }
  static mc::WorkerHeartbeat heartbeat(STDOUT_FILENO);
  heartbeat.set_crash_after(o.crash_after);
  heartbeat.set_crash_on(o.crash_on);
  MetricsSink metrics;
  core::FrameworkConfig cfg = o.framework_config();
  cfg.evaluator.record_capacity = 0;  // the journal needs every record
  cfg.evaluator.metrics = &metrics;
  // The supervisor runs the one global reduction over the merged journals;
  // workers shipping reduce-derived counters would double-count them.
  cfg.evaluator.reduce_metrics = false;
  cfg.evaluator.on_sample = [](const mc::SampleRecord& record,
                               std::size_t slice_index) {
    heartbeat.on_sample(record, slice_index);
  };
  core::FaultAttackEvaluator fw(pick_benchmark(o.benchmark), cfg);
  core::SamplerSelection sel;
  if (o.technique == "clock-glitch") {
    sel = fw.make_sampler_with_fallback(fw.glitch_attack_model(o.t_range),
                                        o.strategy);
  } else {
    sel = fw.make_sampler_with_fallback(
        fw.subblock_attack_model(o.radius, o.t_range), o.strategy);
  }
  Rng rng(o.seed);
  const std::vector<faultsim::FaultSample> samples =
      fw.evaluator().draw_batch(*sel.sampler, rng, o.samples);
  mc::WorkerLoopOptions wopt;
  wopt.dir = o.journal;
  wopt.worker_id = o.worker_id;
  wopt.fingerprint = campaign_fingerprint(o, sel.actual);
  wopt.context = o.benchmark + "/" + o.technique + "/" + sel.actual;
  wopt.in_fd = STDIN_FILENO;
  wopt.out_fd = STDOUT_FILENO;
  const Status status =
      mc::run_worker_loop(fw.evaluator(), samples, heartbeat, wopt, &metrics);
  if (!status.is_ok()) {
    std::fprintf(stderr, "fav worker %zu: %s\n", o.worker_id,
                 status.to_string().c_str());
    // Storage full/failing: every journaled shard is intact, so signal the
    // supervisor to stop the fleet gracefully instead of treating this
    // worker as crashed (no attempts charge, no quarantine, no respawn).
    if (status.code() == ErrorCode::kStorageFull) {
      return mc::kExitResumableStop;
    }
    return 1;
  }
  return 0;
}

int cmd_harden(const Options& o) {
  core::FaultAttackEvaluator fw(pick_benchmark(o.benchmark),
                                o.framework_config());
  const auto res = run_eval(fw, o).res;
  const auto cells = core::select_critical_bits(res, o.coverage);
  Rng rng(o.seed + 1);
  const auto report = core::evaluate_hardening(fw.evaluator(), fw.soc(), res,
                                               cells, {}, rng);
  const auto& map = rtl::Machine::reg_map();
  std::printf("baseline SSF : %.6f\n", report.base_ssf);
  std::printf("hardened SSF : %.6f  (%.1fx better)\n", report.hardened_ssf,
              report.improvement());
  std::printf("cells        : %zu of %zu (%.1f%%)\n",
              report.protected_bits.size(), report.total_register_bits,
              100.0 * report.protected_register_fraction());
  std::printf("area overhead: %.2f%%\n", 100.0 * report.area_overhead);
  std::printf("hardened     :");
  for (const int bit : report.protected_bits) {
    const auto [fi, b] = map.locate(bit);
    std::printf(" %s[%d]", map.field(fi).name.c_str(), b);
  }
  std::printf("\n");
  return 0;
}

int cmd_export_verilog(const Options& o) {
  const soc::SocNetlist soc;
  if (o.out.empty()) {
    netlist::write_verilog(soc.netlist(), std::cout, "mcu16");
  } else {
    std::ofstream f(o.out);
    if (!f) usage(("cannot open " + o.out).c_str());
    netlist::write_verilog(soc.netlist(), f, "mcu16");
    std::printf("wrote %s\n", o.out.c_str());
  }
  return 0;
}

int cmd_trace(const Options& o) {
  if (o.out.empty()) usage("trace requires --out FILE");
  const soc::SecurityBenchmark bench = pick_benchmark(o.benchmark);
  std::ofstream f(o.out);
  if (!f) usage(("cannot open " + o.out).c_str());
  rtl::VcdWriter vcd(f);
  rtl::Machine m(bench.program);
  while (!m.halted() && m.cycle() < bench.max_cycles) {
    vcd.sample(m.cycle(), m.state());
    m.step();
  }
  vcd.sample(m.cycle(), m.state());
  std::printf("wrote %s (%zu samples)\n", o.out.c_str(),
              vcd.samples_written());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 0 && argv[0] != nullptr) g_argv0 = argv[0];
  try {
    const Options o = parse(argc, argv);
    if (o.command == "info") return cmd_info(o);
    if (o.command == "characterize") return cmd_characterize(o);
    if (o.command == "evaluate") return cmd_evaluate(o);
    if (o.command == "worker") return cmd_worker(o);
    if (o.command == "harden") return cmd_harden(o);
    if (o.command == "export-verilog") return cmd_export_verilog(o);
    if (o.command == "trace") return cmd_trace(o);
    usage(("unknown command '" + o.command + "'").c_str());
  } catch (const StatusError& e) {
    std::fprintf(stderr, "fav: [%s] %s\n", error_code_name(e.code()),
                 e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fav: %s\n", e.what());
    return 1;
  }
}
