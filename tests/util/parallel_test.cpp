#include "util/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/check.h"

namespace fav {
namespace {

TEST(ResolveThreadCount, ZeroMeansHardware) {
  EXPECT_GE(resolve_thread_count(0), 1u);
  EXPECT_EQ(resolve_thread_count(1), 1u);
  EXPECT_EQ(resolve_thread_count(7), 7u);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (const std::size_t threads : {1u, 2u, 3u, 8u}) {
    for (const std::size_t n : {0u, 1u, 7u, 64u, 1000u}) {
      std::vector<std::atomic<int>> hits(n);
      parallel_for(n, threads, 8,
                   [&](std::size_t, std::size_t lo, std::size_t hi) {
                     for (std::size_t i = lo; i < hi; ++i) ++hits[i];
                   });
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "n=" << n << " threads=" << threads
                                     << " index " << i;
      }
    }
  }
}

TEST(ParallelFor, BlocksAreContiguousAndGrainSized) {
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> blocks;
  parallel_for(100, 4, 8, [&](std::size_t, std::size_t lo, std::size_t hi) {
    const std::lock_guard<std::mutex> lock(mu);
    blocks.emplace_back(lo, hi);
  });
  std::size_t covered = 0;
  for (const auto& [lo, hi] : blocks) {
    EXPECT_LT(lo, hi);
    EXPECT_LE(hi - lo, 8u);
    EXPECT_EQ(lo % 8, 0u);  // blocks start on grain boundaries
    covered += hi - lo;
  }
  EXPECT_EQ(covered, 100u);
}

TEST(ParallelFor, WorkerIndicesAreDistinctAndInRange) {
  // Every reported worker id must be usable as an index into a scratch
  // array of `threads` elements.
  std::mutex mu;
  std::set<std::size_t> workers;
  parallel_for(64, 4, 1, [&](std::size_t w, std::size_t, std::size_t) {
    const std::lock_guard<std::mutex> lock(mu);
    workers.insert(w);
  });
  for (const std::size_t w : workers) EXPECT_LT(w, 4u);
}

TEST(ParallelFor, SmallRangeRunsInline) {
  // n <= grain: must execute on the calling thread as worker 0.
  const auto caller = std::this_thread::get_id();
  parallel_for(4, 8, 8, [&](std::size_t w, std::size_t, std::size_t) {
    EXPECT_EQ(w, 0u);
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(ParallelFor, PropagatesExceptions) {
  for (const std::size_t threads : {1u, 4u}) {
    EXPECT_THROW(
        parallel_for(100, threads, 4,
                     [&](std::size_t, std::size_t lo, std::size_t hi) {
                       // Fires in whichever block holds index 48 — exactly
                       // once under any partitioning, including inline.
                       if (lo <= 48 && 48 < hi) throw std::runtime_error("boom");
                     }),
        std::runtime_error);
  }
}

TEST(ParallelFor, ZeroGrainRejected) {
  EXPECT_THROW(
      parallel_for(10, 2, 0, [](std::size_t, std::size_t, std::size_t) {}),
      CheckError);
}

}  // namespace
}  // namespace fav
