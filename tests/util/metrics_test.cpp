// Unit tests for the observability layer: sink accounting, deterministic
// merge, ScopeTimer RAII, Chrome-trace serialization and the progress meter.
#include "util/metrics.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>

namespace fav {
namespace {

TEST(MetricsSink, CountersAccumulate) {
  MetricsSink m;
  EXPECT_EQ(m.counter("x"), 0u);
  EXPECT_TRUE(m.empty());
  m.add_counter("x");
  m.add_counter("x", 4);
  m.add_counter("y", 2);
  EXPECT_EQ(m.counter("x"), 5u);
  EXPECT_EQ(m.counter("y"), 2u);
  EXPECT_FALSE(m.empty());
}

TEST(MetricsSink, GaugesLastWriteWins) {
  MetricsSink m;
  EXPECT_EQ(m.gauge("g"), nullptr);
  m.set_gauge("g", 1.5);
  m.set_gauge("g", -2.5);
  ASSERT_NE(m.gauge("g"), nullptr);
  EXPECT_DOUBLE_EQ(*m.gauge("g"), -2.5);
}

TEST(MetricsSink, TimerStatTracksCountTotalMax) {
  MetricsSink m;
  EXPECT_EQ(m.timer("t"), nullptr);
  m.add_timer_ns("t", 10);
  m.add_timer_ns("t", 30);
  m.add_timer_ns("t", 20);
  const TimerStat* t = m.timer("t");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->count, 3u);
  EXPECT_EQ(t->total_ns, 60u);
  EXPECT_EQ(t->max_ns, 30u);
  EXPECT_DOUBLE_EQ(t->mean_ns(), 20.0);
}

TEST(MetricsSink, MergeAccumulatesEverything) {
  MetricsSink a, b;
  a.add_counter("c", 1);
  b.add_counter("c", 2);
  b.add_counter("only_b");
  a.set_gauge("g", 1.0);
  b.set_gauge("g", 9.0);
  a.add_timer_ns("t", 5);
  b.add_timer_ns("t", 50);
  a.merge(b);
  EXPECT_EQ(a.counter("c"), 3u);
  EXPECT_EQ(a.counter("only_b"), 1u);
  EXPECT_DOUBLE_EQ(*a.gauge("g"), 9.0);  // merged gauge replaces
  EXPECT_EQ(a.timer("t")->count, 2u);
  EXPECT_EQ(a.timer("t")->total_ns, 55u);
  EXPECT_EQ(a.timer("t")->max_ns, 50u);
}

TEST(MetricsSink, MergeOrderGivesIdenticalTotals) {
  // The engine merges per-worker sinks in worker-index order; counter and
  // timer totals must nonetheless be independent of any merge order.
  MetricsSink w0, w1, w2;
  w0.add_counter("c", 3);
  w1.add_counter("c", 5);
  w2.add_timer_ns("t", 7);
  w0.add_timer_ns("t", 11);
  MetricsSink fwd, rev;
  for (const MetricsSink* s : {&w0, &w1, &w2}) fwd.merge(*s);
  for (const MetricsSink* s : {&w2, &w1, &w0}) rev.merge(*s);
  EXPECT_EQ(fwd.counter("c"), rev.counter("c"));
  EXPECT_EQ(fwd.timer("t")->total_ns, rev.timer("t")->total_ns);
  EXPECT_EQ(fwd.timer("t")->count, rev.timer("t")->count);
}

TEST(MetricsSink, JsonHasSortedSectionsAndEscapes) {
  MetricsSink m;
  m.add_counter("b.count", 2);
  m.add_counter("a\"quote");
  m.set_gauge("g", 0.5);
  m.add_timer_ns("t", 100);
  std::ostringstream os;
  m.write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"timers\""), std::string::npos);
  EXPECT_NE(json.find("\"a\\\"quote\":1"), std::string::npos);
  EXPECT_NE(json.find("\"total_ns\":100"), std::string::npos);
  // Lexicographic key order inside a section.
  EXPECT_LT(json.find("a\\\"quote"), json.find("b.count"));
}

TEST(MetricsSink, ClearEmpties) {
  MetricsSink m;
  m.add_counter("c");
  m.set_gauge("g", 1.0);
  m.add_timer_ns("t", 1);
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.counter("c"), 0u);
}

TEST(ScopeTimer, RecordsOnceAndNullSinkIsNoop) {
  MetricsSink m;
  {
    ScopeTimer t(&m, "scoped");
  }
  ASSERT_NE(m.timer("scoped"), nullptr);
  EXPECT_EQ(m.timer("scoped")->count, 1u);
  {
    ScopeTimer t(&m, "stopped");
    t.stop();
    t.stop();  // idempotent: second stop records nothing
  }
  EXPECT_EQ(m.timer("stopped")->count, 1u);
  ScopeTimer null_timer(nullptr, "nothing");
  EXPECT_EQ(null_timer.stop(), 0u);
}

TEST(TraceBuffer, EventsSortedByOrderKeyAndRebased) {
  TraceBuffer t;
  // Recorded out of order (as parallel workers would), with a 1000ns epoch.
  t.record("late", "sample", 3000, 500, 1, 7);
  t.record("early", "sample", 1000, 250, 0, 2);
  EXPECT_EQ(t.size(), 2u);
  std::ostringstream os;
  t.write_json(os);
  const std::string json = os.str();
  // Sorted by order_key: sample 2 before sample 7, regardless of call order.
  EXPECT_LT(json.find("\"early\""), json.find("\"late\""));
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // Timestamps rebased to the earliest event and converted to microseconds:
  // early at ts 0, late at (3000-1000)/1000 = 2 us.
  EXPECT_NE(json.find("\"ts\":0"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":2"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"sample\":7}"), std::string::npos);
}

TEST(TraceBuffer, MergeConcatenates) {
  TraceBuffer a, b;
  a.record("x", "sample", 0, 1, 0, 0);
  b.record("y", "sample", 5, 1, 1, 1);
  a.merge(std::move(b));
  EXPECT_EQ(a.size(), 2u);
}

TEST(TraceBuffer, EmptyBufferWritesValidSkeleton) {
  TraceBuffer t;
  std::ostringstream os;
  t.write_json(os);
  EXPECT_NE(os.str().find("\"traceEvents\":["), std::string::npos);
}

TEST(ProgressMeter, CountsAndEssMatchClosedForm) {
  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  ProgressMeter p(4, /*min_interval_ms=*/0, sink);
  p.record(1.0, 2.0);
  p.record(0.0, 1.0);
  p.record(0.0, 1.0);
  p.record(0.0, 0.0, /*failed=*/true);
  p.finish();
  EXPECT_EQ(p.completed(), 4u);
  EXPECT_EQ(p.failed(), 1u);
  // ESS over the three completed samples: (2+1+1)^2 / (4+1+1) = 16/6.
  EXPECT_DOUBLE_EQ(p.effective_sample_size(), 16.0 / 6.0);
  // The throttle is off, so every record printed a line ending in \r or \n.
  std::fflush(sink);
  EXPECT_GT(std::ftell(sink), 0);
  std::fclose(sink);
}

TEST(ProgressMeter, ThrottleSuppressesIntermediateLines) {
  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  {
    // A day-long throttle: only the first record and finish() may print.
    ProgressMeter p(1000, /*min_interval_ms=*/86'400'000, sink);
    for (int i = 0; i < 100; ++i) p.record(0.0, 1.0);
    std::fflush(sink);
    const long after_records = std::ftell(sink);
    p.finish();
    std::fflush(sink);
    EXPECT_GT(std::ftell(sink), after_records);  // finish always prints
  }
  std::fclose(sink);
}

}  // namespace
}  // namespace fav
