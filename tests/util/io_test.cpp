#include "util/io.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>

namespace fav::io {
namespace {

namespace fs = std::filesystem;

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    chaos_reset();
    dir_ = fs::temp_directory_path() /
           ("fav_io_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override {
    chaos_reset();
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

// RFC 3720 test vectors for CRC32C (Castagnoli).
TEST_F(IoTest, Crc32cKnownVectors) {
  const std::string zeros(32, '\0');
  EXPECT_EQ(crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
  const std::string ones(32, '\xff');
  EXPECT_EQ(crc32c(ones.data(), ones.size()), 0x62A8AB43u);
  std::string ascending(32, '\0');
  for (int i = 0; i < 32; ++i) ascending[i] = static_cast<char>(i);
  EXPECT_EQ(crc32c(ascending.data(), ascending.size()), 0x46DD794Eu);
}

TEST_F(IoTest, Crc32cChains) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  for (std::size_t split = 0; split <= data.size(); ++split) {
    const std::uint32_t head = crc32c(data.data(), split);
    const std::uint32_t whole =
        crc32c(data.data() + split, data.size() - split, head);
    EXPECT_EQ(whole, crc32c(data.data(), data.size())) << "split " << split;
  }
}

TEST_F(IoTest, PutGetLeRoundTrip) {
  std::string buf;
  put_le<std::uint32_t>(buf, 0xDEADBEEFu);
  put_le<std::uint64_t>(buf, 0x0123456789ABCDEFull);
  put_le<double>(buf, 0.1);
  std::size_t off = 0;
  std::uint32_t a = 0;
  std::uint64_t b = 0;
  double c = 0;
  ASSERT_TRUE(get_le(buf, &off, &a));
  ASSERT_TRUE(get_le(buf, &off, &b));
  ASSERT_TRUE(get_le(buf, &off, &c));
  EXPECT_EQ(a, 0xDEADBEEFu);
  EXPECT_EQ(b, 0x0123456789ABCDEFull);
  EXPECT_EQ(c, 0.1);
  EXPECT_EQ(off, buf.size());
  std::uint32_t past = 0;
  EXPECT_FALSE(get_le(buf, &off, &past));  // exhausted
}

TEST_F(IoTest, AtomicWriteAndReadBack) {
  const std::string p = path("file.bin");
  std::string contents = "hello\0world";
  contents.push_back('\xff');
  ASSERT_TRUE(atomic_write_file(p, contents).is_ok());
  const Result<std::string> back = read_file(p);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value(), contents);
  // No temp litter left behind.
  std::size_t entries = 0;
  for ([[maybe_unused]] const auto& e : fs::directory_iterator(dir_)) {
    ++entries;
  }
  EXPECT_EQ(entries, 1u);
}

TEST_F(IoTest, ReadMissingFileFails) {
  const Result<std::string> r = read_file(path("absent"));
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kIoError);
}

TEST_F(IoTest, ErrnoClassification) {
  EXPECT_TRUE(errno_is_transient(EINTR));
  EXPECT_TRUE(errno_is_transient(EAGAIN));
  EXPECT_FALSE(errno_is_transient(ENOSPC));
  EXPECT_TRUE(errno_is_storage_full(ENOSPC));
  EXPECT_TRUE(errno_is_storage_full(EDQUOT));
  EXPECT_TRUE(errno_is_storage_full(EIO));
  EXPECT_FALSE(errno_is_storage_full(EACCES));
  EXPECT_EQ(status_from_errno(ENOSPC, "x").code(), ErrorCode::kStorageFull);
  EXPECT_EQ(status_from_errno(EACCES, "x").code(), ErrorCode::kIoError);
}

// A one-shot transient fault (EINTR on the first physical write) must be
// absorbed by the retry loop: the write succeeds and the bytes land.
TEST_F(IoTest, TransientWriteErrorIsRetried) {
  ChaosFile chaos;
  chaos.fail_write_at = 1;
  chaos.error = EINTR;
  chaos.sticky = false;
  chaos_install(chaos);
  const std::string p = path("retried.bin");
  ASSERT_TRUE(atomic_write_file(p, "payload").is_ok());
  chaos_reset();
  const Result<std::string> back = read_file(p);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value(), "payload");
}

TEST_F(IoTest, TransientFsyncErrorIsRetried) {
  ChaosFile chaos;
  chaos.fail_fsync_at = 1;
  chaos.error = EINTR;
  chaos.sticky = false;
  chaos_install(chaos);
  ASSERT_TRUE(atomic_write_file(path("synced.bin"), "payload").is_ok());
}

// A sticky ENOSPC surfaces as kStorageFull and leaves any previous version
// of the target untouched (atomic publication).
TEST_F(IoTest, StickyEnospcFailsWithStorageFullAndKeepsOldFile) {
  const std::string p = path("kept.bin");
  ASSERT_TRUE(atomic_write_file(p, "old contents").is_ok());
  ChaosFile chaos;
  chaos.fail_write_at = 1;
  chaos.error = ENOSPC;
  chaos_install(chaos);
  const Status failed = atomic_write_file(p, "new contents");
  chaos_reset();
  ASSERT_FALSE(failed.is_ok());
  EXPECT_EQ(failed.code(), ErrorCode::kStorageFull);
  const Result<std::string> back = read_file(p);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value(), "old contents");
  // The failed temp file was cleaned up.
  std::size_t entries = 0;
  for ([[maybe_unused]] const auto& e : fs::directory_iterator(dir_)) {
    ++entries;
  }
  EXPECT_EQ(entries, 1u);
}

TEST_F(IoTest, StickyEioOnFsyncIsStorageFull) {
  ChaosFile chaos;
  chaos.fail_fsync_at = 1;
  chaos.error = EIO;
  chaos_install(chaos);
  const Status failed = atomic_write_file(path("x"), "y");
  chaos_reset();
  ASSERT_FALSE(failed.is_ok());
  EXPECT_EQ(failed.code(), ErrorCode::kStorageFull);
}

TEST_F(IoTest, FileLockBlocksSecondHolderUntilTimeout) {
  const std::string p = path("the.lock");
  FileLock first;
  ASSERT_TRUE(first.acquire(p, 1000).is_ok());
  EXPECT_TRUE(first.held());
  FileLock second;
  const Status blocked = second.acquire(p, 50);
  ASSERT_FALSE(blocked.is_ok());
  EXPECT_EQ(blocked.code(), ErrorCode::kDeadlineExceeded);
  EXPECT_FALSE(second.held());
  first.release();
  EXPECT_FALSE(first.held());
  ASSERT_TRUE(second.acquire(p, 1000).is_ok());
}

TEST_F(IoTest, FileLockHandoffAcrossThreads) {
  const std::string p = path("handoff.lock");
  FileLock first;
  ASSERT_TRUE(first.acquire(p, 1000).is_ok());
  std::thread releaser([&first] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    first.release();
  });
  // flock is per-open-description, so a second open in the same process
  // still contends; the bounded-backoff wait must pick the lock up once the
  // holder releases it.
  FileLock second;
  const Status got = second.acquire(p, 5000);
  releaser.join();
  ASSERT_TRUE(got.is_ok()) << got.to_string();
}

TEST_F(IoTest, FsyncDirSucceedsOnRealDirectory) {
  EXPECT_TRUE(fsync_dir(dir_.string()).is_ok());
  EXPECT_FALSE(fsync_dir(path("no_such_subdir")).is_ok());
}

}  // namespace
}  // namespace fav::io
