#include "util/discrete_dist.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace fav {
namespace {

TEST(DiscreteDistribution, NormalizesWeights) {
  DiscreteDistribution d({1.0, 3.0});
  EXPECT_DOUBLE_EQ(d.pmf(0), 0.25);
  EXPECT_DOUBLE_EQ(d.pmf(1), 0.75);
}

TEST(DiscreteDistribution, RejectsBadWeights) {
  EXPECT_THROW(DiscreteDistribution(std::vector<double>{}), CheckError);
  EXPECT_THROW(DiscreteDistribution({0.0, 0.0}), CheckError);
  EXPECT_THROW(DiscreteDistribution({1.0, -0.5}), CheckError);
}

TEST(DiscreteDistribution, PmfOutOfRangeThrows) {
  DiscreteDistribution d({1.0});
  EXPECT_THROW(d.pmf(1), CheckError);
}

TEST(DiscreteDistribution, ZeroWeightNeverSampled) {
  DiscreteDistribution d({0.0, 1.0, 0.0});
  Rng rng(21);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(d.sample(rng), 1u);
}

TEST(DiscreteDistribution, ZeroWeightBinAtFrontNotPickedAtBoundary) {
  // Regression: the old lower_bound inversion mapped u == 0.0 onto the
  // duplicated CDF value of a leading zero-weight bin and returned index 0 —
  // an outcome with pmf 0, which breaks every f/g importance weight built on
  // top. upper_bound semantics must land on the first positive-weight bin.
  DiscreteDistribution d({0.0, 1.0, 0.0});
  EXPECT_EQ(d.sample_at(0.0), 1u);
  EXPECT_EQ(d.sample_at(0.5), 1u);
  EXPECT_EQ(d.sample_at(std::nextafter(1.0, 0.0)), 1u);
}

TEST(DiscreteDistribution, ZeroWeightBinInMiddleNotPickedAtBoundary) {
  // cdf = [0.5, 0.5, 1.0]: u == 0.5 sits exactly on the duplicated value and
  // must skip the empty half-open interval of the zero-weight middle bin.
  DiscreteDistribution d({1.0, 0.0, 1.0});
  EXPECT_EQ(d.sample_at(0.0), 0u);
  EXPECT_EQ(d.sample_at(std::nextafter(0.5, 0.0)), 0u);
  EXPECT_EQ(d.sample_at(0.5), 2u);
  EXPECT_EQ(d.sample_at(0.9), 2u);
}

TEST(DiscreteDistribution, ZeroWeightBinAtEndNeverReachable) {
  // Trailing zero-weight bins: the CDF is pinned to exactly 1.0 from the last
  // positive-weight bin onward, so no u in [0, 1) can reach past it even when
  // the floating-point prefix sum would have left cdf slightly below 1.
  DiscreteDistribution d({1.0, 2.0, 0.0});
  EXPECT_EQ(d.sample_at(std::nextafter(1.0, 0.0)), 1u);
  Rng rng(25);
  for (int i = 0; i < 1000; ++i) EXPECT_NE(d.sample(rng), 2u);
}

TEST(DiscreteDistribution, SampleAtRejectsOutOfRangeU) {
  DiscreteDistribution d({1.0, 1.0});
  EXPECT_THROW(d.sample_at(1.0), EnsureError);
  EXPECT_THROW(d.sample_at(-0.1), EnsureError);
}

TEST(DiscreteDistribution, EmpiricalFrequenciesMatchPmf) {
  DiscreteDistribution d({5.0, 1.0, 3.0, 1.0});
  Rng rng(22);
  std::vector<int> counts(4, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[d.sample(rng)];
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / kDraws, d.pmf(i), 0.01) << i;
  }
}

TEST(DiscreteDistribution, SingleOutcome) {
  DiscreteDistribution d({7.5});
  Rng rng(23);
  EXPECT_DOUBLE_EQ(d.pmf(0), 1.0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(d.sample(rng), 0u);
}

TEST(DiscreteDistribution, ImportanceReweightingIsUnbiased) {
  // Estimating E_f[X] with samples from g using weights f/g must recover the
  // same mean — the identity the SSF importance estimator relies on.
  std::vector<double> f = {0.7, 0.2, 0.1};
  std::vector<double> values = {1.0, 5.0, -2.0};
  DiscreteDistribution fd(f), gd({0.2, 0.4, 0.4});
  Rng rng(24);
  double direct = 0.0, weighted = 0.0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    direct += values[fd.sample(rng)];
    const std::size_t j = gd.sample(rng);
    weighted += values[j] * fd.pmf(j) / gd.pmf(j);
  }
  const double truth = 0.7 * 1.0 + 0.2 * 5.0 + 0.1 * -2.0;
  EXPECT_NEAR(direct / kDraws, truth, 0.02);
  EXPECT_NEAR(weighted / kDraws, truth, 0.02);
}

}  // namespace
}  // namespace fav
