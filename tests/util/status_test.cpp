#include "util/status.h"

#include <gtest/gtest.h>

#include <string>

#include "util/check.h"

namespace fav {
namespace {

TEST(Status, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.to_string(), "OK");
  EXPECT_TRUE(Status::ok().is_ok());
}

TEST(Status, CarriesCodeAndMessage) {
  const Status s(ErrorCode::kJournalCorrupt, "bad frame at offset 42");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), ErrorCode::kJournalCorrupt);
  EXPECT_EQ(s.message(), "bad frame at offset 42");
  EXPECT_EQ(s.to_string(), "JOURNAL_CORRUPT: bad frame at offset 42");
}

TEST(Status, EveryCodeHasAStableName) {
  EXPECT_STREQ(error_code_name(ErrorCode::kOk), "OK");
  EXPECT_STREQ(error_code_name(ErrorCode::kInvalidArgument),
               "INVALID_ARGUMENT");
  EXPECT_STREQ(error_code_name(ErrorCode::kFailedPrecondition),
               "FAILED_PRECONDITION");
  EXPECT_STREQ(error_code_name(ErrorCode::kCycleBudgetExceeded),
               "CYCLE_BUDGET_EXCEEDED");
  EXPECT_STREQ(error_code_name(ErrorCode::kDeadlineExceeded),
               "DEADLINE_EXCEEDED");
  EXPECT_STREQ(error_code_name(ErrorCode::kSampleEvalFailed),
               "SAMPLE_EVAL_FAILED");
  EXPECT_STREQ(error_code_name(ErrorCode::kSamplerFailed), "SAMPLER_FAILED");
  EXPECT_STREQ(error_code_name(ErrorCode::kJournalCorrupt), "JOURNAL_CORRUPT");
  EXPECT_STREQ(error_code_name(ErrorCode::kJournalIoError),
               "JOURNAL_IO_ERROR");
  EXPECT_STREQ(error_code_name(ErrorCode::kInternal), "INTERNAL");
}

TEST(StatusError, WrapsStatus) {
  const StatusError e(ErrorCode::kCycleBudgetExceeded, "budget 100 exhausted");
  EXPECT_EQ(e.code(), ErrorCode::kCycleBudgetExceeded);
  EXPECT_EQ(std::string(e.what()),
            "CYCLE_BUDGET_EXCEEDED: budget 100 exhausted");
  EXPECT_FALSE(e.status().is_ok());
}

TEST(StatusError, CatchableAsRuntimeError) {
  try {
    throw StatusError(ErrorCode::kSamplerFailed, "boom");
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("SAMPLER_FAILED"), std::string::npos);
    return;
  }
  FAIL() << "not caught";
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  EXPECT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(std::move(r).value_or_throw(), 42);
}

TEST(Result, HoldsStatus) {
  Result<int> r(Status(ErrorCode::kJournalIoError, "cannot open"));
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kJournalIoError);
  EXPECT_THROW(std::move(r).value_or_throw(), StatusError);
}

TEST(Result, ValueOrThrowPreservesCode) {
  Result<std::string> r(Status(ErrorCode::kJournalCorrupt, "torn"));
  try {
    std::string v = std::move(r).value_or_throw();
    (void)v;
    FAIL() << "expected StatusError";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kJournalCorrupt);
  }
}

TEST(Ensure, ThrowsEnsureError) {
  EXPECT_THROW(FAV_ENSURE(1 == 2), EnsureError);
  EXPECT_THROW(FAV_ENSURE_MSG(false, "detail " << 7), EnsureError);
  EXPECT_NO_THROW(FAV_ENSURE(true));
}

TEST(Ensure, EnsureErrorIsACheckError) {
  // ~100 existing sites catch CheckError; ENSURE failures must stay
  // catchable through the historical base type.
  try {
    FAV_ENSURE_MSG(false, "validation message");
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("validation message"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("status_test.cpp"),
              std::string::npos);  // location is embedded
    return;
  }
  FAIL() << "EnsureError not catchable as CheckError";
}

TEST(CheckDeathTest, FatalCheckAborts) {
  // FAV_CHECK guards internal invariants: a failure must abort, not throw,
  // so the sample-isolation layer cannot swallow engine corruption.
  EXPECT_DEATH(FAV_CHECK(1 == 2), "FATAL invariant violated");
  EXPECT_DEATH(FAV_CHECK_MSG(false, "corrupt " << 3),
               "FATAL invariant violated.*corrupt 3");
}

}  // namespace
}  // namespace fav
