#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "util/rng.h"

namespace fav {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.standard_error(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.population_variance(), 4.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, BernoulliVarianceMatchesClosedForm) {
  // The SSF estimator's per-sample contribution under plain sampling is a
  // Bernoulli(p) variable: variance must converge to p(1-p).
  Rng rng(11);
  RunningStats s;
  const double p = 0.1;
  for (int i = 0; i < 200000; ++i) s.add(rng.bernoulli(p) ? 1.0 : 0.0);
  EXPECT_NEAR(s.mean(), p, 0.005);
  EXPECT_NEAR(s.variance(), p * (1 - p), 0.005);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng(12);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform_real(-3, 7);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, OrderedShardMergeReproducesSequentialStream) {
  // The parallel engine's invariant: splitting one add-stream into K disjoint
  // contiguous shards and merging them back in index order must reproduce the
  // sequential accumulation. Shard counts include 1 (trivial) and more shards
  // than would ever run as threads.
  Rng rng(2017);
  std::vector<double> xs(777);
  for (double& x : xs) {
    // Mimic SSF contributions: mostly zeros with occasional large weights.
    x = rng.bernoulli(0.1) ? rng.uniform_real(0.0, 50.0) : 0.0;
  }
  RunningStats sequential;
  for (const double x : xs) sequential.add(x);

  for (const std::size_t shards : {1u, 2u, 5u, 16u, 777u}) {
    std::vector<RunningStats> shard(shards);
    for (std::size_t i = 0; i < xs.size(); ++i) {
      shard[i * shards / xs.size()].add(xs[i]);
    }
    RunningStats merged;
    for (const RunningStats& s : shard) merged.merge(s);
    EXPECT_EQ(merged.count(), sequential.count()) << shards << " shards";
    EXPECT_DOUBLE_EQ(merged.min(), sequential.min()) << shards << " shards";
    EXPECT_DOUBLE_EQ(merged.max(), sequential.max()) << shards << " shards";
    EXPECT_NEAR(merged.mean(), sequential.mean(), 1e-12) << shards << " shards";
    EXPECT_NEAR(merged.variance(), sequential.variance(),
                1e-12 * sequential.variance() + 1e-12)
        << shards << " shards";
  }
}

TEST(RunningStats, MergeEmptyAndSingleElementShards) {
  // Edge shard shapes from uneven partitions: empty shards must be no-ops
  // and single-element shards must behave like a plain add.
  const std::vector<double> xs = {3.0, -1.0, 4.0};
  RunningStats sequential;
  for (const double x : xs) sequential.add(x);

  RunningStats merged;
  RunningStats empty;
  merged.merge(empty);  // empty into empty
  EXPECT_EQ(merged.count(), 0u);
  for (const double x : xs) {
    RunningStats single;
    single.add(x);
    merged.merge(single);
    merged.merge(empty);  // interleaved empty shards change nothing
  }
  EXPECT_EQ(merged.count(), sequential.count());
  EXPECT_NEAR(merged.mean(), sequential.mean(), 1e-12);
  EXPECT_NEAR(merged.variance(), sequential.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(merged.min(), sequential.min());
  EXPECT_DOUBLE_EQ(merged.max(), sequential.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  const double mean = a.mean();
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
}

TEST(RunningStats, StandardErrorShrinksWithN) {
  Rng rng(13);
  RunningStats small, large;
  for (int i = 0; i < 100; ++i) small.add(rng.uniform01());
  for (int i = 0; i < 10000; ++i) large.add(rng.uniform01());
  EXPECT_GT(small.standard_error(), large.standard_error());
}

TEST(Histogram, BinsAndFractions) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);
  h.add(1.0);  // falls in bin 0? 1.0/10*5 = 0.5 -> bin 0
  h.add(2.5);
  h.add(9.9);
  EXPECT_EQ(h.bin_count(), 5u);
  EXPECT_DOUBLE_EQ(h.total_weight(), 4.0);
  EXPECT_DOUBLE_EQ(h.bin_weight(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_weight(1), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_weight(4), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_fraction(0), 0.5);
}

TEST(Histogram, OutOfRangeTrackedSeparately) {
  // Regression: out-of-range samples used to be folded into the edge bins,
  // silently inflating them (any x <= lo_ landed in bin 0). They now
  // accumulate in dedicated under/overflow tallies and leave every bin and
  // the in-range mass untouched.
  Histogram h(0.0, 1.0, 2);
  h.add(-5.0);
  h.add(42.0, 2.0);
  EXPECT_DOUBLE_EQ(h.bin_weight(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_weight(1), 0.0);
  EXPECT_DOUBLE_EQ(h.underflow_weight(), 1.0);
  EXPECT_DOUBLE_EQ(h.overflow_weight(), 2.0);
  EXPECT_DOUBLE_EQ(h.total_weight(), 0.0);
  EXPECT_DOUBLE_EQ(h.added_weight(), 3.0);
}

TEST(Histogram, UpperEdgeIsOverflowLowerEdgeIsBinZero) {
  // Half-open [lo, hi) semantics: x == lo is in-range (bin 0), x == hi is
  // overflow. x just below lo is underflow, not bin 0.
  Histogram h(0.0, 1.0, 2);
  h.add(0.0);
  h.add(1.0);
  h.add(-1e-12);
  EXPECT_DOUBLE_EQ(h.bin_weight(0), 1.0);
  EXPECT_DOUBLE_EQ(h.overflow_weight(), 1.0);
  EXPECT_DOUBLE_EQ(h.underflow_weight(), 1.0);
  EXPECT_DOUBLE_EQ(h.total_weight(), 1.0);
}

TEST(Histogram, BinFractionNormalizesOverInRangeMass) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.25);       // bin 0
  h.add(0.75, 3.0);  // bin 1
  h.add(-7.0, 10.0);  // underflow: must not dilute the fractions
  EXPECT_DOUBLE_EQ(h.bin_fraction(0), 0.25);
  EXPECT_DOUBLE_EQ(h.bin_fraction(1), 0.75);
}

TEST(Histogram, NanSamplesAreDropped) {
  // Regression: a NaN sample used to produce a NaN bin fraction and an
  // undefined-behavior integer cast; it must now be ignored entirely.
  Histogram h(0.0, 1.0, 4);
  h.add(std::nan(""), 2.0);
  EXPECT_DOUBLE_EQ(h.total_weight(), 0.0);
  for (std::size_t b = 0; b < h.bin_count(); ++b) {
    EXPECT_DOUBLE_EQ(h.bin_weight(b), 0.0);
  }
  h.add(0.3);
  h.add(std::nan(""));
  EXPECT_DOUBLE_EQ(h.total_weight(), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_weight(1), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_fraction(1), 1.0);
}

TEST(Histogram, InfinitySamplesCountAsOverAndUnderflow) {
  // Infinities are extreme out-of-range values: they join the under/overflow
  // tallies like any other out-of-range sample instead of feeding the index
  // math (or polluting the edge bins).
  Histogram h(0.0, 1.0, 3);
  h.add(std::numeric_limits<double>::infinity());
  h.add(-std::numeric_limits<double>::infinity());
  EXPECT_DOUBLE_EQ(h.bin_weight(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_weight(2), 0.0);
  EXPECT_DOUBLE_EQ(h.overflow_weight(), 1.0);
  EXPECT_DOUBLE_EQ(h.underflow_weight(), 1.0);
  EXPECT_DOUBLE_EQ(h.total_weight(), 0.0);
  EXPECT_DOUBLE_EQ(h.added_weight(), 2.0);
}

TEST(Histogram, WeightedAdds) {
  Histogram h(0.0, 1.0, 4);
  h.add(0.1, 2.5);
  h.add(0.9, 0.5);
  EXPECT_DOUBLE_EQ(h.total_weight(), 3.0);
  EXPECT_DOUBLE_EQ(h.bin_fraction(0), 2.5 / 3.0);
}

TEST(Histogram, BinEdges) {
  Histogram h(2.0, 12.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 4.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 12.0);
  EXPECT_THROW(h.bin_lo(5), CheckError);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), CheckError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), CheckError);
}

TEST(Histogram, EmptyFractionIsZero) {
  Histogram h(0.0, 1.0, 3);
  EXPECT_DOUBLE_EQ(h.bin_fraction(1), 0.0);
}

}  // namespace
}  // namespace fav
