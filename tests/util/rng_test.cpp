#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace fav {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(9);
  const auto first = a.next();
  a.next();
  a.reseed(9);
  EXPECT_EQ(a.next(), first);
}

TEST(Rng, UniformBelowRespectsBound) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform_below(17), 17u);
  }
}

TEST(Rng, UniformBelowOneIsZero) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_below(1), 0u);
}

TEST(Rng, UniformBelowZeroThrows) {
  Rng rng(3);
  EXPECT_THROW(rng.uniform_below(0), CheckError);
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(4);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all 7 values hit with overwhelming probability
}

TEST(Rng, UniformIntEmptyRangeThrows) {
  Rng rng(4);
  EXPECT_THROW(rng.uniform_int(2, 1), CheckError);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformBelowIsRoughlyUniform) {
  Rng rng(6);
  constexpr int kBuckets = 8;
  int counts[kBuckets] = {};
  constexpr int kDraws = 80000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.uniform_below(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), kDraws / kBuckets,
                5 * std::sqrt(kDraws / kBuckets));
  }
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(7);
  int hits = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

}  // namespace
}  // namespace fav
