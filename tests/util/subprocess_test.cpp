// Tests for the subprocess plumbing under the campaign supervisor: frame
// framing/deframing over real pipes, corruption detection, read deadlines,
// and child-process lifecycle (spawn / kill / wait status decoding).
#include "util/subprocess.h"

#include <gtest/gtest.h>

#include <signal.h>
#include <unistd.h>

#include <string>
#include <thread>
#include <vector>

namespace fav {
namespace {

struct Pipe {
  int fds[2] = {-1, -1};
  Pipe() { EXPECT_EQ(::pipe(fds), 0); }
  ~Pipe() {
    if (fds[0] >= 0) ::close(fds[0]);
    if (fds[1] >= 0) ::close(fds[1]);
  }
  int read_fd() const { return fds[0]; }
  int write_fd() const { return fds[1]; }
  void close_write() {
    ::close(fds[1]);
    fds[1] = -1;
  }
};

TEST(FrameIo, RoundTripOverPipe) {
  Pipe p;
  const std::string payloads[] = {"", "x", "hello frame"};
  for (const std::string& payload : payloads) {
    ASSERT_TRUE(write_frame(p.write_fd(), payload).is_ok());
  }
  FrameBuffer buf;
  for (const std::string& payload : payloads) {
    Result<std::string> got = read_frame(p.read_fd(), buf, 5000);
    ASSERT_TRUE(got.is_ok()) << got.status().to_string();
    EXPECT_EQ(got.value(), payload);
  }
}

TEST(FrameIo, LargeFrameSpansPipeCapacity) {
  // 1 MiB frame: far beyond the 64 KiB pipe buffer, so write_frame must
  // complete across multiple write(2) calls while the reader drains.
  Pipe p;
  const std::string payload(1u << 20, 'z');
  std::thread writer([&] {
    EXPECT_TRUE(write_frame(p.write_fd(), payload).is_ok());
  });
  FrameBuffer buf;
  Result<std::string> got = read_frame(p.read_fd(), buf, 10000);
  writer.join();
  ASSERT_TRUE(got.is_ok()) << got.status().to_string();
  EXPECT_EQ(got.value(), payload);
}

TEST(FrameIo, ByteWiseFeedReassembles) {
  std::string wire;
  {
    // Build the wire image through a pipe, then replay it one byte at a time.
    Pipe p;
    ASSERT_TRUE(write_frame(p.write_fd(), "alpha").is_ok());
    ASSERT_TRUE(write_frame(p.write_fd(), "beta").is_ok());
    p.close_write();
    char c = 0;
    while (::read(p.read_fd(), &c, 1) == 1) wire.push_back(c);
  }
  FrameBuffer buf;
  std::vector<std::string> frames;
  std::string frame;
  for (const char& c : wire) {
    buf.feed(&c, 1);
    while (buf.next(&frame)) frames.push_back(frame);
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0], "alpha");
  EXPECT_EQ(frames[1], "beta");
  EXPECT_FALSE(buf.corrupt());
  EXPECT_EQ(buf.buffered_bytes(), 0u);
}

TEST(FrameIo, OversizedLengthMarksCorrupt) {
  FrameBuffer buf;
  const std::uint32_t huge = kMaxFrameBytes + 1;
  buf.feed(reinterpret_cast<const char*>(&huge), sizeof(huge));
  std::string frame;
  EXPECT_FALSE(buf.next(&frame));
  EXPECT_TRUE(buf.corrupt());
}

TEST(FrameIo, ReadFrameTimesOut) {
  Pipe p;
  FrameBuffer buf;
  Result<std::string> got = read_frame(p.read_fd(), buf, 50);
  ASSERT_FALSE(got.is_ok());
  EXPECT_EQ(got.status().code(), ErrorCode::kDeadlineExceeded);
}

TEST(FrameIo, ReadFrameReportsEof) {
  Pipe p;
  ASSERT_TRUE(write_frame(p.write_fd(), "last").is_ok());
  p.close_write();
  FrameBuffer buf;
  Result<std::string> got = read_frame(p.read_fd(), buf, 1000);
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(got.value(), "last");
  got = read_frame(p.read_fd(), buf, 1000);
  ASSERT_FALSE(got.is_ok());
  EXPECT_EQ(got.status().code(), ErrorCode::kSubprocessFailed);
}

TEST(FrameIo, RejectsFramesOverTheCap) {
  Pipe p;
  const std::string too_big(kMaxFrameBytes + 1, 'q');
  EXPECT_FALSE(write_frame(p.write_fd(), too_big).is_ok());
}

TEST(SubprocessLifecycle, EchoChildRoundTrips) {
  // `cat` copies stdin to stdout verbatim, so frames come back intact.
  Result<Subprocess> spawned = Subprocess::spawn({"cat"});
  ASSERT_TRUE(spawned.is_ok()) << spawned.status().to_string();
  Subprocess proc = std::move(spawned).value();
  ASSERT_TRUE(write_frame(proc.stdin_fd(), "ping").is_ok());
  FrameBuffer buf;
  Result<std::string> got = read_frame(proc.stdout_fd(), buf, 5000);
  ASSERT_TRUE(got.is_ok()) << got.status().to_string();
  EXPECT_EQ(got.value(), "ping");
  proc.close_stdin();  // EOF: cat exits
  const Subprocess::ExitStatus st = proc.wait();
  EXPECT_FALSE(st.signaled);
  EXPECT_EQ(st.exit_code, 0);
}

TEST(SubprocessLifecycle, KillReportsSignal) {
  Result<Subprocess> spawned = Subprocess::spawn({"cat"});
  ASSERT_TRUE(spawned.is_ok());
  Subprocess proc = std::move(spawned).value();
  proc.kill(SIGKILL);
  const Subprocess::ExitStatus st = proc.wait();
  EXPECT_TRUE(st.signaled);
  EXPECT_EQ(st.term_signal, SIGKILL);
}

TEST(SubprocessLifecycle, ExecFailureExitsWith127) {
  Result<Subprocess> spawned =
      Subprocess::spawn({"/nonexistent/fav-no-such-binary"});
  ASSERT_TRUE(spawned.is_ok());  // fork succeeds; exec fails in the child
  Subprocess proc = std::move(spawned).value();
  const Subprocess::ExitStatus st = proc.wait();
  EXPECT_FALSE(st.signaled);
  EXPECT_EQ(st.exit_code, 127);
}

TEST(SubprocessLifecycle, TryWaitSeesExit) {
  Result<Subprocess> spawned = Subprocess::spawn({"true"});
  ASSERT_TRUE(spawned.is_ok());
  Subprocess proc = std::move(spawned).value();
  // Poll until the child exits; try_wait must never block.
  Subprocess::ExitStatus st;
  bool reaped = false;
  for (int i = 0; i < 5000 && !reaped; ++i) {
    reaped = proc.try_wait(&st);
    if (!reaped) ::usleep(1000);
  }
  ASSERT_TRUE(reaped);
  EXPECT_FALSE(st.signaled);
  EXPECT_EQ(st.exit_code, 0);
}

}  // namespace
}  // namespace fav
