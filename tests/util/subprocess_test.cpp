// Tests for the subprocess plumbing under the campaign supervisor: frame
// framing/deframing over real pipes, corruption detection, read deadlines,
// and child-process lifecycle (spawn / kill / wait status decoding).
#include "util/subprocess.h"

#include <gtest/gtest.h>

#include <dirent.h>
#include <errno.h>
#include <signal.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

namespace fav {
namespace {

struct Pipe {
  int fds[2] = {-1, -1};
  Pipe() { EXPECT_EQ(::pipe(fds), 0); }
  ~Pipe() {
    if (fds[0] >= 0) ::close(fds[0]);
    if (fds[1] >= 0) ::close(fds[1]);
  }
  int read_fd() const { return fds[0]; }
  int write_fd() const { return fds[1]; }
  void close_write() {
    ::close(fds[1]);
    fds[1] = -1;
  }
};

TEST(FrameIo, RoundTripOverPipe) {
  Pipe p;
  const std::string payloads[] = {"", "x", "hello frame"};
  for (const std::string& payload : payloads) {
    ASSERT_TRUE(write_frame(p.write_fd(), payload).is_ok());
  }
  FrameBuffer buf;
  for (const std::string& payload : payloads) {
    Result<std::string> got = read_frame(p.read_fd(), buf, 5000);
    ASSERT_TRUE(got.is_ok()) << got.status().to_string();
    EXPECT_EQ(got.value(), payload);
  }
}

TEST(FrameIo, LargeFrameSpansPipeCapacity) {
  // 1 MiB frame: far beyond the 64 KiB pipe buffer, so write_frame must
  // complete across multiple write(2) calls while the reader drains.
  Pipe p;
  const std::string payload(1u << 20, 'z');
  std::thread writer([&] {
    EXPECT_TRUE(write_frame(p.write_fd(), payload).is_ok());
  });
  FrameBuffer buf;
  Result<std::string> got = read_frame(p.read_fd(), buf, 10000);
  writer.join();
  ASSERT_TRUE(got.is_ok()) << got.status().to_string();
  EXPECT_EQ(got.value(), payload);
}

TEST(FrameIo, ByteWiseFeedReassembles) {
  std::string wire;
  {
    // Build the wire image through a pipe, then replay it one byte at a time.
    Pipe p;
    ASSERT_TRUE(write_frame(p.write_fd(), "alpha").is_ok());
    ASSERT_TRUE(write_frame(p.write_fd(), "beta").is_ok());
    p.close_write();
    char c = 0;
    while (::read(p.read_fd(), &c, 1) == 1) wire.push_back(c);
  }
  FrameBuffer buf;
  std::vector<std::string> frames;
  std::string frame;
  for (const char& c : wire) {
    buf.feed(&c, 1);
    while (buf.next(&frame)) frames.push_back(frame);
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0], "alpha");
  EXPECT_EQ(frames[1], "beta");
  EXPECT_FALSE(buf.corrupt());
  EXPECT_EQ(buf.buffered_bytes(), 0u);
}

TEST(FrameIo, OversizedLengthMarksCorrupt) {
  FrameBuffer buf;
  const std::uint32_t huge = kMaxFrameBytes + 1;
  buf.feed(reinterpret_cast<const char*>(&huge), sizeof(huge));
  std::string frame;
  EXPECT_FALSE(buf.next(&frame));
  EXPECT_TRUE(buf.corrupt());
}

TEST(FrameIo, ReadFrameTimesOut) {
  Pipe p;
  FrameBuffer buf;
  Result<std::string> got = read_frame(p.read_fd(), buf, 50);
  ASSERT_FALSE(got.is_ok());
  EXPECT_EQ(got.status().code(), ErrorCode::kDeadlineExceeded);
}

TEST(FrameIo, ReadFrameReportsEof) {
  Pipe p;
  ASSERT_TRUE(write_frame(p.write_fd(), "last").is_ok());
  p.close_write();
  FrameBuffer buf;
  Result<std::string> got = read_frame(p.read_fd(), buf, 1000);
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(got.value(), "last");
  got = read_frame(p.read_fd(), buf, 1000);
  ASSERT_FALSE(got.is_ok());
  EXPECT_EQ(got.status().code(), ErrorCode::kSubprocessFailed);
}

TEST(FrameIo, RejectsFramesOverTheCap) {
  Pipe p;
  const std::string too_big(kMaxFrameBytes + 1, 'q');
  EXPECT_FALSE(write_frame(p.write_fd(), too_big).is_ok());
}

TEST(SubprocessLifecycle, EchoChildRoundTrips) {
  // `cat` copies stdin to stdout verbatim, so frames come back intact.
  Result<Subprocess> spawned = Subprocess::spawn({"cat"});
  ASSERT_TRUE(spawned.is_ok()) << spawned.status().to_string();
  Subprocess proc = std::move(spawned).value();
  ASSERT_TRUE(write_frame(proc.stdin_fd(), "ping").is_ok());
  FrameBuffer buf;
  Result<std::string> got = read_frame(proc.stdout_fd(), buf, 5000);
  ASSERT_TRUE(got.is_ok()) << got.status().to_string();
  EXPECT_EQ(got.value(), "ping");
  proc.close_stdin();  // EOF: cat exits
  const Subprocess::ExitStatus st = proc.wait();
  EXPECT_FALSE(st.signaled);
  EXPECT_EQ(st.exit_code, 0);
}

TEST(SubprocessLifecycle, KillReportsSignal) {
  Result<Subprocess> spawned = Subprocess::spawn({"cat"});
  ASSERT_TRUE(spawned.is_ok());
  Subprocess proc = std::move(spawned).value();
  proc.kill(SIGKILL);
  const Subprocess::ExitStatus st = proc.wait();
  EXPECT_TRUE(st.signaled);
  EXPECT_EQ(st.term_signal, SIGKILL);
}

TEST(SubprocessLifecycle, ExecFailureExitsWith127) {
  Result<Subprocess> spawned =
      Subprocess::spawn({"/nonexistent/fav-no-such-binary"});
  ASSERT_TRUE(spawned.is_ok());  // fork succeeds; exec fails in the child
  Subprocess proc = std::move(spawned).value();
  const Subprocess::ExitStatus st = proc.wait();
  EXPECT_FALSE(st.signaled);
  EXPECT_EQ(st.exit_code, 127);
}

// Appends a little-endian u32 length prefix plus `payload` to `wire`,
// mirroring write_frame's on-the-wire image without needing a pipe.
void append_wire_frame(std::string* wire, const std::string& payload) {
  const auto len = static_cast<std::uint32_t>(payload.size());
  wire->append(reinterpret_cast<const char*>(&len), sizeof(len));
  wire->append(payload);
}

TEST(FrameBuffer, CompactionBoundaryPreservesFrames) {
  // The consumed prefix is compacted lazily once pos_ > 4096 and it
  // dominates the buffer. Frame sizes are chosen so consumption lands just
  // below the threshold (4091), just above it with the dominance condition
  // false, and then well past it with compaction firing — the stream must
  // parse identically through every branch.
  std::vector<std::string> payloads = {
      std::string(4087, 'a'),  // pos_ -> 4091 after consume (< 4096)
      std::string(1, 'b'),     // pos_ -> 4096 (boundary: not > 4096)
      std::string(2, 'c'),     // pos_ -> 4102 (> 4096; compaction depends
                               // on how much is still buffered)
      std::string(6000, 'd'), std::string(3, 'e'), std::string(0, 'f'),
      std::string(5000, 'g'),
  };
  std::string wire;
  for (const std::string& p : payloads) append_wire_frame(&wire, p);

  FrameBuffer buf;
  buf.feed(wire.data(), wire.size());
  std::string frame;
  std::size_t expected_left = wire.size();
  for (const std::string& p : payloads) {
    ASSERT_TRUE(buf.next(&frame));
    EXPECT_EQ(frame, p);
    expected_left -= sizeof(std::uint32_t) + p.size();
    // buffered_bytes() must be invariant under internal compaction.
    EXPECT_EQ(buf.buffered_bytes(), expected_left);
  }
  EXPECT_FALSE(buf.next(&frame));
  EXPECT_FALSE(buf.corrupt());
  EXPECT_EQ(buf.buffered_bytes(), 0u);

  // The buffer must keep working after compaction has discarded the prefix.
  std::string tail;
  append_wire_frame(&tail, "post-compaction");
  buf.feed(tail.data(), tail.size());
  ASSERT_TRUE(buf.next(&frame));
  EXPECT_EQ(frame, "post-compaction");
}

TEST(FrameBuffer, FrameSplitAcrossDrainChunks) {
  // drain_into reads at most 4096 bytes per call, so a 10 KiB frame must be
  // reassembled across at least three drains.
  Pipe p;
  const std::string payload(10000, 'x');
  ASSERT_TRUE(write_frame(p.write_fd(), payload).is_ok());
  p.close_write();
  FrameBuffer buf;
  std::string frame;
  int drains = 0;
  while (!buf.next(&frame)) {
    ASSERT_TRUE(drain_into(p.read_fd(), buf)) << "EOF before full frame";
    ++drains;
  }
  EXPECT_GE(drains, 3);
  EXPECT_EQ(frame, payload);
  EXPECT_EQ(buf.buffered_bytes(), 0u);
}

TEST(FrameBuffer, ExactCapFrameAccepted) {
  // A length prefix of exactly kMaxFrameBytes is the largest legal frame.
  std::string wire;
  append_wire_frame(&wire, std::string(kMaxFrameBytes, 'm'));
  FrameBuffer buf;
  buf.feed(wire.data(), wire.size());
  std::string frame;
  ASSERT_TRUE(buf.next(&frame));
  EXPECT_FALSE(buf.corrupt());
  EXPECT_EQ(frame.size(), kMaxFrameBytes);
}

TEST(FrameBuffer, CapPlusOneIsCorruptAndSticky) {
  FrameBuffer buf;
  const std::uint32_t over = kMaxFrameBytes + 1;
  buf.feed(reinterpret_cast<const char*>(&over), sizeof(over));
  std::string frame;
  EXPECT_FALSE(buf.next(&frame));
  EXPECT_TRUE(buf.corrupt());
  // A desynchronized stream can never recover: more bytes don't help.
  std::string wire;
  append_wire_frame(&wire, "valid");
  buf.feed(wire.data(), wire.size());
  EXPECT_FALSE(buf.next(&frame));
  EXPECT_TRUE(buf.corrupt());
}

// The kernel's name for what fd `fd` of process `pid` refers to, e.g.
// "pipe:[43087]" ("self" works as a pid). Empty on error.
std::string fd_target(const std::string& pid, int fd) {
  const std::string link =
      "/proc/" + pid + "/fd/" + std::to_string(fd);
  char target[256];
  const ssize_t n = ::readlink(link.c_str(), target, sizeof(target) - 1);
  if (n <= 0) return "";
  return std::string(target, static_cast<std::size_t>(n));
}

// Every open-fd target of process `pid` (via /proc/<pid>/fd).
std::vector<std::string> child_fd_targets(pid_t pid) {
  const std::string path = "/proc/" + std::to_string(pid) + "/fd";
  std::vector<std::string> targets;
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) return targets;
  while (dirent* entry = ::readdir(dir)) {
    if (std::strcmp(entry->d_name, ".") == 0 ||
        std::strcmp(entry->d_name, "..") == 0) {
      continue;
    }
    targets.push_back(
        fd_target(std::to_string(pid), std::atoi(entry->d_name)));
  }
  ::closedir(dir);
  return targets;
}

TEST(SubprocessLifecycle, SiblingDoesNotInheritPipes) {
  // Regression for the O_CLOEXEC spawn fix: a sibling spawned after `first`
  // must not carry any alias of first's pipes across its exec. The pipes
  // are identified by inode (the parent-held ends name the same pipe
  // objects the children see), so the check is exact regardless of what
  // other fds the test harness happens to pass down. `sleep` keeps the
  // sibling alive while /proc/<pid>/fd is inspected.
  Result<Subprocess> a = Subprocess::spawn({"cat"});
  ASSERT_TRUE(a.is_ok()) << a.status().to_string();
  Subprocess first = std::move(a).value();
  const std::string first_stdin = fd_target("self", first.stdin_fd());
  const std::string first_stdout = fd_target("self", first.stdout_fd());
  ASSERT_NE(first_stdin, "");
  ASSERT_NE(first_stdout, "");
  Result<Subprocess> b = Subprocess::spawn({"sleep", "5"});
  ASSERT_TRUE(b.is_ok()) << b.status().to_string();
  Subprocess sibling = std::move(b).value();
  // The exec may still be in flight (pre-exec the fork image legitimately
  // holds the parent's fds); wait until the sibling's own pipes are its
  // stdin/stdout, which only happens after dup2 + exec.
  for (int i = 0; i < 5000; ++i) {
    const std::string sib_pid = std::to_string(sibling.pid());
    if (fd_target(sib_pid, 0) == fd_target("self", sibling.stdin_fd()) &&
        fd_target(sib_pid, 0) != "") {
      break;
    }
    ::usleep(1000);
  }
  for (const std::string& target : child_fd_targets(sibling.pid())) {
    EXPECT_NE(target, first_stdin)
        << "sibling holds first's stdin pipe (missing O_CLOEXEC)";
    EXPECT_NE(target, first_stdout)
        << "sibling holds first's stdout pipe (missing O_CLOEXEC)";
  }
  sibling.kill(SIGKILL);
  sibling.wait();
  first.close_stdin();
  first.wait();
}

TEST(SubprocessLifecycle, DeadChildEofNotMaskedBySibling) {
  // The supervisor's fast death-detection path: a dead worker's stdout must
  // hit EOF even while a sibling worker is still running. Before the
  // O_CLOEXEC fix the sibling (forked later) inherited the parent's write
  // end of the victim's stdin pipe across its exec; closing the victim's
  // stdin here then did NOT deliver EOF to the victim, the victim (`cat`)
  // never exited, and its stdout never reached EOF — the exact shape in
  // which a supervisor ends up waiting out a heartbeat deadline instead of
  // reacting to a dead worker immediately.
  Result<Subprocess> a = Subprocess::spawn({"cat"});
  ASSERT_TRUE(a.is_ok()) << a.status().to_string();
  Subprocess victim = std::move(a).value();
  Result<Subprocess> b = Subprocess::spawn({"sleep", "30"});
  ASSERT_TRUE(b.is_ok()) << b.status().to_string();
  Subprocess sibling = std::move(b).value();

  // EOF on stdin makes cat exit, which must close the last write end of its
  // stdout pipe. The sibling lives for 30 s, so any fd it inherited would
  // hold the 5 s read below open past its deadline.
  victim.close_stdin();
  FrameBuffer buf;
  Result<std::string> got = read_frame(victim.stdout_fd(), buf, 5000);
  ASSERT_FALSE(got.is_ok());
  EXPECT_EQ(got.status().code(), ErrorCode::kSubprocessFailed)
      << got.status().to_string();
  const Subprocess::ExitStatus st = victim.wait();
  EXPECT_FALSE(st.signaled);
  EXPECT_EQ(st.exit_code, 0);

  sibling.kill(SIGKILL);
  sibling.wait();
}

TEST(SubprocessLifecycle, UnreapableChildSynthesizesStatus) {
  // With SIGCHLD set to SIG_IGN the kernel auto-reaps children, so waitpid
  // eventually fails with ECHILD. try_wait must treat that as terminal and
  // synthesize a status instead of returning false forever (which would
  // wedge the supervisor's restart loop on the slot).
  struct sigaction ignore_chld {};
  ignore_chld.sa_handler = SIG_IGN;
  struct sigaction prev {};
  ASSERT_EQ(::sigaction(SIGCHLD, &ignore_chld, &prev), 0);

  Result<Subprocess> spawned = Subprocess::spawn({"true"});
  ASSERT_TRUE(spawned.is_ok()) << spawned.status().to_string();
  Subprocess proc = std::move(spawned).value();
  Subprocess::ExitStatus st;
  bool reaped = false;
  for (int i = 0; i < 5000 && !reaped; ++i) {
    reaped = proc.try_wait(&st);
    if (!reaped) ::usleep(1000);
  }
  ASSERT_EQ(::sigaction(SIGCHLD, &prev, nullptr), 0);
  ASSERT_TRUE(reaped);
  EXPECT_FALSE(st.signaled);
  EXPECT_EQ(st.exit_code, Subprocess::kUnreapableExitCode);
  EXPECT_EQ(st.reap_errno, ECHILD);
  // The synthesized status must be cached like a real reap.
  Subprocess::ExitStatus again;
  EXPECT_TRUE(proc.try_wait(&again));
  EXPECT_EQ(again.exit_code, Subprocess::kUnreapableExitCode);
}

TEST(SubprocessLifecycle, BlockingWaitSynthesizesOnEchild) {
  struct sigaction ignore_chld {};
  ignore_chld.sa_handler = SIG_IGN;
  struct sigaction prev {};
  ASSERT_EQ(::sigaction(SIGCHLD, &ignore_chld, &prev), 0);

  Result<Subprocess> spawned = Subprocess::spawn({"true"});
  ASSERT_TRUE(spawned.is_ok()) << spawned.status().to_string();
  Subprocess proc = std::move(spawned).value();
  // Blocking waitpid under SIG_IGN returns ECHILD once the child is gone;
  // wait() must report a synthesized failure, never a default "clean exit".
  const Subprocess::ExitStatus st = proc.wait();
  ASSERT_EQ(::sigaction(SIGCHLD, &prev, nullptr), 0);
  EXPECT_FALSE(st.signaled);
  EXPECT_EQ(st.exit_code, Subprocess::kUnreapableExitCode);
  EXPECT_EQ(st.reap_errno, ECHILD);
}

TEST(SubprocessLifecycle, TryWaitSeesExit) {
  Result<Subprocess> spawned = Subprocess::spawn({"true"});
  ASSERT_TRUE(spawned.is_ok());
  Subprocess proc = std::move(spawned).value();
  // Poll until the child exits; try_wait must never block.
  Subprocess::ExitStatus st;
  bool reaped = false;
  for (int i = 0; i < 5000 && !reaped; ++i) {
    reaped = proc.try_wait(&st);
    if (!reaped) ::usleep(1000);
  }
  ASSERT_TRUE(reaped);
  EXPECT_FALSE(st.signaled);
  EXPECT_EQ(st.exit_code, 0);
}

}  // namespace
}  // namespace fav
