#include "util/bitvector.h"

#include <gtest/gtest.h>

#include "util/check.h"
#include "util/rng.h"

namespace fav {
namespace {

TEST(BitVector, DefaultIsEmpty) {
  BitVector v;
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.count(), 0u);
}

TEST(BitVector, ConstructAllZero) {
  BitVector v(130);
  EXPECT_EQ(v.size(), 130u);
  EXPECT_EQ(v.count(), 0u);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_FALSE(v.get(i));
}

TEST(BitVector, ConstructAllOne) {
  BitVector v(130, true);
  EXPECT_EQ(v.count(), 130u);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_TRUE(v.get(i));
}

TEST(BitVector, SetGet) {
  BitVector v(100);
  v.set(0, true);
  v.set(63, true);
  v.set(64, true);
  v.set(99, true);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(63));
  EXPECT_TRUE(v.get(64));
  EXPECT_TRUE(v.get(99));
  EXPECT_FALSE(v.get(1));
  EXPECT_EQ(v.count(), 4u);
  v.set(63, false);
  EXPECT_FALSE(v.get(63));
  EXPECT_EQ(v.count(), 3u);
}

TEST(BitVector, OutOfRangeThrows) {
  BitVector v(8);
  EXPECT_THROW(v.get(8), CheckError);
  EXPECT_THROW(v.set(8, true), CheckError);
}

TEST(BitVector, FromStringRoundTrip) {
  const std::string s = "01001101";
  BitVector v = BitVector::from_string(s);
  EXPECT_EQ(v.size(), 8u);
  EXPECT_EQ(v.to_string(), s);
  EXPECT_EQ(v.count(), 4u);
}

TEST(BitVector, FromStringRejectsGarbage) {
  EXPECT_THROW(BitVector::from_string("01x"), CheckError);
}

TEST(BitVector, PushBack) {
  BitVector v;
  for (int i = 0; i < 70; ++i) v.push_back(i % 3 == 0);
  EXPECT_EQ(v.size(), 70u);
  for (int i = 0; i < 70; ++i) {
    EXPECT_EQ(v.get(static_cast<std::size_t>(i)), i % 3 == 0) << i;
  }
}

TEST(BitVector, ResizeShrinkClearsHighBits) {
  BitVector v(70, true);
  v.resize(10);
  EXPECT_EQ(v.count(), 10u);
  v.resize(70);
  EXPECT_EQ(v.count(), 10u);  // regrown bits must be zero
}

TEST(BitVector, AndOrXor) {
  const auto a = BitVector::from_string("1100");
  const auto b = BitVector::from_string("1010");
  EXPECT_EQ((a & b).to_string(), "1000");
  EXPECT_EQ((a | b).to_string(), "1110");
  EXPECT_EQ((a ^ b).to_string(), "0110");
}

TEST(BitVector, SizeMismatchThrows) {
  BitVector a(4), b(5);
  EXPECT_THROW(a &= b, CheckError);
  EXPECT_THROW(a.and_count(b), CheckError);
}

TEST(BitVector, PaperCorrelationExample) {
  // The worked example from Section 4 of the paper:
  // Corr_0(g1, rs) = |00101101 & (01001101 << 0)| / |00101101| = 3/4.
  const auto ss_g1 = BitVector::from_string("00101101");
  const auto ss_rs = BitVector::from_string("01001101");
  EXPECT_EQ(ss_g1.and_count(ss_rs.shifted_down(0)), 3u);
  EXPECT_EQ(ss_g1.count(), 4u);

  // Corr_0(g2, rs) = |01100111 & 01001101| / |01100111| = 3/5.
  const auto ss_g2 = BitVector::from_string("01100111");
  EXPECT_EQ(ss_g2.and_count(ss_rs), 3u);
  EXPECT_EQ(ss_g2.count(), 5u);

  // Corr_1(g3, rs) = |01001111 & (01001101 << 1)| / |01001111| = 2/5.
  const auto ss_g3 = BitVector::from_string("01001111");
  EXPECT_EQ(ss_g3.and_count(ss_rs.shifted_down(1)), 2u);
  EXPECT_EQ(ss_g3.count(), 5u);
}

TEST(BitVector, ShiftedDownBasic) {
  const auto v = BitVector::from_string("10110001");
  EXPECT_EQ(v.shifted_down(0).to_string(), "10110001");
  EXPECT_EQ(v.shifted_down(1).to_string(), "01100010");
  EXPECT_EQ(v.shifted_down(3).to_string(), "10001000");
  EXPECT_EQ(v.shifted_down(8).to_string(), "00000000");
  EXPECT_EQ(v.shifted_down(100).to_string(), "00000000");
}

TEST(BitVector, ShiftedUpBasic) {
  const auto v = BitVector::from_string("10110001");
  EXPECT_EQ(v.shifted_up(0).to_string(), "10110001");
  EXPECT_EQ(v.shifted_up(1).to_string(), "01011000");
  EXPECT_EQ(v.shifted_up(100).to_string(), "00000000");
}

TEST(BitVector, ShiftCrossesWordBoundary) {
  BitVector v(130);
  v.set(127, true);
  v.set(128, true);
  const auto down = v.shifted_down(65);
  EXPECT_TRUE(down.get(62));
  EXPECT_TRUE(down.get(63));
  EXPECT_EQ(down.count(), 2u);
  const auto up = down.shifted_up(65);
  EXPECT_TRUE(up.get(127));
  EXPECT_TRUE(up.get(128));
  EXPECT_EQ(up.count(), 2u);
}

TEST(BitVector, ShiftUpDropsBitsBeyondSize) {
  BitVector v(10);
  v.set(9, true);
  EXPECT_EQ(v.shifted_up(1).count(), 0u);
}

TEST(BitVector, AndCountMatchesMaterialized) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + rng.uniform_below(300);
    BitVector a(n), b(n);
    for (std::size_t i = 0; i < n; ++i) {
      a.set(i, rng.bernoulli(0.5));
      b.set(i, rng.bernoulli(0.5));
    }
    EXPECT_EQ(a.and_count(b), (a & b).count());
  }
}

TEST(BitVector, SetBitsAscending) {
  BitVector v(200);
  v.set(3, true);
  v.set(64, true);
  v.set(199, true);
  const auto bits = v.set_bits();
  ASSERT_EQ(bits.size(), 3u);
  EXPECT_EQ(bits[0], 3u);
  EXPECT_EQ(bits[1], 64u);
  EXPECT_EQ(bits[2], 199u);
}

TEST(BitVector, EqualityIgnoresNothing) {
  auto a = BitVector::from_string("1010");
  auto b = BitVector::from_string("1010");
  EXPECT_EQ(a, b);
  b.set(0, false);
  EXPECT_NE(a, b);
  BitVector c(5);
  EXPECT_NE(BitVector(4), c);  // size matters
}

// Property: shifting down by i then counting overlap equals a manual loop.
class BitVectorShiftProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitVectorShiftProperty, ShiftDownMatchesNaive) {
  const std::size_t shift = GetParam();
  Rng rng(shift * 977 + 5);
  const std::size_t n = 257;
  BitVector v(n);
  for (std::size_t i = 0; i < n; ++i) v.set(i, rng.bernoulli(0.4));
  const BitVector s = v.shifted_down(shift);
  for (std::size_t i = 0; i < n; ++i) {
    const bool expect = (i + shift < n) ? v.get(i + shift) : false;
    EXPECT_EQ(s.get(i), expect) << "shift " << shift << " bit " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Shifts, BitVectorShiftProperty,
                         ::testing::Values(0, 1, 7, 63, 64, 65, 128, 200, 256,
                                           257, 1000));

}  // namespace
}  // namespace fav
