#include "netlist/unroll.h"

#include <gtest/gtest.h>

#include <sstream>

#include "netlist/dot.h"
#include "netlist/logicsim.h"
#include "util/check.h"

namespace fav::netlist {
namespace {

// 2-bit counter shared with the logicsim tests.
struct Counter {
  Netlist nl;
  NodeId b0, b1;
  Counter() {
    b0 = nl.add_dff("b0");
    b1 = nl.add_dff("b1");
    nl.connect_dff(b0, nl.add_gate(CellType::kNot, {b0}));
    nl.connect_dff(b1, nl.add_gate(CellType::kXor, {b1, b0}));
  }
};

TEST(Unroller, UnrolledIsCombinational) {
  Counter c;
  Unroller u(c.nl, 4);
  EXPECT_EQ(u.unrolled().dffs().size(), 0u);
  EXPECT_NO_THROW(u.unrolled().validate());
}

TEST(Unroller, FrameZeroStateIsInput) {
  Counter c;
  Unroller u(c.nl, 2);
  const NodeId init0 = u.initial_state_input(c.b0);
  EXPECT_EQ(u.unrolled().node(init0).type, CellType::kInput);
}

TEST(Unroller, MatchesSequentialSimulation) {
  Counter c;
  constexpr int kFrames = 5;
  Unroller u(c.nl, kFrames);

  // Sequential reference.
  LogicSimulator seq(c.nl);
  std::vector<std::pair<bool, bool>> expected;
  for (int f = 0; f < kFrames; ++f) {
    seq.evaluate_comb();
    expected.emplace_back(seq.value(c.b0), seq.value(c.b1));
    seq.clock_edge();
  }

  // Unrolled evaluation: initial state 00.
  LogicSimulator comb(u.unrolled());
  comb.set_input(u.initial_state_input(c.b0), false);
  comb.set_input(u.initial_state_input(c.b1), false);
  comb.evaluate_comb();
  for (int f = 0; f < kFrames; ++f) {
    EXPECT_EQ(comb.value(u.at(c.b0, f)), expected[static_cast<std::size_t>(f)].first)
        << "frame " << f;
    EXPECT_EQ(comb.value(u.at(c.b1, f)), expected[static_cast<std::size_t>(f)].second)
        << "frame " << f;
  }
}

TEST(Unroller, NonZeroInitialState) {
  Counter c;
  Unroller u(c.nl, 3);
  LogicSimulator comb(u.unrolled());
  comb.set_input(u.initial_state_input(c.b0), true);
  comb.set_input(u.initial_state_input(c.b1), true);  // start at 3
  comb.evaluate_comb();
  // 3 -> 0 -> 1
  EXPECT_TRUE(comb.value(u.at(c.b0, 0)));
  EXPECT_TRUE(comb.value(u.at(c.b1, 0)));
  EXPECT_FALSE(comb.value(u.at(c.b0, 1)));
  EXPECT_FALSE(comb.value(u.at(c.b1, 1)));
  EXPECT_TRUE(comb.value(u.at(c.b0, 2)));
  EXPECT_FALSE(comb.value(u.at(c.b1, 2)));
}

TEST(Unroller, PrimaryInputsPerFrame) {
  Netlist nl;
  const NodeId in = nl.add_input("x");
  const NodeId r = nl.add_dff("r");
  nl.connect_dff(r, in);

  Unroller u(nl, 3);
  LogicSimulator sim(u.unrolled());
  sim.set_input("x@f0", true);
  sim.set_input("x@f1", false);
  sim.set_input("x@f2", true);
  sim.set_input(u.initial_state_input(r), false);
  sim.evaluate_comb();
  EXPECT_FALSE(sim.value(u.at(r, 0)));
  EXPECT_TRUE(sim.value(u.at(r, 1)));   // latched x@f0
  EXPECT_FALSE(sim.value(u.at(r, 2)));  // latched x@f1
}

TEST(Unroller, FrameOutOfRangeThrows) {
  Counter c;
  Unroller u(c.nl, 2);
  EXPECT_THROW(u.at(c.b0, 2), fav::CheckError);
  EXPECT_THROW(u.at(c.b0, -1), fav::CheckError);
}

TEST(Unroller, ZeroFramesThrows) {
  Counter c;
  EXPECT_THROW(Unroller(c.nl, 0), fav::CheckError);
}

TEST(WriteDot, ProducesParsableSkeleton) {
  Counter c;
  c.nl.set_output("b0", c.b0);
  std::ostringstream os;
  write_dot(c.nl, os, "counter");
  const std::string dot = os.str();
  EXPECT_NE(dot.find("digraph counter"), std::string::npos);
  EXPECT_NE(dot.find("DFF"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_NE(dot.find("out_b0"), std::string::npos);
}

}  // namespace
}  // namespace fav::netlist
