#include "netlist/cones.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/check.h"

namespace fav::netlist {
namespace {

bool contains_id(const std::vector<NodeId>& v, NodeId id) {
  return std::find(v.begin(), v.end(), id) != v.end();
}

// Pipeline fixture:
//   in1 --+
//         AND(g1) --> r2 --+
//   r1 --+                 OR(rs) --> r3 --> NOT(g2) --> r4
//   in2 -------------------+
// r1 toggles (feedback through NOT), so the netlist is fully connected.
struct Pipeline : ::testing::Test {
  Netlist nl;
  NodeId in1, in2, r1, r2, r3, r4, g1, rs, g2, r1n;

  void SetUp() override {
    in1 = nl.add_input("in1");
    in2 = nl.add_input("in2");
    r1 = nl.add_dff("r1");
    r2 = nl.add_dff("r2");
    r3 = nl.add_dff("r3");
    r4 = nl.add_dff("r4");
    g1 = nl.add_gate(CellType::kAnd, {in1, r1}, "g1");
    rs = nl.add_gate(CellType::kOr, {r2, in2}, "rs");
    g2 = nl.add_gate(CellType::kNot, {r3}, "g2");
    r1n = nl.add_gate(CellType::kNot, {r1}, "r1n");
    nl.connect_dff(r1, r1n);
    nl.connect_dff(r2, g1);
    nl.connect_dff(r3, rs);
    nl.connect_dff(r4, g2);
    nl.validate();
  }
};

TEST_F(Pipeline, FaninFrameZero) {
  UnrolledCone cone(nl, rs, 2, 2);
  const ConeFrame& f0 = cone.frame(0);
  EXPECT_TRUE(contains_id(f0.gates, rs));
  EXPECT_TRUE(contains_id(f0.registers, r2));
  EXPECT_FALSE(contains_id(f0.gates, g1));  // g1 is one register crossing away
  EXPECT_FALSE(contains_id(f0.registers, r1));
}

TEST_F(Pipeline, FaninFrameOneCrossesRegister) {
  UnrolledCone cone(nl, rs, 2, 2);
  const ConeFrame& f1 = cone.frame(1);
  EXPECT_TRUE(contains_id(f1.gates, g1));
  EXPECT_TRUE(contains_id(f1.registers, r1));
  EXPECT_FALSE(contains_id(f1.registers, r2));  // r2's state matters at frame 0
}

TEST_F(Pipeline, FaninFrameTwoFollowsFeedback) {
  UnrolledCone cone(nl, rs, 2, 2);
  const ConeFrame& f2 = cone.frame(2);
  // r1's D input is r1n, fed by r1 again.
  EXPECT_TRUE(contains_id(f2.gates, r1n));
  EXPECT_TRUE(contains_id(f2.registers, r1));
}

TEST_F(Pipeline, FanoutFrames) {
  UnrolledCone cone(nl, rs, 2, 2);
  const ConeFrame& fm1 = cone.frame(-1);
  EXPECT_TRUE(contains_id(fm1.registers, r3));
  EXPECT_TRUE(contains_id(fm1.gates, g2));
  const ConeFrame& fm2 = cone.frame(-2);
  EXPECT_TRUE(contains_id(fm2.registers, r4));
}

TEST_F(Pipeline, MembershipQuery) {
  UnrolledCone cone(nl, rs, 2, 2);
  EXPECT_TRUE(cone.contains(0, rs));
  EXPECT_TRUE(cone.contains(0, r2));
  EXPECT_TRUE(cone.contains(1, g1));
  EXPECT_FALSE(cone.contains(0, g1));
  EXPECT_TRUE(cone.contains(-1, r3));
  EXPECT_FALSE(cone.contains(-1, r4));
  EXPECT_FALSE(cone.contains(5, rs));   // out of extracted range
  EXPECT_FALSE(cone.contains(-5, rs));
}

TEST_F(Pipeline, DepthZeroLimitsTraversal) {
  UnrolledCone cone(nl, rs, 0, 0);
  EXPECT_TRUE(cone.contains(0, r2));
  EXPECT_FALSE(cone.has_frame(1));
  EXPECT_FALSE(cone.has_frame(-1));
  EXPECT_THROW(cone.frame(1), CheckError);
}

TEST_F(Pipeline, AllFaninAggregates) {
  UnrolledCone cone(nl, rs, 3, 0);
  const auto regs = cone.all_fanin_registers();
  EXPECT_TRUE(contains_id(regs, r1));
  EXPECT_TRUE(contains_id(regs, r2));
  EXPECT_FALSE(contains_id(regs, r3));
  EXPECT_FALSE(contains_id(regs, r4));
  const auto gates = cone.all_fanin_gates();
  EXPECT_TRUE(contains_id(gates, rs));
  EXPECT_TRUE(contains_id(gates, g1));
  EXPECT_TRUE(contains_id(gates, r1n));
  EXPECT_FALSE(contains_id(gates, g2));
}

TEST_F(Pipeline, ConeFromRegister) {
  // The cone can start at a DFF responding "signal" too.
  UnrolledCone cone(nl, r3, 1, 1);
  EXPECT_TRUE(cone.contains(0, r3));
  EXPECT_TRUE(cone.contains(1, rs));
  EXPECT_TRUE(cone.contains(1, r2));
  EXPECT_TRUE(cone.contains(-1, r4));  // r3 -> g2 -> r4 latches next cycle
}

TEST_F(Pipeline, ConeIsSubsetOfNetlist) {
  UnrolledCone cone(nl, rs, 4, 4);
  for (const auto& f : cone.fanin_frames()) {
    for (NodeId g : f.gates) EXPECT_TRUE(nl.is_comb_gate(g));
    for (NodeId r : f.registers) EXPECT_TRUE(nl.is_dff(r));
  }
  for (const auto& f : cone.fanout_frames()) {
    for (NodeId g : f.gates) EXPECT_TRUE(nl.is_comb_gate(g));
    for (NodeId r : f.registers) EXPECT_TRUE(nl.is_dff(r));
  }
}

TEST_F(Pipeline, CombFanoutInObservationCycleJoinsFrameZero) {
  // Add a comb gate after rs in the same cycle: rs -> AND(in2) -> r_extra.
  const NodeId g3 = nl.add_gate(CellType::kAnd, {rs, in2}, "g3");
  const NodeId r5 = nl.add_dff("r5");
  nl.connect_dff(r5, g3);
  UnrolledCone cone(nl, rs, 1, 1);
  EXPECT_TRUE(cone.contains(0, g3));
  EXPECT_TRUE(cone.contains(-1, r5));
}

}  // namespace
}  // namespace fav::netlist
