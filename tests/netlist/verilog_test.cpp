#include "netlist/verilog.h"

#include <gtest/gtest.h>

#include <sstream>

#include "gen/builder.h"

namespace fav::netlist {
namespace {

// Small mixed circuit: comb gates of several types plus a register.
struct Circuit {
  Netlist nl;
  NodeId a, b, g_and, g_nor, g_mux, r;
  Circuit() {
    a = nl.add_input("a");
    b = nl.add_input("in[3]");  // name needing sanitization
    g_and = nl.add_gate(CellType::kAnd, {a, b}, "g_and");
    g_nor = nl.add_gate(CellType::kNor, {a, b});
    g_mux = nl.add_gate(CellType::kMux, {a, g_and, g_nor});
    r = nl.add_dff("state[0]");
    nl.connect_dff(r, g_mux);
    nl.set_output("y", r);
  }
};

std::string emit(const Netlist& nl, const std::string& name = "fav_top") {
  std::ostringstream os;
  write_verilog(nl, os, name);
  return os.str();
}

TEST(VerilogIdentifier, Sanitization) {
  EXPECT_EQ(verilog_identifier("plain_name"), "plain_name");
  EXPECT_EQ(verilog_identifier("pc[3]"), "pc_3_");
  EXPECT_EQ(verilog_identifier("a@f0"), "a_f0");
  EXPECT_EQ(verilog_identifier("3rd"), "_3rd");
  EXPECT_EQ(verilog_identifier(""), "_");
}

TEST(WriteVerilog, ModuleSkeleton) {
  Circuit c;
  const std::string v = emit(c.nl, "my top");
  EXPECT_NE(v.find("module my_top ("), std::string::npos);
  EXPECT_NE(v.find("input wire clk"), std::string::npos);
  EXPECT_NE(v.find("input wire a"), std::string::npos);
  EXPECT_NE(v.find("input wire in_3_"), std::string::npos);
  EXPECT_NE(v.find("output wire y"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
}

TEST(WriteVerilog, CombinationalAssigns) {
  Circuit c;
  const std::string v = emit(c.nl);
  // AND: plain binary; NOR: inverted; MUX: ternary.
  EXPECT_NE(v.find("& n"), std::string::npos);
  EXPECT_NE(v.find("= ~(n"), std::string::npos);
  EXPECT_NE(v.find(" ? n"), std::string::npos);
}

TEST(WriteVerilog, SequentialAlwaysBlock) {
  Circuit c;
  const std::string v = emit(c.nl);
  EXPECT_NE(v.find("always @(posedge clk)"), std::string::npos);
  EXPECT_NE(v.find("<= n"), std::string::npos);
  EXPECT_NE(v.find("// state[0]"), std::string::npos);
}

TEST(WriteVerilog, ConstantsEmitted) {
  Netlist nl;
  const NodeId c1 = nl.add_const(true);
  const NodeId c0 = nl.add_const(false);
  const NodeId g = nl.add_gate(CellType::kOr, {c0, c1});
  nl.set_output("y", g);
  const std::string v = emit(nl);
  EXPECT_NE(v.find("= 1'b0;"), std::string::npos);
  EXPECT_NE(v.find("= 1'b1;"), std::string::npos);
}

TEST(WriteVerilog, WiderDatapathEmitsEveryCell) {
  // A 16-bit registered adder (~350 cells): every cell must appear exactly
  // once as an assign or a non-blocking register update.
  Netlist nl;
  gen::Builder bld(nl);
  const auto x = bld.input_word("x", 16);
  const auto y = bld.input_word("y", 16);
  const auto sum = bld.add_word(x, y);
  const auto r = bld.dff_word("acc", 16);
  bld.connect_word(r, sum);
  for (int i = 0; i < 16; ++i) {
    nl.set_output("q[" + std::to_string(i) + "]",
                  r[static_cast<std::size_t>(i)]);
  }
  const std::string v = emit(nl);
  std::size_t assigns = 0, nonblocking = 0, pos = 0;
  while ((pos = v.find("  assign n", pos)) != std::string::npos) {
    ++assigns;
    ++pos;
  }
  pos = 0;
  while ((pos = v.find("<= n", pos)) != std::string::npos) {
    ++nonblocking;
    ++pos;
  }
  // Constants also emit one assign each (the adder uses a const-0 carry-in).
  std::size_t consts = 0;
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    const CellType t = nl.node(id).type;
    if (t == CellType::kConst0 || t == CellType::kConst1) ++consts;
  }
  EXPECT_EQ(assigns, nl.gate_count() + consts);
  EXPECT_EQ(nonblocking, nl.dffs().size());
}

}  // namespace
}  // namespace fav::netlist
