#include "netlist/netlist.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace fav::netlist {
namespace {

TEST(Cell, Arity) {
  EXPECT_EQ(cell_arity(CellType::kInput), 0);
  EXPECT_EQ(cell_arity(CellType::kNot), 1);
  EXPECT_EQ(cell_arity(CellType::kAnd), 2);
  EXPECT_EQ(cell_arity(CellType::kMux), 3);
  EXPECT_EQ(cell_arity(CellType::kDff), 1);
}

TEST(Cell, EvalTruthTables) {
  const bool f = false, t = true;
  {
    const bool ins[] = {t};
    EXPECT_TRUE(eval_cell(CellType::kBuf, ins));
    EXPECT_FALSE(eval_cell(CellType::kNot, ins));
  }
  for (bool a : {f, t}) {
    for (bool b : {f, t}) {
      const bool ins[] = {a, b};
      EXPECT_EQ(eval_cell(CellType::kAnd, ins), a && b);
      EXPECT_EQ(eval_cell(CellType::kOr, ins), a || b);
      EXPECT_EQ(eval_cell(CellType::kNand, ins), !(a && b));
      EXPECT_EQ(eval_cell(CellType::kNor, ins), !(a || b));
      EXPECT_EQ(eval_cell(CellType::kXor, ins), a != b);
      EXPECT_EQ(eval_cell(CellType::kXnor, ins), a == b);
      for (bool s : {f, t}) {
        const bool mins[] = {s, a, b};
        EXPECT_EQ(eval_cell(CellType::kMux, mins), s ? b : a);
      }
    }
  }
}

TEST(Cell, EvalArityMismatchThrows) {
  const bool one[] = {true};
  EXPECT_THROW(eval_cell(CellType::kAnd, one), CheckError);
}

TEST(Cell, ControllingValues) {
  EXPECT_TRUE(is_controlling_value(CellType::kAnd, 0, false));
  EXPECT_FALSE(is_controlling_value(CellType::kAnd, 0, true));
  EXPECT_TRUE(is_controlling_value(CellType::kOr, 1, true));
  EXPECT_TRUE(is_controlling_value(CellType::kNand, 0, false));
  EXPECT_TRUE(is_controlling_value(CellType::kNor, 0, true));
  EXPECT_FALSE(is_controlling_value(CellType::kXor, 0, true));
  EXPECT_FALSE(is_controlling_value(CellType::kXor, 0, false));
}

TEST(Netlist, BuildSmallCircuit) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId g = nl.add_gate(CellType::kAnd, {a, b}, "g");
  nl.set_output("y", g);
  EXPECT_EQ(nl.node_count(), 3u);
  EXPECT_EQ(nl.gate_count(), 1u);
  EXPECT_EQ(nl.inputs().size(), 2u);
  ASSERT_EQ(nl.outputs().size(), 1u);
  EXPECT_EQ(nl.outputs()[0].first, "y");
  nl.validate();
}

TEST(Netlist, FindByName) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId g = nl.add_gate(CellType::kNot, {a}, "inv");
  nl.set_output("out", g);
  EXPECT_EQ(nl.find_or_throw("a"), a);
  EXPECT_EQ(nl.find_or_throw("inv"), g);
  EXPECT_EQ(nl.find_or_throw("out"), g);  // output alias resolves
  EXPECT_FALSE(nl.find("nope").has_value());
  EXPECT_THROW(nl.find_or_throw("nope"), CheckError);
}

TEST(Netlist, DuplicateNameThrows) {
  Netlist nl;
  nl.add_input("a");
  EXPECT_THROW(nl.add_input("a"), CheckError);
}

TEST(Netlist, GateArityChecked) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  EXPECT_THROW(nl.add_gate(CellType::kAnd, {a}), CheckError);
  EXPECT_THROW(nl.add_gate(CellType::kDff, {a}), CheckError);
  EXPECT_THROW(nl.add_gate(CellType::kNot, {99}), CheckError);
}

TEST(Netlist, DffConnectLifecycle) {
  Netlist nl;
  const NodeId d = nl.add_dff("r");
  const NodeId inv = nl.add_gate(CellType::kNot, {d}, "n");
  nl.connect_dff(d, inv);  // toggle register
  nl.validate();
  EXPECT_THROW(nl.connect_dff(d, inv), CheckError);  // double connect
}

TEST(Netlist, UnconnectedDffFailsValidation) {
  Netlist nl;
  nl.add_dff("r");
  EXPECT_THROW(nl.validate(), CheckError);
}

TEST(Netlist, TopoOrderRespectsDependencies) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId g1 = nl.add_gate(CellType::kAnd, {a, b});
  const NodeId g2 = nl.add_gate(CellType::kNot, {g1});
  const NodeId g3 = nl.add_gate(CellType::kOr, {g2, a});
  const auto& topo = nl.topo_order();
  ASSERT_EQ(topo.size(), 3u);
  auto pos = [&](NodeId id) {
    return std::find(topo.begin(), topo.end(), id) - topo.begin();
  };
  EXPECT_LT(pos(g1), pos(g2));
  EXPECT_LT(pos(g2), pos(g3));
}

TEST(Netlist, Levels) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId g1 = nl.add_gate(CellType::kNot, {a});
  const NodeId g2 = nl.add_gate(CellType::kNot, {g1});
  EXPECT_EQ(nl.levels()[a], 0);
  EXPECT_EQ(nl.levels()[g1], 1);
  EXPECT_EQ(nl.levels()[g2], 2);
  EXPECT_EQ(nl.max_level(), 2);
}

TEST(Netlist, FanoutsTrackPins) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId g = nl.add_gate(CellType::kMux, {a, b, a});
  const auto& fo = nl.fanouts();
  ASSERT_EQ(fo[a].size(), 2u);  // pins 0 and 2
  EXPECT_EQ(fo[a][0].consumer, g);
  EXPECT_EQ(fo[a][0].pin, 0);
  EXPECT_EQ(fo[a][1].pin, 2);
  ASSERT_EQ(fo[b].size(), 1u);
  EXPECT_EQ(fo[b][0].pin, 1);
}

TEST(Netlist, SequentialLoopIsLegal) {
  // DFF breaks the cycle: r -> not -> r.
  Netlist nl;
  const NodeId r = nl.add_dff("r");
  const NodeId n = nl.add_gate(CellType::kNot, {r});
  nl.connect_dff(r, n);
  EXPECT_NO_THROW(nl.validate());
  EXPECT_EQ(nl.topo_order().size(), 1u);
}

}  // namespace
}  // namespace fav::netlist
