#include "netlist/logicsim.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace fav::netlist {
namespace {

// A 2-bit counter: classic sequential sanity check.
struct Counter {
  Netlist nl;
  NodeId b0, b1;
  Counter() {
    b0 = nl.add_dff("b0");
    b1 = nl.add_dff("b1");
    const NodeId n0 = nl.add_gate(CellType::kNot, {b0});
    const NodeId t1 = nl.add_gate(CellType::kXor, {b1, b0});
    nl.connect_dff(b0, n0);
    nl.connect_dff(b1, t1);
    nl.set_output("b0", b0);
    nl.set_output("b1", b1);
  }
};

TEST(LogicSimulator, CombEvaluation) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId y = nl.add_gate(CellType::kXor, {a, b}, "y");
  (void)y;
  nl.set_output("y", y);

  LogicSimulator sim(nl);
  for (bool va : {false, true}) {
    for (bool vb : {false, true}) {
      sim.set_input("a", va);
      sim.set_input("b", vb);
      sim.evaluate_comb();
      EXPECT_EQ(sim.output("y"), va != vb);
    }
  }
}

TEST(LogicSimulator, ConstantsInitialized) {
  Netlist nl;
  const NodeId c1 = nl.add_const(true);
  const NodeId c0 = nl.add_const(false);
  const NodeId y = nl.add_gate(CellType::kAnd, {c1, c0});
  nl.set_output("y", y);
  nl.set_output("one", c1);
  LogicSimulator sim(nl);
  sim.evaluate_comb();
  EXPECT_FALSE(sim.output("y"));
  EXPECT_TRUE(sim.output("one"));
}

TEST(LogicSimulator, CounterCountsModulo4) {
  Counter c;
  LogicSimulator sim(c.nl);
  int expected = 0;
  for (int cycle = 0; cycle < 12; ++cycle) {
    sim.evaluate_comb();
    const int val = (sim.value(c.b1) ? 2 : 0) + (sim.value(c.b0) ? 1 : 0);
    EXPECT_EQ(val, expected) << "cycle " << cycle;
    sim.clock_edge();
    expected = (expected + 1) % 4;
  }
}

TEST(LogicSimulator, DffChainShiftsNotRaces) {
  // r1 -> r2 directly; after one edge r2 must hold r1's OLD value.
  Netlist nl;
  const NodeId in = nl.add_input("in");
  const NodeId r1 = nl.add_dff("r1");
  const NodeId r2 = nl.add_dff("r2");
  nl.connect_dff(r1, in);
  nl.connect_dff(r2, r1);

  LogicSimulator sim(nl);
  sim.set_input("in", true);
  sim.step();
  EXPECT_TRUE(sim.value(r1));
  EXPECT_FALSE(sim.value(r2));  // old r1 value (0) latched, not the new one
  sim.set_input("in", false);
  sim.step();
  EXPECT_FALSE(sim.value(r1));
  EXPECT_TRUE(sim.value(r2));
}

TEST(LogicSimulator, RegisterStateRoundTrip) {
  Counter c;
  LogicSimulator sim(c.nl);
  sim.step();
  sim.step();
  sim.step();  // counter = 3
  const auto snapshot = sim.register_state();

  LogicSimulator sim2(c.nl);
  sim2.load_register_state(snapshot);
  sim2.evaluate_comb();
  EXPECT_EQ(sim2.value(c.b0), sim.value(c.b0));
  EXPECT_EQ(sim2.value(c.b1), sim.value(c.b1));
}

TEST(LogicSimulator, LoadWrongSizeThrows) {
  Counter c;
  LogicSimulator sim(c.nl);
  EXPECT_THROW(sim.load_register_state({true}), CheckError);
}

TEST(LogicSimulator, SetRegisterInjectsBitError) {
  Counter c;
  LogicSimulator sim(c.nl);
  sim.step();  // counter = 1
  sim.set_register(c.b1, true);  // inject: counter becomes 3
  sim.evaluate_comb();
  EXPECT_TRUE(sim.value(c.b1));
  EXPECT_TRUE(sim.value(c.b0));
}

TEST(LogicSimulator, SetRegisterOnGateThrows) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId g = nl.add_gate(CellType::kNot, {a});
  nl.set_output("y", g);
  LogicSimulator sim(nl);
  EXPECT_THROW(sim.set_register(g, true), CheckError);
  EXPECT_THROW(sim.set_input(g, true), CheckError);
}

TEST(WordSimulator, BroadcastMatchesScalarEverywhere) {
  Counter c;
  LogicSimulator sim(c.nl);
  sim.step();
  sim.step();  // counter = 2
  sim.evaluate_comb();
  WordSimulator words(c.nl);
  words.broadcast_from(sim);
  for (NodeId id = 0; id < c.nl.node_count(); ++id) {
    const std::uint64_t expect = sim.value(id) ? ~std::uint64_t{0} : 0;
    EXPECT_EQ(words.word(id), expect) << "node " << id;
  }
}

TEST(WordSimulator, LanesStepIndependentlyLikeScalar) {
  Counter c;
  WordSimulator words(c.nl);
  std::vector<LogicSimulator> scalar;
  for (int l = 0; l < 64; ++l) {
    scalar.emplace_back(c.nl);
    // Lane l starts at counter state l % 4.
    scalar[l].set_register(c.b0, (l & 1) != 0);
    scalar[l].set_register(c.b1, (l & 2) != 0);
    words.set_register_lane(c.b0, l, (l & 1) != 0);
    words.set_register_lane(c.b1, l, (l & 2) != 0);
  }
  for (int cycle = 0; cycle < 5; ++cycle) {
    words.evaluate_comb();
    for (int l = 0; l < 64; ++l) {
      scalar[l].evaluate_comb();
      for (NodeId id = 0; id < c.nl.node_count(); ++id)
        ASSERT_EQ(words.value(id, l), scalar[l].value(id))
            << "cycle " << cycle << " lane " << l << " node " << id;
      scalar[l].clock_edge();
    }
    words.clock_edge();
  }
}

TEST(WordSimulator, ConstantsBroadcastToAllLanes) {
  Netlist nl;
  const NodeId c1 = nl.add_const(true);
  const NodeId c0 = nl.add_const(false);
  const NodeId y = nl.add_gate(CellType::kOr, {c0, c1});
  nl.set_output("y", y);
  WordSimulator words(nl);
  words.evaluate_comb();
  EXPECT_EQ(words.word(c1), ~std::uint64_t{0});
  EXPECT_EQ(words.word(c0), std::uint64_t{0});
  EXPECT_EQ(words.word(y), ~std::uint64_t{0});
}

}  // namespace
}  // namespace fav::netlist
