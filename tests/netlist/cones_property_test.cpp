// Property test: UnrolledCone's implicit unrolled-netlist traversal must
// agree with brute-force reachability computed independently on randomly
// generated sequential circuits.
#include <gtest/gtest.h>

#include <set>

#include "netlist/cones.h"
#include "util/rng.h"

namespace fav::netlist {
namespace {

// Random sequential netlist: `gates` random 2-input gates over a growing
// net pool, `dffs` registers with random D inputs (feedback allowed via the
// DFF outputs being in the pool from the start).
struct RandomCircuit {
  Netlist nl;
  std::vector<NodeId> pool;
  std::vector<NodeId> dffs;

  RandomCircuit(std::uint64_t seed, int inputs, int n_dffs, int gates) {
    Rng rng(seed);
    for (int i = 0; i < inputs; ++i) {
      pool.push_back(nl.add_input("in" + std::to_string(i)));
    }
    for (int i = 0; i < n_dffs; ++i) {
      const NodeId d = nl.add_dff("r" + std::to_string(i));
      dffs.push_back(d);
      pool.push_back(d);
    }
    const CellType kinds[] = {CellType::kAnd, CellType::kOr, CellType::kXor,
                              CellType::kNand, CellType::kNor,
                              CellType::kXnor};
    for (int i = 0; i < gates; ++i) {
      const NodeId a = pool[rng.uniform_below(pool.size())];
      const NodeId b = pool[rng.uniform_below(pool.size())];
      pool.push_back(nl.add_gate(kinds[rng.uniform_below(6)], {a, b}));
    }
    for (const NodeId d : dffs) {
      nl.connect_dff(d, pool[rng.uniform_below(pool.size())]);
    }
    nl.validate();
  }
};

// Brute-force fanin reachability on the conceptually unrolled netlist:
// frame-0 cone of `target`, crossing a DFF boundary increments the frame.
std::set<std::pair<int, NodeId>> brute_fanin(const Netlist& nl, NodeId target,
                                             int depth) {
  std::set<std::pair<int, NodeId>> visited;
  std::vector<std::pair<int, NodeId>> stack = {{0, target}};
  while (!stack.empty()) {
    const auto [frame, id] = stack.back();
    stack.pop_back();
    if (!visited.insert({frame, id}).second) continue;
    const Node& n = nl.node(id);
    if (n.type == CellType::kDff) {
      if (frame + 1 <= depth) {
        for (const NodeId f : n.fanins) stack.push_back({frame + 1, f});
      }
    } else if (is_combinational_gate(n.type)) {
      for (const NodeId f : n.fanins) stack.push_back({frame, f});
    }
  }
  return visited;
}

// Same-cycle combinational fanout of the target (joins frame 0 by design:
// timing distance 0, see cones.h).
std::set<NodeId> brute_comb_fanout(const Netlist& nl, NodeId target) {
  std::set<NodeId> visited;
  std::vector<NodeId> stack = {target};
  const auto& fanouts = nl.fanouts();
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    for (const auto& e : fanouts[id]) {
      if (!is_combinational_gate(nl.node(e.consumer).type)) continue;
      if (visited.insert(e.consumer).second) stack.push_back(e.consumer);
    }
  }
  return visited;
}

class ConesProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConesProperty, ImplicitTraversalMatchesBruteForce) {
  RandomCircuit c(GetParam(), 4, 6, 60);
  Rng rng(GetParam() * 31 + 7);
  // Pick a few responding-signal candidates: gates and registers.
  for (int trial = 0; trial < 4; ++trial) {
    const NodeId rs = c.pool[rng.uniform_below(c.pool.size())];
    if (!c.nl.is_comb_gate(rs) && !c.nl.is_dff(rs)) continue;
    constexpr int kDepth = 5;
    const UnrolledCone cone(c.nl, rs, kDepth, 0);
    const auto truth = brute_fanin(c.nl, rs, kDepth);
    const auto fanout0 = brute_comb_fanout(c.nl, rs);
    // Every brute-force member (gate or DFF) must be in the cone and
    // vice versa, frame by frame.
    for (const auto& [frame, id] : truth) {
      if (!c.nl.is_comb_gate(id) && !c.nl.is_dff(id)) continue;
      EXPECT_TRUE(cone.contains(frame, id))
          << "seed " << GetParam() << " rs=" << rs << " missing frame "
          << frame << " node " << id;
    }
    for (int frame = 0; frame <= kDepth; ++frame) {
      const ConeFrame& f = cone.frame(frame);
      for (const NodeId g : f.gates) {
        EXPECT_TRUE(truth.count({frame, g}) ||
                    (frame == 0 && fanout0.count(g)))
            << "seed " << GetParam() << " extra gate " << g << " in frame "
            << frame;
      }
      for (const NodeId r : f.registers) {
        EXPECT_TRUE(truth.count({frame, r}))
            << "seed " << GetParam() << " extra register " << r
            << " in frame " << frame;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConesProperty,
                         ::testing::Values(101, 102, 103, 104, 105, 106, 107,
                                           108));

}  // namespace
}  // namespace fav::netlist
