// Property test: evaluating the explicitly unrolled netlist must agree with
// sequential simulation of the original, cycle for cycle, on randomly
// generated sequential circuits with random stimulus.
#include <gtest/gtest.h>

#include "netlist/logicsim.h"
#include "netlist/unroll.h"
#include "util/rng.h"

namespace fav::netlist {
namespace {

struct RandomCircuit {
  Netlist nl;
  std::vector<NodeId> inputs;
  std::vector<NodeId> dffs;

  RandomCircuit(std::uint64_t seed, int n_inputs, int n_dffs, int gates) {
    Rng rng(seed);
    std::vector<NodeId> pool;
    for (int i = 0; i < n_inputs; ++i) {
      inputs.push_back(nl.add_input("in" + std::to_string(i)));
      pool.push_back(inputs.back());
    }
    for (int i = 0; i < n_dffs; ++i) {
      dffs.push_back(nl.add_dff("r" + std::to_string(i)));
      pool.push_back(dffs.back());
    }
    const CellType kinds[] = {CellType::kAnd,  CellType::kOr,
                              CellType::kXor,  CellType::kNand,
                              CellType::kNor,  CellType::kXnor,
                              CellType::kNot,  CellType::kMux};
    for (int i = 0; i < gates; ++i) {
      const CellType t = kinds[rng.uniform_below(8)];
      std::vector<NodeId> fanins;
      for (int k = 0; k < cell_arity(t); ++k) {
        fanins.push_back(pool[rng.uniform_below(pool.size())]);
      }
      pool.push_back(nl.add_gate(t, std::move(fanins)));
    }
    for (const NodeId d : dffs) {
      nl.connect_dff(d, pool[rng.uniform_below(pool.size())]);
    }
    nl.validate();
  }
};

class UnrollProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UnrollProperty, UnrolledMatchesSequentialSimulation) {
  RandomCircuit c(GetParam(), 3, 5, 40);
  constexpr int kFrames = 6;
  const Unroller unrolled(c.nl, kFrames);
  Rng rng(GetParam() * 7919 + 13);

  // Random stimulus and initial state.
  std::vector<std::vector<bool>> stim(kFrames,
                                      std::vector<bool>(c.inputs.size()));
  std::vector<bool> init(c.dffs.size());
  for (auto& frame : stim) {
    for (auto&& b : frame) b = rng.bernoulli(0.5);
  }
  for (auto&& b : init) b = rng.bernoulli(0.5);

  // Sequential reference.
  LogicSimulator seq(c.nl);
  for (std::size_t i = 0; i < c.dffs.size(); ++i) {
    seq.set_register(c.dffs[i], init[i]);
  }
  std::vector<std::vector<bool>> reg_trace;  // register state per frame
  for (int f = 0; f < kFrames; ++f) {
    for (std::size_t i = 0; i < c.inputs.size(); ++i) {
      seq.set_input(c.inputs[i], stim[static_cast<std::size_t>(f)][i]);
    }
    reg_trace.push_back(seq.register_state());
    seq.step();
  }

  // Combinational evaluation of the unrolled netlist.
  LogicSimulator comb(unrolled.unrolled());
  for (std::size_t i = 0; i < c.dffs.size(); ++i) {
    comb.set_input(unrolled.initial_state_input(c.dffs[i]), init[i]);
  }
  for (int f = 0; f < kFrames; ++f) {
    for (std::size_t i = 0; i < c.inputs.size(); ++i) {
      comb.set_input(
          "in" + std::to_string(i) + "@f" + std::to_string(f),
          stim[static_cast<std::size_t>(f)][i]);
    }
  }
  comb.evaluate_comb();

  for (int f = 0; f < kFrames; ++f) {
    for (std::size_t i = 0; i < c.dffs.size(); ++i) {
      EXPECT_EQ(comb.value(unrolled.at(c.dffs[i], f)),
                reg_trace[static_cast<std::size_t>(f)][i])
          << "seed " << GetParam() << " frame " << f << " reg " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnrollProperty,
                         ::testing::Values(11, 12, 13, 14, 15, 16, 17, 18, 19,
                                           20));

}  // namespace
}  // namespace fav::netlist
