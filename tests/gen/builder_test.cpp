#include "gen/builder.h"

#include <gtest/gtest.h>

#include "netlist/logicsim.h"
#include "util/rng.h"

namespace fav::gen {
namespace {

using netlist::LogicSimulator;

// Harness: evaluate a combinational function of two input words over random
// and corner-case operand pairs.
class WordOpTest : public ::testing::Test {
 protected:
  static constexpr int kWidth = 8;

  struct Circuit {
    Netlist nl;
    Word a, b;
    Builder bld{nl};
    Circuit() {
      a = bld.input_word("a", kWidth);
      b = bld.input_word("b", kWidth);
    }
  };

  static void set_word(LogicSimulator& sim, const Word& w, std::uint64_t v) {
    for (std::size_t i = 0; i < w.size(); ++i) {
      sim.set_input(w[i], (v >> i) & 1);
    }
  }

  static std::uint64_t get_word(const LogicSimulator& sim, const Word& w) {
    return read_word(w, [&](NodeId id) { return sim.value(id); });
  }

  static std::vector<std::pair<std::uint64_t, std::uint64_t>> operand_pairs() {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> out = {
        {0, 0},     {0, 255},  {255, 0},  {255, 255},
        {1, 255},   {128, 127}, {42, 42},  {200, 100},
    };
    fav::Rng rng(99);
    for (int i = 0; i < 64; ++i) {
      out.emplace_back(rng.uniform_below(256), rng.uniform_below(256));
    }
    return out;
  }
};

TEST_F(WordOpTest, ConstantWord) {
  Circuit c;
  const Word k = c.bld.constant_word(0xA5, kWidth);
  LogicSimulator sim(c.nl);
  sim.evaluate_comb();
  EXPECT_EQ(get_word(sim, k), 0xA5u);
}

TEST_F(WordOpTest, AddSubIncrement) {
  Circuit c;
  const Word sum = c.bld.add_word(c.a, c.b);
  const Word diff = c.bld.sub_word(c.a, c.b);
  const Word inc = c.bld.increment(c.a);
  LogicSimulator sim(c.nl);
  for (const auto& [va, vb] : operand_pairs()) {
    set_word(sim, c.a, va);
    set_word(sim, c.b, vb);
    sim.evaluate_comb();
    EXPECT_EQ(get_word(sim, sum), (va + vb) & 0xFF) << va << "+" << vb;
    EXPECT_EQ(get_word(sim, diff), (va - vb) & 0xFF) << va << "-" << vb;
    EXPECT_EQ(get_word(sim, inc), (va + 1) & 0xFF);
  }
}

TEST_F(WordOpTest, AdderCarryOut) {
  Circuit c;
  auto [sum, carry] = c.bld.adder(c.a, c.b, c.bld.const0());
  (void)sum;
  LogicSimulator sim(c.nl);
  for (const auto& [va, vb] : operand_pairs()) {
    set_word(sim, c.a, va);
    set_word(sim, c.b, vb);
    sim.evaluate_comb();
    EXPECT_EQ(sim.value(carry), va + vb > 0xFF) << va << "+" << vb;
  }
}

TEST_F(WordOpTest, BitwiseOps) {
  Circuit c;
  const Word w_and = c.bld.and_word(c.a, c.b);
  const Word w_or = c.bld.or_word(c.a, c.b);
  const Word w_xor = c.bld.xor_word(c.a, c.b);
  const Word w_not = c.bld.not_word(c.a);
  LogicSimulator sim(c.nl);
  for (const auto& [va, vb] : operand_pairs()) {
    set_word(sim, c.a, va);
    set_word(sim, c.b, vb);
    sim.evaluate_comb();
    EXPECT_EQ(get_word(sim, w_and), va & vb);
    EXPECT_EQ(get_word(sim, w_or), va | vb);
    EXPECT_EQ(get_word(sim, w_xor), va ^ vb);
    EXPECT_EQ(get_word(sim, w_not), ~va & 0xFF);
  }
}

TEST_F(WordOpTest, Comparisons) {
  Circuit c;
  const NodeId eq = c.bld.eq_word(c.a, c.b);
  const NodeId ne = c.bld.ne_word(c.a, c.b);
  const NodeId lt = c.bld.ult(c.a, c.b);
  const NodeId le = c.bld.ule(c.a, c.b);
  const NodeId ge = c.bld.uge(c.a, c.b);
  const NodeId gt = c.bld.ugt(c.a, c.b);
  LogicSimulator sim(c.nl);
  for (const auto& [va, vb] : operand_pairs()) {
    set_word(sim, c.a, va);
    set_word(sim, c.b, vb);
    sim.evaluate_comb();
    EXPECT_EQ(sim.value(eq), va == vb) << va << " vs " << vb;
    EXPECT_EQ(sim.value(ne), va != vb);
    EXPECT_EQ(sim.value(lt), va < vb) << va << " < " << vb;
    EXPECT_EQ(sim.value(le), va <= vb);
    EXPECT_EQ(sim.value(ge), va >= vb);
    EXPECT_EQ(sim.value(gt), va > vb);
  }
}

TEST_F(WordOpTest, Reductions) {
  Circuit c;
  const NodeId any = c.bld.reduce_or(c.a);
  const NodeId all = c.bld.reduce_and(c.a);
  const NodeId zero = c.bld.is_zero(c.a);
  LogicSimulator sim(c.nl);
  for (std::uint64_t v : {0ull, 1ull, 0x80ull, 0xFFull, 0x7Full}) {
    set_word(sim, c.a, v);
    sim.evaluate_comb();
    EXPECT_EQ(sim.value(any), v != 0);
    EXPECT_EQ(sim.value(all), v == 0xFF);
    EXPECT_EQ(sim.value(zero), v == 0);
  }
}

TEST_F(WordOpTest, BarrelShifts) {
  Circuit c;
  const Word shamt = c.bld.slice(c.b, 0, 3);  // 0..7
  const Word shl = c.bld.shl_word(c.a, shamt);
  const Word shr = c.bld.shr_word(c.a, shamt);
  LogicSimulator sim(c.nl);
  for (std::uint64_t v : {0x01ull, 0x81ull, 0xFFull, 0x5Aull}) {
    for (std::uint64_t s = 0; s < 8; ++s) {
      set_word(sim, c.a, v);
      set_word(sim, c.b, s);
      sim.evaluate_comb();
      EXPECT_EQ(get_word(sim, shl), (v << s) & 0xFF) << v << "<<" << s;
      EXPECT_EQ(get_word(sim, shr), v >> s) << v << ">>" << s;
    }
  }
}

TEST_F(WordOpTest, MuxWordSelects) {
  Circuit c;
  const NodeId sel = c.nl.add_input("sel");
  const Word m = c.bld.mux_word(sel, c.a, c.b);
  LogicSimulator sim(c.nl);
  set_word(sim, c.a, 0x12);
  set_word(sim, c.b, 0x34);
  sim.set_input(sel, false);
  sim.evaluate_comb();
  EXPECT_EQ(get_word(sim, m), 0x12u);
  sim.set_input(sel, true);
  sim.evaluate_comb();
  EXPECT_EQ(get_word(sim, m), 0x34u);
}

TEST_F(WordOpTest, MuxTreeSelectsAmongFour) {
  Netlist nl;
  Builder bld(nl);
  const Word sel = bld.input_word("sel", 2);
  std::vector<Word> choices;
  for (std::uint64_t i = 0; i < 4; ++i) {
    choices.push_back(bld.constant_word(0x10 + i, 8));
  }
  const Word out = bld.mux_tree(sel, choices);
  LogicSimulator sim(nl);
  for (std::uint64_t s = 0; s < 4; ++s) {
    sim.set_input(sel[0], s & 1);
    sim.set_input(sel[1], (s >> 1) & 1);
    sim.evaluate_comb();
    EXPECT_EQ(get_word(sim, out), 0x10 + s);
  }
}

TEST_F(WordOpTest, MuxTreeWrongChoiceCountThrows) {
  Netlist nl;
  Builder bld(nl);
  const Word sel = bld.input_word("sel", 2);
  std::vector<Word> choices(3, bld.constant_word(0, 4));
  EXPECT_THROW(bld.mux_tree(sel, choices), fav::CheckError);
}

TEST_F(WordOpTest, DecoderOneHot) {
  Netlist nl;
  Builder bld(nl);
  const Word sel = bld.input_word("sel", 3);
  const Word onehot = bld.decoder(sel);
  ASSERT_EQ(onehot.size(), 8u);
  LogicSimulator sim(nl);
  for (std::uint64_t s = 0; s < 8; ++s) {
    for (std::size_t i = 0; i < 3; ++i) sim.set_input(sel[i], (s >> i) & 1);
    sim.evaluate_comb();
    for (std::uint64_t i = 0; i < 8; ++i) {
      EXPECT_EQ(sim.value(onehot[i]), i == s) << "sel=" << s << " bit " << i;
    }
  }
}

TEST_F(WordOpTest, DffWordHoldsState) {
  Netlist nl;
  Builder bld(nl);
  const Word in = bld.input_word("in", 4);
  const Word regs = bld.dff_word("r", 4);
  bld.connect_word(regs, in);
  LogicSimulator sim(nl);
  for (std::size_t i = 0; i < 4; ++i) sim.set_input(in[i], (0xB >> i) & 1);
  sim.step();
  EXPECT_EQ(read_word(regs, [&](NodeId id) { return sim.value(id); }), 0xBu);
}

TEST_F(WordOpTest, SliceConcatZext) {
  Netlist nl;
  Builder bld(nl);
  const Word a = bld.input_word("a", 8);
  const Word hi = bld.slice(a, 4, 4);
  const Word lohi = bld.concat(bld.slice(a, 0, 4), hi);
  const Word wide = bld.zext(bld.slice(a, 0, 4), 8);
  LogicSimulator sim(nl);
  for (std::size_t i = 0; i < 8; ++i) sim.set_input(a[i], (0xC5 >> i) & 1);
  sim.evaluate_comb();
  auto val = [&](const Word& w) {
    return read_word(w, [&](NodeId id) { return sim.value(id); });
  };
  EXPECT_EQ(val(hi), 0xCu);
  EXPECT_EQ(val(lohi), 0xC5u);
  EXPECT_EQ(val(wide), 0x05u);
  EXPECT_THROW(bld.slice(a, 5, 4), fav::CheckError);
}

TEST_F(WordOpTest, AndAllOrAllEmpty) {
  Netlist nl;
  Builder bld(nl);
  EXPECT_EQ(bld.and_all({}), bld.const1());
  EXPECT_EQ(bld.or_all({}), bld.const0());
}

TEST_F(WordOpTest, ConstantsAreCached) {
  Netlist nl;
  Builder bld(nl);
  EXPECT_EQ(bld.const0(), bld.const0());
  EXPECT_EQ(bld.const1(), bld.const1());
}

// Parameterized width sweep: adder correctness is width-independent.
class AdderWidthTest : public ::testing::TestWithParam<int> {};

TEST_P(AdderWidthTest, AddMatchesReference) {
  const int width = GetParam();
  Netlist nl;
  Builder bld(nl);
  const Word a = bld.input_word("a", width);
  const Word b = bld.input_word("b", width);
  const Word sum = bld.add_word(a, b);
  LogicSimulator sim(nl);
  fav::Rng rng(static_cast<std::uint64_t>(width));
  const std::uint64_t mask =
      width == 64 ? ~0ull : (1ull << width) - 1;
  for (int trial = 0; trial < 32; ++trial) {
    const std::uint64_t va = rng.next() & mask;
    const std::uint64_t vb = rng.next() & mask;
    for (int i = 0; i < width; ++i) {
      sim.set_input(a[static_cast<std::size_t>(i)], (va >> i) & 1);
      sim.set_input(b[static_cast<std::size_t>(i)], (vb >> i) & 1);
    }
    sim.evaluate_comb();
    EXPECT_EQ(read_word(sum, [&](NodeId id) { return sim.value(id); }),
              (va + vb) & mask)
        << "width " << width;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, AdderWidthTest,
                         ::testing::Values(1, 2, 3, 8, 16, 24, 32));

}  // namespace
}  // namespace fav::gen
