#include "layout/placement.h"

#include <gtest/gtest.h>

#include <cmath>

#include "gen/builder.h"
#include "util/check.h"
#include "util/rng.h"

namespace fav::layout {
namespace {

using netlist::CellType;
using netlist::Netlist;
using netlist::NodeId;

// Small circuit with two logic levels and a DFF.
struct Fixture {
  Netlist nl;
  NodeId a, b, g1, g2, r;
  Fixture() {
    a = nl.add_input("a");
    b = nl.add_input("b");
    g1 = nl.add_gate(CellType::kAnd, {a, b}, "g1");
    g2 = nl.add_gate(CellType::kNot, {g1}, "g2");
    r = nl.add_dff("r");
    nl.connect_dff(r, g2);
  }
};

TEST(Placement, PlacesGatesAndDffsOnly) {
  Fixture f;
  Placement p(f.nl);
  EXPECT_FALSE(p.is_placed(f.a));
  EXPECT_FALSE(p.is_placed(f.b));
  EXPECT_TRUE(p.is_placed(f.g1));
  EXPECT_TRUE(p.is_placed(f.g2));
  EXPECT_TRUE(p.is_placed(f.r));
  EXPECT_EQ(p.placed_nodes().size(), 3u);
  EXPECT_THROW(p.position(f.a), fav::CheckError);
}

TEST(Placement, ColumnsFollowLogicLevels) {
  Fixture f;
  Placement p(f.nl, 2.0);
  EXPECT_DOUBLE_EQ(p.position(f.g1).x, 2.0);  // level 1
  EXPECT_DOUBLE_EQ(p.position(f.g2).x, 4.0);  // level 2
  // The DFF sits beside its D-input driver (g2, level 2).
  EXPECT_DOUBLE_EQ(p.position(f.r).x, 4.0);
}

TEST(Placement, DistinctPositions) {
  Fixture f;
  Placement p(f.nl);
  const auto& nodes = p.placed_nodes();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      const Point pi = p.position(nodes[i]);
      const Point pj = p.position(nodes[j]);
      EXPECT_TRUE(pi.x != pj.x || pi.y != pj.y)
          << "nodes " << nodes[i] << " and " << nodes[j] << " collide";
    }
  }
}

TEST(Placement, RadiusZeroHitsOnlyCenter) {
  Fixture f;
  Placement p(f.nl);
  const auto hit = p.nodes_within(f.g1, 0.0);
  ASSERT_EQ(hit.size(), 1u);
  EXPECT_EQ(hit[0], f.g1);
}

TEST(Placement, LargeRadiusHitsEverything) {
  Fixture f;
  Placement p(f.nl);
  const auto hit = p.nodes_within(f.g1, 1000.0);
  EXPECT_EQ(hit.size(), p.placed_nodes().size());
}

TEST(Placement, RadiusQueryMatchesBruteForce) {
  // A wider circuit: an 8-bit adder tree.
  Netlist nl;
  gen::Builder bld(nl);
  const auto a = bld.input_word("a", 8);
  const auto b = bld.input_word("b", 8);
  const auto sum = bld.add_word(a, b);
  const auto regs = bld.dff_word("r", 8);
  bld.connect_word(regs, sum);

  Placement p(nl);
  for (double radius : {0.5, 1.0, 2.5, 5.0}) {
    for (NodeId center : {regs[0], sum[3], sum[7]}) {
      const Point c = p.position(center);
      const auto fast = p.nodes_within(c, radius);
      std::vector<NodeId> slow;
      for (NodeId id : p.placed_nodes()) {
        const Point q = p.position(id);
        const double dx = q.x - c.x, dy = q.y - c.y;
        if (std::sqrt(dx * dx + dy * dy) <= radius + 1e-12) slow.push_back(id);
      }
      EXPECT_EQ(fast, slow) << "radius " << radius << " center " << center;
    }
  }
}

TEST(Placement, GridIndexMatchesBruteForceOnRandomQueries) {
  // Heavier randomized cross-check of the uniform-grid index: random pitches
  // and DFF heights produce varied placements; random centers (including
  // off-die points) and radii must agree with an exhaustive scan under the
  // same inclusion rule (squared-distance comparison).
  Netlist nl;
  gen::Builder bld(nl);
  const auto a = bld.input_word("a", 12);
  const auto b = bld.input_word("b", 12);
  const auto sum = bld.add_word(a, b);
  const auto lt = bld.ult(a, b);
  const auto regs = bld.dff_word("r", 12);
  bld.connect_word(regs, sum);
  const NodeId flag = nl.add_dff("f");
  nl.connect_dff(flag, lt);

  Rng rng(99);
  for (const double pitch : {0.7, 1.0, 2.0}) {
    const Placement p(nl, pitch, 3.5);
    for (int q = 0; q < 200; ++q) {
      Point c;
      // Sample on-die and slightly off-die centers.
      c.x = rng.uniform_real(-2.0 * pitch, p.width() + 2.0 * pitch);
      c.y = rng.uniform_real(-2.0 * pitch, p.height() + 2.0 * pitch);
      const double radius = rng.uniform_real(0.0, 4.0 * pitch);
      const auto fast = p.nodes_within(c, radius);
      std::vector<NodeId> slow;
      for (const NodeId id : p.placed_nodes()) {
        const Point q2 = p.position(id);
        const double dx = q2.x - c.x, dy = q2.y - c.y;
        if (dx * dx + dy * dy <= radius * radius) slow.push_back(id);
      }
      EXPECT_EQ(fast, slow) << "pitch " << pitch << " center (" << c.x << ", "
                            << c.y << ") radius " << radius;
    }
  }
}

TEST(Placement, BufferReuseOverloadMatchesAndClears) {
  Fixture f;
  Placement p(f.nl);
  std::vector<NodeId> out = {123456};  // stale content must be cleared
  p.nodes_within(f.g1, 1000.0, out);
  EXPECT_EQ(out, p.nodes_within(f.g1, 1000.0));
  EXPECT_EQ(out.size(), p.placed_nodes().size());
}

TEST(Placement, NegativeRadiusThrows) {
  Fixture f;
  Placement p(f.nl);
  EXPECT_THROW(p.nodes_within(f.g1, -1.0), fav::CheckError);
}

TEST(Placement, InvalidPitchThrows) {
  Fixture f;
  EXPECT_THROW(Placement(f.nl, 0.0), fav::CheckError);
}

TEST(Placement, DimensionsCoverCells) {
  Fixture f;
  Placement p(f.nl);
  for (NodeId id : p.placed_nodes()) {
    const Point q = p.position(id);
    EXPECT_GE(q.x, 0.0);
    EXPECT_LE(q.x, p.width());
    EXPECT_GE(q.y, 0.0);
    EXPECT_LE(q.y, p.height());
  }
}

}  // namespace
}  // namespace fav::layout
