// End-to-end tests for `fav serve` / `fav submit` through the real CLI
// binary: a served campaign must be indistinguishable from a local
// `fav evaluate` — same stdout block, same run report, same journal bytes —
// including under --supervise and a warm pre-characterization cache; two
// concurrent campaigns must stay isolated; and the daemon must reject
// unservable requests and drain gracefully on SIGTERM.
#include <gtest/gtest.h>

#include <signal.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "mc/journal.h"
#include "mc/supervisor.h"
#include "util/subprocess.h"

namespace fav::mc {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("fav_serve_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Runs the CLI synchronously, capturing stdout to `stdout_file`; returns the
/// process exit code.
int run_cli(const std::string& args, const std::string& stdout_file) {
  const std::string cmd = std::string(FAV_CLI_PATH) + " " + args + " > " +
                          stdout_file + " 2> " + stdout_file + ".err";
  const int rc = std::system(cmd.c_str());
  if (rc == -1 || !WIFEXITED(rc)) return -1;
  return WEXITSTATUS(rc);
}

/// Extracts the raw text of a scalar field from a run report ("key": value).
std::string json_field(const std::string& file, const std::string& key) {
  const std::string text = read_file(file);
  const std::string needle = "\"" + key + "\": ";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return "<missing " + key + ">";
  std::size_t end = at + needle.size();
  while (end < text.size() && text[end] != ',' && text[end] != '\n' &&
         text[end] != '}') {
    ++end;
  }
  return text.substr(at + needle.size(), end - (at + needle.size()));
}

/// Every estimate-bearing report field must match exactly (string compare of
/// the raw JSON text, so full double precision). Timing fields and the
/// metrics sink legitimately differ between runs and are not compared.
void expect_reports_equivalent(const std::string& file_a,
                               const std::string& file_b) {
  for (const char* key :
       {"ssf", "std_error", "ci95_half_width", "variance", "ess", "successes",
        "evaluated", "interrupted", "seed", "samples", "retried",
        "failed_weight_fraction", "supervise"}) {
    EXPECT_EQ(json_field(file_a, key), json_field(file_b, key))
        << "report field '" << key << "' diverges";
  }
}

void expect_bitwise_equal_journals(const std::string& dir_a,
                                   const std::string& pattern_a,
                                   const std::string& dir_b,
                                   const std::string& pattern_b) {
  Result<JournalContents> a = JournalReader::merge(dir_a, pattern_a);
  Result<JournalContents> b = JournalReader::merge(dir_b, pattern_b);
  ASSERT_TRUE(a.is_ok()) << a.status().to_string();
  ASSERT_TRUE(b.is_ok()) << b.status().to_string();
  ASSERT_EQ(a.value().records.size(), b.value().records.size());
  for (std::size_t i = 0; i < a.value().records.size(); ++i) {
    std::string image_a, image_b;
    serialize_record(a.value().records[i], image_a);
    serialize_record(b.value().records[i], image_b);
    ASSERT_EQ(image_a, image_b) << "record " << i << " diverges";
  }
}

std::string replace_all(std::string text, const std::string& from,
                        const std::string& to) {
  for (std::size_t at = text.find(from); at != std::string::npos;
       at = text.find(from, at + to.size())) {
    text.replace(at, from.size(), to);
  }
  return text;
}

/// A live `fav serve` daemon on a fresh socket, SIGTERMed (graceful drain)
/// on destruction. `extra` appends serve flags (--state-dir, --max-queued,
/// --campaign-deadline-ms, --stats-out, ...).
class Daemon {
 public:
  explicit Daemon(const std::string& tag, std::size_t max_campaigns = 2,
                  const std::vector<std::string>& extra = {}) {
    socket_path_ = (fs::path(::testing::TempDir()) /
                    ("fav_cli_" + tag + ".sock"))
                       .string();
    fs::remove(socket_path_);
    std::vector<std::string> argv = {FAV_CLI_PATH, "serve", "--socket",
                                     socket_path_, "--max-campaigns",
                                     std::to_string(max_campaigns)};
    argv.insert(argv.end(), extra.begin(), extra.end());
    Result<Subprocess> spawned = Subprocess::spawn(argv);
    EXPECT_TRUE(spawned.is_ok()) << spawned.status().to_string();
    proc_.emplace(std::move(spawned).value());
    for (int i = 0; i < 1000 && !fs::exists(socket_path_); ++i) {
      ::usleep(10'000);
    }
    EXPECT_TRUE(fs::exists(socket_path_)) << "daemon never bound its socket";
  }

  ~Daemon() { stop(); }

  /// SIGTERM + wait; returns the daemon exit status.
  Subprocess::ExitStatus stop() {
    if (!proc_.has_value()) return {};
    proc_->kill(SIGTERM);
    const Subprocess::ExitStatus st = proc_->wait();
    proc_.reset();
    return st;
  }

  /// SIGKILL + wait: the crash the recovery ledger exists for.
  void crash() {
    if (!proc_.has_value()) return;
    proc_->kill(SIGKILL);
    proc_->wait();
    proc_.reset();
  }

  const std::string& socket_path() const { return socket_path_; }

 private:
  std::string socket_path_;
  std::optional<Subprocess> proc_;
};

/// Polls `dir` until a journal shard (*.fj) appears — the point past which a
/// crash leaves resumable on-disk state. Returns false if `proc` exited
/// first (the campaign outran the poll).
bool wait_for_shard(const std::string& dir, Subprocess* proc,
                    bool* proc_done) {
  *proc_done = false;
  for (int i = 0; i < 12000; ++i) {
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
      if (entry.path().extension() == ".fj") return true;
    }
    Subprocess::ExitStatus st;
    if (proc != nullptr && proc->try_wait(&st)) {
      *proc_done = true;
      return false;
    }
    ::usleep(10'000);
  }
  return false;
}

/// Common campaign flags (sans journal/report paths): small but large enough
/// that every outcome path is exercised.
std::string campaign_flags(std::size_t samples) {
  return "--benchmark write --samples " + std::to_string(samples) +
         " --seed 2017 --t-range 20 --shard-size 16";
}

TEST(ServeCli, ServedCampaignMatchesLocalBitwise) {
  const std::string local = fresh_dir("identity_local");
  const std::string served = fresh_dir("identity_served");
  const std::string flags = campaign_flags(120);
  ASSERT_EQ(run_cli("evaluate " + flags + " --journal " + local +
                        " --metrics-out " + local + "/report.json",
                    local + "/out.txt"),
            0);
  Daemon daemon("identity");
  ASSERT_EQ(run_cli("submit --socket " + daemon.socket_path() + " " + flags +
                        " --journal " + served + " --metrics-out " + served +
                        "/report.json",
                    served + "/out.txt"),
            0);
  // The stdout blocks differ only in the paths the client chose.
  EXPECT_EQ(read_file(local + "/out.txt"),
            replace_all(read_file(served + "/out.txt"), served, local));
  expect_reports_equivalent(local + "/report.json", served + "/report.json");
  expect_bitwise_equal_journals(local, "campaign.fj", served, "campaign.fj");
  const Subprocess::ExitStatus st = daemon.stop();
  EXPECT_FALSE(st.signaled);
  EXPECT_EQ(st.exit_code, 0);
}

TEST(ServeCli, SupervisedAndWarmCacheIdentity) {
  const std::string local = fresh_dir("warm_local");
  const std::string served = fresh_dir("warm_served");
  const std::string warmup = fresh_dir("warm_seed");
  const std::string cache = warmup + "/pre.fpa";
  const std::string flags = campaign_flags(120) + " --supervise 2" +
                            " --precharac-cache " + cache;
  // Warm the cache (this run reports "stored"; the two compared runs below
  // both report "hit", keeping their stdout blocks comparable).
  ASSERT_EQ(run_cli("evaluate " + flags + " --journal " + warmup,
                    warmup + "/out.txt"),
            0);
  ASSERT_EQ(run_cli("evaluate " + flags + " --journal " + local +
                        " --metrics-out " + local + "/report.json",
                    local + "/out.txt"),
            0);
  Daemon daemon("warm");
  ASSERT_EQ(run_cli("submit --socket " + daemon.socket_path() + " " + flags +
                        " --journal " + served + " --metrics-out " + served +
                        "/report.json",
                    served + "/out.txt"),
            0);
  EXPECT_NE(read_file(local + "/out.txt").find("precharac  : cache hit"),
            std::string::npos);
  EXPECT_EQ(read_file(local + "/out.txt"),
            replace_all(read_file(served + "/out.txt"), served, local));
  expect_reports_equivalent(local + "/report.json", served + "/report.json");
  expect_bitwise_equal_journals(local, worker_journal_pattern(), served,
                                worker_journal_pattern());
}

TEST(ServeCli, ConcurrentCampaignsStayIsolated) {
  const std::string a = fresh_dir("conc_a");
  const std::string b = fresh_dir("conc_b");
  const std::string base_a = fresh_dir("conc_base_a");
  const std::string base_b = fresh_dir("conc_base_b");
  // Distinct seeds: cross-campaign leakage (shared journal shards, swapped
  // reports) cannot produce two correct, distinct results.
  const std::string flags_a = campaign_flags(120);
  const std::string flags_b =
      "--benchmark write --samples 140 --seed 4242 --t-range 20 "
      "--shard-size 16";
  ASSERT_EQ(run_cli("evaluate " + flags_a + " --journal " + base_a +
                        " --metrics-out " + base_a + "/report.json",
                    base_a + "/out.txt"),
            0);
  ASSERT_EQ(run_cli("evaluate " + flags_b + " --journal " + base_b +
                        " --metrics-out " + base_b + "/report.json",
                    base_b + "/out.txt"),
            0);
  Daemon daemon("concurrent", /*max_campaigns=*/2);
  int rc_a = -1, rc_b = -1;
  std::thread ta([&] {
    rc_a = run_cli("submit --socket " + daemon.socket_path() + " " + flags_a +
                       " --journal " + a + " --metrics-out " + a +
                       "/report.json",
                   a + "/out.txt");
  });
  std::thread tb([&] {
    rc_b = run_cli("submit --socket " + daemon.socket_path() + " " + flags_b +
                       " --journal " + b + " --metrics-out " + b +
                       "/report.json",
                   b + "/out.txt");
  });
  ta.join();
  tb.join();
  EXPECT_EQ(rc_a, 0);
  EXPECT_EQ(rc_b, 0);
  expect_reports_equivalent(base_a + "/report.json", a + "/report.json");
  expect_reports_equivalent(base_b + "/report.json", b + "/report.json");
  expect_bitwise_equal_journals(base_a, "campaign.fj", a, "campaign.fj");
  expect_bitwise_equal_journals(base_b, "campaign.fj", b, "campaign.fj");
}

TEST(ServeCli, UnservableRequestsAreRefusedPerCampaign) {
  Daemon daemon("refuse");
  const std::string dir = fresh_dir("refuse");
  // --trace-out is a client-side file the daemon cannot deliver; the request
  // must fail with the usage exit code without disturbing the daemon.
  EXPECT_EQ(run_cli("submit --socket " + daemon.socket_path() + " " +
                        campaign_flags(16) + " --trace-out " + dir +
                        "/trace.json",
                    dir + "/refused.txt"),
            2);
  // Chaos flags are process-global and must never run on a shared daemon.
  EXPECT_EQ(run_cli("submit --socket " + daemon.socket_path() + " " +
                        campaign_flags(16) + " --chaos-write-nth 5",
                    dir + "/refused2.txt"),
            2);
  // The daemon still serves the next well-formed campaign.
  EXPECT_EQ(run_cli("submit --socket " + daemon.socket_path() + " " +
                        campaign_flags(16),
                    dir + "/ok.txt"),
            0);
  const Subprocess::ExitStatus st = daemon.stop();
  EXPECT_FALSE(st.signaled);
  EXPECT_EQ(st.exit_code, 0);
}

TEST(ServeCli, BusyJournalIsRefusedAndSigtermDrainsGracefully) {
  Daemon daemon("busy");
  const std::string dir = fresh_dir("busy");
  // Campaign A is large enough to still be running when B arrives.
  Result<Subprocess> a = Subprocess::spawn(
      {FAV_CLI_PATH, "submit", "--socket", daemon.socket_path(), "--benchmark",
       "write", "--samples", "20000", "--seed", "2017", "--t-range", "20",
       "--shard-size", "16", "--journal", dir});
  ASSERT_TRUE(a.is_ok()) << a.status().to_string();
  Subprocess proc_a = std::move(a).value();
  // Wait until A's campaign actually owns the journal (shard files appear).
  bool a_started = false;
  bool a_done = false;
  for (int i = 0; i < 12000 && !a_started; ++i) {
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
      if (entry.path().extension() == ".fj") a_started = true;
    }
    Subprocess::ExitStatus st;
    if (proc_a.try_wait(&st)) {
      a_done = true;  // finished before we could race it
      break;
    }
    if (!a_started) ::usleep(10'000);
  }
  if (a_started && !a_done) {
    // B requests the same journal directory while A holds it: refused.
    EXPECT_EQ(run_cli("submit --socket " + daemon.socket_path() + " " +
                          campaign_flags(16) + " --journal " + dir,
                      dir + "/busy.txt"),
              1);
    EXPECT_NE(read_file(dir + "/busy.txt.err").find("in use"),
              std::string::npos);
  }
  // SIGTERM the daemon while A is (likely) in flight: the daemon shares its
  // stop flag with the campaign, so A winds down as interrupted-resumable
  // (exit 3) or completes (exit 0), and the daemon drains cleanly.
  const Subprocess::ExitStatus daemon_st = daemon.stop();
  EXPECT_FALSE(daemon_st.signaled);
  EXPECT_EQ(daemon_st.exit_code, 0);
  const Subprocess::ExitStatus a_st = proc_a.wait();
  EXPECT_FALSE(a_st.signaled);
  EXPECT_TRUE(a_st.exit_code == 0 || a_st.exit_code == 3)
      << "campaign A exit " << a_st.exit_code;
}

TEST(ServeCli, DaemonCrashRecoveryBitwiseIdentity) {
  const std::string base = fresh_dir("crash_base");
  const std::string served = fresh_dir("crash_served");
  const std::string state = fresh_dir("crash_state");
  const std::string flags = campaign_flags(60000);
  ASSERT_EQ(run_cli("evaluate " + flags + " --journal " + base +
                        " --metrics-out " + base + "/report.json",
                    base + "/out.txt"),
            0);
  auto daemon = std::make_unique<Daemon>("crash", /*max_campaigns=*/2,
                                         std::vector<std::string>{
                                             "--state-dir", state});
  Result<Subprocess> a = Subprocess::spawn(
      {FAV_CLI_PATH, "submit", "--socket", daemon->socket_path(),
       "--benchmark", "write", "--samples", "60000", "--seed", "2017",
       "--t-range", "20", "--shard-size", "16", "--journal", served,
       "--metrics-out", served + "/report.json"});
  ASSERT_TRUE(a.is_ok()) << a.status().to_string();
  Subprocess proc_a = std::move(a).value();
  bool a_done = false;
  const bool a_started = wait_for_shard(served, &proc_a, &a_done);
  ASSERT_TRUE(a_started || a_done) << "campaign never started";
  if (a_started) {
    // SIGKILL the daemon mid-campaign: no drain, no ledger finish record —
    // exactly the crash the recovery path exists for. The orphaned client
    // sees its stream die and fails.
    daemon->crash();
    const Subprocess::ExitStatus client_st = proc_a.wait();
    EXPECT_NE(client_st.exit_code, 0);
    fs::remove(served + "/report.json");
    // A fresh daemon on the same state dir replays the ledger, finds the
    // interrupted campaign, and re-runs it with --resume. The recovered
    // report and journal must be bitwise what an uninterrupted local run
    // produces.
    daemon = std::make_unique<Daemon>("crash", /*max_campaigns=*/2,
                                      std::vector<std::string>{
                                          "--state-dir", state});
    bool recovered = false;
    for (int i = 0; i < 12000 && !recovered; ++i) {
      recovered = fs::exists(served + "/report.json");
      if (!recovered) ::usleep(10'000);
    }
    ASSERT_TRUE(recovered) << "restarted daemon never re-ran the campaign";
  } else {
    proc_a.wait();
  }
  expect_reports_equivalent(base + "/report.json", served + "/report.json");
  expect_bitwise_equal_journals(base, "campaign.fj", served, "campaign.fj");
  const Subprocess::ExitStatus st = daemon->stop();
  EXPECT_FALSE(st.signaled);
  EXPECT_EQ(st.exit_code, 0);
}

TEST(ServeCli, ClientDisconnectFreesSlotAndLeavesResumableJournal) {
  const std::string dir = fresh_dir("disc");
  const std::string base = fresh_dir("disc_base");
  const std::string quick = fresh_dir("disc_quick");
  const std::string stats = fresh_dir("disc_stats") + "/stats.json";
  Daemon daemon("disc", /*max_campaigns=*/1,
                {"--stats-out", stats});
  Result<Subprocess> a = Subprocess::spawn(
      {FAV_CLI_PATH, "submit", "--socket", daemon.socket_path(),
       "--benchmark", "write", "--samples", "60000", "--seed", "2017",
       "--t-range", "20", "--shard-size", "16", "--journal", dir});
  ASSERT_TRUE(a.is_ok()) << a.status().to_string();
  Subprocess proc_a = std::move(a).value();
  bool a_done = false;
  const bool a_started = wait_for_shard(dir, &proc_a, &a_done);
  ASSERT_TRUE(a_started || a_done) << "campaign never started";
  if (a_started && !a_done) {
    // Kill the client outright: the daemon must notice the dead socket,
    // cancel the campaign, and free the lone slot.
    proc_a.kill(SIGKILL);
    proc_a.wait();
  } else {
    proc_a.wait();
  }
  // The next campaign gets the slot (queued briefly while the cancelled one
  // winds down). A wedged slot would hang this submit until the queue
  // timeout and fail the test.
  EXPECT_EQ(run_cli("submit --socket " + daemon.socket_path() + " " +
                        campaign_flags(16) + " --journal " + quick,
                    quick + "/out.txt"),
            0);
  const Subprocess::ExitStatus st = daemon.stop();
  EXPECT_FALSE(st.signaled);
  EXPECT_EQ(st.exit_code, 0);
  // Drain wrote the stats snapshot; the kill above is the one cancellation.
  const std::string snapshot = read_file(stats);
  EXPECT_NE(snapshot.find("\"fav.serve_stats.v1\""), std::string::npos);
  if (a_started && !a_done) {
    EXPECT_NE(snapshot.find("\"cancelled\": 1"), std::string::npos)
        << snapshot;
    // The cancelled campaign left a resumable journal: finishing it locally
    // must be bitwise-indistinguishable from never having been interrupted.
    ASSERT_EQ(run_cli("evaluate " + campaign_flags(60000) + " --journal " +
                          dir + " --resume --metrics-out " + dir +
                          "/report.json",
                      dir + "/resume.txt"),
              0);
    ASSERT_EQ(run_cli("evaluate " + campaign_flags(60000) + " --journal " +
                          base + " --metrics-out " + base + "/report.json",
                      base + "/out.txt"),
              0);
    expect_reports_equivalent(base + "/report.json", dir + "/report.json");
    expect_bitwise_equal_journals(base, "campaign.fj", dir, "campaign.fj");
  }
}

TEST(ServeCli, QueueOverflowBacksOffAndDeadlineFreesTheSlot) {
  const std::string dir = fresh_dir("deadline");
  const std::string retry = fresh_dir("deadline_retry");
  // One slot, no queue, and a server-side deadline: campaign A is stopped by
  // the daemon even though its client never cancels.
  Daemon daemon("deadline", /*max_campaigns=*/1,
                {"--max-queued", "0", "--campaign-deadline-ms", "2500"});
  Result<Subprocess> a = Subprocess::spawn(
      {FAV_CLI_PATH, "submit", "--socket", daemon.socket_path(),
       "--benchmark", "write", "--samples", "60000", "--seed", "2017",
       "--t-range", "20", "--shard-size", "16", "--journal", dir});
  ASSERT_TRUE(a.is_ok()) << a.status().to_string();
  Subprocess proc_a = std::move(a).value();
  bool a_done = false;
  const bool a_started = wait_for_shard(dir, &proc_a, &a_done);
  ASSERT_TRUE(a_started || a_done) << "campaign never started";
  if (a_started && !a_done) {
    Subprocess::ExitStatus st;
    if (!proc_a.try_wait(&st)) {
      // No retries: the kBusy turnaway surfaces as an immediate failure.
      // A can hit its deadline between the liveness check above and this
      // request, in which case the submit wins the freed slot instead —
      // both outcomes are correct; only a crash or hang is not.
      const int rc = run_cli("submit --socket " + daemon.socket_path() + " " +
                                 campaign_flags(16) + " --busy-retries 0",
                             retry + "/refused.txt");
      EXPECT_TRUE(rc == 0 || rc == 1) << "no-retry submit exit " << rc;
      if (rc == 1) {
        EXPECT_NE(read_file(retry + "/refused.txt.err").find("at capacity"),
                  std::string::npos);
      }
    }
  }
  // With backoff the same request eventually lands: the server deadline
  // stops A (exit 3, resumable) and the freed slot admits the retry. The
  // deadline is server-wide, so on a heavily loaded machine the retry
  // campaign itself can be deadline-stopped (exit 3) after admission —
  // what must never happen is staying busy until the retries run out.
  const int retry_rc =
      run_cli("submit --socket " + daemon.socket_path() + " " +
                  campaign_flags(16) + " --busy-retries 60" +
                  " --retry-backoff-ms 250",
              retry + "/ok.txt");
  EXPECT_TRUE(retry_rc == 0 || retry_rc == 3)
      << "backoff submit exit " << retry_rc << "\nstderr: "
      << read_file(retry + "/ok.txt.err");
  const Subprocess::ExitStatus a_st = proc_a.wait();
  EXPECT_FALSE(a_st.signaled);
  EXPECT_TRUE(a_st.exit_code == 0 || a_st.exit_code == 3)
      << "campaign A exit " << a_st.exit_code;
  const Subprocess::ExitStatus st = daemon.stop();
  EXPECT_FALSE(st.signaled);
  EXPECT_EQ(st.exit_code, 0);
}

}  // namespace
}  // namespace fav::mc
