// End-to-end CLI tests for the pre-characterization artifact cache and the
// degraded-I/O write path (ISSUE acceptance):
//   * cache-off, cold-write and warm-load campaigns are bitwise-identical,
//     single-process and supervised, and a corrupted artifact degrades to
//     recompute-and-rewrite — never a wrong answer,
//   * injected ENOSPC (--chaos-write-nth, forwarded to workers) stops a
//     campaign gracefully with exit code 3 and an "interrupted": true
//     report, quarantines nothing, and --resume completes to the
//     undisturbed result.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "mc/journal.h"
#include "mc/supervisor.h"

namespace fav::mc {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("fav_dio_cli_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

int run_cli(const std::string& args) {
  const std::string cmd =
      std::string(FAV_CLI_PATH) + " " + args + " > /dev/null 2>&1";
  const int rc = std::system(cmd.c_str());
  if (rc == -1 || !WIFEXITED(rc)) return -1;
  return WEXITSTATUS(rc);
}

std::string campaign_flags(std::size_t samples) {
  return "evaluate --benchmark write --samples " + std::to_string(samples) +
         " --seed 2017 --t-range 20 --shard-size 16";
}

std::string json_field(const std::string& file, const std::string& key) {
  std::ifstream in(file);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  // The run report mixes `"key": value` (report fields) and `"key":value`
  // (metrics counters); accept both spellings.
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return "<missing " + key + ">";
  std::size_t begin = at + needle.size();
  while (begin < text.size() && text[begin] == ' ') ++begin;
  std::size_t end = begin;
  while (end < text.size() && text[end] != ',' && text[end] != '\n' &&
         text[end] != '}') {
    ++end;
  }
  return text.substr(begin, end - begin);
}

void expect_bitwise_equal_journals(const std::string& dir_a,
                                   const std::string& pattern_a,
                                   const std::string& dir_b,
                                   const std::string& pattern_b) {
  Result<JournalContents> a = JournalReader::merge(dir_a, pattern_a);
  Result<JournalContents> b = JournalReader::merge(dir_b, pattern_b);
  ASSERT_TRUE(a.is_ok()) << a.status().to_string();
  ASSERT_TRUE(b.is_ok()) << b.status().to_string();
  ASSERT_EQ(a.value().records.size(), b.value().records.size());
  for (std::size_t i = 0; i < a.value().records.size(); ++i) {
    std::string image_a, image_b;
    serialize_record(a.value().records[i], image_a);
    serialize_record(b.value().records[i], image_b);
    ASSERT_EQ(image_a, image_b) << "record " << i << " diverges";
  }
}

// Cache off → cold write → warm load → corrupted artifact → supervised warm:
// the report must show the expected outcome at every step, and the estimate
// must never move.
TEST(PrecharacCacheCli, CacheNeverChangesTheAnswer) {
  const std::string off = fresh_dir("cache_off");
  const std::string cold = fresh_dir("cache_cold");
  const std::string warm = fresh_dir("cache_warm");
  const std::string corrupt = fresh_dir("cache_corrupt");
  const std::string sup = fresh_dir("cache_sup");
  const std::string artifact = off + "/precharac.fpa";
  const std::string flags = campaign_flags(120);

  ASSERT_EQ(run_cli(flags + " --journal " + off + " --metrics-out " + off +
                    "/report.json"),
            0);
  EXPECT_EQ(json_field(off + "/report.json", "enabled"), "false");
  const std::string ssf = json_field(off + "/report.json", "ssf");

  ASSERT_EQ(run_cli(flags + " --journal " + cold + " --precharac-cache " +
                    artifact + " --metrics-out " + cold + "/report.json"),
            0);
  EXPECT_EQ(json_field(cold + "/report.json", "outcome"), "\"miss\"");
  EXPECT_EQ(json_field(cold + "/report.json", "stored"), "true");
  EXPECT_EQ(json_field(cold + "/report.json", "ssf"), ssf);
  ASSERT_TRUE(fs::exists(artifact));

  ASSERT_EQ(run_cli(flags + " --journal " + warm + " --precharac-cache " +
                    artifact + " --metrics-out " + warm + "/report.json"),
            0);
  EXPECT_EQ(json_field(warm + "/report.json", "outcome"), "\"hit\"");
  EXPECT_EQ(json_field(warm + "/report.json", "stored"), "false");
  EXPECT_EQ(json_field(warm + "/report.json", "ssf"), ssf);

  // Flip one byte mid-file: the next run must detect, recompute, rewrite.
  {
    std::ifstream in(artifact, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    std::string bytes = ss.str();
    bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x20);
    std::ofstream out(artifact, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  ASSERT_EQ(run_cli(flags + " --journal " + corrupt + " --precharac-cache " +
                    artifact + " --metrics-out " + corrupt + "/report.json"),
            0);
  EXPECT_EQ(json_field(corrupt + "/report.json", "outcome"), "\"corrupt\"");
  EXPECT_EQ(json_field(corrupt + "/report.json", "stored"), "true");
  EXPECT_EQ(json_field(corrupt + "/report.json", "ssf"), ssf);

  // Supervised warm start: every worker loads the same artifact.
  ASSERT_EQ(run_cli(flags + " --journal " + sup + " --supervise 2" +
                    " --precharac-cache " + artifact + " --metrics-out " + sup +
                    "/report.json"),
            0);
  EXPECT_EQ(json_field(sup + "/report.json", "outcome"), "\"hit\"");
  EXPECT_EQ(json_field(sup + "/report.json", "ssf"), ssf);
  expect_bitwise_equal_journals(off, "campaign.fj", sup,
                                worker_journal_pattern());
}

TEST(DegradedIoCli, EnospcStopsSingleProcessCampaignResumably) {
  const std::string base = fresh_dir("enospc_base");
  const std::string dir = fresh_dir("enospc");
  const std::string flags = campaign_flags(120);
  ASSERT_EQ(run_cli(flags + " --journal " + base + " --metrics-out " + base +
                    "/report.json"),
            0);
  // Journal write 1 is the header, write k+1 is frame k: the second shard
  // hits the injected ENOSPC and the campaign stops gracefully.
  ASSERT_EQ(run_cli(flags + " --journal " + dir + " --chaos-write-nth 3" +
                    " --metrics-out " + dir + "/interrupted.json"),
            3);
  EXPECT_EQ(json_field(dir + "/interrupted.json", "interrupted"), "true");
  EXPECT_EQ(json_field(dir + "/interrupted.json", "evaluated"), "16");
  EXPECT_EQ(json_field(dir + "/interrupted.json", "journal.storage_full_stops"),
            "1");
  // Space restored: --resume completes to the undisturbed result.
  ASSERT_EQ(run_cli(flags + " --journal " + dir + " --resume --metrics-out " +
                    dir + "/report.json"),
            0);
  EXPECT_EQ(json_field(dir + "/report.json", "interrupted"), "false");
  EXPECT_EQ(json_field(dir + "/report.json", "ssf"),
            json_field(base + "/report.json", "ssf"));
  expect_bitwise_equal_journals(base, "campaign.fj", dir, "campaign.fj");
}

TEST(DegradedIoCli, WorkerEnospcStopsFleetWithoutQuarantine) {
  const std::string base = fresh_dir("wenospc_base");
  const std::string dir = fresh_dir("wenospc");
  const std::string flags = campaign_flags(120);
  ASSERT_EQ(run_cli(flags + " --journal " + base + " --metrics-out " + base +
                    "/report.json"),
            0);
  // The chaos flag is forwarded to every worker: each fails its first frame
  // write with ENOSPC, exits with the resumable-stop code, and the
  // supervisor stops the fleet without charging any shard an attempt.
  ASSERT_EQ(run_cli(flags + " --journal " + dir +
                    " --supervise 2 --chaos-write-nth 2" + " --metrics-out " +
                    dir + "/interrupted.json"),
            3);
  EXPECT_EQ(json_field(dir + "/interrupted.json", "interrupted"), "true");
  EXPECT_EQ(json_field(dir + "/interrupted.json", "quarantined_shards"), "0");
  EXPECT_EQ(json_field(dir + "/interrupted.json", "quarantined_samples"), "0");
  EXPECT_NE(json_field(dir + "/interrupted.json", "storage_full_stops"), "0");
  EXPECT_EQ(json_field(dir + "/interrupted.json", "restarts"), "0");
  // Resume without chaos: bitwise-identical to the single-process baseline.
  ASSERT_EQ(run_cli(flags + " --journal " + dir +
                    " --supervise 2 --resume --metrics-out " + dir +
                    "/report.json"),
            0);
  EXPECT_EQ(json_field(dir + "/report.json", "interrupted"), "false");
  EXPECT_EQ(json_field(dir + "/report.json", "ssf"),
            json_field(base + "/report.json", "ssf"));
  expect_bitwise_equal_journals(base, "campaign.fj", dir,
                                worker_journal_pattern());
}

}  // namespace
}  // namespace fav::mc
