// End-to-end tests for `fav evaluate --exhaustive`: full-coverage sweeps
// through the real CLI binary (FAV_CLI_PATH, injected by CMake). Covers the
// ISSUE acceptance criteria:
//   * an exhaustive voltage-glitch campaign is bitwise-identical between the
//     in-process engine and --supervise 2 worker fleets (journal records and
//     reported estimate alike),
//   * coverage == 1.0 is reported on stdout and in the run report,
//   * --space-limit caps the sweep and is usage-checked,
//   * the voltage-glitch technique runs end to end through the unified
//     pipeline (workers included).
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "mc/journal.h"
#include "mc/supervisor.h"

namespace fav::mc {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("fav_ex_cli_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

int run_cli(const std::string& args, std::string* stdout_text = nullptr) {
  const fs::path out = fs::path(::testing::TempDir()) / "fav_ex_cli_stdout";
  const std::string cmd = std::string(FAV_CLI_PATH) + " " + args + " > " +
                          out.string() + " 2> /dev/null";
  const int rc = std::system(cmd.c_str());
  if (stdout_text != nullptr) {
    std::ifstream in(out);
    std::stringstream ss;
    ss << in.rdbuf();
    *stdout_text = ss.str();
  }
  if (rc == -1 || !WIFEXITED(rc)) return -1;
  return WEXITSTATUS(rc);
}

std::string json_field(const std::string& file, const std::string& key) {
  std::ifstream in(file);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  const std::string needle = "\"" + key + "\": ";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return "<missing " + key + ">";
  std::size_t end = at + needle.size();
  while (end < text.size() && text[end] != ',' && text[end] != '\n' &&
         text[end] != '}') {
    ++end;
  }
  return text.substr(at + needle.size(), end - (at + needle.size()));
}

void expect_bitwise_equal_journals(const std::string& dir_a,
                                   const std::string& pattern_a,
                                   const std::string& dir_b,
                                   const std::string& pattern_b) {
  Result<JournalContents> a = JournalReader::merge(dir_a, pattern_a);
  Result<JournalContents> b = JournalReader::merge(dir_b, pattern_b);
  ASSERT_TRUE(a.is_ok()) << a.status().to_string();
  ASSERT_TRUE(b.is_ok()) << b.status().to_string();
  ASSERT_EQ(a.value().records.size(), b.value().records.size());
  for (std::size_t i = 0; i < a.value().records.size(); ++i) {
    std::string image_a, image_b;
    serialize_record(a.value().records[i], image_a);
    serialize_record(b.value().records[i], image_b);
    ASSERT_EQ(image_a, image_b) << "record " << i << " diverges";
  }
}

// Voltage-glitch sweep over a 12-cycle window x 4 default droop levels = 48
// enumeration points: small enough for worker fleets, large enough to span
// several shards.
const char* kExhaustiveFlags =
    "evaluate --technique voltage-glitch --exhaustive --t-range 12 "
    "--shard-size 8";

TEST(ExhaustiveCli, SupervisedSweepIsBitwiseIdenticalToInProcess) {
  const std::string base = fresh_dir("identity_base");
  const std::string sup = fresh_dir("identity_sup2");
  std::string base_stdout;
  ASSERT_EQ(run_cli(std::string(kExhaustiveFlags) + " --journal " + base +
                        " --metrics-out " + base + "/report.json",
                    &base_stdout),
            0);
  EXPECT_NE(base_stdout.find("strategy   : exhaustive (n=48"),
            std::string::npos)
      << base_stdout;
  EXPECT_NE(
      base_stdout.find("fault space: size 48, evaluated 48, coverage 1.0"),
      std::string::npos)
      << base_stdout;
  ASSERT_EQ(run_cli(std::string(kExhaustiveFlags) + " --journal " + sup +
                    " --supervise 2 --metrics-out " + sup + "/report.json"),
            0);
  EXPECT_EQ(json_field(sup + "/report.json", "ssf"),
            json_field(base + "/report.json", "ssf"));
  EXPECT_EQ(json_field(sup + "/report.json", "std_error"),
            json_field(base + "/report.json", "std_error"));
  EXPECT_EQ(json_field(sup + "/report.json", "coverage"), "1");
  EXPECT_EQ(json_field(base + "/report.json", "coverage"), "1");
  EXPECT_EQ(json_field(base + "/report.json", "mode"), "\"exhaustive\"");
  EXPECT_EQ(json_field(base + "/report.json", "fault_space"), "{\"size\": 48");
  expect_bitwise_equal_journals(base, "campaign.fj", sup,
                                worker_journal_pattern());
}

TEST(ExhaustiveCli, SpaceLimitCapsTheSweep) {
  const std::string dir = fresh_dir("space_limit");
  std::string text;
  ASSERT_EQ(run_cli(std::string(kExhaustiveFlags) + " --space-limit 5" +
                        " --metrics-out " + dir + "/report.json",
                    &text),
            0);
  EXPECT_NE(text.find("fault space: size 48, evaluated 5"),
            std::string::npos)
      << text;
  EXPECT_EQ(json_field(dir + "/report.json", "evaluated"), "5");
  EXPECT_EQ(json_field(dir + "/report.json", "samples"), "5");
}

TEST(ExhaustiveCli, UsageErrorsAreRejected) {
  // --space-limit without --exhaustive, and --exhaustive outside evaluate,
  // both exit 2 through the usage path.
  EXPECT_EQ(run_cli("evaluate --space-limit 5"), 2);
  EXPECT_EQ(run_cli("harden --exhaustive"), 2);
  EXPECT_EQ(run_cli("evaluate --technique microwave"), 2);
}

}  // namespace
}  // namespace fav::mc
