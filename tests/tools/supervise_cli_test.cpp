// End-to-end tests for `fav evaluate --supervise`: real fork/exec worker
// fleets driven through the installed CLI binary (FAV_CLI_PATH, injected by
// CMake). Covers the ISSUE acceptance criteria:
//   * bitwise-identical SSF + journal records vs the single-process engine
//     at worker counts {1, 4},
//   * chaos: a worker SIGKILLed mid-campaign changes nothing in the result,
//   * a deterministically-crashing sample is quarantined as WORKER_CRASHED
//     instead of wedging the campaign,
//   * the supervisor itself SIGKILLed mid-run is resumable with --resume,
//   * SIGINT flushes a partial interrupted run report (exit code 3) that
//     --resume completes to the undisturbed result.
//
// These tests spawn several framework elaborations each (~seconds); they are
// deliberately few and each asserts a full scenario.
#include <gtest/gtest.h>

#include <signal.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "mc/journal.h"
#include "mc/supervisor.h"
#include "util/subprocess.h"

namespace fav::mc {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("fav_cli_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

/// Runs the CLI synchronously via the shell; returns the process exit code.
int run_cli(const std::string& args) {
  const std::string cmd =
      std::string(FAV_CLI_PATH) + " " + args + " > /dev/null 2>&1";
  const int rc = std::system(cmd.c_str());
  if (rc == -1 || !WIFEXITED(rc)) return -1;
  return WEXITSTATUS(rc);
}

/// Common campaign flags: small but large enough that every outcome path is
/// exercised, with shards small enough for real supervisor scheduling.
std::string campaign_flags(std::size_t samples) {
  return "evaluate --benchmark write --samples " + std::to_string(samples) +
         " --seed 2017 --t-range 20 --shard-size 16";
}

/// Extracts the raw text of a scalar field from a run report ("key": value).
std::string json_field(const std::string& file, const std::string& key) {
  std::ifstream in(file);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  const std::string needle = "\"" + key + "\": ";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return "<missing " + key + ">";
  std::size_t end = at + needle.size();
  while (end < text.size() && text[end] != ',' && text[end] != '\n' &&
         text[end] != '}') {
    ++end;
  }
  return text.substr(at + needle.size(), end - (at + needle.size()));
}

/// Bitwise comparison of two merged journals through the serialized record
/// image — any drift in any field of any record fails.
void expect_bitwise_equal_journals(const std::string& dir_a,
                                   const std::string& pattern_a,
                                   const std::string& dir_b,
                                   const std::string& pattern_b) {
  Result<JournalContents> a = JournalReader::merge(dir_a, pattern_a);
  Result<JournalContents> b = JournalReader::merge(dir_b, pattern_b);
  ASSERT_TRUE(a.is_ok()) << a.status().to_string();
  ASSERT_TRUE(b.is_ok()) << b.status().to_string();
  ASSERT_EQ(a.value().records.size(), b.value().records.size());
  for (std::size_t i = 0; i < a.value().records.size(); ++i) {
    std::string image_a, image_b;
    serialize_record(a.value().records[i], image_a);
    serialize_record(b.value().records[i], image_b);
    ASSERT_EQ(image_a, image_b) << "record " << i << " diverges";
  }
}

/// Spawns the CLI detached, waits until the named journal file exceeds
/// `min_bytes`, then delivers `sig`. Returns the exit status.
Subprocess::ExitStatus kill_mid_campaign(const std::string& args,
                                         const fs::path& watched_file,
                                         std::uintmax_t min_bytes, int sig) {
  std::vector<std::string> argv = {FAV_CLI_PATH};
  std::istringstream split(args);
  std::string tok;
  while (split >> tok) argv.push_back(tok);
  Result<Subprocess> spawned = Subprocess::spawn(argv);
  EXPECT_TRUE(spawned.is_ok()) << spawned.status().to_string();
  Subprocess proc = std::move(spawned).value();
  // Wait for real campaign progress; give elaboration generous time.
  for (int i = 0; i < 12000; ++i) {
    std::error_code ec;
    const std::uintmax_t size = fs::file_size(watched_file, ec);
    if (!ec && size > min_bytes) break;
    Subprocess::ExitStatus st;
    if (proc.try_wait(&st)) return st;  // finished before we could kill it
    ::usleep(10'000);
  }
  proc.kill(sig);
  return proc.wait();
}

TEST(SuperviseCli, BitwiseIdenticalAcrossWorkerCounts) {
  const std::string base = fresh_dir("identity_base");
  const std::string sup1 = fresh_dir("identity_w1");
  const std::string sup4 = fresh_dir("identity_w4");
  const std::string flags = campaign_flags(120);
  ASSERT_EQ(run_cli(flags + " --journal " + base + " --metrics-out " + base +
                    "/report.json"),
            0);
  ASSERT_EQ(run_cli(flags + " --journal " + sup1 + " --supervise 1" +
                    " --metrics-out " + sup1 + "/report.json"),
            0);
  ASSERT_EQ(run_cli(flags + " --journal " + sup4 + " --supervise 4" +
                    " --metrics-out " + sup4 + "/report.json"),
            0);
  const std::string ssf = json_field(base + "/report.json", "ssf");
  EXPECT_EQ(json_field(sup1 + "/report.json", "ssf"), ssf);
  EXPECT_EQ(json_field(sup4 + "/report.json", "ssf"), ssf);
  EXPECT_EQ(json_field(sup4 + "/report.json", "std_error"),
            json_field(base + "/report.json", "std_error"));
  expect_bitwise_equal_journals(base, "campaign.fj", sup1,
                                worker_journal_pattern());
  expect_bitwise_equal_journals(base, "campaign.fj", sup4,
                                worker_journal_pattern());
}

TEST(SuperviseCli, WorkerCrashMidCampaignChangesNothing) {
  const std::string base = fresh_dir("chaos_base");
  const std::string chaos = fresh_dir("chaos_sup");
  // Large enough that worker 0 is guaranteed a shard before the campaign
  // drains (workers elaborate concurrently but evaluation takes seconds).
  const std::string flags = campaign_flags(20000);
  ASSERT_EQ(run_cli(flags + " --journal " + base + " --metrics-out " + base +
                    "/report.json"),
            0);
  // Worker 0 SIGKILLs itself mid-shard after 7 samples (first incarnation
  // only); the watchdog restarts it and the campaign ends with the
  // undisturbed result.
  ASSERT_EQ(run_cli(flags + " --journal " + chaos +
                    " --supervise 2 --crash-after-samples 7" +
                    " --metrics-out " + chaos + "/report.json"),
            0);
  EXPECT_EQ(json_field(chaos + "/report.json", "ssf"),
            json_field(base + "/report.json", "ssf"));
  EXPECT_EQ(json_field(chaos + "/report.json", "interrupted"), "false");
  const std::string restarts = json_field(chaos + "/report.json", "restarts");
  EXPECT_NE(restarts, "0") << "expected at least one watchdog restart";
  expect_bitwise_equal_journals(base, "campaign.fj", chaos,
                                worker_journal_pattern());
}

TEST(SuperviseCli, DeterministicCrashIsQuarantined) {
  const std::string dir = fresh_dir("quarantine");
  const std::string flags = campaign_flags(120);
  // Sample 40 kills every worker that touches it, on every attempt; its
  // shard must be written off as WORKER_CRASHED instead of looping forever.
  ASSERT_EQ(run_cli(flags + " --journal " + dir +
                    " --supervise 2 --crash-on-sample-index 40" +
                    " --metrics-out " + dir + "/report.json"),
            0);
  EXPECT_EQ(json_field(dir + "/report.json", "quarantined_shards"), "1");
  EXPECT_EQ(json_field(dir + "/report.json", "quarantined_samples"), "16");
  EXPECT_EQ(json_field(dir + "/report.json", "interrupted"), "false");
  const std::string counts = json_field(dir + "/report.json", "WORKER_CRASHED");
  EXPECT_EQ(counts, "16") << "quarantined samples must surface as "
                             "WORKER_CRASHED failure counts";
}

TEST(SuperviseCli, DeadWorkerIsDetectedByEofNotHeartbeat) {
  const std::string base = fresh_dir("eof_base");
  const std::string dir = fresh_dir("eof_sup");
  const std::string flags = campaign_flags(20000);
  ASSERT_EQ(run_cli(flags + " --journal " + base + " --metrics-out " + base +
                    "/report.json"),
            0);
  // Worker 0 SIGKILLs itself mid-shard with the heartbeat deadline pushed
  // far beyond this test's own ctest timeout (600 s > 300 s). The campaign
  // can only finish in time if the supervisor notices the death through
  // pipe EOF — with O_CLOEXEC pipes no sibling worker holds a duplicate of
  // the dead worker's pipe ends, so the EOF is immediate.
  ASSERT_EQ(run_cli(flags + " --journal " + dir +
                    " --supervise 2 --crash-after-samples 7" +
                    " --heartbeat-ms 600000" + " --metrics-out " + dir +
                    "/report.json"),
            0);
  EXPECT_EQ(json_field(dir + "/report.json", "ssf"),
            json_field(base + "/report.json", "ssf"));
  EXPECT_NE(json_field(dir + "/report.json", "restarts"), "0")
      << "the dead worker must have been detected and respawned";
  expect_bitwise_equal_journals(base, "campaign.fj", dir,
                                worker_journal_pattern());
}

TEST(SuperviseCli, SupervisorSigkillIsResumable) {
  const std::string base = fresh_dir("supkill_base");
  const std::string dir = fresh_dir("supkill");
  // Large enough that evaluation outlives the kill window.
  const std::string flags = campaign_flags(20000);
  ASSERT_EQ(run_cli(flags + " --journal " + base + " --metrics-out " + base +
                    "/report.json"),
            0);
  const Subprocess::ExitStatus st = kill_mid_campaign(
      flags + " --journal " + dir + " --supervise 2",
      fs::path(dir) / worker_journal_file(0), 4096, SIGKILL);
  // Either we killed it mid-run (the interesting case) or the machine was so
  // fast the campaign finished — both must leave a resumable journal.
  if (st.signaled) {
    EXPECT_EQ(st.term_signal, SIGKILL);
  }
  ASSERT_EQ(run_cli(flags + " --journal " + dir +
                    " --supervise 4 --resume --metrics-out " + dir +
                    "/report.json"),
            0);
  EXPECT_EQ(json_field(dir + "/report.json", "ssf"),
            json_field(base + "/report.json", "ssf"));
  expect_bitwise_equal_journals(base, "campaign.fj", dir,
                                worker_journal_pattern());
}

TEST(SuperviseCli, SigintFlushesInterruptedReportAndResumes) {
  const std::string base = fresh_dir("sigint_base");
  const std::string dir = fresh_dir("sigint");
  const std::string flags = campaign_flags(20000);
  ASSERT_EQ(run_cli(flags + " --journal " + base + " --metrics-out " + base +
                    "/report.json"),
            0);
  const Subprocess::ExitStatus st = kill_mid_campaign(
      flags + " --journal " + dir + " --metrics-out " + dir +
          "/interrupted.json",
      fs::path(dir) / "campaign.fj", 4096, SIGINT);
  if (!st.signaled && st.exit_code == 3) {
    // Graceful stop: partial report flushed and marked interrupted.
    EXPECT_EQ(json_field(dir + "/interrupted.json", "interrupted"), "true");
    EXPECT_NE(json_field(dir + "/interrupted.json", "evaluated"),
              std::to_string(20000));
  } else {
    // The campaign finished before the signal landed; nothing to assert
    // beyond a clean exit.
    EXPECT_FALSE(st.signaled);
    EXPECT_EQ(st.exit_code, 0);
  }
  ASSERT_EQ(run_cli(flags + " --journal " + dir + " --resume --metrics-out " +
                    dir + "/report.json"),
            0);
  EXPECT_EQ(json_field(dir + "/report.json", "ssf"),
            json_field(base + "/report.json", "ssf"));
  EXPECT_EQ(json_field(dir + "/report.json", "interrupted"), "false");
}

}  // namespace
}  // namespace fav::mc
