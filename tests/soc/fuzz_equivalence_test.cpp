// Randomized RTL/gate-level lock-step equivalence: generated programs that
// exercise loads, stores, branches, MPU (re)configuration, the instruction
// check, and the DMA engine with pseudo-random operands. Any divergence
// between the behavioural model and the elaborated netlist fails loudly
// with the cycle number.
#include <gtest/gtest.h>

#include <sstream>

#include "rtl/assembler.h"
#include "soc/benchmark.h"
#include "soc/gate_machine.h"
#include "util/rng.h"

namespace fav::soc {
namespace {

const SocNetlist& soc() {
  static const SocNetlist instance;
  return instance;
}

// Generates an architecturally-safe random program: arbitrary register
// arithmetic, loads/stores through r6 (kept inside open RAM), occasional
// MPU region/device pokes, short forward branches, and DMA bursts.
rtl::Program random_program(std::uint64_t seed) {
  Rng rng(seed);
  std::ostringstream os;
  // Open up region 0 for all data and exec (so the instruction check, if
  // randomly enabled, cannot brick the run).
  os << "li r1, 0xFF00\n"
        "li r2, 0x0000\n"
        "sw r2, r1, 0\n"
        "li r2, 0x3FFF\n"
        "sw r2, r1, 1\n"
        "li r2, 15\n"   // read | write | enable | exec
        "sw r2, r1, 2\n"
        "li r6, 0x0100\n";
  const int blocks = 24;
  for (int i = 0; i < blocks; ++i) {
    switch (rng.uniform_below(7)) {
      case 0: {  // ALU soup
        const char* ops[] = {"add", "sub", "and", "or", "xor", "shl", "shr"};
        for (int k = 0; k < 4; ++k) {
          os << ops[rng.uniform_below(7)] << " r" << rng.uniform_below(6) + 2
             << ", r" << rng.uniform_below(8) << ", r" << rng.uniform_below(8)
             << "\n";
        }
        break;
      }
      case 1:  // memory traffic in open RAM
        os << "sw r" << rng.uniform_below(8) << ", r6, "
           << rng.uniform_below(16) << "\n";
        os << "lw r" << rng.uniform_below(6) + 2 << ", r6, "
           << rng.uniform_below(16) << "\n";
        break;
      case 2:  // forward branch over one instruction
        os << "beq r" << rng.uniform_below(8) << ", r" << rng.uniform_below(8)
           << ", 2\n";
        os << "addi r2, r2, 1\n";
        break;
      case 3:  // MPU control pokes (enable/instr-check toggles)
        os << "li r1, 0xFF22\n"
           << "li r2, " << rng.uniform_below(4) << "\n"
           << "sw r2, r1, 0\n";
        break;
      case 4:  // reconfigure a spare region
        os << "li r1, " << (0xFF08 + 8 * rng.uniform_below(3)) << "\n"
           << "li r2, " << rng.uniform_below(0x4000) << "\n"
           << "sw r2, r1, " << rng.uniform_below(3) << "\n";
        break;
      case 5:  // DMA burst inside open RAM
        os << "li r1, 0xFF30\n"
           << "li r2, " << (0x0100 + rng.uniform_below(32)) << "\n"
           << "sw r2, r1, 0\n"
           << "li r2, " << (0x0200 + rng.uniform_below(32)) << "\n"
           << "sw r2, r1, 1\n"
           << "li r2, " << (1 + rng.uniform_below(5)) << "\n"
           << "sw r2, r1, 2\n"
           << "li r2, 1\n"
           << "sw r2, r1, 3\n";
        break;
      case 6:  // status reads
        os << "li r1, " << (0xFF20 + rng.uniform_below(4) * 0x10 / 16) << "\n"
           << "lw r" << rng.uniform_below(6) + 2 << ", r1, "
           << rng.uniform_below(2) << "\n";
        break;
    }
  }
  os << "halt\n";
  return rtl::assemble(os.str());
}

class FuzzEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzEquivalence, LockstepOnRandomProgram) {
  const rtl::Program prog = random_program(GetParam());
  rtl::Machine beh(prog);
  GateLevelMachine gate(soc(), prog);
  const auto& map = SocNetlist::reg_map();
  for (int c = 0; c < 600; ++c) {
    if (beh.halted()) break;
    const auto bi = beh.step();
    const auto gi = gate.step();
    ASSERT_EQ(bi.mpu_viol, gi.mpu_viol) << "seed " << GetParam()
                                        << " cycle " << c;
    const auto bs = map.pack(beh.state());
    const auto gs = map.pack(gate.extract_state());
    if (bs != gs) {
      for (const std::size_t bit : (bs ^ gs).set_bits()) {
        const auto [fi, fb] = map.locate(static_cast<int>(bit));
        ADD_FAILURE() << "seed " << GetParam() << " cycle " << c
                      << ": mismatch in " << map.field(fi).name << "[" << fb
                      << "]";
      }
      FAIL() << "diverged (instr: " << rtl::disassemble(bi.instr) << ")";
    }
  }
  EXPECT_TRUE(beh.ram() == gate.ram()) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzEquivalence,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12, 13, 14, 15, 16));

}  // namespace
}  // namespace fav::soc
