// Illegal-execution benchmark + RTL/gate equivalence of the instruction
// access check.
#include <gtest/gtest.h>

#include "rtl/golden.h"
#include "soc/benchmark.h"
#include "soc/gate_machine.h"

namespace fav::soc {
namespace {

const SocNetlist& soc() {
  static const SocNetlist instance;
  return instance;
}

TEST(ExecBenchmark, BaselineIsBlocked) {
  const SecurityBenchmark b = make_illegal_exec_benchmark();
  rtl::Machine m(b.program);
  m.run(b.max_cycles);
  EXPECT_TRUE(m.halted());  // NOP-slide lands on the granted epilogue
  EXPECT_EQ(m.ram().read(b.protected_addr), 0);  // token never planted
  EXPECT_TRUE(m.state().viol_sticky);
  EXPECT_EQ(m.state().viol_addr, b.program.label("hidden"));
  EXPECT_FALSE(b.attack_succeeded(m.state(), m.ram()));
}

TEST(ExecBenchmark, GoldenRunLocatesTargetCycle) {
  const SecurityBenchmark b = make_illegal_exec_benchmark();
  rtl::GoldenRun golden(b.program, b.max_cycles);
  const auto tt = golden.first_violation_cycle();
  ASSERT_TRUE(tt.has_value());
  EXPECT_GE(*tt, 50u);  // attack window before the illegal jump
  EXPECT_EQ(golden.pc_at(*tt), b.program.label("hidden"));
}

TEST(ExecBenchmark, DisablingInstrCheckEnablesAttack) {
  const SecurityBenchmark b = make_illegal_exec_benchmark();
  rtl::Machine m(b.program);
  for (int c = 0; c < 60; ++c) m.step();
  m.mutable_state().instr_check = false;  // the single-bit fault
  m.run(b.max_cycles);
  EXPECT_TRUE(b.attack_succeeded(m.state(), m.ram()))
      << "token=" << m.ram().read(b.protected_addr)
      << " viol=" << m.state().viol_sticky;
  EXPECT_EQ(m.ram().read(b.protected_addr), b.attack_value);
}

TEST(ExecBenchmark, GrantingExecOnDataRegionEnablesAttack) {
  const SecurityBenchmark b = make_illegal_exec_benchmark();
  rtl::Machine m(b.program);
  for (int c = 0; c < 60; ++c) m.step();
  m.mutable_state().mpu[0].perm |= rtl::kPermExec;  // region 0 covers hidden
  m.run(b.max_cycles);
  EXPECT_TRUE(b.attack_succeeded(m.state(), m.ram()));
}

TEST(ExecBenchmark, AttackPathDescribesHiddenRoutine) {
  const SecurityBenchmark b = make_illegal_exec_benchmark();
  ASSERT_FALSE(b.attack_path.empty());
  EXPECT_TRUE(b.attack_path.front().is_fetch);
  EXPECT_EQ(b.attack_path.front().addr, b.program.label("hidden"));
  // Exactly one data access: the token store.
  int stores = 0;
  for (const auto& p : b.attack_path) {
    if (!p.is_fetch) {
      ++stores;
      EXPECT_TRUE(p.is_write);
      EXPECT_EQ(p.addr, b.protected_addr);
    }
  }
  EXPECT_EQ(stores, 1);
}

TEST(ExecBenchmark, GateLevelLockstep) {
  const SecurityBenchmark b = make_illegal_exec_benchmark();
  rtl::Machine beh(b.program);
  GateLevelMachine gate(soc(), b.program);
  const auto& map = SocNetlist::reg_map();
  for (std::uint64_t c = 0; c < b.max_cycles && !beh.halted(); ++c) {
    const auto bi = beh.step();
    const auto gi = gate.step();
    ASSERT_EQ(bi.mpu_viol, gi.mpu_viol) << "cycle " << c;
    ASSERT_EQ(map.pack(beh.state()), map.pack(gate.extract_state()))
        << "state diverged at cycle " << c;
  }
  EXPECT_TRUE(beh.ram() == gate.ram());
}

TEST(ExecBenchmark, GateLevelLockstepUnderFault) {
  // Inject the instr_check-off fault into BOTH levels mid-run and verify
  // they agree on the successful attack trajectory (the hidden routine).
  const SecurityBenchmark b = make_illegal_exec_benchmark();
  rtl::Machine beh(b.program);
  GateLevelMachine gate(soc(), b.program);
  for (int c = 0; c < 60; ++c) {
    beh.step();
    gate.step();
  }
  beh.mutable_state().instr_check = false;
  gate.load_state(beh.state());
  const auto& map = SocNetlist::reg_map();
  for (std::uint64_t c = 60; c < b.max_cycles && !beh.halted(); ++c) {
    beh.step();
    gate.step();
    ASSERT_EQ(map.pack(beh.state()), map.pack(gate.extract_state()))
        << "cycle " << c;
  }
  EXPECT_TRUE(b.attack_succeeded(beh.state(), beh.ram()));
  EXPECT_TRUE(b.attack_succeeded(gate.extract_state(), gate.ram()));
}

}  // namespace
}  // namespace fav::soc
