// Lock-step equivalence between the behavioural RTL model and the gate-level
// netlist — the invariant the whole cross-level flow rests on.
#include <gtest/gtest.h>

#include "rtl/assembler.h"
#include "rtl/golden.h"
#include "soc/benchmark.h"
#include "soc/gate_machine.h"
#include "soc/soc_netlist.h"
#include "util/rng.h"

namespace fav::soc {
namespace {

const SocNetlist& soc() {
  static const SocNetlist instance;
  return instance;
}

// Runs both levels in lock-step for up to `cycles`, comparing every
// architectural register after every cycle.
void expect_lockstep(const rtl::Program& prog, std::uint64_t cycles) {
  rtl::Machine beh(prog);
  GateLevelMachine gate(soc(), prog);
  const auto& map = SocNetlist::reg_map();
  for (std::uint64_t c = 0; c < cycles; ++c) {
    if (beh.halted()) break;
    const rtl::StepInfo bi = beh.step();
    const rtl::StepInfo gi = gate.step();
    EXPECT_EQ(bi.mpu_viol, gi.mpu_viol) << "viol wire @ cycle " << c;
    const auto bs = map.pack(beh.state());
    const auto gs = map.pack(gate.extract_state());
    if (bs != gs) {
      const auto diff = bs ^ gs;
      for (std::size_t bit : diff.set_bits()) {
        const auto [fi, fb] = map.locate(static_cast<int>(bit));
        ADD_FAILURE() << "cycle " << c << ": mismatch in "
                      << map.field(fi).name << " bit " << fb;
      }
      FAIL() << "state diverged at cycle " << c << " (instr: "
             << rtl::disassemble(bi.instr) << ")";
    }
  }
  EXPECT_EQ(beh.halted(), gate.halted());
  EXPECT_TRUE(beh.ram() == gate.ram()) << "final RAM differs";
}

TEST(Equivalence, AluProgram) {
  expect_lockstep(rtl::assemble(R"(
    li r1, 0xDEAD
    li r2, 0x0101
    add r3, r1, r2
    sub r4, r1, r2
    and r5, r1, r2
    or  r6, r1, r2
    xor r7, r1, r2
    addi r1, r1, -17
    mov r2, r7
    addi r3, r0, 3
    shl r5, r1, r3
    shr r6, r1, r3
    halt
  )"), 100);
}

TEST(Equivalence, BranchesAndLoops) {
  expect_lockstep(rtl::assemble(R"(
    addi r1, r0, 7
    addi r2, r0, 0
  loop:
    add r2, r2, r1
    addi r1, r1, -1
    beq r1, r0, done
    jmp loop
  done:
    bne r2, r0, really
    addi r3, r0, 9
  really:
    halt
  )"), 200);
}

TEST(Equivalence, MemoryTraffic) {
  expect_lockstep(rtl::assemble(R"(
    .data 0x0150 0xFACE
    li r1, 0x0150
    lw r2, r1, 0
    sw r2, r1, 1
    lw r3, r1, 1
    addi r4, r1, 16
    sw r3, r4, -3
    lw r5, r4, -3
    halt
  )"), 100);
}

TEST(Equivalence, MpuConfigurationAndViolation) {
  expect_lockstep(rtl::assemble(R"(
    li r1, 0xFF00
    li r2, 0x0000
    sw r2, r1, 0
    li r2, 0x3FFF
    sw r2, r1, 1
    li r2, 7
    sw r2, r1, 2
    li r1, 0xFF22
    li r2, 1
    sw r2, r1, 0
    ; legal access
    li r6, 0x0100
    sw r2, r6, 0
    ; violation: uncovered address
    li r1, 0x9000
    lw r3, r1, 0
    ; second violation: viol_addr must not move
    li r1, 0xA000
    sw r3, r1, 0
    ; device reads of status
    li r1, 0xFF20
    lw r4, r1, 0
    li r1, 0xFF21
    lw r5, r1, 0
    ; clear sticky
    li r1, 0xFF20
    sw r0, r1, 0
    lw r7, r1, 0
    halt
  )"), 200);
}

TEST(Equivalence, DeviceReadbackAllRegions) {
  std::string src;
  // Program every region with distinct values, then read everything back.
  for (int k = 0; k < 4; ++k) {
    const int base = 0xFF00 + 8 * k;
    src += "li r1, " + std::to_string(base) + "\n";
    src += "li r2, " + std::to_string(0x1000 * (k + 1)) + "\n";
    src += "sw r2, r1, 0\n";
    src += "li r2, " + std::to_string(0x1000 * (k + 1) + 0xFF) + "\n";
    src += "sw r2, r1, 1\n";
    src += "li r2, " + std::to_string(k % 8) + "\n";
    src += "sw r2, r1, 2\n";
    src += "lw r3, r1, 0\nlw r4, r1, 1\nlw r5, r1, 2\nlw r6, r1, 3\n";
  }
  src += "halt\n";
  expect_lockstep(rtl::assemble(src), 400);
}

TEST(Equivalence, HaltFreezesEverything) {
  const rtl::Program prog = rtl::assemble(R"(
    addi r1, r0, 5
    halt
    addi r1, r0, 9
  )");
  rtl::Machine beh(prog);
  GateLevelMachine gate(soc(), prog);
  for (int c = 0; c < 10; ++c) {
    beh.step();
    gate.step();
  }
  EXPECT_TRUE(gate.halted());
  EXPECT_EQ(SocNetlist::reg_map().pack(beh.state()),
            SocNetlist::reg_map().pack(gate.extract_state()));
}

TEST(Equivalence, SecurityBenchmarksFullRun) {
  for (const auto& bench :
       {make_illegal_write_benchmark(), make_illegal_read_benchmark()}) {
    SCOPED_TRACE(bench.name);
    expect_lockstep(bench.program, bench.max_cycles);
  }
}

TEST(Equivalence, SyntheticWorkloadFullRun) {
  expect_lockstep(make_synthetic_workload(), 400);
}

TEST(Equivalence, StateHandoffMidRun) {
  // RTL -> gate -> RTL round trip mid-execution must be lossless.
  const SecurityBenchmark bench = make_illegal_write_benchmark();
  rtl::Machine beh(bench.program);
  for (int c = 0; c < 30; ++c) beh.step();

  GateLevelMachine gate(soc(), bench.program);
  gate.load_state(beh.state());
  gate.mutable_ram() = beh.ram();
  EXPECT_EQ(gate.extract_state(), beh.state());

  // Continue both for 20 cycles; still identical.
  for (int c = 0; c < 20; ++c) {
    beh.step();
    gate.step();
  }
  EXPECT_EQ(gate.extract_state(), beh.state());
  EXPECT_TRUE(gate.ram() == beh.ram());
}

TEST(Equivalence, RandomInstructionSoup) {
  // Pseudo-random but architecturally safe instruction stream: ALU and
  // branch-free ops only, exercising decode corners.
  std::string src;
  fav::Rng rng(77);
  for (int i = 0; i < 120; ++i) {
    const char* ops[] = {"add", "sub", "and", "or", "xor", "shl", "shr"};
    src += std::string(ops[rng.uniform_below(7)]) + " r" +
           std::to_string(rng.uniform_below(8)) + ", r" +
           std::to_string(rng.uniform_below(8)) + ", r" +
           std::to_string(rng.uniform_below(8)) + "\n";
    if (i % 7 == 0) {
      src += "addi r" + std::to_string(rng.uniform_below(8)) + ", r" +
             std::to_string(rng.uniform_below(8)) + ", " +
             std::to_string(static_cast<int>(rng.uniform_below(63)) - 32) +
             "\n";
    }
  }
  src += "halt\n";
  expect_lockstep(rtl::assemble(src), 300);
}

}  // namespace
}  // namespace fav::soc
