#include "soc/benchmark.h"

#include <gtest/gtest.h>

#include "rtl/golden.h"

namespace fav::soc {
namespace {

TEST(Benchmark, IllegalWriteBaselineIsBlocked) {
  const SecurityBenchmark b = make_illegal_write_benchmark();
  rtl::Machine m(b.program);
  m.run(b.max_cycles);
  EXPECT_TRUE(m.halted());
  // Fault-free: the write is squashed and the violation recorded.
  EXPECT_EQ(m.ram().read(b.protected_addr), b.protected_init);
  EXPECT_TRUE(m.state().viol_sticky);
  EXPECT_EQ(m.state().viol_addr, b.protected_addr);
  EXPECT_FALSE(b.attack_succeeded(m.state(), m.ram()));
}

TEST(Benchmark, IllegalReadBaselineIsBlocked) {
  const SecurityBenchmark b = make_illegal_read_benchmark();
  rtl::Machine m(b.program);
  m.run(b.max_cycles);
  EXPECT_TRUE(m.halted());
  EXPECT_EQ(m.ram().read(b.exfil_addr), 0);  // squashed load leaked nothing
  EXPECT_TRUE(m.state().viol_sticky);
  EXPECT_FALSE(b.attack_succeeded(m.state(), m.ram()));
}

TEST(Benchmark, GoldenRunLocatesTargetCycle) {
  for (const auto& b :
       {make_illegal_write_benchmark(), make_illegal_read_benchmark()}) {
    SCOPED_TRACE(b.name);
    rtl::GoldenRun golden(b.program, b.max_cycles);
    const auto tt = golden.first_violation_cycle();
    ASSERT_TRUE(tt.has_value());
    // Tt must leave a healthy attack window (>= 50 cycles for the paper's
    // t range) and happen before the end.
    EXPECT_GE(*tt, 50u);
    EXPECT_LT(*tt, golden.length());
  }
}

TEST(Benchmark, OracleDetectsSuccessfulWrite) {
  const SecurityBenchmark b = make_illegal_write_benchmark();
  // Forge the attacker's dream outcome by hand.
  rtl::ArchState s;
  rtl::Memory ram;
  ram.write(b.protected_addr, b.attack_value);
  EXPECT_TRUE(b.attack_succeeded(s, ram));
  s.viol_sticky = true;  // ... unless detected
  EXPECT_FALSE(b.attack_succeeded(s, ram));
}

TEST(Benchmark, OracleDetectsSuccessfulRead) {
  const SecurityBenchmark b = make_illegal_read_benchmark();
  rtl::ArchState s;
  rtl::Memory ram;
  ram.write(b.exfil_addr, b.secret_value);
  EXPECT_TRUE(b.attack_succeeded(s, ram));
  s.viol_sticky = true;
  EXPECT_FALSE(b.attack_succeeded(s, ram));
}

TEST(Benchmark, AttackSucceedsIfMpuConfigCorrupted) {
  // Flipping the write-permission bit of region 1 before Tt lets the illegal
  // write through undetected — the canonical memory-type-register attack.
  const SecurityBenchmark b = make_illegal_write_benchmark();
  rtl::Machine m(b.program);
  for (int c = 0; c < 60; ++c) m.step();  // after MPU setup, before Tt
  m.mutable_state().mpu[1].perm |= rtl::kPermWrite;
  m.run(b.max_cycles);
  EXPECT_TRUE(b.attack_succeeded(m.state(), m.ram()))
      << "viol=" << m.state().viol_sticky
      << " mem=" << m.ram().read(b.protected_addr);
}

TEST(Benchmark, AttackSucceedsIfMpuDisabled) {
  const SecurityBenchmark b = make_illegal_read_benchmark();
  rtl::Machine m(b.program);
  for (int c = 0; c < 60; ++c) m.step();
  m.mutable_state().mpu_enable = false;
  m.run(b.max_cycles);
  EXPECT_TRUE(b.attack_succeeded(m.state(), m.ram()));
}

TEST(Benchmark, SyntheticWorkloadExercisesRespondingSignal) {
  // The pre-characterization workload must make the MPU violation wire fire
  // repeatedly (switching signatures need activity on the responding signal)
  // while keeping the rest of the run legitimate.
  const rtl::Program p = make_synthetic_workload();
  rtl::Machine m(p);
  int viols = 0;
  while (!m.halted() && m.cycle() < 1000) {
    if (m.step().mpu_viol) ++viols;
  }
  EXPECT_TRUE(m.halted());
  EXPECT_GE(viols, 10);               // one denied probe per loop iteration
  EXPECT_TRUE(m.state().viol_sticky);  // probes are (correctly) recorded
  EXPECT_TRUE(m.state().mpu_enable);
}

}  // namespace
}  // namespace fav::soc
