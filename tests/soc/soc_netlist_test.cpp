#include "soc/soc_netlist.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace fav::soc {
namespace {

// Elaboration is deterministic but not free; share one instance.
const SocNetlist& soc() {
  static const SocNetlist instance;
  return instance;
}

TEST(SocNetlist, ValidatesAndHasExpectedShape) {
  const auto& nl = soc().netlist();
  EXPECT_EQ(nl.dffs().size(), 357u);
  EXPECT_EQ(nl.inputs().size(), 32u);  // instr + mem_rdata
  EXPECT_GT(nl.gate_count(), 2000u);   // a real netlist, not a stub
  EXPECT_NO_THROW(nl.validate());
}

TEST(SocNetlist, DffBindingIsBijective) {
  const auto& map = SocNetlist::reg_map();
  for (int bit = 0; bit < map.total_bits(); ++bit) {
    const auto dff = soc().dff_for_bit(bit);
    EXPECT_TRUE(soc().netlist().is_dff(dff));
    EXPECT_EQ(soc().flat_bit_for_dff(dff), bit);
  }
  EXPECT_THROW(soc().dff_for_bit(-1), fav::CheckError);
  EXPECT_THROW(soc().dff_for_bit(map.total_bits()), fav::CheckError);
}

TEST(SocNetlist, NonDffMapsToMinusOne) {
  // The responding signal is a gate, not a DFF.
  EXPECT_EQ(soc().flat_bit_for_dff(soc().ports().mpu_viol), -1);
}

TEST(SocNetlist, DffNamesFollowRegisterMap) {
  const auto& map = SocNetlist::reg_map();
  const auto& nl = soc().netlist();
  EXPECT_EQ(nl.node(soc().dff_for_bit(0)).name, "pc[0]");
  const int sticky = map.field(map.field_index("viol_sticky")).offset;
  EXPECT_EQ(nl.node(soc().dff_for_bit(sticky)).name, "viol_sticky[0]");
}

TEST(SocNetlist, RespondingSignalIsNamed) {
  const auto& nl = soc().netlist();
  EXPECT_EQ(nl.find_or_throw("mpu_viol"), soc().ports().mpu_viol);
}

TEST(SocNetlist, PortsAreValidNodes) {
  const auto& nl = soc().netlist();
  const auto& p = soc().ports();
  EXPECT_EQ(p.instr.size(), 16u);
  EXPECT_EQ(p.mem_rdata.size(), 16u);
  EXPECT_EQ(p.pc.size(), 16u);
  EXPECT_EQ(p.mem_addr.size(), 16u);
  EXPECT_EQ(p.mem_wdata.size(), 16u);
  EXPECT_LT(p.mem_read, nl.node_count());
  EXPECT_LT(p.mem_write, nl.node_count());
  EXPECT_LT(p.mpu_viol, nl.node_count());
  EXPECT_LT(p.halted, nl.node_count());
}

}  // namespace
}  // namespace fav::soc
