// DMA engine (peripheral bus master) semantics, gate-level equivalence, and
// the DMA-exfiltration benchmark.
#include <gtest/gtest.h>

#include "mc/analytical.h"
#include "rtl/assembler.h"
#include "rtl/golden.h"
#include "soc/benchmark.h"
#include "soc/gate_machine.h"
#include "util/rng.h"

namespace fav::soc {
namespace {

const SocNetlist& soc() {
  static const SocNetlist instance;
  return instance;
}

// MPU off: DMA moves freely.
constexpr const char* kPlainCopy = R"(
    .data 0x0100 0x1111
    .data 0x0101 0x2222
    .data 0x0102 0x3333
    li r1, 0xFF30
    li r2, 0x0100
    sw r2, r1, 0
    li r2, 0x0400
    sw r2, r1, 1
    li r2, 3
    sw r2, r1, 2
    li r2, 1
    sw r2, r1, 3      ; start
    nop
    nop
    nop
    nop
    lw r3, r1, 3      ; status: must be idle again
    halt
)";

TEST(Dma, CopiesBlockWhenUnchecked) {
  const rtl::Program p = rtl::assemble(kPlainCopy);
  rtl::Machine m(p);
  m.run(100);
  EXPECT_TRUE(m.halted());
  EXPECT_EQ(m.ram().read(0x0400), 0x1111);
  EXPECT_EQ(m.ram().read(0x0401), 0x2222);
  EXPECT_EQ(m.ram().read(0x0402), 0x3333);
  EXPECT_FALSE(m.state().dma_active);
  EXPECT_EQ(m.state().dma_len, 0);
  EXPECT_EQ(m.state().regs[3], 0);  // status readback: idle
  EXPECT_FALSE(m.state().viol_sticky);
}

TEST(Dma, RegistersLockedWhileActive) {
  const rtl::Program p = rtl::assemble(R"(
    .data 0x0100 0xAAAA
    li r1, 0xFF30
    li r2, 0x0100
    sw r2, r1, 0
    li r2, 0x0400
    sw r2, r1, 1
    li r2, 8
    sw r2, r1, 2
    li r2, 1
    sw r2, r1, 3      ; start (8 words)
    li r2, 0x0700
    sw r2, r1, 1      ; attempt to redirect mid-transfer: must be ignored
    halt
  )");
  rtl::Machine m(p);
  m.run(100);
  EXPECT_EQ(m.ram().read(0x0400), 0xAAAA);  // original destination used
  EXPECT_EQ(m.ram().read(0x0700), 0);
}

TEST(Dma, StartWithZeroLengthIsNoop) {
  const rtl::Program p = rtl::assemble(R"(
    li r1, 0xFF30
    li r2, 1
    sw r2, r1, 3
    halt
  )");
  rtl::Machine m(p);
  m.run(100);
  EXPECT_FALSE(m.state().dma_active);
}

TEST(Dma, MpuDeniesAndAborts) {
  // Region 0 grants RW on [0, 0x3FFF]; the DMA destination lies outside.
  const rtl::Program p = rtl::assemble(R"(
    .data 0x0100 0x7777
    li r1, 0xFF00
    li r2, 0x0000
    sw r2, r1, 0
    li r2, 0x3FFF
    sw r2, r1, 1
    li r2, 7
    sw r2, r1, 2
    li r1, 0xFF22
    li r2, 1
    sw r2, r1, 0
    li r1, 0xFF30
    li r2, 0x0100
    sw r2, r1, 0
    li r2, 0x9000
    sw r2, r1, 1      ; destination not covered by any region
    li r2, 2
    sw r2, r1, 2
    li r2, 1
    sw r2, r1, 3
    nop
    nop
    halt
  )");
  rtl::Machine m(p);
  bool dma_viol = false;
  while (!m.halted() && m.cycle() < 200) {
    if (m.step().dma_viol) dma_viol = true;
  }
  EXPECT_TRUE(dma_viol);
  EXPECT_TRUE(m.state().viol_sticky);
  EXPECT_EQ(m.state().viol_addr, 0x9000);  // the offending (write) address
  EXPECT_FALSE(m.state().dma_active);      // aborted
  EXPECT_EQ(m.ram().read(0x9000), 0);
}

TEST(Dma, DevicePageOffLimits) {
  const rtl::Program p = rtl::assemble(R"(
    li r1, 0xFF30
    li r2, 0xFF00
    sw r2, r1, 0      ; source on the device page
    li r2, 0x0400
    sw r2, r1, 1
    li r2, 1
    sw r2, r1, 2
    li r2, 1
    sw r2, r1, 3
    nop
    halt
  )");
  rtl::Machine m(p);
  m.run(100);
  EXPECT_TRUE(m.state().viol_sticky);
  EXPECT_EQ(m.state().viol_addr, 0xFF00);
}

TEST(Dma, GateLevelLockstepPlainCopy) {
  const rtl::Program p = rtl::assemble(kPlainCopy);
  rtl::Machine beh(p);
  GateLevelMachine gate(soc(), p);
  const auto& map = SocNetlist::reg_map();
  for (int c = 0; c < 100 && !beh.halted(); ++c) {
    const auto bi = beh.step();
    const auto gi = gate.step();
    ASSERT_EQ(bi.dma_write_done, gi.dma_write_done) << "cycle " << c;
    ASSERT_EQ(map.pack(beh.state()), map.pack(gate.extract_state()))
        << "cycle " << c;
  }
  EXPECT_TRUE(beh.ram() == gate.ram());
}

TEST(Dma, GateLevelLockstepOnBenchmark) {
  const SecurityBenchmark b = make_dma_exfiltration_benchmark();
  rtl::Machine beh(b.program);
  GateLevelMachine gate(soc(), b.program);
  const auto& map = SocNetlist::reg_map();
  for (std::uint64_t c = 0; c < b.max_cycles && !beh.halted(); ++c) {
    const auto bi = beh.step();
    const auto gi = gate.step();
    ASSERT_EQ(bi.mpu_viol || bi.dma_viol, gi.mpu_viol || gi.dma_viol)
        << "cycle " << c;
    ASSERT_EQ(map.pack(beh.state()), map.pack(gate.extract_state()))
        << "cycle " << c;
  }
  EXPECT_TRUE(beh.ram() == gate.ram());
}

TEST(DmaBenchmark, BaselineIsBlocked) {
  const SecurityBenchmark b = make_dma_exfiltration_benchmark();
  rtl::Machine m(b.program);
  m.run(b.max_cycles);
  EXPECT_TRUE(m.halted());
  EXPECT_EQ(m.ram().read(b.exfil_addr), 0);  // nothing exfiltrated
  EXPECT_TRUE(m.state().viol_sticky);
  EXPECT_EQ(m.state().viol_addr, b.protected_addr);
  EXPECT_FALSE(b.attack_succeeded(m.state(), m.ram()));
}

TEST(DmaBenchmark, OpeningSecretRegionEnablesExfiltration) {
  const SecurityBenchmark b = make_dma_exfiltration_benchmark();
  rtl::Machine m(b.program);
  for (int c = 0; c < 60; ++c) m.step();
  m.mutable_state().mpu[2].perm |= rtl::kPermRead;  // secret readable
  m.run(b.max_cycles);
  EXPECT_TRUE(b.attack_succeeded(m.state(), m.ram()))
      << "exfil=" << m.ram().read(b.exfil_addr)
      << " viol=" << m.state().viol_sticky;
  EXPECT_EQ(m.ram().read(b.exfil_addr + 3), 0x5EC4);  // full block copied
}

TEST(DmaBenchmark, AnalyticalMatchesRtl) {
  const SecurityBenchmark b = make_dma_exfiltration_benchmark();
  rtl::GoldenRun golden(b.program, b.max_cycles, 16);
  const mc::AnalyticalEvaluator eval(b, golden);
  const auto& map = rtl::Machine::reg_map();
  fav::Rng rng(77);
  std::vector<int> config_bits;
  for (const auto& f : map.fields()) {
    if (!f.config_like) continue;
    for (int bit = 0; bit < f.width; ++bit) config_bits.push_back(f.offset + bit);
  }
  int decided = 0, successes = 0;
  for (int trial = 0; trial < 120; ++trial) {
    const std::uint64_t cycle = 70 + rng.uniform_below(eval.target_cycle() - 70);
    rtl::ArchState s = golden.state_at(cycle);
    map.flip_bit(s, config_bits[rng.uniform_below(config_bits.size())]);
    const auto verdict = eval.evaluate(s, cycle);
    if (!verdict.has_value()) continue;
    ++decided;
    rtl::Machine m = golden.restore(cycle);
    m.set_state(s);
    while (!m.halted() && m.cycle() < b.max_cycles) m.step();
    const bool truth = b.attack_succeeded(m.state(), m.ram());
    EXPECT_EQ(*verdict, truth) << "trial " << trial;
    successes += truth ? 1 : 0;
  }
  EXPECT_GT(decided, 80);
  EXPECT_GT(successes, 0);  // read-perm flips on region 2 must enable it
}

}  // namespace
}  // namespace fav::soc
