#include "core/hardening.h"

#include <gtest/gtest.h>

#include "core/framework.h"
#include "util/check.h"

namespace fav::core {
namespace {

FaultAttackEvaluator& fw() {
  static FaultAttackEvaluator instance(soc::make_illegal_write_benchmark());
  return instance;
}

const mc::SsfResult& baseline() {
  static const mc::SsfResult res = [] {
    const auto attack = fw().subblock_attack_model(1.5, 50);
    auto sampler = fw().make_importance_sampler(attack);
    Rng rng(2026);
    return fw().evaluator().run(*sampler, rng, 2500);
  }();
  return res;
}

TEST(Hardening, CriticalBitsAreASmallMinority) {
  ASSERT_GT(baseline().successes, 0u);
  const auto critical = select_critical_bits(baseline(), 0.95);
  EXPECT_FALSE(critical.empty());
  EXPECT_GE(attribution_coverage_bits(baseline(), critical), 0.95);
  // The paper's headline shape: a few percent of the registers carry almost
  // all the SSF.
  const auto& map = rtl::Machine::reg_map();
  EXPECT_LT(static_cast<double>(critical.size()),
            0.15 * map.total_bits());
}

TEST(Hardening, FieldSelectionCoversFields) {
  const auto fields = select_critical_fields(baseline(), 0.9);
  EXPECT_FALSE(fields.empty());
  EXPECT_GE(attribution_coverage(baseline(), fields), 0.9);
}

TEST(Hardening, SelectionIsGreedyByContribution) {
  const auto one = select_critical_bits(baseline(), 0.01);
  ASSERT_GE(one.size(), 1u);
  double best = 0;
  for (const auto& [b, c] : baseline().bit_contribution) {
    best = std::max(best, c);
  }
  EXPECT_DOUBLE_EQ(baseline().bit_contribution.at(one[0]), best);
}

TEST(Hardening, InvalidCoverageThrows) {
  EXPECT_THROW(select_critical_bits(baseline(), 0.0), fav::CheckError);
  EXPECT_THROW(select_critical_bits(baseline(), 1.5), fav::CheckError);
}

TEST(Hardening, HardeningReducesSsf) {
  const auto critical = select_critical_bits(baseline(), 0.95);
  Rng rng(99);
  const HardeningReport report = evaluate_hardening(
      fw().evaluator(), fw().soc(), baseline(), critical, {}, rng);
  EXPECT_DOUBLE_EQ(report.base_ssf, baseline().ssf());
  EXPECT_LT(report.hardened_ssf, report.base_ssf);
  EXPECT_GT(report.improvement(), 2.0);  // paper: up to 6.5x
  EXPECT_GT(report.area_overhead, 0.0);
  EXPECT_LT(report.area_overhead, 0.05);  // paper: < 2%
  EXPECT_EQ(report.protected_bits, critical);
  EXPECT_LT(report.protected_register_fraction(), 0.15);
}

TEST(Hardening, InfiniteResilienceKillsProtectedContribution) {
  const auto critical = select_critical_bits(baseline(), 1.0);
  HardeningOptions opts;
  opts.resilience_factor = 1e12;  // flips in protected cells never happen
  Rng rng(123);
  const HardeningReport report = evaluate_hardening(
      fw().evaluator(), fw().soc(), baseline(), critical, opts, rng);
  EXPECT_LT(report.hardened_ssf, 0.25 * report.base_ssf);
}

TEST(Hardening, NoProtectionChangesNothing) {
  Rng rng(7);
  const HardeningReport report = evaluate_hardening(
      fw().evaluator(), fw().soc(), baseline(), {}, {}, rng);
  EXPECT_DOUBLE_EQ(report.hardened_ssf, report.base_ssf);
  EXPECT_EQ(report.area_overhead, 0.0);
  EXPECT_TRUE(report.protected_bits.empty());
}

TEST(Hardening, AreaScalesWithOptions) {
  const auto critical = select_critical_bits(baseline(), 0.95);
  Rng rng(8);
  HardeningOptions cheap;
  cheap.area_factor = 1.5;
  HardeningOptions expensive;
  expensive.area_factor = 5.0;
  const auto a = evaluate_hardening(fw().evaluator(), fw().soc(), baseline(),
                                    critical, cheap, rng);
  const auto b = evaluate_hardening(fw().evaluator(), fw().soc(), baseline(),
                                    critical, expensive, rng);
  EXPECT_LT(a.area_overhead, b.area_overhead);
}

TEST(Hardening, BadOptionsThrow) {
  Rng rng(9);
  HardeningOptions bad;
  bad.resilience_factor = 0.5;
  EXPECT_THROW(evaluate_hardening(fw().evaluator(), fw().soc(), baseline(), {},
                                  bad, rng),
               fav::CheckError);
}

TEST(Hardening, RequiresRecords) {
  mc::SsfResult empty;
  Rng rng(10);
  EXPECT_THROW(evaluate_hardening(fw().evaluator(), fw().soc(), empty, {}, {},
                                  rng),
               fav::CheckError);
}

TEST(Hardening, BitAttributionSumsMatchFieldAttribution) {
  double bit_total = 0, field_total = 0;
  for (const auto& [b, c] : baseline().bit_contribution) bit_total += c;
  for (const auto& [f, c] : baseline().field_contribution) field_total += c;
  EXPECT_NEAR(bit_total, field_total, 1e-9);
}

}  // namespace
}  // namespace fav::core
