// Tests for the shared run-report writer (core/run_report.h): JSON string
// escaping and the regression for the bug where benchmark / technique /
// strategy / failure-count keys were emitted unescaped, so a quote or
// backslash in any of them produced invalid JSON.
#include "core/run_report.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "mc/evaluator.h"
#include "util/metrics.h"

namespace fav::core {
namespace {

TEST(JsonEscape, PassesPlainTextThrough) {
  EXPECT_EQ(json_escape("write"), "write");
  EXPECT_EQ(json_escape(""), "");
  EXPECT_EQ(json_escape("a-b_c.d/e"), "a-b_c.d/e");
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("line\nbreak"), "line\\u000abreak");
  EXPECT_EQ(json_escape(std::string(1, '\0')), "\\u0000");
  EXPECT_EQ(json_escape("tab\there"), "tab\\u0009here");
}

/// Minimal structural JSON validator — enough to prove the report parses:
/// tracks strings (with escapes) and brace/bracket nesting. The CI job runs
/// the real `json.load` validator over reports; this is the in-tree
/// regression net for the unescaped-key bug.
bool json_parses(const std::string& text) {
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;  // skip the escaped character
      } else if (c == '"') {
        in_string = false;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control character inside a string
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_string;
}

RunReportInputs minimal_inputs(const mc::SsfResult& res,
                               const MetricsSink& metrics) {
  RunReportInputs in;
  in.benchmark = "write";
  in.technique = "radiation";
  in.strategy = "importance";
  in.samples = 4;
  in.seed = 2017;
  in.result = &res;
  in.metrics = &metrics;
  return in;
}

TEST(RunReport, QuoteInIdentityFieldsRoundTrips) {
  mc::SsfResult res;
  res.evaluated = 4;
  MetricsSink metrics;
  RunReportInputs in = minimal_inputs(res, metrics);
  // Hostile-but-legal identity strings: quotes, backslashes, a newline.
  in.benchmark = "bench\"quoted\"";
  in.strategy = "imp\\ortance\nv2";
  in.cache.enabled = true;
  in.cache.path = "cache \"dir\"/pre.fpa";
  in.cache.detail = "hit (\"warm\")";
  std::ostringstream out;
  write_run_report(out, in);
  const std::string report = out.str();
  EXPECT_TRUE(json_parses(report)) << report;
  EXPECT_NE(report.find("bench\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(report.find("imp\\\\ortance\\u000av2"), std::string::npos);
  EXPECT_NE(report.find("cache \\\"dir\\\"/pre.fpa"), std::string::npos);
}

TEST(RunReport, FailureCountsKeysAreEscapedStrings) {
  mc::SsfResult res;
  res.evaluated = 4;
  res.failed = 2;
  res.failure_counts[ErrorCode::kWorkerCrashed] = 2;
  MetricsSink metrics;
  const RunReportInputs in = minimal_inputs(res, metrics);
  std::ostringstream out;
  write_run_report(out, in);
  const std::string report = out.str();
  EXPECT_TRUE(json_parses(report)) << report;
  EXPECT_NE(report.find("\"WORKER_CRASHED\": 2"), std::string::npos);
}

TEST(RunReport, FaultSpaceBlockRoundTrips) {
  // Exhaustive sweeps report fault_space{size, evaluated, coverage}; the
  // block must appear verbatim and keep the report valid JSON even with
  // hostile identity strings alongside it.
  mc::SsfResult res;
  res.evaluated = 3;
  res.fault_space_size = 12;
  MetricsSink metrics;
  RunReportInputs in = minimal_inputs(res, metrics);
  in.mode = "exhaustive";
  in.strategy = "exhaustive\"v2\"";
  std::ostringstream out;
  write_run_report(out, in);
  const std::string report = out.str();
  EXPECT_TRUE(json_parses(report)) << report;
  EXPECT_NE(report.find("\"mode\": \"exhaustive\""), std::string::npos);
  EXPECT_NE(report.find("\"fault_space\": {\"size\": 12, \"evaluated\": 3, "
                        "\"coverage\": 0.25}"),
            std::string::npos);
  EXPECT_NE(report.find("exhaustive\\\"v2\\\""), std::string::npos);
}

TEST(RunReport, SampledRunsReportZeroFaultSpace) {
  mc::SsfResult res;
  res.evaluated = 4;
  MetricsSink metrics;
  const RunReportInputs in = minimal_inputs(res, metrics);
  std::ostringstream out;
  write_run_report(out, in);
  const std::string report = out.str();
  EXPECT_TRUE(json_parses(report)) << report;
  EXPECT_NE(report.find("\"mode\": \"sampled\""), std::string::npos);
  EXPECT_NE(report.find("\"fault_space\": {\"size\": 0, \"evaluated\": 4, "
                        "\"coverage\": 0}"),
            std::string::npos);
}

TEST(RunReport, PlainReportIsStructurallyValid) {
  mc::SsfResult res;
  res.evaluated = 4;
  res.successes = 1;
  MetricsSink metrics;
  RunReportInputs in = minimal_inputs(res, metrics);
  in.supervised = true;
  in.restarts = 1;
  std::ostringstream out;
  write_run_report(out, in);
  EXPECT_TRUE(json_parses(out.str())) << out.str();
  EXPECT_NE(out.str().find("\"schema\": \"fav.run_report.v1\""),
            std::string::npos);
}

}  // namespace
}  // namespace fav::core
