#include "core/framework.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "util/check.h"
#include "util/io.h"
#include "util/status.h"

namespace fav::core {
namespace {

// One shared instance: construction runs the full pre-characterization.
FaultAttackEvaluator& fw() {
  static FaultAttackEvaluator instance(soc::make_illegal_write_benchmark());
  return instance;
}

TEST(Framework, AssemblesAllComponents) {
  EXPECT_GT(fw().soc().netlist().gate_count(), 1000u);
  EXPECT_GT(fw().golden().length(), 100u);
  EXPECT_GT(fw().signatures().cycles(), 100u);
  EXPECT_GT(fw().characterization().memory_type_bits().size(), 50u);
  EXPECT_GT(fw().target_cycle(), 50u);
}

TEST(Framework, ChipAttackModelCoversAllPlacedCells) {
  const auto a = fw().chip_attack_model(1.5, 50);
  EXPECT_EQ(a.candidate_centers.size(), fw().placement().placed_nodes().size());
  EXPECT_EQ(a.t_count(), 50);
  EXPECT_THROW(fw().chip_attack_model(1.5, 0), fav::CheckError);
}

TEST(Framework, SubblockModelIsSmallerThanChip) {
  const auto sub = fw().subblock_attack_model(1.5, 50);
  const auto chip = fw().chip_attack_model(1.5, 50);
  EXPECT_LT(sub.candidate_centers.size(), chip.candidate_centers.size() + 1);
  EXPECT_GT(sub.candidate_centers.size(), 100u);
}

TEST(Framework, PotencyMarksGrantingBits) {
  const auto& potency = fw().config().sampling.memory_bit_potency;
  const auto& map = rtl::Machine::reg_map();
  ASSERT_EQ(potency.size(), static_cast<std::size_t>(map.total_bits()));
  // The write-permission bit of region 1 enables the illegal write.
  const int grant = map.field(map.field_index("mpu1_perm")).offset + 1;
  EXPECT_EQ(potency[static_cast<std::size_t>(grant)], 1);
  // viol_addr bits never enable anything.
  const int va = map.field(map.field_index("viol_addr")).offset;
  for (int b = 0; b < 16; ++b) {
    EXPECT_EQ(potency[static_cast<std::size_t>(va + b)], 0) << b;
  }
  int potent = 0;
  for (const char p : potency) potent += p;
  EXPECT_GT(potent, 2);
  EXPECT_LT(potent, map.total_bits() / 4);
}

TEST(Framework, SamplersEvaluateEndToEnd) {
  const auto attack = fw().subblock_attack_model(1.5, 50);
  Rng rng(42);
  auto random = fw().make_random_sampler(attack);
  auto cone = fw().make_cone_sampler(attack);
  auto importance = fw().make_importance_sampler(attack);
  const auto r1 = fw().evaluator().run(*random, rng, 300);
  const auto r2 = fw().evaluator().run(*cone, rng, 300);
  const auto r3 = fw().evaluator().run(*importance, rng, 300);
  EXPECT_EQ(r1.stats.count(), 300u);
  EXPECT_EQ(r2.stats.count(), 300u);
  EXPECT_EQ(r3.stats.count(), 300u);
  // The importance strategy must find successes far more often.
  EXPECT_GT(r3.successes, r1.successes);
  EXPECT_GT(r3.successes, 10u);
}

TEST(Framework, ImportanceVarianceBeatsRandom) {
  const auto attack = fw().subblock_attack_model(1.5, 50);
  Rng rng(77);
  auto random = fw().make_random_sampler(attack);
  auto importance = fw().make_importance_sampler(attack);
  const auto rr = fw().evaluator().run(*random, rng, 1500);
  const auto ri = fw().evaluator().run(*importance, rng, 1500);
  // Fig. 9's headline: orders-of-magnitude variance reduction. Require at
  // least 10x here to keep the test robust across seeds.
  if (rr.sample_variance() > 0 && ri.sample_variance() > 0) {
    EXPECT_GT(rr.sample_variance() / ri.sample_variance(), 10.0);
  }
  EXPECT_GT(ri.successes, rr.successes);
}

TEST(Framework, RunAdaptiveRefinesFromPilot) {
  const auto attack = fw().subblock_attack_model(1.5, 50);
  Rng rng(21);
  auto pilot = fw().make_importance_sampler(attack);
  const auto out = fw().run_adaptive(attack, *pilot, rng, 600, 400);
  EXPECT_EQ(out.pilot.stats.count(), 600u);
  EXPECT_EQ(out.refined.stats.count(), 400u);
  // The importance pilot finds successes on this benchmark, so the refit
  // stage must actually adapt and keep finding them.
  EXPECT_TRUE(out.adapted);
  EXPECT_GT(out.pilot.successes, 0u);
  EXPECT_GT(out.refined.successes, 0u);
  EXPECT_GT(out.refined.ssf(), 0.0);
}

TEST(Framework, RunAdaptiveFallsBackWithoutPilotSuccesses) {
  // A hopeless pilot (zero-radius strikes on one far-away cell at the maximum
  // timing distance) finds nothing; the refit stage must fall back to the
  // pilot sampler instead of fitting a model to an empty success set.
  auto attack = fw().subblock_attack_model(1.5, 50);
  attack.candidate_centers = {fw().placement().placed_nodes().back()};
  attack.radii = {0.0};
  attack.t_min = attack.t_max = 49;
  Rng rng(3);
  auto pilot = fw().make_random_sampler(attack);
  const auto out = fw().run_adaptive(attack, *pilot, rng, 40, 30);
  if (out.pilot.successes == 0) {
    EXPECT_FALSE(out.adapted);
    EXPECT_EQ(out.refined.stats.count(), 30u);
  }
}

TEST(Framework, ThreadsKnobPreservesFrameworkResults) {
  // End-to-end determinism through the facade: a framework configured with
  // a worker pool must reproduce the shared sequential framework bit for bit.
  FrameworkConfig cfg;
  cfg.evaluator.threads = 4;
  FaultAttackEvaluator threaded(soc::make_illegal_write_benchmark(), cfg);
  const auto attack = threaded.subblock_attack_model(1.5, 50);
  Rng r1(42), r2(42);
  auto s1 = threaded.make_importance_sampler(attack);
  auto s2 = fw().make_importance_sampler(fw().subblock_attack_model(1.5, 50));
  const auto parallel = threaded.evaluator().run(*s1, r1, 400);
  const auto sequential = fw().evaluator().run(*s2, r2, 400);
  EXPECT_EQ(parallel.ssf(), sequential.ssf());
  EXPECT_EQ(parallel.sample_variance(), sequential.sample_variance());
  EXPECT_EQ(parallel.successes, sequential.successes);
  EXPECT_EQ(parallel.masked, sequential.masked);
  EXPECT_EQ(parallel.analytical, sequential.analytical);
  EXPECT_EQ(parallel.rtl, sequential.rtl);
  EXPECT_EQ(parallel.trace, sequential.trace);
  EXPECT_EQ(parallel.bit_contribution, sequential.bit_contribution);
  EXPECT_EQ(parallel.field_contribution, sequential.field_contribution);
}

TEST(FrameworkConfigValidation, RejectsStructurallyInvalidConfigs) {
  {
    FrameworkConfig cfg;
    cfg.checkpoint_interval = 0;
    EXPECT_EQ(cfg.validate().code(), ErrorCode::kInvalidArgument);
  }
  {
    FrameworkConfig cfg;
    cfg.cone_fanin_depth = 0;
    EXPECT_EQ(cfg.validate().code(), ErrorCode::kInvalidArgument);
  }
  {
    FrameworkConfig cfg;
    cfg.cone_fanout_depth = -1;
    EXPECT_EQ(cfg.validate().code(), ErrorCode::kInvalidArgument);
  }
  {
    FrameworkConfig cfg;
    cfg.precharac_cycles = 0;
    EXPECT_EQ(cfg.validate().code(), ErrorCode::kInvalidArgument);
  }
  {
    FrameworkConfig cfg;
    cfg.evaluator.trace_stride = 0;
    EXPECT_EQ(cfg.validate().code(), ErrorCode::kInvalidArgument);
  }
  EXPECT_TRUE(FrameworkConfig{}.validate().is_ok());
}

TEST(FrameworkConfigValidation, ConstructionRejectsInvalidConfigEarly) {
  FrameworkConfig cfg;
  cfg.checkpoint_interval = 0;
  try {
    FaultAttackEvaluator bad(soc::make_illegal_write_benchmark(), cfg);
    FAIL() << "expected StatusError";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidArgument);
    EXPECT_NE(std::string(e.what()).find("checkpoint_interval"),
              std::string::npos);
  }
}

TEST(FrameworkFallback, HealthyImportanceStrategyIsNotDowngraded) {
  const auto attack = fw().subblock_attack_model(1.5, 50);
  const SamplerSelection sel =
      fw().make_sampler_with_fallback(attack, "importance");
  ASSERT_NE(sel.sampler, nullptr);
  EXPECT_EQ(sel.requested, "importance");
  EXPECT_EQ(sel.actual, "importance");
  EXPECT_FALSE(sel.downgraded());
}

TEST(FrameworkFallback, BrokenImportanceModelDowngradesToCone) {
  // An invalid sampling parameter makes the importance-model construction
  // throw; the facade must fall back to the cone sampler, log the downgrade,
  // and record its provenance instead of propagating the exception.
  FrameworkConfig cfg;
  cfg.sampling.alpha = -1.0;  // rejected by SamplingModel's validation
  std::vector<std::string> logged;
  cfg.log = [&](const std::string& m) { logged.push_back(m); };
  FaultAttackEvaluator broken(soc::make_illegal_write_benchmark(), cfg);
  const auto attack = broken.subblock_attack_model(1.5, 50);
  const SamplerSelection sel =
      broken.make_sampler_with_fallback(attack, "importance");
  ASSERT_NE(sel.sampler, nullptr);
  EXPECT_EQ(sel.requested, "importance");
  EXPECT_EQ(sel.actual, "cone");
  EXPECT_TRUE(sel.downgraded());
  EXPECT_NE(sel.downgrade_reason.find("importance"), std::string::npos);
  ASSERT_FALSE(logged.empty());
  EXPECT_NE(logged.front().find("downgrade"), std::string::npos);
  // The fallback sampler is actually usable end to end.
  Rng rng(11);
  const auto res = broken.evaluator().run(*sel.sampler, rng, 100);
  EXPECT_EQ(res.stats.count(), 100u);
}

TEST(FrameworkFallback, UnknownStrategyStillThrows) {
  const auto attack = fw().subblock_attack_model(1.5, 50);
  EXPECT_THROW(fw().make_sampler_with_fallback(attack, "quantum"),
               fav::CheckError);
}

TEST(FrameworkFallback, AdaptiveRefitFailureDegradesToPilotSampler) {
  // An invalid adaptive config makes the refit construction throw after a
  // healthy pilot; run_adaptive must spend the refinement budget on the
  // pilot sampler and surface the downgrade instead of aborting.
  const auto attack = fw().subblock_attack_model(1.5, 50);
  Rng rng(21);
  auto pilot = fw().make_importance_sampler(attack);
  mc::AdaptiveConfig bad;
  bad.smoothing = -1.0;  // rejected by AdaptiveImportanceSampler
  const auto out = fw().run_adaptive(attack, *pilot, rng, 400, 300, bad);
  EXPECT_EQ(out.pilot.stats.count(), 400u);
  EXPECT_EQ(out.refined.stats.count(), 300u);
  EXPECT_FALSE(out.adapted);
  EXPECT_NE(out.downgrade_reason.find("refit failed"), std::string::npos);
}

// One shared glitch-configured framework (construction is expensive).
FaultAttackEvaluator& glitch_fw() {
  static FaultAttackEvaluator instance(soc::make_illegal_write_benchmark(),
                                       [] {
                                         FrameworkConfig cfg;
                                         cfg.technique = "clock-glitch";
                                         return cfg;
                                       }());
  return instance;
}

TEST(FrameworkTechnique, RadiationIsTheDefault) {
  EXPECT_EQ(fw().config().technique, "radiation");
  EXPECT_EQ(fw().technique().kind(), faultsim::TechniqueKind::kRadiation);
  EXPECT_THROW(fw().glitch_simulator(), fav::CheckError);
}

TEST(FrameworkTechnique, UnknownTechniqueIsRejected) {
  FrameworkConfig cfg;
  cfg.technique = "rowhammer";
  EXPECT_EQ(cfg.validate().code(), ErrorCode::kInvalidArgument);
}

TEST(FrameworkTechnique, GlitchFrameworkEvaluatesEndToEnd) {
  EXPECT_EQ(glitch_fw().technique().kind(),
            faultsim::TechniqueKind::kClockGlitch);
  EXPECT_GT(glitch_fw().glitch_simulator().timing().clock_period(), 0.0);
  const auto model = glitch_fw().glitch_attack_model(50);
  // The model is clamped to the program: every t has a cycle to glitch.
  EXPECT_LE(static_cast<std::uint64_t>(model.t_max),
            glitch_fw().target_cycle());
  Rng rng(42);
  auto sampler = glitch_fw().make_glitch_sampler(model);
  const auto res = glitch_fw().evaluator().run(*sampler, rng, 300);
  EXPECT_EQ(res.stats.count(), 300u);
  EXPECT_EQ(res.masked + res.analytical + res.rtl, 300u);
}

TEST(FrameworkTechnique, GlitchFallbackDowngradesSpatialStrategies) {
  const auto model = glitch_fw().glitch_attack_model(50);
  // "random" maps onto the uniform glitch sampler without a downgrade…
  const SamplerSelection random_sel =
      glitch_fw().make_sampler_with_fallback(model, "random");
  ASSERT_NE(random_sel.sampler, nullptr);
  EXPECT_EQ(random_sel.actual, "glitch-uniform");
  EXPECT_FALSE(random_sel.downgraded());
  // …while spatial strategies have no glitch equivalent and are downgraded
  // with recorded provenance.
  const SamplerSelection imp_sel =
      glitch_fw().make_sampler_with_fallback(model, "importance");
  ASSERT_NE(imp_sel.sampler, nullptr);
  EXPECT_EQ(imp_sel.requested, "importance");
  EXPECT_EQ(imp_sel.actual, "glitch-uniform");
  EXPECT_TRUE(imp_sel.downgraded());
  Rng rng(7);
  const auto res = glitch_fw().evaluator().run(*imp_sel.sampler, rng, 100);
  EXPECT_EQ(res.stats.count(), 100u);
}

TEST(FrameworkTechnique, RunAdaptiveGlitchRunsOrDegradesGracefully) {
  const auto model = glitch_fw().glitch_attack_model(50);
  Rng rng(21);
  const auto out = glitch_fw().run_adaptive_glitch(model, rng, 200, 150);
  EXPECT_EQ(out.pilot.stats.count(), 200u);
  EXPECT_EQ(out.refined.stats.count(), 150u);
  // Glitch successes are rare on this benchmark; either the refit adapted to
  // real pilot successes or it fell back to the uniform sampler — both must
  // produce a full, well-defined refinement stage.
  if (out.pilot.successes == 0) EXPECT_FALSE(out.adapted);
}

TEST(FrameworkTechnique, AdaptiveEntryPointsAreTechniqueChecked) {
  // Radiation-style adaptive estimation on a glitch framework (and vice
  // versa) is a caller bug, not a degradable condition.
  const auto model = glitch_fw().glitch_attack_model(50);
  Rng rng(1);
  EXPECT_THROW(fw().run_adaptive_glitch(model, rng, 10, 10), fav::CheckError);
  const auto attack = fw().subblock_attack_model(1.5, 50);
  auto pilot = fw().make_random_sampler(attack);
  EXPECT_THROW(glitch_fw().run_adaptive(attack, *pilot, rng, 10, 10),
               fav::CheckError);
}

// --- persistent pre-characterization cache (precharac/artifact.h) ---------

class PrecharacCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("fav_precharac_cache_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
    path_ = (dir_ / "bundle.fpa").string();
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  FrameworkConfig cache_config() const {
    FrameworkConfig cfg;
    cfg.precharac_cache_path = path_;
    cfg.log = [](const std::string&) {};  // keep test output quiet
    return cfg;
  }

  /// A fixed campaign over `f`; any divergence in the loaded bundle would
  /// change the sample stream or per-sample outcomes.
  static mc::SsfResult campaign(FaultAttackEvaluator& f) {
    const auto attack = f.subblock_attack_model(1.5, 50);
    Rng rng(42);
    auto sampler = f.make_importance_sampler(attack);
    return f.evaluator().run(*sampler, rng, 400);
  }

  static void expect_identical(const mc::SsfResult& a, const mc::SsfResult& b) {
    EXPECT_EQ(a.ssf(), b.ssf());
    EXPECT_EQ(a.sample_variance(), b.sample_variance());
    EXPECT_EQ(a.successes, b.successes);
    EXPECT_EQ(a.masked, b.masked);
    EXPECT_EQ(a.analytical, b.analytical);
    EXPECT_EQ(a.rtl, b.rtl);
    EXPECT_EQ(a.bit_contribution, b.bit_contribution);
    EXPECT_EQ(a.field_contribution, b.field_contribution);
  }

  std::filesystem::path dir_;
  std::string path_;
};

TEST_F(PrecharacCacheTest, ColdWritesWarmLoadsBitwiseIdentical) {
  FaultAttackEvaluator cold(soc::make_illegal_write_benchmark(),
                            cache_config());
  EXPECT_EQ(cold.precharac_cache().outcome, "miss");
  EXPECT_TRUE(cold.precharac_cache().stored);
  EXPECT_EQ(cold.metrics().counter("precharac.cache_miss"), 1u);
  EXPECT_EQ(cold.metrics().counter("precharac.cache_saved"), 1u);
  ASSERT_TRUE(std::filesystem::exists(path_));

  FaultAttackEvaluator warm(soc::make_illegal_write_benchmark(),
                            cache_config());
  EXPECT_EQ(warm.precharac_cache().outcome, "hit");
  EXPECT_FALSE(warm.precharac_cache().stored);
  EXPECT_EQ(warm.metrics().counter("precharac.cache_hit"), 1u);

  // Cache-off (the shared fixture), cold-write and warm-load must produce
  // bitwise-identical campaigns — the cache may never change an answer.
  const auto off_res = campaign(fw());
  auto cold_res = campaign(cold);
  auto warm_res = campaign(warm);
  expect_identical(off_res, cold_res);
  expect_identical(off_res, warm_res);
}

TEST_F(PrecharacCacheTest, CorruptArtifactRecomputesAndRewrites) {
  FaultAttackEvaluator cold(soc::make_illegal_write_benchmark(),
                            cache_config());
  ASSERT_TRUE(cold.precharac_cache().stored);
  // Flip one byte deep in the body (past the 28-byte header).
  Result<std::string> bytes = io::read_file(path_);
  ASSERT_TRUE(bytes.is_ok());
  std::string mutated = bytes.value();
  mutated[mutated.size() / 2] =
      static_cast<char>(mutated[mutated.size() / 2] ^ 0x10);
  ASSERT_TRUE(io::atomic_write_file(path_, mutated).is_ok());

  FaultAttackEvaluator recovered(soc::make_illegal_write_benchmark(),
                                 cache_config());
  EXPECT_EQ(recovered.precharac_cache().outcome, "corrupt");
  EXPECT_TRUE(recovered.precharac_cache().stored);  // rewrote a good artifact
  EXPECT_EQ(recovered.metrics().counter("precharac.cache_corrupt"), 1u);
  expect_identical(campaign(fw()), campaign(recovered));

  // The rewrite restored a loadable artifact.
  FaultAttackEvaluator warm(soc::make_illegal_write_benchmark(),
                            cache_config());
  EXPECT_EQ(warm.precharac_cache().outcome, "hit");
}

TEST_F(PrecharacCacheTest, DifferentConfigIsStaleNotCorrupt) {
  FaultAttackEvaluator cold(soc::make_illegal_write_benchmark(),
                            cache_config());
  ASSERT_TRUE(cold.precharac_cache().stored);
  FrameworkConfig changed = cache_config();
  changed.characterization.horizon += 1;  // changes the fingerprint
  FaultAttackEvaluator stale(soc::make_illegal_write_benchmark(), changed);
  EXPECT_EQ(stale.precharac_cache().outcome, "stale");
  EXPECT_TRUE(stale.precharac_cache().stored);  // last writer wins
  EXPECT_EQ(stale.metrics().counter("precharac.cache_stale"), 1u);
}

TEST_F(PrecharacCacheTest, HeldLockDegradesToUnlockedElaboration) {
  // A peer that wedges while holding the elaboration lock must cost this
  // process only the bounded wait, never correctness or a deadlock.
  io::FileLock peer;
  ASSERT_TRUE(peer.acquire(path_ + ".lock", 1000).is_ok());
  FrameworkConfig cfg = cache_config();
  cfg.precharac_cache_lock_timeout_ms = 50;
  FaultAttackEvaluator unlocked(soc::make_illegal_write_benchmark(), cfg);
  EXPECT_EQ(unlocked.precharac_cache().outcome, "miss");
  EXPECT_TRUE(unlocked.precharac_cache().stored);
  EXPECT_EQ(unlocked.metrics().counter("precharac.cache_lock_timeouts"), 1u);
  expect_identical(campaign(fw()), campaign(unlocked));
}

TEST(Framework, ReadBenchmarkAlsoWorks) {
  FaultAttackEvaluator read_fw(soc::make_illegal_read_benchmark());
  EXPECT_GT(read_fw.target_cycle(), 50u);
  const auto attack = read_fw.subblock_attack_model(1.5, 50);
  Rng rng(5);
  auto importance = read_fw.make_importance_sampler(attack);
  const auto res = read_fw.evaluator().run(*importance, rng, 400);
  EXPECT_GT(res.successes, 0u);
  EXPECT_GT(res.ssf(), 0.0);
}

}  // namespace
}  // namespace fav::core
