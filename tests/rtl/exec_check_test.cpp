// Instruction-access-check (execute permission) semantics of MCU16.
#include <gtest/gtest.h>

#include "rtl/assembler.h"
#include "rtl/machine.h"

namespace fav::rtl {
namespace {

// Grants execute on [0, split-1] via region 0 (exec|enable) and read/write
// everywhere via region 1; turns on MPU + instruction check.
std::string exec_setup(const std::string& split_label) {
  return R"(
    li r1, 0xFF00
    li r2, 0x0000
    sw r2, r1, 0
    li r2, )" + split_label + R"(
    addi r2, r2, -1
    sw r2, r1, 1
    li r2, 12        ; exec | enable
    sw r2, r1, 2
    li r1, 0xFF08
    li r2, 0x0000
    sw r2, r1, 0
    li r2, 0x3FFF
    sw r2, r1, 1
    li r2, 7         ; read | write | enable
    sw r2, r1, 2
    li r1, 0xFF22
    li r2, 3         ; MPU on + instruction check
    sw r2, r1, 0
  )";
}

TEST(ExecCheck, DeniedFetchExecutesAsNop) {
  const Program p = assemble(exec_setup("forbidden") + R"(
    li r3, 0x0100
    jmp forbidden
  forbidden:
    addi r4, r0, 9   ; must NOT execute
    sw r4, r3, 0     ; must NOT execute
  )");
  Machine m(p);
  m.run(1000);
  EXPECT_EQ(m.state().regs[4], 0);           // squashed
  EXPECT_EQ(m.ram().read(0x0100), 0);        // squashed
  EXPECT_TRUE(m.state().viol_sticky);
  EXPECT_EQ(m.state().viol_addr, p.label("forbidden"));
}

TEST(ExecCheck, GrantedFetchesRunNormally) {
  const Program p = assemble(exec_setup("limit") + R"(
    addi r4, r0, 5
  limit:
    halt
  )");
  Machine m(p);
  m.run(1000);
  // `limit` itself is outside the exec region: the halt is squashed and the
  // machine NOP-slides off the ROM without halting.
  EXPECT_FALSE(m.halted());
  EXPECT_EQ(m.state().regs[4], 5);
  EXPECT_TRUE(m.state().viol_sticky);
}

TEST(ExecCheck, InstrCheckOffMeansNoFetchChecks) {
  // MPU on (data checks) but ctrl bit 1 clear: fetches are never checked.
  const Program p = assemble(R"(
    li r1, 0xFF00
    li r2, 0x0000
    sw r2, r1, 0
    li r2, 0x3FFF
    sw r2, r1, 1
    li r2, 7
    sw r2, r1, 2
    li r1, 0xFF22
    li r2, 1
    sw r2, r1, 0
    addi r4, r0, 7
    halt
  )");
  Machine m(p);
  m.run(1000);
  EXPECT_TRUE(m.halted());
  EXPECT_EQ(m.state().regs[4], 7);
  EXPECT_FALSE(m.state().viol_sticky);
}

TEST(ExecCheck, ControlRegisterReadBack) {
  const Program p = assemble(R"(
    li r1, 0xFF22
    li r2, 3
    sw r2, r1, 0
    lw r3, r1, 0
    halt
  )");
  Machine m(p);
  m.run(100);
  // With instr check on and no exec region, the fetch after the ctrl write
  // is denied; readback therefore never happens and the machine NOP-slides.
  EXPECT_FALSE(m.halted());
  EXPECT_TRUE(m.state().instr_check);
  EXPECT_TRUE(m.state().viol_sticky);
}

TEST(ExecCheck, ControlRegisterReadBackWithExecRegion) {
  const Program p = assemble(exec_setup("theend") + R"(
    li r1, 0xFF22
    lw r3, r1, 0
    li r4, 0x0100
    sw r3, r4, 0
    jmp theend
  theend:
    nop
  )");
  Machine m(p);
  m.run(1000);
  EXPECT_EQ(m.ram().read(0x0100), 3);  // enable | instr_check
}

TEST(ExecCheck, MpuAllowsExecHelper) {
  ArchState s;
  EXPECT_TRUE(Machine::mpu_allows_exec(s, 0x100));  // everything off
  s.mpu_enable = true;
  EXPECT_TRUE(Machine::mpu_allows_exec(s, 0x100));  // check not enabled
  s.instr_check = true;
  EXPECT_FALSE(Machine::mpu_allows_exec(s, 0x100));  // no region grants
  s.mpu[2] = {0x0000, 0x01FF, kPermExec | kPermEnable};
  EXPECT_TRUE(Machine::mpu_allows_exec(s, 0x100));
  EXPECT_FALSE(Machine::mpu_allows_exec(s, 0x200));
  s.mpu[2].perm = kPermExec;  // disabled region never grants
  EXPECT_FALSE(Machine::mpu_allows_exec(s, 0x100));
  s.instr_check = false;
  EXPECT_TRUE(Machine::mpu_allows_exec(s, 0x200));
}

TEST(ExecCheck, StepInfoReportsFetchDenied) {
  const Program p = assemble(exec_setup("stop") + R"(
    jmp stop
  stop:
    addi r4, r0, 1
  )");
  Machine m(p);
  bool denied = false;
  while (!m.halted() && m.cycle() < 200) {
    const StepInfo info = m.step();
    if (info.fetch_denied) {
      EXPECT_TRUE(info.mpu_viol);
      denied = true;
      break;
    }
  }
  EXPECT_TRUE(denied);
}

}  // namespace
}  // namespace fav::rtl
