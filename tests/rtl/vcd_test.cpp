#include "rtl/vcd.h"

#include <gtest/gtest.h>

#include <sstream>

#include "rtl/assembler.h"
#include "rtl/machine.h"

namespace fav::rtl {
namespace {

TEST(VcdWriter, HeaderDeclaresEveryField) {
  std::ostringstream os;
  VcdWriter vcd(os);
  vcd.sample(0, ArchState{});
  const std::string out = os.str();
  EXPECT_NE(out.find("$timescale"), std::string::npos);
  EXPECT_NE(out.find("$scope module mcu16 $end"), std::string::npos);
  for (const auto& f : RegisterMap::mcu16().fields()) {
    EXPECT_NE(out.find(" " + f.name + " $end"), std::string::npos) << f.name;
  }
  EXPECT_NE(out.find("$enddefinitions $end"), std::string::npos);
}

TEST(VcdWriter, FirstSampleDumpsEverything) {
  std::ostringstream os;
  VcdWriter vcd(os);
  ArchState s;
  s.pc = 0x1234;
  vcd.sample(0, s);
  const std::string out = os.str();
  EXPECT_NE(out.find("#0\n"), std::string::npos);
  EXPECT_NE(out.find("b0001001000110100 "), std::string::npos);  // pc value
  EXPECT_EQ(vcd.samples_written(), 1u);
}

TEST(VcdWriter, OnlyChangesEmittedLater) {
  std::ostringstream os;
  VcdWriter vcd(os);
  ArchState s;
  vcd.sample(0, s);
  const std::size_t after_first = os.str().size();
  vcd.sample(1, s);  // nothing changed: just the timestamp
  const std::string tail = os.str().substr(after_first);
  EXPECT_EQ(tail, "#1\n");

  s.regs[3] = 0x00FF;
  vcd.sample(2, s);
  const std::string out = os.str();
  EXPECT_NE(out.find("#2\nb0000000011111111 "), std::string::npos);
}

TEST(VcdWriter, TracesAProgramRun) {
  const Program p = assemble(R"(
    addi r1, r0, 3
    addi r2, r0, 4
    add r3, r1, r2
    halt
  )");
  Machine m(p);
  std::ostringstream os;
  VcdWriter vcd(os);
  while (!m.halted()) {
    vcd.sample(m.cycle(), m.state());
    m.step();
  }
  vcd.sample(m.cycle(), m.state());
  EXPECT_EQ(vcd.samples_written(), 5u);
  // r3 = 7 appears in the trace.
  EXPECT_NE(os.str().find("b0000000000000111 "), std::string::npos);
}

}  // namespace
}  // namespace fav::rtl
