#include "rtl/registers.h"

#include <gtest/gtest.h>

#include "util/check.h"
#include "util/rng.h"

namespace fav::rtl {
namespace {

TEST(RegisterMap, TotalBits) {
  const RegisterMap& map = RegisterMap::mcu16();
  // pc(16) + 8x16 + 4x(16+16+4) + enable(1) + instr_check(1) + sticky(1) +
  // viol_addr(16) + halted(1) + dma(16+16+16+1) = 357.
  EXPECT_EQ(map.total_bits(), 357);
}

TEST(RegisterMap, FieldLookupByName) {
  const RegisterMap& map = RegisterMap::mcu16();
  EXPECT_EQ(map.field(map.field_index("pc")).width, 16);
  EXPECT_EQ(map.field(map.field_index("mpu2_perm")).width, kPermBits);
  EXPECT_EQ(map.field(map.field_index("halted")).width, 1);
  EXPECT_THROW(map.field_index("bogus"), CheckError);
}

TEST(RegisterMap, OffsetsAreContiguous) {
  const RegisterMap& map = RegisterMap::mcu16();
  int expected = 0;
  for (const auto& f : map.fields()) {
    EXPECT_EQ(f.offset, expected) << f.name;
    expected += f.width;
  }
  EXPECT_EQ(expected, map.total_bits());
}

TEST(RegisterMap, ConfigLikeFlags) {
  const RegisterMap& map = RegisterMap::mcu16();
  EXPECT_FALSE(map.field(map.field_index("pc")).config_like);
  EXPECT_FALSE(map.field(map.field_index("r3")).config_like);
  EXPECT_TRUE(map.field(map.field_index("mpu0_base")).config_like);
  EXPECT_TRUE(map.field(map.field_index("viol_addr")).config_like);
  EXPECT_FALSE(map.field(map.field_index("halted")).config_like);
}

TEST(RegisterMap, GetSetField) {
  const RegisterMap& map = RegisterMap::mcu16();
  ArchState s;
  map.set_field(s, map.field_index("r5"), 0xABCD);
  EXPECT_EQ(s.regs[5], 0xABCD);
  EXPECT_EQ(map.get_field(s, map.field_index("r5")), 0xABCDu);

  map.set_field(s, map.field_index("mpu1_limit"), 0x4FFF);
  EXPECT_EQ(s.mpu[1].limit, 0x4FFF);

  map.set_field(s, map.field_index("mpu3_perm"), 0xFF);  // masked to width
  EXPECT_EQ(s.mpu[3].perm, 15);

  map.set_field(s, map.field_index("halted"), 1);
  EXPECT_TRUE(s.halted);
  map.set_field(s, map.field_index("viol_sticky"), 1);
  EXPECT_TRUE(s.viol_sticky);
  map.set_field(s, map.field_index("mpu_enable"), 1);
  EXPECT_TRUE(s.mpu_enable);
  map.set_field(s, map.field_index("instr_check"), 1);
  EXPECT_TRUE(s.instr_check);
}

TEST(RegisterMap, LocateRoundTrip) {
  const RegisterMap& map = RegisterMap::mcu16();
  for (int bit = 0; bit < map.total_bits(); ++bit) {
    const auto [fi, b] = map.locate(bit);
    EXPECT_EQ(map.field(fi).offset + b, bit);
    EXPECT_LT(b, map.field(fi).width);
  }
  EXPECT_THROW(map.locate(-1), CheckError);
  EXPECT_THROW(map.locate(map.total_bits()), CheckError);
}

TEST(RegisterMap, BitAccess) {
  const RegisterMap& map = RegisterMap::mcu16();
  ArchState s;
  const int pc_bit3 = map.field(map.field_index("pc")).offset + 3;
  map.set_bit(s, pc_bit3, true);
  EXPECT_EQ(s.pc, 8);
  EXPECT_TRUE(map.get_bit(s, pc_bit3));
  map.flip_bit(s, pc_bit3);
  EXPECT_EQ(s.pc, 0);
}

TEST(RegisterMap, PackUnpackRoundTrip) {
  const RegisterMap& map = RegisterMap::mcu16();
  fav::Rng rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    ArchState s;
    for (int fi = 0; fi < static_cast<int>(map.fields().size()); ++fi) {
      map.set_field(s, fi, static_cast<std::uint32_t>(rng.next()));
    }
    const BitVector bits = map.pack(s);
    EXPECT_EQ(bits.size(), static_cast<std::size_t>(map.total_bits()));
    const ArchState back = map.unpack(bits);
    EXPECT_EQ(back, s);
  }
}

TEST(RegisterMap, PackDiffersAfterSingleFlip) {
  const RegisterMap& map = RegisterMap::mcu16();
  ArchState a, b;
  map.flip_bit(b, 100);
  const BitVector pa = map.pack(a);
  const BitVector pb = map.pack(b);
  EXPECT_EQ((pa ^ pb).count(), 1u);
  EXPECT_TRUE((pa ^ pb).get(100));
}

TEST(RegisterMap, UnpackWrongSizeThrows) {
  EXPECT_THROW(RegisterMap::mcu16().unpack(BitVector(10)), CheckError);
}

}  // namespace
}  // namespace fav::rtl
