#include "rtl/machine.h"

#include <gtest/gtest.h>

#include "rtl/assembler.h"

namespace fav::rtl {
namespace {

Program asm_prog(const std::string& src) { return assemble(src); }

// Runs a program until halt (or 10k cycles) and returns the machine.
Machine run_to_halt(const Program& prog) {
  Machine m(prog);
  m.run(10000);
  return m;
}

TEST(Machine, ResetState) {
  const Program p = asm_prog("halt\n");
  Machine m(p);
  EXPECT_EQ(m.state().pc, 0);
  EXPECT_FALSE(m.halted());
  EXPECT_FALSE(m.state().mpu_enable);
  for (auto r : m.state().regs) EXPECT_EQ(r, 0);
}

TEST(Machine, HaltStopsExecution) {
  const Program p = asm_prog(R"(
    addi r1, r0, 5
    halt
    addi r1, r0, 9
  )");
  Machine m(p);
  EXPECT_EQ(m.run(100), 2u);
  EXPECT_TRUE(m.halted());
  EXPECT_EQ(m.state().regs[1], 5);
  const auto pc = m.state().pc;
  m.step();  // no-op when halted
  EXPECT_EQ(m.state().pc, pc);
}

TEST(Machine, AluOperations) {
  const Program p = asm_prog(R"(
    addi r1, r0, 12
    addi r2, r0, 10
    add r3, r1, r2
    sub r4, r1, r2
    and r5, r1, r2
    or  r6, r1, r2
    xor r7, r1, r2
    halt
  )");
  const Machine m = run_to_halt(p);
  EXPECT_EQ(m.state().regs[3], 22);
  EXPECT_EQ(m.state().regs[4], 2);
  EXPECT_EQ(m.state().regs[5], 8);
  EXPECT_EQ(m.state().regs[6], 14);
  EXPECT_EQ(m.state().regs[7], 6);
}

TEST(Machine, SubWraps) {
  const Program p = asm_prog(R"(
    addi r1, r0, 3
    addi r2, r0, 5
    sub r3, r1, r2
    halt
  )");
  EXPECT_EQ(run_to_halt(p).state().regs[3], 0xFFFE);
}

TEST(Machine, Shifts) {
  const Program p = asm_prog(R"(
    li  r1, 0x8001
    addi r2, r0, 1
    shl r3, r1, r2
    shr r4, r1, r2
    addi r2, r0, 15
    shr r5, r1, r2
    halt
  )");
  const Machine m = run_to_halt(p);
  EXPECT_EQ(m.state().regs[3], 0x0002);
  EXPECT_EQ(m.state().regs[4], 0x4000);
  EXPECT_EQ(m.state().regs[5], 0x0001);
}

TEST(Machine, ShiftAmountMasksToFourBits) {
  const Program p = asm_prog(R"(
    addi r1, r0, 1
    addi r2, r0, 16   ; & 0xF == 0 -> no shift
    shl r3, r1, r2
    halt
  )");
  EXPECT_EQ(run_to_halt(p).state().regs[3], 1);
}

TEST(Machine, MovLuiOri) {
  const Program p = asm_prog(R"(
    li r1, 0xBEEF
    mov r2, r1
    halt
  )");
  const Machine m = run_to_halt(p);
  EXPECT_EQ(m.state().regs[1], 0xBEEF);
  EXPECT_EQ(m.state().regs[2], 0xBEEF);
}

TEST(Machine, LoadStoreRoundTrip) {
  const Program p = asm_prog(R"(
    li r1, 0x0100
    li r2, 0x1234
    sw r2, r1, 3
    lw r3, r1, 3
    halt
  )");
  const Machine m = run_to_halt(p);
  EXPECT_EQ(m.ram().read(0x0103), 0x1234);
  EXPECT_EQ(m.state().regs[3], 0x1234);
}

TEST(Machine, NegativeLoadOffset) {
  const Program p = asm_prog(R"(
    .data 0x00FE 0xCAFE
    li r1, 0x0100
    lw r2, r1, -2
    halt
  )");
  EXPECT_EQ(run_to_halt(p).state().regs[2], 0xCAFE);
}

TEST(Machine, BranchTakenAndNotTaken) {
  const Program p = asm_prog(R"(
    addi r1, r0, 3
    addi r2, r0, 3
    beq r1, r2, equal
    addi r3, r0, 1    ; skipped
  equal:
    bne r1, r2, never
    addi r4, r0, 2    ; executed
  never:
    halt
  )");
  const Machine m = run_to_halt(p);
  EXPECT_EQ(m.state().regs[3], 0);
  EXPECT_EQ(m.state().regs[4], 2);
}

TEST(Machine, LoopViaBackwardBranch) {
  // Sum 1..5 with a bne loop.
  const Program p = asm_prog(R"(
    addi r1, r0, 5    ; counter
    addi r2, r0, 0    ; sum
  loop:
    add r2, r2, r1
    addi r1, r1, -1
    bne r1, r0, loop
    halt
  )");
  EXPECT_EQ(run_to_halt(p).state().regs[2], 15);
}

TEST(Machine, JmpAbsolute) {
  const Program p = asm_prog(R"(
    jmp target
    addi r1, r0, 1
  target:
    addi r2, r0, 2
    halt
  )");
  const Machine m = run_to_halt(p);
  EXPECT_EQ(m.state().regs[1], 0);
  EXPECT_EQ(m.state().regs[2], 2);
}

TEST(Machine, RamInitApplied) {
  const Program p = asm_prog(R"(
    .data 0x0200 0xABCD
    li r1, 0x0200
    lw r2, r1, 0
    halt
  )");
  EXPECT_EQ(run_to_halt(p).state().regs[2], 0xABCD);
}

TEST(Machine, FetchBeyondRomIsNop) {
  const Program p = asm_prog("addi r1, r0, 1\n");  // no halt: falls off ROM
  Machine m(p);
  EXPECT_EQ(m.run(10), 10u);  // keeps executing NOPs
  EXPECT_EQ(m.state().regs[1], 1);
  EXPECT_EQ(m.state().pc, 10);
}

TEST(Machine, StepInfoReportsMemoryTraffic) {
  const Program p = asm_prog(R"(
    li r1, 0x0100
    li r2, 0x00AA
    sw r2, r1, 0
    lw r3, r1, 0
    halt
  )");
  Machine m(p);
  m.step();
  m.step();
  m.step();
  m.step();  // li expands to two instrs; this is the sw
  StepInfo sw_info = m.step();
  EXPECT_TRUE(sw_info.mem_write);
  EXPECT_TRUE(sw_info.mem_write_done);
  EXPECT_EQ(sw_info.mem_addr, 0x0100);
  EXPECT_EQ(sw_info.mem_wdata, 0x00AA);
  StepInfo lw_info = m.step();
  EXPECT_TRUE(lw_info.mem_read);
  EXPECT_EQ(lw_info.mem_rdata, 0x00AA);
}

// --- MPU behaviour ---------------------------------------------------------

constexpr const char* kMpuSetup = R"(
    ; region 0: [0x0000, 0x3FFF] read+write+enable
    li r1, 0xFF00
    li r2, 0x0000
    sw r2, r1, 0
    li r2, 0x3FFF
    sw r2, r1, 1
    li r2, 7
    sw r2, r1, 2
    ; region 1: [0x4000, 0x4FFF] read-only, enabled
    li r1, 0xFF08
    li r2, 0x4000
    sw r2, r1, 0
    li r2, 0x4FFF
    sw r2, r1, 1
    li r2, 5
    sw r2, r1, 2
    ; enable the MPU
    li r1, 0xFF22
    li r2, 1
    sw r2, r1, 0
)";

TEST(Machine, MpuDisabledAllowsEverything) {
  const Program p = asm_prog(R"(
    li r1, 0x4100
    li r2, 0xBEEF
    sw r2, r1, 0
    halt
  )");
  const Machine m = run_to_halt(p);
  EXPECT_EQ(m.ram().read(0x4100), 0xBEEF);
  EXPECT_FALSE(m.state().viol_sticky);
}

TEST(Machine, MpuAllowsPermittedAccess) {
  const Program p = asm_prog(std::string(kMpuSetup) + R"(
    li r1, 0x0100
    li r2, 0x5555
    sw r2, r1, 0
    lw r3, r1, 0
    halt
  )");
  const Machine m = run_to_halt(p);
  EXPECT_EQ(m.state().regs[3], 0x5555);
  EXPECT_FALSE(m.state().viol_sticky);
}

TEST(Machine, MpuBlocksIllegalWrite) {
  const Program p = asm_prog(std::string(kMpuSetup) + R"(
    .data 0x4100 0x1111
    li r1, 0x4100
    li r2, 0xBEEF
    sw r2, r1, 0     ; write to read-only region
    halt
  )");
  const Machine m = run_to_halt(p);
  EXPECT_EQ(m.ram().read(0x4100), 0x1111);  // squashed
  EXPECT_TRUE(m.state().viol_sticky);
  EXPECT_EQ(m.state().viol_addr, 0x4100);
}

TEST(Machine, MpuAllowsReadOfReadOnlyRegion) {
  const Program p = asm_prog(std::string(kMpuSetup) + R"(
    .data 0x4100 0x2222
    li r1, 0x4100
    lw r3, r1, 0
    halt
  )");
  const Machine m = run_to_halt(p);
  EXPECT_EQ(m.state().regs[3], 0x2222);
  EXPECT_FALSE(m.state().viol_sticky);
}

TEST(Machine, MpuBlocksReadOutsideAllRegions) {
  const Program p = asm_prog(std::string(kMpuSetup) + R"(
    .data 0x9000 0x7777
    li r1, 0x9000
    lw r3, r1, 0
    halt
  )");
  const Machine m = run_to_halt(p);
  EXPECT_EQ(m.state().regs[3], 0);  // squashed load reads 0
  EXPECT_TRUE(m.state().viol_sticky);
  EXPECT_EQ(m.state().viol_addr, 0x9000);
}

TEST(Machine, ViolAddrLatchesFirstViolationOnly) {
  const Program p = asm_prog(std::string(kMpuSetup) + R"(
    li r1, 0x9000
    lw r3, r1, 0     ; first violation at 0x9000
    li r1, 0xA000
    lw r3, r1, 0     ; second violation ignored by viol_addr
    halt
  )");
  const Machine m = run_to_halt(p);
  EXPECT_TRUE(m.state().viol_sticky);
  EXPECT_EQ(m.state().viol_addr, 0x9000);
}

TEST(Machine, ViolFlagClearedByDeviceWrite) {
  const Program p = asm_prog(std::string(kMpuSetup) + R"(
    li r1, 0x9000
    lw r3, r1, 0      ; violation
    li r1, 0xFF20
    sw r0, r1, 0      ; clear sticky flag
    lw r4, r1, 0      ; read flag back
    halt
  )");
  const Machine m = run_to_halt(p);
  EXPECT_FALSE(m.state().viol_sticky);
  EXPECT_EQ(m.state().regs[4], 0);
}

TEST(Machine, DeviceReadbackOfMpuConfig) {
  const Program p = asm_prog(std::string(kMpuSetup) + R"(
    li r1, 0xFF08
    lw r2, r1, 0     ; region1 base
    lw r3, r1, 1     ; region1 limit
    lw r4, r1, 2     ; region1 perm
    li r1, 0xFF22
    lw r5, r1, 0     ; enable bit
    halt
  )");
  const Machine m = run_to_halt(p);
  EXPECT_EQ(m.state().regs[2], 0x4000);
  EXPECT_EQ(m.state().regs[3], 0x4FFF);
  EXPECT_EQ(m.state().regs[4], 5);
  EXPECT_EQ(m.state().regs[5], 1);
}

TEST(Machine, DeviceAccessNeverChecked) {
  // MPU enabled with no region covering the device page: device loads and
  // stores still work and raise no violation.
  const Program p = asm_prog(std::string(kMpuSetup) + R"(
    li r1, 0xFF08
    lw r2, r1, 2
    halt
  )");
  const Machine m = run_to_halt(p);
  EXPECT_EQ(m.state().regs[2], 5);
  EXPECT_FALSE(m.state().viol_sticky);
}

TEST(Machine, MpuViolWireReportedInStepInfo) {
  const Program p = asm_prog(std::string(kMpuSetup) + R"(
    li r1, 0x4100
    li r2, 1
    sw r2, r1, 0
    halt
  )");
  Machine m(p);
  bool saw_viol = false;
  while (!m.halted()) {
    if (m.step().mpu_viol) saw_viol = true;
  }
  EXPECT_TRUE(saw_viol);
}

TEST(Machine, MpuAllowsHelper) {
  ArchState s;
  s.mpu_enable = true;
  s.mpu[0] = {0x1000, 0x1FFF, kPermRead | kPermWrite | kPermEnable};
  s.mpu[1] = {0x2000, 0x2FFF, kPermRead | kPermEnable};
  EXPECT_TRUE(Machine::mpu_allows(s, 0x1000, true));
  EXPECT_TRUE(Machine::mpu_allows(s, 0x1FFF, false));
  EXPECT_FALSE(Machine::mpu_allows(s, 0x2100, true));   // read-only region
  EXPECT_TRUE(Machine::mpu_allows(s, 0x2100, false));
  EXPECT_FALSE(Machine::mpu_allows(s, 0x3000, false));  // uncovered
  EXPECT_TRUE(Machine::mpu_allows(s, 0xFF00, true));    // device page
  // Disabled region never grants.
  s.mpu[1].perm = kPermRead;
  EXPECT_FALSE(Machine::mpu_allows(s, 0x2100, false));
  // MPU off grants everything.
  s.mpu_enable = false;
  EXPECT_TRUE(Machine::mpu_allows(s, 0x3000, true));
}

TEST(Machine, ResetRestoresInitialRam) {
  const Program p = asm_prog(R"(
    .data 0x0100 0x00AA
    li r1, 0x0100
    li r2, 0x00BB
    sw r2, r1, 0
    halt
  )");
  Machine m(p);
  m.run(1000);
  EXPECT_EQ(m.ram().read(0x0100), 0x00BB);
  m.reset();
  EXPECT_EQ(m.ram().read(0x0100), 0x00AA);
  EXPECT_EQ(m.state().pc, 0);
  EXPECT_EQ(m.cycle(), 0u);
}

}  // namespace
}  // namespace fav::rtl
