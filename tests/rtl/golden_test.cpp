#include "rtl/golden.h"

#include <gtest/gtest.h>

#include "rtl/assembler.h"
#include "util/check.h"

namespace fav::rtl {
namespace {

Program loop_program() {
  return assemble(R"(
    addi r1, r0, 20   ; counter
    li r6, 0x0100     ; legal scratch base
  loop:
    sw r1, r6, 0
    lw r2, r6, 0
    addi r1, r1, -1
    bne r1, r0, loop
    halt
  )");
}

TEST(GoldenRun, StopsAtHalt) {
  const Program p = loop_program();
  GoldenRun golden(p, 10000, 16);
  Machine ref(p);
  ref.run(10000);
  EXPECT_TRUE(ref.halted());
  EXPECT_EQ(golden.length(), ref.cycle());
  EXPECT_EQ(golden.final_state(), ref.state());
  EXPECT_TRUE(golden.final_ram() == ref.ram());
}

TEST(GoldenRun, RespectsMaxCycles) {
  const Program p = assemble("loop: jmp loop\n");
  GoldenRun golden(p, 50, 16);
  EXPECT_EQ(golden.length(), 50u);
  EXPECT_FALSE(golden.final_state().halted);
}

TEST(GoldenRun, StateTrajectoryMatchesStepping) {
  const Program p = loop_program();
  GoldenRun golden(p, 10000, 16);
  Machine m(p);
  const RegisterMap& map = Machine::reg_map();
  for (std::uint64_t c = 0; c <= golden.length(); ++c) {
    EXPECT_EQ(golden.state_bits_at(c), map.pack(m.state())) << "cycle " << c;
    if (c < golden.length()) m.step();
  }
  EXPECT_THROW(golden.state_bits_at(golden.length() + 1), CheckError);
}

TEST(GoldenRun, CheckpointSpacing) {
  const Program p = loop_program();
  GoldenRun golden(p, 10000, 8);
  const auto& cps = golden.checkpoints();
  ASSERT_GE(cps.size(), 2u);
  EXPECT_EQ(cps[0].cycle, 0u);
  for (std::size_t i = 1; i < cps.size(); ++i) {
    EXPECT_EQ(cps[i].cycle, i * 8);
  }
}

TEST(GoldenRun, NearestCheckpoint) {
  const Program p = loop_program();
  GoldenRun golden(p, 10000, 8);
  EXPECT_EQ(golden.nearest_checkpoint(0).cycle, 0u);
  EXPECT_EQ(golden.nearest_checkpoint(7).cycle, 0u);
  EXPECT_EQ(golden.nearest_checkpoint(8).cycle, 8u);
  EXPECT_EQ(golden.nearest_checkpoint(23).cycle, 16u);
}

TEST(GoldenRun, RestoreMatchesDirectSimulation) {
  const Program p = loop_program();
  GoldenRun golden(p, 10000, 8);
  for (std::uint64_t target :
       std::vector<std::uint64_t>{0, 5, 8, 13, golden.length()}) {
    std::uint64_t warmup = 999;
    Machine restored = golden.restore(target, &warmup);
    EXPECT_LE(warmup, 8u);
    EXPECT_EQ(restored.cycle(), target);

    Machine direct(p);
    for (std::uint64_t i = 0; i < target; ++i) direct.step();
    EXPECT_EQ(restored.state(), direct.state()) << "cycle " << target;
    EXPECT_TRUE(restored.ram() == direct.ram()) << "cycle " << target;
  }
}

TEST(GoldenRun, RestoredMachineContinuesIdentically) {
  const Program p = loop_program();
  GoldenRun golden(p, 10000, 8);
  Machine restored = golden.restore(10);
  restored.run(100000);
  EXPECT_EQ(restored.state(), golden.final_state());
  EXPECT_TRUE(restored.ram() == golden.final_ram());
}

TEST(GoldenRun, NoViolationInCleanRun) {
  const Program p = loop_program();
  GoldenRun golden(p, 10000, 8);
  EXPECT_FALSE(golden.first_violation_cycle().has_value());
  for (std::uint64_t c = 0; c < golden.length(); ++c) {
    EXPECT_FALSE(golden.viol_at(c));
  }
}

TEST(GoldenRun, ViolationCycleLocated) {
  const Program p = assemble(R"(
    ; enable MPU with a single region that does NOT cover 0x9000
    li r1, 0xFF00
    li r2, 0x0000
    sw r2, r1, 0
    li r2, 0x3FFF
    sw r2, r1, 1
    li r2, 7
    sw r2, r1, 2
    li r1, 0xFF22
    li r2, 1
    sw r2, r1, 0
    li r1, 0x9000
    lw r3, r1, 0     ; violation here
    halt
  )");
  GoldenRun golden(p, 1000, 16);
  const auto tt = golden.first_violation_cycle();
  ASSERT_TRUE(tt.has_value());
  EXPECT_TRUE(golden.viol_at(*tt));
  // Straight-line code: cycle == rom index. The violating lw sits after
  // 6 li pseudo-ops (12 words) and 4 sw + 2 li words = rom[18].
  EXPECT_EQ(*tt, 18u);
  EXPECT_TRUE(golden.final_state().viol_sticky);
}

}  // namespace
}  // namespace fav::rtl
