#include "rtl/assembler.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace fav::rtl {
namespace {

TEST(Assembler, EmptyAndComments) {
  const Program p = assemble("; nothing\n  # also nothing\n\n");
  EXPECT_TRUE(p.rom.empty());
  EXPECT_TRUE(p.ram_init.empty());
}

TEST(Assembler, EncodesEveryMnemonic) {
  const Program p = assemble(R"(
    add r1, r2, r3
    sub r1, r2, r3
    and r1, r2, r3
    or  r1, r2, r3
    xor r1, r2, r3
    shl r1, r2, r3
    shr r1, r2, r3
    mov r1, r2
    addi r1, r2, -5
    lui r1, 0x12
    ori r1, 0x34
    lw r1, r2, 1
    sw r1, r2, 1
    beq r1, r2, 0
    bne r1, r2, 0
    jmp 0
    halt
    nop
  )");
  ASSERT_EQ(p.rom.size(), 18u);
  EXPECT_EQ(Instr{p.rom[0]}.funct(), AluFunct::kAdd);
  EXPECT_EQ(Instr{p.rom[7]}.funct(), AluFunct::kMov);
  EXPECT_EQ(Instr{p.rom[8]}.imm6(), -5);
  EXPECT_EQ(Instr{p.rom[9]}.imm8(), 0x12);
  EXPECT_EQ(Instr{p.rom[16]}.opcode(), Opcode::kHalt);
  EXPECT_EQ(Instr{p.rom[17]}.opcode(), Opcode::kNop);
}

TEST(Assembler, LiExpandsToTwoWords) {
  const Program p = assemble("li r3, 0xBEEF\n");
  ASSERT_EQ(p.rom.size(), 2u);
  EXPECT_EQ(Instr{p.rom[0]}.opcode(), Opcode::kLui);
  EXPECT_EQ(Instr{p.rom[0]}.imm8(), 0xBE);
  EXPECT_EQ(Instr{p.rom[1]}.opcode(), Opcode::kOri);
  EXPECT_EQ(Instr{p.rom[1]}.imm8(), 0xEF);
}

TEST(Assembler, LabelsResolveForwardAndBackward) {
  const Program p = assemble(R"(
  back:
    nop
    beq r0, r0, fwd
    bne r0, r1, back
  fwd:
    halt
  )");
  ASSERT_EQ(p.rom.size(), 4u);
  EXPECT_EQ(Instr{p.rom[1]}.imm6(), 2);   // 3 - 1
  EXPECT_EQ(Instr{p.rom[2]}.imm6(), -2);  // 0 - 2
}

TEST(Assembler, LabelAccountsForLiExpansion) {
  const Program p = assemble(R"(
    li r1, 0x1234
  target:
    beq r0, r0, target
  )");
  ASSERT_EQ(p.rom.size(), 3u);
  EXPECT_EQ(Instr{p.rom[2]}.imm6(), 0);
}

TEST(Assembler, JmpToLabel) {
  const Program p = assemble(R"(
    nop
    jmp end
    nop
  end:
    halt
  )");
  EXPECT_EQ(Instr{p.rom[1]}.opcode(), Opcode::kJmp);
  EXPECT_EQ(Instr{p.rom[1]}.imm12(), 3);
}

TEST(Assembler, DataDirective) {
  const Program p = assemble(".data 0x4100 0xBEEF\n.data 16 255\n");
  ASSERT_EQ(p.ram_init.size(), 2u);
  EXPECT_EQ(p.ram_init[0].first, 0x4100);
  EXPECT_EQ(p.ram_init[0].second, 0xBEEF);
  EXPECT_EQ(p.ram_init[1].first, 16);
  EXPECT_EQ(p.ram_init[1].second, 255);
}

TEST(Assembler, LabelOnSameLineAsInstr) {
  const Program p = assemble("start: nop\n jmp start\n");
  ASSERT_EQ(p.rom.size(), 2u);
  EXPECT_EQ(Instr{p.rom[1]}.imm12(), 0);
}

TEST(Assembler, Errors) {
  EXPECT_THROW(assemble("frobnicate r1\n"), CheckError);
  EXPECT_THROW(assemble("add r1, r2\n"), CheckError);          // missing operand
  EXPECT_THROW(assemble("add r1, r2, r8\n"), CheckError);      // bad register
  EXPECT_THROW(assemble("addi r1, r2, 32\n"), CheckError);     // imm6 range
  EXPECT_THROW(assemble("addi r1, r2, -33\n"), CheckError);
  EXPECT_THROW(assemble("lui r1, 256\n"), CheckError);         // imm8 range
  EXPECT_THROW(assemble("jmp nowhere\n"), CheckError);         // undefined label
  EXPECT_THROW(assemble("x: nop\nx: nop\n"), CheckError);      // duplicate label
  EXPECT_THROW(assemble(".data 0x10000 0\n"), CheckError);     // addr range
  EXPECT_THROW(assemble("beq r0, r1, far\n" + std::string(40, 'n') +
                        "op\nfar: halt\n"),
               CheckError);  // mangled source still errors cleanly
}

TEST(Assembler, ErrorMessageIncludesLineNumber) {
  try {
    assemble("nop\nbadop r1\n");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Assembler, BranchOffsetOutOfRangeThrows) {
  std::string src = "beq r0, r0, far\n";
  for (int i = 0; i < 40; ++i) src += "nop\n";
  src += "far: halt\n";
  EXPECT_THROW(assemble(src), CheckError);
}

}  // namespace
}  // namespace fav::rtl
