#include "rtl/isa.h"

#include <gtest/gtest.h>

namespace fav::rtl {
namespace {

TEST(Isa, EncodeDecodeAlu) {
  const Instr i{encode_alu(AluFunct::kXor, 3, 5, 7)};
  EXPECT_EQ(i.opcode(), Opcode::kAlu);
  EXPECT_EQ(i.funct(), AluFunct::kXor);
  EXPECT_EQ(i.rd(), 3);
  EXPECT_EQ(i.ra(), 5);
  EXPECT_EQ(i.rb(), 7);
}

TEST(Isa, EncodeDecodeImm6Positive) {
  const Instr i{encode_imm6(Opcode::kAddi, 1, 2, 31)};
  EXPECT_EQ(i.opcode(), Opcode::kAddi);
  EXPECT_EQ(i.rd(), 1);
  EXPECT_EQ(i.ra(), 2);
  EXPECT_EQ(i.imm6(), 31);
}

TEST(Isa, EncodeDecodeImm6Negative) {
  const Instr i{encode_imm6(Opcode::kAddi, 1, 2, -32)};
  EXPECT_EQ(i.imm6(), -32);
  const Instr j{encode_imm6(Opcode::kBeq, 0, 0, -1)};
  EXPECT_EQ(j.imm6(), -1);
}

TEST(Isa, EncodeDecodeImm8) {
  const Instr i{encode_imm8(Opcode::kLui, 6, 0xAB)};
  EXPECT_EQ(i.opcode(), Opcode::kLui);
  EXPECT_EQ(i.rd(), 6);
  EXPECT_EQ(i.imm8(), 0xAB);
}

TEST(Isa, EncodeDecodeJmp) {
  const Instr i{encode_jmp(0xABC)};
  EXPECT_EQ(i.opcode(), Opcode::kJmp);
  EXPECT_EQ(i.imm12(), 0xABC);
}

TEST(Isa, UndefinedOpcodesDecodeAsNop) {
  for (int op = 0xB; op <= 0xF; ++op) {
    const Instr i{static_cast<std::uint16_t>(op << 12)};
    EXPECT_EQ(i.opcode(), Opcode::kNop) << op;
  }
}

TEST(Isa, DisassembleRoundTripSpotChecks) {
  EXPECT_EQ(disassemble(Instr{encode_alu(AluFunct::kAdd, 1, 2, 3)}),
            "add r1, r2, r3");
  EXPECT_EQ(disassemble(Instr{encode_alu(AluFunct::kMov, 1, 2, 0)}),
            "mov r1, r2");
  EXPECT_EQ(disassemble(Instr{encode_imm6(Opcode::kLw, 4, 5, -2)}),
            "lw r4, r5, -2");
  EXPECT_EQ(disassemble(Instr{encode_halt()}), "halt");
  EXPECT_EQ(disassemble(Instr{encode_nop()}), "nop");
  EXPECT_EQ(disassemble(Instr{encode_jmp(7)}), "jmp 7");
}

}  // namespace
}  // namespace fav::rtl
