// Crash-safety tests for the campaign journal: round-trip serialization,
// kill-and-resume bitwise identity, torn-tail tolerance and corruption
// detection (see mc/journal.h for the on-disk format).
#include "mc/journal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "mc/evaluator.h"
#include "soc/benchmark.h"

namespace fav::mc {
namespace {

namespace fs = std::filesystem;
using faultsim::FaultSample;

struct Context {
  soc::SocNetlist soc;
  layout::Placement placement{soc.netlist()};
  faultsim::InjectionSimulator injector{soc.netlist()};
  soc::SecurityBenchmark bench = soc::make_illegal_write_benchmark();
  rtl::GoldenRun golden{bench.program, bench.max_cycles, 32};
  rtl::Program workload = soc::make_synthetic_workload();
  rtl::GoldenRun synth_golden{workload, 400, 32};
  precharac::RegisterCharacterization charac;
  SsfEvaluator evaluator;

  Context()
      : charac(synth_golden,
               [] {
                 precharac::CharacterizationConfig cfg;
                 cfg.stride = 23;
                 return cfg;
               }()),
        evaluator(soc, placement, injector, bench, golden, &charac) {}
};

Context& ctx() {
  static Context c;
  return c;
}

faultsim::AttackModel test_attack() {
  faultsim::AttackModel attack;
  attack.t_min = 0;
  attack.t_max = 19;
  attack.candidate_centers = ctx().placement.placed_nodes();
  return attack;
}

/// Fresh per-test journal directory under the gtest temp root.
std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("fav_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

fs::path journal_file(const std::string& dir) {
  return fs::path(dir) / "campaign.fj";
}

SampleRecord make_record(int i) {
  SampleRecord rec;
  rec.sample.technique = i % 2 == 0 ? faultsim::TechniqueKind::kRadiation
                                    : faultsim::TechniqueKind::kClockGlitch;
  rec.sample.t = 3 + i;
  rec.sample.center = static_cast<netlist::NodeId>(17 * i + 1);
  rec.sample.radius = 1.25 + 0.5 * i;
  rec.sample.strike_frac = 0.75;
  rec.sample.depth = 0.35 + 0.05 * i;
  rec.sample.impact_cycles = 1 + (i % 3);
  rec.sample.weight = 0.5 + i;
  rec.te = 100 + static_cast<std::uint64_t>(i);
  rec.flipped_bits = {i, i + 7, i + 30};
  rec.path = i % 2 == 0 ? OutcomePath::kRtl : OutcomePath::kFailed;
  rec.success = (i % 2 == 0);
  rec.contribution = 0.125 * i;
  rec.fail_code = i % 2 == 0 ? ErrorCode::kOk : ErrorCode::kCycleBudgetExceeded;
  rec.fail_reason = i % 2 == 0 ? "" : "budget exhausted at cycle 42";
  rec.retried = (i % 3 == 0);
  return rec;
}

void expect_record_eq(const SampleRecord& a, const SampleRecord& b) {
  EXPECT_EQ(a.sample.technique, b.sample.technique);
  EXPECT_EQ(a.sample.t, b.sample.t);
  EXPECT_EQ(a.sample.center, b.sample.center);
  EXPECT_EQ(a.sample.radius, b.sample.radius);
  EXPECT_EQ(a.sample.strike_frac, b.sample.strike_frac);
  EXPECT_EQ(a.sample.depth, b.sample.depth);
  EXPECT_EQ(a.sample.impact_cycles, b.sample.impact_cycles);
  EXPECT_EQ(a.sample.weight, b.sample.weight);
  EXPECT_EQ(a.te, b.te);
  EXPECT_EQ(a.flipped_bits, b.flipped_bits);
  EXPECT_EQ(a.path, b.path);
  EXPECT_EQ(a.success, b.success);
  EXPECT_EQ(a.contribution, b.contribution);  // bitwise double equality
  EXPECT_EQ(a.fail_code, b.fail_code);
  EXPECT_EQ(a.fail_reason, b.fail_reason);
  EXPECT_EQ(a.retried, b.retried);
}

TEST(JournalSerialization, RecordRoundTrip) {
  for (int i = 0; i < 6; ++i) {
    const SampleRecord rec = make_record(i);
    std::string buf;
    serialize_record(rec, buf);
    SampleRecord back;
    std::size_t offset = 0;
    ASSERT_TRUE(deserialize_record(buf, &offset, &back)) << "record " << i;
    EXPECT_EQ(offset, buf.size());
    expect_record_eq(rec, back);
  }
}

TEST(JournalSerialization, ConcatenatedRecordsRoundTrip) {
  std::string buf;
  for (int i = 0; i < 5; ++i) serialize_record(make_record(i), buf);
  std::size_t offset = 0;
  for (int i = 0; i < 5; ++i) {
    SampleRecord back;
    ASSERT_TRUE(deserialize_record(buf, &offset, &back)) << "record " << i;
    expect_record_eq(make_record(i), back);
  }
  EXPECT_EQ(offset, buf.size());
}

TEST(JournalSerialization, TruncatedRecordIsRejected) {
  std::string buf;
  serialize_record(make_record(2), buf);
  for (const std::size_t keep : {buf.size() - 1, buf.size() / 2, 3ul, 0ul}) {
    const std::string cut = buf.substr(0, keep);
    SampleRecord back;
    std::size_t offset = 0;
    EXPECT_FALSE(deserialize_record(cut, &offset, &back)) << "keep=" << keep;
  }
}

TEST(JournalWriter, WriteReadRoundTrip) {
  const std::string dir = fresh_dir("roundtrip");
  JournalMeta meta;
  meta.fingerprint = 0xDEADBEEFCAFEF00Dull;
  meta.total_samples = 7;
  meta.context = "write/importance";
  std::vector<SampleRecord> recs;
  for (int i = 0; i < 7; ++i) recs.push_back(make_record(i));
  {
    JournalWriter w;
    ASSERT_TRUE(w.open_fresh(dir, meta).is_ok());
    ASSERT_TRUE(w.append_shard(0, recs.data(), 4).is_ok());
    ASSERT_TRUE(w.append_shard(4, recs.data() + 4, 3).is_ok());
  }
  Result<JournalContents> read = read_journal(dir);
  ASSERT_TRUE(read.is_ok()) << read.status().to_string();
  const JournalContents& j = read.value();
  EXPECT_EQ(j.meta.fingerprint, meta.fingerprint);
  EXPECT_EQ(j.meta.total_samples, meta.total_samples);
  EXPECT_EQ(j.meta.context, meta.context);
  ASSERT_EQ(j.records.size(), 7u);
  for (int i = 0; i < 7; ++i) expect_record_eq(j.records[i], recs[i]);
}

TEST(JournalWriter, AppendAfterReopen) {
  const std::string dir = fresh_dir("reopen");
  JournalMeta meta;
  meta.fingerprint = 1;
  meta.total_samples = 4;
  std::vector<SampleRecord> recs;
  for (int i = 0; i < 4; ++i) recs.push_back(make_record(i));
  {
    JournalWriter w;
    ASSERT_TRUE(w.open_fresh(dir, meta).is_ok());
    ASSERT_TRUE(w.append_shard(0, recs.data(), 2).is_ok());
  }
  {
    Result<JournalContents> sofar = read_journal(dir);
    ASSERT_TRUE(sofar.is_ok());
    JournalWriter w;
    ASSERT_TRUE(w.open_append(dir, sofar.value().valid_bytes).is_ok());
    ASSERT_TRUE(w.append_shard(2, recs.data() + 2, 2).is_ok());
  }
  Result<JournalContents> read = read_journal(dir);
  ASSERT_TRUE(read.is_ok()) << read.status().to_string();
  ASSERT_EQ(read.value().records.size(), 4u);
  for (int i = 0; i < 4; ++i) expect_record_eq(read.value().records[i], recs[i]);
}

TEST(JournalWriter, DirectoryIsFsyncedOnCreateAndTruncate) {
  // Regression: the writer fsynced the shard file's contents but never the
  // parent directory, so after a power loss the fully-synced file could
  // simply not exist in the directory (POSIX requires an explicit fsync of
  // the directory fd to persist the new directory entry). The instrumented
  // writer counts its directory fsyncs; both open paths must issue one.
  const std::string dir = fresh_dir("dirsync");
  JournalMeta meta;
  meta.fingerprint = 7;
  meta.total_samples = 4;
  std::vector<SampleRecord> recs;
  for (int i = 0; i < 4; ++i) recs.push_back(make_record(i));
  {
    MetricsSink m;
    JournalWriter w;
    w.set_metrics(&m);
    ASSERT_TRUE(w.open_fresh(dir, meta).is_ok());
    EXPECT_GE(m.counter("journal.dir_fsyncs"), 1u)
        << "open_fresh creates campaign.fj but never persisted its directory "
           "entry";
    ASSERT_TRUE(w.append_shard(0, recs.data(), 2).is_ok());
  }
  {
    Result<JournalContents> sofar = read_journal(dir);
    ASSERT_TRUE(sofar.is_ok());
    MetricsSink m;
    JournalWriter w;
    w.set_metrics(&m);
    ASSERT_TRUE(w.open_append(dir, sofar.value().valid_bytes).is_ok());
    EXPECT_GE(m.counter("journal.dir_fsyncs"), 1u)
        << "open_append may truncate a torn tail; the resulting size change "
           "must be made durable the same way";
    ASSERT_TRUE(w.append_shard(2, recs.data() + 2, 2).is_ok());
    EXPECT_GE(m.counter("journal.commits"), 1u);
    EXPECT_GT(m.counter("journal.bytes_written"), 0u);
  }
  Result<JournalContents> read = read_journal(dir);
  ASSERT_TRUE(read.is_ok()) << read.status().to_string();
  ASSERT_EQ(read.value().records.size(), 4u);
}

TEST(JournalReader, MissingFileIsIoError) {
  const std::string dir = fresh_dir("missing");
  const Result<JournalContents> read = read_journal(dir);
  ASSERT_FALSE(read.is_ok());
  EXPECT_EQ(read.status().code(), ErrorCode::kJournalIoError);
}

TEST(JournalReader, TornTailIsDroppedNotFatal) {
  // A partially-written last frame is the normal SIGKILL artifact: the
  // checksummed prefix must still load, minus the torn frame.
  const std::string dir = fresh_dir("torn");
  JournalMeta meta;
  meta.fingerprint = 2;
  meta.total_samples = 6;
  std::vector<SampleRecord> recs;
  for (int i = 0; i < 6; ++i) recs.push_back(make_record(i));
  {
    JournalWriter w;
    ASSERT_TRUE(w.open_fresh(dir, meta).is_ok());
    ASSERT_TRUE(w.append_shard(0, recs.data(), 3).is_ok());
    ASSERT_TRUE(w.append_shard(3, recs.data() + 3, 3).is_ok());
  }
  // Tear the tail: chop bytes off the second frame.
  const fs::path file = journal_file(dir);
  const auto size = fs::file_size(file);
  fs::resize_file(file, size - 11);
  const Result<JournalContents> read = read_journal(dir);
  ASSERT_TRUE(read.is_ok()) << read.status().to_string();
  ASSERT_EQ(read.value().records.size(), 3u);  // only the intact first shard
  for (int i = 0; i < 3; ++i) expect_record_eq(read.value().records[i], recs[i]);
}

TEST(JournalReader, MidFileCorruptionIsDetected) {
  // Unlike a torn tail, a damaged frame followed by further data means the
  // file is corrupt, not crash-truncated: refuse to resume on it.
  const std::string dir = fresh_dir("midfile");
  JournalMeta meta;
  meta.fingerprint = 3;
  meta.total_samples = 6;
  std::vector<SampleRecord> recs;
  for (int i = 0; i < 6; ++i) recs.push_back(make_record(i));
  std::uintmax_t first_shard_end = 0;
  {
    JournalWriter w;
    ASSERT_TRUE(w.open_fresh(dir, meta).is_ok());
    ASSERT_TRUE(w.append_shard(0, recs.data(), 3).is_ok());
    first_shard_end = fs::file_size(journal_file(dir));
    ASSERT_TRUE(w.append_shard(3, recs.data() + 3, 3).is_ok());
  }
  // Flip one payload byte inside the FIRST frame (safely past its header).
  std::fstream f(journal_file(dir),
                 std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open());
  const std::streamoff target = static_cast<std::streamoff>(first_shard_end) - 20;
  f.seekg(target);
  char byte = 0;
  f.read(&byte, 1);
  byte ^= 0x5A;
  f.seekp(target);
  f.write(&byte, 1);
  f.close();
  const Result<JournalContents> read = read_journal(dir);
  ASSERT_FALSE(read.is_ok());
  EXPECT_EQ(read.status().code(), ErrorCode::kJournalCorrupt);
}

TEST(JournalReader, CorruptHeaderIsDetected) {
  const std::string dir = fresh_dir("header");
  JournalMeta meta;
  meta.fingerprint = 4;
  meta.total_samples = 2;
  {
    JournalWriter w;
    ASSERT_TRUE(w.open_fresh(dir, meta).is_ok());
  }
  std::fstream f(journal_file(dir),
                 std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(2);
  const char x = 'X';
  f.write(&x, 1);
  f.close();
  const Result<JournalContents> read = read_journal(dir);
  ASSERT_FALSE(read.is_ok());
  EXPECT_EQ(read.status().code(), ErrorCode::kJournalCorrupt);
}

void expect_bitwise_equal(const SsfResult& a, const SsfResult& b) {
  EXPECT_EQ(a.ssf(), b.ssf());
  EXPECT_EQ(a.sample_variance(), b.sample_variance());
  EXPECT_EQ(a.stats.count(), b.stats.count());
  EXPECT_EQ(a.masked, b.masked);
  EXPECT_EQ(a.analytical, b.analytical);
  EXPECT_EQ(a.rtl, b.rtl);
  EXPECT_EQ(a.successes, b.successes);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.failed_weight, b.failed_weight);
  EXPECT_EQ(a.total_weight, b.total_weight);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.bit_contribution, b.bit_contribution);
  EXPECT_EQ(a.field_contribution, b.field_contribution);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].te, b.records[i].te) << i;
    EXPECT_EQ(a.records[i].flipped_bits, b.records[i].flipped_bits) << i;
    EXPECT_EQ(a.records[i].path, b.records[i].path) << i;
    EXPECT_EQ(a.records[i].success, b.records[i].success) << i;
    EXPECT_EQ(a.records[i].contribution, b.records[i].contribution) << i;
  }
}

JournalOptions test_options(const std::string& dir, bool resume) {
  JournalOptions o;
  o.dir = dir;
  o.resume = resume;
  o.shard_size = 32;
  o.fingerprint = 0xFEEDFACE;
  o.context = "journal_test";
  return o;
}

TEST(JournaledRun, MatchesPlainRunBitwise) {
  const std::string dir = fresh_dir("plain_vs_journaled");
  const auto attack = test_attack();
  RandomSampler s1(attack), s2(attack);
  Rng r1(41), r2(41);
  const SsfResult plain = ctx().evaluator.run(s1, r1, 200);
  Result<SsfResult> journaled =
      ctx().evaluator.run_journaled(s2, r2, 200, test_options(dir, false));
  ASSERT_TRUE(journaled.is_ok()) << journaled.status().to_string();
  expect_bitwise_equal(journaled.value(), plain);
}

TEST(JournaledRun, KillAndResumeIsBitwiseIdenticalAtEveryThreadCount) {
  // The acceptance scenario: a campaign killed mid-run (simulated by
  // truncating the journal tail, exactly what SIGKILL leaves behind) and
  // resumed must reproduce the uninterrupted run bit for bit — at every
  // thread count, and regardless of the thread count of the killed run.
  const auto attack = test_attack();

  // Uninterrupted reference.
  RandomSampler ref_sampler(attack);
  Rng ref_rng(43);
  const SsfResult reference = ctx().evaluator.run(ref_sampler, ref_rng, 200);

  for (const std::size_t threads : {1u, 2u, 4u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const std::string dir =
        fresh_dir("resume_t" + std::to_string(threads));
    EvaluatorConfig cfg;
    cfg.threads = threads;
    SsfEvaluator ev(ctx().soc, ctx().placement, ctx().injector, ctx().bench,
                    ctx().golden, &ctx().charac, cfg);

    // Complete campaign, journaled — then "kill" it by tearing the journal
    // back to a prefix (drop the last frame plus a partial one).
    {
      RandomSampler sampler(attack);
      Rng rng(43);
      Result<SsfResult> full =
          ev.run_journaled(sampler, rng, 200, test_options(dir, false));
      ASSERT_TRUE(full.is_ok()) << full.status().to_string();
    }
    const fs::path file = journal_file(dir);
    fs::resize_file(file, fs::file_size(file) * 2 / 5);

    // Resume from the torn journal with a fresh sampler/rng at the same seed.
    RandomSampler sampler(attack);
    Rng rng(43);
    Result<SsfResult> resumed =
        ev.run_journaled(sampler, rng, 200, test_options(dir, true));
    ASSERT_TRUE(resumed.is_ok()) << resumed.status().to_string();
    expect_bitwise_equal(resumed.value(), reference);

    // The completed journal now replays in full: resuming again evaluates
    // nothing new and still reproduces the same result.
    RandomSampler sampler2(attack);
    Rng rng2(43);
    Result<SsfResult> replayed =
        ev.run_journaled(sampler2, rng2, 200, test_options(dir, true));
    ASSERT_TRUE(replayed.is_ok()) << replayed.status().to_string();
    expect_bitwise_equal(replayed.value(), reference);
  }
}

TEST(JournaledRun, FingerprintMismatchIsRejected) {
  const std::string dir = fresh_dir("fingerprint");
  const auto attack = test_attack();
  {
    RandomSampler sampler(attack);
    Rng rng(5);
    Result<SsfResult> full =
        ctx().evaluator.run_journaled(sampler, rng, 64, test_options(dir, false));
    ASSERT_TRUE(full.is_ok());
  }
  RandomSampler sampler(attack);
  Rng rng(5);
  JournalOptions other = test_options(dir, true);
  other.fingerprint = 0xBAD;  // different campaign identity
  const Result<SsfResult> resumed =
      ctx().evaluator.run_journaled(sampler, rng, 64, other);
  ASSERT_FALSE(resumed.is_ok());
  EXPECT_EQ(resumed.status().code(), ErrorCode::kJournalCorrupt);
}

TEST(JournaledRun, MismatchedSampleStreamIsRejected) {
  // Same fingerprint but a different rng seed: the re-drawn stream disagrees
  // with the journaled records and the cross-check must refuse to resume.
  const std::string dir = fresh_dir("stream");
  const auto attack = test_attack();
  {
    RandomSampler sampler(attack);
    Rng rng(5);
    Result<SsfResult> full =
        ctx().evaluator.run_journaled(sampler, rng, 64, test_options(dir, false));
    ASSERT_TRUE(full.is_ok());
  }
  RandomSampler sampler(attack);
  Rng rng(6);  // different stream
  const Result<SsfResult> resumed =
      ctx().evaluator.run_journaled(sampler, rng, 64, test_options(dir, true));
  ASSERT_FALSE(resumed.is_ok());
  EXPECT_EQ(resumed.status().code(), ErrorCode::kJournalCorrupt);
}

TEST(JournaledRun, EmptyDirIsInvalidArgument) {
  const auto attack = test_attack();
  RandomSampler sampler(attack);
  Rng rng(1);
  JournalOptions o;
  const Result<SsfResult> r =
      ctx().evaluator.run_journaled(sampler, rng, 8, o);
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kInvalidArgument);
}

}  // namespace
}  // namespace fav::mc
