// Clock-glitch evaluation through the technique-generic pipeline: single
// attacks, exact enumeration vs Monte Carlo, thread-count determinism,
// kill-and-resume journaling, and campaign observability — the glitch path
// must offer everything the radiation path does (see mc/glitch_evaluator.h).
#include "mc/glitch_evaluator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>

#include "soc/benchmark.h"

namespace fav::mc {
namespace {

namespace fs = std::filesystem;

struct Context {
  soc::SocNetlist soc;
  layout::Placement placement{soc.netlist()};
  faultsim::InjectionSimulator injector{soc.netlist()};
  faultsim::ClockGlitchSimulator glitch{soc.netlist()};
  soc::SecurityBenchmark bench = soc::make_illegal_write_benchmark();
  rtl::GoldenRun golden{bench.program, bench.max_cycles, 32};
  rtl::Program workload = soc::make_synthetic_workload();
  rtl::GoldenRun synth_golden{workload, 400, 32};
  precharac::RegisterCharacterization charac;
  SsfEvaluator base;
  ClockGlitchEvaluator evaluator;

  Context()
      : charac(synth_golden,
               [] {
                 precharac::CharacterizationConfig cfg;
                 cfg.stride = 23;
                 return cfg;
               }()),
        base(soc, placement, injector, bench, golden, &charac),
        evaluator(base, soc, glitch) {}
};

Context& ctx() {
  static Context c;
  return c;
}

faultsim::ClockGlitchAttackModel test_model() {
  faultsim::ClockGlitchAttackModel model;
  model.t_min = 1;
  model.t_max = 10;
  model.depths = {0.35, 0.55};
  return model;
}

/// Fresh per-test journal directory under the gtest temp root.
std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("fav_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

void expect_bitwise_equal(const SsfResult& a, const SsfResult& b) {
  EXPECT_EQ(a.ssf(), b.ssf());
  EXPECT_EQ(a.sample_variance(), b.sample_variance());
  EXPECT_EQ(a.stats.count(), b.stats.count());
  EXPECT_EQ(a.masked, b.masked);
  EXPECT_EQ(a.analytical, b.analytical);
  EXPECT_EQ(a.rtl, b.rtl);
  EXPECT_EQ(a.successes, b.successes);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.total_weight, b.total_weight);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.bit_contribution, b.bit_contribution);
  EXPECT_EQ(a.field_contribution, b.field_contribution);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].sample.t, b.records[i].sample.t) << i;
    EXPECT_EQ(a.records[i].sample.depth, b.records[i].sample.depth) << i;
    EXPECT_EQ(a.records[i].flipped_bits, b.records[i].flipped_bits) << i;
    EXPECT_EQ(a.records[i].path, b.records[i].path) << i;
    EXPECT_EQ(a.records[i].contribution, b.records[i].contribution) << i;
  }
}

TEST(ClockGlitchEvaluator, ShallowGlitchIsMasked) {
  // A barely-shortened period misses no path.
  const SampleRecord rec = ctx().evaluator.evaluate(5, 0.999);
  EXPECT_TRUE(rec.flipped_bits.empty());
  EXPECT_FALSE(rec.success);
  EXPECT_EQ(rec.path, OutcomePath::kMasked);
  EXPECT_EQ(rec.sample.technique, faultsim::TechniqueKind::kClockGlitch);
}

TEST(ClockGlitchEvaluator, DeepGlitchFlipsSomething) {
  bool any = false;
  for (int t = 1; t <= 10; ++t) {
    if (!ctx().evaluator.evaluate(t, 0.3).flipped_bits.empty()) any = true;
  }
  EXPECT_TRUE(any);
}

TEST(ClockGlitchEvaluator, DeterministicPerAttack) {
  const SampleRecord a = ctx().evaluator.evaluate(7, 0.5);
  const SampleRecord b = ctx().evaluator.evaluate(7, 0.5);
  EXPECT_EQ(a.flipped_bits, b.flipped_bits);
  EXPECT_EQ(a.success, b.success);
  EXPECT_EQ(a.te, ctx().base.target_cycle() - 7);
}

TEST(ClockGlitchEvaluator, InvalidArgumentsThrow) {
  EXPECT_THROW(ctx().evaluator.evaluate(-1, 0.5), fav::CheckError);
  EXPECT_THROW(ctx().evaluator.evaluate(1, 0.0), fav::CheckError);
  EXPECT_THROW(ctx().evaluator.evaluate(1, 1.0), fav::CheckError);
}

TEST(ClockGlitchEvaluator, ForeignTechniqueSampleIsRejected) {
  // The engine is built for the glitch technique; a radiation-tagged sample
  // must be refused instead of silently misinterpreted.
  faultsim::FaultSample radiation;  // defaults to kRadiation
  radiation.t = 3;
  radiation.radius = 1.5;
  EXPECT_THROW(ctx().evaluator.engine().evaluate_sample(radiation),
               fav::CheckError);
}

TEST(ClockGlitchEvaluator, ExactEnumerationCoversWholeSpace) {
  faultsim::ClockGlitchAttackModel model;
  model.t_min = 1;
  model.t_max = 20;
  model.depths = {0.4, 0.7};
  const SsfResult exact = ctx().evaluator.evaluate_exact(model);
  EXPECT_EQ(exact.stats.count(), 40u);
  EXPECT_EQ(exact.records.size(), 40u);
  EXPECT_GE(exact.ssf(), 0.0);
  EXPECT_LE(exact.ssf(), 1.0);
}

TEST(ClockGlitchEvaluator, ModelBeyondTargetCycleIsRejected) {
  // A timing range past Tt has no cycle to glitch. Such samples used to be
  // silently recorded as masked (te = 0), diluting the estimate; the model
  // is now rejected up front by enumeration and sampler construction alike.
  faultsim::ClockGlitchAttackModel model = test_model();
  model.t_max = static_cast<int>(ctx().base.target_cycle()) + 5;
  EXPECT_THROW(ctx().evaluator.evaluate_exact(model), fav::CheckError);
  EXPECT_THROW(GlitchSampler(model, ctx().base.target_cycle()),
               fav::CheckError);
  Rng rng(1);
  EXPECT_THROW(ctx().evaluator.run(model, rng, 10), fav::CheckError);
}

TEST(ClockGlitchEvaluator, MonteCarloConvergesToExactWithin3Sigma) {
  // The unified MC estimate must agree with the exact enumeration within its
  // own 3-sigma confidence interval — at one thread and at four (the sample
  // stream is drawn sequentially, so the estimate is thread-independent).
  const faultsim::ClockGlitchAttackModel model = test_model();
  const SsfResult exact = ctx().evaluator.evaluate_exact(model);
  for (const std::size_t threads : {1u, 4u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EvaluatorConfig cfg;
    cfg.threads = threads;
    SsfEvaluator base(ctx().soc, ctx().placement, ctx().injector, ctx().bench,
                      ctx().golden, &ctx().charac, cfg);
    ClockGlitchEvaluator evaluator(base, ctx().soc, ctx().glitch);
    Rng rng(42);
    const SsfResult mc = evaluator.run(model, rng, 2000);
    const double tolerance =
        std::max(3.0 * mc.stats.standard_error(), 1e-12);
    EXPECT_NEAR(mc.ssf(), exact.ssf(), tolerance);
  }
}

TEST(ClockGlitchEvaluator, ThreadCountsAreBitwiseIdentical) {
  const faultsim::ClockGlitchAttackModel model = test_model();
  SsfResult reference;
  for (const std::size_t threads : {1u, 2u, 4u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EvaluatorConfig cfg;
    cfg.threads = threads;
    SsfEvaluator base(ctx().soc, ctx().placement, ctx().injector, ctx().bench,
                      ctx().golden, &ctx().charac, cfg);
    ClockGlitchEvaluator evaluator(base, ctx().soc, ctx().glitch);
    Rng rng(7);
    SsfResult result = evaluator.run(model, rng, 300);
    if (threads == 1) {
      reference = std::move(result);
    } else {
      expect_bitwise_equal(result, reference);
    }
  }
}

TEST(ClockGlitchEvaluator, ExactEnumerationIsThreadIndependent) {
  const faultsim::ClockGlitchAttackModel model = test_model();
  const SsfResult sequential = ctx().evaluator.evaluate_exact(model);
  EvaluatorConfig cfg;
  cfg.threads = 4;
  SsfEvaluator base(ctx().soc, ctx().placement, ctx().injector, ctx().bench,
                    ctx().golden, &ctx().charac, cfg);
  ClockGlitchEvaluator evaluator(base, ctx().soc, ctx().glitch);
  expect_bitwise_equal(evaluator.evaluate_exact(model), sequential);
}

TEST(ClockGlitchEvaluator, KillAndResumeIsBitwiseIdentical) {
  // The radiation journal acceptance scenario, for glitch campaigns: a run
  // killed mid-campaign (simulated by tearing the journal back to a prefix,
  // exactly what SIGKILL leaves behind) and resumed must reproduce the
  // uninterrupted run bit for bit.
  const faultsim::ClockGlitchAttackModel model = test_model();
  JournalOptions jopt;
  jopt.shard_size = 32;
  jopt.fingerprint = 0x617C0FFEE;
  jopt.context = "glitch_journal_test";

  Rng ref_rng(43);
  GlitchSampler ref_sampler(model, ctx().base.target_cycle());
  const SsfResult reference =
      ctx().evaluator.engine().run(ref_sampler, ref_rng, 200);

  for (const std::size_t threads : {1u, 2u, 4u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const std::string dir = fresh_dir("glitch_resume_t" +
                                      std::to_string(threads));
    jopt.dir = dir;
    EvaluatorConfig cfg;
    cfg.threads = threads;
    SsfEvaluator base(ctx().soc, ctx().placement, ctx().injector, ctx().bench,
                      ctx().golden, &ctx().charac, cfg);
    ClockGlitchEvaluator evaluator(base, ctx().soc, ctx().glitch);
    {
      GlitchSampler sampler(model, ctx().base.target_cycle());
      Rng rng(43);
      jopt.resume = false;
      Result<SsfResult> full =
          evaluator.engine().run_journaled(sampler, rng, 200, jopt);
      ASSERT_TRUE(full.is_ok()) << full.status().to_string();
      expect_bitwise_equal(full.value(), reference);
    }
    const fs::path file = fs::path(dir) / "campaign.fj";
    fs::resize_file(file, fs::file_size(file) * 2 / 5);

    GlitchSampler sampler(model, ctx().base.target_cycle());
    Rng rng(43);
    jopt.resume = true;
    Result<SsfResult> resumed =
        evaluator.engine().run_journaled(sampler, rng, 200, jopt);
    ASSERT_TRUE(resumed.is_ok()) << resumed.status().to_string();
    expect_bitwise_equal(resumed.value(), reference);
  }
}

TEST(ClockGlitchEvaluator, ReportsMetricsAndEssLikeRadiationRuns) {
  const faultsim::ClockGlitchAttackModel model = test_model();
  MetricsSink metrics;
  EvaluatorConfig cfg;
  cfg.metrics = &metrics;
  SsfEvaluator base(ctx().soc, ctx().placement, ctx().injector, ctx().bench,
                    ctx().golden, &ctx().charac, cfg);
  ClockGlitchEvaluator evaluator(base, ctx().soc, ctx().glitch);
  Rng rng(9);
  const SsfResult result = evaluator.run(model, rng, 150);
  EXPECT_EQ(metrics.counter("eval.samples"), 150u);
  EXPECT_EQ(metrics.counter("eval.path.masked") +
                metrics.counter("eval.path.analytical") +
                metrics.counter("eval.path.rtl") +
                metrics.counter("eval.path.failed"),
            150u);
  // Uniform sampler => unit weights => ESS equals the completed count.
  EXPECT_DOUBLE_EQ(result.effective_sample_size(),
                   static_cast<double>(150 - result.failed));
  ASSERT_NE(metrics.gauge("eval.ess"), nullptr);
  EXPECT_DOUBLE_EQ(*metrics.gauge("eval.ess"),
                   result.effective_sample_size());
  ASSERT_NE(metrics.timer("run.total_ns"), nullptr);
}

TEST(ClockGlitchEvaluator, TimingDistanceBeforeStartIsMasked) {
  const SampleRecord rec = ctx().evaluator.evaluate(
      static_cast<int>(ctx().base.target_cycle()) + 3, 0.3);
  EXPECT_FALSE(rec.success);
  EXPECT_EQ(rec.path, OutcomePath::kMasked);
}

}  // namespace
}  // namespace fav::mc
