#include "mc/glitch_evaluator.h"

#include <gtest/gtest.h>

#include "soc/benchmark.h"

namespace fav::mc {
namespace {

struct Context {
  soc::SocNetlist soc;
  layout::Placement placement{soc.netlist()};
  faultsim::InjectionSimulator injector{soc.netlist()};
  faultsim::ClockGlitchSimulator glitch{soc.netlist()};
  soc::SecurityBenchmark bench = soc::make_illegal_write_benchmark();
  rtl::GoldenRun golden{bench.program, bench.max_cycles, 32};
  rtl::Program workload = soc::make_synthetic_workload();
  rtl::GoldenRun synth_golden{workload, 400, 32};
  precharac::RegisterCharacterization charac;
  SsfEvaluator base;
  ClockGlitchEvaluator evaluator;

  Context()
      : charac(synth_golden,
               [] {
                 precharac::CharacterizationConfig cfg;
                 cfg.stride = 23;
                 return cfg;
               }()),
        base(soc, placement, injector, bench, golden, &charac),
        evaluator(base, soc, glitch) {}
};

Context& ctx() {
  static Context c;
  return c;
}

TEST(ClockGlitchEvaluator, ShallowGlitchIsMasked) {
  // A barely-shortened period misses no path.
  const auto rec = ctx().evaluator.evaluate(5, 0.999);
  EXPECT_TRUE(rec.flipped_bits.empty());
  EXPECT_FALSE(rec.success);
  EXPECT_EQ(rec.path, OutcomePath::kMasked);
}

TEST(ClockGlitchEvaluator, DeepGlitchFlipsSomething) {
  bool any = false;
  for (int t = 1; t <= 10; ++t) {
    if (!ctx().evaluator.evaluate(t, 0.3).flipped_bits.empty()) any = true;
  }
  EXPECT_TRUE(any);
}

TEST(ClockGlitchEvaluator, DeterministicPerAttack) {
  const auto a = ctx().evaluator.evaluate(7, 0.5);
  const auto b = ctx().evaluator.evaluate(7, 0.5);
  EXPECT_EQ(a.flipped_bits, b.flipped_bits);
  EXPECT_EQ(a.success, b.success);
  EXPECT_EQ(a.te, ctx().base.target_cycle() - 7);
}

TEST(ClockGlitchEvaluator, InvalidArgumentsThrow) {
  EXPECT_THROW(ctx().evaluator.evaluate(-1, 0.5), fav::CheckError);
  EXPECT_THROW(ctx().evaluator.evaluate(1, 0.0), fav::CheckError);
  EXPECT_THROW(ctx().evaluator.evaluate(1, 1.0), fav::CheckError);
}

TEST(ClockGlitchEvaluator, ExactEnumerationCoversWholeSpace) {
  faultsim::ClockGlitchAttackModel model;
  model.t_min = 1;
  model.t_max = 20;
  model.depths = {0.4, 0.7};
  const auto exact = ctx().evaluator.evaluate_exact(model);
  EXPECT_EQ(exact.stats.count(), 40u);
  EXPECT_EQ(exact.records.size(), 40u);
  EXPECT_GE(exact.ssf(), 0.0);
  EXPECT_LE(exact.ssf(), 1.0);
}

TEST(ClockGlitchEvaluator, MonteCarloConvergesToExact) {
  faultsim::ClockGlitchAttackModel model;
  model.t_min = 1;
  model.t_max = 10;
  model.depths = {0.35, 0.55};
  const auto exact = ctx().evaluator.evaluate_exact(model);
  Rng rng(42);
  const auto mc = ctx().evaluator.run(model, rng, 2000);
  EXPECT_NEAR(mc.ssf(), exact.ssf(), 0.06);
}

TEST(ClockGlitchEvaluator, TimingDistanceBeforeStartIsMasked) {
  const auto rec = ctx().evaluator.evaluate(
      static_cast<int>(ctx().base.target_cycle()) + 3, 0.3);
  EXPECT_FALSE(rec.success);
  EXPECT_EQ(rec.path, OutcomePath::kMasked);
}

}  // namespace
}  // namespace fav::mc
