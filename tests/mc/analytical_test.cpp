#include "mc/analytical.h"

#include <gtest/gtest.h>

#include "rtl/assembler.h"
#include "util/check.h"
#include "util/rng.h"

namespace fav::mc {
namespace {

using rtl::Machine;
using rtl::RegisterMap;

struct Fixture {
  soc::SecurityBenchmark bench = soc::make_illegal_write_benchmark();
  rtl::GoldenRun golden{bench.program, bench.max_cycles, 16};
  AnalyticalEvaluator eval{bench, golden};
};

Fixture& fx() {
  static Fixture f;
  return f;
}

// Ground truth by RTL simulation: restore at `cycle`, overwrite state, run
// to completion, apply the oracle.
bool rtl_truth(const rtl::ArchState& faulty, std::uint64_t cycle) {
  Machine m = fx().golden.restore(cycle);
  m.set_state(faulty);
  while (!m.halted() && m.cycle() < fx().bench.max_cycles) m.step();
  return fx().bench.attack_succeeded(m.state(), m.ram());
}

TEST(AnalyticalEvaluator, TargetCycleMatchesGolden) {
  EXPECT_EQ(fx().eval.target_cycle(), *fx().golden.first_violation_cycle());
}

TEST(AnalyticalEvaluator, CleanStateFails) {
  const std::uint64_t c = fx().eval.target_cycle() - 10;
  const auto verdict = fx().eval.evaluate(fx().golden.state_at(c), c);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_FALSE(*verdict);
  EXPECT_FALSE(rtl_truth(fx().golden.state_at(c), c));
}

TEST(AnalyticalEvaluator, GrantWriteSucceeds) {
  const std::uint64_t c = fx().eval.target_cycle() - 10;
  rtl::ArchState s = fx().golden.state_at(c);
  s.mpu[1].perm |= rtl::kPermWrite;  // region 1 becomes writable
  const auto verdict = fx().eval.evaluate(s, c);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_TRUE(*verdict);
  EXPECT_TRUE(rtl_truth(s, c));
}

TEST(AnalyticalEvaluator, MpuDisableSucceeds) {
  const std::uint64_t c = fx().eval.target_cycle() - 5;
  rtl::ArchState s = fx().golden.state_at(c);
  s.mpu_enable = false;
  const auto verdict = fx().eval.evaluate(s, c);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_TRUE(*verdict);
  EXPECT_TRUE(rtl_truth(s, c));
}

TEST(AnalyticalEvaluator, StickyFlagExposesAttack) {
  const std::uint64_t c = fx().eval.target_cycle() - 10;
  rtl::ArchState s = fx().golden.state_at(c);
  s.mpu[1].perm |= rtl::kPermWrite;
  s.viol_sticky = true;  // the fault itself trips the flag
  const auto verdict = fx().eval.evaluate(s, c);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_FALSE(*verdict);
  EXPECT_FALSE(rtl_truth(s, c));
}

TEST(AnalyticalEvaluator, BreakingLegalRegionExposesAttack) {
  const std::uint64_t c = fx().eval.target_cycle() - 20;
  rtl::ArchState s = fx().golden.state_at(c);
  // Open region 1 for write AND destroy region 0 (legal traffic violates).
  s.mpu[1].perm |= rtl::kPermWrite;
  s.mpu[0].perm = 0;
  const auto verdict = fx().eval.evaluate(s, c);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_FALSE(*verdict);
  EXPECT_FALSE(rtl_truth(s, c));
}

TEST(AnalyticalEvaluator, FaultAfterTargetCycleFails) {
  const std::uint64_t c = fx().eval.target_cycle() + 2;
  rtl::ArchState s = fx().golden.state_at(c);
  s.mpu[1].perm |= rtl::kPermWrite;  // too late: access already denied
  const auto verdict = fx().eval.evaluate(s, c);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_FALSE(*verdict);
  EXPECT_FALSE(rtl_truth(s, c));
}

TEST(AnalyticalEvaluator, ViolAddrCorruptionIrrelevant) {
  const std::uint64_t c = fx().eval.target_cycle() - 10;
  rtl::ArchState s = fx().golden.state_at(c);
  s.viol_addr ^= 0x5555;
  const auto verdict = fx().eval.evaluate(s, c);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_FALSE(*verdict);
  EXPECT_FALSE(rtl_truth(s, c));
}

TEST(AnalyticalEvaluator, DeviceWriteAfterInjectionBailsOut) {
  // A workload that reprograms the MPU after the fault window cannot be
  // replayed statically: the evaluator must decline.
  const auto bench = [] {
    soc::SecurityBenchmark b = soc::make_illegal_write_benchmark();
    return b;
  }();
  rtl::GoldenRun golden(bench.program, bench.max_cycles, 16);
  AnalyticalEvaluator eval(bench, golden);
  // The benchmark's own MPU setup writes are device writes near the start:
  // evaluating a fault injected before them must return nullopt.
  const auto verdict = eval.evaluate(golden.state_at(0), 0);
  EXPECT_FALSE(verdict.has_value());
}

TEST(AnalyticalEvaluator, NoViolationBenchmarkThrows) {
  const rtl::Program clean = rtl::assemble("addi r1, r0, 1\nhalt\n");
  rtl::GoldenRun golden(clean, 100, 16);
  soc::SecurityBenchmark b;
  b.name = "clean";
  b.program = clean;
  b.max_cycles = 100;
  EXPECT_THROW(AnalyticalEvaluator(b, golden), fav::CheckError);
}

// Property sweep: for random single- and double-bit corruptions of MPU
// configuration state, the analytical verdict must equal RTL ground truth.
class AnalyticalCrossValidation : public ::testing::TestWithParam<int> {};

TEST_P(AnalyticalCrossValidation, MatchesRtlSimulation) {
  const RegisterMap& map = Machine::reg_map();
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  // Memory-type-ish fields: all MPU configuration plus status registers.
  std::vector<int> config_bits;
  for (const auto& f : map.fields()) {
    if (!f.config_like) continue;
    for (int b = 0; b < f.width; ++b) config_bits.push_back(f.offset + b);
  }
  const std::uint64_t tt = fx().eval.target_cycle();
  for (int trial = 0; trial < 40; ++trial) {
    const std::uint64_t cycle = 55 + rng.uniform_below(tt - 55);
    rtl::ArchState s = fx().golden.state_at(cycle);
    const int nbits = 1 + static_cast<int>(rng.uniform_below(2));
    for (int k = 0; k < nbits; ++k) {
      map.flip_bit(s, config_bits[rng.uniform_below(config_bits.size())]);
    }
    const auto verdict = fx().eval.evaluate(s, cycle);
    ASSERT_TRUE(verdict.has_value()) << "cycle " << cycle;
    EXPECT_EQ(*verdict, rtl_truth(s, cycle))
        << "cycle " << cycle << " trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnalyticalCrossValidation,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace fav::mc
