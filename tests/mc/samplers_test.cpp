#include "mc/samplers.h"

#include <gtest/gtest.h>

#include "soc/benchmark.h"
#include "util/check.h"

namespace fav::mc {
namespace {

using faultsim::AttackModel;
using netlist::NodeId;

struct Context {
  soc::SocNetlist soc;
  layout::Placement placement{soc.netlist()};
  netlist::UnrolledCone cone{soc.netlist(),
                             soc.netlist().find_or_throw("mpu_viol"), 12, 2};
  AttackModel attack;

  Context() {
    attack.t_min = 0;
    attack.t_max = 9;
    attack.candidate_centers = placement.placed_nodes();
  }
};

Context& ctx() {
  static Context c;
  return c;
}

TEST(RandomSampler, DrawsFromF) {
  RandomSampler s(ctx().attack);
  EXPECT_EQ(s.name(), "random");
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const auto f = s.draw(rng);
    EXPECT_DOUBLE_EQ(f.weight, 1.0);
    EXPECT_GE(f.t, 0);
    EXPECT_LE(f.t, 9);
  }
}

TEST(ConeSampler, SupportIsSpotBased) {
  ConeSampler s(ctx().attack, ctx().cone, ctx().placement);
  EXPECT_EQ(s.name(), "fanin_cone");
  Rng rng(2);
  for (int i = 0; i < 300; ++i) {
    const auto f = s.draw(rng);
    // Every drawn center's spot must touch the cone at the drawn frame
    // (gates at frame t, registers at frame t-1).
    bool touches = false;
    for (const NodeId g :
         ctx().placement.nodes_within(f.center, f.radius)) {
      if (ctx().cone.contains(f.t, g) ||
          (f.t >= 1 && ctx().cone.contains(f.t - 1, g))) {
        touches = true;
        break;
      }
    }
    EXPECT_TRUE(touches) << "t=" << f.t << " center=" << f.center;
    EXPECT_GT(f.weight, 0.0);
  }
}

TEST(ConeSampler, WeightsAverageToSupportMass) {
  // E_g[f/g] = f-mass of the cone support <= 1 — this *is* the sample-space
  // reduction of Fig. 8(b).
  ConeSampler s(ctx().attack, ctx().cone, ctx().placement);
  Rng rng(3);
  double sum = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) sum += s.draw(rng).weight;
  const double mass = sum / kDraws;
  EXPECT_GT(mass, 0.0);
  EXPECT_LE(mass, 1.0 + 1e-9);
}

TEST(ConeSampler, EmptySupportThrows) {
  AttackModel bad = ctx().attack;
  // A center whose spot cannot touch the cone: place radius 0 at a cell
  // outside every frame.
  bad.radii = {0.0};
  NodeId outside = netlist::kInvalidNode;
  for (const NodeId id : ctx().placement.placed_nodes()) {
    bool in_any = false;
    for (int f = -2; f <= 12; ++f) {
      if (ctx().cone.contains(f, id)) in_any = true;
    }
    if (!in_any) {
      outside = id;
      break;
    }
  }
  ASSERT_NE(outside, netlist::kInvalidNode);
  bad.candidate_centers = {outside};
  EXPECT_THROW(ConeSampler(bad, ctx().cone, ctx().placement),
               fav::CheckError);
}

TEST(GlitchSampler, DrawsUniformOverModelGrid) {
  faultsim::ClockGlitchAttackModel model;
  model.t_min = 2;
  model.t_max = 11;
  model.depths = {0.4, 0.6, 0.8};
  GlitchSampler s(model, /*target_cycle=*/100);
  EXPECT_EQ(s.name(), "glitch-uniform");
  Rng rng(4);
  for (int i = 0; i < 300; ++i) {
    const auto f = s.draw(rng);
    EXPECT_EQ(f.technique, faultsim::TechniqueKind::kClockGlitch);
    EXPECT_GE(f.t, 2);
    EXPECT_LE(f.t, 11);
    EXPECT_TRUE(f.depth == 0.4 || f.depth == 0.6 || f.depth == 0.8)
        << f.depth;
    EXPECT_DOUBLE_EQ(f.weight, 1.0);  // draws from f itself
  }
}

TEST(GlitchSampler, RejectsModelBeyondTargetCycle) {
  // t > Tt has no cycle to glitch; such samples used to dilute the estimate
  // as silent always-masked records. The sampler now refuses the model.
  faultsim::ClockGlitchAttackModel model;
  model.t_min = 1;
  model.t_max = 150;
  model.depths = {0.5};
  EXPECT_THROW(GlitchSampler(model, /*target_cycle=*/100), fav::CheckError);
}

}  // namespace
}  // namespace fav::mc
