// The one property every sampling strategy must satisfy for the SSF
// estimator to stay unbiased: the importance weight is the exact likelihood
// ratio, so for every cell (t, c) of the attack space
//
//   E_g[ w · 1{(t, c)} ] = f(t, c)
//
// over the sampler's support. This is checked empirically for all four
// strategies (random, cone, importance, adaptive) on a small attack space
// where per-cell frequencies are measurable. A sampler that can emit a
// zero-probability outcome (the old lower_bound inversion bug in
// DiscreteDistribution) dies on the weight computation or grossly violates
// the identity here.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <utility>

#include "mc/adaptive.h"
#include "mc/samplers.h"
#include "soc/benchmark.h"

namespace fav::mc {
namespace {

using faultsim::AttackModel;
using netlist::NodeId;

struct Context {
  soc::SocNetlist soc;
  layout::Placement placement{soc.netlist()};
  rtl::Program workload = soc::make_synthetic_workload();
  rtl::GoldenRun golden{workload, 400, 16};
  precharac::SignatureTrace signatures{soc, workload, 400};
  precharac::RegisterCharacterization charac;
  netlist::UnrolledCone cone;
  AttackModel attack;  // small support: per-cell statistics are measurable

  Context()
      : charac(golden,
               [] {
                 precharac::CharacterizationConfig cfg;
                 cfg.stride = 29;
                 return cfg;
               }()),
        cone(soc.netlist(), soc.netlist().find_or_throw("mpu_viol"), 12, 2) {
    attack.t_min = 0;
    attack.t_max = 2;
    const auto& f0 = cone.frame(0);
    for (std::size_t i = 0; i < f0.gates.size() && i < 6; ++i) {
      attack.candidate_centers.push_back(f0.gates[i]);
    }
  }
};

Context& ctx() {
  static Context c;
  return c;
}

/// Draws `kDraws` samples and checks, for every sufficiently-visited cell,
/// that the weighted indicator mean reproduces the uniform target pmf
/// f(t, c) = 1 / (t_count · centers) within 6 empirical standard errors.
/// Also checks the support mass E[w] <= 1 and per-draw sanity.
void expect_weight_invariant(Sampler& s, const AttackModel& attack,
                             std::uint64_t seed) {
  constexpr int kDraws = 60000;
  const double f_tc =
      1.0 / (attack.t_count() *
             static_cast<double>(attack.candidate_centers.size()));
  std::map<std::pair<int, NodeId>, double> w_sum, w_sq_sum;
  std::map<std::pair<int, NodeId>, int> hits;
  double total_w = 0.0;
  Rng rng(seed);
  for (int i = 0; i < kDraws; ++i) {
    const auto smp = s.draw(rng);
    ASSERT_GT(smp.weight, 0.0) << "zero/negative importance weight at draw "
                               << i << " (t=" << smp.t << ")";
    ASSERT_GE(smp.t, attack.t_min);
    ASSERT_LE(smp.t, attack.t_max);
    const auto key = std::make_pair(smp.t, smp.center);
    w_sum[key] += smp.weight;
    w_sq_sum[key] += smp.weight * smp.weight;
    ++hits[key];
    total_w += smp.weight;
  }
  int checked = 0;
  for (const auto& [key, sum] : w_sum) {
    if (hits[key] < 200) continue;  // too rare for a meaningful estimate
    const double est = sum / kDraws;
    const double var =
        std::max(0.0, w_sq_sum[key] / kDraws - est * est) / kDraws;
    const double tol = 6.0 * std::sqrt(var) + 1e-4;
    EXPECT_NEAR(est, f_tc, tol)
        << "t=" << key.first << " center=" << key.second << " (" << hits[key]
        << " hits): E[w·1] must equal f(t,c)";
    ++checked;
  }
  EXPECT_GT(checked, 0) << "support too thin to test anything";
  // E_g[w] = f-mass of the support: a proper sub-probability of f.
  EXPECT_LE(total_w / kDraws, 1.0 + 0.05);
  EXPECT_GT(total_w / kDraws, 0.0);
}

TEST(SamplerInvariant, RandomSampler) {
  RandomSampler s(ctx().attack);
  expect_weight_invariant(s, ctx().attack, 101);
}

TEST(SamplerInvariant, ConeSampler) {
  ConeSampler s(ctx().attack, ctx().cone, ctx().placement);
  expect_weight_invariant(s, ctx().attack, 102);
}

TEST(SamplerInvariant, ImportanceSampler) {
  precharac::SamplingModel model(ctx().soc, ctx().placement, ctx().cone,
                                 ctx().signatures, ctx().charac, ctx().attack);
  ImportanceSampler s(model);
  expect_weight_invariant(s, ctx().attack, 103);
}

TEST(SamplerInvariant, AdaptiveImportanceSampler) {
  // The refit must preserve the identity for ANY pilot, however skewed —
  // that is the whole point of exact likelihood-ratio weights. Fabricate a
  // pilot whose successes pile onto two cells and verify the invariant still
  // holds over the full support.
  SsfResult pilot;
  for (int i = 0; i < 8; ++i) {
    SampleRecord rec;
    rec.sample.t = (i % 2 == 0) ? 1 : 2;
    rec.sample.center = ctx().attack.candidate_centers[i % 2 == 0 ? 0 : 3];
    rec.sample.weight = 1.0;
    rec.success = true;
    rec.contribution = 1.0;
    pilot.records.push_back(rec);
    ++pilot.successes;
  }
  AdaptiveImportanceSampler s(ctx().attack, pilot);
  expect_weight_invariant(s, ctx().attack, 104);
}

}  // namespace
}  // namespace fav::mc
