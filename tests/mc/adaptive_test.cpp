#include "mc/adaptive.h"

#include <gtest/gtest.h>

#include "core/framework.h"

namespace fav::mc {
namespace {

core::FaultAttackEvaluator& fw() {
  static core::FaultAttackEvaluator instance(
      soc::make_illegal_write_benchmark());
  return instance;
}

const faultsim::AttackModel& attack() {
  static const faultsim::AttackModel a = fw().subblock_attack_model(1.5, 50);
  return a;
}

const SsfResult& pilot() {
  static const SsfResult res = [] {
    auto sampler = fw().make_importance_sampler(attack());
    Rng rng(4242);
    return fw().evaluator().run(*sampler, rng, 2000);
  }();
  return res;
}

TEST(AdaptiveSampler, RequiresSuccessfulPilot) {
  SsfResult empty;
  EXPECT_THROW(AdaptiveImportanceSampler(attack(), empty), fav::CheckError);
  SsfResult no_success;
  no_success.records.emplace_back();  // one masked record
  EXPECT_THROW(AdaptiveImportanceSampler(attack(), no_success),
               fav::CheckError);
}

TEST(AdaptiveSampler, WeightsAreBoundedLikelihoodRatios) {
  ASSERT_GT(pilot().successes, 0u);
  AdaptiveImportanceSampler sampler(attack(), pilot());
  Rng rng(1);
  const double f = 1.0 / (attack().t_count() *
                          static_cast<double>(attack().candidate_centers.size()));
  for (int i = 0; i < 500; ++i) {
    const auto s = sampler.draw(rng);
    EXPECT_GE(s.t, attack().t_min);
    EXPECT_LE(s.t, attack().t_max);
    EXPECT_GT(s.weight, 0.0);
    EXPECT_LE(s.weight, 1.0 / AdaptiveConfig{}.defensive_mix + 1e-9);
    EXPECT_NEAR(s.weight, f / sampler.g_pmf(s.t, s.center), 1e-12);
  }
}

TEST(AdaptiveSampler, SecondStageAgreesWithPilot) {
  AdaptiveImportanceSampler sampler(attack(), pilot());
  Rng rng(2);
  const auto res = fw().evaluator().run(sampler, rng, 4000);
  // Same quantity estimated: second-stage mean within a few sigma of the
  // pilot's.
  const double sigma =
      res.stats.standard_error() + pilot().stats.standard_error();
  EXPECT_NEAR(res.ssf(), pilot().ssf(), 5 * sigma + 1e-4);
  EXPECT_GT(res.successes, 0u);
}

TEST(AdaptiveSampler, ConcentratesOnSuccessMass) {
  AdaptiveImportanceSampler sampler(attack(), pilot());
  Rng rng(3);
  const auto res = fw().evaluator().run(sampler, rng, 2000);
  // The refit should find successes at least as often as the pilot strategy.
  const double pilot_rate = static_cast<double>(pilot().successes) /
                            static_cast<double>(pilot().stats.count());
  const double adaptive_rate = static_cast<double>(res.successes) /
                               static_cast<double>(res.stats.count());
  EXPECT_GT(adaptive_rate, 0.5 * pilot_rate);
}

TEST(AdaptiveSampler, InvalidConfigThrows) {
  AdaptiveConfig bad;
  bad.smoothing = 0;
  EXPECT_THROW(AdaptiveImportanceSampler(attack(), pilot(), bad),
               fav::CheckError);
  bad = {};
  bad.defensive_mix = 0;
  EXPECT_THROW(AdaptiveImportanceSampler(attack(), pilot(), bad),
               fav::CheckError);
  bad = {};
  bad.t_stratum = 0;
  EXPECT_THROW(AdaptiveImportanceSampler(attack(), pilot(), bad),
               fav::CheckError);
}

}  // namespace
}  // namespace fav::mc
