// Analytical evaluation of the illegal-execution benchmark: the attack-path
// replay must agree with RTL ground truth for memory-type faults.
#include <gtest/gtest.h>

#include "mc/analytical.h"
#include "util/rng.h"

namespace fav::mc {
namespace {

using rtl::Machine;
using rtl::RegisterMap;

struct Fixture {
  soc::SecurityBenchmark bench = soc::make_illegal_exec_benchmark();
  rtl::GoldenRun golden{bench.program, bench.max_cycles, 16};
  AnalyticalEvaluator eval{bench, golden};
};

Fixture& fx() {
  static Fixture f;
  return f;
}

bool rtl_truth(const rtl::ArchState& faulty, std::uint64_t cycle) {
  Machine m = fx().golden.restore(cycle);
  m.set_state(faulty);
  while (!m.halted() && m.cycle() < fx().bench.max_cycles) m.step();
  return fx().bench.attack_succeeded(m.state(), m.ram());
}

TEST(AnalyticalExec, CleanStateFails) {
  const std::uint64_t c = fx().eval.target_cycle() - 10;
  const auto verdict = fx().eval.evaluate(fx().golden.state_at(c), c);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_FALSE(*verdict);
}

TEST(AnalyticalExec, InstrCheckOffSucceeds) {
  const std::uint64_t c = fx().eval.target_cycle() - 10;
  rtl::ArchState s = fx().golden.state_at(c);
  s.instr_check = false;
  const auto verdict = fx().eval.evaluate(s, c);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_TRUE(*verdict);
  EXPECT_TRUE(rtl_truth(s, c));
}

TEST(AnalyticalExec, ExecOnDataRegionSucceeds) {
  const std::uint64_t c = fx().eval.target_cycle() - 5;
  rtl::ArchState s = fx().golden.state_at(c);
  s.mpu[0].perm |= rtl::kPermExec;
  const auto verdict = fx().eval.evaluate(s, c);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_TRUE(*verdict);
  EXPECT_TRUE(rtl_truth(s, c));
}

TEST(AnalyticalExec, BreakingMainExecRegionFails) {
  // Disabling region 2 denies the *main* code's own fetches: the attack is
  // exposed long before the hidden routine could run.
  const std::uint64_t c = fx().eval.target_cycle() - 10;
  rtl::ArchState s = fx().golden.state_at(c);
  s.mpu[2].perm = 0;
  const auto verdict = fx().eval.evaluate(s, c);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_FALSE(*verdict);
  EXPECT_FALSE(rtl_truth(s, c));
}

TEST(AnalyticalExec, ExecEverywhereStillSucceedsDespiteBrokenRegion2) {
  // Region 0 (exec'd by the fault) covers the whole address space, so losing
  // region 2 changes nothing — both evaluations must agree on success.
  const std::uint64_t c = fx().eval.target_cycle() - 10;
  rtl::ArchState s = fx().golden.state_at(c);
  s.mpu[0].perm |= rtl::kPermExec;
  s.mpu[2].perm = 0;
  const auto verdict = fx().eval.evaluate(s, c);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_TRUE(*verdict);
  EXPECT_TRUE(rtl_truth(s, c));
}

TEST(AnalyticalExec, FaultAfterTargetFails) {
  const std::uint64_t c = fx().eval.target_cycle() + 1;
  rtl::ArchState s = fx().golden.state_at(c);
  s.instr_check = false;
  s.viol_sticky = false;  // even hiding the first violation...
  const auto verdict = fx().eval.evaluate(s, c);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_FALSE(*verdict);  // ...the token was never planted
  EXPECT_FALSE(rtl_truth(s, c));
}

TEST(AnalyticalExec, CrossValidationSweep) {
  const RegisterMap& map = Machine::reg_map();
  fav::Rng rng(51);
  std::vector<int> config_bits;
  for (const auto& f : map.fields()) {
    if (!f.config_like) continue;
    for (int b = 0; b < f.width; ++b) config_bits.push_back(f.offset + b);
  }
  const std::uint64_t tt = fx().eval.target_cycle();
  int decided = 0;
  for (int trial = 0; trial < 120; ++trial) {
    const std::uint64_t cycle = 60 + rng.uniform_below(tt - 60);
    rtl::ArchState s = fx().golden.state_at(cycle);
    const int nbits = 1 + static_cast<int>(rng.uniform_below(2));
    for (int k = 0; k < nbits; ++k) {
      map.flip_bit(s, config_bits[rng.uniform_below(config_bits.size())]);
    }
    const auto verdict = fx().eval.evaluate(s, cycle);
    if (!verdict.has_value()) continue;
    ++decided;
    EXPECT_EQ(*verdict, rtl_truth(s, cycle)) << "trial " << trial;
  }
  EXPECT_GT(decided, 80);
}

}  // namespace
}  // namespace fav::mc
