// Technique-generic exhaustive fault-space sweeps (DESIGN.md §6l): the
// streamed enumeration must be bitwise-identical to run_batch over the
// materialized space at every thread and lane count, agree with the
// importance-sampled Monte Carlo estimate, carry coverage accounting, and
// survive kill + resume through the journal — for radiation, clock-glitch
// and voltage-glitch techniques alike.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "mc/evaluator.h"
#include "soc/benchmark.h"
#include "util/check.h"

namespace fav::mc {
namespace {

namespace fs = std::filesystem;

struct Context {
  soc::SocNetlist soc;
  layout::Placement placement{soc.netlist()};
  faultsim::InjectionSimulator injector{soc.netlist()};
  faultsim::ClockGlitchSimulator glitch{soc.netlist()};
  faultsim::VoltageGlitchSimulator voltage{soc.netlist()};
  soc::SecurityBenchmark bench = soc::make_illegal_write_benchmark();
  rtl::GoldenRun golden{bench.program, bench.max_cycles, 32};
  rtl::Program workload = soc::make_synthetic_workload();
  rtl::GoldenRun synth_golden{workload, 400, 32};
  precharac::SignatureTrace signatures{soc, workload, 400};
  precharac::RegisterCharacterization charac;
  netlist::UnrolledCone cone;

  Context()
      : charac(synth_golden,
               [] {
                 precharac::CharacterizationConfig cfg;
                 cfg.stride = 23;
                 return cfg;
               }()),
        cone(soc.netlist(), soc.netlist().find_or_throw("mpu_viol"), 12, 2) {}

  SsfEvaluator make(const faultsim::AttackTechnique& technique,
                    const EvaluatorConfig& cfg = {}) const {
    return SsfEvaluator(soc, technique, bench, golden, &charac, cfg);
  }
};

Context& ctx() {
  static Context c;
  return c;
}

faultsim::ClockGlitchAttackModel glitch_model() {
  faultsim::ClockGlitchAttackModel model;
  model.t_min = 1;
  model.t_max = 20;
  model.depths = {0.4, 0.7};
  return model;
}

faultsim::VoltageGlitchAttackModel voltage_model() {
  faultsim::VoltageGlitchAttackModel model;
  model.t_min = 1;
  model.t_max = 10;
  model.droops = {0.3, 0.5};
  return model;
}

/// Small radiation grid: a strided subset of the placement as the sub-block,
/// a short timing window, and the strike instant pinned to the {0.0} grid so
/// the sampled and exhaustive estimands coincide.
faultsim::AttackModel radiation_model() {
  faultsim::AttackModel attack;
  attack.t_min = 0;
  attack.t_max = 9;
  const auto& nodes = ctx().placement.placed_nodes();
  for (std::size_t i = 0; i < nodes.size(); i += 150) {
    attack.candidate_centers.push_back(nodes[i]);
  }
  attack.strike_fracs = {0.0};
  return attack;
}

std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("fav_ex_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

void expect_bitwise_equal(const SsfResult& a, const SsfResult& b) {
  EXPECT_EQ(a.ssf(), b.ssf());
  EXPECT_EQ(a.sample_variance(), b.sample_variance());
  EXPECT_EQ(a.stats.count(), b.stats.count());
  EXPECT_EQ(a.masked, b.masked);
  EXPECT_EQ(a.analytical, b.analytical);
  EXPECT_EQ(a.rtl, b.rtl);
  EXPECT_EQ(a.successes, b.successes);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.evaluated, b.evaluated);
  EXPECT_EQ(a.total_weight, b.total_weight);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.bit_contribution, b.bit_contribution);
  EXPECT_EQ(a.field_contribution, b.field_contribution);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].sample.t, b.records[i].sample.t) << i;
    EXPECT_EQ(a.records[i].sample.center, b.records[i].sample.center) << i;
    EXPECT_EQ(a.records[i].sample.depth, b.records[i].sample.depth) << i;
    EXPECT_EQ(a.records[i].flipped_bits, b.records[i].flipped_bits) << i;
    EXPECT_EQ(a.records[i].path, b.records[i].path) << i;
    EXPECT_EQ(a.records[i].contribution, b.records[i].contribution) << i;
  }
}

TEST(ExhaustiveSweep, UnboundSpaceIsRejected) {
  faultsim::ClockGlitchTechnique technique(ctx().glitch);
  const SsfEvaluator engine = ctx().make(technique);
  EXPECT_THROW(engine.run_exhaustive(), StatusError);
}

TEST(ExhaustiveSweep, StreamingSweepMatchesMaterializedBatch) {
  // Regression for the old evaluate_exact grid loop: the chunked streaming
  // sweep must be bitwise-identical to run_batch over the materialized
  // enumeration (chunk boundaries may split equal-t groups across
  // word-parallel batches — batching is contractually a no-op).
  faultsim::ClockGlitchTechnique technique(ctx().glitch);
  technique.bind_space(glitch_model());
  const SsfEvaluator engine = ctx().make(technique);
  const std::uint64_t space = technique.space_size();
  ASSERT_EQ(space, 40u);

  std::vector<faultsim::FaultSample> all;
  technique.enumerate(0, space, all);
  const SsfResult batch = engine.run_batch(std::move(all));
  const SsfResult streamed = engine.run_exhaustive();

  expect_bitwise_equal(streamed, batch);
  EXPECT_EQ(streamed.fault_space_size, space);
  EXPECT_DOUBLE_EQ(streamed.coverage(), 1.0);
  EXPECT_FALSE(streamed.interrupted);
  // Sampled/batch results bind no space: coverage is meaningless there.
  EXPECT_EQ(batch.fault_space_size, 0u);
  EXPECT_DOUBLE_EQ(batch.coverage(), 0.0);
}

TEST(ExhaustiveSweep, SpaceLimitCapsCoverage) {
  faultsim::ClockGlitchTechnique technique(ctx().glitch);
  technique.bind_space(glitch_model());
  const SsfEvaluator engine = ctx().make(technique);

  const SsfResult capped = engine.run_exhaustive(10);
  EXPECT_EQ(capped.evaluated, 10u);
  EXPECT_EQ(capped.fault_space_size, 40u);
  EXPECT_DOUBLE_EQ(capped.coverage(), 0.25);

  std::vector<faultsim::FaultSample> prefix;
  technique.enumerate(0, 10, prefix);
  expect_bitwise_equal(capped, engine.run_batch(std::move(prefix)));
}

TEST(ExhaustiveSweep, RadiationBitwiseAcrossThreadsAndLanesWithin3Sigma) {
  // The exhaustive radiation sweep is the exact mean over the bound grid:
  // every (threads, lanes) configuration must reproduce it bit for bit, and
  // the importance-sampled Monte Carlo estimate over the same holistic model
  // must agree within its own 3-sigma interval.
  const faultsim::AttackModel attack = radiation_model();
  faultsim::RadiationTechnique technique(ctx().placement, ctx().injector);
  technique.bind_space(attack);
  const std::uint64_t space = technique.space_size();
  ASSERT_EQ(space, static_cast<std::uint64_t>(attack.t_count()) *
                       attack.candidate_centers.size());

  SsfResult reference;
  bool have_reference = false;
  for (const std::size_t threads : {1u, 4u}) {
    for (const std::size_t lanes : {1u, 64u}) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " lanes=" + std::to_string(lanes));
      EvaluatorConfig cfg;
      cfg.threads = threads;
      cfg.batch_lanes = lanes;
      const SsfEvaluator engine = ctx().make(technique, cfg);
      SsfResult result = engine.run_exhaustive();
      EXPECT_EQ(result.evaluated, space);
      EXPECT_DOUBLE_EQ(result.coverage(), 1.0);
      if (!have_reference) {
        reference = std::move(result);
        have_reference = true;
      } else {
        expect_bitwise_equal(result, reference);
      }
    }
  }

  precharac::SamplingModel model(ctx().soc, ctx().placement, ctx().cone,
                                 ctx().signatures, ctx().charac, attack);
  ImportanceSampler sampler(model);
  EvaluatorConfig cfg;
  cfg.threads = 4;
  const SsfEvaluator engine = ctx().make(technique, cfg);
  Rng rng(42);
  const SsfResult mc = engine.run(sampler, rng, 1500);
  const double tolerance = std::max(3.0 * mc.stats.standard_error(), 1e-12);
  EXPECT_NEAR(mc.ssf(), reference.ssf(), tolerance);
}

TEST(ExhaustiveSweep, VoltageGlitchKillAndResumeIsBitwiseIdentical) {
  // A voltage-glitch sweep killed mid-campaign (journal torn back to a
  // prefix, exactly what SIGKILL leaves behind) and resumed must reproduce
  // the uninterrupted sweep bit for bit — the enumeration-index contract.
  faultsim::VoltageGlitchTechnique technique(ctx().voltage);
  technique.bind_space(voltage_model());
  const SsfEvaluator engine = ctx().make(technique);
  const SsfResult reference = engine.run_exhaustive();
  EXPECT_EQ(reference.fault_space_size, 20u);
  EXPECT_DOUBLE_EQ(reference.coverage(), 1.0);

  JournalOptions jopt;
  jopt.shard_size = 4;
  jopt.fingerprint = 0x70177A6E;
  jopt.context = "voltage_exhaustive_test";

  const std::string dir = fresh_dir("voltage_resume");
  jopt.dir = dir;
  jopt.resume = false;
  Result<SsfResult> full = engine.run_exhaustive_journaled(jopt);
  ASSERT_TRUE(full.is_ok()) << full.status().to_string();
  expect_bitwise_equal(full.value(), reference);
  EXPECT_EQ(full.value().fault_space_size, 20u);

  const fs::path file = fs::path(dir) / "campaign.fj";
  fs::resize_file(file, fs::file_size(file) / 2);

  jopt.resume = true;
  Result<SsfResult> resumed = engine.run_exhaustive_journaled(jopt);
  ASSERT_TRUE(resumed.is_ok()) << resumed.status().to_string();
  expect_bitwise_equal(resumed.value(), reference);
  EXPECT_DOUBLE_EQ(resumed.value().coverage(), 1.0);
}

TEST(ExhaustiveSweep, VoltageGlitchMonteCarloAgreesWithExactWithin3Sigma) {
  const faultsim::VoltageGlitchAttackModel model = voltage_model();
  faultsim::VoltageGlitchTechnique technique(ctx().voltage);
  technique.bind_space(model);
  const SsfEvaluator engine = ctx().make(technique);
  const SsfResult exact = engine.run_exhaustive();

  VoltageGlitchSampler sampler(model, engine.target_cycle());
  Rng rng(7);
  const SsfResult mc = engine.run(sampler, rng, 800);
  const double tolerance = std::max(3.0 * mc.stats.standard_error(), 1e-12);
  EXPECT_NEAR(mc.ssf(), exact.ssf(), tolerance);
}

}  // namespace
}  // namespace fav::mc
