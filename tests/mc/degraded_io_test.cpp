// Degraded-I/O behavior of the campaign write path: injected transient
// errors must be absorbed by the retry discipline, and injected ENOSPC/EIO
// must surface as kStorageFull and stop a journaled campaign gracefully —
// partial, resumable, never corrupt (util/io.h ChaosFile).
#include <gtest/gtest.h>

#include <cerrno>
#include <filesystem>
#include <string>
#include <vector>

#include "mc/evaluator.h"
#include "mc/journal.h"
#include "soc/benchmark.h"
#include "util/io.h"

namespace fav::mc {
namespace {

namespace fs = std::filesystem;

struct Context {
  soc::SocNetlist soc;
  layout::Placement placement{soc.netlist()};
  faultsim::InjectionSimulator injector{soc.netlist()};
  soc::SecurityBenchmark bench = soc::make_illegal_write_benchmark();
  rtl::GoldenRun golden{bench.program, bench.max_cycles, 32};
  rtl::Program workload = soc::make_synthetic_workload();
  rtl::GoldenRun synth_golden{workload, 400, 32};
  precharac::RegisterCharacterization charac;
  SsfEvaluator evaluator;

  Context()
      : charac(synth_golden,
               [] {
                 precharac::CharacterizationConfig cfg;
                 cfg.stride = 23;
                 return cfg;
               }()),
        evaluator(soc, placement, injector, bench, golden, &charac) {}
};

Context& ctx() {
  static Context c;
  return c;
}

faultsim::AttackModel test_attack() {
  faultsim::AttackModel attack;
  attack.t_min = 0;
  attack.t_max = 19;
  attack.candidate_centers = ctx().placement.placed_nodes();
  return attack;
}

std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("fav_dio_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

JournalOptions test_options(const std::string& dir, bool resume) {
  JournalOptions o;
  o.dir = dir;
  o.resume = resume;
  o.shard_size = 32;
  o.fingerprint = 0xFEEDFACE;
  o.context = "degraded_io_test";
  return o;
}

SampleRecord make_record(int i) {
  SampleRecord rec;
  rec.sample.t = 3 + i;
  rec.sample.center = static_cast<netlist::NodeId>(17 * i + 1);
  rec.sample.weight = 0.5 + i;
  rec.te = 100 + static_cast<std::uint64_t>(i);
  rec.path = OutcomePath::kRtl;
  rec.success = (i % 2 == 0);
  rec.contribution = 0.125 * i;
  return rec;
}

class DegradedIoTest : public ::testing::Test {
 protected:
  void SetUp() override { io::chaos_reset(); }
  void TearDown() override { io::chaos_reset(); }
};

// The journal writer issues exactly one physical write for the header and
// one per appended frame, so chaos ordinals address them directly.
TEST_F(DegradedIoTest, HeaderWriteEnospcIsStorageFull) {
  const std::string dir = fresh_dir("header_enospc");
  io::ChaosFile chaos;
  chaos.fail_write_at = 1;  // the header
  io::chaos_install(chaos);
  JournalMeta meta;
  meta.fingerprint = 1;
  meta.total_samples = 4;
  JournalWriter w;
  const Status opened = w.open_fresh(dir, meta);
  ASSERT_FALSE(opened.is_ok());
  EXPECT_EQ(opened.code(), ErrorCode::kStorageFull);
}

TEST_F(DegradedIoTest, FrameWriteEnospcIsStorageFullAndKeepsPrefix) {
  const std::string dir = fresh_dir("frame_enospc");
  JournalMeta meta;
  meta.fingerprint = 1;
  meta.total_samples = 8;
  std::vector<SampleRecord> recs;
  for (int i = 0; i < 8; ++i) recs.push_back(make_record(i));
  JournalWriter w;
  ASSERT_TRUE(w.open_fresh(dir, meta).is_ok());
  ASSERT_TRUE(w.append_shard(0, recs.data(), 4).is_ok());
  io::ChaosFile chaos;
  chaos.fail_write_at = 1;  // ordinals count from install: the next frame
  io::chaos_install(chaos);
  const Status failed = w.append_shard(4, recs.data() + 4, 4);
  io::chaos_reset();
  ASSERT_FALSE(failed.is_ok());
  EXPECT_EQ(failed.code(), ErrorCode::kStorageFull);
  // The journaled prefix must still read back cleanly (a torn tail is
  // tolerated; the committed frame is intact).
  Result<JournalContents> read = read_journal(dir);
  ASSERT_TRUE(read.is_ok()) << read.status().to_string();
  EXPECT_EQ(read.value().records.size(), 4u);
}

TEST_F(DegradedIoTest, TransientWriteErrorIsAbsorbedByRetry) {
  const std::string dir = fresh_dir("transient");
  io::ChaosFile chaos;
  chaos.fail_write_at = 2;  // first frame, once
  chaos.error = EINTR;
  chaos.sticky = false;
  io::chaos_install(chaos);
  JournalMeta meta;
  meta.fingerprint = 1;
  meta.total_samples = 4;
  std::vector<SampleRecord> recs;
  for (int i = 0; i < 4; ++i) recs.push_back(make_record(i));
  JournalWriter w;
  ASSERT_TRUE(w.open_fresh(dir, meta).is_ok());
  ASSERT_TRUE(w.append_shard(0, recs.data(), 4).is_ok());
  io::chaos_reset();
  Result<JournalContents> read = read_journal(dir);
  ASSERT_TRUE(read.is_ok()) << read.status().to_string();
  EXPECT_EQ(read.value().records.size(), 4u);
}

TEST_F(DegradedIoTest, FsyncEioIsStorageFull) {
  const std::string dir = fresh_dir("fsync_eio");
  io::ChaosFile chaos;
  chaos.fail_fsync_at = 1;
  chaos.error = EIO;
  io::chaos_install(chaos);
  JournalMeta meta;
  meta.fingerprint = 1;
  meta.total_samples = 1;
  JournalWriter w;
  const Status opened = w.open_fresh(dir, meta);
  ASSERT_FALSE(opened.is_ok());
  EXPECT_EQ(opened.code(), ErrorCode::kStorageFull);
}

// A journaled campaign that hits ENOSPC mid-run stops gracefully: the
// result covers the journaled prefix, is marked interrupted, and a resume
// (with space restored) reproduces the uninterrupted run bit for bit.
TEST_F(DegradedIoTest, EnospcMidCampaignStopsGracefullyAndResumes) {
  const auto attack = test_attack();

  RandomSampler ref_sampler(attack);
  Rng ref_rng(47);
  const SsfResult reference = ctx().evaluator.run(ref_sampler, ref_rng, 96);

  const std::string dir = fresh_dir("enospc_resume");
  io::ChaosFile chaos;
  chaos.fail_write_at = 3;  // header, shard 1 land; shard 2 hits the wall
  io::chaos_install(chaos);
  RandomSampler sampler(attack);
  Rng rng(47);
  Result<SsfResult> partial =
      ctx().evaluator.run_journaled(sampler, rng, 96, test_options(dir, false));
  io::chaos_reset();
  ASSERT_TRUE(partial.is_ok()) << partial.status().to_string();
  EXPECT_TRUE(partial.value().interrupted);
  EXPECT_EQ(partial.value().evaluated, 32u);  // exactly the journaled shard

  RandomSampler resumed_sampler(attack);
  Rng resumed_rng(47);
  Result<SsfResult> resumed = ctx().evaluator.run_journaled(
      resumed_sampler, resumed_rng, 96, test_options(dir, true));
  ASSERT_TRUE(resumed.is_ok()) << resumed.status().to_string();
  EXPECT_FALSE(resumed.value().interrupted);
  EXPECT_EQ(resumed.value().ssf(), reference.ssf());
  EXPECT_EQ(resumed.value().sample_variance(), reference.sample_variance());
  EXPECT_EQ(resumed.value().successes, reference.successes);
  EXPECT_EQ(resumed.value().masked, reference.masked);
  EXPECT_EQ(resumed.value().analytical, reference.analytical);
  EXPECT_EQ(resumed.value().rtl, reference.rtl);
  EXPECT_EQ(resumed.value().bit_contribution, reference.bit_contribution);
}

}  // namespace
}  // namespace fav::mc
