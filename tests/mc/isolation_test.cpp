// Per-sample fault-isolation tests: cycle budgets, deadlines, failure
// capture and the determinism of budget overruns across thread counts.
#include <gtest/gtest.h>

#include <string>

#include "mc/evaluator.h"
#include "soc/benchmark.h"
#include "util/status.h"

namespace fav::mc {
namespace {

using faultsim::FaultSample;

struct Context {
  soc::SocNetlist soc;
  layout::Placement placement{soc.netlist()};
  faultsim::InjectionSimulator injector{soc.netlist()};
  soc::SecurityBenchmark bench = soc::make_illegal_write_benchmark();
  rtl::GoldenRun golden{bench.program, bench.max_cycles, 32};
  rtl::Program workload = soc::make_synthetic_workload();
  rtl::GoldenRun synth_golden{workload, 400, 32};
  precharac::RegisterCharacterization charac;
  SsfEvaluator evaluator;

  Context()
      : charac(synth_golden,
               [] {
                 precharac::CharacterizationConfig cfg;
                 cfg.stride = 23;
                 return cfg;
               }()),
        evaluator(soc, placement, injector, bench, golden, &charac) {}
};

Context& ctx() {
  static Context c;
  return c;
}

faultsim::AttackModel test_attack() {
  faultsim::AttackModel attack;
  attack.t_min = 0;
  attack.t_max = 19;
  attack.candidate_centers = ctx().placement.placed_nodes();
  return attack;
}

SsfEvaluator make_evaluator(const EvaluatorConfig& cfg) {
  return SsfEvaluator(ctx().soc, ctx().placement, ctx().injector, ctx().bench,
                      ctx().golden, &ctx().charac, cfg);
}

TEST(EvalBudget, UnlimitedNeverFires) {
  EvalBudget budget(0, 0);
  for (int i = 0; i < 1000; ++i) budget.charge_cycles(1'000'000);
}

TEST(EvalBudget, CycleBudgetFiresDeterministically) {
  EvalBudget budget(100, 0);
  budget.charge_cycles(60);
  budget.charge_cycles(40);  // exactly exhausted: still fine
  try {
    budget.charge_cycles(1);
    FAIL() << "expected StatusError";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCycleBudgetExceeded);
  }
}

TEST(EvalBudget, GenerousDeadlineDoesNotFire) {
  EvalBudget budget(0, 60'000);
  // Far more charges than the probe interval, well inside the deadline.
  for (int i = 0; i < 10'000; ++i) budget.charge_cycles(10);
}

TEST(Isolation, TinyCycleBudgetFailsSamplesWithoutAborting) {
  // A pathologically small budget makes (some) evaluations overrun; the
  // campaign must absorb them as kFailed records, keep the estimate defined
  // over the completed samples, and report the failed weight.
  EvaluatorConfig cfg;
  cfg.cycle_budget = 1;  // even the warm-up overruns for most samples
  SsfEvaluator ev = make_evaluator(cfg);
  const auto attack = test_attack();
  RandomSampler sampler(attack);
  Rng rng(3);
  const SsfResult res = ev.run(sampler, rng, 200);
  EXPECT_GT(res.failed, 0u);
  EXPECT_EQ(res.stats.count() + res.failed, 200u);
  EXPECT_EQ(res.records.size(), 200u);
  EXPECT_GT(res.failure_counts.at(ErrorCode::kCycleBudgetExceeded), 0u);
  EXPECT_GT(res.failed_weight_fraction(), 0.0);
  EXPECT_LE(res.failed_weight_fraction(), 1.0);
  // Cycle-budget overruns are deterministic; re-running them cannot help,
  // so the retry-once policy must skip them.
  EXPECT_EQ(res.retried, 0u);
  for (const auto& rec : res.records) {
    if (rec.path != OutcomePath::kFailed) continue;
    EXPECT_EQ(rec.fail_code, ErrorCode::kCycleBudgetExceeded);
    EXPECT_FALSE(rec.fail_reason.empty());
    EXPECT_EQ(rec.contribution, 0.0);
  }
}

TEST(Isolation, BudgetOverrunsAreBitwiseDeterministicAcrossThreads) {
  // Budget exhaustion is charged in RTL cycles, not wall-clock, so which
  // samples fail — and the resulting estimate — must not depend on the
  // worker count.
  EvaluatorConfig base;
  base.cycle_budget = 40;
  const auto attack = test_attack();
  RandomSampler ref_sampler(attack);
  Rng ref_rng(9);
  const SsfResult reference =
      make_evaluator(base).run(ref_sampler, ref_rng, 200);
  EXPECT_GT(reference.failed, 0u);  // budget actually bites at 40 cycles
  for (const std::size_t threads : {2u, 4u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EvaluatorConfig cfg = base;
    cfg.threads = threads;
    RandomSampler sampler(attack);
    Rng rng(9);
    const SsfResult res = make_evaluator(cfg).run(sampler, rng, 200);
    EXPECT_EQ(res.ssf(), reference.ssf());
    EXPECT_EQ(res.stats.count(), reference.stats.count());
    EXPECT_EQ(res.failed, reference.failed);
    EXPECT_EQ(res.failed_weight, reference.failed_weight);
    EXPECT_EQ(res.failure_counts, reference.failure_counts);
    ASSERT_EQ(res.records.size(), reference.records.size());
    for (std::size_t i = 0; i < res.records.size(); ++i) {
      EXPECT_EQ(res.records[i].path, reference.records[i].path) << i;
      EXPECT_EQ(res.records[i].fail_code, reference.records[i].fail_code) << i;
    }
  }
}

TEST(Isolation, GenerousBudgetChangesNothing) {
  // A budget that no sample reaches must leave the estimate bit-identical
  // to the unlimited run: the budget accounting itself is side-effect-free.
  const auto attack = test_attack();
  RandomSampler s1(attack), s2(attack);
  Rng r1(17), r2(17);
  const SsfResult unlimited = ctx().evaluator.run(s1, r1, 150);
  EvaluatorConfig cfg;
  cfg.cycle_budget = 100'000'000;
  cfg.sample_deadline_ms = 600'000;
  const SsfResult budgeted = make_evaluator(cfg).run(s2, r2, 150);
  EXPECT_EQ(budgeted.failed, 0u);
  EXPECT_EQ(budgeted.ssf(), unlimited.ssf());
  EXPECT_EQ(budgeted.sample_variance(), unlimited.sample_variance());
  EXPECT_EQ(budgeted.successes, unlimited.successes);
  EXPECT_EQ(budgeted.masked, unlimited.masked);
  EXPECT_EQ(budgeted.analytical, unlimited.analytical);
  EXPECT_EQ(budgeted.rtl, unlimited.rtl);
}

TEST(Isolation, SamplerThrowingMidBatchAbortsWithSamplerFailed) {
  // A failure while DRAWING is not isolatable: the deterministic sample
  // stream is gone, so the run reports kSamplerFailed instead of guessing.
  class ThrowingSampler final : public Sampler {
   public:
    FaultSample draw(Rng& rng) override {
      if (++calls_ > 10) throw std::runtime_error("importance table gone");
      return inner_.draw(rng);
    }
    const std::string& name() const override { return name_; }

   private:
    faultsim::AttackModel attack_ = test_attack();
    RandomSampler inner_{attack_};
    int calls_ = 0;
    std::string name_ = "throwing";
  };
  ThrowingSampler sampler;
  Rng rng(1);
  try {
    ctx().evaluator.run(sampler, rng, 64);
    FAIL() << "expected StatusError";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kSamplerFailed);
    // The message pinpoints the failing draw for diagnosis.
    EXPECT_NE(std::string(e.what()).find("throwing"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("10"), std::string::npos);
  }
}

TEST(Isolation, JournaledRunReportsSamplerFailureAsStatus) {
  class ThrowingSampler final : public Sampler {
   public:
    FaultSample draw(Rng&) override { throw std::runtime_error("boom"); }
    const std::string& name() const override { return name_; }

   private:
    std::string name_ = "throwing";
  };
  ThrowingSampler sampler;
  Rng rng(1);
  JournalOptions o;
  o.dir = ::testing::TempDir() + "/fav_sampler_fail";
  const Result<SsfResult> r =
      ctx().evaluator.run_journaled(sampler, rng, 16, o);
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kSamplerFailed);
}

TEST(Isolation, IsolatedEvaluationMatchesPlainOnHealthySamples) {
  // The isolation wrapper must be a pure pass-through for samples that
  // evaluate cleanly: same record, bit for bit.
  const auto attack = test_attack();
  RandomSampler sampler(attack);
  Rng rng(29);
  auto scratch = std::make_unique<EvalScratch>(ctx().evaluator);
  for (int i = 0; i < 40; ++i) {
    const FaultSample s = sampler.draw(rng);
    const SampleRecord plain = ctx().evaluator.evaluate_sample(s);
    const SampleRecord isolated =
        ctx().evaluator.evaluate_sample_isolated(s, scratch);
    EXPECT_EQ(isolated.path, plain.path);
    EXPECT_EQ(isolated.te, plain.te);
    EXPECT_EQ(isolated.flipped_bits, plain.flipped_bits);
    EXPECT_EQ(isolated.success, plain.success);
    EXPECT_EQ(isolated.contribution, plain.contribution);
    EXPECT_EQ(isolated.fail_code, ErrorCode::kOk);
    EXPECT_FALSE(isolated.retried);
  }
}

}  // namespace
}  // namespace fav::mc
