#include "mc/evaluator.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>

#include "soc/benchmark.h"
#include "util/check.h"

namespace fav::mc {
namespace {

using faultsim::FaultSample;
using netlist::NodeId;

struct Context {
  soc::SocNetlist soc;
  layout::Placement placement{soc.netlist()};
  faultsim::InjectionSimulator injector{soc.netlist()};
  soc::SecurityBenchmark bench = soc::make_illegal_write_benchmark();
  rtl::GoldenRun golden{bench.program, bench.max_cycles, 32};
  rtl::Program workload = soc::make_synthetic_workload();
  rtl::GoldenRun synth_golden{workload, 400, 32};
  precharac::RegisterCharacterization charac;
  SsfEvaluator evaluator;

  Context()
      : charac(synth_golden,
               [] {
                 precharac::CharacterizationConfig cfg;
                 cfg.stride = 23;
                 return cfg;
               }()),
        evaluator(soc, placement, injector, bench, golden, &charac) {}
};

Context& ctx() {
  static Context c;
  return c;
}

int perm_bit(int region, int bit) {
  const auto& map = soc::SocNetlist::reg_map();
  return map.field(map.field_index("mpu" + std::to_string(region) + "_perm"))
             .offset +
         bit;
}

TEST(SsfEvaluator, TargetCycle) {
  EXPECT_EQ(ctx().evaluator.target_cycle(),
            *ctx().golden.first_violation_cycle());
}

TEST(SsfEvaluator, EmptyFlipsAreMasked) {
  OutcomePath path;
  EXPECT_FALSE(ctx().evaluator.outcome_for_flips(50, {}, &path));
  EXPECT_EQ(path, OutcomePath::kMasked);
}

TEST(SsfEvaluator, GrantWriteFlipSucceedsAnalytically) {
  // mpu1_perm bit 1 (write) is memory-type: flipping it grants the illegal
  // write and the analytical path decides it.
  OutcomePath path;
  const bool success =
      ctx().evaluator.outcome_for_flips(60, {perm_bit(1, 1)}, &path);
  EXPECT_TRUE(success);
  EXPECT_EQ(path, OutcomePath::kAnalytical);
}

TEST(SsfEvaluator, ComputationFlipGoesToRtl) {
  // A PC bit is computation-type: outcome requires RTL resumption.
  const auto& map = soc::SocNetlist::reg_map();
  const int pc_bit = map.field(map.field_index("pc")).offset;
  OutcomePath path;
  ctx().evaluator.outcome_for_flips(60, {pc_bit}, &path);
  EXPECT_EQ(path, OutcomePath::kRtl);
}

TEST(SsfEvaluator, AnalyticalAgreesWithForcedRtl) {
  // With the analytical path disabled, outcomes must not change.
  EvaluatorConfig cfg;
  cfg.use_analytical = false;
  SsfEvaluator rtl_only(ctx().soc, ctx().placement, ctx().injector,
                        ctx().bench, ctx().golden, &ctx().charac, cfg);
  for (const std::uint64_t te : {40ull, 60ull, 80ull, 100ull}) {
    for (const std::vector<int> flips :
         {std::vector<int>{perm_bit(1, 1)}, std::vector<int>{perm_bit(1, 0)},
          std::vector<int>{perm_bit(0, 2)},
          std::vector<int>{perm_bit(1, 1), perm_bit(1, 2)}}) {
      OutcomePath p1, p2;
      const bool a = ctx().evaluator.outcome_for_flips(te, flips, &p1);
      const bool b = rtl_only.outcome_for_flips(te, flips, &p2);
      EXPECT_EQ(a, b) << "te=" << te;
      EXPECT_EQ(p2, OutcomePath::kRtl);
    }
  }
}

TEST(SsfEvaluator, SampleBeforeProgramStartIsMasked) {
  FaultSample s;
  s.t = static_cast<int>(ctx().evaluator.target_cycle()) + 5;
  s.center = ctx().placement.placed_nodes().front();
  s.radius = 1.0;
  const SampleRecord rec = ctx().evaluator.evaluate_sample(s);
  EXPECT_EQ(rec.path, OutcomePath::kMasked);
  EXPECT_FALSE(rec.success);
  EXPECT_EQ(rec.contribution, 0.0);
}

TEST(SsfEvaluator, EvaluateSampleFillsRecord) {
  FaultSample s;
  s.t = 10;
  s.center = ctx().placement.placed_nodes().front();
  s.radius = 2.0;
  s.strike_frac = 0.9;
  s.weight = 0.5;
  const SampleRecord rec = ctx().evaluator.evaluate_sample(s);
  EXPECT_EQ(rec.te, ctx().evaluator.target_cycle() - 10);
  EXPECT_EQ(rec.contribution, rec.success ? 0.5 : 0.0);
  for (const int bit : rec.flipped_bits) {
    EXPECT_GE(bit, 0);
    EXPECT_LT(bit, soc::SocNetlist::reg_map().total_bits());
  }
}

TEST(SsfEvaluator, DirectStrikeOnGrantBitSucceeds) {
  // Aim a zero-radius spot exactly at the mpu1_perm[1] DFF at t >= 1.
  const NodeId dff = ctx().soc.dff_for_bit(perm_bit(1, 1));
  FaultSample s;
  s.t = 5;
  s.center = dff;
  s.radius = 0.0;
  s.weight = 1.0;
  const SampleRecord rec = ctx().evaluator.evaluate_sample(s);
  ASSERT_EQ(rec.flipped_bits.size(), 1u);
  EXPECT_EQ(rec.flipped_bits[0], perm_bit(1, 1));
  EXPECT_TRUE(rec.success);
  EXPECT_EQ(rec.path, OutcomePath::kAnalytical);
}

TEST(SsfEvaluator, DirectStrikeAtTZeroIsTooLate) {
  const NodeId dff = ctx().soc.dff_for_bit(perm_bit(1, 1));
  FaultSample s;
  s.t = 0;  // latched at the end of the target cycle: too late
  s.center = dff;
  s.radius = 0.0;
  s.weight = 1.0;
  const SampleRecord rec = ctx().evaluator.evaluate_sample(s);
  EXPECT_FALSE(rec.success);
}

TEST(SsfEvaluator, RunAccumulatesConsistentCounts) {
  faultsim::AttackModel attack;
  attack.t_min = 0;
  attack.t_max = 19;
  attack.candidate_centers = ctx().placement.placed_nodes();
  RandomSampler sampler(attack);
  Rng rng(11);
  const SsfResult res = ctx().evaluator.run(sampler, rng, 400);
  EXPECT_EQ(res.stats.count(), 400u);
  EXPECT_EQ(res.masked + res.analytical + res.rtl, 400u);
  EXPECT_EQ(res.records.size(), 400u);
  EXPECT_EQ(res.trace.size(), 400u / 50);
  EXPECT_GE(res.ssf(), 0.0);
  EXPECT_LE(res.ssf(), 1.0);
  // Per-field attribution sums to the total success contribution.
  double attributed = 0;
  for (const auto& [f, c] : res.field_contribution) attributed += c;
  double contributed = 0;
  for (const auto& r : res.records) contributed += r.contribution;
  EXPECT_NEAR(attributed, contributed, 1e-9);
}

TEST(SsfEvaluator, DeterministicForSeed) {
  faultsim::AttackModel attack;
  attack.t_min = 0;
  attack.t_max = 19;
  attack.candidate_centers = ctx().placement.placed_nodes();
  RandomSampler s1(attack), s2(attack);
  Rng r1(21), r2(21);
  const SsfResult a = ctx().evaluator.run(s1, r1, 150);
  const SsfResult b = ctx().evaluator.run(s2, r2, 150);
  EXPECT_EQ(a.ssf(), b.ssf());
  EXPECT_EQ(a.successes, b.successes);
  EXPECT_EQ(a.masked, b.masked);
}

// Reference implementation of the seed's sequential engine: interleaved
// draw/evaluate with a fresh machine per sample and streaming accumulation.
// The parallel engine must reproduce it bit for bit.
SsfResult seed_sequential_run(const SsfEvaluator& ev, Sampler& sampler,
                              Rng& rng, std::size_t n,
                              const EvaluatorConfig& cfg) {
  const auto& map = soc::SocNetlist::reg_map();
  SsfResult result;
  for (std::size_t i = 0; i < n; ++i) {
    SampleRecord rec = ev.evaluate_sample(sampler.draw(rng));
    result.stats.add(rec.contribution);
    switch (rec.path) {
      case OutcomePath::kMasked: ++result.masked; break;
      case OutcomePath::kAnalytical: ++result.analytical; break;
      case OutcomePath::kRtl: ++result.rtl; break;
      case OutcomePath::kFailed: ++result.failed; break;  // not reachable here
    }
    if (rec.success) {
      ++result.successes;
      std::set<int> fields;
      for (const int bit : rec.flipped_bits) {
        fields.insert(map.locate(bit).first);
      }
      if (!fields.empty()) {
        const double share =
            rec.contribution / static_cast<double>(fields.size());
        for (const int f : fields) result.field_contribution[f] += share;
      }
      if (!rec.flipped_bits.empty()) {
        const double share =
            rec.contribution / static_cast<double>(rec.flipped_bits.size());
        for (const int bit : rec.flipped_bits) {
          result.bit_contribution[bit] += share;
        }
      }
    }
    if ((i + 1) % cfg.trace_stride == 0) {
      result.trace.push_back(result.stats.mean());
    }
    if (cfg.keep_records) result.records.push_back(std::move(rec));
  }
  return result;
}

void expect_bitwise_equal(const SsfResult& a, const SsfResult& b) {
  EXPECT_EQ(a.ssf(), b.ssf());
  EXPECT_EQ(a.sample_variance(), b.sample_variance());
  EXPECT_EQ(a.stats.count(), b.stats.count());
  EXPECT_EQ(a.stats.min(), b.stats.min());
  EXPECT_EQ(a.stats.max(), b.stats.max());
  EXPECT_EQ(a.masked, b.masked);
  EXPECT_EQ(a.analytical, b.analytical);
  EXPECT_EQ(a.rtl, b.rtl);
  EXPECT_EQ(a.successes, b.successes);
  EXPECT_EQ(a.trace, b.trace);  // element-wise bitwise double equality
  EXPECT_EQ(a.bit_contribution, b.bit_contribution);
  EXPECT_EQ(a.field_contribution, b.field_contribution);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].te, b.records[i].te) << i;
    EXPECT_EQ(a.records[i].flipped_bits, b.records[i].flipped_bits) << i;
    EXPECT_EQ(a.records[i].path, b.records[i].path) << i;
    EXPECT_EQ(a.records[i].success, b.records[i].success) << i;
    EXPECT_EQ(a.records[i].contribution, b.records[i].contribution) << i;
  }
}

TEST(SsfEvaluatorParallel, ThreadCountDoesNotChangeAnyResultBit) {
  faultsim::AttackModel attack;
  attack.t_min = 0;
  attack.t_max = 19;
  attack.candidate_centers = ctx().placement.placed_nodes();

  // Reference: the seed engine's literal accumulation, threads-free.
  RandomSampler seed_sampler(attack);
  Rng seed_rng(31);
  const SsfResult seed = seed_sequential_run(
      ctx().evaluator, seed_sampler, seed_rng, 300, EvaluatorConfig{});

  for (const std::size_t threads : {1u, 2u, 8u}) {
    EvaluatorConfig cfg;
    cfg.threads = threads;
    SsfEvaluator ev(ctx().soc, ctx().placement, ctx().injector, ctx().bench,
                    ctx().golden, &ctx().charac, cfg);
    RandomSampler sampler(attack);
    Rng rng(31);
    const SsfResult res = ev.run(sampler, rng, 300);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    expect_bitwise_equal(res, seed);
  }
}

TEST(SsfEvaluatorParallel, AutoThreadsMatchesSequential) {
  faultsim::AttackModel attack;
  attack.t_min = 0;
  attack.t_max = 9;
  attack.candidate_centers = ctx().placement.placed_nodes();
  EvaluatorConfig cfg;
  cfg.threads = 0;  // hardware concurrency
  SsfEvaluator auto_ev(ctx().soc, ctx().placement, ctx().injector, ctx().bench,
                       ctx().golden, &ctx().charac, cfg);
  RandomSampler s1(attack), s2(attack);
  Rng r1(7), r2(7);
  const SsfResult parallel = auto_ev.run(s1, r1, 120);
  const SsfResult sequential = ctx().evaluator.run(s2, r2, 120);
  expect_bitwise_equal(parallel, sequential);
}

TEST(SsfEvaluator, ScratchReuseMatchesFreshMachines) {
  // Evaluating a stream of samples through one scratch must give exactly the
  // per-sample results of fresh-machine evaluation, in any order.
  faultsim::AttackModel attack;
  attack.t_min = 0;
  attack.t_max = 19;
  attack.candidate_centers = ctx().placement.placed_nodes();
  RandomSampler sampler(attack);
  Rng rng(13);
  EvalScratch scratch(ctx().evaluator);
  for (int i = 0; i < 60; ++i) {
    const faultsim::FaultSample s = sampler.draw(rng);
    const SampleRecord fresh = ctx().evaluator.evaluate_sample(s);
    const SampleRecord reused = ctx().evaluator.evaluate_sample(s, scratch);
    EXPECT_EQ(fresh.te, reused.te);
    EXPECT_EQ(fresh.flipped_bits, reused.flipped_bits);
    EXPECT_EQ(fresh.path, reused.path);
    EXPECT_EQ(fresh.success, reused.success);
    EXPECT_EQ(fresh.contribution, reused.contribution);
  }
}

TEST(SsfEvaluatorParallel, WorkerFailureIsIsolatedNotFatal) {
  // An invalid sample evaluated on a worker must not abort the campaign: it
  // is retried once and then recorded as kFailed with the reason, while the
  // estimate stays defined over the completed (here: zero) samples.
  class BadSampler final : public Sampler {
   public:
    faultsim::FaultSample draw(Rng&) override {
      faultsim::FaultSample s;
      s.t = 5;
      s.center = ctx().placement.placed_nodes().front();
      s.impact_cycles = 0;  // rejected by evaluate_sample
      return s;
    }
    const std::string& name() const override { return name_; }

   private:
    std::string name_ = "bad";
  };
  EvaluatorConfig cfg;
  cfg.threads = 4;
  SsfEvaluator ev(ctx().soc, ctx().placement, ctx().injector, ctx().bench,
                  ctx().golden, &ctx().charac, cfg);
  BadSampler sampler;
  Rng rng(1);
  const SsfResult res = ev.run(sampler, rng, 64);
  EXPECT_EQ(res.failed, 64u);
  EXPECT_EQ(res.retried, 64u);  // each failure re-attempted on fresh scratch
  EXPECT_EQ(res.stats.count(), 0u);
  EXPECT_EQ(res.failure_counts.at(ErrorCode::kSampleEvalFailed), 64u);
  EXPECT_EQ(res.failed_weight_fraction(), 1.0);
  ASSERT_EQ(res.records.size(), 64u);
  EXPECT_EQ(res.records[0].path, OutcomePath::kFailed);
  EXPECT_FALSE(res.records[0].fail_reason.empty());
}

TEST(SsfEvaluator, MultiCycleImpactAccumulatesErrors) {
  // Striking the same spot on consecutive cycles can only add flips; the
  // single-cycle flip set must be a subset of the multi-cycle one when the
  // spot covers persistent (memory-type) registers.
  const NodeId dff = ctx().soc.dff_for_bit(perm_bit(1, 1));
  FaultSample one;
  one.t = 10;
  one.center = dff;
  one.radius = 1.2;
  one.weight = 1.0;
  FaultSample three = one;
  three.impact_cycles = 3;
  const SampleRecord r1 = ctx().evaluator.evaluate_sample(one);
  const SampleRecord r3 = ctx().evaluator.evaluate_sample(three);
  for (const int bit : r1.flipped_bits) {
    // A bit flipped in cycle 1 may be re-flipped later, but the perm bit is
    // memory-type and re-struck: odd number of strikes keeps it flipped.
    (void)bit;
  }
  EXPECT_GE(r3.flipped_bits.size(), 1u);
  EXPECT_EQ(r3.te, r1.te);
}

TEST(SsfEvaluator, MultiCycleSamplerPropagatesModel) {
  faultsim::AttackModel attack;
  attack.t_min = 1;
  attack.t_max = 10;
  attack.candidate_centers = ctx().placement.placed_nodes();
  attack.impact_cycles = 4;
  RandomSampler sampler(attack);
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(sampler.draw(rng).impact_cycles, 4);
  }
  const SsfResult res = ctx().evaluator.run(sampler, rng, 100);
  EXPECT_EQ(res.stats.count(), 100u);
}

TEST(SsfEvaluator, InvalidImpactCyclesRejected) {
  FaultSample s;
  s.t = 5;
  s.center = ctx().placement.placed_nodes().front();
  s.impact_cycles = 0;
  EXPECT_THROW(ctx().evaluator.evaluate_sample(s), fav::CheckError);
}

TEST(SsfEvaluator, NegativeTRejected) {
  FaultSample s;
  s.t = -1;
  EXPECT_THROW(ctx().evaluator.evaluate_sample(s), fav::CheckError);
}

TEST(SsfEvaluator, ForeignTechniqueSampleIsIsolatedNotFatal) {
  // A radiation engine handed a glitch-tagged sample: check_sample throws,
  // and the campaign isolation layer must turn that into a kFailed record
  // instead of crashing the run.
  FaultSample s;
  s.technique = faultsim::TechniqueKind::kClockGlitch;
  s.t = 5;
  s.depth = 0.5;
  EXPECT_THROW(ctx().evaluator.evaluate_sample(s), fav::CheckError);
  auto scratch = std::make_unique<EvalScratch>(ctx().evaluator);
  const SampleRecord rec =
      ctx().evaluator.evaluate_sample_isolated(s, scratch);
  EXPECT_EQ(rec.path, OutcomePath::kFailed);
  EXPECT_NE(rec.fail_code, ErrorCode::kOk);
  EXPECT_FALSE(rec.fail_reason.empty());
}

TEST(SsfEvaluator, RecordCapacityCapsRecordsNotTheEstimate) {
  faultsim::AttackModel attack;
  attack.t_min = 0;
  attack.t_max = 19;
  attack.candidate_centers = ctx().placement.placed_nodes();

  RandomSampler ref_sampler(attack);
  Rng ref_rng(29);
  const SsfResult uncapped = ctx().evaluator.run(ref_sampler, ref_rng, 100);

  MetricsSink metrics;
  EvaluatorConfig cfg;
  cfg.record_capacity = 20;
  cfg.metrics = &metrics;
  SsfEvaluator ev(ctx().soc, ctx().placement, ctx().injector, ctx().bench,
                  ctx().golden, &ctx().charac, cfg);
  RandomSampler sampler(attack);
  Rng rng(29);
  const SsfResult capped = ev.run(sampler, rng, 100);

  // Records stop at the cap — keeping the sample-index-ordered prefix, so
  // the kept records are thread-count independent — while every estimate
  // and counter still covers all 100 samples.
  ASSERT_EQ(capped.records.size(), 20u);
  EXPECT_EQ(metrics.counter("eval.records_dropped"), 80u);
  EXPECT_EQ(capped.ssf(), uncapped.ssf());
  EXPECT_EQ(capped.stats.count(), 100u);
  EXPECT_EQ(capped.trace, uncapped.trace);
  EXPECT_EQ(capped.bit_contribution, uncapped.bit_contribution);
  for (std::size_t i = 0; i < capped.records.size(); ++i) {
    EXPECT_EQ(capped.records[i].contribution, uncapped.records[i].contribution)
        << i;
    EXPECT_EQ(capped.records[i].flipped_bits, uncapped.records[i].flipped_bits)
        << i;
  }
}

TEST(SsfEvaluator, RecordCapacityIsThreadCountIndependent) {
  faultsim::AttackModel attack;
  attack.t_min = 0;
  attack.t_max = 19;
  attack.candidate_centers = ctx().placement.placed_nodes();
  SsfResult reference;
  for (const std::size_t threads : {1u, 4u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EvaluatorConfig cfg;
    cfg.record_capacity = 15;
    cfg.threads = threads;
    SsfEvaluator ev(ctx().soc, ctx().placement, ctx().injector, ctx().bench,
                    ctx().golden, &ctx().charac, cfg);
    RandomSampler sampler(attack);
    Rng rng(31);
    SsfResult res = ev.run(sampler, rng, 80);
    ASSERT_EQ(res.records.size(), 15u);
    if (threads == 1) {
      reference = std::move(res);
    } else {
      expect_bitwise_equal(res, reference);
    }
  }
}

}  // namespace
}  // namespace fav::mc
