// The observability contract of DESIGN.md §6f: enabling metrics, tracing or
// the progress meter must never change a single bit of the SSF estimate — at
// any thread count — and the collected numbers must agree exactly with the
// result they describe.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <set>
#include <sstream>

#include "mc/evaluator.h"
#include "mc/samplers.h"
#include "soc/benchmark.h"
#include "util/metrics.h"

namespace fav::mc {
namespace {

struct Context {
  soc::SocNetlist soc;
  layout::Placement placement{soc.netlist()};
  faultsim::InjectionSimulator injector{soc.netlist()};
  soc::SecurityBenchmark bench = soc::make_illegal_write_benchmark();
  rtl::GoldenRun golden{bench.program, bench.max_cycles, 32};
  rtl::Program workload = soc::make_synthetic_workload();
  rtl::GoldenRun synth_golden{workload, 400, 32};
  precharac::RegisterCharacterization charac;

  Context()
      : charac(synth_golden, [] {
          precharac::CharacterizationConfig cfg;
          cfg.stride = 23;
          return cfg;
        }()) {}

  SsfEvaluator make_evaluator(const EvaluatorConfig& cfg) const {
    return SsfEvaluator(soc, placement, injector, bench, golden, &charac, cfg);
  }

  faultsim::AttackModel attack() const {
    faultsim::AttackModel a;
    a.t_min = 0;
    a.t_max = 19;
    a.candidate_centers = placement.placed_nodes();
    return a;
  }
};

Context& ctx() {
  static Context c;
  return c;
}

constexpr std::size_t kSamples = 200;

SsfResult run_with(const EvaluatorConfig& cfg) {
  const auto attack = ctx().attack();
  RandomSampler sampler(attack);
  Rng rng(77);
  return ctx().make_evaluator(cfg).run(sampler, rng, kSamples);
}

void expect_bitwise_equal(const SsfResult& a, const SsfResult& b) {
  EXPECT_EQ(a.ssf(), b.ssf());
  EXPECT_EQ(a.sample_variance(), b.sample_variance());
  EXPECT_EQ(a.stats.count(), b.stats.count());
  EXPECT_EQ(a.masked, b.masked);
  EXPECT_EQ(a.analytical, b.analytical);
  EXPECT_EQ(a.rtl, b.rtl);
  EXPECT_EQ(a.successes, b.successes);
  EXPECT_EQ(a.completed_weight, b.completed_weight);
  EXPECT_EQ(a.completed_weight_sq, b.completed_weight_sq);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.bit_contribution, b.bit_contribution);
}

TEST(Observability, MetricsDoNotPerturbTheEstimate) {
  const SsfResult plain = run_with(EvaluatorConfig{});

  MetricsSink metrics;
  TraceBuffer trace;
  std::FILE* devnull = std::tmpfile();
  ASSERT_NE(devnull, nullptr);
  ProgressMeter progress(kSamples, 0, devnull);
  EvaluatorConfig cfg;
  cfg.metrics = &metrics;
  cfg.trace = &trace;
  cfg.progress = &progress;
  const SsfResult observed = run_with(cfg);
  std::fclose(devnull);

  expect_bitwise_equal(observed, plain);
  EXPECT_FALSE(metrics.empty());
}

TEST(Observability, ThreadCountDoesNotChangeResultsOrCounters) {
  MetricsSink m1, m4;
  EvaluatorConfig c1, c4;
  c1.threads = 1;
  c1.metrics = &m1;
  c4.threads = 4;
  c4.metrics = &m4;
  const SsfResult r1 = run_with(c1);
  const SsfResult r4 = run_with(c4);
  expect_bitwise_equal(r1, r4);
  // Sample-derived counters and gauges are schedule-independent by
  // construction (recorded in the sample-index-ordered reduction).
  for (const char* name :
       {"eval.samples", "eval.path.masked", "eval.path.analytical",
        "eval.path.rtl", "eval.path.failed", "eval.successes",
        "rtl.warmup_cycles", "rtl.resume_cycles", "gate.injection_cycles",
        "gate.settle_passes", "rtl.restore_bytes"}) {
    EXPECT_EQ(m1.counter(name), m4.counter(name)) << name;
  }
  ASSERT_NE(m1.gauge("eval.ess"), nullptr);
  ASSERT_NE(m4.gauge("eval.ess"), nullptr);
  EXPECT_EQ(*m1.gauge("eval.ess"), *m4.gauge("eval.ess"));
  EXPECT_EQ(*m1.gauge("eval.ssf"), *m4.gauge("eval.ssf"));
}

TEST(Observability, CountersAndGaugesMatchTheResult) {
  MetricsSink metrics;
  EvaluatorConfig cfg;
  cfg.metrics = &metrics;
  const SsfResult res = run_with(cfg);
  EXPECT_EQ(metrics.counter("eval.samples"), kSamples);
  EXPECT_EQ(metrics.counter("eval.path.masked"), res.masked);
  EXPECT_EQ(metrics.counter("eval.path.analytical"), res.analytical);
  EXPECT_EQ(metrics.counter("eval.path.rtl"), res.rtl);
  EXPECT_EQ(metrics.counter("eval.path.failed"), res.failed);
  EXPECT_EQ(metrics.counter("eval.successes"), res.successes);
  ASSERT_NE(metrics.gauge("eval.ess"), nullptr);
  EXPECT_EQ(*metrics.gauge("eval.ess"), res.effective_sample_size());
  ASSERT_NE(metrics.gauge("eval.ssf"), nullptr);
  EXPECT_EQ(*metrics.gauge("eval.ssf"), res.ssf());
  // An unweighted (random-sampler) run is worth its completed-sample count.
  EXPECT_NEAR(res.effective_sample_size(),
              static_cast<double>(kSamples - res.failed), 1e-9);
  // Phase timers exist for the work that actually happened.
  ASSERT_NE(metrics.timer("run.total_ns"), nullptr);
  ASSERT_NE(metrics.timer("run.draw_batch_ns"), nullptr);
  if (res.rtl > 0) {
    ASSERT_NE(metrics.timer("eval.restore_ns"), nullptr);
    EXPECT_GT(metrics.counter("rtl.restore_bytes"), 0u);
  }
}

TEST(Observability, TraceHasOneEventPerSampleInSampleOrder) {
  TraceBuffer trace;
  EvaluatorConfig cfg;
  cfg.threads = 2;  // exercise the per-worker buffers and the merge
  cfg.trace = &trace;
  const SsfResult res = run_with(cfg);
  ASSERT_EQ(trace.size(), kSamples);
  std::set<std::uint64_t> keys;
  for (const TraceEvent& e : trace.events()) {
    keys.insert(e.order_key);
    EXPECT_EQ(e.category, "sample");
  }
  EXPECT_EQ(keys.size(), kSamples);  // every sample index exactly once
  EXPECT_EQ(*keys.begin(), 0u);
  EXPECT_EQ(*keys.rbegin(), kSamples - 1);
  // Serialized form is sorted by sample index regardless of worker
  // interleaving, and the path names match the outcome split.
  std::size_t rtl_events = 0;
  for (const TraceEvent& e : trace.events()) {
    if (e.name == outcome_path_name(OutcomePath::kRtl)) ++rtl_events;
  }
  EXPECT_EQ(rtl_events, res.rtl);
  std::ostringstream os;
  trace.write_json(os);
  EXPECT_NE(os.str().find("\"traceEvents\""), std::string::npos);
}

TEST(Observability, ProgressMeterAgreesWithResult) {
  std::FILE* devnull = std::tmpfile();
  ASSERT_NE(devnull, nullptr);
  ProgressMeter progress(kSamples, 0, devnull);
  EvaluatorConfig cfg;
  cfg.progress = &progress;
  const SsfResult res = run_with(cfg);
  progress.finish();
  std::fclose(devnull);
  EXPECT_EQ(progress.completed(), kSamples);
  EXPECT_EQ(progress.failed(), res.failed);
  EXPECT_NEAR(progress.effective_sample_size(), res.effective_sample_size(),
              1e-9 * (1.0 + res.effective_sample_size()));
}

TEST(Observability, JournaledRunRecordsJournalMetrics) {
  const std::filesystem::path dir_path =
      std::filesystem::path(::testing::TempDir()) / "fav_observability_journal";
  std::filesystem::remove_all(dir_path);
  std::filesystem::create_directories(dir_path);
  const std::string dir = dir_path.string();
  MetricsSink metrics;
  EvaluatorConfig cfg;
  cfg.metrics = &metrics;
  SsfEvaluator ev = ctx().make_evaluator(cfg);
  const auto attack = ctx().attack();
  RandomSampler sampler(attack);
  Rng rng(77);
  JournalOptions jopt;
  jopt.dir = dir;
  jopt.fingerprint = 0xC0FFEE;
  jopt.shard_size = 32;
  Result<SsfResult> res = ev.run_journaled(sampler, rng, kSamples, jopt);
  ASSERT_TRUE(res.is_ok()) << res.status().to_string();
  EXPECT_EQ(metrics.counter("eval.samples"), kSamples);
  EXPECT_GE(metrics.counter("journal.commits"), 1u);
  EXPECT_GE(metrics.counter("journal.dir_fsyncs"), 1u);
  EXPECT_GT(metrics.counter("journal.bytes_written"), 0u);
  ASSERT_NE(metrics.timer("journal.fsync_ns"), nullptr);
  EXPECT_GE(metrics.timer("journal.fsync_ns")->count, 1u);
}

}  // namespace
}  // namespace fav::mc
