// The word-parallel batching contract (DESIGN.md §6i): grouping samples by
// injection cycle and evaluating up to 64 of them per bit-parallel sweep is
// a pure scheduling change. Every SsfResult — records, fail codes, traces,
// contributions — must be bitwise identical to the scalar path at every
// lane count, thread count, and through journaled kill-and-resume.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "mc/evaluator.h"
#include "mc/glitch_evaluator.h"
#include "soc/benchmark.h"
#include "util/metrics.h"

namespace fav::mc {
namespace {

namespace fs = std::filesystem;

struct Context {
  soc::SocNetlist soc;
  layout::Placement placement{soc.netlist()};
  faultsim::InjectionSimulator injector{soc.netlist()};
  faultsim::ClockGlitchSimulator glitch{soc.netlist()};
  soc::SecurityBenchmark bench = soc::make_illegal_write_benchmark();
  rtl::GoldenRun golden{bench.program, bench.max_cycles, 32};
  rtl::Program workload = soc::make_synthetic_workload();
  rtl::GoldenRun synth_golden{workload, 400, 32};
  precharac::RegisterCharacterization charac;

  Context()
      : charac(synth_golden, [] {
          precharac::CharacterizationConfig cfg;
          cfg.stride = 23;
          return cfg;
        }()) {}

  SsfEvaluator make(const EvaluatorConfig& cfg) const {
    return SsfEvaluator(soc, placement, injector, bench, golden, &charac,
                        cfg);
  }
};

Context& ctx() {
  static Context c;
  return c;
}

faultsim::AttackModel test_attack() {
  faultsim::AttackModel attack;
  attack.t_min = 0;
  attack.t_max = 19;
  attack.candidate_centers = ctx().placement.placed_nodes();
  return attack;
}

std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("fav_be_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

/// Bitwise equality down to the failure metadata — batching must reproduce
/// even the scalar path's deterministic failures record for record.
void expect_bitwise_equal(const SsfResult& a, const SsfResult& b) {
  EXPECT_EQ(a.ssf(), b.ssf());
  EXPECT_EQ(a.sample_variance(), b.sample_variance());
  EXPECT_EQ(a.stats.count(), b.stats.count());
  EXPECT_EQ(a.stats.min(), b.stats.min());
  EXPECT_EQ(a.stats.max(), b.stats.max());
  EXPECT_EQ(a.masked, b.masked);
  EXPECT_EQ(a.analytical, b.analytical);
  EXPECT_EQ(a.rtl, b.rtl);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.successes, b.successes);
  EXPECT_EQ(a.total_weight, b.total_weight);
  EXPECT_EQ(a.failure_counts, b.failure_counts);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.bit_contribution, b.bit_contribution);
  EXPECT_EQ(a.field_contribution, b.field_contribution);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].te, b.records[i].te) << i;
    EXPECT_EQ(a.records[i].flipped_bits, b.records[i].flipped_bits) << i;
    EXPECT_EQ(a.records[i].path, b.records[i].path) << i;
    EXPECT_EQ(a.records[i].success, b.records[i].success) << i;
    EXPECT_EQ(a.records[i].contribution, b.records[i].contribution) << i;
    EXPECT_EQ(a.records[i].fail_code, b.records[i].fail_code) << i;
    EXPECT_EQ(a.records[i].fail_reason, b.records[i].fail_reason) << i;
    EXPECT_EQ(a.records[i].retried, b.records[i].retried) << i;
  }
}

SsfResult run_with(std::size_t batch_lanes, std::size_t threads,
                   std::uint64_t seed, std::size_t n,
                   MetricsSink* sink = nullptr,
                   std::uint64_t cycle_budget = 0) {
  EvaluatorConfig cfg;
  cfg.batch_lanes = batch_lanes;
  cfg.threads = threads;
  cfg.metrics = sink;
  cfg.cycle_budget = cycle_budget;
  const SsfEvaluator ev = ctx().make(cfg);
  const auto attack = test_attack();
  RandomSampler sampler(attack);
  Rng rng(seed);
  return ev.run(sampler, rng, n);
}

TEST(BatchEquivalence, LaneAndThreadCountsAreBitwiseIdentical) {
  MetricsSink scalar_sink;
  const SsfResult scalar =
      run_with(/*batch_lanes=*/1, /*threads=*/1, 31, 300, &scalar_sink);
  EXPECT_EQ(scalar_sink.counter("eval.batch_groups"), 0u);

  for (const std::size_t lanes : {2u, 7u, 64u}) {
    for (const std::size_t threads : {1u, 4u}) {
      SCOPED_TRACE("lanes=" + std::to_string(lanes) +
                   " threads=" + std::to_string(threads));
      MetricsSink sink;
      const SsfResult batched = run_with(lanes, threads, 31, 300, &sink);
      expect_bitwise_equal(batched, scalar);
      // The runs above must actually exercise the batch path, not fall back.
      EXPECT_GT(sink.counter("eval.batch_groups"), 0u);
      EXPECT_GT(sink.counter("eval.batch_lanes"), 0u);
      EXPECT_EQ(sink.counter("eval.batch_restore_saved"),
                sink.counter("eval.batch_lanes") -
                    sink.counter("eval.batch_groups"));
    }
  }
}

TEST(BatchEquivalence, CycleBudgetFailuresAreIdenticalLaneForLane) {
  // A tight budget makes some samples fail deterministically with
  // kCycleBudgetExceeded. The batch path replays the scalar budget charges
  // per lane, so the same samples must fail with the same code and reason.
  const std::uint64_t budget = 20;
  const SsfResult scalar = run_with(1, 1, 47, 256, nullptr, budget);
  ASSERT_GT(scalar.failed, 0u);  // the scenario must actually trigger
  ASSERT_LT(scalar.failed, 256u);
  for (const std::size_t threads : {1u, 4u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const SsfResult batched = run_with(64, threads, 47, 256, nullptr, budget);
    expect_bitwise_equal(batched, scalar);
  }
}

TEST(BatchEquivalence, ClockGlitchTechniqueBatchesBitwiseIdentically) {
  faultsim::ClockGlitchAttackModel model;
  model.t_min = 1;
  model.t_max = 10;
  model.depths = {0.35, 0.55};

  EvaluatorConfig scalar_cfg;
  scalar_cfg.batch_lanes = 1;
  const SsfEvaluator scalar_base = ctx().make(scalar_cfg);
  ClockGlitchEvaluator scalar_ev(scalar_base, ctx().soc, ctx().glitch);
  Rng scalar_rng(9);
  const SsfResult scalar = scalar_ev.run(model, scalar_rng, 300);

  for (const std::size_t threads : {1u, 4u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EvaluatorConfig cfg;
    cfg.batch_lanes = 64;
    cfg.threads = threads;
    const SsfEvaluator base = ctx().make(cfg);
    ClockGlitchEvaluator ev(base, ctx().soc, ctx().glitch);
    Rng rng(9);
    expect_bitwise_equal(ev.run(model, rng, 300), scalar);
  }
}

TEST(BatchEquivalence, JournaledKillAndResumeAcrossLaneCounts) {
  // A batched campaign killed mid-run (journal torn back to a prefix, as
  // SIGKILL leaves it) and resumed with a *different* lane count must still
  // reproduce the scalar un-journaled run bit for bit: the journal carries
  // records, not batching decisions.
  const SsfResult reference = run_with(1, 1, 53, 200);

  const std::string dir = fresh_dir("resume_lanes");
  JournalOptions options;
  options.dir = dir;
  options.shard_size = 32;
  options.fingerprint = 0xFEEDFACE;
  options.context = "batch_equivalence_test";

  {
    EvaluatorConfig cfg;
    cfg.batch_lanes = 64;
    cfg.threads = 2;
    const SsfEvaluator ev = ctx().make(cfg);
    const auto attack = test_attack();
    RandomSampler sampler(attack);
    Rng rng(53);
    Result<SsfResult> full = ev.run_journaled(sampler, rng, 200, options);
    ASSERT_TRUE(full.is_ok()) << full.status().to_string();
    expect_bitwise_equal(full.value(), reference);
  }
  const fs::path file = fs::path(dir) / "campaign.fj";
  fs::resize_file(file, fs::file_size(file) * 2 / 5);

  EvaluatorConfig cfg;
  cfg.batch_lanes = 2;
  cfg.threads = 4;
  const SsfEvaluator ev = ctx().make(cfg);
  const auto attack = test_attack();
  RandomSampler sampler(attack);
  Rng rng(53);
  options.resume = true;
  Result<SsfResult> resumed = ev.run_journaled(sampler, rng, 200, options);
  ASSERT_TRUE(resumed.is_ok()) << resumed.status().to_string();
  expect_bitwise_equal(resumed.value(), reference);
}

}  // namespace
}  // namespace fav::mc
