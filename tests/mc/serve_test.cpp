// Tests for the campaign serving tier (mc/serve.h): wire codec round-trips
// and strict rejection, a real Unix-socket server driven through
// submit_campaign with a fake CampaignRunner — result streaming, progress,
// error paths, the concurrency slot gate and graceful drain — plus the
// robustness surface: cancellation on client disconnect / explicit cancel,
// per-campaign deadlines, bounded admission (kBusy + retry), heartbeats,
// handler-thread reaping, protocol-stage disconnect chaos, and the
// crash-recovery ledger.
#include "mc/serve.h"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/subprocess.h"

namespace fav::mc {
namespace {

namespace fs = std::filesystem;

TEST(ServeCodec, RequestRoundTrip) {
  const std::vector<std::string> args = {"evaluate", "--samples", "400",
                                         "--seed", "2017"};
  ServeMessage msg;
  ASSERT_TRUE(decode_serve_message(encode_serve_request(args), &msg));
  EXPECT_EQ(msg.type, ServeWire::kRequest);
  EXPECT_EQ(msg.args, args);
}

TEST(ServeCodec, AllServerFramesRoundTrip) {
  ServeMessage msg;
  ASSERT_TRUE(decode_serve_message(encode_serve_accepted(42), &msg));
  EXPECT_EQ(msg.type, ServeWire::kAccepted);
  EXPECT_EQ(msg.campaign_id, 42u);

  ASSERT_TRUE(decode_serve_message(encode_serve_progress(7, 400), &msg));
  EXPECT_EQ(msg.type, ServeWire::kProgress);
  EXPECT_EQ(msg.done, 7u);
  EXPECT_EQ(msg.total, 400u);

  ASSERT_TRUE(decode_serve_message(encode_serve_stdout("SSF : 0.5\n"), &msg));
  EXPECT_EQ(msg.type, ServeWire::kStdout);
  EXPECT_EQ(msg.text, "SSF : 0.5\n");

  ASSERT_TRUE(decode_serve_message(encode_serve_report("{}\n"), &msg));
  EXPECT_EQ(msg.type, ServeWire::kReport);
  EXPECT_EQ(msg.text, "{}\n");

  ASSERT_TRUE(decode_serve_message(encode_serve_finished(3), &msg));
  EXPECT_EQ(msg.type, ServeWire::kFinished);
  EXPECT_EQ(msg.exit_code, 3);

  ASSERT_TRUE(decode_serve_message(encode_serve_error("bad request", 2), &msg));
  EXPECT_EQ(msg.type, ServeWire::kError);
  EXPECT_EQ(msg.text, "bad request");
  EXPECT_EQ(msg.exit_code, 2);
}

TEST(ServeCodec, RobustnessFramesRoundTrip) {
  ServeMessage msg;
  ASSERT_TRUE(decode_serve_message(encode_serve_busy(750), &msg));
  EXPECT_EQ(msg.type, ServeWire::kBusy);
  EXPECT_EQ(msg.retry_after_ms, 750u);

  ASSERT_TRUE(decode_serve_message(encode_serve_heartbeat(true), &msg));
  EXPECT_EQ(msg.type, ServeWire::kHeartbeat);
  EXPECT_TRUE(msg.running);
  ASSERT_TRUE(decode_serve_message(encode_serve_heartbeat(false), &msg));
  EXPECT_FALSE(msg.running);

  ASSERT_TRUE(decode_serve_message(encode_serve_cancel(), &msg));
  EXPECT_EQ(msg.type, ServeWire::kCancel);

  // Truncated fields, trailing bytes, an out-of-range type, and a heartbeat
  // whose running byte is neither 0 nor 1 all fail.
  const std::string busy = encode_serve_busy(1);
  EXPECT_FALSE(decode_serve_message(
      std::string_view(busy).substr(0, busy.size() - 1), &msg));
  EXPECT_FALSE(decode_serve_message(encode_serve_cancel() + "x", &msg));
  EXPECT_FALSE(decode_serve_message(std::string(1, '\x0b'), &msg));
  std::string hb;
  hb.push_back(static_cast<char>(ServeWire::kHeartbeat));
  hb.push_back('\x02');
  EXPECT_FALSE(decode_serve_message(hb, &msg));
}

TEST(ServeCodec, RejectsMalformedPayloads) {
  ServeMessage msg;
  EXPECT_FALSE(decode_serve_message("", &msg));
  EXPECT_FALSE(decode_serve_message(std::string(1, '\x00'), &msg));
  EXPECT_FALSE(decode_serve_message(std::string(1, '\x63'), &msg));
  // Truncated fields.
  const std::string acc = encode_serve_accepted(7);
  EXPECT_FALSE(decode_serve_message(
      std::string_view(acc).substr(0, acc.size() - 1), &msg));
  const std::string prog = encode_serve_progress(1, 2);
  EXPECT_FALSE(decode_serve_message(
      std::string_view(prog).substr(0, prog.size() - 3), &msg));
  // Trailing bytes after a complete message.
  EXPECT_FALSE(decode_serve_message(encode_serve_finished(0) + "x", &msg));
  // Request bounds: zero args, too many args, an oversized arg.
  std::string zero;
  zero.push_back(static_cast<char>(ServeWire::kRequest));
  zero.append("\x00\x00\x00\x00", 4);
  EXPECT_FALSE(decode_serve_message(zero, &msg));
  EXPECT_FALSE(decode_serve_message(
      encode_serve_request(std::vector<std::string>(kMaxRequestArgs + 1, "x")),
      &msg));
  EXPECT_FALSE(decode_serve_message(
      encode_serve_request({std::string(kMaxRequestArgBytes + 1, 'a')}),
      &msg));
  // The same shapes at the bound are fine.
  EXPECT_TRUE(decode_serve_message(
      encode_serve_request(std::vector<std::string>(kMaxRequestArgs, "x")),
      &msg));
  EXPECT_TRUE(decode_serve_message(
      encode_serve_request({std::string(kMaxRequestArgBytes, 'a')}), &msg));
}

/// Polls `pred` every 10 ms until it holds or `timeout_ms` elapses.
template <typename Pred>
bool wait_for(Pred pred, int timeout_ms = 5000) {
  for (int i = 0; i < timeout_ms / 10; ++i) {
    if (pred()) return true;
    ::usleep(10'000);
  }
  return pred();
}

/// One live CampaignServer on a fresh socket path, torn down via the stop
/// flag on destruction. The runner is supplied per test; `tweak` customizes
/// the ServeConfig (deadline, queue depth, ledger, ...) before serve().
class ServerFixture {
 public:
  using Tweak = std::function<void(ServeConfig&)>;

  explicit ServerFixture(CampaignRunner runner, std::size_t max_concurrent = 1,
                         std::uint64_t progress_interval_ms = 0,
                         const Tweak& tweak = {}) {
    socket_path_ = (fs::path(::testing::TempDir()) /
                    ("fav_serve_" + std::to_string(::getpid()) + "_" +
                     std::to_string(counter_++) + ".sock"))
                       .string();
    fs::remove(socket_path_);
    ServeConfig config;
    config.socket_path = socket_path_;
    config.max_concurrent = max_concurrent;
    config.progress_interval_ms = progress_interval_ms;
    config.stop = &stop_;
    config.log = [](const std::string&) {};  // keep test output quiet
    if (tweak) tweak(config);
    server_ = std::make_unique<CampaignServer>(config, std::move(runner));
    thread_ = std::thread([this] { status_ = server_->serve(); });
    // serve() owns the bind; wait until the socket exists (or fails fast).
    for (int i = 0; i < 500 && !fs::exists(socket_path_); ++i) {
      ::usleep(10'000);
    }
  }

  ~ServerFixture() { shutdown(); }

  void shutdown() {
    if (thread_.joinable()) {
      stop_.store(true);
      thread_.join();
    }
  }

  const std::string& socket_path() const { return socket_path_; }
  const Status& status() const { return status_; }
  ServeStats stats() const { return server_->stats(); }
  std::size_t live_handlers() const { return server_->live_handlers(); }

 private:
  static inline std::atomic<int> counter_{0};
  std::string socket_path_;
  std::atomic<bool> stop_{false};
  std::unique_ptr<CampaignServer> server_;
  std::thread thread_;
  Status status_ = Status::ok();
};

CampaignRunner ok_runner() {
  return [](const std::vector<std::string>&, const ProgressFn&,
            const std::atomic<bool>&) {
    CampaignOutcome out;
    out.exit_code = 0;
    out.stdout_block = "ok\n";
    return out;
  };
}

/// A runner shaped like the real one: campaigns without "--quick" hold their
/// slot until the cancel token trips (then wind down to a resumable exit 3),
/// campaigns with "--quick" finish immediately. `started` counts slow
/// campaigns that reached the runner.
CampaignRunner cancellable_runner(std::atomic<int>* started = nullptr) {
  return [started](const std::vector<std::string>& args, const ProgressFn&,
                   const std::atomic<bool>& cancel) {
    CampaignOutcome out;
    if (std::find(args.begin(), args.end(), "--quick") != args.end()) {
      out.exit_code = 0;
      out.stdout_block = "ok\n";
      return out;
    }
    if (started != nullptr) started->fetch_add(1);
    for (int i = 0; i < 1000 && !cancel.load(); ++i) ::usleep(5'000);
    out.exit_code = cancel.load() ? 3 : 1;
    out.stdout_block = "interrupted\n";
    return out;
  };
}

/// Raw AF_UNIX client for the disconnect-chaos tests (submit_campaign is too
/// well-behaved to tear the protocol at arbitrary stages).
int connect_raw(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size());
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

TEST(CampaignServer, StreamsOutcomeProgressAndReport) {
  ServerFixture server(
      [](const std::vector<std::string>& args, const ProgressFn& progress,
         const std::atomic<bool>&) {
        CampaignOutcome out;
        out.exit_code = 0;
        out.stdout_block = "SSF : 0.25\n";
        out.report_json = "{\"args\": " + std::to_string(args.size()) + "}\n";
        for (std::uint64_t i = 1; i <= 5; ++i) progress(i, 5);
        return out;
      },
      /*max_concurrent=*/2);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> seen;
  Result<SubmitResult> sent = submit_campaign(
      server.socket_path(), {"evaluate", "--samples", "5"},
      [&seen](std::uint64_t done, std::uint64_t total) {
        seen.emplace_back(done, total);
      });
  ASSERT_TRUE(sent.is_ok()) << sent.status().to_string();
  EXPECT_EQ(sent.value().exit_code, 0);
  EXPECT_EQ(sent.value().stdout_block, "SSF : 0.25\n");
  EXPECT_EQ(sent.value().report_json, "{\"args\": 3}\n");
  EXPECT_TRUE(sent.value().error.empty());
  // interval 0: every tick streams, and the final 5/5 frame always ships.
  ASSERT_FALSE(seen.empty());
  EXPECT_EQ(seen.back(), (std::pair<std::uint64_t, std::uint64_t>(5, 5)));
  server.shutdown();
  EXPECT_TRUE(server.status().is_ok()) << server.status().to_string();
  EXPECT_EQ(server.stats().accepted, 1u);
  EXPECT_EQ(server.stats().completed, 1u);
  EXPECT_EQ(server.stats().rejected, 0u);
}

TEST(CampaignServer, RunnerErrorReachesClientWithExitCode) {
  ServerFixture server([](const std::vector<std::string>&, const ProgressFn&,
                          const std::atomic<bool>&) {
    CampaignOutcome out;
    out.exit_code = 2;
    out.error = "unknown flag --bogus";
    return out;
  });
  Result<SubmitResult> sent =
      submit_campaign(server.socket_path(), {"evaluate", "--bogus"});
  ASSERT_TRUE(sent.is_ok()) << sent.status().to_string();
  EXPECT_EQ(sent.value().exit_code, 2);
  EXPECT_EQ(sent.value().error, "unknown flag --bogus");
  EXPECT_TRUE(sent.value().stdout_block.empty());
  server.shutdown();
  EXPECT_EQ(server.stats().failed, 1u);
  EXPECT_EQ(server.stats().completed, 0u);
}

TEST(CampaignServer, SubmitFailsCleanlyWithoutDaemon) {
  const std::string path =
      (fs::path(::testing::TempDir()) / "fav_serve_nobody.sock").string();
  fs::remove(path);
  Result<SubmitResult> sent = submit_campaign(path, {"evaluate"});
  ASSERT_FALSE(sent.is_ok());
  EXPECT_EQ(sent.status().code(), ErrorCode::kSubprocessFailed);
}

TEST(CampaignServer, SubmitValidatesRequestBounds) {
  EXPECT_EQ(submit_campaign("/tmp/x.sock", {}).status().code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(submit_campaign("/tmp/x.sock",
                            std::vector<std::string>(kMaxRequestArgs + 1, "x"))
                .status()
                .code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(submit_campaign("/tmp/x.sock",
                            {std::string(kMaxRequestArgBytes + 1, 'a')})
                .status()
                .code(),
            ErrorCode::kInvalidArgument);
}

TEST(CampaignServer, SlotGateBoundsConcurrentCampaigns) {
  std::atomic<int> running{0};
  std::atomic<int> high_water{0};
  ServerFixture server(
      [&](const std::vector<std::string>&, const ProgressFn&,
          const std::atomic<bool>&) {
        const int now = running.fetch_add(1) + 1;
        int seen = high_water.load();
        while (seen < now && !high_water.compare_exchange_weak(seen, now)) {
        }
        ::usleep(100'000);  // hold the slot long enough to overlap
        running.fetch_sub(1);
        CampaignOutcome out;
        out.exit_code = 0;
        out.stdout_block = "ok\n";
        return out;
      },
      /*max_concurrent=*/1);
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int i = 0; i < 3; ++i) {
    clients.emplace_back([&server, &failures] {
      Result<SubmitResult> sent =
          submit_campaign(server.socket_path(), {"evaluate"});
      if (!sent.is_ok() || sent.value().exit_code != 0) failures.fetch_add(1);
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(high_water.load(), 1)
      << "max_concurrent=1 must serialize campaigns";
  server.shutdown();
  EXPECT_EQ(server.stats().completed, 3u);
}

TEST(CampaignServer, ClientDisconnectCancelsCampaignAndFreesSlot) {
  std::atomic<int> started{0};
  ServerFixture server(cancellable_runner(&started), /*max_concurrent=*/1);
  {
    const int fd = connect_raw(server.socket_path());
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(write_frame(fd, encode_serve_request({"evaluate"})).is_ok());
    FrameBuffer buf;
    Result<std::string> accepted = read_frame(fd, buf, 5000);
    ASSERT_TRUE(accepted.is_ok()) << accepted.status().to_string();
    ASSERT_TRUE(wait_for([&] { return started.load() > 0; }));
    ::close(fd);  // the client vanishes mid-campaign
  }
  ASSERT_TRUE(wait_for([&] { return server.stats().cancelled == 1; }))
      << "client hangup must trip the campaign's cancel token";
  // The slot is free again: a well-behaved campaign still goes through.
  Result<SubmitResult> good =
      submit_campaign(server.socket_path(), {"evaluate", "--quick"});
  ASSERT_TRUE(good.is_ok()) << good.status().to_string();
  EXPECT_EQ(good.value().exit_code, 0);
  server.shutdown();
  EXPECT_EQ(server.stats().cancelled, 1u);
  EXPECT_EQ(server.stats().completed, 1u);
}

TEST(CampaignServer, ExplicitCancelFrameStopsCampaign) {
  std::atomic<int> started{0};
  ServerFixture server(cancellable_runner(&started), /*max_concurrent=*/1);
  std::atomic<bool> cancel{false};
  SubmitOptions opts;
  opts.cancel = &cancel;
  std::thread trigger([&] {
    wait_for([&] { return started.load() > 0; });
    cancel.store(true);
  });
  Result<SubmitResult> sent =
      submit_campaign(server.socket_path(), {"evaluate"}, opts);
  trigger.join();
  ASSERT_TRUE(sent.is_ok()) << sent.status().to_string();
  EXPECT_EQ(sent.value().exit_code, 3)
      << "a cancelled campaign winds down to the resumable exit code";
  EXPECT_EQ(sent.value().stdout_block, "interrupted\n");
  server.shutdown();
  EXPECT_EQ(server.stats().cancelled, 1u);
  EXPECT_EQ(server.stats().completed, 0u);
}

TEST(CampaignServer, DeadlineStopsOverlongCampaign) {
  ServerFixture server(cancellable_runner(), /*max_concurrent=*/1,
                       /*progress_interval_ms=*/0, [](ServeConfig& config) {
                         config.campaign_deadline_ms = 60;
                       });
  Result<SubmitResult> sent =
      submit_campaign(server.socket_path(), {"evaluate"});
  ASSERT_TRUE(sent.is_ok()) << sent.status().to_string();
  EXPECT_EQ(sent.value().exit_code, 3);
  EXPECT_EQ(sent.value().stdout_block, "interrupted\n");
  server.shutdown();
  EXPECT_EQ(server.stats().deadline_stopped, 1u);
  EXPECT_EQ(server.stats().cancelled, 0u);
  EXPECT_EQ(server.stats().completed, 0u);
}

TEST(CampaignServer, QueueOverflowSendsBusyAndRetrySucceeds) {
  std::atomic<int> started{0};
  std::atomic<bool> release{false};
  CampaignRunner runner = [&](const std::vector<std::string>&,
                              const ProgressFn&,
                              const std::atomic<bool>& cancel) {
    started.fetch_add(1);
    while (!release.load() && !cancel.load()) ::usleep(2'000);
    CampaignOutcome out;
    out.exit_code = 0;
    out.stdout_block = "ok\n";
    return out;
  };
  ServerFixture server(runner, /*max_concurrent=*/1,
                       /*progress_interval_ms=*/0, [](ServeConfig& config) {
                         config.max_queued = 0;
                         config.busy_retry_after_ms = 20;
                       });
  std::thread holder(
      [&] { submit_campaign(server.socket_path(), {"evaluate"}); });
  ASSERT_TRUE(wait_for([&] { return started.load() == 1; }));
  // Without retries the overflow surfaces as kUnavailable.
  SubmitOptions no_retry;
  no_retry.busy_retries = 0;
  Result<SubmitResult> refused =
      submit_campaign(server.socket_path(), {"evaluate"}, no_retry);
  ASSERT_FALSE(refused.is_ok());
  EXPECT_EQ(refused.status().code(), ErrorCode::kUnavailable);
  EXPECT_GE(server.stats().busy, 1u);
  // With retries: the busy refusal triggers backoff, releasing the held slot
  // lets a later attempt through.
  SubmitOptions retry;
  retry.busy_retries = 20;
  retry.retry_backoff_ms = 10;
  std::atomic<int> busy_seen{0};
  retry.on_busy = [&](std::uint64_t) {
    busy_seen.fetch_add(1);
    release.store(true);
  };
  Result<SubmitResult> ok =
      submit_campaign(server.socket_path(), {"evaluate"}, retry);
  holder.join();
  ASSERT_TRUE(ok.is_ok()) << ok.status().to_string();
  EXPECT_EQ(ok.value().exit_code, 0);
  EXPECT_GE(busy_seen.load(), 1);
  server.shutdown();
  EXPECT_EQ(server.stats().completed, 2u);
}

TEST(CampaignServer, HeartbeatsReachTheClient) {
  CampaignRunner slow = [](const std::vector<std::string>&, const ProgressFn&,
                           const std::atomic<bool>& cancel) {
    for (int i = 0; i < 15 && !cancel.load(); ++i) ::usleep(10'000);
    CampaignOutcome out;
    out.exit_code = 0;
    out.stdout_block = "ok\n";
    return out;
  };
  ServerFixture server(slow, /*max_concurrent=*/1, /*progress_interval_ms=*/0,
                       [](ServeConfig& config) {
                         config.heartbeat_interval_ms = 10;
                       });
  std::atomic<int> beats{0};
  SubmitOptions opts;
  opts.on_heartbeat = [&] { beats.fetch_add(1); };
  Result<SubmitResult> sent =
      submit_campaign(server.socket_path(), {"evaluate"}, opts);
  ASSERT_TRUE(sent.is_ok()) << sent.status().to_string();
  EXPECT_EQ(sent.value().exit_code, 0);
  EXPECT_GE(beats.load(), 1)
      << "a 150 ms campaign at 10 ms heartbeat spacing must beat at least "
         "once";
}

TEST(CampaignServer, IdleTimeoutFlagsWedgedDaemon) {
  // Heartbeats off: from the client's view the daemon goes silent after the
  // accepted frame, which is exactly what a wedged daemon looks like.
  ServerFixture server(cancellable_runner(), /*max_concurrent=*/1,
                       /*progress_interval_ms=*/200, [](ServeConfig& config) {
                         config.heartbeat_interval_ms = 0;
                       });
  SubmitOptions opts;
  opts.idle_timeout_ms = 80;
  Result<SubmitResult> sent =
      submit_campaign(server.socket_path(), {"evaluate"}, opts);
  ASSERT_FALSE(sent.is_ok());
  EXPECT_EQ(sent.status().code(), ErrorCode::kDeadlineExceeded);
  EXPECT_NE(sent.status().to_string().find("wedged"), std::string::npos)
      << sent.status().to_string();
}

TEST(CampaignServer, HandlerThreadsAreReaped) {
  ServerFixture server(ok_runner(), /*max_concurrent=*/2);
  for (int i = 0; i < 32; ++i) {
    Result<SubmitResult> sent =
        submit_campaign(server.socket_path(), {"evaluate"});
    ASSERT_TRUE(sent.is_ok()) << sent.status().to_string();
    ASSERT_EQ(sent.value().exit_code, 0);
  }
  // The accept loop reaps finished handlers every tick: the live set must
  // shrink back to ~0 instead of holding one thread per connection ever
  // accepted.
  EXPECT_TRUE(wait_for([&] { return server.live_handlers() <= 2; }, 3000))
      << "live handlers after 32 sequential campaigns: "
      << server.live_handlers();
  server.shutdown();
  EXPECT_EQ(server.stats().completed, 32u);
}

TEST(CampaignServer, ClientGoneRightAfterRequestDoesNotLeakSlots) {
  ServerFixture server(ok_runner(), /*max_concurrent=*/1);
  for (int i = 0; i < 5; ++i) {
    const int fd = connect_raw(server.socket_path());
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(write_frame(fd, encode_serve_request({"evaluate"})).is_ok());
    ::close(fd);  // gone before (or while) the accepted frame ships
  }
  // Each of the five resolves as completed (runner won the race) or
  // cancelled (the hangup was seen first) — never as a leaked slot.
  ASSERT_TRUE(wait_for([&] {
    const ServeStats s = server.stats();
    return s.completed + s.cancelled == 5;
  }));
  Result<SubmitResult> good =
      submit_campaign(server.socket_path(), {"evaluate"});
  ASSERT_TRUE(good.is_ok()) << good.status().to_string();
  EXPECT_EQ(good.value().exit_code, 0);
}

TEST(CampaignServer, ProtocolStageDisconnectsNeverWedgeTheDaemon) {
  std::atomic<int> started{0};
  ServerFixture server(cancellable_runner(&started), /*max_concurrent=*/2);
  for (int round = 0; round < 3; ++round) {
    // (a) Connect and vanish before any frame.
    int fd = connect_raw(server.socket_path());
    ASSERT_GE(fd, 0);
    ::close(fd);
    // (b) A torn length prefix, then vanish.
    fd = connect_raw(server.socket_path());
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::write(fd, "\x02\x00", 2), 2);
    ::close(fd);
    // (c) A full request, then vanish before reading anything back.
    fd = connect_raw(server.socket_path());
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(write_frame(fd, encode_serve_request({"evaluate"})).is_ok());
    ::close(fd);
    // (d) A full request, read the accepted frame, vanish mid-campaign.
    fd = connect_raw(server.socket_path());
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(write_frame(fd, encode_serve_request({"evaluate"})).is_ok());
    FrameBuffer buf;
    Result<std::string> accepted = read_frame(fd, buf, 5000);
    ASSERT_TRUE(accepted.is_ok()) << accepted.status().to_string();
    ::close(fd);
  }
  // Every slow campaign winds down via its cancel token, every torn opener
  // is rejected, and no slot or handler leaks.
  ASSERT_TRUE(wait_for([&] {
    const ServeStats s = server.stats();
    return s.cancelled + s.completed == 6 && s.rejected == 6;
  })) << "cancelled=" << server.stats().cancelled
      << " completed=" << server.stats().completed
      << " rejected=" << server.stats().rejected;
  Result<SubmitResult> good =
      submit_campaign(server.socket_path(), {"evaluate", "--quick"});
  ASSERT_TRUE(good.is_ok()) << good.status().to_string();
  EXPECT_EQ(good.value().exit_code, 0);
  EXPECT_TRUE(wait_for([&] { return server.live_handlers() <= 2; }, 3000))
      << server.live_handlers();
  server.shutdown();
  EXPECT_TRUE(server.status().is_ok()) << server.status().to_string();
}

TEST(CampaignServer, MalformedOpenerIsRejectedNotFatal) {
  ServerFixture server(ok_runner());
  {
    // A client whose first frame is not a request (a progress frame) must be
    // turned away with a kError frame, and the daemon must keep serving.
    const int fd = connect_raw(server.socket_path());
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(write_frame(fd, encode_serve_progress(1, 2)).is_ok());
    FrameBuffer buf;
    Result<std::string> reply = read_frame(fd, buf, 5000);
    ASSERT_TRUE(reply.is_ok()) << reply.status().to_string();
    ServeMessage msg;
    ASSERT_TRUE(decode_serve_message(reply.value(), &msg));
    EXPECT_EQ(msg.type, ServeWire::kError);
    EXPECT_EQ(msg.exit_code, 2);
    ::close(fd);
  }
  Result<SubmitResult> good =
      submit_campaign(server.socket_path(), {"evaluate"});
  ASSERT_TRUE(good.is_ok()) << good.status().to_string();
  EXPECT_EQ(good.value().exit_code, 0);
  server.shutdown();
  EXPECT_TRUE(server.status().is_ok());
  EXPECT_EQ(server.stats().rejected, 1u);
  EXPECT_EQ(server.stats().completed, 1u);
}

TEST(CampaignServer, StaleSocketFileIsReplaced) {
  const std::string path =
      (fs::path(::testing::TempDir()) / "fav_serve_stale.sock").string();
  fs::remove(path);
  // A crashed daemon leaves a socket path nothing accepts on. A plain file
  // reproduces the same bind EADDRINUSE + dead probe-connect sequence.
  { std::ofstream(path) << ""; }
  ASSERT_TRUE(fs::exists(path));
  std::atomic<bool> stop{false};
  ServeConfig config;
  config.socket_path = path;
  config.max_concurrent = 1;
  config.stop = &stop;
  config.log = [](const std::string&) {};
  CampaignServer server(config, ok_runner());
  Status status = Status::ok();
  std::thread t([&] { status = server.serve(); });
  bool served = false;
  for (int i = 0; i < 500 && !served; ++i) {
    Result<SubmitResult> sent = submit_campaign(path, {"evaluate"});
    if (sent.is_ok()) {
      EXPECT_EQ(sent.value().exit_code, 0);
      served = true;
    } else {
      ::usleep(10'000);
    }
  }
  stop.store(true);
  t.join();
  EXPECT_TRUE(served) << status.to_string();
  EXPECT_TRUE(status.is_ok()) << status.to_string();
  EXPECT_FALSE(fs::exists(path)) << "clean shutdown unlinks the socket";
}

TEST(CampaignServer, RefusesToHijackALiveDaemon) {
  ServerFixture server(ok_runner());
  ASSERT_TRUE(fs::exists(server.socket_path()));
  std::atomic<bool> stop{false};
  ServeConfig config;
  config.socket_path = server.socket_path();
  config.stop = &stop;
  config.log = [](const std::string&) {};
  CampaignServer second(config, ok_runner());
  const Status status = second.serve();
  ASSERT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), ErrorCode::kFailedPrecondition);
}

TEST(CampaignServer, ConfigValidation) {
  std::atomic<bool> stop{false};
  {
    ServeConfig config;  // no stop flag
    config.socket_path = "/tmp/x.sock";
    CampaignServer server(config, ok_runner());
    EXPECT_EQ(server.serve().code(), ErrorCode::kInvalidArgument);
  }
  {
    ServeConfig config;
    config.socket_path = "/tmp/x.sock";
    config.stop = &stop;
    config.max_concurrent = 0;
    CampaignServer server(config, ok_runner());
    EXPECT_EQ(server.serve().code(), ErrorCode::kInvalidArgument);
  }
  {
    ServeConfig config;
    config.socket_path = std::string(200, 'a');  // exceeds sun_path
    config.stop = &stop;
    CampaignServer server(config, ok_runner());
    EXPECT_EQ(server.serve().code(), ErrorCode::kInvalidArgument);
  }
}

// --- crash-recovery ledger --------------------------------------------------

std::string fresh_ledger_path(const std::string& tag) {
  const std::string path =
      (fs::path(::testing::TempDir()) /
       ("fav_ledger_" + tag + "_" + std::to_string(::getpid()) + ".fvl"))
          .string();
  fs::remove(path);
  return path;
}

TEST(CampaignLedger, LifecycleRoundTripAcrossReopen) {
  const std::string path = fresh_ledger_path("roundtrip");
  const std::vector<std::string> args2 = {"evaluate", "--seed", "7"};
  {
    Result<CampaignLedger> lg = CampaignLedger::open(path);
    ASSERT_TRUE(lg.is_ok()) << lg.status().to_string();
    EXPECT_EQ(lg.value().next_campaign_id(), 1u);
    ASSERT_TRUE(
        lg.value().accepted(1, {"evaluate", "--samples", "8"}).is_ok());
    ASSERT_TRUE(lg.value().running(1).is_ok());
    ASSERT_TRUE(lg.value().finished(1, 0).is_ok());
    ASSERT_TRUE(lg.value().accepted(2, args2).is_ok());
    ASSERT_TRUE(lg.value().running(2).is_ok());
    ASSERT_TRUE(lg.value().accepted(3, {"evaluate"}).is_ok());
  }
  Result<CampaignLedger> lg = CampaignLedger::open(path);
  ASSERT_TRUE(lg.is_ok()) << lg.status().to_string();
  EXPECT_EQ(lg.value().discarded_bytes(), 0u);
  EXPECT_EQ(lg.value().next_campaign_id(), 4u);
  const std::vector<CampaignLedger::Entry> open_entries =
      lg.value().interrupted();
  ASSERT_EQ(open_entries.size(), 2u)
      << "finished campaigns must not be replayed";
  EXPECT_EQ(open_entries[0].id, 2u);
  EXPECT_EQ(open_entries[0].state, CampaignState::kRunning);
  EXPECT_EQ(open_entries[0].args, args2)
      << "the argv from the accepted record must survive the running record";
  EXPECT_EQ(open_entries[1].id, 3u);
  EXPECT_EQ(open_entries[1].state, CampaignState::kAccepted);
}

TEST(CampaignLedger, TornTailIsTruncatedNotFatal) {
  const std::string path = fresh_ledger_path("torn");
  {
    Result<CampaignLedger> lg = CampaignLedger::open(path);
    ASSERT_TRUE(lg.is_ok());
    ASSERT_TRUE(lg.value().accepted(1, {"evaluate"}).is_ok());
    ASSERT_TRUE(lg.value().finished(1, 0).is_ok());
  }
  // A SIGKILL mid-append leaves a length prefix that promises more bytes
  // than exist.
  {
    std::ofstream f(path, std::ios::binary | std::ios::app);
    f.write("\x40\x00\x00\x00ab", 6);
  }
  {
    Result<CampaignLedger> lg = CampaignLedger::open(path);
    ASSERT_TRUE(lg.is_ok()) << lg.status().to_string();
    EXPECT_EQ(lg.value().discarded_bytes(), 6u);
    EXPECT_TRUE(lg.value().interrupted().empty());
    EXPECT_EQ(lg.value().next_campaign_id(), 2u);
    // The truncated ledger keeps accepting appends...
    ASSERT_TRUE(lg.value().accepted(2, {"evaluate", "--quick"}).is_ok());
  }
  // ...and the post-truncation record replays cleanly.
  Result<CampaignLedger> lg = CampaignLedger::open(path);
  ASSERT_TRUE(lg.is_ok()) << lg.status().to_string();
  EXPECT_EQ(lg.value().discarded_bytes(), 0u);
  ASSERT_EQ(lg.value().interrupted().size(), 1u);
  EXPECT_EQ(lg.value().interrupted()[0].id, 2u);
}

TEST(CampaignLedger, CorruptTailRecordIsDiscarded) {
  const std::string path = fresh_ledger_path("crc");
  {
    Result<CampaignLedger> lg = CampaignLedger::open(path);
    ASSERT_TRUE(lg.is_ok());
    ASSERT_TRUE(lg.value().accepted(1, {"evaluate"}).is_ok());
    ASSERT_TRUE(lg.value().running(1).is_ok());
    ASSERT_TRUE(lg.value().accepted(2, {"evaluate", "--x"}).is_ok());
  }
  // Flip the last byte (inside the final record's CRC): that record must be
  // discarded, everything before it must survive.
  std::string bytes;
  {
    std::ifstream f(path, std::ios::binary);
    std::ostringstream ss;
    ss << f.rdbuf();
    bytes = ss.str();
  }
  ASSERT_FALSE(bytes.empty());
  bytes.back() = static_cast<char>(bytes.back() ^ 0xFF);
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  Result<CampaignLedger> lg = CampaignLedger::open(path);
  ASSERT_TRUE(lg.is_ok()) << lg.status().to_string();
  EXPECT_GT(lg.value().discarded_bytes(), 0u);
  const std::vector<CampaignLedger::Entry> open_entries =
      lg.value().interrupted();
  ASSERT_EQ(open_entries.size(), 1u);
  EXPECT_EQ(open_entries[0].id, 1u);
  EXPECT_EQ(open_entries[0].state, CampaignState::kRunning);
  EXPECT_EQ(lg.value().next_campaign_id(), 2u)
      << "the discarded accepted(2) record must not advance the id";
}

TEST(CampaignLedger, RefusesANonLedgerFile) {
  const std::string path = fresh_ledger_path("magic");
  { std::ofstream(path) << "this is not a ledger\n"; }
  Result<CampaignLedger> lg = CampaignLedger::open(path);
  ASSERT_FALSE(lg.is_ok());
  EXPECT_EQ(lg.status().code(), ErrorCode::kJournalCorrupt);
}

TEST(CampaignServer, RecoversInterruptedCampaignsFromLedger) {
  const fs::path dir =
      fs::path(::testing::TempDir()) /
      ("fav_recover_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir / "journal_resume");
  fs::create_directories(dir / "journal_fresh");
  // Campaign 1 left journal shards behind; campaign 2 never wrote any.
  { std::ofstream(dir / "journal_resume" / "shard-000.fj") << "x"; }
  const std::string ledger_path = (dir / "ledger.fvl").string();
  {
    Result<CampaignLedger> lg = CampaignLedger::open(ledger_path);
    ASSERT_TRUE(lg.is_ok()) << lg.status().to_string();
    ASSERT_TRUE(lg.value()
                    .accepted(1, {"evaluate", "--journal",
                                  (dir / "journal_resume").string()})
                    .is_ok());
    ASSERT_TRUE(lg.value().running(1).is_ok());
    ASSERT_TRUE(lg.value()
                    .accepted(2, {"evaluate", "--journal",
                                  (dir / "journal_fresh").string()})
                    .is_ok());
  }
  std::mutex mu;
  std::map<std::string, std::vector<std::string>> recovered;  // by journal
  ServerFixture server(
      ok_runner(), /*max_concurrent=*/2, /*progress_interval_ms=*/0,
      [&](ServeConfig& config) {
        config.ledger_path = ledger_path;
        config.recovery_runner = [&](const std::vector<std::string>& args,
                                     const ProgressFn&,
                                     const std::atomic<bool>&) {
          const auto it = std::find(args.begin(), args.end(), "--journal");
          std::lock_guard<std::mutex> lock(mu);
          recovered[it != args.end() && it + 1 != args.end() ? *(it + 1)
                                                            : "?"] = args;
          CampaignOutcome out;
          out.exit_code = 0;
          out.stdout_block = "ok\n";
          return out;
        };
      });
  ASSERT_TRUE(wait_for([&] { return server.stats().recovered == 2; }))
      << "recovered=" << server.stats().recovered;
  server.shutdown();
  {
    std::lock_guard<std::mutex> lock(mu);
    ASSERT_EQ(recovered.size(), 2u);
    const std::vector<std::string>& with_shards =
        recovered[(dir / "journal_resume").string()];
    const std::vector<std::string>& without_shards =
        recovered[(dir / "journal_fresh").string()];
    EXPECT_NE(std::find(with_shards.begin(), with_shards.end(), "--resume"),
              with_shards.end())
        << "a journal with shards must be resumed, not restarted";
    EXPECT_EQ(std::find(without_shards.begin(), without_shards.end(),
                        "--resume"),
              without_shards.end())
        << "an empty journal must be restarted fresh (no --resume)";
  }
  // Both ledger entries are closed: a second start recovers nothing, and ids
  // keep advancing past the recovered campaigns.
  Result<CampaignLedger> lg = CampaignLedger::open(ledger_path);
  ASSERT_TRUE(lg.is_ok()) << lg.status().to_string();
  EXPECT_TRUE(lg.value().interrupted().empty());
  EXPECT_GE(lg.value().next_campaign_id(), 3u);
  fs::remove_all(dir);
}

TEST(CampaignServer, StatsSnapshotIsWrittenOnDrain) {
  const std::string stats_path =
      (fs::path(::testing::TempDir()) /
       ("fav_stats_" + std::to_string(::getpid()) + ".json"))
          .string();
  fs::remove(stats_path);
  ServerFixture server(ok_runner(), /*max_concurrent=*/1,
                       /*progress_interval_ms=*/0, [&](ServeConfig& config) {
                         config.stats_path = stats_path;
                       });
  Result<SubmitResult> sent =
      submit_campaign(server.socket_path(), {"evaluate"});
  ASSERT_TRUE(sent.is_ok()) << sent.status().to_string();
  server.shutdown();
  std::ifstream f(stats_path);
  ASSERT_TRUE(f.good()) << "drain must publish the stats snapshot";
  std::ostringstream ss;
  ss << f.rdbuf();
  const std::string json = ss.str();
  EXPECT_NE(json.find("\"schema\": \"fav.serve_stats.v1\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"completed\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"cancelled\": 0"), std::string::npos) << json;
  fs::remove(stats_path);
}

}  // namespace
}  // namespace fav::mc
