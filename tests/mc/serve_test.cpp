// Tests for the campaign serving tier (mc/serve.h): wire codec round-trips
// and strict rejection, plus a real Unix-socket server driven through
// submit_campaign with a fake CampaignRunner — result streaming, progress,
// error paths, the concurrency slot gate and graceful drain.
#include "mc/serve.h"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/subprocess.h"

namespace fav::mc {
namespace {

namespace fs = std::filesystem;

TEST(ServeCodec, RequestRoundTrip) {
  const std::vector<std::string> args = {"evaluate", "--samples", "400",
                                         "--seed", "2017"};
  ServeMessage msg;
  ASSERT_TRUE(decode_serve_message(encode_serve_request(args), &msg));
  EXPECT_EQ(msg.type, ServeWire::kRequest);
  EXPECT_EQ(msg.args, args);
}

TEST(ServeCodec, AllServerFramesRoundTrip) {
  ServeMessage msg;
  ASSERT_TRUE(decode_serve_message(encode_serve_accepted(42), &msg));
  EXPECT_EQ(msg.type, ServeWire::kAccepted);
  EXPECT_EQ(msg.campaign_id, 42u);

  ASSERT_TRUE(decode_serve_message(encode_serve_progress(7, 400), &msg));
  EXPECT_EQ(msg.type, ServeWire::kProgress);
  EXPECT_EQ(msg.done, 7u);
  EXPECT_EQ(msg.total, 400u);

  ASSERT_TRUE(decode_serve_message(encode_serve_stdout("SSF : 0.5\n"), &msg));
  EXPECT_EQ(msg.type, ServeWire::kStdout);
  EXPECT_EQ(msg.text, "SSF : 0.5\n");

  ASSERT_TRUE(decode_serve_message(encode_serve_report("{}\n"), &msg));
  EXPECT_EQ(msg.type, ServeWire::kReport);
  EXPECT_EQ(msg.text, "{}\n");

  ASSERT_TRUE(decode_serve_message(encode_serve_finished(3), &msg));
  EXPECT_EQ(msg.type, ServeWire::kFinished);
  EXPECT_EQ(msg.exit_code, 3);

  ASSERT_TRUE(decode_serve_message(encode_serve_error("bad request", 2), &msg));
  EXPECT_EQ(msg.type, ServeWire::kError);
  EXPECT_EQ(msg.text, "bad request");
  EXPECT_EQ(msg.exit_code, 2);
}

TEST(ServeCodec, RejectsMalformedPayloads) {
  ServeMessage msg;
  EXPECT_FALSE(decode_serve_message("", &msg));
  EXPECT_FALSE(decode_serve_message(std::string(1, '\x00'), &msg));
  EXPECT_FALSE(decode_serve_message(std::string(1, '\x63'), &msg));
  // Truncated fields.
  const std::string acc = encode_serve_accepted(7);
  EXPECT_FALSE(decode_serve_message(
      std::string_view(acc).substr(0, acc.size() - 1), &msg));
  const std::string prog = encode_serve_progress(1, 2);
  EXPECT_FALSE(decode_serve_message(
      std::string_view(prog).substr(0, prog.size() - 3), &msg));
  // Trailing bytes after a complete message.
  EXPECT_FALSE(decode_serve_message(encode_serve_finished(0) + "x", &msg));
  // Request bounds: zero args, too many args, an oversized arg.
  std::string zero;
  zero.push_back(static_cast<char>(ServeWire::kRequest));
  zero.append("\x00\x00\x00\x00", 4);
  EXPECT_FALSE(decode_serve_message(zero, &msg));
  EXPECT_FALSE(decode_serve_message(
      encode_serve_request(std::vector<std::string>(kMaxRequestArgs + 1, "x")),
      &msg));
  EXPECT_FALSE(decode_serve_message(
      encode_serve_request({std::string(kMaxRequestArgBytes + 1, 'a')}),
      &msg));
  // The same shapes at the bound are fine.
  EXPECT_TRUE(decode_serve_message(
      encode_serve_request(std::vector<std::string>(kMaxRequestArgs, "x")),
      &msg));
  EXPECT_TRUE(decode_serve_message(
      encode_serve_request({std::string(kMaxRequestArgBytes, 'a')}), &msg));
}

/// One live CampaignServer on a fresh socket path, torn down via the stop
/// flag on destruction. The runner is supplied per test.
class ServerFixture {
 public:
  explicit ServerFixture(CampaignRunner runner, std::size_t max_concurrent = 1,
                         std::uint64_t progress_interval_ms = 0) {
    socket_path_ = (fs::path(::testing::TempDir()) /
                    ("fav_serve_" + std::to_string(::getpid()) + "_" +
                     std::to_string(counter_++) + ".sock"))
                       .string();
    fs::remove(socket_path_);
    ServeConfig config;
    config.socket_path = socket_path_;
    config.max_concurrent = max_concurrent;
    config.progress_interval_ms = progress_interval_ms;
    config.stop = &stop_;
    config.log = [](const std::string&) {};  // keep test output quiet
    server_ = std::make_unique<CampaignServer>(config, std::move(runner));
    thread_ = std::thread([this] { status_ = server_->serve(); });
    // serve() owns the bind; wait until the socket exists (or fails fast).
    for (int i = 0; i < 500 && !fs::exists(socket_path_); ++i) {
      ::usleep(10'000);
    }
  }

  ~ServerFixture() { shutdown(); }

  void shutdown() {
    if (thread_.joinable()) {
      stop_.store(true);
      thread_.join();
    }
  }

  const std::string& socket_path() const { return socket_path_; }
  const Status& status() const { return status_; }
  const ServeStats& stats() const { return server_->stats(); }

 private:
  static inline std::atomic<int> counter_{0};
  std::string socket_path_;
  std::atomic<bool> stop_{false};
  std::unique_ptr<CampaignServer> server_;
  std::thread thread_;
  Status status_ = Status::ok();
};

CampaignRunner ok_runner() {
  return [](const std::vector<std::string>&, const ProgressFn&) {
    CampaignOutcome out;
    out.exit_code = 0;
    out.stdout_block = "ok\n";
    return out;
  };
}

TEST(CampaignServer, StreamsOutcomeProgressAndReport) {
  ServerFixture server(
      [](const std::vector<std::string>& args, const ProgressFn& progress) {
        CampaignOutcome out;
        out.exit_code = 0;
        out.stdout_block = "SSF : 0.25\n";
        out.report_json = "{\"args\": " + std::to_string(args.size()) + "}\n";
        for (std::uint64_t i = 1; i <= 5; ++i) progress(i, 5);
        return out;
      },
      /*max_concurrent=*/2);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> seen;
  Result<SubmitResult> sent = submit_campaign(
      server.socket_path(), {"evaluate", "--samples", "5"},
      [&seen](std::uint64_t done, std::uint64_t total) {
        seen.emplace_back(done, total);
      });
  ASSERT_TRUE(sent.is_ok()) << sent.status().to_string();
  EXPECT_EQ(sent.value().exit_code, 0);
  EXPECT_EQ(sent.value().stdout_block, "SSF : 0.25\n");
  EXPECT_EQ(sent.value().report_json, "{\"args\": 3}\n");
  EXPECT_TRUE(sent.value().error.empty());
  // interval 0: every tick streams, and the final 5/5 frame always ships.
  ASSERT_FALSE(seen.empty());
  EXPECT_EQ(seen.back(), (std::pair<std::uint64_t, std::uint64_t>(5, 5)));
  server.shutdown();
  EXPECT_TRUE(server.status().is_ok()) << server.status().to_string();
  EXPECT_EQ(server.stats().accepted, 1u);
  EXPECT_EQ(server.stats().completed, 1u);
  EXPECT_EQ(server.stats().rejected, 0u);
}

TEST(CampaignServer, RunnerErrorReachesClientWithExitCode) {
  ServerFixture server([](const std::vector<std::string>&, const ProgressFn&) {
    CampaignOutcome out;
    out.exit_code = 2;
    out.error = "unknown flag --bogus";
    return out;
  });
  Result<SubmitResult> sent =
      submit_campaign(server.socket_path(), {"evaluate", "--bogus"});
  ASSERT_TRUE(sent.is_ok()) << sent.status().to_string();
  EXPECT_EQ(sent.value().exit_code, 2);
  EXPECT_EQ(sent.value().error, "unknown flag --bogus");
  EXPECT_TRUE(sent.value().stdout_block.empty());
}

TEST(CampaignServer, SubmitFailsCleanlyWithoutDaemon) {
  const std::string path =
      (fs::path(::testing::TempDir()) / "fav_serve_nobody.sock").string();
  fs::remove(path);
  Result<SubmitResult> sent = submit_campaign(path, {"evaluate"});
  ASSERT_FALSE(sent.is_ok());
  EXPECT_EQ(sent.status().code(), ErrorCode::kSubprocessFailed);
}

TEST(CampaignServer, SubmitValidatesRequestBounds) {
  EXPECT_EQ(submit_campaign("/tmp/x.sock", {}).status().code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(submit_campaign("/tmp/x.sock",
                            std::vector<std::string>(kMaxRequestArgs + 1, "x"))
                .status()
                .code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(submit_campaign("/tmp/x.sock",
                            {std::string(kMaxRequestArgBytes + 1, 'a')})
                .status()
                .code(),
            ErrorCode::kInvalidArgument);
}

TEST(CampaignServer, SlotGateBoundsConcurrentCampaigns) {
  std::atomic<int> running{0};
  std::atomic<int> high_water{0};
  ServerFixture server(
      [&](const std::vector<std::string>&, const ProgressFn&) {
        const int now = running.fetch_add(1) + 1;
        int seen = high_water.load();
        while (seen < now && !high_water.compare_exchange_weak(seen, now)) {
        }
        ::usleep(100'000);  // hold the slot long enough to overlap
        running.fetch_sub(1);
        CampaignOutcome out;
        out.exit_code = 0;
        out.stdout_block = "ok\n";
        return out;
      },
      /*max_concurrent=*/1);
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int i = 0; i < 3; ++i) {
    clients.emplace_back([&server, &failures] {
      Result<SubmitResult> sent =
          submit_campaign(server.socket_path(), {"evaluate"});
      if (!sent.is_ok() || sent.value().exit_code != 0) failures.fetch_add(1);
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(high_water.load(), 1)
      << "max_concurrent=1 must serialize campaigns";
  server.shutdown();
  EXPECT_EQ(server.stats().completed, 3u);
}

TEST(CampaignServer, MalformedOpenerIsRejectedNotFatal) {
  ServerFixture server(ok_runner());
  {
    // A client whose first frame is not a request (a progress frame) must be
    // turned away with a kError frame, and the daemon must keep serving.
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, server.socket_path().c_str(),
                server.socket_path().size());
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    ASSERT_TRUE(write_frame(fd, encode_serve_progress(1, 2)).is_ok());
    FrameBuffer buf;
    Result<std::string> reply = read_frame(fd, buf, 5000);
    ASSERT_TRUE(reply.is_ok()) << reply.status().to_string();
    ServeMessage msg;
    ASSERT_TRUE(decode_serve_message(reply.value(), &msg));
    EXPECT_EQ(msg.type, ServeWire::kError);
    EXPECT_EQ(msg.exit_code, 2);
    ::close(fd);
  }
  Result<SubmitResult> good =
      submit_campaign(server.socket_path(), {"evaluate"});
  ASSERT_TRUE(good.is_ok()) << good.status().to_string();
  EXPECT_EQ(good.value().exit_code, 0);
  server.shutdown();
  EXPECT_TRUE(server.status().is_ok());
  EXPECT_EQ(server.stats().rejected, 1u);
  EXPECT_EQ(server.stats().completed, 1u);
}

TEST(CampaignServer, StaleSocketFileIsReplaced) {
  const std::string path =
      (fs::path(::testing::TempDir()) / "fav_serve_stale.sock").string();
  fs::remove(path);
  // A crashed daemon leaves a socket path nothing accepts on. A plain file
  // reproduces the same bind EADDRINUSE + dead probe-connect sequence.
  { std::ofstream(path) << ""; }
  ASSERT_TRUE(fs::exists(path));
  std::atomic<bool> stop{false};
  ServeConfig config;
  config.socket_path = path;
  config.max_concurrent = 1;
  config.stop = &stop;
  config.log = [](const std::string&) {};
  CampaignServer server(config, ok_runner());
  Status status = Status::ok();
  std::thread t([&] { status = server.serve(); });
  bool served = false;
  for (int i = 0; i < 500 && !served; ++i) {
    Result<SubmitResult> sent = submit_campaign(path, {"evaluate"});
    if (sent.is_ok()) {
      EXPECT_EQ(sent.value().exit_code, 0);
      served = true;
    } else {
      ::usleep(10'000);
    }
  }
  stop.store(true);
  t.join();
  EXPECT_TRUE(served) << status.to_string();
  EXPECT_TRUE(status.is_ok()) << status.to_string();
  EXPECT_FALSE(fs::exists(path)) << "clean shutdown unlinks the socket";
}

TEST(CampaignServer, RefusesToHijackALiveDaemon) {
  ServerFixture server(ok_runner());
  ASSERT_TRUE(fs::exists(server.socket_path()));
  std::atomic<bool> stop{false};
  ServeConfig config;
  config.socket_path = server.socket_path();
  config.stop = &stop;
  config.log = [](const std::string&) {};
  CampaignServer second(config, ok_runner());
  const Status status = second.serve();
  ASSERT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), ErrorCode::kFailedPrecondition);
}

TEST(CampaignServer, ConfigValidation) {
  std::atomic<bool> stop{false};
  {
    ServeConfig config;  // no stop flag
    config.socket_path = "/tmp/x.sock";
    CampaignServer server(config, ok_runner());
    EXPECT_EQ(server.serve().code(), ErrorCode::kInvalidArgument);
  }
  {
    ServeConfig config;
    config.socket_path = "/tmp/x.sock";
    config.stop = &stop;
    config.max_concurrent = 0;
    CampaignServer server(config, ok_runner());
    EXPECT_EQ(server.serve().code(), ErrorCode::kInvalidArgument);
  }
  {
    ServeConfig config;
    config.socket_path = std::string(200, 'a');  // exceeds sun_path
    config.stop = &stop;
    CampaignServer server(config, ok_runner());
    EXPECT_EQ(server.serve().code(), ErrorCode::kInvalidArgument);
  }
}

}  // namespace
}  // namespace fav::mc
