// Unit tests for the supervisor building blocks that need no worker
// processes: the wire codec, the multi-shard journal merge (gap/overlap/
// fingerprint validation), and the sample cross-check predicate. The
// end-to-end supervised campaigns (real fork/exec workers, chaos kills,
// quarantine) live in tests/tools/supervise_cli_test.cpp.
#include "mc/supervisor.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "mc/journal.h"

namespace fav::mc {
namespace {

namespace fs = std::filesystem;
using faultsim::FaultSample;

std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("fav_sup_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

SampleRecord make_record(int i) {
  SampleRecord rec;
  rec.sample.technique = faultsim::TechniqueKind::kRadiation;
  rec.sample.t = 3 + i;
  rec.sample.center = static_cast<netlist::NodeId>(17 * i + 1);
  rec.sample.radius = 1.25;
  rec.sample.strike_frac = 0.75;
  rec.sample.depth = 0.5;
  rec.sample.impact_cycles = 1;
  rec.sample.weight = 0.5 + i;
  rec.path = OutcomePath::kRtl;
  rec.success = i % 2 == 0;
  rec.contribution = 0.125 * i;
  return rec;
}

JournalMeta test_meta(std::uint64_t total) {
  JournalMeta meta;
  meta.fingerprint = 0xFEEDFACE12345678ull;
  meta.total_samples = total;
  meta.context = "test/campaign";
  return meta;
}

/// Writes one worker shard file covering [lo, hi) with make_record payloads.
void write_shard_file(const std::string& dir, std::size_t worker_id,
                      const JournalMeta& meta,
                      const std::vector<std::pair<std::size_t, std::size_t>>&
                          ranges) {
  JournalWriter writer;
  ASSERT_TRUE(
      writer.open_fresh(dir, meta, worker_journal_file(worker_id)).is_ok());
  for (const auto& [lo, hi] : ranges) {
    std::vector<SampleRecord> records;
    for (std::size_t i = lo; i < hi; ++i) {
      records.push_back(make_record(static_cast<int>(i)));
    }
    ASSERT_TRUE(
        writer.append_shard(lo, records.data(), records.size()).is_ok());
  }
}

// --- wire codec -----------------------------------------------------------

TEST(SupervisorCodec, ControlMessagesRoundTrip) {
  WireMessage msg;
  ASSERT_TRUE(decode_message(encode_ready(), &msg));
  EXPECT_EQ(msg.type, WireType::kReady);
  ASSERT_TRUE(decode_message(encode_shutdown(), &msg));
  EXPECT_EQ(msg.type, WireType::kShutdown);

  ASSERT_TRUE(decode_message(encode_assign(17, 42), &msg));
  EXPECT_EQ(msg.type, WireType::kAssign);
  EXPECT_EQ(msg.lo, 17u);
  EXPECT_EQ(msg.hi, 42u);

  ASSERT_TRUE(decode_message(encode_done(1024, 1280), &msg));
  EXPECT_EQ(msg.type, WireType::kDone);
  EXPECT_EQ(msg.lo, 1024u);
  EXPECT_EQ(msg.hi, 1280u);
}

TEST(SupervisorCodec, ProgressRoundTripsExactDoubles) {
  WireMessage msg;
  ASSERT_TRUE(
      decode_message(encode_progress(987654321, 0.1 + 0.2, 1.75, true), &msg));
  EXPECT_EQ(msg.type, WireType::kProgress);
  EXPECT_EQ(msg.index, 987654321u);
  EXPECT_EQ(msg.contribution, 0.1 + 0.2);  // bitwise
  EXPECT_EQ(msg.weight, 1.75);
  EXPECT_TRUE(msg.failed);
}

TEST(SupervisorCodec, MetricsRoundTripThroughSink) {
  MetricsSink sink;
  sink.add_counter("eval.samples", 42);
  sink.set_gauge("ssf.running", 0.125);
  WireMessage msg;
  ASSERT_TRUE(decode_message(encode_metrics(sink), &msg));
  EXPECT_EQ(msg.type, WireType::kMetrics);
  MetricsSink back;
  ASSERT_TRUE(back.deserialize(msg.blob));
  EXPECT_EQ(back.counters().at("eval.samples"), 42u);
  EXPECT_EQ(back.gauges().at("ssf.running"), 0.125);
}

TEST(SupervisorCodec, RejectsMalformedPayloads) {
  WireMessage msg;
  EXPECT_FALSE(decode_message("", &msg));
  EXPECT_FALSE(decode_message(std::string(1, '\x00'), &msg));  // unknown type
  EXPECT_FALSE(decode_message(std::string(1, '\x63'), &msg));  // unknown type
  // Truncated ASSIGN: type byte + 4 bytes instead of 16.
  std::string truncated = encode_assign(1, 2).substr(0, 5);
  EXPECT_FALSE(decode_message(truncated, &msg));
  // Trailing garbage after a well-formed READY.
  EXPECT_FALSE(decode_message(encode_ready() + "x", &msg));
}

TEST(SupervisorCodec, WorkerJournalFileNames) {
  EXPECT_EQ(worker_journal_file(0), "worker-0.fj");
  EXPECT_EQ(worker_journal_file(12), "worker-12.fj");
}

// --- sample cross-check ---------------------------------------------------

TEST(SampleMatches, DetectsEveryFieldDivergence) {
  const FaultSample base = make_record(3).sample;
  EXPECT_TRUE(sample_matches(base, base));
  FaultSample other = base;
  other.t += 1;
  EXPECT_FALSE(sample_matches(base, other));
  other = base;
  other.center += 1;
  EXPECT_FALSE(sample_matches(base, other));
  other = base;
  other.weight *= 2.0;
  EXPECT_FALSE(sample_matches(base, other));
  other = base;
  other.technique = faultsim::TechniqueKind::kClockGlitch;
  EXPECT_FALSE(sample_matches(base, other));
}

// --- multi-shard merge ----------------------------------------------------

TEST(JournalMerge, MergesInterleavedWorkerShards) {
  const std::string dir = fresh_dir("interleaved");
  const JournalMeta meta = test_meta(12);
  // Worker 0 owns [0,4) and [8,12); worker 1 owns [4,8) — out of order
  // across files, contiguous overall.
  write_shard_file(dir, 0, meta, {{0, 4}, {8, 12}});
  write_shard_file(dir, 1, meta, {{4, 8}});
  Result<JournalContents> merged =
      JournalReader::merge(dir, worker_journal_pattern());
  ASSERT_TRUE(merged.is_ok()) << merged.status().to_string();
  EXPECT_EQ(merged.value().meta.fingerprint, meta.fingerprint);
  ASSERT_EQ(merged.value().records.size(), 12u);
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_EQ(merged.value().records[i].sample.t,
              make_record(static_cast<int>(i)).sample.t)
        << "sample " << i;
  }
}

TEST(JournalMerge, ReportsExactMissingRange) {
  const std::string dir = fresh_dir("gap");
  const JournalMeta meta = test_meta(16);
  write_shard_file(dir, 0, meta, {{0, 4}});
  write_shard_file(dir, 1, meta, {{9, 16}});
  Result<JournalContents> merged =
      JournalReader::merge(dir, worker_journal_pattern());
  ASSERT_FALSE(merged.is_ok());
  EXPECT_EQ(merged.status().code(), ErrorCode::kFailedPrecondition);
  // The error names the exact missing index range.
  EXPECT_NE(merged.status().to_string().find("[4, 9)"), std::string::npos)
      << merged.status().to_string();
}

TEST(JournalMerge, MergePartialExposesPresenceAndGaps) {
  const std::string dir = fresh_dir("partial");
  const JournalMeta meta = test_meta(10);
  write_shard_file(dir, 0, meta, {{0, 2}, {6, 8}});
  Result<MergedJournal> merged =
      JournalReader::merge_partial(dir, worker_journal_pattern());
  ASSERT_TRUE(merged.is_ok()) << merged.status().to_string();
  EXPECT_FALSE(merged.value().complete());
  EXPECT_EQ(merged.value().present_count, 4u);
  const auto gaps = merged.value().missing_ranges();
  ASSERT_EQ(gaps.size(), 2u);
  EXPECT_EQ(gaps[0], (std::pair<std::uint64_t, std::uint64_t>{2, 6}));
  EXPECT_EQ(gaps[1], (std::pair<std::uint64_t, std::uint64_t>{8, 10}));
}

TEST(JournalMerge, AcceptsOutOfOrderFramesWithinOneFile) {
  const std::string dir = fresh_dir("rescued");
  const JournalMeta meta = test_meta(12);
  // A worker that picks up a shard rescued from a crashed peer journals it
  // *after* higher-indexed shards: [4,8), [8,12), then [0,4) on disk. The
  // reader must sort and coalesce instead of rejecting the file.
  write_shard_file(dir, 0, meta, {{4, 8}, {8, 12}, {0, 4}});
  Result<JournalShards> shards =
      JournalReader::read_shards(dir, worker_journal_file(0));
  ASSERT_TRUE(shards.is_ok()) << shards.status().to_string();
  ASSERT_EQ(shards.value().spans.size(), 1u);
  EXPECT_EQ(shards.value().spans[0].first_index, 0u);
  ASSERT_EQ(shards.value().spans[0].records.size(), 12u);
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_EQ(shards.value().spans[0].records[i].sample.t,
              make_record(static_cast<int>(i)).sample.t)
        << "sample " << i;
  }
}

TEST(JournalMerge, RejectsOverlappingFramesWithinOneFile) {
  const std::string dir = fresh_dir("selfoverlap");
  const JournalMeta meta = test_meta(12);
  // Out-of-order is legal (see above) but two frames in the same file
  // covering the same sample can never happen in a correct run.
  write_shard_file(dir, 0, meta, {{4, 8}, {2, 6}});
  Result<JournalShards> shards =
      JournalReader::read_shards(dir, worker_journal_file(0));
  ASSERT_FALSE(shards.is_ok());
  EXPECT_EQ(shards.status().code(), ErrorCode::kJournalCorrupt);
  EXPECT_NE(shards.status().to_string().find("both cover sample"),
            std::string::npos)
      << shards.status().to_string();
}

TEST(JournalMerge, RejectsOverlappingShards) {
  const std::string dir = fresh_dir("overlap");
  const JournalMeta meta = test_meta(8);
  write_shard_file(dir, 0, meta, {{0, 5}});
  write_shard_file(dir, 1, meta, {{4, 8}});
  Result<MergedJournal> merged =
      JournalReader::merge_partial(dir, worker_journal_pattern());
  ASSERT_FALSE(merged.is_ok());
  EXPECT_EQ(merged.status().code(), ErrorCode::kJournalCorrupt);
  EXPECT_NE(merged.status().to_string().find("both cover sample"),
            std::string::npos)
      << merged.status().to_string();
}

TEST(JournalMerge, RejectsForeignCampaignShard) {
  const std::string dir = fresh_dir("foreign");
  write_shard_file(dir, 0, test_meta(8), {{0, 4}});
  JournalMeta other = test_meta(8);
  other.fingerprint ^= 1;
  write_shard_file(dir, 1, other, {{4, 8}});
  Result<MergedJournal> merged =
      JournalReader::merge_partial(dir, worker_journal_pattern());
  ASSERT_FALSE(merged.is_ok());
  EXPECT_EQ(merged.status().code(), ErrorCode::kJournalCorrupt);
}

TEST(JournalMerge, NoMatchingShardsIsIoError) {
  const std::string dir = fresh_dir("empty");
  Result<MergedJournal> merged =
      JournalReader::merge_partial(dir, worker_journal_pattern());
  ASSERT_FALSE(merged.is_ok());
  EXPECT_EQ(merged.status().code(), ErrorCode::kJournalIoError);
}

TEST(JournalMerge, SpanPastTotalSamplesIsCorrupt) {
  const std::string dir = fresh_dir("pastend");
  write_shard_file(dir, 0, test_meta(4), {{0, 4}});
  // Rewrite with a span that runs past total_samples.
  write_shard_file(dir, 1, test_meta(4), {{2, 6}});
  Result<MergedJournal> merged =
      JournalReader::merge_partial(dir, worker_journal_pattern());
  ASSERT_FALSE(merged.is_ok());
  EXPECT_EQ(merged.status().code(), ErrorCode::kJournalCorrupt);
}

}  // namespace
}  // namespace fav::mc
