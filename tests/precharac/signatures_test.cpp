#include "precharac/signatures.h"

#include <gtest/gtest.h>

#include "rtl/assembler.h"
#include "soc/benchmark.h"

namespace fav::precharac {
namespace {

const soc::SocNetlist& soc() {
  static const soc::SocNetlist instance;
  return instance;
}

const SignatureTrace& synthetic_trace() {
  static const SignatureTrace trace(soc(), soc::make_synthetic_workload(),
                                    400);
  return trace;
}

TEST(SignatureTrace, RunsToWorkloadEnd) {
  const auto& trace = synthetic_trace();
  const rtl::Program workload = soc::make_synthetic_workload();
  rtl::Machine m(workload);
  m.run(400);
  EXPECT_EQ(trace.cycles(), m.cycle());
  EXPECT_GT(trace.cycles(), 50u);
}

TEST(SignatureTrace, SignaturesHaveOneBitPerCycle) {
  const auto& trace = synthetic_trace();
  const auto& nl = soc().netlist();
  for (netlist::NodeId id : {nl.find_or_throw("mpu_viol"),
                             soc().dff_for_bit(0), nl.find_or_throw("pc[3]")}) {
    EXPECT_EQ(trace.signature(id).size(), trace.cycles());
  }
}

TEST(SignatureTrace, FirstCycleNeverSwitches) {
  const auto& trace = synthetic_trace();
  const auto& nl = soc().netlist();
  for (netlist::NodeId id = 0; id < nl.node_count(); id += 97) {
    if (trace.signature(id).size() > 0) {
      EXPECT_FALSE(trace.signature(id).get(0)) << "node " << id;
    }
  }
}

TEST(SignatureTrace, PcBit0TogglesOften) {
  // Straight-line fetch increments the PC every cycle: bit 0 toggles nearly
  // always.
  const auto& trace = synthetic_trace();
  const auto& ss = trace.signature(soc().dff_for_bit(0));  // pc[0]
  EXPECT_GT(ss.count(), trace.cycles() / 2);
}

TEST(SignatureTrace, RespondingSignalSwitches) {
  // The synthetic workload's denied probes toggle the responding signal:
  // without that activity no correlation could ever be measured.
  const auto& trace = synthetic_trace();
  const auto rs = soc().netlist().find_or_throw("mpu_viol");
  EXPECT_GE(trace.signature(rs).count(), 20u);  // 2 switches per probe
  // The sticky flag latches the first probe and then stays constant:
  // exactly one switch.
  const auto& map = soc::SocNetlist::reg_map();
  const int sticky_bit = map.field(map.field_index("viol_sticky")).offset;
  EXPECT_EQ(trace.signature(soc().dff_for_bit(sticky_bit)).count(), 1u);
}

TEST(SignatureTrace, SelfCorrelationAtFrameZeroIsOne) {
  const auto& trace = synthetic_trace();
  const netlist::NodeId rs = soc().netlist().find_or_throw("mpu_viol");
  const netlist::NodeId pc0 = soc().dff_for_bit(0);
  EXPECT_DOUBLE_EQ(trace.correlation(pc0, pc0, 0), 1.0);
  EXPECT_DOUBLE_EQ(trace.correlation(rs, rs, 0), 1.0);
}

TEST(SignatureTrace, NeverSwitchingNodeHasZeroCorrelation) {
  const auto& trace = synthetic_trace();
  const netlist::NodeId rs = soc().netlist().find_or_throw("mpu_viol");
  // mpu3 is never configured: its base register never switches.
  const auto& map = soc::SocNetlist::reg_map();
  const int bit = map.field(map.field_index("mpu3_base")).offset;
  EXPECT_EQ(trace.signature(soc().dff_for_bit(bit)).count(), 0u);
  EXPECT_DOUBLE_EQ(trace.correlation(soc().dff_for_bit(bit), rs, 0), 0.0);
}

TEST(SignatureTrace, CorrelationIsInUnitInterval) {
  const auto& trace = synthetic_trace();
  const netlist::NodeId rs = soc().netlist().find_or_throw("mpu_viol");
  for (netlist::NodeId id = 0; id < soc().netlist().node_count(); id += 53) {
    for (int frame : {-2, -1, 0, 1, 2, 5}) {
      const double c = trace.correlation(id, rs, frame);
      EXPECT_GE(c, 0.0);
      EXPECT_LE(c, 1.0);
    }
  }
}

TEST(SignatureTrace, CorrelationMatchesManualComputation) {
  const auto& trace = synthetic_trace();
  const netlist::NodeId rs = soc().netlist().find_or_throw("mpu_viol");
  const netlist::NodeId g = soc().dff_for_bit(3);
  const auto& sg = trace.signature(g);
  const auto& sr = trace.signature(rs);
  for (int frame : {0, 1, 3}) {
    std::size_t overlap = 0;
    for (std::size_t c = 0; c + frame < sg.size(); ++c) {
      if (sg.get(c) && sr.get(c + static_cast<std::size_t>(frame))) ++overlap;
    }
    const double expected =
        sg.count() == 0
            ? 0.0
            : static_cast<double>(overlap) / static_cast<double>(sg.count());
    EXPECT_DOUBLE_EQ(trace.correlation(g, rs, frame), expected)
        << "frame " << frame;
  }
}

}  // namespace
}  // namespace fav::precharac
