#include "precharac/artifact.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "util/io.h"
#include "util/rng.h"

namespace fav::precharac {
namespace {

namespace fs = std::filesystem;

/// A small but fully populated bundle exercising every section, including
/// negative cone frames, empty frames, NaN-free doubles and multi-word
/// signatures.
PrecharacBundle make_bundle() {
  PrecharacBundle b;
  b.responding_signal = 7;
  b.fanin_frames.resize(3);
  for (int i = 0; i < 3; ++i) {
    b.fanin_frames[i].frame = i;
    b.fanin_frames[i].gates = {static_cast<netlist::NodeId>(10 + i),
                               static_cast<netlist::NodeId>(20 + i)};
    b.fanin_frames[i].registers = {static_cast<netlist::NodeId>(30 + i)};
  }
  b.fanout_frames.resize(2);
  for (int i = 0; i < 2; ++i) {
    b.fanout_frames[i].frame = -(i + 1);
    b.fanout_frames[i].gates = {static_cast<netlist::NodeId>(40 + i)};
  }
  b.signature_cycles = 70;  // > 64 so signatures span two words
  for (int n = 0; n < 5; ++n) {
    BitVector sig(70);
    for (int c = n; c < 70; c += n + 2) sig.set(c, true);
    b.signatures.push_back(sig);
  }
  b.charac_config.horizon = 123;
  b.charac_config.first_cycle = 4;
  b.charac_config.stride = 9;
  b.charac_config.lifetime_threshold = 55.5;
  b.charac_config.contamination_threshold = 0.25;
  b.bits.resize(6);
  b.characterized.assign(6, 0);
  for (int i = 0; i < 6; ++i) {
    b.bits[i].avg_lifetime = 1.5 * i;
    b.bits[i].max_lifetime = 3.0 * i;
    b.bits[i].avg_contamination = 0.125 * i;
    b.bits[i].samples = i;
    b.characterized[i] = (i % 2 == 0) ? 1 : 0;
  }
  b.memory_bit_potency = {0.0, 0.5, 1.0, 0.0, 0.75, 1.0};
  return b;
}

void expect_bundles_equal(const PrecharacBundle& a, const PrecharacBundle& z) {
  EXPECT_EQ(a.responding_signal, z.responding_signal);
  ASSERT_EQ(a.fanin_frames.size(), z.fanin_frames.size());
  for (std::size_t i = 0; i < a.fanin_frames.size(); ++i) {
    EXPECT_EQ(a.fanin_frames[i].frame, z.fanin_frames[i].frame);
    EXPECT_EQ(a.fanin_frames[i].gates, z.fanin_frames[i].gates);
    EXPECT_EQ(a.fanin_frames[i].registers, z.fanin_frames[i].registers);
  }
  ASSERT_EQ(a.fanout_frames.size(), z.fanout_frames.size());
  for (std::size_t i = 0; i < a.fanout_frames.size(); ++i) {
    EXPECT_EQ(a.fanout_frames[i].frame, z.fanout_frames[i].frame);
    EXPECT_EQ(a.fanout_frames[i].gates, z.fanout_frames[i].gates);
    EXPECT_EQ(a.fanout_frames[i].registers, z.fanout_frames[i].registers);
  }
  EXPECT_EQ(a.signature_cycles, z.signature_cycles);
  ASSERT_EQ(a.signatures.size(), z.signatures.size());
  for (std::size_t i = 0; i < a.signatures.size(); ++i) {
    EXPECT_EQ(a.signatures[i].words(), z.signatures[i].words());
  }
  EXPECT_EQ(a.charac_config.horizon, z.charac_config.horizon);
  EXPECT_EQ(a.charac_config.lifetime_threshold,
            z.charac_config.lifetime_threshold);
  ASSERT_EQ(a.bits.size(), z.bits.size());
  for (std::size_t i = 0; i < a.bits.size(); ++i) {
    EXPECT_EQ(a.bits[i].avg_lifetime, z.bits[i].avg_lifetime);
    EXPECT_EQ(a.bits[i].max_lifetime, z.bits[i].max_lifetime);
    EXPECT_EQ(a.bits[i].avg_contamination, z.bits[i].avg_contamination);
    EXPECT_EQ(a.bits[i].samples, z.bits[i].samples);
  }
  EXPECT_EQ(a.characterized, z.characterized);
  EXPECT_EQ(a.memory_bit_potency, z.memory_bit_potency);
}

class ArtifactTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("fav_artifact_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
    path_ = (dir_ / "bundle.fpa").string();
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string read_bytes() const {
    const Result<std::string> r = io::read_file(path_);
    FAV_CHECK(r.is_ok());
    return r.value();
  }
  void write_bytes(const std::string& bytes) const {
    std::ofstream f(path_, std::ios::binary | std::ios::trunc);
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  fs::path dir_;
  std::string path_;
};

constexpr std::uint64_t kFp = 0x1122334455667788ull;

TEST_F(ArtifactTest, RoundTripIsAHit) {
  const PrecharacBundle bundle = make_bundle();
  ASSERT_TRUE(save_artifact(path_, kFp, "test context", bundle).is_ok());
  ArtifactLoad load = load_artifact(path_, kFp);
  ASSERT_EQ(load.outcome, ArtifactOutcome::kHit) << load.detail;
  expect_bundles_equal(bundle, load.bundle);
}

TEST_F(ArtifactTest, MissingFileIsAMiss) {
  const ArtifactLoad load = load_artifact(path_, kFp);
  EXPECT_EQ(load.outcome, ArtifactOutcome::kMiss);
}

TEST_F(ArtifactTest, WrongFingerprintIsStale) {
  ASSERT_TRUE(save_artifact(path_, kFp, "ctx", make_bundle()).is_ok());
  const ArtifactLoad load = load_artifact(path_, kFp + 1);
  EXPECT_EQ(load.outcome, ArtifactOutcome::kStale);
  EXPECT_FALSE(load.detail.empty());
}

TEST_F(ArtifactTest, FutureFormatVersionIsStaleNotCorrupt) {
  ASSERT_TRUE(save_artifact(path_, kFp, "ctx", make_bundle()).is_ok());
  std::string bytes = read_bytes();
  // Version is the u32 immediately after the 8-byte magic. Bumping it also
  // invalidates the header CRC — the version check must win (a future
  // format is a config mismatch, not disk damage).
  bytes[8] = static_cast<char>(kArtifactVersion + 1);
  write_bytes(bytes);
  const ArtifactLoad load = load_artifact(path_, kFp);
  EXPECT_EQ(load.outcome, ArtifactOutcome::kStale);
}

TEST_F(ArtifactTest, BadMagicIsCorrupt) {
  ASSERT_TRUE(save_artifact(path_, kFp, "ctx", make_bundle()).is_ok());
  std::string bytes = read_bytes();
  bytes[0] ^= 0x01;
  write_bytes(bytes);
  EXPECT_EQ(load_artifact(path_, kFp).outcome, ArtifactOutcome::kCorrupt);
}

// Truncating at *every* prefix length of the header region, and at a sweep
// of points through the body, must never parse — let alone hit.
TEST_F(ArtifactTest, TruncationAtEveryHeaderBoundaryIsDetected) {
  ASSERT_TRUE(save_artifact(path_, kFp, "ctx", make_bundle()).is_ok());
  const std::string bytes = read_bytes();
  for (std::size_t len = 0; len < 28 && len < bytes.size(); ++len) {
    write_bytes(bytes.substr(0, len));
    const ArtifactLoad load = load_artifact(path_, kFp);
    EXPECT_NE(load.outcome, ArtifactOutcome::kHit) << "header length " << len;
  }
}

TEST_F(ArtifactTest, TruncationThroughBodyIsDetected) {
  ASSERT_TRUE(save_artifact(path_, kFp, "ctx", make_bundle()).is_ok());
  const std::string bytes = read_bytes();
  // Every 7th length plus the exact end-1 gives dense coverage of section
  // boundaries without a quadratic test.
  for (std::size_t len = 28; len < bytes.size(); len += 7) {
    write_bytes(bytes.substr(0, len));
    EXPECT_NE(load_artifact(path_, kFp).outcome, ArtifactOutcome::kHit)
        << "truncated to " << len << " of " << bytes.size();
  }
  write_bytes(bytes.substr(0, bytes.size() - 1));
  EXPECT_NE(load_artifact(path_, kFp).outcome, ArtifactOutcome::kHit);
}

TEST_F(ArtifactTest, TrailingGarbageIsCorrupt) {
  ASSERT_TRUE(save_artifact(path_, kFp, "ctx", make_bundle()).is_ok());
  write_bytes(read_bytes() + std::string(3, '\0'));
  EXPECT_EQ(load_artifact(path_, kFp).outcome, ArtifactOutcome::kCorrupt);
}

// Single-bit flips at random offsets across the whole file: every one must
// be detected (CRC32C catches all 1-bit errors), none may surface as a hit
// or a crash.
TEST_F(ArtifactTest, RandomBitFlipsNeverHit) {
  ASSERT_TRUE(save_artifact(path_, kFp, "ctx", make_bundle()).is_ok());
  const std::string bytes = read_bytes();
  Rng rng(2017);
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = bytes;
    const std::size_t pos =
        static_cast<std::size_t>(rng.next() % mutated.size());
    const int bit = static_cast<int>(rng.next() % 8);
    mutated[pos] = static_cast<char>(mutated[pos] ^ (1u << bit));
    write_bytes(mutated);
    const ArtifactLoad load = load_artifact(path_, kFp);
    EXPECT_NE(load.outcome, ArtifactOutcome::kHit)
        << "flip at byte " << pos << " bit " << bit;
    EXPECT_NE(load.outcome, ArtifactOutcome::kMiss);
  }
}

TEST_F(ArtifactTest, FingerprintCoversEveryKeyKnob) {
  PrecharacKey key;
  key.benchmark = "write";
  key.benchmark_cycles = 100;
  key.cone_fanin_depth = 3;
  key.cone_fanout_depth = 2;
  key.precharac_cycles = 64;
  key.node_count = 1234;
  key.total_bits = 99;
  const std::uint64_t base = precharac_fingerprint(key);
  PrecharacKey k2 = key;
  k2.benchmark = "read";
  EXPECT_NE(precharac_fingerprint(k2), base);
  k2 = key;
  k2.benchmark_cycles = 101;
  EXPECT_NE(precharac_fingerprint(k2), base);
  k2 = key;
  k2.cone_fanin_depth = 4;
  EXPECT_NE(precharac_fingerprint(k2), base);
  k2 = key;
  k2.cone_fanout_depth = 1;
  EXPECT_NE(precharac_fingerprint(k2), base);
  k2 = key;
  k2.precharac_cycles = 65;
  EXPECT_NE(precharac_fingerprint(k2), base);
  k2 = key;
  k2.characterization.horizon += 1;
  EXPECT_NE(precharac_fingerprint(k2), base);
  k2 = key;
  k2.characterization.lifetime_threshold += 0.5;
  EXPECT_NE(precharac_fingerprint(k2), base);
  k2 = key;
  k2.node_count += 1;
  EXPECT_NE(precharac_fingerprint(k2), base);
  k2 = key;
  k2.total_bits += 1;
  EXPECT_NE(precharac_fingerprint(k2), base);
  // And it is deterministic.
  EXPECT_EQ(precharac_fingerprint(key), base);
}

TEST_F(ArtifactTest, SaveFailureUnderEnospcReportsStorageFull) {
  io::ChaosFile chaos;
  chaos.fail_write_at = 1;
  chaos.error = ENOSPC;
  io::chaos_install(chaos);
  const Status failed = save_artifact(path_, kFp, "ctx", make_bundle());
  io::chaos_reset();
  ASSERT_FALSE(failed.is_ok());
  EXPECT_EQ(failed.code(), ErrorCode::kStorageFull);
  EXPECT_EQ(load_artifact(path_, kFp).outcome, ArtifactOutcome::kMiss);
}

}  // namespace
}  // namespace fav::precharac
