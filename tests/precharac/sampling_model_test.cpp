#include "precharac/sampling_model.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "soc/benchmark.h"
#include "util/check.h"

namespace fav::precharac {
namespace {

using faultsim::AttackModel;
using netlist::NodeId;
using netlist::UnrolledCone;

struct Context {
  soc::SocNetlist soc;
  layout::Placement placement{soc.netlist()};
  rtl::Program workload = soc::make_synthetic_workload();
  rtl::GoldenRun golden{workload, 400, 16};
  SignatureTrace signatures{soc, workload, 400};
  RegisterCharacterization charac;
  UnrolledCone cone;
  AttackModel attack;

  Context()
      : charac(golden,
               [] {
                 CharacterizationConfig cfg;
                 cfg.stride = 29;
                 return cfg;
               }()),
        cone(soc.netlist(), soc.netlist().find_or_throw("mpu_viol"), 12, 2) {
    attack.t_min = 0;
    attack.t_max = 9;
    attack.candidate_centers = placement.placed_nodes();
  }
};

Context& ctx() {
  static Context c;
  return c;
}

SamplingModel& model() {
  static SamplingModel m(ctx().soc, ctx().placement, ctx().cone,
                         ctx().signatures, ctx().charac, ctx().attack);
  return m;
}

TEST(SamplingModel, GtIsAProperDistribution) {
  const auto& gt = model().g_t();
  EXPECT_EQ(gt.size(), static_cast<std::size_t>(ctx().attack.t_count()));
  double total = 0;
  for (std::size_t i = 0; i < gt.size(); ++i) total += gt.pmf(i);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(SamplingModel, WeightsAreBoundedByFormula) {
  const auto& m = model();
  const double alpha = m.params().alpha;
  const double gamma = m.params().memory_boost;
  for (int t : {0, 3, 7}) {
    for (NodeId g = 0; g < ctx().soc.netlist().node_count(); g += 71) {
      const double w = m.center_weight(t, g);
      if (w == 0.0) continue;
      EXPECT_GE(w, 1.0) << "t=" << t << " g=" << g;
      EXPECT_LE(w, 1.0 + alpha + gamma * m.memory_score(g))
          << "t=" << t << " g=" << g;
    }
  }
}

TEST(SamplingModel, MemoryHitsBoostWeights) {
  // With a large gamma, a center whose spot covers memory-type cone
  // registers must outweigh every plain in-cone center at t >= 1.
  SamplingParams params;
  params.memory_boost = 50.0;
  SamplingModel m(ctx().soc, ctx().placement, ctx().cone, ctx().signatures,
                  ctx().charac, ctx().attack, params);
  NodeId boosted = netlist::kInvalidNode;
  NodeId plain = netlist::kInvalidNode;
  for (const NodeId c : ctx().attack.candidate_centers) {
    if (m.memory_score(c) > 0 && boosted == netlist::kInvalidNode) boosted = c;
    if (m.memory_score(c) == 0.0 && m.transit_count(c) == 0 &&
        m.center_weight(3, c) > 0 && plain == netlist::kInvalidNode) {
      plain = c;
    }
  }
  ASSERT_NE(boosted, netlist::kInvalidNode);
  ASSERT_NE(plain, netlist::kInvalidNode);
  EXPECT_GT(m.center_weight(3, boosted), m.center_weight(3, plain));
  // At t = 0 the memory boost is off (too late to matter).
  EXPECT_LT(m.center_weight(0, boosted), 1.0 + m.params().alpha + 1e-9);
}

TEST(SamplingModel, SpotSupportCoversOffConeNeighbours) {
  // Any center with memory hits has positive weight at t >= 1 even if the
  // center cell itself is not a cone member — the spot still upsets cone
  // registers, so excluding it would bias the estimator.
  const auto& m = model();
  int covered = 0;
  for (const NodeId c : ctx().attack.candidate_centers) {
    if (m.memory_score(c) == 0) continue;
    EXPECT_GT(m.center_weight(1, c), 0.0) << c;
    ++covered;
  }
  EXPECT_GT(covered, 0);
}

TEST(SamplingModel, LifetimeOfGateIsMaxOverFanoutRegisters) {
  const auto& m = model();
  const auto& map = soc::SocNetlist::reg_map();
  const NodeId rs = ctx().soc.netlist().find_or_throw("mpu_viol");
  const int sticky_bit = map.field(map.field_index("viol_sticky")).offset;
  const NodeId sticky_dff = ctx().soc.dff_for_bit(sticky_bit);
  EXPECT_GE(m.lifetime_l(rs), m.lifetime_l(sticky_dff));
}

TEST(SamplingModel, PmfMatchesSampledFrequencies) {
  auto& m = model();
  Rng rng(5150);
  constexpr int kDraws = 20000;
  // Marginal over t must match the defensive mixture of g_t and uniform.
  const double eps = m.params().defensive_mix;
  std::map<int, int> t_counts;
  for (int i = 0; i < kDraws; ++i) ++t_counts[m.sample(rng).t];
  for (const auto& [t, n] : t_counts) {
    const double expect =
        (1.0 - eps) * m.g_t().pmf(static_cast<std::size_t>(t)) +
        eps / static_cast<double>(ctx().attack.t_count());
    EXPECT_NEAR(static_cast<double>(n) / kDraws, expect,
                5 * std::sqrt(expect / kDraws) + 1e-3)
        << "t=" << t;
  }
  // Joint pmf check on a small support.
  faultsim::AttackModel small = ctx().attack;
  small.t_max = 2;
  small.candidate_centers.clear();
  const auto& f0 = ctx().cone.frame(0);
  for (std::size_t i = 0; i < f0.gates.size() && i < 6; ++i) {
    small.candidate_centers.push_back(f0.gates[i]);
  }
  ASSERT_GE(small.candidate_centers.size(), 2u);
  SamplingModel sm(ctx().soc, ctx().placement, ctx().cone, ctx().signatures,
                   ctx().charac, small);
  std::map<std::pair<int, NodeId>, int> jcounts;
  for (int i = 0; i < kDraws; ++i) {
    const auto s = sm.sample(rng);
    ++jcounts[{s.t, s.center}];
  }
  int checked = 0;
  for (const auto& [key, n] : jcounts) {
    if (n < 200) continue;
    const double freq = static_cast<double>(n) / kDraws;
    EXPECT_NEAR(freq, sm.g_pmf(key.first, key.second), 0.2 * freq)
        << "t=" << key.first << " center=" << key.second;
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

TEST(SamplingModel, WeightsAreLikelihoodRatios) {
  auto& m = model();
  Rng rng(99);
  const double f =
      1.0 / (ctx().attack.t_count() *
             static_cast<double>(ctx().attack.candidate_centers.size()));
  for (int i = 0; i < 200; ++i) {
    const auto s = m.sample(rng);
    EXPECT_GT(s.weight, 0.0);
    EXPECT_NEAR(s.weight, f / m.g_pmf(s.t, s.center), 1e-12);
  }
}

TEST(SamplingModel, ImportanceWeightsAverageToSupportMass) {
  auto& m = model();
  Rng rng(123);
  double sum = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) sum += m.sample(rng).weight;
  const double mass = sum / kDraws;
  EXPECT_LE(mass, 1.0 + 0.05);
  EXPECT_GT(mass, 0.0);
}

TEST(SamplingModel, SamplesRespectAttackRanges) {
  auto& m = model();
  Rng rng(321);
  for (int i = 0; i < 500; ++i) {
    const auto s = m.sample(rng);
    EXPECT_GE(s.t, ctx().attack.t_min);
    EXPECT_LE(s.t, ctx().attack.t_max);
    EXPECT_GE(s.strike_frac, 0.0);
    EXPECT_LT(s.strike_frac, 1.0);
    EXPECT_EQ(s.radius, ctx().attack.radii[0]);
    // The defensive mixture bounds every weight by 1/eps.
    EXPECT_LE(s.weight, 1.0 / m.params().defensive_mix + 1e-9);
  }
}

TEST(SamplingModel, UnplacedCandidateThrows) {
  AttackModel bad = ctx().attack;
  bad.candidate_centers = {ctx().soc.netlist().inputs()[0]};  // PI: unplaced
  EXPECT_THROW(SamplingModel(ctx().soc, ctx().placement, ctx().cone,
                             ctx().signatures, ctx().charac, bad),
               fav::CheckError);
}

TEST(AttackModel, RandomSamplingIsUniform) {
  AttackModel a;
  a.t_min = 0;
  a.t_max = 4;
  a.candidate_centers = {10, 20, 30};
  a.radii = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(a.f_pmf(), 1.0 / (5 * 3 * 2));
  Rng rng(8);
  std::map<int, int> t_counts;
  for (int i = 0; i < 5000; ++i) {
    const auto s = a.sample(rng);
    EXPECT_DOUBLE_EQ(s.weight, 1.0);
    ++t_counts[s.t];
  }
  for (const auto& [t, n] : t_counts) {
    EXPECT_NEAR(n, 1000, 150) << t;
  }
}

TEST(AttackModel, InvalidModelsThrow) {
  AttackModel a;
  a.candidate_centers = {};
  EXPECT_THROW(a.check_valid(), fav::CheckError);
  a.candidate_centers = {1};
  a.radii = {};
  EXPECT_THROW(a.check_valid(), fav::CheckError);
  a.radii = {1.0};
  a.t_max = -1;
  EXPECT_THROW(a.check_valid(), fav::CheckError);
}

}  // namespace
}  // namespace fav::precharac
