#include "precharac/characterize.h"

#include <gtest/gtest.h>

#include "soc/benchmark.h"
#include "util/check.h"

namespace fav::precharac {
namespace {

using rtl::Machine;
using rtl::RegisterMap;

const rtl::Program& workload() {
  static const rtl::Program p = soc::make_synthetic_workload();
  return p;
}

const rtl::GoldenRun& golden() {
  static const rtl::GoldenRun g(workload(), 400, 16);
  return g;
}

int field_bit(const std::string& name, int bit = 0) {
  const RegisterMap& map = Machine::reg_map();
  return map.field(map.field_index(name)).offset + bit;
}

TEST(RegisterCharacterization, UnusedMpuRegionIsMemoryType) {
  // Region 3 is never configured by the synthetic workload: a bit error in
  // its base register persists forever and contaminates nothing (MPU checks
  // only use enabled regions and region 3 stays disabled).
  const int bit = field_bit("mpu3_base", 7);
  RegisterCharacterization charac(golden(), {}, {bit});
  ASSERT_TRUE(charac.characterized(bit));
  const auto& bc = charac.bit(bit);
  EXPECT_GT(bc.samples, 0);
  EXPECT_DOUBLE_EQ(bc.avg_lifetime,
                   static_cast<double>(charac.config().horizon));
  EXPECT_DOUBLE_EQ(bc.avg_contamination, 0.0);
  EXPECT_TRUE(charac.is_memory_type(bit));
}

TEST(RegisterCharacterization, ViolAddrIsMemoryType) {
  // viol_addr is only written on violation; the clean workload never
  // violates, so errors stay.
  const int bit = field_bit("viol_addr", 5);
  RegisterCharacterization charac(golden(), {}, {bit});
  EXPECT_TRUE(charac.is_memory_type(bit));
}

TEST(RegisterCharacterization, LoopRegisterIsComputationType) {
  // r4 is rewritten every loop iteration: short lifetime.
  const int bit = field_bit("r4", 2);
  RegisterCharacterization charac(golden(), {}, {bit});
  const auto& bc = charac.bit(bit);
  EXPECT_LT(bc.avg_lifetime, charac.config().lifetime_threshold);
  EXPECT_FALSE(charac.is_memory_type(bit));
}

TEST(RegisterCharacterization, PcErrorContaminates) {
  // A PC bit error derails execution: many registers diverge.
  const int bit = field_bit("pc", 1);
  RegisterCharacterization charac(golden(), {}, {bit});
  EXPECT_GT(charac.bit(bit).avg_contamination, 1.0);
  EXPECT_FALSE(charac.is_memory_type(bit));
}

TEST(RegisterCharacterization, LifetimeAccessorDefaultsToZero) {
  const int bit = field_bit("r4");
  RegisterCharacterization charac(golden(), {}, {bit});
  EXPECT_EQ(charac.lifetime(field_bit("r5")), 0.0);  // not characterized
  EXPECT_FALSE(charac.is_memory_type(field_bit("r5")));
  EXPECT_THROW(charac.bit(field_bit("r5")), fav::CheckError);
}

TEST(RegisterCharacterization, InvalidConfigThrows) {
  CharacterizationConfig cfg;
  cfg.horizon = 0;
  EXPECT_THROW(RegisterCharacterization(golden(), cfg, {0}), fav::CheckError);
  cfg = {};
  cfg.stride = 0;
  EXPECT_THROW(RegisterCharacterization(golden(), cfg, {0}), fav::CheckError);
}

TEST(RegisterCharacterization, OutOfRangeBitThrows) {
  EXPECT_THROW(RegisterCharacterization(golden(), {}, {100000}),
               fav::CheckError);
}

TEST(RegisterCharacterization, FullSweepClassesMatchExpectations) {
  // Characterize every bit (the real pre-characterization pass) and check
  // the aggregate shape of Fig. 4: a large fraction of bits are memory-type,
  // and the expectation flags in the register map mostly agree with the
  // empirical classification.
  CharacterizationConfig cfg;
  cfg.stride = 37;  // keep the test fast; benches use a denser sweep
  RegisterCharacterization charac(golden(), cfg);
  const RegisterMap& map = Machine::reg_map();

  const auto memory_bits = charac.memory_type_bits();
  EXPECT_GT(memory_bits.size(), 100u);  // MPU config dominates (144 bits)
  EXPECT_LT(memory_bits.size(), static_cast<std::size_t>(map.total_bits()));

  // Unconfigured MPU regions 2/3 must classify memory-type wholesale.
  for (const char* field : {"mpu2_base", "mpu3_limit", "mpu3_perm"}) {
    const int off = map.field(map.field_index(field)).offset;
    for (int b = 0; b < map.field(map.field_index(field)).width; ++b) {
      EXPECT_TRUE(charac.is_memory_type(off + b)) << field << "[" << b << "]";
    }
  }
  // The PC must not.
  for (int b = 0; b < 4; ++b) {
    EXPECT_FALSE(charac.is_memory_type(field_bit("pc", b))) << b;
  }
}

}  // namespace
}  // namespace fav::precharac
