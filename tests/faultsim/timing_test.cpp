#include "faultsim/timing.h"

#include <gtest/gtest.h>

#include "gen/builder.h"

namespace fav::faultsim {
namespace {

using netlist::CellType;
using netlist::Netlist;
using netlist::NodeId;

TEST(TimingModel, DelaysArePositiveForGates) {
  const TimingModel tm;
  for (CellType t : {CellType::kBuf, CellType::kNot, CellType::kAnd,
                     CellType::kOr, CellType::kNand, CellType::kNor,
                     CellType::kXor, CellType::kXnor, CellType::kMux}) {
    EXPECT_GT(tm.delay(t), 0.0) << cell_name(t);
  }
  EXPECT_EQ(tm.delay(CellType::kInput), 0.0);
  EXPECT_EQ(tm.delay(CellType::kDff), 0.0);
}

TEST(TimingAnalysis, ChainArrivalsAccumulate) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  NodeId cur = a;
  for (int i = 0; i < 4; ++i) cur = nl.add_gate(CellType::kNot, {cur});
  const TimingModel tm;
  TimingAnalysis ta(nl, tm);
  EXPECT_DOUBLE_EQ(ta.arrival(a), 0.0);
  EXPECT_DOUBLE_EQ(ta.arrival(cur), 4 * tm.delay_inv);
  EXPECT_DOUBLE_EQ(ta.critical_path(), 4 * tm.delay_inv);
}

TEST(TimingAnalysis, MaxOverFanins) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId slow = nl.add_gate(
      CellType::kNot, {nl.add_gate(CellType::kNot, {a})});  // 2 inv deep
  const NodeId g = nl.add_gate(CellType::kAnd, {a, slow});
  const TimingModel tm;
  TimingAnalysis ta(nl, tm);
  EXPECT_DOUBLE_EQ(ta.arrival(g), 2 * tm.delay_inv + tm.delay_and_or);
}

TEST(TimingAnalysis, PeriodExceedsCriticalPlusSetup) {
  Netlist nl;
  gen::Builder b(nl);
  const auto x = b.input_word("x", 8);
  const auto y = b.input_word("y", 8);
  const auto s = b.add_word(x, y);
  const auto r = b.dff_word("r", 8);
  b.connect_word(r, s);
  const TimingModel tm;
  TimingAnalysis ta(nl, tm);
  EXPECT_GT(ta.critical_path(), 0.0);
  EXPECT_GE(ta.clock_period(), ta.critical_path() + tm.setup_time);
}

TEST(TimingAnalysis, DffOutputsSettleAtZero) {
  Netlist nl;
  const NodeId r = nl.add_dff("r");
  const NodeId g = nl.add_gate(CellType::kNot, {r});
  nl.connect_dff(r, g);
  TimingAnalysis ta(nl, TimingModel{});
  EXPECT_DOUBLE_EQ(ta.arrival(r), 0.0);
  EXPECT_GT(ta.arrival(g), 0.0);
}

TEST(TimingAnalysis, InvalidMarginThrows) {
  Netlist nl;
  nl.add_input("a");
  TimingModel tm;
  tm.clock_margin = 0.9;
  EXPECT_THROW(TimingAnalysis(nl, tm), fav::CheckError);
}

}  // namespace
}  // namespace fav::faultsim
