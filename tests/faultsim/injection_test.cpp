#include "faultsim/injection.h"

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <utility>
#include <vector>

#include "netlist/logicsim.h"

namespace fav::faultsim {
namespace {

using netlist::CellType;
using netlist::LogicSimulator;
using netlist::Netlist;
using netlist::NodeId;

// Inverter chain of `depth` gates into a DFF: in -> NOT^depth -> r.
struct Chain {
  Netlist nl;
  NodeId in;
  std::vector<NodeId> gates;
  NodeId r;
  explicit Chain(int depth) {
    in = nl.add_input("in");
    NodeId cur = in;
    for (int i = 0; i < depth; ++i) {
      cur = nl.add_gate(CellType::kNot, {cur}, "g" + std::to_string(i));
      gates.push_back(cur);
    }
    r = nl.add_dff("r");
    nl.connect_dff(r, cur);
  }
};

LogicSimulator settled(const Netlist& nl) {
  LogicSimulator sim(nl);
  sim.evaluate_comb();
  return sim;
}

TEST(InjectionSimulator, NoStrikeIsMasked) {
  Chain c(5);
  InjectionSimulator inj(c.nl);
  const LogicSimulator sim = settled(c.nl);
  const auto result = inj.inject(sim, {});
  EXPECT_TRUE(result.masked());
  EXPECT_EQ(result.struck_gates, 0u);
  EXPECT_EQ(result.struck_dffs, 0u);
}

TEST(InjectionSimulator, DirectDffStrikeAlwaysFlips) {
  Chain c(5);
  InjectionSimulator inj(c.nl);
  const LogicSimulator sim = settled(c.nl);
  const std::vector<NodeId> struck = {c.r};
  const auto result = inj.inject(sim, struck, /*strike_time=*/0.0);
  ASSERT_EQ(result.flipped_dffs.size(), 1u);
  EXPECT_EQ(result.flipped_dffs[0], c.r);
  EXPECT_EQ(result.struck_dffs, 1u);
  EXPECT_EQ(result.direct_flips, 1u);
  EXPECT_EQ(result.latched_flips, 0u);
}

TEST(InjectionSimulator, StrikeNearClockEdgeLatches) {
  Chain c(5);
  const TimingModel tm;
  InjectionSimulator inj(c.nl, tm);
  const LogicSimulator sim = settled(c.nl);
  // Strike the first gate so the pulse arrives at the D input right around
  // the latching window: choose strike_time so that
  // start + 4*delay_inv hits window_lo.
  const double window_lo = inj.timing().clock_period() - tm.setup_time;
  const double strike = window_lo - 4 * tm.delay_inv - 0.1;
  const std::vector<NodeId> struck = {c.gates[0]};
  const auto result = inj.inject(sim, struck, strike);
  ASSERT_EQ(result.flipped_dffs.size(), 1u);
  EXPECT_EQ(result.flipped_dffs[0], c.r);
  EXPECT_EQ(result.latched_flips, 1u);
  EXPECT_EQ(result.struck_gates, 1u);
}

TEST(InjectionSimulator, LateStrikeMissesWindow) {
  Chain c(5);
  const TimingModel tm;
  InjectionSimulator inj(c.nl, tm);
  const LogicSimulator sim = settled(c.nl);
  // Pulse arrives entirely after the hold window closes.
  const double window_hi = inj.timing().clock_period() + tm.hold_time;
  const double strike = window_hi - 4 * tm.delay_inv + 0.1;
  const std::vector<NodeId> struck = {c.gates[0]};
  const auto result = inj.inject(sim, struck, strike);
  EXPECT_TRUE(result.masked());
}

TEST(InjectionSimulator, EarlyStrikeDiesBeforeWindow) {
  // Long chain: generous slack between pulse arrival and the clock edge.
  Chain c(30);
  TimingModel tm;
  tm.attenuation = 0.0;  // isolate temporal masking from electrical
  InjectionSimulator inj(c.nl, tm);
  const LogicSimulator sim = settled(c.nl);
  // Strike the last gate early: pulse [29+1, +3] = [30, 33]; window starts at
  // (30 + 0.6) * 1.15 - 0.6 ≈ 34.6 — the pulse is long gone.
  const std::vector<NodeId> struck = {c.gates[29]};
  const auto result = inj.inject(sim, struck, /*strike_time=*/0.0);
  EXPECT_TRUE(result.masked());
}

TEST(InjectionSimulator, ElectricalMaskingKillsNarrowPulses) {
  // With default attenuation 0.15 and width 3.0, a pulse survives at most
  // (3.0 - 0.5) / 0.15 ≈ 16 stages. A 25-deep chain masks it regardless of
  // timing.
  Chain c(25);
  InjectionSimulator inj(c.nl);
  const LogicSimulator sim = settled(c.nl);
  bool any_flip = false;
  for (double frac : {0.0, 0.25, 0.5, 0.75, 0.95}) {
    const auto result = inj.inject(
        sim, std::vector<NodeId>{c.gates[0]},
        frac * inj.timing().clock_period());
    any_flip |= !result.masked();
  }
  EXPECT_FALSE(any_flip);
}

TEST(InjectionSimulator, LogicalMaskingByControllingSideInput) {
  // glitch -> AND(g, side); side = 0 masks, side = 1 sensitizes.
  Netlist nl;
  const NodeId in = nl.add_input("in");
  const NodeId side = nl.add_input("side");
  const NodeId g1 = nl.add_gate(CellType::kNot, {in}, "g1");
  const NodeId g2 = nl.add_gate(CellType::kAnd, {g1, side}, "g2");
  const NodeId r = nl.add_dff("r");
  nl.connect_dff(r, g2);

  const TimingModel tm;
  InjectionSimulator inj(nl, tm);
  // Aim the pulse at the window through 1 AND delay.
  const double window_lo = inj.timing().clock_period() - tm.setup_time;
  const double strike = window_lo - tm.delay_and_or - 0.1;

  LogicSimulator sim(nl);
  sim.set_input("side", false);
  sim.evaluate_comb();
  EXPECT_TRUE(inj.inject(sim, std::vector<NodeId>{g1}, strike).masked());

  sim.set_input("side", true);
  sim.evaluate_comb();
  EXPECT_FALSE(inj.inject(sim, std::vector<NodeId>{g1}, strike).masked());
}

TEST(InjectionSimulator, MuxSelectGlitchNeedsDifferingData) {
  Netlist nl;
  const NodeId sel = nl.add_input("sel");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId selbuf = nl.add_gate(CellType::kBuf, {sel}, "selbuf");
  const NodeId m = nl.add_gate(CellType::kMux, {selbuf, a, b}, "m");
  const NodeId r = nl.add_dff("r");
  nl.connect_dff(r, m);

  const TimingModel tm;
  InjectionSimulator inj(nl, tm);
  const double window_lo = inj.timing().clock_period() - tm.setup_time;
  const double strike = window_lo - tm.delay_mux - 0.05;

  LogicSimulator sim(nl);
  sim.set_input("a", true);
  sim.set_input("b", true);  // equal data: select glitch is invisible
  sim.evaluate_comb();
  EXPECT_TRUE(inj.inject(sim, std::vector<NodeId>{selbuf}, strike).masked());

  sim.set_input("b", false);  // differing data: glitch reaches the output
  sim.evaluate_comb();
  EXPECT_FALSE(inj.inject(sim, std::vector<NodeId>{selbuf}, strike).masked());
}

TEST(InjectionSimulator, MuxUnselectedDataPinMasked) {
  Netlist nl;
  const NodeId sel = nl.add_input("sel");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId abuf = nl.add_gate(CellType::kBuf, {a}, "abuf");
  const NodeId m = nl.add_gate(CellType::kMux, {sel, abuf, b}, "m");
  const NodeId r = nl.add_dff("r");
  nl.connect_dff(r, m);

  const TimingModel tm;
  InjectionSimulator inj(nl, tm);
  const double window_lo = inj.timing().clock_period() - tm.setup_time;
  const double strike = window_lo - tm.delay_mux - 0.05;

  LogicSimulator sim(nl);
  sim.set_input("sel", true);  // selects b: glitch on a-path is masked
  sim.evaluate_comb();
  EXPECT_TRUE(inj.inject(sim, std::vector<NodeId>{abuf}, strike).masked());

  sim.set_input("sel", false);
  sim.evaluate_comb();
  EXPECT_FALSE(inj.inject(sim, std::vector<NodeId>{abuf}, strike).masked());
}

TEST(InjectionSimulator, FanoutReachesMultipleRegisters) {
  // One struck gate fans out to two DFFs: both can flip.
  Netlist nl;
  const NodeId in = nl.add_input("in");
  const NodeId g = nl.add_gate(CellType::kBuf, {in}, "g");
  const NodeId r1 = nl.add_dff("r1");
  const NodeId r2 = nl.add_dff("r2");
  nl.connect_dff(r1, g);
  nl.connect_dff(r2, g);

  const TimingModel tm;
  InjectionSimulator inj(nl, tm);
  const double window_lo = inj.timing().clock_period() - tm.setup_time;
  LogicSimulator sim(nl);
  sim.evaluate_comb();
  const auto result =
      inj.inject(sim, std::vector<NodeId>{g}, window_lo - 0.05);
  EXPECT_EQ(result.flipped_dffs.size(), 2u);
  EXPECT_EQ(result.latched_flips, 2u);
}

TEST(InjectionSimulator, DeterministicForSameInputs) {
  Chain c(8);
  InjectionSimulator inj(c.nl);
  const LogicSimulator sim = settled(c.nl);
  const std::vector<NodeId> struck = {c.gates[0], c.gates[3], c.r};
  const auto r1 = inj.inject(sim, struck, 2.0);
  const auto r2 = inj.inject(sim, struck, 2.0);
  EXPECT_EQ(r1.flipped_dffs, r2.flipped_dffs);
  EXPECT_EQ(r1.struck_gates, r2.struck_gates);
}

TEST(InjectionSimulator, NegativeStrikeTimeThrows) {
  Chain c(3);
  InjectionSimulator inj(c.nl);
  const LogicSimulator sim = settled(c.nl);
  EXPECT_THROW(inj.inject(sim, std::vector<NodeId>{c.gates[0]}, -1.0),
               fav::CheckError);
}

TEST(InjectionSimulator, AddPulseMergesTransitively) {
  Chain c(3);
  InjectionSimulator inj(c.nl);
  std::vector<Pulse> list;
  inj.add_pulse(list, {0.0, 1.0});
  inj.add_pulse(list, {2.0, 1.0});
  ASSERT_EQ(list.size(), 2u);  // disjoint so far
  // [0.8, 2.2] bridges both: its union with [0, 1] is [0, 2.2], which in
  // turn overlaps [2, 3]. A single merge pass stopped there and left two
  // overlapping entries on the list; the merge must rescan until stable.
  inj.add_pulse(list, {0.8, 1.4});
  ASSERT_EQ(list.size(), 1u);
  EXPECT_DOUBLE_EQ(list[0].start, 0.0);
  EXPECT_DOUBLE_EQ(list[0].width, 3.0);
}

TEST(InjectionSimulator, AddPulseKeepsListDisjointAndCapped) {
  Chain c(3);
  InjectionSimulator inj(c.nl);
  std::mt19937 gen(7);
  std::uniform_real_distribution<double> start(0.0, 20.0);
  std::uniform_real_distribution<double> width(0.1, 4.0);
  std::vector<Pulse> list;
  const auto cap = static_cast<std::size_t>(inj.params().max_pulses_per_node);
  for (int i = 0; i < 200; ++i) {
    inj.add_pulse(list, {start(gen), width(gen)});
    ASSERT_LE(list.size(), cap);
    for (std::size_t a = 0; a < list.size(); ++a) {
      for (std::size_t b = a + 1; b < list.size(); ++b) {
        const bool overlap =
            list[a].start <= list[b].start + list[b].width &&
            list[b].start <= list[a].start + list[a].width;
        ASSERT_FALSE(overlap) << "entries " << a << " and " << b
                              << " overlap after insertion " << i;
      }
    }
  }
}

// Random mixed-gate netlists with per-lane divergent inputs, registers,
// struck sets and strike times: inject_batch must reproduce the scalar
// inject() flip set lane by lane. The scratch is reused across trials with
// different node counts to exercise its shrink/grow path too.
TEST(InjectionSimulator, InjectBatchMatchesScalarLaneByLane) {
  std::mt19937 gen(1234);
  BatchInjectionScratch scratch;
  for (int trial = 0; trial < 5; ++trial) {
    Netlist nl;
    std::vector<NodeId> pool;
    std::vector<NodeId> dffs;
    for (int i = 0; i < 3; ++i)
      pool.push_back(nl.add_input("in" + std::to_string(i)));
    for (int i = 0; i < 3; ++i) {
      dffs.push_back(nl.add_dff("r" + std::to_string(i)));
      pool.push_back(dffs.back());
    }
    static constexpr CellType kTypes[] = {
        CellType::kBuf, CellType::kNot,  CellType::kAnd,
        CellType::kOr,  CellType::kNand, CellType::kNor,
        CellType::kXor, CellType::kXnor, CellType::kMux};
    std::vector<NodeId> gates;
    const int n_gates = 24 + 8 * trial;
    for (int i = 0; i < n_gates; ++i) {
      const CellType t = kTypes[gen() % std::size(kTypes)];
      std::vector<NodeId> fanins;
      for (int a = 0; a < netlist::cell_arity(t); ++a)
        fanins.push_back(pool[gen() % pool.size()]);
      gates.push_back(
          nl.add_gate(t, std::move(fanins), "g" + std::to_string(i)));
      pool.push_back(gates.back());
    }
    for (NodeId r : dffs) nl.connect_dff(r, gates[gen() % gates.size()]);

    InjectionSimulator inj(nl);
    const double period = inj.timing().clock_period();
    std::vector<NodeId> candidates = gates;
    candidates.insert(candidates.end(), dffs.begin(), dffs.end());

    const int lanes = trial == 0 ? 1 : (trial == 1 ? 7 : 64);
    netlist::WordSimulator words(nl);
    std::vector<LogicSimulator> scalar;
    scalar.reserve(lanes);
    std::vector<std::vector<NodeId>> struck(lanes);
    std::vector<double> strike(lanes);
    for (int l = 0; l < lanes; ++l) {
      scalar.emplace_back(nl);
      for (NodeId in : nl.inputs()) {
        const bool v = gen() & 1;
        scalar[l].set_input(in, v);
        words.set_input_lane(in, l, v);
      }
      for (NodeId r : nl.dffs()) {
        const bool v = gen() & 1;
        scalar[l].set_register(r, v);
        words.set_register_lane(r, l, v);
      }
      scalar[l].evaluate_comb();
      const std::size_t n_struck = gen() % 5;
      for (std::size_t k = 0; k < n_struck; ++k)
        struck[l].push_back(candidates[gen() % candidates.size()]);
      strike[l] = static_cast<double>(gen() % 1000) / 1000.0 * period;
    }
    words.evaluate_comb();

    std::vector<std::vector<NodeId>> flipped;
    inj.inject_batch(words, struck, strike, scratch, flipped);
    ASSERT_EQ(flipped.size(), static_cast<std::size_t>(lanes));
    for (int l = 0; l < lanes; ++l) {
      const auto ref = inj.inject(scalar[l], struck[l], strike[l]);
      EXPECT_EQ(flipped[l], ref.flipped_dffs)
          << "trial " << trial << " lane " << l;
    }
  }
}

TEST(InjectionSimulator, InjectBatchRejectsBadLaneCounts) {
  Chain c(3);
  InjectionSimulator inj(c.nl);
  netlist::WordSimulator words(c.nl);
  words.broadcast_from(settled(c.nl));
  BatchInjectionScratch scratch;
  std::vector<std::vector<NodeId>> flipped;
  const std::vector<std::vector<NodeId>> none;
  const std::vector<double> no_times;
  EXPECT_THROW(inj.inject_batch(words, none, no_times, scratch, flipped),
               fav::CheckError);
  const std::vector<std::vector<NodeId>> one(1);
  EXPECT_THROW(inj.inject_batch(words, one, no_times, scratch, flipped),
               fav::CheckError);  // strike_times size mismatch
}

TEST(InjectionSimulator, BadParamsThrow) {
  Chain c(3);
  TransientParams tp;
  tp.initial_width = 0.0;
  EXPECT_THROW(InjectionSimulator(c.nl, TimingModel{}, tp), fav::CheckError);
  tp.initial_width = 1.0;
  tp.max_pulses_per_node = 0;
  EXPECT_THROW(InjectionSimulator(c.nl, TimingModel{}, tp), fav::CheckError);
}

}  // namespace
}  // namespace fav::faultsim
