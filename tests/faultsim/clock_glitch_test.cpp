#include "faultsim/clock_glitch.h"

#include <gtest/gtest.h>

#include "gen/builder.h"
#include "util/check.h"

namespace fav::faultsim {
namespace {

using netlist::CellType;
using netlist::LogicSimulator;
using netlist::Netlist;
using netlist::NodeId;

// Two registers with very different path depths:
//   fast: in -> r_fast (arrival ~0)
//   slow: in -> NOT^8 -> r_slow
struct TwoPaths {
  Netlist nl;
  NodeId in, r_fast, r_slow;
  TwoPaths() {
    in = nl.add_input("in");
    r_fast = nl.add_dff("r_fast");
    nl.connect_dff(r_fast, in);
    NodeId cur = in;
    for (int i = 0; i < 8; ++i) cur = nl.add_gate(CellType::kNot, {cur});
    r_slow = nl.add_dff("r_slow");
    nl.connect_dff(r_slow, cur);
  }
};

TEST(ClockGlitchSimulator, NominalPeriodNeverFlips) {
  TwoPaths c;
  ClockGlitchSimulator glitch(c.nl);
  LogicSimulator sim(c.nl);
  sim.set_input("in", true);
  sim.evaluate_comb();
  EXPECT_TRUE(
      glitch.flipped_dffs(sim, glitch.timing().clock_period()).empty());
}

TEST(ClockGlitchSimulator, DeepGlitchFlipsSlowPathOnly) {
  TwoPaths c;
  const TimingModel tm;
  ClockGlitchSimulator glitch(c.nl, tm);
  LogicSimulator sim(c.nl);
  sim.set_input("in", true);  // r_fast D = 1, r_slow D = NOT^8(1) = 1
  sim.evaluate_comb();
  // Glitch between the fast and slow arrivals: only the slow register
  // misses timing, and it flips because its old Q (0) != new D (1).
  const double mid = 4 * tm.delay_inv;
  const auto flips = glitch.flipped_dffs(sim, mid);
  ASSERT_EQ(flips.size(), 1u);
  EXPECT_EQ(flips[0], c.r_slow);
}

TEST(ClockGlitchSimulator, HoldOfSameValueIsNoError) {
  TwoPaths c;
  const TimingModel tm;
  ClockGlitchSimulator glitch(c.nl, tm);
  LogicSimulator sim(c.nl);
  // Preload r_slow with the value it would capture anyway: holding it is
  // not an error.
  sim.set_input("in", true);
  sim.set_register(c.r_slow, true);
  sim.evaluate_comb();
  EXPECT_TRUE(glitch.flipped_dffs(sim, 4 * tm.delay_inv).empty());
}

TEST(ClockGlitchSimulator, VeryDeepGlitchFlipsEveryChangingRegister) {
  TwoPaths c;
  ClockGlitchSimulator glitch(c.nl);
  LogicSimulator sim(c.nl);
  sim.set_input("in", true);  // both registers would change 0 -> 1
  sim.evaluate_comb();
  const auto flips = glitch.flipped_dffs(sim, 1e-6);
  EXPECT_EQ(flips.size(), 2u);
}

TEST(ClockGlitchSimulator, CriticalDArrival) {
  TwoPaths c;
  const TimingModel tm;
  ClockGlitchSimulator glitch(c.nl, tm);
  EXPECT_DOUBLE_EQ(glitch.critical_d_arrival(), 8 * tm.delay_inv);
}

TEST(ClockGlitchSimulator, InvalidPeriodThrows) {
  TwoPaths c;
  ClockGlitchSimulator glitch(c.nl);
  LogicSimulator sim(c.nl);
  sim.evaluate_comb();
  EXPECT_THROW(glitch.flipped_dffs(sim, 0.0), fav::CheckError);
}

TEST(ClockGlitchAttackModel, Validation) {
  ClockGlitchAttackModel m;
  EXPECT_NO_THROW(m.check_valid());
  EXPECT_EQ(m.t_count(), 50);
  m.depths = {1.5};
  EXPECT_THROW(m.check_valid(), fav::CheckError);
  m.depths = {};
  EXPECT_THROW(m.check_valid(), fav::CheckError);
  m.depths = {0.5};
  m.t_max = -1;
  EXPECT_THROW(m.check_valid(), fav::CheckError);
}

}  // namespace
}  // namespace fav::faultsim
