// Voltage-glitch simulator and technique tests: droop-scaled setup analysis
// on a netlist with known path depths, attack-model validation, and the
// enumerable-fault-space contract (index-stable, chunk-invariant, t-major)
// the exhaustive sweep driver keys on.
#include "faultsim/voltage_glitch.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "faultsim/technique.h"
#include "gen/builder.h"
#include "util/check.h"

namespace fav::faultsim {
namespace {

using netlist::CellType;
using netlist::LogicSimulator;
using netlist::Netlist;
using netlist::NodeId;

// Two registers with very different path depths:
//   fast: in -> r_fast (arrival 0)
//   slow: in -> NOT^8 -> r_slow (arrival 8 * delay_inv)
// Nominal period = critical path * margin = 8 * 1.15 = 9.2; with setup 0.6
// the slow path misses setup once 8 / (1 - droop) + 0.6 > 9.2, i.e. for
// droop > ~0.0698. The fast path (arrival 0) can never miss.
struct TwoPaths {
  Netlist nl;
  NodeId in, r_fast, r_slow;
  TwoPaths() {
    in = nl.add_input("in");
    r_fast = nl.add_dff("r_fast");
    nl.connect_dff(r_fast, in);
    NodeId cur = in;
    for (int i = 0; i < 8; ++i) cur = nl.add_gate(CellType::kNot, {cur});
    r_slow = nl.add_dff("r_slow");
    nl.connect_dff(r_slow, cur);
  }
};

TEST(VoltageGlitchSimulator, TinyDroopNeverFlips) {
  TwoPaths c;
  VoltageGlitchSimulator droop(c.nl);
  LogicSimulator sim(c.nl);
  sim.set_input("in", true);
  sim.evaluate_comb();
  // 8 / 0.95 + 0.6 = 9.02 < 9.2: even the slow path still meets setup.
  EXPECT_TRUE(droop.flipped_dffs(sim, 0.05).empty());
}

TEST(VoltageGlitchSimulator, ModerateDroopFlipsSlowPathOnly) {
  TwoPaths c;
  VoltageGlitchSimulator droop(c.nl);
  LogicSimulator sim(c.nl);
  sim.set_input("in", true);  // r_fast D = 1, r_slow D = NOT^8(1) = 1
  sim.evaluate_comb();
  // 8 / 0.8 + 0.6 = 10.6 > 9.2: the slow register holds its old Q (0),
  // which differs from the new D (1) — a captured error. The fast register
  // (arrival 0) always meets setup, whatever the droop.
  const auto flips = droop.flipped_dffs(sim, 0.2);
  ASSERT_EQ(flips.size(), 1u);
  EXPECT_EQ(flips[0], c.r_slow);
}

TEST(VoltageGlitchSimulator, HoldOfSameValueIsNoError) {
  TwoPaths c;
  VoltageGlitchSimulator droop(c.nl);
  LogicSimulator sim(c.nl);
  // Preload r_slow with the value it would capture anyway: holding it
  // through the droop is not an error.
  sim.set_input("in", true);
  sim.set_register(c.r_slow, true);
  sim.evaluate_comb();
  EXPECT_TRUE(droop.flipped_dffs(sim, 0.2).empty());
}

TEST(VoltageGlitchSimulator, SevereDroopFlipsEveryChangingSlowRegister) {
  TwoPaths c;
  VoltageGlitchSimulator droop(c.nl);
  LogicSimulator sim(c.nl);
  sim.set_input("in", true);
  sim.evaluate_comb();
  // Even at 99% droop only the slow register can miss: the fast register's
  // D arrives at 0, and 0 / (1 - d) is still 0.
  const auto flips = droop.flipped_dffs(sim, 0.99);
  ASSERT_EQ(flips.size(), 1u);
  EXPECT_EQ(flips[0], c.r_slow);
}

TEST(VoltageGlitchSimulator, CriticalDArrival) {
  TwoPaths c;
  const TimingModel tm;
  VoltageGlitchSimulator droop(c.nl, tm);
  EXPECT_DOUBLE_EQ(droop.critical_d_arrival(), 8 * tm.delay_inv);
}

TEST(VoltageGlitchSimulator, InvalidDroopThrows) {
  TwoPaths c;
  VoltageGlitchSimulator droop(c.nl);
  LogicSimulator sim(c.nl);
  sim.evaluate_comb();
  EXPECT_THROW(droop.flipped_dffs(sim, 0.0), fav::CheckError);
  EXPECT_THROW(droop.flipped_dffs(sim, 1.0), fav::CheckError);
  EXPECT_THROW(droop.flipped_dffs(sim, -0.3), fav::CheckError);
}

TEST(VoltageGlitchAttackModel, Validation) {
  VoltageGlitchAttackModel m;
  EXPECT_NO_THROW(m.check_valid());
  EXPECT_EQ(m.t_count(), 50);
  m.droops = {1.5};
  EXPECT_THROW(m.check_valid(), fav::CheckError);
  m.droops = {};
  EXPECT_THROW(m.check_valid(), fav::CheckError);
  m.droops = {0.5};
  m.t_max = -1;
  EXPECT_THROW(m.check_valid(), fav::CheckError);
  m.t_max = 49;
  EXPECT_THROW(m.check_valid(30), fav::CheckError);  // range past Tt
  EXPECT_NO_THROW(m.check_valid(60));
}

TEST(VoltageGlitchTechnique, RejectsForeignAndOutOfRangeSamples) {
  TwoPaths c;
  VoltageGlitchSimulator droop(c.nl);
  VoltageGlitchTechnique technique(droop);
  EXPECT_EQ(technique.kind(), TechniqueKind::kVoltageGlitch);
  FaultSample s;
  s.technique = TechniqueKind::kVoltageGlitch;
  s.t = 3;
  s.depth = 0.4;
  EXPECT_NO_THROW(technique.check_sample(s));
  s.depth = 1.0;
  EXPECT_THROW(technique.check_sample(s), fav::CheckError);
  s.depth = 0.4;
  s.technique = TechniqueKind::kRadiation;
  EXPECT_THROW(technique.check_sample(s), fav::CheckError);
}

TEST(VoltageGlitchTechnique, EnumerateWithoutBoundSpaceThrows) {
  TwoPaths c;
  VoltageGlitchSimulator droop(c.nl);
  VoltageGlitchTechnique technique(droop);
  EXPECT_EQ(technique.space_size(), 0u);
  std::vector<FaultSample> out;
  EXPECT_THROW(technique.enumerate(0, 1, out), fav::CheckError);
}

TEST(VoltageGlitchTechnique, EnumerationIsTMajorIndexStableAndChunkInvariant) {
  TwoPaths c;
  VoltageGlitchSimulator droop(c.nl);
  VoltageGlitchTechnique technique(droop);
  VoltageGlitchAttackModel model;
  model.t_min = 2;
  model.t_max = 6;
  model.droops = {0.2, 0.4, 0.6};
  technique.bind_space(model);
  ASSERT_EQ(technique.space_size(), 15u);

  std::vector<FaultSample> whole;
  technique.enumerate(0, 15, whole);
  ASSERT_EQ(whole.size(), 15u);
  for (std::size_t i = 0; i < whole.size(); ++i) {
    // t-major with the droop grid innermost, weight exactly 1.
    EXPECT_EQ(whole[i].t, 2 + static_cast<int>(i / 3)) << i;
    EXPECT_EQ(whole[i].depth, model.droops[i % 3]) << i;
    EXPECT_EQ(whole[i].weight, 1.0) << i;
    EXPECT_EQ(whole[i].technique, TechniqueKind::kVoltageGlitch) << i;
  }

  // Chunked enumeration (any chunking) must reproduce the same index ->
  // sample mapping — the contract journaled resume and sharding key on.
  for (const std::uint64_t chunk : {1ull, 4ull, 7ull}) {
    std::vector<FaultSample> piece;
    std::uint64_t index = 0;
    for (std::uint64_t lo = 0; lo < 15; lo += chunk) {
      const std::uint64_t hi = std::min<std::uint64_t>(lo + chunk, 15);
      technique.enumerate(lo, hi, piece);
      ASSERT_EQ(piece.size(), hi - lo);
      for (const FaultSample& s : piece) {
        EXPECT_EQ(s.t, whole[index].t) << "chunk=" << chunk << " i=" << index;
        EXPECT_EQ(s.depth, whole[index].depth)
            << "chunk=" << chunk << " i=" << index;
        ++index;
      }
    }
  }

  std::vector<FaultSample> out;
  EXPECT_THROW(technique.enumerate(10, 16, out), fav::CheckError);
  EXPECT_THROW(technique.enumerate(5, 4, out), fav::CheckError);
}

}  // namespace
}  // namespace fav::faultsim
