// Evaluating a different attack technique: clock glitching.
//
// The holistic model (paper Section 3.2) is technique-agnostic — here the
// attack parameters are the glitch cycle and depth rather than a radiation
// spot, and the same cross-level engine evaluates both (the framework is
// simply configured with technique = "clock-glitch"). Because a glitch's
// effect is deterministic per (cycle, depth), the SSF over the whole attack
// space can also be computed *exactly* by enumeration, and the per-depth
// profile tells the designer which clock margin the system can tolerate.
#include <cstdio>

#include "core/framework.h"
#include "mc/glitch_evaluator.h"

using namespace fav;

int main() {
  core::FrameworkConfig cfg;
  cfg.technique = "clock-glitch";
  core::FaultAttackEvaluator framework(soc::make_illegal_write_benchmark(),
                                       cfg);
  const faultsim::ClockGlitchSimulator& glitch = framework.glitch_simulator();
  const mc::ClockGlitchEvaluator evaluator(framework.evaluator(),
                                           framework.soc(), glitch);

  std::printf("nominal clock period: %.1f, slowest D arrival: %.1f\n\n",
              glitch.timing().clock_period(), glitch.critical_d_arrival());

  // Exact SSF per glitch depth over the full 50-cycle attack window. The
  // enumeration feeds the unified pipeline, so it parallelizes and reports
  // like any Monte Carlo campaign.
  std::printf("%-10s %10s %14s\n", "depth", "SSF", "succ/space");
  for (const double depth : {0.95, 0.85, 0.7, 0.55, 0.4, 0.25}) {
    faultsim::ClockGlitchAttackModel model;
    model.t_min = 1;
    model.t_max = 50;
    model.depths = {depth};
    const mc::SsfResult exact = evaluator.evaluate_exact(model);
    std::printf("%-10.2f %10.4f %10zu/%zu\n", depth, exact.ssf(),
                exact.successes, exact.stats.count());
  }

  // The same holistic model estimated by Monte Carlo through the same
  // engine: the uniform glitch sampler draws (t, depth), and the estimate
  // converges to the enumeration above.
  const faultsim::ClockGlitchAttackModel model = framework.glitch_attack_model();
  Rng rng(3);
  auto sampler = framework.make_glitch_sampler(model);
  const mc::SsfResult estimate = framework.evaluator().run(*sampler, rng, 2000);
  std::printf("\nMC estimate over the default depth grid: %.5f (+- %.5f)\n",
              estimate.ssf(), estimate.stats.standard_error());

  std::printf(
      "\nWhy the glitch SSF is ~0 here while radiation succeeds: a timing\n"
      "glitch makes registers HOLD their previous value, and MCU16's MPU\n"
      "configuration registers recirculate (D = Q) outside configuration\n"
      "writes — holding them is harmless. Radiation flips stored bits\n"
      "directly, which is exactly what corrupts a write-once configuration.\n"
      "Different techniques -> very different vulnerability, which is the\n"
      "point of the paper's holistic technique model.\n");
  return 0;
}
