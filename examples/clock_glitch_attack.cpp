// Evaluating a different attack technique: clock glitching.
//
// The holistic model (paper Section 3.2) is technique-agnostic — here the
// attack parameters are the glitch cycle and depth rather than a radiation
// spot. Because a glitch's effect is deterministic per (cycle, depth), the
// SSF over the whole attack space can be computed *exactly* by enumeration,
// and the per-depth profile tells the designer which clock margin the
// system can tolerate.
#include <cstdio>

#include "core/framework.h"
#include "mc/glitch_evaluator.h"

using namespace fav;

int main() {
  core::FaultAttackEvaluator framework(soc::make_illegal_write_benchmark());
  const faultsim::ClockGlitchSimulator glitch(framework.soc().netlist());
  const mc::ClockGlitchEvaluator evaluator(framework.evaluator(),
                                           framework.soc(), glitch);

  std::printf("nominal clock period: %.1f, slowest D arrival: %.1f\n\n",
              glitch.timing().clock_period(), glitch.critical_d_arrival());

  // Exact SSF per glitch depth over the full 50-cycle attack window.
  std::printf("%-10s %10s %14s\n", "depth", "SSF", "succ/space");
  for (const double depth : {0.95, 0.85, 0.7, 0.55, 0.4, 0.25}) {
    faultsim::ClockGlitchAttackModel model;
    model.t_min = 1;
    model.t_max = 50;
    model.depths = {depth};
    const auto exact = evaluator.evaluate_exact(model);
    std::printf("%-10.2f %10.4f %10zu/%zu\n", depth, exact.ssf(),
                exact.successes, exact.stats.count());
  }

  // Compare against the radiation technique on the same benchmark.
  const auto attack = framework.subblock_attack_model(1.5, 50);
  Rng rng(3);
  auto sampler = framework.make_importance_sampler(attack);
  const auto radiation = framework.evaluator().run(*sampler, rng, 3000);
  std::printf("\nradiation-spot SSF (same window): %.5f\n", radiation.ssf());
  std::printf(
      "\nWhy the glitch SSF is ~0 here while radiation succeeds: a timing\n"
      "glitch makes registers HOLD their previous value, and MCU16's MPU\n"
      "configuration registers recirculate (D = Q) outside configuration\n"
      "writes — holding them is harmless. Radiation flips stored bits\n"
      "directly, which is exactly what corrupts a write-once configuration.\n"
      "Different techniques -> very different vulnerability, which is the\n"
      "point of the paper's holistic technique model.\n");
  return 0;
}
