// Countermeasure exploration: which registers to harden, and what it buys.
//
// Reproduces the paper's design-optimization loop (Section 6): rank
// registers by SSF attribution, harden the critical few with resilient
// cells (10x resilience, 3x cell area per [19, 20]), and measure the SSF
// improvement against the area cost.
#include <cstdio>

#include "core/framework.h"
#include "core/hardening.h"

using namespace fav;

int main() {
  core::FaultAttackEvaluator framework(soc::make_illegal_write_benchmark());
  const auto attack = framework.subblock_attack_model(1.5, 50);
  Rng rng(404);
  auto sampler = framework.make_importance_sampler(attack);
  const mc::SsfResult baseline =
      framework.evaluator().run(*sampler, rng, 4000);
  std::printf("baseline SSF = %.5f (%zu successes)\n\n", baseline.ssf(),
              baseline.successes);

  // Sweep the protection budget: how much SSF reduction does each additional
  // slice of hardened registers buy?
  std::printf("%-10s %12s %12s %12s %12s\n", "coverage", "cells",
              "SSF", "improvement", "area ovh");
  for (const double coverage : {0.50, 0.80, 0.95, 1.00}) {
    const auto cells = core::select_critical_bits(baseline, coverage);
    Rng hrng(7);
    const core::HardeningReport report = core::evaluate_hardening(
        framework.evaluator(), framework.soc(), baseline, cells, {}, hrng);
    std::printf("%9.0f%% %12zu %12.5f %11.1fx %11.2f%%\n", coverage * 100,
                report.protected_bits.size(), report.hardened_ssf,
                report.improvement(), report.area_overhead * 100);
  }

  const auto critical = core::select_critical_fields(baseline, 0.95);
  std::printf("\nregisters protected at 95%% coverage:");
  const auto& map = rtl::Machine::reg_map();
  for (const int f : critical) std::printf(" %s", map.field(f).name.c_str());
  std::printf("\n");
  return 0;
}
