// Bringing your own security benchmark.
//
// A SecurityBenchmark is just an MCU16 assembly program plus an attacker-goal
// oracle. This example defines a fresh policy — a write-once configuration
// lock: region 2 holds calibration constants that are written during boot
// and then locked read-only — and evaluates how hard it is to tamper with
// the calibration data after lock-down.
#include <cstdio>

#include "core/framework.h"
#include "core/hardening.h"
#include "rtl/assembler.h"

using namespace fav;

namespace {

soc::SecurityBenchmark make_calibration_lock_benchmark() {
  soc::SecurityBenchmark b;
  b.name = "calibration_lock_tamper";
  b.kind = soc::SecurityBenchmark::Kind::kIllegalWrite;
  b.protected_addr = 0x6010;  // calibration word
  b.protected_init = 0x0000;  // written during boot below
  b.attack_value = 0x7A3C;    // the tampered calibration the attacker wants
  b.max_cycles = 400;
  b.program = rtl::assemble(R"(
    ; --- boot: open region 0 for general RAM -------------------------
    li r1, 0xFF00
    li r2, 0x0000
    sw r2, r1, 0
    li r2, 0x3FFF
    sw r2, r1, 1
    li r2, 7          ; read | write | enable
    sw r2, r1, 2
    ; --- boot: region 2 = calibration area, writable during boot -----
    li r1, 0xFF10
    li r2, 0x6000
    sw r2, r1, 0
    li r2, 0x60FF
    sw r2, r1, 1
    li r2, 7
    sw r2, r1, 2
    li r1, 0xFF22
    li r2, 1
    sw r2, r1, 0      ; MPU on
    ; --- write calibration constants, then LOCK region 2 read-only ---
    li r1, 0x6010
    li r2, 0x1234
    sw r2, r1, 0
    li r1, 0xFF10
    li r2, 5          ; read | enable (write dropped): locked
    sw r2, r1, 2
    ; --- normal operation: reads calibration, computes ----------------
    li r6, 0x0100
    li r7, 0x6010
    li r3, 10
    li r5, 1
work:
    lw r4, r7, 0      ; read calibration (legal)
    add r4, r4, r3
    sw r4, r6, 0
    sub r3, r3, r5
    bne r3, r0, work
    ; --- tamper attempt: overwrite calibration after lock (Tt) --------
    li r1, 0x6010
    li r2, 0x7A3C
    sw r2, r1, 0
    ; --- aftermath ----------------------------------------------------
    li r3, 3
after:
    lw r4, r7, 0
    sw r4, r6, 1
    sub r3, r3, r5
    bne r3, r0, after
    halt
  )");
  // The calibration word is 0x1234 after boot; tampering means the attack
  // value landed and no violation was recorded.
  return b;
}

}  // namespace

int main() {
  const soc::SecurityBenchmark bench = make_calibration_lock_benchmark();

  // Sanity: fault-free, the tamper attempt must be blocked and recorded.
  {
    rtl::Machine m(bench.program);
    m.run(bench.max_cycles);
    std::printf("fault-free run: calibration=0x%04X, violation=%s\n",
                m.ram().read(bench.protected_addr),
                m.state().viol_sticky ? "recorded" : "MISSED");
  }

  core::FaultAttackEvaluator framework(bench);
  std::printf("target (tamper) cycle Tt = %llu\n\n",
              static_cast<unsigned long long>(framework.target_cycle()));

  const auto attack = framework.subblock_attack_model(1.5, 50);
  Rng rng(99);
  auto sampler = framework.make_importance_sampler(attack);
  const mc::SsfResult res = framework.evaluator().run(*sampler, rng, 3000);
  std::printf("tamper SSF = %.5f (stderr %.5f, %zu successes)\n", res.ssf(),
              res.stats.standard_error(), res.successes);

  const auto critical = core::select_critical_fields(res, 0.9);
  const auto& map = rtl::Machine::reg_map();
  std::printf("weakest links:");
  for (const int f : critical) std::printf(" %s", map.field(f).name.c_str());
  std::printf("\n(the region-2 permission lock is the natural target)\n");
  return 0;
}
