// Quickstart: evaluate a system's vulnerability against radiation-based
// fault attacks in ~20 lines.
//
// The framework ships with MCU16 (a 16-bit micro-controller with a 4-region
// MPU) and two security benchmarks. This example measures the System
// Security Factor (SSF) — the probability that an attack bypasses the MPU's
// memory-access policy undetected — using the importance-sampled cross-level
// Monte Carlo flow.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "core/framework.h"
#include "core/hardening.h"

int main() {
  using namespace fav;

  // 1. Pick a security benchmark: a workload that attempts an illegal write
  //    into a read-only MPU region at its target cycle Tt.
  core::FaultAttackEvaluator framework(soc::make_illegal_write_benchmark());
  std::printf("benchmark: %s\n", framework.benchmark().name.c_str());
  std::printf("  elaborated netlist: %zu gates, %zu registers\n",
              framework.soc().netlist().gate_count(),
              framework.soc().netlist().dffs().size());
  std::printf("  golden run: %llu cycles, illegal access at Tt = %llu\n",
              static_cast<unsigned long long>(framework.golden().length()),
              static_cast<unsigned long long>(framework.target_cycle()));

  // 2. Describe the attacker: radiation spots (radius 1.5 cell pitches)
  //    aimed at the security logic's neighbourhood, with a 50-cycle timing
  //    uncertainty — the holistic fault model f_{T,P}.
  const faultsim::AttackModel attack =
      framework.subblock_attack_model(/*radius=*/1.5, /*t_range=*/50);
  std::printf("  attack model: %zu candidate spot centers, t in [0, %d]\n",
              attack.candidate_centers.size(), attack.t_max);

  // 3. Estimate the SSF with the pre-characterization-driven importance
  //    sampler (Fig. 5 of the paper: checkpoint restart -> gate-level
  //    injection -> analytical or RTL-level outcome).
  Rng rng(/*seed=*/2017);
  auto sampler = framework.make_importance_sampler(attack);
  const mc::SsfResult result =
      framework.evaluator().run(*sampler, rng, /*n=*/3000);

  std::printf("\nSSF = %.5f  (standard error %.5f)\n", result.ssf(),
              result.stats.standard_error());
  std::printf("  %zu/%zu sampled attacks succeeded\n", result.successes,
              result.stats.count());
  std::printf("  outcome paths: %zu masked, %zu analytical, %zu RTL-resumed\n",
              result.masked, result.analytical, result.rtl);

  // 4. The per-register attribution tells the designer what to protect.
  std::printf("\ntop vulnerable registers:\n");
  const auto critical = core::select_critical_fields(result, 0.95);
  const auto& map = rtl::Machine::reg_map();
  const double total_contribution =
      result.ssf() * static_cast<double>(result.stats.count());
  for (std::size_t i = 0; i < critical.size() && i < 8; ++i) {
    std::printf("  %-12s contributes %.1f%% of SSF\n",
                map.field(critical[i]).name.c_str(),
                100.0 * result.field_contribution.at(critical[i]) /
                    total_contribution);
  }
  return 0;
}
