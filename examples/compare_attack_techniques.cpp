// Comparing attack techniques and attacker capabilities.
//
// The holistic fault model (paper Section 3.2) encodes a technique's
// temporal accuracy (range of T) and parameter variation (spread of P).
// This example quantifies how SSF changes across attacker profiles, from a
// crude wide-spread disturbance to a precisely aimed probe — the designer's
// view of "which attackers do I need to worry about".
#include <cstdio>
#include <vector>

#include "core/framework.h"

using namespace fav;

namespace {

struct Profile {
  const char* name;
  int t_range;    // temporal accuracy: width of the timing window
  double radius;  // spot size
  bool aimed;     // spatially aimed at the security block vs whole chip
};

}  // namespace

int main() {
  core::FaultAttackEvaluator framework(soc::make_illegal_write_benchmark());

  const std::vector<Profile> profiles = {
      {"wide/blind   (cheap EM pulse)", 50, 3.0, false},
      {"wide/aimed   (focused EM)", 50, 3.0, true},
      {"tight/aimed  (laser, rough)", 10, 1.5, true},
      {"sharp/aimed  (laser, precise)", 3, 0.8, true},
  };

  std::printf("%-34s %10s %10s %8s\n", "attacker profile", "SSF", "stderr",
              "succ");
  for (const Profile& p : profiles) {
    const faultsim::AttackModel attack =
        p.aimed ? framework.subblock_attack_model(p.radius, p.t_range)
                : framework.chip_attack_model(p.radius, p.t_range);
    Rng rng(11);
    auto sampler = framework.make_importance_sampler(attack);
    const mc::SsfResult res = framework.evaluator().run(*sampler, rng, 2000);
    std::printf("%-34s %10.5f %10.5f %7zu\n", p.name, res.ssf(),
                res.stats.standard_error(), res.successes);
  }

  // A different *technique*, not just a different capability: the same
  // engine evaluates a clock-glitch attacker when the framework is
  // configured for it — the estimator, threads, and reporting are shared.
  core::FrameworkConfig glitch_cfg;
  glitch_cfg.technique = "clock-glitch";
  core::FaultAttackEvaluator glitch_framework(
      soc::make_illegal_write_benchmark(), glitch_cfg);
  const faultsim::ClockGlitchAttackModel model =
      glitch_framework.glitch_attack_model(50);
  Rng glitch_rng(11);
  auto glitch_sampler = glitch_framework.make_glitch_sampler(model);
  const mc::SsfResult glitch_res =
      glitch_framework.evaluator().run(*glitch_sampler, glitch_rng, 2000);
  std::printf("%-34s %10.5f %10.5f %7zu\n", "clock glitch (same window)",
              glitch_res.ssf(), glitch_res.stats.standard_error(),
              glitch_res.successes);

  std::printf(
      "\nA sharper technique concentrates f_{T,P} on the vulnerable\n"
      "subspace: SSF rises accordingly (paper Fig. 11), and switching the\n"
      "technique entirely changes which parts of the design are exposed.\n");
  return 0;
}
