file(REMOVE_RECURSE
  "CMakeFiles/harden_design.dir/harden_design.cpp.o"
  "CMakeFiles/harden_design.dir/harden_design.cpp.o.d"
  "harden_design"
  "harden_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harden_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
