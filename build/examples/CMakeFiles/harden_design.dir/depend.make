# Empty dependencies file for harden_design.
# This may be replaced when dependencies are built.
