file(REMOVE_RECURSE
  "CMakeFiles/compare_attack_techniques.dir/compare_attack_techniques.cpp.o"
  "CMakeFiles/compare_attack_techniques.dir/compare_attack_techniques.cpp.o.d"
  "compare_attack_techniques"
  "compare_attack_techniques.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_attack_techniques.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
