# Empty compiler generated dependencies file for compare_attack_techniques.
# This may be replaced when dependencies are built.
