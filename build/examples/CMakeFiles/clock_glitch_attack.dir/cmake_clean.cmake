file(REMOVE_RECURSE
  "CMakeFiles/clock_glitch_attack.dir/clock_glitch_attack.cpp.o"
  "CMakeFiles/clock_glitch_attack.dir/clock_glitch_attack.cpp.o.d"
  "clock_glitch_attack"
  "clock_glitch_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clock_glitch_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
