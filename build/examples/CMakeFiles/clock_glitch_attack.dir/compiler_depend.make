# Empty compiler generated dependencies file for clock_glitch_attack.
# This may be replaced when dependencies are built.
