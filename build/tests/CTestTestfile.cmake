# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/netlist_test[1]_include.cmake")
include("/root/repo/build/tests/gen_test[1]_include.cmake")
include("/root/repo/build/tests/rtl_test[1]_include.cmake")
include("/root/repo/build/tests/soc_test[1]_include.cmake")
include("/root/repo/build/tests/layout_test[1]_include.cmake")
include("/root/repo/build/tests/faultsim_test[1]_include.cmake")
include("/root/repo/build/tests/precharac_test[1]_include.cmake")
include("/root/repo/build/tests/mc_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
