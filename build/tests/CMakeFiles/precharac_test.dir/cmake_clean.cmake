file(REMOVE_RECURSE
  "CMakeFiles/precharac_test.dir/precharac/characterize_test.cpp.o"
  "CMakeFiles/precharac_test.dir/precharac/characterize_test.cpp.o.d"
  "CMakeFiles/precharac_test.dir/precharac/sampling_model_test.cpp.o"
  "CMakeFiles/precharac_test.dir/precharac/sampling_model_test.cpp.o.d"
  "CMakeFiles/precharac_test.dir/precharac/signatures_test.cpp.o"
  "CMakeFiles/precharac_test.dir/precharac/signatures_test.cpp.o.d"
  "precharac_test"
  "precharac_test.pdb"
  "precharac_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/precharac_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
