# Empty compiler generated dependencies file for precharac_test.
# This may be replaced when dependencies are built.
