
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/faultsim/clock_glitch_test.cpp" "tests/CMakeFiles/faultsim_test.dir/faultsim/clock_glitch_test.cpp.o" "gcc" "tests/CMakeFiles/faultsim_test.dir/faultsim/clock_glitch_test.cpp.o.d"
  "/root/repo/tests/faultsim/injection_test.cpp" "tests/CMakeFiles/faultsim_test.dir/faultsim/injection_test.cpp.o" "gcc" "tests/CMakeFiles/faultsim_test.dir/faultsim/injection_test.cpp.o.d"
  "/root/repo/tests/faultsim/timing_test.cpp" "tests/CMakeFiles/faultsim_test.dir/faultsim/timing_test.cpp.o" "gcc" "tests/CMakeFiles/faultsim_test.dir/faultsim/timing_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/faultsim/CMakeFiles/fav_faultsim.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/fav_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/fav_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fav_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
