file(REMOVE_RECURSE
  "CMakeFiles/faultsim_test.dir/faultsim/clock_glitch_test.cpp.o"
  "CMakeFiles/faultsim_test.dir/faultsim/clock_glitch_test.cpp.o.d"
  "CMakeFiles/faultsim_test.dir/faultsim/injection_test.cpp.o"
  "CMakeFiles/faultsim_test.dir/faultsim/injection_test.cpp.o.d"
  "CMakeFiles/faultsim_test.dir/faultsim/timing_test.cpp.o"
  "CMakeFiles/faultsim_test.dir/faultsim/timing_test.cpp.o.d"
  "faultsim_test"
  "faultsim_test.pdb"
  "faultsim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faultsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
