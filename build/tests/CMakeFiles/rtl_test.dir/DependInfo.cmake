
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/rtl/assembler_test.cpp" "tests/CMakeFiles/rtl_test.dir/rtl/assembler_test.cpp.o" "gcc" "tests/CMakeFiles/rtl_test.dir/rtl/assembler_test.cpp.o.d"
  "/root/repo/tests/rtl/exec_check_test.cpp" "tests/CMakeFiles/rtl_test.dir/rtl/exec_check_test.cpp.o" "gcc" "tests/CMakeFiles/rtl_test.dir/rtl/exec_check_test.cpp.o.d"
  "/root/repo/tests/rtl/golden_test.cpp" "tests/CMakeFiles/rtl_test.dir/rtl/golden_test.cpp.o" "gcc" "tests/CMakeFiles/rtl_test.dir/rtl/golden_test.cpp.o.d"
  "/root/repo/tests/rtl/isa_test.cpp" "tests/CMakeFiles/rtl_test.dir/rtl/isa_test.cpp.o" "gcc" "tests/CMakeFiles/rtl_test.dir/rtl/isa_test.cpp.o.d"
  "/root/repo/tests/rtl/machine_test.cpp" "tests/CMakeFiles/rtl_test.dir/rtl/machine_test.cpp.o" "gcc" "tests/CMakeFiles/rtl_test.dir/rtl/machine_test.cpp.o.d"
  "/root/repo/tests/rtl/registers_test.cpp" "tests/CMakeFiles/rtl_test.dir/rtl/registers_test.cpp.o" "gcc" "tests/CMakeFiles/rtl_test.dir/rtl/registers_test.cpp.o.d"
  "/root/repo/tests/rtl/vcd_test.cpp" "tests/CMakeFiles/rtl_test.dir/rtl/vcd_test.cpp.o" "gcc" "tests/CMakeFiles/rtl_test.dir/rtl/vcd_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rtl/CMakeFiles/fav_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fav_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
