file(REMOVE_RECURSE
  "CMakeFiles/soc_test.dir/soc/benchmark_test.cpp.o"
  "CMakeFiles/soc_test.dir/soc/benchmark_test.cpp.o.d"
  "CMakeFiles/soc_test.dir/soc/dma_test.cpp.o"
  "CMakeFiles/soc_test.dir/soc/dma_test.cpp.o.d"
  "CMakeFiles/soc_test.dir/soc/equivalence_test.cpp.o"
  "CMakeFiles/soc_test.dir/soc/equivalence_test.cpp.o.d"
  "CMakeFiles/soc_test.dir/soc/exec_benchmark_test.cpp.o"
  "CMakeFiles/soc_test.dir/soc/exec_benchmark_test.cpp.o.d"
  "CMakeFiles/soc_test.dir/soc/fuzz_equivalence_test.cpp.o"
  "CMakeFiles/soc_test.dir/soc/fuzz_equivalence_test.cpp.o.d"
  "CMakeFiles/soc_test.dir/soc/soc_netlist_test.cpp.o"
  "CMakeFiles/soc_test.dir/soc/soc_netlist_test.cpp.o.d"
  "soc_test"
  "soc_test.pdb"
  "soc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
