file(REMOVE_RECURSE
  "CMakeFiles/fav_faultsim.dir/clock_glitch.cpp.o"
  "CMakeFiles/fav_faultsim.dir/clock_glitch.cpp.o.d"
  "CMakeFiles/fav_faultsim.dir/injection.cpp.o"
  "CMakeFiles/fav_faultsim.dir/injection.cpp.o.d"
  "CMakeFiles/fav_faultsim.dir/timing.cpp.o"
  "CMakeFiles/fav_faultsim.dir/timing.cpp.o.d"
  "libfav_faultsim.a"
  "libfav_faultsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fav_faultsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
