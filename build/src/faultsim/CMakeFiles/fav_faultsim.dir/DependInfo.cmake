
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/faultsim/clock_glitch.cpp" "src/faultsim/CMakeFiles/fav_faultsim.dir/clock_glitch.cpp.o" "gcc" "src/faultsim/CMakeFiles/fav_faultsim.dir/clock_glitch.cpp.o.d"
  "/root/repo/src/faultsim/injection.cpp" "src/faultsim/CMakeFiles/fav_faultsim.dir/injection.cpp.o" "gcc" "src/faultsim/CMakeFiles/fav_faultsim.dir/injection.cpp.o.d"
  "/root/repo/src/faultsim/timing.cpp" "src/faultsim/CMakeFiles/fav_faultsim.dir/timing.cpp.o" "gcc" "src/faultsim/CMakeFiles/fav_faultsim.dir/timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/fav_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fav_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
