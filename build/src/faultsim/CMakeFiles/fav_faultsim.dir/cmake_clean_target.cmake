file(REMOVE_RECURSE
  "libfav_faultsim.a"
)
