# Empty dependencies file for fav_faultsim.
# This may be replaced when dependencies are built.
