
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/cones.cpp" "src/netlist/CMakeFiles/fav_netlist.dir/cones.cpp.o" "gcc" "src/netlist/CMakeFiles/fav_netlist.dir/cones.cpp.o.d"
  "/root/repo/src/netlist/dot.cpp" "src/netlist/CMakeFiles/fav_netlist.dir/dot.cpp.o" "gcc" "src/netlist/CMakeFiles/fav_netlist.dir/dot.cpp.o.d"
  "/root/repo/src/netlist/logicsim.cpp" "src/netlist/CMakeFiles/fav_netlist.dir/logicsim.cpp.o" "gcc" "src/netlist/CMakeFiles/fav_netlist.dir/logicsim.cpp.o.d"
  "/root/repo/src/netlist/netlist.cpp" "src/netlist/CMakeFiles/fav_netlist.dir/netlist.cpp.o" "gcc" "src/netlist/CMakeFiles/fav_netlist.dir/netlist.cpp.o.d"
  "/root/repo/src/netlist/unroll.cpp" "src/netlist/CMakeFiles/fav_netlist.dir/unroll.cpp.o" "gcc" "src/netlist/CMakeFiles/fav_netlist.dir/unroll.cpp.o.d"
  "/root/repo/src/netlist/verilog.cpp" "src/netlist/CMakeFiles/fav_netlist.dir/verilog.cpp.o" "gcc" "src/netlist/CMakeFiles/fav_netlist.dir/verilog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fav_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
