file(REMOVE_RECURSE
  "libfav_netlist.a"
)
