# Empty dependencies file for fav_netlist.
# This may be replaced when dependencies are built.
