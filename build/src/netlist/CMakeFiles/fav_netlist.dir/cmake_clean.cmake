file(REMOVE_RECURSE
  "CMakeFiles/fav_netlist.dir/cones.cpp.o"
  "CMakeFiles/fav_netlist.dir/cones.cpp.o.d"
  "CMakeFiles/fav_netlist.dir/dot.cpp.o"
  "CMakeFiles/fav_netlist.dir/dot.cpp.o.d"
  "CMakeFiles/fav_netlist.dir/logicsim.cpp.o"
  "CMakeFiles/fav_netlist.dir/logicsim.cpp.o.d"
  "CMakeFiles/fav_netlist.dir/netlist.cpp.o"
  "CMakeFiles/fav_netlist.dir/netlist.cpp.o.d"
  "CMakeFiles/fav_netlist.dir/unroll.cpp.o"
  "CMakeFiles/fav_netlist.dir/unroll.cpp.o.d"
  "CMakeFiles/fav_netlist.dir/verilog.cpp.o"
  "CMakeFiles/fav_netlist.dir/verilog.cpp.o.d"
  "libfav_netlist.a"
  "libfav_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fav_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
