file(REMOVE_RECURSE
  "libfav_mc.a"
)
