# Empty compiler generated dependencies file for fav_mc.
# This may be replaced when dependencies are built.
