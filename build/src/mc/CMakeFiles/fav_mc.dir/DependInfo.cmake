
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mc/adaptive.cpp" "src/mc/CMakeFiles/fav_mc.dir/adaptive.cpp.o" "gcc" "src/mc/CMakeFiles/fav_mc.dir/adaptive.cpp.o.d"
  "/root/repo/src/mc/analytical.cpp" "src/mc/CMakeFiles/fav_mc.dir/analytical.cpp.o" "gcc" "src/mc/CMakeFiles/fav_mc.dir/analytical.cpp.o.d"
  "/root/repo/src/mc/evaluator.cpp" "src/mc/CMakeFiles/fav_mc.dir/evaluator.cpp.o" "gcc" "src/mc/CMakeFiles/fav_mc.dir/evaluator.cpp.o.d"
  "/root/repo/src/mc/glitch_evaluator.cpp" "src/mc/CMakeFiles/fav_mc.dir/glitch_evaluator.cpp.o" "gcc" "src/mc/CMakeFiles/fav_mc.dir/glitch_evaluator.cpp.o.d"
  "/root/repo/src/mc/samplers.cpp" "src/mc/CMakeFiles/fav_mc.dir/samplers.cpp.o" "gcc" "src/mc/CMakeFiles/fav_mc.dir/samplers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/precharac/CMakeFiles/fav_precharac.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/fav_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/fav_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/fav_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/fav_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/faultsim/CMakeFiles/fav_faultsim.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/fav_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fav_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
