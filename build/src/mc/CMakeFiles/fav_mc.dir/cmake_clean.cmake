file(REMOVE_RECURSE
  "CMakeFiles/fav_mc.dir/adaptive.cpp.o"
  "CMakeFiles/fav_mc.dir/adaptive.cpp.o.d"
  "CMakeFiles/fav_mc.dir/analytical.cpp.o"
  "CMakeFiles/fav_mc.dir/analytical.cpp.o.d"
  "CMakeFiles/fav_mc.dir/evaluator.cpp.o"
  "CMakeFiles/fav_mc.dir/evaluator.cpp.o.d"
  "CMakeFiles/fav_mc.dir/glitch_evaluator.cpp.o"
  "CMakeFiles/fav_mc.dir/glitch_evaluator.cpp.o.d"
  "CMakeFiles/fav_mc.dir/samplers.cpp.o"
  "CMakeFiles/fav_mc.dir/samplers.cpp.o.d"
  "libfav_mc.a"
  "libfav_mc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fav_mc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
