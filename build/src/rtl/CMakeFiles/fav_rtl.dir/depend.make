# Empty dependencies file for fav_rtl.
# This may be replaced when dependencies are built.
