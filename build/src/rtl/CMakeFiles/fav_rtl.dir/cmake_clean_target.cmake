file(REMOVE_RECURSE
  "libfav_rtl.a"
)
