file(REMOVE_RECURSE
  "CMakeFiles/fav_rtl.dir/assembler.cpp.o"
  "CMakeFiles/fav_rtl.dir/assembler.cpp.o.d"
  "CMakeFiles/fav_rtl.dir/golden.cpp.o"
  "CMakeFiles/fav_rtl.dir/golden.cpp.o.d"
  "CMakeFiles/fav_rtl.dir/isa.cpp.o"
  "CMakeFiles/fav_rtl.dir/isa.cpp.o.d"
  "CMakeFiles/fav_rtl.dir/machine.cpp.o"
  "CMakeFiles/fav_rtl.dir/machine.cpp.o.d"
  "CMakeFiles/fav_rtl.dir/registers.cpp.o"
  "CMakeFiles/fav_rtl.dir/registers.cpp.o.d"
  "CMakeFiles/fav_rtl.dir/vcd.cpp.o"
  "CMakeFiles/fav_rtl.dir/vcd.cpp.o.d"
  "libfav_rtl.a"
  "libfav_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fav_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
