
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rtl/assembler.cpp" "src/rtl/CMakeFiles/fav_rtl.dir/assembler.cpp.o" "gcc" "src/rtl/CMakeFiles/fav_rtl.dir/assembler.cpp.o.d"
  "/root/repo/src/rtl/golden.cpp" "src/rtl/CMakeFiles/fav_rtl.dir/golden.cpp.o" "gcc" "src/rtl/CMakeFiles/fav_rtl.dir/golden.cpp.o.d"
  "/root/repo/src/rtl/isa.cpp" "src/rtl/CMakeFiles/fav_rtl.dir/isa.cpp.o" "gcc" "src/rtl/CMakeFiles/fav_rtl.dir/isa.cpp.o.d"
  "/root/repo/src/rtl/machine.cpp" "src/rtl/CMakeFiles/fav_rtl.dir/machine.cpp.o" "gcc" "src/rtl/CMakeFiles/fav_rtl.dir/machine.cpp.o.d"
  "/root/repo/src/rtl/registers.cpp" "src/rtl/CMakeFiles/fav_rtl.dir/registers.cpp.o" "gcc" "src/rtl/CMakeFiles/fav_rtl.dir/registers.cpp.o.d"
  "/root/repo/src/rtl/vcd.cpp" "src/rtl/CMakeFiles/fav_rtl.dir/vcd.cpp.o" "gcc" "src/rtl/CMakeFiles/fav_rtl.dir/vcd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fav_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
