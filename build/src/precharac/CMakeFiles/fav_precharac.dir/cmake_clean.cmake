file(REMOVE_RECURSE
  "CMakeFiles/fav_precharac.dir/characterize.cpp.o"
  "CMakeFiles/fav_precharac.dir/characterize.cpp.o.d"
  "CMakeFiles/fav_precharac.dir/sampling_model.cpp.o"
  "CMakeFiles/fav_precharac.dir/sampling_model.cpp.o.d"
  "CMakeFiles/fav_precharac.dir/signatures.cpp.o"
  "CMakeFiles/fav_precharac.dir/signatures.cpp.o.d"
  "libfav_precharac.a"
  "libfav_precharac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fav_precharac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
