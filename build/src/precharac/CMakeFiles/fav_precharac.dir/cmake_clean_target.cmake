file(REMOVE_RECURSE
  "libfav_precharac.a"
)
