# Empty compiler generated dependencies file for fav_precharac.
# This may be replaced when dependencies are built.
