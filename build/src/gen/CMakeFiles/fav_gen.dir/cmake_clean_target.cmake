file(REMOVE_RECURSE
  "libfav_gen.a"
)
