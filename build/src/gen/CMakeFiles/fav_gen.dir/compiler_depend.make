# Empty compiler generated dependencies file for fav_gen.
# This may be replaced when dependencies are built.
