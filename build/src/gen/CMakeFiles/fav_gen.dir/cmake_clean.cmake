file(REMOVE_RECURSE
  "CMakeFiles/fav_gen.dir/builder.cpp.o"
  "CMakeFiles/fav_gen.dir/builder.cpp.o.d"
  "libfav_gen.a"
  "libfav_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fav_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
