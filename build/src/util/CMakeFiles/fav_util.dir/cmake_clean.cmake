file(REMOVE_RECURSE
  "CMakeFiles/fav_util.dir/bitvector.cpp.o"
  "CMakeFiles/fav_util.dir/bitvector.cpp.o.d"
  "CMakeFiles/fav_util.dir/discrete_dist.cpp.o"
  "CMakeFiles/fav_util.dir/discrete_dist.cpp.o.d"
  "CMakeFiles/fav_util.dir/stats.cpp.o"
  "CMakeFiles/fav_util.dir/stats.cpp.o.d"
  "libfav_util.a"
  "libfav_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fav_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
