# Empty dependencies file for fav_util.
# This may be replaced when dependencies are built.
