file(REMOVE_RECURSE
  "libfav_util.a"
)
