file(REMOVE_RECURSE
  "libfav_layout.a"
)
