# Empty dependencies file for fav_layout.
# This may be replaced when dependencies are built.
