file(REMOVE_RECURSE
  "CMakeFiles/fav_layout.dir/placement.cpp.o"
  "CMakeFiles/fav_layout.dir/placement.cpp.o.d"
  "libfav_layout.a"
  "libfav_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fav_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
