# Empty compiler generated dependencies file for fav_core.
# This may be replaced when dependencies are built.
