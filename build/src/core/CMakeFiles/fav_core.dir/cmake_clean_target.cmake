file(REMOVE_RECURSE
  "libfav_core.a"
)
