file(REMOVE_RECURSE
  "CMakeFiles/fav_core.dir/framework.cpp.o"
  "CMakeFiles/fav_core.dir/framework.cpp.o.d"
  "CMakeFiles/fav_core.dir/hardening.cpp.o"
  "CMakeFiles/fav_core.dir/hardening.cpp.o.d"
  "libfav_core.a"
  "libfav_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fav_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
