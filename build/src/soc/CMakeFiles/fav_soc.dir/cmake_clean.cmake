file(REMOVE_RECURSE
  "CMakeFiles/fav_soc.dir/benchmark.cpp.o"
  "CMakeFiles/fav_soc.dir/benchmark.cpp.o.d"
  "CMakeFiles/fav_soc.dir/gate_machine.cpp.o"
  "CMakeFiles/fav_soc.dir/gate_machine.cpp.o.d"
  "CMakeFiles/fav_soc.dir/soc_netlist.cpp.o"
  "CMakeFiles/fav_soc.dir/soc_netlist.cpp.o.d"
  "libfav_soc.a"
  "libfav_soc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fav_soc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
