
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/soc/benchmark.cpp" "src/soc/CMakeFiles/fav_soc.dir/benchmark.cpp.o" "gcc" "src/soc/CMakeFiles/fav_soc.dir/benchmark.cpp.o.d"
  "/root/repo/src/soc/gate_machine.cpp" "src/soc/CMakeFiles/fav_soc.dir/gate_machine.cpp.o" "gcc" "src/soc/CMakeFiles/fav_soc.dir/gate_machine.cpp.o.d"
  "/root/repo/src/soc/soc_netlist.cpp" "src/soc/CMakeFiles/fav_soc.dir/soc_netlist.cpp.o" "gcc" "src/soc/CMakeFiles/fav_soc.dir/soc_netlist.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gen/CMakeFiles/fav_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/fav_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/fav_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fav_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
