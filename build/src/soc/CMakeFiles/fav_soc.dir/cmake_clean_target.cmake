file(REMOVE_RECURSE
  "libfav_soc.a"
)
