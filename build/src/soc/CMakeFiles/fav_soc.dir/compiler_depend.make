# Empty compiler generated dependencies file for fav_soc.
# This may be replaced when dependencies are built.
