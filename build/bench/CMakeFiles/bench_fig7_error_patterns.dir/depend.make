# Empty dependencies file for bench_fig7_error_patterns.
# This may be replaced when dependencies are built.
