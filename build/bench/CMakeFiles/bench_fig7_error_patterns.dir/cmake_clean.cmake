file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_error_patterns.dir/bench_fig7_error_patterns.cpp.o"
  "CMakeFiles/bench_fig7_error_patterns.dir/bench_fig7_error_patterns.cpp.o.d"
  "bench_fig7_error_patterns"
  "bench_fig7_error_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_error_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
