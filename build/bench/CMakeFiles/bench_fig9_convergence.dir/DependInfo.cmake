
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig9_convergence.cpp" "bench/CMakeFiles/bench_fig9_convergence.dir/bench_fig9_convergence.cpp.o" "gcc" "bench/CMakeFiles/bench_fig9_convergence.dir/bench_fig9_convergence.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fav_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mc/CMakeFiles/fav_mc.dir/DependInfo.cmake"
  "/root/repo/build/src/precharac/CMakeFiles/fav_precharac.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/fav_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/fav_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/fav_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/faultsim/CMakeFiles/fav_faultsim.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/fav_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/fav_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fav_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
