file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_precharac.dir/bench_fig4_precharac.cpp.o"
  "CMakeFiles/bench_fig4_precharac.dir/bench_fig4_precharac.cpp.o.d"
  "bench_fig4_precharac"
  "bench_fig4_precharac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_precharac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
