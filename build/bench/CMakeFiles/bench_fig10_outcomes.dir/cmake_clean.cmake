file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_outcomes.dir/bench_fig10_outcomes.cpp.o"
  "CMakeFiles/bench_fig10_outcomes.dir/bench_fig10_outcomes.cpp.o.d"
  "bench_fig10_outcomes"
  "bench_fig10_outcomes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_outcomes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
