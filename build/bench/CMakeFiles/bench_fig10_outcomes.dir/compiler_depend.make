# Empty compiler generated dependencies file for bench_fig10_outcomes.
# This may be replaced when dependencies are built.
