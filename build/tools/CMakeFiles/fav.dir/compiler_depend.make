# Empty compiler generated dependencies file for fav.
# This may be replaced when dependencies are built.
