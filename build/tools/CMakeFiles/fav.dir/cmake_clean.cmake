file(REMOVE_RECURSE
  "CMakeFiles/fav.dir/fav_cli.cpp.o"
  "CMakeFiles/fav.dir/fav_cli.cpp.o.d"
  "fav"
  "fav.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fav.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
