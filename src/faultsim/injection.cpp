#include "faultsim/injection.h"

#include <algorithm>
#include <unordered_set>

namespace fav::faultsim {

using netlist::CellType;
using netlist::Netlist;
using netlist::NodeId;

InjectionSimulator::InjectionSimulator(const Netlist& nl,
                                       const TimingModel& timing_model,
                                       const TransientParams& params)
    : nl_(&nl), timing_(nl, timing_model), params_(params) {
  FAV_ENSURE(params.initial_width > 0);
  FAV_ENSURE(params.max_pulses_per_node >= 1);
}

bool InjectionSimulator::sensitized(const netlist::LogicSimulator& sim,
                                    NodeId node, int pin) const {
  const auto& n = nl_->node(node);
  if (n.type == CellType::kMux) {
    // Pin 0 = select, 1 = a (sel=0), 2 = b (sel=1).
    const bool sel = sim.value(n.fanins[0]);
    if (pin == 0) {
      // A glitching select only matters if the two data inputs differ.
      return sim.value(n.fanins[1]) != sim.value(n.fanins[2]);
    }
    return (pin == 2) == sel;  // the unselected data pin is masked
  }
  for (int j = 0; j < static_cast<int>(n.fanins.size()); ++j) {
    if (j == pin) continue;
    if (netlist::is_controlling_value(n.type, j, sim.value(n.fanins[j]))) {
      return false;  // a controlling side input absorbs the glitch
    }
  }
  return true;
}

void InjectionSimulator::add_pulse(std::vector<Pulse>& list, Pulse p) const {
  // Merge with any overlapping pulse (union of intervals).
  for (Pulse& q : list) {
    const double q_end = q.start + q.width;
    const double p_end = p.start + p.width;
    if (p.start <= q_end && q.start <= p_end) {
      const double lo = std::min(q.start, p.start);
      const double hi = std::max(q_end, p_end);
      q.start = lo;
      q.width = hi - lo;
      return;
    }
  }
  if (static_cast<int>(list.size()) < params_.max_pulses_per_node) {
    list.push_back(p);
    return;
  }
  // Keep the widest pulses (widest are hardest to mask downstream).
  auto narrowest = std::min_element(
      list.begin(), list.end(),
      [](const Pulse& a, const Pulse& b) { return a.width < b.width; });
  if (narrowest->width < p.width) *narrowest = p;
}

InjectionResult InjectionSimulator::inject(const netlist::LogicSimulator& sim,
                                           std::span<const NodeId> struck,
                                           double strike_time) const {
  FAV_ENSURE_MSG(strike_time >= 0.0, "strike time must be non-negative");
  InjectionResult result;

  std::vector<std::vector<Pulse>> pulses(nl_->node_count());
  std::unordered_set<NodeId> flips;

  for (NodeId g : struck) {
    const auto& n = nl_->node(g);
    if (n.type == CellType::kDff) {
      ++result.struck_dffs;
      if (flips.insert(g).second) ++result.direct_flips;
    } else if (netlist::is_combinational_gate(n.type)) {
      ++result.struck_gates;
      add_pulse(pulses[g], {std::max(strike_time, timing_.arrival(g)),
                            params_.initial_width});
    }
  }

  // Topological sweep: every gate is visited after all producers, so pulse
  // lists are final when consumed.
  const TimingModel& tm = timing_.model();
  for (NodeId id : nl_->topo_order()) {
    const auto& n = nl_->node(id);
    for (int pin = 0; pin < static_cast<int>(n.fanins.size()); ++pin) {
      const auto& in_pulses = pulses[n.fanins[pin]];
      if (in_pulses.empty()) continue;
      if (!sensitized(sim, id, pin)) continue;
      for (const Pulse& p : in_pulses) {
        const double width = p.width - tm.attenuation;
        if (width < tm.min_pulse_width) continue;  // electrically masked
        add_pulse(pulses[id], {p.start + tm.delay(n.type), width});
      }
    }
  }

  // Latching-window check at every DFF D input.
  const double window_lo = timing_.clock_period() - tm.setup_time;
  const double window_hi = timing_.clock_period() + tm.hold_time;
  for (NodeId dff : nl_->dffs()) {
    const NodeId d = nl_->node(dff).fanins[0];
    for (const Pulse& p : pulses[d]) {
      if (p.start <= window_hi && window_lo <= p.start + p.width) {
        if (flips.insert(dff).second) ++result.latched_flips;
        break;
      }
    }
  }

  result.flipped_dffs.assign(flips.begin(), flips.end());
  std::sort(result.flipped_dffs.begin(), result.flipped_dffs.end());
  return result;
}

}  // namespace fav::faultsim
