#include "faultsim/injection.h"

#include <algorithm>

namespace fav::faultsim {

using netlist::CellType;
using netlist::Netlist;
using netlist::NodeId;

void InjectionScratch::prepare(std::size_t node_count) {
  // Clear before resizing: a shrink would otherwise leave touched_ entries
  // pointing past the new end when a scratch is reused across netlists.
  for (NodeId id : touched_) pulses_[id].clear();
  touched_.clear();
  flips_.clear();
  pulses_.resize(node_count);
}

void BatchInjectionScratch::prepare(std::size_t node_count) {
  for (NodeId id : touched_) pulses_[id].clear();
  touched_.clear();
  pulses_.resize(node_count);
}

InjectionSimulator::InjectionSimulator(const Netlist& nl,
                                       const TimingModel& timing_model,
                                       const TransientParams& params)
    : nl_(&nl), timing_(nl, timing_model), params_(params) {
  FAV_ENSURE(params.initial_width > 0);
  FAV_ENSURE(params.max_pulses_per_node >= 1);
}

bool InjectionSimulator::sensitized(const netlist::LogicSimulator& sim,
                                    NodeId node, int pin) const {
  const auto& n = nl_->node(node);
  if (n.type == CellType::kMux) {
    // Pin 0 = select, 1 = a (sel=0), 2 = b (sel=1).
    const bool sel = sim.value(n.fanins[0]);
    if (pin == 0) {
      // A glitching select only matters if the two data inputs differ.
      return sim.value(n.fanins[1]) != sim.value(n.fanins[2]);
    }
    return (pin == 2) == sel;  // the unselected data pin is masked
  }
  for (int j = 0; j < static_cast<int>(n.fanins.size()); ++j) {
    if (j == pin) continue;
    if (netlist::is_controlling_value(n.type, j, sim.value(n.fanins[j]))) {
      return false;  // a controlling side input absorbs the glitch
    }
  }
  return true;
}

std::uint64_t InjectionSimulator::sensitized_mask(
    const netlist::WordSimulator& sim, NodeId node, int pin) const {
  const auto& n = nl_->node(node);
  if (n.type == CellType::kMux) {
    const std::uint64_t sel = sim.word(n.fanins[0]);
    if (pin == 0) {
      // A glitching select only matters where the two data inputs differ.
      return sim.word(n.fanins[1]) ^ sim.word(n.fanins[2]);
    }
    return pin == 2 ? sel : ~sel;  // the unselected data pin is masked
  }
  std::uint64_t mask = ~std::uint64_t{0};
  for (int j = 0; j < static_cast<int>(n.fanins.size()); ++j) {
    if (j == pin) continue;
    const std::uint64_t w = sim.word(n.fanins[j]);
    // A controlling side input absorbs the glitch in that lane.
    if (netlist::is_controlling_value(n.type, j, false)) mask &= w;
    if (netlist::is_controlling_value(n.type, j, true)) mask &= ~w;
  }
  return mask;
}

void InjectionSimulator::add_pulse(std::vector<Pulse>& list, Pulse p) const {
  // Union-merge transitively: absorbing one neighbour can widen p into the
  // next, so rescan from the top until no entry overlaps.
  bool merged = true;
  while (merged) {
    merged = false;
    for (auto it = list.begin(); it != list.end(); ++it) {
      const double q_end = it->start + it->width;
      const double p_end = p.start + p.width;
      if (p.start <= q_end && it->start <= p_end) {
        const double lo = std::min(it->start, p.start);
        const double hi = std::max(q_end, p_end);
        p.start = lo;
        p.width = hi - lo;
        list.erase(it);
        merged = true;
        break;
      }
    }
  }
  if (static_cast<int>(list.size()) < params_.max_pulses_per_node) {
    list.push_back(p);
    return;
  }
  // Keep the widest pulses (widest are hardest to mask downstream).
  auto narrowest = std::min_element(
      list.begin(), list.end(),
      [](const Pulse& a, const Pulse& b) { return a.width < b.width; });
  if (narrowest->width < p.width) *narrowest = p;
}

void InjectionSimulator::add_pulse_lane(
    std::vector<BatchInjectionScratch::LanePulse>& list, Pulse p,
    int lane) const {
  // Same transitive merge as add_pulse, restricted to this lane's entries.
  // Same-lane entries keep the relative order a private per-lane list would
  // have (append + erase preserve it), so merge order, the cap check, and
  // which entry min_element picks all match the scalar path exactly.
  bool merged = true;
  while (merged) {
    merged = false;
    for (auto it = list.begin(); it != list.end(); ++it) {
      if (it->lane != lane) continue;
      const double q_end = it->pulse.start + it->pulse.width;
      const double p_end = p.start + p.width;
      if (p.start <= q_end && it->pulse.start <= p_end) {
        const double lo = std::min(it->pulse.start, p.start);
        const double hi = std::max(q_end, p_end);
        p.start = lo;
        p.width = hi - lo;
        list.erase(it);
        merged = true;
        break;
      }
    }
  }
  int lane_count = 0;
  for (const auto& e : list) {
    if (e.lane == lane) ++lane_count;
  }
  if (lane_count < params_.max_pulses_per_node) {
    list.push_back({p, lane});
    return;
  }
  auto narrowest = list.end();
  for (auto it = list.begin(); it != list.end(); ++it) {
    if (it->lane != lane) continue;
    if (narrowest == list.end() || it->pulse.width < narrowest->pulse.width) {
      narrowest = it;
    }
  }
  if (narrowest->pulse.width < p.width) narrowest->pulse = p;
}

InjectionResult InjectionSimulator::inject(const netlist::LogicSimulator& sim,
                                           std::span<const NodeId> struck,
                                           double strike_time) const {
  InjectionScratch scratch;
  return inject(sim, struck, strike_time, scratch);
}

InjectionResult InjectionSimulator::inject(const netlist::LogicSimulator& sim,
                                           std::span<const NodeId> struck,
                                           double strike_time,
                                           InjectionScratch& scratch) const {
  FAV_ENSURE_MSG(strike_time >= 0.0, "strike time must be non-negative");
  InjectionResult result;

  scratch.prepare(nl_->node_count());
  auto& pulses = scratch.pulses_;
  auto& flips = scratch.flips_;
  const auto add = [&](NodeId id, Pulse p) {
    if (pulses[id].empty()) scratch.touched_.push_back(id);
    add_pulse(pulses[id], p);
  };

  for (NodeId g : struck) {
    const auto& n = nl_->node(g);
    if (n.type == CellType::kDff) {
      ++result.struck_dffs;
      if (std::find(flips.begin(), flips.end(), g) == flips.end()) {
        flips.push_back(g);
        ++result.direct_flips;
      }
    } else if (netlist::is_combinational_gate(n.type)) {
      ++result.struck_gates;
      add(g, {std::max(strike_time, timing_.arrival(g)),
              params_.initial_width});
    }
  }

  // Topological sweep: every gate is visited after all producers, so pulse
  // lists are final when consumed.
  const TimingModel& tm = timing_.model();
  for (NodeId id : nl_->topo_order()) {
    const auto& n = nl_->node(id);
    for (int pin = 0; pin < static_cast<int>(n.fanins.size()); ++pin) {
      const auto& in_pulses = pulses[n.fanins[pin]];
      if (in_pulses.empty()) continue;
      if (!sensitized(sim, id, pin)) continue;
      for (const Pulse& p : in_pulses) {
        const double width = p.width - tm.attenuation;
        if (width < tm.min_pulse_width) continue;  // electrically masked
        add(id, {p.start + tm.delay(n.type), width});
      }
    }
  }

  // Latching-window check at every DFF D input.
  const double window_lo = timing_.clock_period() - tm.setup_time;
  const double window_hi = timing_.clock_period() + tm.hold_time;
  for (NodeId dff : nl_->dffs()) {
    const NodeId d = nl_->node(dff).fanins[0];
    for (const Pulse& p : pulses[d]) {
      if (p.start <= window_hi && window_lo <= p.start + p.width) {
        if (std::find(flips.begin(), flips.end(), dff) == flips.end()) {
          flips.push_back(dff);
          ++result.latched_flips;
        }
        break;
      }
    }
  }

  result.flipped_dffs.assign(flips.begin(), flips.end());
  std::sort(result.flipped_dffs.begin(), result.flipped_dffs.end());
  return result;
}

void InjectionSimulator::inject_batch(
    const netlist::WordSimulator& sim,
    std::span<const std::vector<NodeId>> struck,
    std::span<const double> strike_times, BatchInjectionScratch& scratch,
    std::vector<std::vector<NodeId>>& flipped) const {
  const int lanes = static_cast<int>(struck.size());
  FAV_ENSURE_MSG(lanes >= 1 && lanes <= 64, "lane count must be in [1, 64]");
  FAV_ENSURE_MSG(strike_times.size() == struck.size(),
                 "one strike time per lane required");

  scratch.prepare(nl_->node_count());
  auto& pulses = scratch.pulses_;
  const auto add = [&](NodeId id, Pulse p, int lane) {
    if (pulses[id].empty()) scratch.touched_.push_back(id);
    add_pulse_lane(pulses[id], p, lane);
  };

  flipped.resize(struck.size());
  for (auto& f : flipped) f.clear();

  for (int lane = 0; lane < lanes; ++lane) {
    FAV_ENSURE_MSG(strike_times[lane] >= 0.0,
                   "strike time must be non-negative");
    for (NodeId g : struck[lane]) {
      const auto& n = nl_->node(g);
      if (n.type == CellType::kDff) {
        flipped[lane].push_back(g);  // duplicates collapse in the final sort
      } else if (netlist::is_combinational_gate(n.type)) {
        add(g, {std::max(strike_times[lane], timing_.arrival(g)),
                params_.initial_width},
            lane);
      }
    }
  }

  // One topological sweep serves every lane: sensitization becomes a word
  // mask, and each lane-tagged pulse propagates only where its lane's side
  // inputs let it through.
  const TimingModel& tm = timing_.model();
  for (NodeId id : nl_->topo_order()) {
    const auto& n = nl_->node(id);
    for (int pin = 0; pin < static_cast<int>(n.fanins.size()); ++pin) {
      const auto& in_pulses = pulses[n.fanins[pin]];
      if (in_pulses.empty()) continue;
      const std::uint64_t sens = sensitized_mask(sim, id, pin);
      if (sens == 0) continue;
      for (const auto& e : in_pulses) {
        if (((sens >> e.lane) & 1u) == 0) continue;  // logically masked
        const double width = e.pulse.width - tm.attenuation;
        if (width < tm.min_pulse_width) continue;  // electrically masked
        add(id, {e.pulse.start + tm.delay(n.type), width}, e.lane);
      }
    }
  }

  // Latching-window check at every DFF D input; the per-DFF mask mirrors the
  // scalar "first latching pulse wins, insert once" set semantics.
  const double window_lo = timing_.clock_period() - tm.setup_time;
  const double window_hi = timing_.clock_period() + tm.hold_time;
  for (NodeId dff : nl_->dffs()) {
    const NodeId d = nl_->node(dff).fanins[0];
    std::uint64_t latched = 0;
    for (const auto& e : pulses[d]) {
      if (e.pulse.start <= window_hi &&
          window_lo <= e.pulse.start + e.pulse.width) {
        latched |= std::uint64_t{1} << e.lane;
      }
    }
    if (latched == 0) continue;
    for (int lane = 0; lane < lanes; ++lane) {
      if ((latched >> lane) & 1u) flipped[lane].push_back(dff);
    }
  }

  for (auto& f : flipped) {
    std::sort(f.begin(), f.end());
    f.erase(std::unique(f.begin(), f.end()), f.end());
  }
}

}  // namespace fav::faultsim
