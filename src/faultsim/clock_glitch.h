// Clock-glitch fault technique (paper Section 3.2 lists clock/voltage
// modification alongside radiation; this is the framework's second concrete
// technique model).
//
// A glitch shortens one clock cycle to `glitch_period`. Registers whose D
// input has not settled by (glitch_period - setup) miss the new value and
// hold their previous state; the captured error is the difference between
// the correct next value and the held one. Unlike radiation, the outcome is
// a deterministic function of (cycle, depth): the per-cycle flip set needs
// no spatial parameters, which also makes exact SSF enumeration feasible
// (see mc::ClockGlitchEvaluator).
#pragma once

#include <cstdint>
#include <vector>

#include "faultsim/timing.h"
#include "netlist/logicsim.h"

namespace fav::faultsim {

class ClockGlitchSimulator {
 public:
  explicit ClockGlitchSimulator(const netlist::Netlist& nl,
                                const TimingModel& timing_model = {});

  const TimingAnalysis& timing() const { return timing_; }

  /// DFFs whose captured value is wrong when the current cycle's period is
  /// shortened to `glitch_period`. `sim` must hold the settled values of the
  /// glitched cycle (see soc::GateLevelMachine::settle_inputs): a register
  /// with arrival(D) + setup > glitch_period holds its old Q, so it flips
  /// iff its new D differs from Q. Results are sorted by node id.
  std::vector<netlist::NodeId> flipped_dffs(const netlist::LogicSimulator& sim,
                                            double glitch_period) const;

  /// The slowest D-input arrival; glitch periods above
  /// critical_d_arrival() + setup never flip anything.
  double critical_d_arrival() const { return critical_d_; }

 private:
  const netlist::Netlist* nl_;
  TimingAnalysis timing_;
  double critical_d_ = 0;
};

/// Holistic model for the glitch technique: timing distance t (as for
/// radiation) plus the glitch depth — the shortened period as a fraction of
/// the nominal period. Both uniform (temporal accuracy / supply jitter).
struct ClockGlitchAttackModel {
  int t_min = 0;
  int t_max = 49;
  std::vector<double> depths = {0.55, 0.65, 0.75, 0.85};

  int t_count() const { return t_max - t_min + 1; }

  void check_valid() const {
    FAV_ENSURE_MSG(t_min >= 0 && t_max >= t_min, "bad timing range");
    FAV_ENSURE_MSG(!depths.empty(), "no glitch depths");
    for (const double d : depths) {
      FAV_ENSURE_MSG(d > 0.0 && d < 1.0, "glitch depth must be in (0, 1)");
    }
  }

  /// Validation against a concrete benchmark: a timing distance beyond the
  /// target cycle Tt lands before the program starts, so there is no cycle
  /// to glitch. Such samples used to be silently recorded as masked with
  /// te = 0, quietly diluting the estimate; samplers and the enumeration
  /// driver reject the model up front instead.
  void check_valid(std::uint64_t target_cycle) const {
    check_valid();
    FAV_ENSURE_MSG(static_cast<std::uint64_t>(t_max) <= target_cycle,
                   "glitch timing range [" << t_min << ", " << t_max
                                           << "] exceeds the target cycle "
                                           << target_cycle);
  }

  /// Joint pmf of (t, depth) under the uniform holistic model.
  double f_pmf() const {
    return 1.0 / (static_cast<double>(t_count()) *
                  static_cast<double>(depths.size()));
  }
};

}  // namespace fav::faultsim
