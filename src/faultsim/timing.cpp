#include "faultsim/timing.h"

#include <algorithm>

#include "util/check.h"

namespace fav::faultsim {

using netlist::CellType;

double TimingModel::delay(CellType t) const {
  switch (t) {
    case CellType::kBuf:
    case CellType::kNot:
      return delay_inv;
    case CellType::kNand:
    case CellType::kNor:
      return delay_nand_nor;
    case CellType::kAnd:
    case CellType::kOr:
      return delay_and_or;
    case CellType::kXor:
    case CellType::kXnor:
      return delay_xor;
    case CellType::kMux:
      return delay_mux;
    default:
      return 0.0;  // sources and DFF outputs settle at cycle start
  }
}

TimingAnalysis::TimingAnalysis(const netlist::Netlist& nl,
                               const TimingModel& model)
    : model_(model), arrival_(nl.node_count(), 0.0) {
  FAV_ENSURE(model.clock_margin >= 1.0);
  for (netlist::NodeId id : nl.topo_order()) {
    const auto& n = nl.node(id);
    double in_arrival = 0.0;
    for (netlist::NodeId f : n.fanins) {
      in_arrival = std::max(in_arrival, arrival_[f]);
    }
    arrival_[id] = in_arrival + model_.delay(n.type);
    critical_ = std::max(critical_, arrival_[id]);
  }
  // DFF D inputs must also meet setup before the edge.
  period_ = (critical_ + model_.setup_time) * model_.clock_margin;
}

double TimingAnalysis::arrival(netlist::NodeId id) const {
  FAV_ENSURE(id < arrival_.size());
  return arrival_[id];
}

}  // namespace fav::faultsim
