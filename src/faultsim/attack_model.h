// Holistic probabilistic fault model f_{T,P} (paper Section 3.2).
//
// The paper's model is technique-parameterized: an attack outcome is a joint
// sample of the timing distance t and a technique parameter vector p — for
// radiation p = [g, r] (spot center, radius), for a clock glitch p = [d]
// (glitch depth). FaultSample is the generalized carrier: it holds t, the
// importance weight, and the union of per-technique parameter fields, tagged
// by TechniqueKind so samples, journal frames, and SampleRecords flow through
// the evaluation pipeline unchanged regardless of technique (see
// faultsim/technique.h for the AttackTechnique interface that interprets
// them).
//
// Radiation parameters:
//   center      — radiation spot center cell g,
//   radius      — radiated-region radius r,
//   strike_frac — intra-cycle hit instant as a fraction of the clock period
//                 (sub-cycle technique variation; uniform under every
//                 strategy, so it cancels from importance weights).
// Clock-glitch parameters:
//   depth       — shortened period as a fraction of the nominal period.
// Following the paper, T and P are uniform over ranges centered at the
// attacker's intended target; the ranges encode the temporal accuracy and
// parameter variation of the concrete technique (Fig. 11 sweeps them).
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.h"
#include "util/check.h"
#include "util/rng.h"

namespace fav::faultsim {

/// Technique family a FaultSample's parameters belong to. Values are stable
/// (journaled on disk); append new techniques, never renumber.
enum class TechniqueKind : std::uint8_t {
  kRadiation = 0,
  kClockGlitch = 1,
  kVoltageGlitch = 2,
};

/// Stable lowercase name ("radiation" / "clock-glitch" / "voltage-glitch")
/// for configs, the CLI and run reports.
const char* technique_kind_name(TechniqueKind kind);

struct FaultSample {
  TechniqueKind technique = TechniqueKind::kRadiation;
  int t = 0;                      // timing distance (cycles before Tt)
  // --- radiation parameters p = [g, r] ---------------------------------
  netlist::NodeId center = 0;     // radiation spot center
  double radius = 0;              // radiated-region radius
  double strike_frac = 0;         // in [0, 1)
  // --- clock-glitch / voltage-glitch parameters p = [d] -----------------
  // Clock glitch: shortened period as a fraction of the nominal period.
  // Voltage glitch: supply droop severity (gate delays scale by 1/(1-d)).
  // Sharing the field keeps journal frames and the wire protocol stable.
  double depth = 0;               // in (0, 1)
  // ---------------------------------------------------------------------
  int impact_cycles = 1;          // consecutive cycles hit by this injection
  double weight = 1.0;            // importance weight f/g for the estimator
};

inline const char* technique_kind_name(TechniqueKind kind) {
  switch (kind) {
    case TechniqueKind::kRadiation: return "radiation";
    case TechniqueKind::kClockGlitch: return "clock-glitch";
    case TechniqueKind::kVoltageGlitch: return "voltage-glitch";
  }
  return "unknown";
}

struct AttackModel {
  int t_min = 0;
  int t_max = 49;  // inclusive; 50-cycle window as in the paper's Section 6
  /// Support of the spatial parameter (the "sub-block" the attacker aims at).
  std::vector<netlist::NodeId> candidate_centers;
  /// Discrete radius choices, uniform (Unif(r) in the paper's g_{P|T}).
  std::vector<double> radii = {1.5};
  /// Optional discretization of the intra-cycle strike instant. Empty keeps
  /// the paper's continuous Unif[0, 1) draw; non-empty restricts every
  /// sampler to this grid, which makes the radiation fault space finite and
  /// exhaustively enumerable (technique.h). Uniform either way, so the
  /// strike_frac factor still cancels from importance weights.
  std::vector<double> strike_fracs;
  /// Consecutive cycles impacted by one injection (paper Section 3.2: the
  /// default assumption is a single cycle, but the framework "can easily
  /// incorporate multi-cycle impact" — this is that hook; the same spot
  /// strikes cycles Te .. Te+impact_cycles-1).
  int impact_cycles = 1;

  int t_count() const { return t_max - t_min + 1; }

  void check_valid() const {
    FAV_ENSURE_MSG(t_min >= 0 && t_max >= t_min, "bad timing range");
    FAV_ENSURE_MSG(!candidate_centers.empty(), "no candidate centers");
    FAV_ENSURE_MSG(!radii.empty(), "no radii");
    for (const double f : strike_fracs) {
      FAV_ENSURE_MSG(f >= 0.0 && f < 1.0, "strike_frac must be in [0, 1)");
    }
    FAV_ENSURE_MSG(impact_cycles >= 1, "impact_cycles must be >= 1");
  }

  /// One draw of the strike instant: the configured grid, or Unif[0, 1).
  double draw_strike_frac(Rng& rng) const {
    if (strike_fracs.empty()) return rng.uniform01();
    return strike_fracs[rng.uniform_below(strike_fracs.size())];
  }

  /// Joint pmf of (t, center, radius) under the uniform holistic model.
  double f_pmf() const {
    return 1.0 / (static_cast<double>(t_count()) *
                  static_cast<double>(candidate_centers.size()) *
                  static_cast<double>(radii.size()));
  }

  /// Draws from f_{T,P} (this *is* the random-sampling baseline).
  FaultSample sample(Rng& rng) const {
    check_valid();
    FaultSample s;
    s.t = static_cast<int>(rng.uniform_int(t_min, t_max));
    s.center = candidate_centers[rng.uniform_below(candidate_centers.size())];
    s.radius = radii[rng.uniform_below(radii.size())];
    s.strike_frac = draw_strike_frac(rng);
    s.impact_cycles = impact_cycles;
    s.weight = 1.0;
    return s;
  }
};

}  // namespace fav::faultsim
