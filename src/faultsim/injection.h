// Gate-level fault-injection-cycle simulator (paper Section 5.3).
//
// Given the settled logic values of the injection cycle and the set of cells
// inside the radiated spot, this simulator:
//  1. seeds voltage transients at the outputs of the struck combinational
//     gates (struck DFF cells upset directly, like an SEU),
//  2. propagates the transients to the registers in topological order,
//     applying logical masking (controlling side inputs) and electrical
//     masking (per-stage pulse-width attenuation), and
//  3. applies latching-window masking: a pulse reaching a D input flips the
//     captured bit only if it overlaps the setup/hold window of the edge.
// The output is the set of DFFs whose latched value differs from the golden
// run — the cross-level hand-off back to RTL level (Fig. 5).
//
// The simulator is generic over any netlist; the SoC binding (DFF -> flat
// register-map bit) happens in the Monte Carlo layer.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "faultsim/timing.h"
#include "netlist/logicsim.h"

namespace fav::faultsim {

struct TransientParams {
  /// Pulse width induced at a struck gate's output (same units as delays).
  double initial_width = 3.0;
  /// Bound on tracked pulses per net; overlapping pulses are merged first,
  /// and the widest survivors are kept (protects against pathological fanout
  /// reconvergence blow-up).
  int max_pulses_per_node = 4;
};

/// A voltage transient on a net: [start, start + width) within the cycle.
struct Pulse {
  double start = 0;
  double width = 0;
};

/// Reusable per-thread buffers for the scalar inject() path. The per-node
/// pulse lists keep their capacity across calls; only the lists touched by
/// the previous call are cleared, so a mostly-masked campaign allocates
/// nothing in steady state. Not thread-safe: one scratch per worker.
class InjectionScratch {
 public:
  InjectionScratch() = default;

 private:
  friend class InjectionSimulator;
  void prepare(std::size_t node_count);

  std::vector<std::vector<Pulse>> pulses_;
  std::vector<netlist::NodeId> touched_;  // nodes with non-empty pulse lists
  std::vector<netlist::NodeId> flips_;
};

/// Reusable per-thread buffers for inject_batch(). Pulse lists are shared
/// across lanes: each entry is tagged with its lane, and same-lane entries
/// keep the relative order a dedicated per-lane list would have, which is
/// what makes the batch merge/cap policy bit-identical to the scalar one.
class BatchInjectionScratch {
 public:
  BatchInjectionScratch() = default;

 private:
  friend class InjectionSimulator;
  struct LanePulse {
    Pulse pulse;
    int lane = 0;
  };
  void prepare(std::size_t node_count);

  std::vector<std::vector<LanePulse>> pulses_;
  std::vector<netlist::NodeId> touched_;  // nodes with non-empty pulse lists
};

struct InjectionResult {
  /// DFFs whose latched value flipped at the cycle edge (sorted, unique).
  std::vector<netlist::NodeId> flipped_dffs;
  std::size_t struck_gates = 0;   // combinational cells in the spot
  std::size_t struck_dffs = 0;    // sequential cells in the spot
  std::size_t latched_flips = 0;  // flips caused by latched transients
  std::size_t direct_flips = 0;   // flips caused by direct DFF upsets

  bool masked() const { return flipped_dffs.empty(); }
};

class InjectionSimulator {
 public:
  explicit InjectionSimulator(const netlist::Netlist& nl,
                              const TimingModel& timing_model = {},
                              const TransientParams& params = {});

  /// `sim` must hold the injection cycle's settled combinational values
  /// (see soc::GateLevelMachine::settle_inputs). `struck` lists the cells
  /// inside the radiated region (from layout::Placement::nodes_within).
  /// `strike_time` is the radiation hit instant within the cycle, in
  /// [0, clock_period): it models the intra-cycle technique-parameter
  /// variation — a struck gate's transient begins at
  /// max(strike_time, arrival(gate)) because glitches that fire before the
  /// gate recomputes are overwritten. Struck DFF cells upset unconditionally.
  InjectionResult inject(const netlist::LogicSimulator& sim,
                         std::span<const netlist::NodeId> struck,
                         double strike_time = 0.0) const;

  /// Allocation-free variant: reuses `scratch`'s per-node pulse lists and
  /// flip buffer. Produces exactly the same result as the overload above.
  InjectionResult inject(const netlist::LogicSimulator& sim,
                         std::span<const netlist::NodeId> struck,
                         double strike_time, InjectionScratch& scratch) const;

  /// Bit-parallel injection: one topological sweep computes the flip sets of
  /// up to 64 independent samples. Lane `l` uses struck set `struck[l]` and
  /// strike time `strike_times[l]` against `sim`'s lane-`l` values (all
  /// lanes typically broadcast from one settled scalar state). On return
  /// `flipped[l]` holds lane l's flipped DFFs (sorted, unique) — bitwise
  /// identical to what the scalar inject() produces for that lane's inputs.
  void inject_batch(const netlist::WordSimulator& sim,
                    std::span<const std::vector<netlist::NodeId>> struck,
                    std::span<const double> strike_times,
                    BatchInjectionScratch& scratch,
                    std::vector<std::vector<netlist::NodeId>>& flipped) const;

  const TimingAnalysis& timing() const { return timing_; }
  const TransientParams& params() const { return params_; }

  /// Canonical pulse-list insertion shared by the scalar and batch paths:
  /// transitively merges `p` with every overlapping entry (a union can grow
  /// into a neighbour, so merging rescans until stable), then appends the
  /// result, evicting the narrowest entry when the list is at
  /// max_pulses_per_node and the new pulse is wider. Exposed for tests.
  void add_pulse(std::vector<Pulse>& list, Pulse p) const;

 private:
  /// True if a wrong value on `pin` of `node` reaches the output, given the
  /// golden values of the other pins.
  bool sensitized(const netlist::LogicSimulator& sim, netlist::NodeId node,
                  int pin) const;

  /// Word-wise sensitization: bit l of the result says whether lane l's
  /// side-input values let a glitch on `pin` of `node` through.
  std::uint64_t sensitized_mask(const netlist::WordSimulator& sim,
                                netlist::NodeId node, int pin) const;

  /// Per-lane add_pulse over the shared lane-tagged list; same merge, cap,
  /// and eviction policy as add_pulse restricted to entries of `lane`.
  void add_pulse_lane(std::vector<BatchInjectionScratch::LanePulse>& list,
                      Pulse p, int lane) const;

  const netlist::Netlist* nl_;
  TimingAnalysis timing_;
  TransientParams params_;
};

}  // namespace fav::faultsim
