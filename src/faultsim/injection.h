// Gate-level fault-injection-cycle simulator (paper Section 5.3).
//
// Given the settled logic values of the injection cycle and the set of cells
// inside the radiated spot, this simulator:
//  1. seeds voltage transients at the outputs of the struck combinational
//     gates (struck DFF cells upset directly, like an SEU),
//  2. propagates the transients to the registers in topological order,
//     applying logical masking (controlling side inputs) and electrical
//     masking (per-stage pulse-width attenuation), and
//  3. applies latching-window masking: a pulse reaching a D input flips the
//     captured bit only if it overlaps the setup/hold window of the edge.
// The output is the set of DFFs whose latched value differs from the golden
// run — the cross-level hand-off back to RTL level (Fig. 5).
//
// The simulator is generic over any netlist; the SoC binding (DFF -> flat
// register-map bit) happens in the Monte Carlo layer.
#pragma once

#include <span>
#include <vector>

#include "faultsim/timing.h"
#include "netlist/logicsim.h"

namespace fav::faultsim {

struct TransientParams {
  /// Pulse width induced at a struck gate's output (same units as delays).
  double initial_width = 3.0;
  /// Bound on tracked pulses per net; overlapping pulses are merged first,
  /// and the widest survivors are kept (protects against pathological fanout
  /// reconvergence blow-up).
  int max_pulses_per_node = 4;
};

struct InjectionResult {
  /// DFFs whose latched value flipped at the cycle edge (sorted, unique).
  std::vector<netlist::NodeId> flipped_dffs;
  std::size_t struck_gates = 0;   // combinational cells in the spot
  std::size_t struck_dffs = 0;    // sequential cells in the spot
  std::size_t latched_flips = 0;  // flips caused by latched transients
  std::size_t direct_flips = 0;   // flips caused by direct DFF upsets

  bool masked() const { return flipped_dffs.empty(); }
};

class InjectionSimulator {
 public:
  explicit InjectionSimulator(const netlist::Netlist& nl,
                              const TimingModel& timing_model = {},
                              const TransientParams& params = {});

  /// `sim` must hold the injection cycle's settled combinational values
  /// (see soc::GateLevelMachine::settle_inputs). `struck` lists the cells
  /// inside the radiated region (from layout::Placement::nodes_within).
  /// `strike_time` is the radiation hit instant within the cycle, in
  /// [0, clock_period): it models the intra-cycle technique-parameter
  /// variation — a struck gate's transient begins at
  /// max(strike_time, arrival(gate)) because glitches that fire before the
  /// gate recomputes are overwritten. Struck DFF cells upset unconditionally.
  InjectionResult inject(const netlist::LogicSimulator& sim,
                         std::span<const netlist::NodeId> struck,
                         double strike_time = 0.0) const;

  const TimingAnalysis& timing() const { return timing_; }
  const TransientParams& params() const { return params_; }

 private:
  struct Pulse {
    double start = 0;
    double width = 0;
  };

  /// True if a wrong value on `pin` of `node` reaches the output, given the
  /// golden values of the other pins.
  bool sensitized(const netlist::LogicSimulator& sim, netlist::NodeId node,
                  int pin) const;

  void add_pulse(std::vector<Pulse>& list, Pulse p) const;

  const netlist::Netlist* nl_;
  TimingAnalysis timing_;
  TransientParams params_;
};

}  // namespace fav::faultsim
