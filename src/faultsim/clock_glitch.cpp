#include "faultsim/clock_glitch.h"

#include <algorithm>

namespace fav::faultsim {

using netlist::NodeId;

ClockGlitchSimulator::ClockGlitchSimulator(const netlist::Netlist& nl,
                                           const TimingModel& timing_model)
    : nl_(&nl), timing_(nl, timing_model) {
  for (const NodeId dff : nl.dffs()) {
    FAV_ENSURE_MSG(!nl.node(dff).fanins.empty(),
                  "DFF '" << nl.node(dff).name << "' has no D input");
    critical_d_ =
        std::max(critical_d_, timing_.arrival(nl.node(dff).fanins[0]));
  }
}

std::vector<NodeId> ClockGlitchSimulator::flipped_dffs(
    const netlist::LogicSimulator& sim, double glitch_period) const {
  FAV_ENSURE_MSG(glitch_period > 0.0, "glitch period must be positive");
  const double setup = timing_.model().setup_time;
  std::vector<NodeId> flips;
  for (const NodeId dff : nl_->dffs()) {
    const NodeId d = nl_->node(dff).fanins[0];
    if (timing_.arrival(d) + setup <= glitch_period) continue;  // met timing
    // Too slow: the register holds its old value. It is an *error* only if
    // the new D actually differs.
    if (sim.value(d) != sim.value(dff)) flips.push_back(dff);
  }
  std::sort(flips.begin(), flips.end());
  return flips;
}

}  // namespace fav::faultsim
