// Technique-generic attack abstraction (paper Section 3.2).
//
// The holistic fault model is parameterized by the concrete fault-injection
// technique: the cross-level evaluation flow (restore -> settle the injection
// cycle at gate level -> latch the errors -> classify at RTL level) is
// identical for every technique, and only the step that turns a sample's
// technique parameters into latched register flips differs. AttackTechnique
// is that step: given the settled gate-level values of the injection cycle
// and one FaultSample, it produces the set of DFFs whose latched value
// flipped. Everything around it — worker pool, scratch reuse, budgets,
// isolation, journaled resume, metrics — lives once in mc::SsfEvaluator and
// is inherited by every technique (the SYNFI-style "one analysis core, many
// fault models" layering).
//
// Implementations are immutable after construction and shared read-only
// across worker threads; all per-sample mutable state lives in the
// TechniqueScratch the caller passes in (one per thread).
//
// The flip set is expressed in netlist DFF node ids: like InjectionSimulator,
// techniques are generic over any netlist, and the SoC binding (DFF -> flat
// register-map bit) stays in the Monte Carlo layer.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "faultsim/attack_model.h"
#include "faultsim/clock_glitch.h"
#include "faultsim/injection.h"
#include "faultsim/voltage_glitch.h"
#include "layout/placement.h"
#include "netlist/logicsim.h"

namespace fav::faultsim {

/// Reusable per-thread buffers for flip-set computation (spatial query
/// results and the like). Not thread-safe: one scratch per worker thread.
struct TechniqueScratch {
  std::vector<netlist::NodeId> struck;
  /// Pulse-list reuse for the scalar inject() path.
  InjectionScratch injection;
  /// Buffers for the bit-parallel flip_set_batch() path.
  BatchInjectionScratch batch;
  std::vector<std::vector<netlist::NodeId>> struck_lanes;
  std::vector<double> strike_times;
};

class AttackTechnique {
 public:
  virtual ~AttackTechnique() = default;

  virtual TechniqueKind kind() const = 0;
  const char* name() const { return technique_kind_name(kind()); }

  /// Human-readable description of the technique parameter vector p — which
  /// FaultSample fields carry it — for logs and run reports.
  virtual std::string parameter_space() const = 0;

  /// Validates the sample against this technique's parameter space. Throws
  /// EnsureError on a foreign technique tag or out-of-range parameters; the
  /// campaign isolation layer turns that into a kFailed record.
  virtual void check_sample(const FaultSample& sample) const = 0;

  /// DFFs whose latched value flips during the injection cycle. `sim` must
  /// hold the cycle's settled values (soc::GateLevelMachine::settle_inputs);
  /// `flipped` is overwritten (sorted, unique node ids). Deterministic: the
  /// same (sim state, sample) yields the same flip set on every call.
  virtual void flip_set(const netlist::LogicSimulator& sim,
                        TechniqueScratch& scratch, const FaultSample& sample,
                        std::vector<netlist::NodeId>& flipped) const = 0;

  /// True if flip_set_batch() is implemented; the evaluator only groups
  /// samples into word-parallel batches for techniques that opt in.
  virtual bool supports_batch() const { return false; }

  /// Bit-parallel flip sets for up to 64 samples that share one injection
  /// cycle: `sim` holds the settled cycle values broadcast to every lane,
  /// and lane l evaluates `samples[l]`. On return `flipped[l]` equals what
  /// flip_set() would produce for samples[l] — bit for bit. The default
  /// implementation throws; only call when supports_batch() is true.
  virtual void flip_set_batch(const netlist::WordSimulator& sim,
                              TechniqueScratch& scratch,
                              std::span<const FaultSample> samples,
                              std::vector<std::vector<netlist::NodeId>>&
                                  flipped) const;

  /// --- enumerable fault space -------------------------------------------
  /// Number of points in the technique's bound fault space; 0 means no
  /// space is bound and the exhaustive driver must reject. Each concrete
  /// technique exposes a bind_space(model) setter that defines the grid;
  /// binding is NOT thread-safe — bind before the technique is shared with
  /// worker threads, never during a run.
  virtual std::uint64_t space_size() const { return 0; }

  /// Writes the samples at enumeration indices [begin, end) into `out`
  /// (overwritten). The mapping index -> FaultSample is deterministic and
  /// index-stable: independent of chunking, thread count and process
  /// boundaries, which is the contract journaled resume and supervised
  /// sharding key on (DESIGN.md §6l). Enumeration is t-major so equal-t
  /// (equal injection cycle) samples are consecutive and the engine's
  /// word-parallel batcher packs full lanes. Every emitted sample carries
  /// weight 1.0 — an exhaustive sweep averages the uniform holistic model
  /// exactly. The default implementation throws; only call when
  /// space_size() > 0.
  virtual void enumerate(std::uint64_t begin, std::uint64_t end,
                         std::vector<FaultSample>& out) const;

 protected:
  /// Technique-independent sample checks shared by every implementation.
  void check_common(const FaultSample& sample) const;
};

/// The paper's radiation instance p = [g, r]: a radiated spot upsets struck
/// DFFs directly and seeds transients in struck combinational gates, which
/// propagate to the registers under logical/electrical/latching-window
/// masking (see faultsim/injection.h).
class RadiationTechnique final : public AttackTechnique {
 public:
  /// References must outlive the technique.
  RadiationTechnique(const layout::Placement& placement,
                     const InjectionSimulator& injector);

  TechniqueKind kind() const override { return TechniqueKind::kRadiation; }
  std::string parameter_space() const override;
  void check_sample(const FaultSample& sample) const override;
  void flip_set(const netlist::LogicSimulator& sim, TechniqueScratch& scratch,
                const FaultSample& sample,
                std::vector<netlist::NodeId>& flipped) const override;
  bool supports_batch() const override { return true; }
  void flip_set_batch(const netlist::WordSimulator& sim,
                      TechniqueScratch& scratch,
                      std::span<const FaultSample> samples,
                      std::vector<std::vector<netlist::NodeId>>& flipped)
      const override;

  const InjectionSimulator& injector() const { return *injector_; }

  /// Binds the enumerable space: every (t, center, radius, strike) tuple of
  /// the model. An empty model.strike_fracs grid is normalized to the single
  /// instant {0.0} — the continuous Unif[0, 1) strike draw has no finite
  /// enumeration, so exhaustive sweeps pin the hit to the cycle start unless
  /// the model configures a grid.
  void bind_space(const AttackModel& model);
  std::uint64_t space_size() const override;
  void enumerate(std::uint64_t begin, std::uint64_t end,
                 std::vector<FaultSample>& out) const override;

 private:
  const layout::Placement* placement_;
  const InjectionSimulator* injector_;
  AttackModel space_;
  bool has_space_ = false;
};

/// The clock-glitch instance p = [d]: one shortened cycle makes registers
/// whose D input has not settled hold their previous value (see
/// faultsim/clock_glitch.h). No spatial parameters; the flip set is a
/// deterministic function of (cycle, depth), which makes exact SSF
/// enumeration feasible (bind_space + mc::SsfEvaluator::run_exhaustive).
class ClockGlitchTechnique final : public AttackTechnique {
 public:
  /// The simulator must outlive the technique.
  explicit ClockGlitchTechnique(const ClockGlitchSimulator& glitch);

  TechniqueKind kind() const override { return TechniqueKind::kClockGlitch; }
  std::string parameter_space() const override;
  void check_sample(const FaultSample& sample) const override;
  void flip_set(const netlist::LogicSimulator& sim, TechniqueScratch& scratch,
                const FaultSample& sample,
                std::vector<netlist::NodeId>& flipped) const override;
  bool supports_batch() const override { return true; }
  void flip_set_batch(const netlist::WordSimulator& sim,
                      TechniqueScratch& scratch,
                      std::span<const FaultSample> samples,
                      std::vector<std::vector<netlist::NodeId>>& flipped)
      const override;

  const ClockGlitchSimulator& simulator() const { return *glitch_; }

  /// Binds the enumerable space: the model's full (t, depth) grid.
  void bind_space(const ClockGlitchAttackModel& model);
  std::uint64_t space_size() const override;
  void enumerate(std::uint64_t begin, std::uint64_t end,
                 std::vector<FaultSample>& out) const override;

 private:
  const ClockGlitchSimulator* glitch_;
  ClockGlitchAttackModel space_;
  bool has_space_ = false;
};

/// The voltage-glitch instance p = [droop]: one cycle of supply droop scales
/// every gate delay by 1/(1-droop), so registers whose scaled D arrival
/// misses setup against the nominal period hold their previous value (see
/// faultsim/voltage_glitch.h). The droop severity rides in FaultSample::depth
/// so journal frames and the supervisor wire protocol carry it unchanged.
class VoltageGlitchTechnique final : public AttackTechnique {
 public:
  /// The simulator must outlive the technique.
  explicit VoltageGlitchTechnique(const VoltageGlitchSimulator& droop);

  TechniqueKind kind() const override { return TechniqueKind::kVoltageGlitch; }
  std::string parameter_space() const override;
  void check_sample(const FaultSample& sample) const override;
  void flip_set(const netlist::LogicSimulator& sim, TechniqueScratch& scratch,
                const FaultSample& sample,
                std::vector<netlist::NodeId>& flipped) const override;
  bool supports_batch() const override { return true; }
  void flip_set_batch(const netlist::WordSimulator& sim,
                      TechniqueScratch& scratch,
                      std::span<const FaultSample> samples,
                      std::vector<std::vector<netlist::NodeId>>& flipped)
      const override;

  const VoltageGlitchSimulator& simulator() const { return *droop_; }

  /// Binds the enumerable space: the model's full (t, droop) grid.
  void bind_space(const VoltageGlitchAttackModel& model);
  std::uint64_t space_size() const override;
  void enumerate(std::uint64_t begin, std::uint64_t end,
                 std::vector<FaultSample>& out) const override;

 private:
  const VoltageGlitchSimulator* droop_;
  VoltageGlitchAttackModel space_;
  bool has_space_ = false;
};

}  // namespace fav::faultsim
