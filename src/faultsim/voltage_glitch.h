// Voltage-glitch fault technique (paper Section 3.2 lists clock/voltage
// modification alongside radiation; this is the framework's third concrete
// technique model).
//
// A supply droop slows every gate for one cycle: propagation delays scale by
// 1/(1 - droop), so arrival times — maxima over path delay sums — scale by
// exactly the same factor. A register whose scaled D arrival no longer meets
// setup against the *nominal* clock period holds its previous value; the
// captured error is the difference between the correct next value and the
// held one. Like the clock glitch, the outcome is a deterministic function
// of (cycle, droop), so the fault space is a finite grid and exact SSF
// enumeration is feasible (technique.h enumerate()).
#pragma once

#include <cstdint>
#include <vector>

#include "faultsim/timing.h"
#include "netlist/logicsim.h"

namespace fav::faultsim {

class VoltageGlitchSimulator {
 public:
  explicit VoltageGlitchSimulator(const netlist::Netlist& nl,
                                  const TimingModel& timing_model = {});

  const TimingAnalysis& timing() const { return timing_; }

  /// DFFs whose captured value is wrong when every gate delay is scaled by
  /// 1/(1-droop) for the current cycle. `sim` must hold the settled values
  /// of the glitched cycle: a register with arrival(D)/(1-droop) + setup >
  /// clock_period holds its old Q, so it flips iff its new D differs from Q.
  /// Results are sorted by node id.
  std::vector<netlist::NodeId> flipped_dffs(const netlist::LogicSimulator& sim,
                                            double droop) const;

  /// The slowest D-input arrival at nominal supply; droops below
  /// 1 - critical_d_arrival() / (clock_period - setup) never flip anything.
  double critical_d_arrival() const { return critical_d_; }

 private:
  const netlist::Netlist* nl_;
  TimingAnalysis timing_;
  double critical_d_ = 0;
};

/// Holistic model for the voltage-glitch technique: timing distance t (as
/// for radiation) plus the droop severity — the fractional supply drop that
/// scales every gate delay by 1/(1-droop). Both uniform (temporal accuracy /
/// regulator variation).
struct VoltageGlitchAttackModel {
  int t_min = 0;
  int t_max = 49;
  std::vector<double> droops = {0.15, 0.25, 0.35, 0.45};

  int t_count() const { return t_max - t_min + 1; }

  void check_valid() const {
    FAV_ENSURE_MSG(t_min >= 0 && t_max >= t_min, "bad timing range");
    FAV_ENSURE_MSG(!droops.empty(), "no droop levels");
    for (const double d : droops) {
      FAV_ENSURE_MSG(d > 0.0 && d < 1.0, "droop must be in (0, 1)");
    }
  }

  /// Validation against a concrete benchmark; see
  /// ClockGlitchAttackModel::check_valid(target_cycle) for the rationale.
  void check_valid(std::uint64_t target_cycle) const {
    check_valid();
    FAV_ENSURE_MSG(static_cast<std::uint64_t>(t_max) <= target_cycle,
                   "droop timing range [" << t_min << ", " << t_max
                                          << "] exceeds the target cycle "
                                          << target_cycle);
  }

  /// Joint pmf of (t, droop) under the uniform holistic model.
  double f_pmf() const {
    return 1.0 / (static_cast<double>(t_count()) *
                  static_cast<double>(droops.size()));
  }
};

}  // namespace fav::faultsim
