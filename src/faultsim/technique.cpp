#include "faultsim/technique.h"

namespace fav::faultsim {

void AttackTechnique::check_common(const FaultSample& sample) const {
  FAV_ENSURE_MSG(sample.technique == kind(),
                 "sample carries '" << technique_kind_name(sample.technique)
                                    << "' parameters but the engine evaluates "
                                    << "the '" << name() << "' technique");
  FAV_ENSURE_MSG(sample.t >= 0, "negative timing distance not supported");
  FAV_ENSURE_MSG(sample.impact_cycles >= 1, "impact_cycles must be >= 1");
}

RadiationTechnique::RadiationTechnique(const layout::Placement& placement,
                                       const InjectionSimulator& injector)
    : placement_(&placement), injector_(&injector) {}

std::string RadiationTechnique::parameter_space() const {
  return "p = [center, radius, strike_frac] (radiated spot)";
}

void RadiationTechnique::check_sample(const FaultSample& sample) const {
  check_common(sample);
  FAV_ENSURE_MSG(sample.radius >= 0.0, "negative spot radius");
  FAV_ENSURE_MSG(sample.strike_frac >= 0.0 && sample.strike_frac < 1.0,
                 "strike_frac must be in [0, 1)");
}

void RadiationTechnique::flip_set(const netlist::LogicSimulator& sim,
                                  TechniqueScratch& scratch,
                                  const FaultSample& sample,
                                  std::vector<netlist::NodeId>& flipped) const {
  placement_->nodes_within(sample.center, sample.radius, scratch.struck);
  const double strike_time =
      sample.strike_frac * injector_->timing().clock_period();
  InjectionResult inj = injector_->inject(sim, scratch.struck, strike_time);
  flipped = std::move(inj.flipped_dffs);
}

ClockGlitchTechnique::ClockGlitchTechnique(const ClockGlitchSimulator& glitch)
    : glitch_(&glitch) {}

std::string ClockGlitchTechnique::parameter_space() const {
  return "p = [depth] (glitched-period fraction)";
}

void ClockGlitchTechnique::check_sample(const FaultSample& sample) const {
  check_common(sample);
  FAV_ENSURE_MSG(sample.depth > 0.0 && sample.depth < 1.0,
                 "depth must be in (0, 1)");
}

void ClockGlitchTechnique::flip_set(
    const netlist::LogicSimulator& sim, TechniqueScratch& scratch,
    const FaultSample& sample, std::vector<netlist::NodeId>& flipped) const {
  (void)scratch;  // no spatial query; the flip set is (state, depth)-only
  const double period = glitch_->timing().clock_period() * sample.depth;
  flipped = glitch_->flipped_dffs(sim, period);
}

}  // namespace fav::faultsim
