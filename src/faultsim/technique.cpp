#include "faultsim/technique.h"

namespace fav::faultsim {

void AttackTechnique::flip_set_batch(
    const netlist::WordSimulator& sim, TechniqueScratch& scratch,
    std::span<const FaultSample> samples,
    std::vector<std::vector<netlist::NodeId>>& flipped) const {
  (void)sim;
  (void)scratch;
  (void)samples;
  (void)flipped;
  FAV_ENSURE_MSG(false, "technique '" << name()
                                      << "' does not implement batch "
                                      << "flip-set evaluation");
}

void AttackTechnique::check_common(const FaultSample& sample) const {
  FAV_ENSURE_MSG(sample.technique == kind(),
                 "sample carries '" << technique_kind_name(sample.technique)
                                    << "' parameters but the engine evaluates "
                                    << "the '" << name() << "' technique");
  FAV_ENSURE_MSG(sample.t >= 0, "negative timing distance not supported");
  FAV_ENSURE_MSG(sample.impact_cycles >= 1, "impact_cycles must be >= 1");
}

RadiationTechnique::RadiationTechnique(const layout::Placement& placement,
                                       const InjectionSimulator& injector)
    : placement_(&placement), injector_(&injector) {}

std::string RadiationTechnique::parameter_space() const {
  return "p = [center, radius, strike_frac] (radiated spot)";
}

void RadiationTechnique::check_sample(const FaultSample& sample) const {
  check_common(sample);
  FAV_ENSURE_MSG(sample.radius >= 0.0, "negative spot radius");
  FAV_ENSURE_MSG(sample.strike_frac >= 0.0 && sample.strike_frac < 1.0,
                 "strike_frac must be in [0, 1)");
}

void RadiationTechnique::flip_set(const netlist::LogicSimulator& sim,
                                  TechniqueScratch& scratch,
                                  const FaultSample& sample,
                                  std::vector<netlist::NodeId>& flipped) const {
  placement_->nodes_within(sample.center, sample.radius, scratch.struck);
  const double strike_time =
      sample.strike_frac * injector_->timing().clock_period();
  InjectionResult inj =
      injector_->inject(sim, scratch.struck, strike_time, scratch.injection);
  flipped = std::move(inj.flipped_dffs);
}

void RadiationTechnique::flip_set_batch(
    const netlist::WordSimulator& sim, TechniqueScratch& scratch,
    std::span<const FaultSample> samples,
    std::vector<std::vector<netlist::NodeId>>& flipped) const {
  const std::size_t lanes = samples.size();
  if (scratch.struck_lanes.size() < lanes) scratch.struck_lanes.resize(lanes);
  scratch.strike_times.resize(lanes);
  const double period = injector_->timing().clock_period();
  for (std::size_t l = 0; l < lanes; ++l) {
    placement_->nodes_within(samples[l].center, samples[l].radius,
                             scratch.struck_lanes[l]);
    scratch.strike_times[l] = samples[l].strike_frac * period;
  }
  injector_->inject_batch(
      sim, std::span<const std::vector<netlist::NodeId>>(
               scratch.struck_lanes.data(), lanes),
      scratch.strike_times, scratch.batch, flipped);
}

ClockGlitchTechnique::ClockGlitchTechnique(const ClockGlitchSimulator& glitch)
    : glitch_(&glitch) {}

std::string ClockGlitchTechnique::parameter_space() const {
  return "p = [depth] (glitched-period fraction)";
}

void ClockGlitchTechnique::check_sample(const FaultSample& sample) const {
  check_common(sample);
  FAV_ENSURE_MSG(sample.depth > 0.0 && sample.depth < 1.0,
                 "depth must be in (0, 1)");
}

void ClockGlitchTechnique::flip_set(
    const netlist::LogicSimulator& sim, TechniqueScratch& scratch,
    const FaultSample& sample, std::vector<netlist::NodeId>& flipped) const {
  (void)scratch;  // no spatial query; the flip set is (state, depth)-only
  const double period = glitch_->timing().clock_period() * sample.depth;
  flipped = glitch_->flipped_dffs(sim, period);
}

void ClockGlitchTechnique::flip_set_batch(
    const netlist::WordSimulator& sim, TechniqueScratch& scratch,
    std::span<const FaultSample> samples,
    std::vector<std::vector<netlist::NodeId>>& flipped) const {
  (void)scratch;
  const std::size_t lanes = samples.size();
  FAV_ENSURE_MSG(lanes >= 1 && lanes <= 64, "lane count must be in [1, 64]");
  flipped.resize(lanes);
  for (auto& f : flipped) f.clear();
  const auto& timing = glitch_->timing();
  const double nominal = timing.clock_period();
  const double setup = timing.model().setup_time;
  for (std::size_t l = 0; l < lanes; ++l) {
    FAV_ENSURE_MSG(nominal * samples[l].depth > 0.0,
                   "glitch period must be positive");
  }
  const auto& nl = sim.netlist();
  for (const netlist::NodeId dff : nl.dffs()) {
    const netlist::NodeId d = nl.node(dff).fanins[0];
    // A register flips only where its new D differs from the held Q; skip
    // the per-lane timing test entirely when no lane sees a difference.
    const std::uint64_t diff = sim.word(d) ^ sim.word(dff);
    if (diff == 0) continue;
    const double needed = timing.arrival(d) + setup;
    for (std::size_t l = 0; l < lanes; ++l) {
      if (((diff >> l) & 1u) == 0) continue;
      if (needed > nominal * samples[l].depth) flipped[l].push_back(dff);
    }
  }
  // dffs() is ascending, so each lane's list is already sorted and unique.
}

}  // namespace fav::faultsim
