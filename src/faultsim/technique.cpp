#include "faultsim/technique.h"

namespace fav::faultsim {

void AttackTechnique::flip_set_batch(
    const netlist::WordSimulator& sim, TechniqueScratch& scratch,
    std::span<const FaultSample> samples,
    std::vector<std::vector<netlist::NodeId>>& flipped) const {
  (void)sim;
  (void)scratch;
  (void)samples;
  (void)flipped;
  FAV_ENSURE_MSG(false, "technique '" << name()
                                      << "' does not implement batch "
                                      << "flip-set evaluation");
}

void AttackTechnique::enumerate(std::uint64_t begin, std::uint64_t end,
                                std::vector<FaultSample>& out) const {
  (void)begin;
  (void)end;
  (void)out;
  FAV_ENSURE_MSG(false, "technique '" << name()
                                      << "' has no bound fault space to "
                                      << "enumerate (call bind_space first)");
}

namespace {

// Shared by every enumerate(): the [begin, end) range must sit inside the
// bound space.
void check_enumeration_range(std::uint64_t begin, std::uint64_t end,
                             std::uint64_t space) {
  FAV_ENSURE_MSG(begin <= end, "bad enumeration range");
  FAV_ENSURE_MSG(end <= space, "enumeration range [" << begin << ", " << end
                                                     << ") exceeds the fault "
                                                     << "space of " << space
                                                     << " points");
}

}  // namespace

void AttackTechnique::check_common(const FaultSample& sample) const {
  FAV_ENSURE_MSG(sample.technique == kind(),
                 "sample carries '" << technique_kind_name(sample.technique)
                                    << "' parameters but the engine evaluates "
                                    << "the '" << name() << "' technique");
  FAV_ENSURE_MSG(sample.t >= 0, "negative timing distance not supported");
  FAV_ENSURE_MSG(sample.impact_cycles >= 1, "impact_cycles must be >= 1");
}

RadiationTechnique::RadiationTechnique(const layout::Placement& placement,
                                       const InjectionSimulator& injector)
    : placement_(&placement), injector_(&injector) {}

std::string RadiationTechnique::parameter_space() const {
  return "p = [center, radius, strike_frac] (radiated spot)";
}

void RadiationTechnique::check_sample(const FaultSample& sample) const {
  check_common(sample);
  FAV_ENSURE_MSG(sample.radius >= 0.0, "negative spot radius");
  FAV_ENSURE_MSG(sample.strike_frac >= 0.0 && sample.strike_frac < 1.0,
                 "strike_frac must be in [0, 1)");
}

void RadiationTechnique::flip_set(const netlist::LogicSimulator& sim,
                                  TechniqueScratch& scratch,
                                  const FaultSample& sample,
                                  std::vector<netlist::NodeId>& flipped) const {
  placement_->nodes_within(sample.center, sample.radius, scratch.struck);
  const double strike_time =
      sample.strike_frac * injector_->timing().clock_period();
  InjectionResult inj =
      injector_->inject(sim, scratch.struck, strike_time, scratch.injection);
  flipped = std::move(inj.flipped_dffs);
}

void RadiationTechnique::flip_set_batch(
    const netlist::WordSimulator& sim, TechniqueScratch& scratch,
    std::span<const FaultSample> samples,
    std::vector<std::vector<netlist::NodeId>>& flipped) const {
  const std::size_t lanes = samples.size();
  if (scratch.struck_lanes.size() < lanes) scratch.struck_lanes.resize(lanes);
  scratch.strike_times.resize(lanes);
  const double period = injector_->timing().clock_period();
  for (std::size_t l = 0; l < lanes; ++l) {
    placement_->nodes_within(samples[l].center, samples[l].radius,
                             scratch.struck_lanes[l]);
    scratch.strike_times[l] = samples[l].strike_frac * period;
  }
  injector_->inject_batch(
      sim, std::span<const std::vector<netlist::NodeId>>(
               scratch.struck_lanes.data(), lanes),
      scratch.strike_times, scratch.batch, flipped);
}

void RadiationTechnique::bind_space(const AttackModel& model) {
  model.check_valid();
  space_ = model;
  if (space_.strike_fracs.empty()) space_.strike_fracs = {0.0};
  has_space_ = true;
}

std::uint64_t RadiationTechnique::space_size() const {
  if (!has_space_) return 0;
  return static_cast<std::uint64_t>(space_.t_count()) *
         space_.candidate_centers.size() * space_.radii.size() *
         space_.strike_fracs.size();
}

void RadiationTechnique::enumerate(std::uint64_t begin, std::uint64_t end,
                                   std::vector<FaultSample>& out) const {
  check_enumeration_range(begin, end, space_size());
  out.clear();
  out.reserve(end - begin);
  // t-major, then center, radius, strike — the index decomposition below is
  // the stable enumeration contract; changing it invalidates journals.
  const std::uint64_t strikes = space_.strike_fracs.size();
  const std::uint64_t per_radius = strikes;
  const std::uint64_t per_center = space_.radii.size() * per_radius;
  const std::uint64_t per_t = space_.candidate_centers.size() * per_center;
  for (std::uint64_t i = begin; i < end; ++i) {
    FaultSample s;
    s.technique = TechniqueKind::kRadiation;
    s.t = space_.t_min + static_cast<int>(i / per_t);
    const std::uint64_t rem = i % per_t;
    s.center = space_.candidate_centers[rem / per_center];
    const std::uint64_t rem2 = rem % per_center;
    s.radius = space_.radii[rem2 / per_radius];
    s.strike_frac = space_.strike_fracs[rem2 % per_radius];
    s.impact_cycles = space_.impact_cycles;
    s.weight = 1.0;
    out.push_back(s);
  }
}

ClockGlitchTechnique::ClockGlitchTechnique(const ClockGlitchSimulator& glitch)
    : glitch_(&glitch) {}

std::string ClockGlitchTechnique::parameter_space() const {
  return "p = [depth] (glitched-period fraction)";
}

void ClockGlitchTechnique::check_sample(const FaultSample& sample) const {
  check_common(sample);
  FAV_ENSURE_MSG(sample.depth > 0.0 && sample.depth < 1.0,
                 "depth must be in (0, 1)");
}

void ClockGlitchTechnique::flip_set(
    const netlist::LogicSimulator& sim, TechniqueScratch& scratch,
    const FaultSample& sample, std::vector<netlist::NodeId>& flipped) const {
  (void)scratch;  // no spatial query; the flip set is (state, depth)-only
  const double period = glitch_->timing().clock_period() * sample.depth;
  flipped = glitch_->flipped_dffs(sim, period);
}

void ClockGlitchTechnique::flip_set_batch(
    const netlist::WordSimulator& sim, TechniqueScratch& scratch,
    std::span<const FaultSample> samples,
    std::vector<std::vector<netlist::NodeId>>& flipped) const {
  (void)scratch;
  const std::size_t lanes = samples.size();
  FAV_ENSURE_MSG(lanes >= 1 && lanes <= 64, "lane count must be in [1, 64]");
  flipped.resize(lanes);
  for (auto& f : flipped) f.clear();
  const auto& timing = glitch_->timing();
  const double nominal = timing.clock_period();
  const double setup = timing.model().setup_time;
  for (std::size_t l = 0; l < lanes; ++l) {
    FAV_ENSURE_MSG(nominal * samples[l].depth > 0.0,
                   "glitch period must be positive");
  }
  const auto& nl = sim.netlist();
  for (const netlist::NodeId dff : nl.dffs()) {
    const netlist::NodeId d = nl.node(dff).fanins[0];
    // A register flips only where its new D differs from the held Q; skip
    // the per-lane timing test entirely when no lane sees a difference.
    const std::uint64_t diff = sim.word(d) ^ sim.word(dff);
    if (diff == 0) continue;
    const double needed = timing.arrival(d) + setup;
    for (std::size_t l = 0; l < lanes; ++l) {
      if (((diff >> l) & 1u) == 0) continue;
      if (needed > nominal * samples[l].depth) flipped[l].push_back(dff);
    }
  }
  // dffs() is ascending, so each lane's list is already sorted and unique.
}

void ClockGlitchTechnique::bind_space(const ClockGlitchAttackModel& model) {
  model.check_valid();
  space_ = model;
  has_space_ = true;
}

std::uint64_t ClockGlitchTechnique::space_size() const {
  if (!has_space_) return 0;
  return static_cast<std::uint64_t>(space_.t_count()) * space_.depths.size();
}

void ClockGlitchTechnique::enumerate(std::uint64_t begin, std::uint64_t end,
                                     std::vector<FaultSample>& out) const {
  check_enumeration_range(begin, end, space_size());
  out.clear();
  out.reserve(end - begin);
  const std::uint64_t depths = space_.depths.size();
  for (std::uint64_t i = begin; i < end; ++i) {
    FaultSample s;
    s.technique = TechniqueKind::kClockGlitch;
    s.t = space_.t_min + static_cast<int>(i / depths);
    s.depth = space_.depths[i % depths];
    s.weight = 1.0;
    out.push_back(s);
  }
}

VoltageGlitchTechnique::VoltageGlitchTechnique(
    const VoltageGlitchSimulator& droop)
    : droop_(&droop) {}

std::string VoltageGlitchTechnique::parameter_space() const {
  return "p = [droop] (supply-droop severity)";
}

void VoltageGlitchTechnique::check_sample(const FaultSample& sample) const {
  check_common(sample);
  FAV_ENSURE_MSG(sample.depth > 0.0 && sample.depth < 1.0,
                 "droop must be in (0, 1)");
}

void VoltageGlitchTechnique::flip_set(
    const netlist::LogicSimulator& sim, TechniqueScratch& scratch,
    const FaultSample& sample, std::vector<netlist::NodeId>& flipped) const {
  (void)scratch;  // no spatial query; the flip set is (state, droop)-only
  flipped = droop_->flipped_dffs(sim, sample.depth);
}

void VoltageGlitchTechnique::flip_set_batch(
    const netlist::WordSimulator& sim, TechniqueScratch& scratch,
    std::span<const FaultSample> samples,
    std::vector<std::vector<netlist::NodeId>>& flipped) const {
  (void)scratch;
  const std::size_t lanes = samples.size();
  FAV_ENSURE_MSG(lanes >= 1 && lanes <= 64, "lane count must be in [1, 64]");
  flipped.resize(lanes);
  for (auto& f : flipped) f.clear();
  const auto& timing = droop_->timing();
  const double nominal = timing.clock_period();
  const double setup = timing.model().setup_time;
  for (std::size_t l = 0; l < lanes; ++l) {
    FAV_ENSURE_MSG(samples[l].depth > 0.0 && samples[l].depth < 1.0,
                   "droop must be in (0, 1)");
  }
  const auto& nl = sim.netlist();
  for (const netlist::NodeId dff : nl.dffs()) {
    const netlist::NodeId d = nl.node(dff).fanins[0];
    // A register flips only where its new D differs from the held Q; skip
    // the per-lane timing test entirely when no lane sees a difference.
    const std::uint64_t diff = sim.word(d) ^ sim.word(dff);
    if (diff == 0) continue;
    const double arrival = timing.arrival(d);
    for (std::size_t l = 0; l < lanes; ++l) {
      if (((diff >> l) & 1u) == 0) continue;
      if (arrival / (1.0 - samples[l].depth) + setup > nominal) {
        flipped[l].push_back(dff);
      }
    }
  }
  // dffs() is ascending, so each lane's list is already sorted and unique.
}

void VoltageGlitchTechnique::bind_space(const VoltageGlitchAttackModel& model) {
  model.check_valid();
  space_ = model;
  has_space_ = true;
}

std::uint64_t VoltageGlitchTechnique::space_size() const {
  if (!has_space_) return 0;
  return static_cast<std::uint64_t>(space_.t_count()) * space_.droops.size();
}

void VoltageGlitchTechnique::enumerate(std::uint64_t begin, std::uint64_t end,
                                       std::vector<FaultSample>& out) const {
  check_enumeration_range(begin, end, space_size());
  out.clear();
  out.reserve(end - begin);
  const std::uint64_t droops = space_.droops.size();
  for (std::uint64_t i = begin; i < end; ++i) {
    FaultSample s;
    s.technique = TechniqueKind::kVoltageGlitch;
    s.t = space_.t_min + static_cast<int>(i / droops);
    s.depth = space_.droops[i % droops];
    s.weight = 1.0;
    out.push_back(s);
  }
}

}  // namespace fav::faultsim
