#include "faultsim/voltage_glitch.h"

#include <algorithm>

namespace fav::faultsim {

using netlist::NodeId;

VoltageGlitchSimulator::VoltageGlitchSimulator(const netlist::Netlist& nl,
                                               const TimingModel& timing_model)
    : nl_(&nl), timing_(nl, timing_model) {
  for (const NodeId dff : nl.dffs()) {
    FAV_ENSURE_MSG(!nl.node(dff).fanins.empty(),
                  "DFF '" << nl.node(dff).name << "' has no D input");
    critical_d_ =
        std::max(critical_d_, timing_.arrival(nl.node(dff).fanins[0]));
  }
}

std::vector<NodeId> VoltageGlitchSimulator::flipped_dffs(
    const netlist::LogicSimulator& sim, double droop) const {
  FAV_ENSURE_MSG(droop > 0.0 && droop < 1.0, "droop must be in (0, 1)");
  const double period = timing_.clock_period();
  const double setup = timing_.model().setup_time;
  std::vector<NodeId> flips;
  for (const NodeId dff : nl_->dffs()) {
    const NodeId d = nl_->node(dff).fanins[0];
    // Divide rather than premultiply 1/(1-droop): the batch path
    // (technique.cpp) evaluates the same expression, and the two must agree
    // to the last ulp for batch/scalar bitwise identity.
    if (timing_.arrival(d) / (1.0 - droop) + setup <= period) continue;
    // Too slow under droop: the register holds its old value. It is an
    // *error* only if the new D actually differs.
    if (sim.value(d) != sim.value(dff)) flips.push_back(dff);
  }
  std::sort(flips.begin(), flips.end());
  return flips;
}

}  // namespace fav::faultsim
