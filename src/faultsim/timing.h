// Gate delay model and static timing analysis for the injection-cycle
// simulator.
//
// The transient propagation of Section 5.3 needs, per node, an arrival time
// (when its output settles) and per cell type a propagation delay and an
// electrical attenuation (how much a passing pulse narrows). Values are a
// synthetic standard-cell-ish calibration; only relative magnitudes matter
// for the masking statistics.
#pragma once

#include <vector>

#include "netlist/netlist.h"

namespace fav::faultsim {

struct TimingModel {
  /// Propagation delay per cell type (arbitrary time units ~ gate delays).
  double delay_inv = 1.0;
  double delay_nand_nor = 1.2;
  double delay_and_or = 1.4;   // built as nand/nor + inverter
  double delay_xor = 1.8;
  double delay_mux = 1.6;
  /// Pulse-width attenuation per traversed stage (electrical masking).
  double attenuation = 0.15;
  /// Pulses narrower than this die out.
  double min_pulse_width = 0.5;
  /// DFF latching window (setup + hold) around the clock edge.
  double setup_time = 0.6;
  double hold_time = 0.4;
  /// Clock period = critical path * margin.
  double clock_margin = 1.15;

  double delay(netlist::CellType t) const;
};

class TimingAnalysis {
 public:
  TimingAnalysis(const netlist::Netlist& nl, const TimingModel& model);

  /// Settle time of the node's output within a cycle (sources settle at 0).
  double arrival(netlist::NodeId id) const;
  double critical_path() const { return critical_; }
  double clock_period() const { return period_; }
  const TimingModel& model() const { return model_; }

 private:
  TimingModel model_;
  std::vector<double> arrival_;
  double critical_ = 0;
  double period_ = 0;
};

}  // namespace fav::faultsim
