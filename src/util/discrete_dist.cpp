#include "util/discrete_dist.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace fav {

DiscreteDistribution::DiscreteDistribution(std::vector<double> weights)
    : pmf_(std::move(weights)) {
  FAV_ENSURE_MSG(!pmf_.empty(), "discrete distribution needs >= 1 outcome");
  double total = 0.0;
  for (double w : pmf_) {
    FAV_ENSURE_MSG(w >= 0.0, "negative weight " << w);
    total += w;
  }
  FAV_ENSURE_MSG(total > 0.0, "all weights are zero");
  cdf_.resize(pmf_.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < pmf_.size(); ++i) {
    pmf_[i] /= total;
    acc += pmf_[i];
    cdf_[i] = acc;
  }
  // Rounding guard: pin the CDF to exactly 1.0 from the last positive-weight
  // outcome onward. Pinning only cdf_.back() would hand the rounding residue
  // to a trailing zero-weight outcome, making it reachable.
  std::size_t last = pmf_.size();
  while (last > 0 && pmf_[last - 1] == 0.0) --last;
  for (std::size_t i = last - 1; i < pmf_.size(); ++i) cdf_[i] = 1.0;
}

double DiscreteDistribution::pmf(std::size_t i) const {
  FAV_ENSURE_MSG(i < pmf_.size(), "index " << i << " out of range " << pmf_.size());
  return pmf_[i];
}

std::size_t DiscreteDistribution::sample_at(double u) const {
  FAV_ENSURE(!pmf_.empty());
  FAV_ENSURE_MSG(u >= 0.0 && u < 1.0, "u=" << u << " outside [0, 1)");
  // upper_bound: first index with cdf > u, i.e. the half-open interval
  // [cdf[i-1], cdf[i]) containing u. A zero-weight outcome duplicates its
  // predecessor's CDF value, so its interval is empty and it can never be
  // selected (lower_bound would return it when u hits the shared value
  // exactly — e.g. pmf[0] == 0 and u == 0.0 picked index 0).
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  const auto idx = static_cast<std::size_t>(std::distance(cdf_.begin(), it));
  FAV_CHECK_MSG(idx < pmf_.size() && pmf_[idx] > 0.0,
                "sampled zero-probability outcome " << idx);
  return idx;
}

std::size_t DiscreteDistribution::sample(Rng& rng) const {
  return sample_at(rng.uniform01());
}

}  // namespace fav
