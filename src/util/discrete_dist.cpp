#include "util/discrete_dist.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace fav {

DiscreteDistribution::DiscreteDistribution(std::vector<double> weights)
    : pmf_(std::move(weights)) {
  FAV_ENSURE_MSG(!pmf_.empty(), "discrete distribution needs >= 1 outcome");
  double total = 0.0;
  for (double w : pmf_) {
    FAV_ENSURE_MSG(w >= 0.0, "negative weight " << w);
    total += w;
  }
  FAV_ENSURE_MSG(total > 0.0, "all weights are zero");
  cdf_.resize(pmf_.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < pmf_.size(); ++i) {
    pmf_[i] /= total;
    acc += pmf_[i];
    cdf_[i] = acc;
  }
  cdf_.back() = 1.0;  // guard against rounding drift
}

double DiscreteDistribution::pmf(std::size_t i) const {
  FAV_ENSURE_MSG(i < pmf_.size(), "index " << i << " out of range " << pmf_.size());
  return pmf_[i];
}

std::size_t DiscreteDistribution::sample(Rng& rng) const {
  FAV_ENSURE(!pmf_.empty());
  const double u = rng.uniform01();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(std::distance(cdf_.begin(), it));
}

}  // namespace fav
