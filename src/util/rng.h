// Deterministic, seedable random number generation for Monte Carlo sampling.
//
// We use xoshiro256** (public-domain algorithm by Blackman & Vigna) rather
// than std::mt19937 for speed and for a guaranteed-stable stream across
// standard library implementations — reproducible experiments require the
// sample sequence to be identical everywhere.
#pragma once

#include <cstdint>
#include <limits>

#include "util/check.h"

namespace fav {

/// splitmix64; used to expand a single 64-bit seed into xoshiro state.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97f4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5EEDDEADBEEFull) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& s : state_) s = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t uniform_below(std::uint64_t bound) {
    FAV_ENSURE(bound > 0);
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    FAV_ENSURE_MSG(lo <= hi, "empty range [" << lo << ", " << hi << "]");
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    return lo + static_cast<std::int64_t>(uniform_below(span));
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi) {
    FAV_ENSURE(lo <= hi);
    return lo + (hi - lo) * uniform01();
  }

  bool bernoulli(double p) { return uniform01() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace fav
