#include "util/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace fav {

namespace {

// --- little-endian binary primitives for MetricsSink::serialize ----------

template <typename T>
void put(std::string& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  out.append(bytes, sizeof(T));
}

template <typename T>
bool get(std::string_view data, std::size_t* offset, T* value) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (data.size() - *offset < sizeof(T)) return false;
  std::memcpy(value, data.data() + *offset, sizeof(T));
  *offset += sizeof(T);
  return true;
}

void put_string(std::string& out, std::string_view s) {
  put(out, static_cast<std::uint32_t>(s.size()));
  out.append(s.data(), s.size());
}

bool get_string(std::string_view data, std::size_t* offset,
                std::string* value) {
  std::uint32_t len = 0;
  if (!get(data, offset, &len)) return false;
  if (data.size() - *offset < len) return false;
  value->assign(data.data() + *offset, len);
  *offset += len;
  return true;
}

/// Minimal JSON string escaping (quotes, backslashes, control characters);
/// metric names are ASCII identifiers, so this is rarely exercised.
void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

/// Gauges can legitimately hold non-finite values (e.g. an ESS of an empty
/// run); JSON has no literal for them, so serialize as null.
void write_json_double(std::ostream& os, double v) {
  if (std::isfinite(v)) {
    os << v;
  } else {
    os << "null";
  }
}

}  // namespace

void MetricsSink::add_counter(std::string_view name, std::uint64_t delta) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) {
    it->second += delta;
  } else {
    counters_.emplace(std::string(name), delta);
  }
}

void MetricsSink::set_gauge(std::string_view name, double value) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) {
    it->second = value;
  } else {
    gauges_.emplace(std::string(name), value);
  }
}

void MetricsSink::add_timer_ns(std::string_view name, std::uint64_t ns) {
  const auto it = timers_.find(name);
  if (it != timers_.end()) {
    it->second.add(ns);
  } else {
    TimerStat stat;
    stat.add(ns);
    timers_.emplace(std::string(name), stat);
  }
}

std::uint64_t MetricsSink::counter(std::string_view name) const {
  const auto it = counters_.find(name);
  return it != counters_.end() ? it->second : 0;
}

const double* MetricsSink::gauge(std::string_view name) const {
  const auto it = gauges_.find(name);
  return it != gauges_.end() ? &it->second : nullptr;
}

const TimerStat* MetricsSink::timer(std::string_view name) const {
  const auto it = timers_.find(name);
  return it != timers_.end() ? &it->second : nullptr;
}

void MetricsSink::merge(const MetricsSink& other) {
  for (const auto& [name, value] : other.counters_) add_counter(name, value);
  for (const auto& [name, value] : other.gauges_) set_gauge(name, value);
  for (const auto& [name, stat] : other.timers_) {
    const auto it = timers_.find(name);
    if (it != timers_.end()) {
      it->second.merge(stat);
    } else {
      timers_.emplace(name, stat);
    }
  }
}

void MetricsSink::clear() {
  counters_.clear();
  gauges_.clear();
  timers_.clear();
}

void MetricsSink::write_json(std::ostream& os) const {
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    if (!first) os << ',';
    first = false;
    write_json_string(os, name);
    os << ':' << value;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges_) {
    if (!first) os << ',';
    first = false;
    write_json_string(os, name);
    os << ':';
    write_json_double(os, value);
  }
  os << "},\"timers\":{";
  first = true;
  for (const auto& [name, stat] : timers_) {
    if (!first) os << ',';
    first = false;
    write_json_string(os, name);
    os << ":{\"count\":" << stat.count << ",\"total_ns\":" << stat.total_ns
       << ",\"max_ns\":" << stat.max_ns << '}';
  }
  os << "}}";
}

void MetricsSink::serialize(std::string& out) const {
  put(out, static_cast<std::uint32_t>(counters_.size()));
  for (const auto& [name, value] : counters_) {
    put_string(out, name);
    put(out, value);
  }
  put(out, static_cast<std::uint32_t>(gauges_.size()));
  for (const auto& [name, value] : gauges_) {
    put_string(out, name);
    put(out, value);
  }
  put(out, static_cast<std::uint32_t>(timers_.size()));
  for (const auto& [name, stat] : timers_) {
    put_string(out, name);
    put(out, stat.count);
    put(out, stat.total_ns);
    put(out, stat.max_ns);
  }
}

bool MetricsSink::deserialize(std::string_view data) {
  clear();
  std::size_t off = 0;
  std::uint32_t n = 0;
  std::string name;
  if (!get(data, &off, &n)) return false;
  for (std::uint32_t i = 0; i < n; ++i) {
    std::uint64_t value = 0;
    if (!get_string(data, &off, &name) || !get(data, &off, &value)) {
      return false;
    }
    counters_.emplace(name, value);
  }
  if (!get(data, &off, &n)) return false;
  for (std::uint32_t i = 0; i < n; ++i) {
    double value = 0;
    if (!get_string(data, &off, &name) || !get(data, &off, &value)) {
      return false;
    }
    gauges_.emplace(name, value);
  }
  if (!get(data, &off, &n)) return false;
  for (std::uint32_t i = 0; i < n; ++i) {
    TimerStat stat;
    if (!get_string(data, &off, &name) || !get(data, &off, &stat.count) ||
        !get(data, &off, &stat.total_ns) || !get(data, &off, &stat.max_ns)) {
      return false;
    }
    timers_.emplace(name, stat);
  }
  return off == data.size();
}

void TraceBuffer::record(std::string_view name, std::string_view category,
                         std::uint64_t start_ns, std::uint64_t dur_ns,
                         std::uint32_t tid, std::uint64_t order_key) {
  TraceEvent ev;
  ev.name.assign(name);
  ev.category.assign(category);
  ev.start_ns = start_ns;
  ev.dur_ns = dur_ns;
  ev.tid = tid;
  ev.order_key = order_key;
  events_.push_back(std::move(ev));
}

void TraceBuffer::merge(TraceBuffer&& other) {
  events_.insert(events_.end(),
                 std::make_move_iterator(other.events_.begin()),
                 std::make_move_iterator(other.events_.end()));
  other.events_.clear();
}

void TraceBuffer::write_json(std::ostream& os) const {
  std::vector<const TraceEvent*> sorted;
  sorted.reserve(events_.size());
  std::uint64_t base_ns = 0;
  for (const TraceEvent& ev : events_) {
    if (sorted.empty() || ev.start_ns < base_ns) base_ns = ev.start_ns;
    sorted.push_back(&ev);
  }
  // Event *order* in the file follows the sample index, not the schedule, so
  // two runs of the same campaign produce structurally identical traces
  // (timestamps still differ — they are wall-clock measurements).
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const TraceEvent* a, const TraceEvent* b) {
                     return a->order_key < b->order_key;
                   });
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent* ev : sorted) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":";
    write_json_string(os, ev->name);
    os << ",\"cat\":";
    write_json_string(os, ev->category.empty() ? "fav" : ev->category);
    os << ",\"ph\":\"X\",\"pid\":1,\"tid\":" << ev->tid
       << ",\"ts\":" << static_cast<double>(ev->start_ns - base_ns) / 1e3
       << ",\"dur\":" << static_cast<double>(ev->dur_ns) / 1e3
       << ",\"args\":{\"sample\":" << ev->order_key << "}}";
  }
  os << "]}";
}

ProgressMeter::ProgressMeter(std::size_t total, std::uint64_t min_interval_ms,
                             std::FILE* out)
    : total_(total),
      min_interval_ns_(min_interval_ms * 1'000'000ull),
      out_(out != nullptr ? out : stderr),
      start_ns_(monotonic_ns()) {}

void ProgressMeter::record(double contribution, double weight, bool failed) {
  std::lock_guard<std::mutex> lock(mu_);
  ++done_;
  if (failed) {
    ++failed_;
  } else {
    sum_ += contribution;
    sum_sq_ += contribution * contribution;
    sum_w_ += weight;
    sum_w_sq_ += weight * weight;
  }
  const std::uint64_t now = monotonic_ns();
  if (now - last_print_ns_ >= min_interval_ns_) {
    last_print_ns_ = now;
    print_line();
  }
}

void ProgressMeter::finish() {
  std::lock_guard<std::mutex> lock(mu_);
  print_line();
}

std::size_t ProgressMeter::completed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return done_;
}

std::size_t ProgressMeter::failed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failed_;
}

double ProgressMeter::effective_sample_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_w_sq_ > 0.0 ? sum_w_ * sum_w_ / sum_w_sq_ : 0.0;
}

void ProgressMeter::print_line() {
  const double elapsed_s =
      static_cast<double>(monotonic_ns() - start_ns_) / 1e9;
  const double rate =
      elapsed_s > 0.0 ? static_cast<double>(done_) / elapsed_s : 0.0;
  const auto n = static_cast<double>(done_ - failed_);
  double mean = 0.0, half = 0.0;
  if (n >= 1.0) {
    mean = sum_ / n;
    if (n >= 2.0) {
      // Unbiased sample variance from the raw moments; clamp tiny negative
      // rounding residue.
      const double var =
          std::max(0.0, (sum_sq_ - n * mean * mean) / (n - 1.0));
      half = 1.96 * std::sqrt(var / n);
    }
  }
  const double ess = sum_w_sq_ > 0.0 ? sum_w_ * sum_w_ / sum_w_sq_ : 0.0;
  std::fprintf(out_,
               "[fav] %zu/%zu samples | %.1f/s | SSF %.6f +-%.6f (95%% CI) | "
               "ESS %.1f",
               done_, total_, rate, mean, half, ess);
  if (failed_ > 0) std::fprintf(out_, " | %zu failed", failed_);
  std::fprintf(out_, "\n");
  std::fflush(out_);
}

}  // namespace fav
