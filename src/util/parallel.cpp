#include "util/parallel.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "util/check.h"

namespace fav {

std::size_t resolve_thread_count(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

void parallel_for(
    std::size_t n, std::size_t threads, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  FAV_ENSURE(grain > 0);
  if (n == 0) return;
  const std::size_t workers =
      std::min(resolve_thread_count(threads), (n + grain - 1) / grain);
  if (workers <= 1) {
    fn(0, 0, n);
    return;
  }

  std::atomic<std::size_t> cursor{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  auto work = [&](std::size_t worker) {
    try {
      for (;;) {
        const std::size_t begin = cursor.fetch_add(grain);
        if (begin >= n) return;
        fn(worker, begin, std::min(begin + grain, n));
      }
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w) pool.emplace_back(work, w);
  work(0);
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace fav
