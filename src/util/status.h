// Structured error handling for recoverable failures.
//
// The framework distinguishes three failure classes:
//  * internal invariant violations — FAV_CHECK (fatal, see util/check.h),
//  * input/config validation       — FAV_ENSURE (throws EnsureError),
//  * recoverable runtime failures  — Status / StatusError with an ErrorCode
//    from the taxonomy below, so callers (the sample-isolation layer, the
//    journal, the CLI) can classify and react instead of aborting.
// Result<T> carries either a value or a Status for APIs that report failure
// as a value rather than by throwing (e.g. journal reads, journaled runs).
#pragma once

#include <string>
#include <utility>

#include "util/check.h"

namespace fav {

/// Failure taxonomy. Codes are stable (journal frames serialize them); add
/// new codes at the end only.
enum class ErrorCode : int {
  kOk = 0,
  kInvalidArgument = 1,    // bad user input / config
  kFailedPrecondition = 2, // operation not valid in the current state
  kCycleBudgetExceeded = 3,// per-sample RTL cycle budget exhausted
  kDeadlineExceeded = 4,   // per-sample wall-clock deadline exhausted
  kSampleEvalFailed = 5,   // evaluation raised an unexpected error
  kSamplerFailed = 6,      // sampler raised while drawing a batch
  kJournalCorrupt = 7,     // journal integrity violation (checksum/meta)
  kJournalIoError = 8,     // journal file could not be opened/written
  kInternal = 9,           // invariant violation escaping as an error value
  kWorkerCrashed = 10,     // supervised worker process died evaluating a shard
  kSubprocessFailed = 11,  // worker spawn / pipe protocol failure
  kArtifactCorrupt = 12,   // pre-characterization artifact failed validation
  kArtifactStale = 13,     // artifact fingerprint/version does not match
  kStorageFull = 14,       // ENOSPC/EDQUOT/EIO: stop gracefully, resumable
  kIoError = 15,           // generic non-journal file I/O failure
  kUnavailable = 16,       // server at capacity and retries exhausted
};

inline const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case ErrorCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case ErrorCode::kCycleBudgetExceeded: return "CYCLE_BUDGET_EXCEEDED";
    case ErrorCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case ErrorCode::kSampleEvalFailed: return "SAMPLE_EVAL_FAILED";
    case ErrorCode::kSamplerFailed: return "SAMPLER_FAILED";
    case ErrorCode::kJournalCorrupt: return "JOURNAL_CORRUPT";
    case ErrorCode::kJournalIoError: return "JOURNAL_IO_ERROR";
    case ErrorCode::kInternal: return "INTERNAL";
    case ErrorCode::kWorkerCrashed: return "WORKER_CRASHED";
    case ErrorCode::kSubprocessFailed: return "SUBPROCESS_FAILED";
    case ErrorCode::kArtifactCorrupt: return "ARTIFACT_CORRUPT";
    case ErrorCode::kArtifactStale: return "ARTIFACT_STALE";
    case ErrorCode::kStorageFull: return "STORAGE_FULL";
    case ErrorCode::kIoError: return "IO_ERROR";
    case ErrorCode::kUnavailable: return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

/// An error code plus a human-readable message; kOk means success.
class Status {
 public:
  Status() = default;
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status(); }

  bool is_ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string to_string() const {
    if (is_ok()) return "OK";
    std::string s = error_code_name(code_);
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

/// Exception wrapper around a non-ok Status, for throwing layers.
class StatusError : public std::runtime_error {
 public:
  explicit StatusError(Status status)
      : std::runtime_error(status.to_string()), status_(std::move(status)) {}
  StatusError(ErrorCode code, const std::string& message)
      : StatusError(Status(code, message)) {}

  const Status& status() const { return status_; }
  ErrorCode code() const { return status_.code(); }

 private:
  Status status_;
};

/// Either a value or a non-ok Status. Accessing value() on a failed Result is
/// an internal invariant violation (FAV_CHECK-fatal): test is_ok() first or
/// use value_or_throw() to convert the failure into a StatusError.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    FAV_CHECK_MSG(!status_.is_ok(), "Result built from an OK status");
  }

  bool is_ok() const { return status_.is_ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    FAV_CHECK_MSG(is_ok(), "value() on failed Result: " << status_.to_string());
    return value_;
  }
  T& value() & {
    FAV_CHECK_MSG(is_ok(), "value() on failed Result: " << status_.to_string());
    return value_;
  }
  T&& value() && {
    FAV_CHECK_MSG(is_ok(), "value() on failed Result: " << status_.to_string());
    return std::move(value_);
  }

  /// Returns the value or throws StatusError with the failure status.
  T value_or_throw() && {
    if (!is_ok()) throw StatusError(status_);
    return std::move(value_);
  }

 private:
  T value_{};
  Status status_;
};

}  // namespace fav
