#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace fav {

double RunningStats::standard_error() const {
  if (n_ < 2) return 0.0;
  return std::sqrt(variance() / static_cast<double>(n_));
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0.0) {
  FAV_ENSURE_MSG(hi > lo, "empty histogram range");
  FAV_ENSURE(bins > 0);
}

void Histogram::add(double x, double weight) {
  // A NaN sample carries no bin information; dropping it keeps the histogram
  // well-defined (casting a NaN-derived index would be undefined behavior).
  if (std::isnan(x)) return;
  if (x < lo_) {
    underflow_ += weight;
    return;
  }
  if (x >= hi_) {
    overflow_ += weight;
    return;
  }
  std::size_t bin = 0;
  if (x > lo_) {
    // x is finite and strictly inside (lo, hi): the index math is safe.
    const double rel = (x - lo_) / (hi_ - lo_);
    bin = std::min(
        counts_.size() - 1,
        static_cast<std::size_t>(rel * static_cast<double>(counts_.size())));
  }
  counts_[bin] += weight;
  total_ += weight;
}

double Histogram::bin_lo(std::size_t i) const {
  FAV_ENSURE(i < counts_.size());
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const {
  FAV_ENSURE(i < counts_.size());
  return lo_ + (hi_ - lo_) * static_cast<double>(i + 1) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_fraction(std::size_t i) const {
  if (total_ == 0.0) return 0.0;
  return bin_weight(i) / total_;
}

}  // namespace fav
