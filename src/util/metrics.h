// Lightweight campaign observability: named counters, gauges, and scope
// timers collected into per-worker MetricsSinks, plus a Chrome-trace-format
// event buffer and a throttled live progress meter.
//
// Determinism contract (see DESIGN.md §6f): instrumentation must never
// perturb the bitwise-reproducibility of the Monte Carlo engine. Sinks are
// plain single-threaded accumulators — the parallel engine gives each worker
// its own sink and merges them in worker-index order after the run, and all
// sample-derived statistics (outcome-path counters, ESS) are recorded during
// the sample-index-ordered reduction. Counter totals are therefore
// schedule-independent; timer values are wall-clock measurements and
// inherently noisy, but they only ever feed reports, never the estimate.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace fav {

/// Monotonic timestamp in nanoseconds (steady clock; comparable within one
/// process only). All metric timers and trace events use this clock.
inline std::uint64_t monotonic_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Aggregate of one named timer: number of measured intervals, their total
/// duration, and the longest single interval.
struct TimerStat {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t max_ns = 0;

  void add(std::uint64_t ns) {
    ++count;
    total_ns += ns;
    if (ns > max_ns) max_ns = ns;
  }
  void merge(const TimerStat& other) {
    count += other.count;
    total_ns += other.total_ns;
    if (other.max_ns > max_ns) max_ns = other.max_ns;
  }
  double mean_ns() const {
    return count > 0 ? static_cast<double>(total_ns) / static_cast<double>(count)
                     : 0.0;
  }
};

/// Named counters / gauges / timers. Not thread-safe by design: each worker
/// owns one sink and the owners merge. Iteration order of every accessor is
/// lexicographic (std::map), so serialized output is deterministic.
class MetricsSink {
 public:
  void add_counter(std::string_view name, std::uint64_t delta = 1);
  void set_gauge(std::string_view name, double value);
  void add_timer_ns(std::string_view name, std::uint64_t ns);

  /// 0 / null when the name was never recorded.
  std::uint64_t counter(std::string_view name) const;
  const double* gauge(std::string_view name) const;
  const TimerStat* timer(std::string_view name) const;

  /// Accumulates every entry of `other` into this sink (gauges: last write
  /// wins, i.e. `other`'s value replaces ours).
  void merge(const MetricsSink& other);
  void clear();
  bool empty() const {
    return counters_.empty() && gauges_.empty() && timers_.empty();
  }

  const std::map<std::string, std::uint64_t, std::less<>>& counters() const {
    return counters_;
  }
  const std::map<std::string, double, std::less<>>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, TimerStat, std::less<>>& timers() const {
    return timers_;
  }

  /// {"counters":{...},"gauges":{...},"timers":{name:{count,total_ns,
  /// max_ns}}} with lexicographically sorted keys.
  void write_json(std::ostream& os) const;

  /// Compact binary round-trip, used by the supervisor protocol to ship a
  /// worker process's sink to the parent for merging. Deterministic
  /// (lexicographic entry order); deserialize() replaces this sink's
  /// contents and returns false on malformed input.
  void serialize(std::string& out) const;
  bool deserialize(std::string_view data);

 private:
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, TimerStat, std::less<>> timers_;
};

/// RAII interval timer: records the elapsed time into `sink` under `name` on
/// destruction (or on stop()). A null sink makes it a no-op, so hot paths
/// can pass through an optional sink without branching at every call site.
class ScopeTimer {
 public:
  ScopeTimer(MetricsSink* sink, std::string_view name)
      : sink_(sink), name_(name), start_ns_(sink ? monotonic_ns() : 0) {}
  ~ScopeTimer() { stop(); }
  ScopeTimer(const ScopeTimer&) = delete;
  ScopeTimer& operator=(const ScopeTimer&) = delete;

  /// Records now instead of at scope exit; idempotent. Returns the measured
  /// duration (0 for a null sink).
  std::uint64_t stop() {
    if (sink_ == nullptr) return 0;
    const std::uint64_t dur = monotonic_ns() - start_ns_;
    sink_->add_timer_ns(name_, dur);
    sink_ = nullptr;
    return dur;
  }

 private:
  MetricsSink* sink_;
  std::string_view name_;
  std::uint64_t start_ns_;
};

/// One complete ("ph":"X") Chrome-trace event.
struct TraceEvent {
  std::string name;
  std::string category;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;           // trace lane (worker index)
  std::uint64_t order_key = 0;     // sample index; write order within a lane
};

/// Buffer of trace events writable as Chrome trace-event JSON (load the file
/// in chrome://tracing or Perfetto). Not thread-safe: one buffer per worker,
/// merged by the owner; write_json emits events sorted by order_key so the
/// file contents are independent of the evaluation schedule.
class TraceBuffer {
 public:
  void record(std::string_view name, std::string_view category,
              std::uint64_t start_ns, std::uint64_t dur_ns, std::uint32_t tid,
              std::uint64_t order_key);
  void merge(TraceBuffer&& other);
  void clear() { events_.clear(); }
  std::size_t size() const { return events_.size(); }
  const std::vector<TraceEvent>& events() const { return events_; }

  /// {"displayTimeUnit":"ms","traceEvents":[...]} — timestamps are rebased
  /// to the earliest event and expressed in microseconds.
  void write_json(std::ostream& os) const;

 private:
  std::vector<TraceEvent> events_;
};

/// Throttled live campaign progress on stderr: completed samples, samples/s,
/// the running SSF estimate with its 95% CI half-width, and the importance-
/// sampling effective sample size ESS = (Σw)²/Σw². Thread-safe — workers
/// call record() once per completed sample. The meter only *observes*
/// outcomes, so enabling it cannot perturb the estimate; the displayed
/// running mean is accumulated in completion order and may differ in the
/// last digits across thread counts (the final SsfResult never does).
class ProgressMeter {
 public:
  /// `out` null routes to stderr. `min_interval_ms` throttles the output
  /// (0 prints on every record — only sane in tests).
  explicit ProgressMeter(std::size_t total, std::uint64_t min_interval_ms = 500,
                         std::FILE* out = nullptr);

  /// One evaluated sample: its estimate contribution and importance weight.
  /// Failed samples (isolation layer) carry no contribution; pass
  /// failed=true so they are excluded from the running estimate.
  void record(double contribution, double weight, bool failed = false);

  /// Prints the final line unconditionally. Safe to call once at the end of
  /// a campaign; record() may not be called afterwards.
  void finish();

  std::size_t completed() const;
  std::size_t failed() const;
  double effective_sample_size() const;

 private:
  void print_line();  // caller holds mu_

  mutable std::mutex mu_;
  const std::size_t total_;
  const std::uint64_t min_interval_ns_;
  std::FILE* out_;
  const std::uint64_t start_ns_;
  std::uint64_t last_print_ns_ = 0;
  std::size_t done_ = 0;
  std::size_t failed_ = 0;
  double sum_ = 0.0;      // Σ contribution over completed samples
  double sum_sq_ = 0.0;   // Σ contribution²
  double sum_w_ = 0.0;    // Σ weight over completed samples
  double sum_w_sq_ = 0.0; // Σ weight²
};

}  // namespace fav
