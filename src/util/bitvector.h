// Dynamic bit vector with bit-parallel (64-bit word) operations.
//
// BitVector is the workhorse behind switching signatures (Section 4 of the
// paper): per-cycle switch/no-switch bits are packed into words so that the
// bit-flip correlation |ss(g) & (ss(rs) << i)| / |ss(g)| reduces to a handful
// of word-wise AND + popcount operations.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fav {

class BitVector {
 public:
  BitVector() = default;
  /// Creates a vector of `size` bits, all initialized to `value`.
  explicit BitVector(std::size_t size, bool value = false);
  /// Parses a string of '0'/'1' characters; index 0 is the leftmost char.
  static BitVector from_string(const std::string& bits);
  /// Rebuilds a vector from its raw word storage (see words()); bits beyond
  /// `size` in the last word are cleared. The word count must match `size`.
  static BitVector from_words(std::vector<std::uint64_t> words,
                              std::size_t size);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool get(std::size_t i) const;
  void set(std::size_t i, bool value);
  /// Appends one bit at the end.
  void push_back(bool value);
  /// Grows or shrinks to `size` bits; new bits are zero.
  void resize(std::size_t size);
  /// Pre-allocates capacity for `size` bits without changing the size, so a
  /// push_back loop of known length (e.g. one signature bit per simulated
  /// cycle) performs no intermediate word reallocations.
  void reserve(std::size_t size);
  /// Sets all bits to zero without changing the size.
  void clear_all();

  /// Number of set bits (the `|·|` / hamming-weight operator of the paper).
  std::size_t count() const;
  bool any() const { return count() > 0; }
  bool none() const { return count() == 0; }

  /// Word-wise logical ops; both operands must have equal size.
  BitVector& operator&=(const BitVector& rhs);
  BitVector& operator|=(const BitVector& rhs);
  BitVector& operator^=(const BitVector& rhs);
  friend BitVector operator&(BitVector lhs, const BitVector& rhs) { return lhs &= rhs; }
  friend BitVector operator|(BitVector lhs, const BitVector& rhs) { return lhs |= rhs; }
  friend BitVector operator^(BitVector lhs, const BitVector& rhs) { return lhs ^= rhs; }

  /// Logical shift towards lower indices: result[i] = (*this)[i + n]
  /// (matches the paper's `ss(rs) << i`, which aligns cycle i+k of the
  /// responding signal with cycle k of the unrolled node). Vacated high
  /// bits are zero; size is preserved.
  BitVector shifted_down(std::size_t n) const;
  /// Logical shift towards higher indices: result[i + n] = (*this)[i].
  BitVector shifted_up(std::size_t n) const;

  /// Popcount of (*this & rhs) without materializing the intermediate.
  std::size_t and_count(const BitVector& rhs) const;

  bool operator==(const BitVector& rhs) const;
  bool operator!=(const BitVector& rhs) const { return !(*this == rhs); }

  /// '0'/'1' rendering, index 0 first.
  std::string to_string() const;

  /// Indices of set bits, ascending.
  std::vector<std::size_t> set_bits() const;

  /// Raw 64-bit word storage (little-endian bit order within each word),
  /// for serialization; pair with size() and rebuild via from_words().
  const std::vector<std::uint64_t>& words() const { return words_; }

 private:
  static constexpr std::size_t kWordBits = 64;
  static std::size_t word_count(std::size_t bits) {
    return (bits + kWordBits - 1) / kWordBits;
  }
  /// Zeroes bits beyond size_ in the last word (invariant after every op).
  void trim();

  std::vector<std::uint64_t> words_;
  std::size_t size_ = 0;
};

}  // namespace fav
