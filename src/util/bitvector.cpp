#include "util/bitvector.h"

#include <bit>

#include "util/check.h"

namespace fav {

BitVector::BitVector(std::size_t size, bool value)
    : words_(word_count(size), value ? ~std::uint64_t{0} : 0), size_(size) {
  trim();
}

BitVector BitVector::from_string(const std::string& bits) {
  BitVector v(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    FAV_ENSURE_MSG(bits[i] == '0' || bits[i] == '1',
                  "invalid bit char '" << bits[i] << "' at index " << i);
    v.set(i, bits[i] == '1');
  }
  return v;
}

BitVector BitVector::from_words(std::vector<std::uint64_t> words,
                                std::size_t size) {
  FAV_ENSURE_MSG(words.size() == word_count(size),
                "word count " << words.size() << " does not match size "
                              << size);
  BitVector v;
  v.words_ = std::move(words);
  v.size_ = size;
  v.trim();
  return v;
}

bool BitVector::get(std::size_t i) const {
  FAV_ENSURE_MSG(i < size_, "bit index " << i << " out of range " << size_);
  return (words_[i / kWordBits] >> (i % kWordBits)) & 1u;
}

void BitVector::set(std::size_t i, bool value) {
  FAV_ENSURE_MSG(i < size_, "bit index " << i << " out of range " << size_);
  const std::uint64_t mask = std::uint64_t{1} << (i % kWordBits);
  if (value) {
    words_[i / kWordBits] |= mask;
  } else {
    words_[i / kWordBits] &= ~mask;
  }
}

void BitVector::push_back(bool value) {
  resize(size_ + 1);
  set(size_ - 1, value);
}

void BitVector::resize(std::size_t size) {
  words_.resize(word_count(size), 0);
  size_ = size;
  trim();
}

void BitVector::reserve(std::size_t size) { words_.reserve(word_count(size)); }

void BitVector::clear_all() {
  for (auto& w : words_) w = 0;
}

std::size_t BitVector::count() const {
  std::size_t n = 0;
  for (auto w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

BitVector& BitVector::operator&=(const BitVector& rhs) {
  FAV_ENSURE_MSG(size_ == rhs.size_, "size mismatch " << size_ << " vs " << rhs.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= rhs.words_[i];
  return *this;
}

BitVector& BitVector::operator|=(const BitVector& rhs) {
  FAV_ENSURE_MSG(size_ == rhs.size_, "size mismatch " << size_ << " vs " << rhs.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= rhs.words_[i];
  return *this;
}

BitVector& BitVector::operator^=(const BitVector& rhs) {
  FAV_ENSURE_MSG(size_ == rhs.size_, "size mismatch " << size_ << " vs " << rhs.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= rhs.words_[i];
  return *this;
}

BitVector BitVector::shifted_down(std::size_t n) const {
  BitVector out(size_);
  if (n >= size_) return out;
  const std::size_t word_shift = n / kWordBits;
  const std::size_t bit_shift = n % kWordBits;
  for (std::size_t i = 0; i + word_shift < words_.size(); ++i) {
    std::uint64_t w = words_[i + word_shift] >> bit_shift;
    if (bit_shift != 0 && i + word_shift + 1 < words_.size()) {
      w |= words_[i + word_shift + 1] << (kWordBits - bit_shift);
    }
    out.words_[i] = w;
  }
  out.trim();
  return out;
}

BitVector BitVector::shifted_up(std::size_t n) const {
  BitVector out(size_);
  if (n >= size_) return out;
  const std::size_t word_shift = n / kWordBits;
  const std::size_t bit_shift = n % kWordBits;
  for (std::size_t i = words_.size(); i-- > word_shift;) {
    std::uint64_t w = words_[i - word_shift] << bit_shift;
    if (bit_shift != 0 && i - word_shift >= 1) {
      w |= words_[i - word_shift - 1] >> (kWordBits - bit_shift);
    }
    out.words_[i] = w;
  }
  out.trim();
  return out;
}

std::size_t BitVector::and_count(const BitVector& rhs) const {
  FAV_ENSURE_MSG(size_ == rhs.size_, "size mismatch " << size_ << " vs " << rhs.size_);
  std::size_t n = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    n += static_cast<std::size_t>(std::popcount(words_[i] & rhs.words_[i]));
  }
  return n;
}

bool BitVector::operator==(const BitVector& rhs) const {
  return size_ == rhs.size_ && words_ == rhs.words_;
}

std::string BitVector::to_string() const {
  std::string s(size_, '0');
  for (std::size_t i = 0; i < size_; ++i) {
    if (get(i)) s[i] = '1';
  }
  return s;
}

std::vector<std::size_t> BitVector::set_bits() const {
  std::vector<std::size_t> out;
  for (std::size_t wi = 0; wi < words_.size(); ++wi) {
    std::uint64_t w = words_[wi];
    while (w != 0) {
      const int b = std::countr_zero(w);
      out.push_back(wi * kWordBits + static_cast<std::size_t>(b));
      w &= w - 1;
    }
  }
  return out;
}

void BitVector::trim() {
  const std::size_t rem = size_ % kWordBits;
  if (rem != 0 && !words_.empty()) {
    words_.back() &= (std::uint64_t{1} << rem) - 1;
  }
}

}  // namespace fav
