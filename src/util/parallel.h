// Minimal threading utilities for the Monte Carlo engine.
//
// The framework's parallelism model is deliberately simple: work is an index
// range [0, n), workers pull fixed-size blocks of consecutive indices from a
// shared cursor, and every side effect is written to a per-index slot (or
// per-worker scratch), so the *schedule* never influences the *result*.
// Determinism is then the caller's to keep: draw random inputs sequentially
// up front and reduce outputs in index order.
#pragma once

#include <cstddef>
#include <functional>

namespace fav {

/// Resolves a requested worker count: 0 means "use the hardware concurrency"
/// (at least 1); any other value is returned unchanged.
std::size_t resolve_thread_count(std::size_t requested);

/// Runs `fn(worker, begin, end)` until the index range [0, n) is exhausted.
/// Blocks of `grain` consecutive indices are handed out dynamically, so
/// uneven per-index cost load-balances across `threads` workers. `worker` is
/// in [0, resolved_threads) and identifies the calling thread, letting the
/// caller index per-worker scratch state without locking.
///
/// With `threads` <= 1 (after resolution) or n <= grain the whole range runs
/// inline on the calling thread as worker 0 — no threads are spawned.
/// The first exception thrown by any worker is rethrown on the caller after
/// all workers have joined.
void parallel_for(
    std::size_t n, std::size_t threads, std::size_t grain,
    const std::function<void(std::size_t worker, std::size_t begin,
                             std::size_t end)>& fn);

}  // namespace fav
