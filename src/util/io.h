// Hardened file I/O primitives shared by the journal, the run-report writer
// and the pre-characterization artifact cache.
//
// Everything that makes campaign state durable funnels through this layer so
// there is exactly one implementation of each discipline:
//  * checksums            — CRC32C (artifact sections) and FNV-1a64 (journal
//                           header/frames, campaign fingerprints),
//  * retrying writes      — short writes and transient EINTR/EAGAIN get a
//                           bounded exponential-backoff retry; persistent
//                           failures surface as a classified Status
//                           (kStorageFull for ENOSPC/EDQUOT/EIO) instead of
//                           aborting the process,
//  * atomic publication   — temp file + fsync + rename + parent-directory
//                           fsync, so a reader never observes a half-written
//                           file and a crash never loses the previous one,
//  * advisory locking     — flock-based FileLock with a bounded-backoff wait
//                           so concurrent elaborators coordinate without ever
//                           deadlocking.
//
// A deterministic fault-injection hook (ChaosFile) fails the Nth physical
// write or fsync with a configurable errno, which is how the degraded-I/O
// paths (retry, graceful ENOSPC stop) are unit- and end-to-end tested.
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <type_traits>

#include "util/status.h"

namespace fav::io {

// ---------------------------------------------------------------------------
// Checksums.

/// CRC32C (Castagnoli, reflected poly 0x82F63B78), software table-driven.
/// Chaining: crc32c(b, n_b, crc32c(a, n_a)) == crc32c(a||b, n_a + n_b).
std::uint32_t crc32c(const void* data, std::size_t len, std::uint32_t seed = 0);

/// FNV-1a 64-bit, seedable for chaining (the FAVJRNL2 frame discipline).
std::uint64_t fnv1a64(const void* data, std::size_t len,
                      std::uint64_t seed = 0xCBF29CE484222325ull);

// ---------------------------------------------------------------------------
// Little-endian primitive (de)serialization over std::string buffers.

template <typename T>
void put_le(std::string& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  out.append(bytes, sizeof(T));
}

template <typename T>
bool get_le(const std::string& data, std::size_t* offset, T* value) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (data.size() < *offset || data.size() - *offset < sizeof(T)) return false;
  std::memcpy(value, data.data() + *offset, sizeof(T));
  *offset += sizeof(T);
  return true;
}

/// u32 length prefix + raw bytes; rejects lengths above `max_len`.
bool get_string(const std::string& data, std::size_t* offset,
                std::string* value, std::uint32_t max_len);

// ---------------------------------------------------------------------------
// JSON string escaping.

/// Minimal JSON string escaping: quotes, backslashes, and control bytes.
/// Every string any layer emits into a JSON document (run reports, the serve
/// daemon's stats snapshot) goes through this — field values like the
/// benchmark name or a socket path are caller-controlled free-form input
/// once campaigns arrive over a socket.
std::string json_escape(const std::string& s);

// ---------------------------------------------------------------------------
// Deterministic fault injection (test hook).

/// Fails the Nth physical write (fwrite attempt inside write_all) and/or the
/// Nth fsync (flush_and_fsync / fsync_dir) with `error`. Ordinals are 1-based
/// and process-global; `sticky` keeps failing every call at or past the
/// ordinal (a disk that stays full), otherwise the fault fires exactly once
/// (a transient error the retry loop should absorb).
struct ChaosFile {
  std::uint64_t fail_write_at = 0;  // 0 = never
  std::uint64_t fail_fsync_at = 0;  // 0 = never
  int error = ENOSPC;
  bool sticky = true;
};

/// Installs `chaos` and resets both call counters.
void chaos_install(const ChaosFile& chaos);
/// Clears any installed fault and resets the call counters.
void chaos_reset();

// ---------------------------------------------------------------------------
// errno classification.

/// EINTR/EAGAIN/EWOULDBLOCK: worth retrying with backoff.
bool errno_is_transient(int err);
/// ENOSPC/EDQUOT/EIO: the medium is full or failing; stop gracefully.
bool errno_is_storage_full(int err);
/// Thread-safe replacement for std::strerror: formats `err` via strerror_r
/// into a local buffer. std::strerror returns a pointer into static storage,
/// which races when worker heartbeats and the supervisor format errors
/// concurrently. Handles both the XSI and GNU strerror_r variants.
std::string errno_message(int err);
/// kStorageFull for storage-full errnos, kIoError otherwise.
Status status_from_errno(int err, const std::string& what);

// ---------------------------------------------------------------------------
// Hardened write primitives.

/// Writes all `len` bytes, retrying short writes and transient errnos with
/// bounded exponential backoff. Persistent failures return a classified
/// Status (`what` names the destination in the message).
Status write_all(std::FILE* f, const void* data, std::size_t len,
                 const std::string& what);

/// fflush + fsync with the same transient-retry discipline.
Status flush_and_fsync(std::FILE* f, const std::string& what);

/// fsyncs a directory so freshly created/renamed entries survive a crash.
Status fsync_dir(const std::string& dir);

/// Atomically publishes `contents` at `path`: write to `<path>.tmp.<pid>`,
/// fsync, rename over the target, fsync the parent directory. On failure the
/// previous file (if any) is untouched and the temp file is removed.
Status atomic_write_file(const std::string& path, const std::string& contents);

/// Reads an entire file. A missing file is kIoError; callers that need to
/// distinguish "absent" from "unreadable" should stat first.
Result<std::string> read_file(const std::string& path);

// ---------------------------------------------------------------------------
// Advisory locking.

/// flock-based advisory lock with a bounded-backoff wait. Cooperating
/// processes (not threads) serialize on the lock file; the lock is released
/// on destruction or process death, so a crashed holder never wedges peers.
class FileLock {
 public:
  FileLock() = default;
  ~FileLock() { release(); }
  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;

  /// Polls flock(LOCK_EX | LOCK_NB) with exponential backoff until acquired
  /// or `timeout_ms` elapses (kDeadlineExceeded). Never blocks indefinitely.
  Status acquire(const std::string& path, std::uint64_t timeout_ms);
  void release();
  bool held() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
};

}  // namespace fav::io
