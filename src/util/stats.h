// Streaming statistics used by the SSF estimator and the benches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/check.h"

namespace fav {

/// Numerically-stable streaming mean/variance (Welford's algorithm).
///
/// The paper's convergence analysis (weak LLN bound) is driven by the sample
/// variance sigma^2_E of the per-attack contribution; this accumulator tracks
/// exactly that quantity for each sampling strategy.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_ || n_ == 1) min_ = x;
    if (x > max_ || n_ == 1) max_ = x;
  }

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Unbiased sample variance (n-1 denominator); 0 for n < 2.
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  /// Population variance (n denominator); 0 for n < 1.
  double population_variance() const {
    return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
  }
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  /// Standard error of the mean: sqrt(variance / n).
  double standard_error() const;

  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-bin histogram over [lo, hi). Out-of-range samples (x < lo, x >= hi,
/// including +-inf) are tracked as separate underflow/overflow mass instead
/// of being folded into the edge bins — folding silently inflated bin 0 of
/// the Fig. 7/10 distributions. NaN samples are dropped. Used to reproduce
/// the Fig. 4 characterization plots.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, double weight = 1.0);

  std::size_t bin_count() const { return counts_.size(); }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  double bin_weight(std::size_t i) const { return counts_.at(i); }
  /// In-range mass: the sum over the bins, excluding under-/overflow.
  double total_weight() const { return total_; }
  /// Weight of samples below lo / at or above hi.
  double underflow_weight() const { return underflow_; }
  double overflow_weight() const { return overflow_; }
  /// Everything ever added (except dropped NaNs).
  double added_weight() const { return total_ + underflow_ + overflow_; }
  /// Fraction of *in-range* weight in bin i (0 if no in-range mass), so the
  /// bin fractions always sum to 1 over the histogram's own support.
  double bin_fraction(std::size_t i) const;

 private:
  double lo_;
  double hi_;
  std::vector<double> counts_;
  double total_ = 0.0;
  double underflow_ = 0.0;
  double overflow_ = 0.0;
};

}  // namespace fav
