// Lightweight runtime-check utilities shared by all fav libraries.
//
// Two macros with distinct contracts:
//  * FAV_ENSURE / FAV_ENSURE_MSG — input/config validation on public API
//    boundaries. Throws fav::EnsureError (derived from fav::CheckError, a
//    std::logic_error) so callers, the sample-isolation layer, and tests can
//    catch and classify user-facing errors without aborting the process.
//  * FAV_CHECK / FAV_CHECK_MSG — internal invariants that can only fail on a
//    framework bug. Fatal: prints the location and aborts, so corruption is
//    never silently swallowed by a catch-all (e.g. the per-sample isolation
//    layer, which must not mask engine bugs as sample failures).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace fav {

/// Base class for validation failures (kept as the historical name so
/// existing `catch (const CheckError&)` sites keep working).
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when a FAV_ENSURE condition fails: recoverable input/config error.
class EnsureError : public CheckError {
 public:
  explicit EnsureError(const std::string& what) : CheckError(what) {}
};

namespace detail {

[[noreturn]] inline void ensure_failed(const char* cond, const char* file,
                                       int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << cond;
  if (!msg.empty()) os << " — " << msg;
  throw EnsureError(os.str());
}

[[noreturn]] inline void check_fatal(const char* cond, const char* file,
                                     int line, const std::string& msg) {
  std::fprintf(stderr, "%s:%d: FATAL invariant violated: %s%s%s\n", file, line,
               cond, msg.empty() ? "" : " — ", msg.c_str());
  std::abort();
}

}  // namespace detail

}  // namespace fav

/// Validate input/config; throws fav::EnsureError with location on failure.
#define FAV_ENSURE(cond)                                               \
  do {                                                                 \
    if (!(cond))                                                       \
      ::fav::detail::ensure_failed(#cond, __FILE__, __LINE__, "");     \
  } while (0)

/// Same as FAV_ENSURE but appends a streamed message, e.g.
///   FAV_ENSURE_MSG(i < n, "index " << i << " out of range " << n);
#define FAV_ENSURE_MSG(cond, stream_expr)                              \
  do {                                                                 \
    if (!(cond)) {                                                     \
      std::ostringstream fav_check_os_;                                \
      fav_check_os_ << stream_expr;                                    \
      ::fav::detail::ensure_failed(#cond, __FILE__, __LINE__,          \
                                   fav_check_os_.str());               \
    }                                                                  \
  } while (0)

/// Assert an internal invariant; prints and aborts on failure (not catchable).
#define FAV_CHECK(cond)                                                \
  do {                                                                 \
    if (!(cond))                                                       \
      ::fav::detail::check_fatal(#cond, __FILE__, __LINE__, "");       \
  } while (0)

/// Same as FAV_CHECK but appends a streamed message.
#define FAV_CHECK_MSG(cond, stream_expr)                               \
  do {                                                                 \
    if (!(cond)) {                                                     \
      std::ostringstream fav_check_os_;                                \
      fav_check_os_ << stream_expr;                                    \
      ::fav::detail::check_fatal(#cond, __FILE__, __LINE__,            \
                                 fav_check_os_.str());                 \
    }                                                                  \
  } while (0)
