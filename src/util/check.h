// Lightweight runtime-check utilities shared by all fav libraries.
//
// FAV_CHECK is used for precondition/invariant validation on public API
// boundaries; it throws fav::CheckError (derived from std::logic_error) so
// callers and tests can assert on violations without aborting the process.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace fav {

/// Thrown when a FAV_CHECK condition fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* cond, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << cond;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace detail

}  // namespace fav

/// Validate a condition; throws fav::CheckError with location info on failure.
#define FAV_CHECK(cond)                                              \
  do {                                                               \
    if (!(cond)) ::fav::detail::check_failed(#cond, __FILE__, __LINE__, ""); \
  } while (0)

/// Same as FAV_CHECK but appends a streamed message, e.g.
///   FAV_CHECK_MSG(i < n, "index " << i << " out of range " << n);
#define FAV_CHECK_MSG(cond, stream_expr)                                  \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::ostringstream fav_check_os_;                                   \
      fav_check_os_ << stream_expr;                                       \
      ::fav::detail::check_failed(#cond, __FILE__, __LINE__,              \
                                  fav_check_os_.str());                   \
    }                                                                     \
  } while (0)
