// Weighted discrete distribution with O(log n) sampling and O(1) pmf lookup.
//
// Importance sampling needs both directions: draw an index from g, and then
// evaluate g(index) (and f(index)) to form the likelihood ratio f/g. A plain
// std::discrete_distribution hides the pmf, so we keep our own table.
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace fav {

class DiscreteDistribution {
 public:
  DiscreteDistribution() = default;
  /// Weights must be non-negative with a positive sum; they are normalized.
  explicit DiscreteDistribution(std::vector<double> weights);

  std::size_t size() const { return pmf_.size(); }
  bool empty() const { return pmf_.empty(); }

  /// Probability of index i under the normalized distribution.
  double pmf(std::size_t i) const;

  /// Draws an index distributed according to the weights. Zero-weight
  /// outcomes are never returned.
  std::size_t sample(Rng& rng) const;

  /// Inverse-transform sampling at a given uniform variate u in [0, 1):
  /// returns the index whose half-open CDF interval [cdf[i-1], cdf[i])
  /// contains u. Zero-weight outcomes have empty intervals and are never
  /// returned (upper-bound semantics — a lower-bound search would pick a
  /// leading zero-weight outcome when u lands exactly on a duplicated CDF
  /// value, e.g. u == 0.0 with pmf[0] == 0). Exposed so tests can probe
  /// exact boundary values that a random draw cannot hit.
  std::size_t sample_at(double u) const;

  const std::vector<double>& probabilities() const { return pmf_; }

 private:
  std::vector<double> pmf_;
  std::vector<double> cdf_;  // cdf_[i] = sum of pmf_[0..i]
};

}  // namespace fav
