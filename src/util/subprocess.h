// Child-process management and pipe framing for the campaign supervisor.
//
// The supervisor's isolation boundary is the OS process: a worker that
// segfaults, is OOM-killed, or spins in native code can always be SIGKILLed
// without taking the campaign down. This header provides the two primitives
// that boundary needs:
//   * Subprocess — fork/exec with the child's stdin/stdout connected to the
//     parent through pipes (stderr is inherited, so worker diagnostics land
//     on the campaign's stderr), plus non-blocking status probes and kill().
//   * Length-prefixed frames — every protocol message is `u32 length |
//     payload` (little-endian). A frame is written with a single write(2),
//     so frames up to PIPE_BUF bytes never interleave even when several
//     worker threads heartbeat concurrently over the same pipe.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace fav {

/// Upper bound on a single frame. Protocol messages are tiny (a few dozen
/// bytes; the largest is a serialized MetricsSink, well under a megabyte) —
/// a length prefix beyond this means the stream is desynchronized or the
/// peer is corrupt, not that a huge message is in flight.
constexpr std::uint32_t kMaxFrameBytes = 16u << 20;

/// Writes one `u32 length | payload` frame with a single write(2) call.
/// Returns kSubprocessFailed on a closed/broken pipe (the caller decides
/// whether a dead peer is fatal); short writes on a pipe only happen past
/// PIPE_BUF and are completed with follow-up writes.
Status write_frame(int fd, std::string_view payload);

/// write_frame with a wall-clock budget, for peers that may stop draining
/// their end (a serve client that wedged or went away). The fd should be
/// O_NONBLOCK: EAGAIN waits for POLLOUT up to the remaining budget and a
/// budget exhausted mid-frame returns kDeadlineExceeded — the caller treats
/// the peer as gone instead of blocking an evaluator thread forever.
/// `timeout_ms` < 0 behaves like write_frame on a non-blocking fd (waits for
/// POLLOUT indefinitely).
Status write_frame_deadline(int fd, std::string_view payload, int timeout_ms);

/// Reassembles length-prefixed frames from a raw pipe byte stream. The
/// supervisor polls many workers at once: each readable fd is drained into
/// its worker's FrameBuffer and complete frames are popped as they close.
class FrameBuffer {
 public:
  void feed(const char* data, std::size_t len) { buf_.append(data, len); }
  /// Pops the next complete frame into *payload; false when no complete
  /// frame is buffered (or the stream is corrupt — check corrupt()).
  bool next(std::string* payload);
  /// True once a length prefix exceeded kMaxFrameBytes: the stream can never
  /// resynchronize and the peer should be treated as failed.
  bool corrupt() const { return corrupt_; }
  /// Bytes buffered but not yet consumed by next() (excludes the lazily
  /// compacted prefix).
  std::size_t buffered_bytes() const { return buf_.size() - pos_; }

 private:
  std::string buf_;
  std::size_t pos_ = 0;  // consumed prefix, compacted lazily
  bool corrupt_ = false;
};

/// Blocking read of one frame with a deadline. `timeout_ms` < 0 blocks
/// indefinitely (the worker side, which has nothing else to do between
/// assignments). Returns kDeadlineExceeded on timeout and kSubprocessFailed
/// on EOF / read error / corrupt framing. Bytes beyond the returned frame
/// stay queued in `buf` for the next call.
Result<std::string> read_frame(int fd, FrameBuffer& buf, int timeout_ms);

/// Reads whatever is currently available on `fd` into `buf` without
/// blocking (the caller has already polled the fd readable). Returns false
/// on EOF or read error — the peer is gone.
bool drain_into(int fd, FrameBuffer& buf);

/// A forked+exec'd child with piped stdin/stdout. Move-only; destruction
/// closes the parent's pipe ends but neither kills nor reaps the child —
/// process lifetime is the supervisor's explicit policy (kill / wait), not
/// a destructor side effect.
class Subprocess {
 public:
  /// Final state of a child as reported by waitpid.
  struct ExitStatus {
    bool signaled = false;
    int exit_code = 0;  // valid when !signaled
    int term_signal = 0;  // valid when signaled
    /// 0 when waitpid reported the status; the failing errno (e.g. ECHILD
    /// when SIGCHLD is SIG_IGN or another component reaped the child) when
    /// the status had to be synthesized because the child can never be
    /// reaped. Synthesized statuses report exit_code kUnreapableExitCode.
    int reap_errno = 0;
  };

  /// exit_code reported when waitpid fails terminally and the real status is
  /// unknowable. 255 is outside every meaningful worker exit code (0, the
  /// resumable-stop code 3, and the exec-failure 127), so the supervisor
  /// takes its generic restart path instead of misreading a clean exit.
  static constexpr int kUnreapableExitCode = 255;

  /// Spawns `argv` (argv[0] is the executable path, resolved via execvp)
  /// with stdin/stdout piped to the parent and stderr inherited. Both pipes
  /// are created with O_CLOEXEC so no other child ever inherits them — the
  /// exec'd child sees them only as its stdin/stdout (dup2 clears the flag
  /// on the duplicates). Without this, a sibling worker spawned later would
  /// hold this child's pipe write end open, masking its EOF-on-death until
  /// every sibling exits. On Linux the child requests SIGTERM on parent
  /// death (PR_SET_PDEATHSIG), so a SIGKILLed supervisor cannot leak orphan
  /// workers. An exec failure surfaces as the child exiting with code 127.
  static Result<Subprocess> spawn(const std::vector<std::string>& argv);

  Subprocess() = default;
  ~Subprocess() { close_pipes(); }
  Subprocess(Subprocess&& other) noexcept { *this = std::move(other); }
  Subprocess& operator=(Subprocess&& other) noexcept;
  Subprocess(const Subprocess&) = delete;
  Subprocess& operator=(const Subprocess&) = delete;

  pid_t pid() const { return pid_; }
  bool valid() const { return pid_ > 0; }
  /// Parent's write end of the child's stdin (-1 after close_stdin()).
  int stdin_fd() const { return stdin_fd_; }
  /// Parent's read end of the child's stdout.
  int stdout_fd() const { return stdout_fd_; }

  /// Sends `sig` to the child; a no-op once the child was reaped.
  void kill(int sig);
  /// Non-blocking reap (waitpid WNOHANG): true and fills *status once the
  /// child has exited; false while it is still running. Idempotent — after
  /// the first successful reap the cached status is returned. A terminal
  /// waitpid error (anything but EINTR, e.g. ECHILD) also returns true with
  /// a synthesized status (exit_code kUnreapableExitCode, reap_errno set) —
  /// returning false forever would wedge the caller's restart loop on a
  /// slot that can never be reaped.
  bool try_wait(ExitStatus* status);
  /// Blocking reap. Terminal waitpid errors synthesize a status the same
  /// way try_wait does (never silently reported as a clean exit 0).
  ExitStatus wait();

  void close_stdin();
  void close_pipes();

 private:
  /// Caches a synthesized terminal status after an unrecoverable waitpid
  /// error and logs the provenance (pid + errno) to stderr.
  void mark_unreapable(int err);

  pid_t pid_ = -1;
  int stdin_fd_ = -1;
  int stdout_fd_ = -1;
  bool reaped_ = false;
  ExitStatus exit_{};
};

}  // namespace fav
