#include "util/io.h"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <thread>

namespace fav::io {

namespace {

// Bounded retry budget for transient failures: 8 attempts with exponential
// backoff from 1 ms, capped at 50 ms per sleep (~170 ms worst case total).
constexpr int kMaxRetries = 8;

void backoff_sleep(int attempt) {
  std::uint64_t ms = 1ull << (attempt < 6 ? attempt : 6);
  if (ms > 50) ms = 50;
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

// --- chaos hook -----------------------------------------------------------

std::mutex g_chaos_mutex;
ChaosFile g_chaos;                 // fail_*_at == 0 means disabled
std::uint64_t g_write_calls = 0;   // physical fwrite attempts
std::uint64_t g_fsync_calls = 0;   // flush_and_fsync + fsync_dir operations

/// Returns the errno to inject for this physical write attempt, or 0.
int chaos_next_write_error() {
  std::lock_guard<std::mutex> lock(g_chaos_mutex);
  if (g_chaos.fail_write_at == 0) return 0;
  ++g_write_calls;
  if (g_write_calls == g_chaos.fail_write_at ||
      (g_chaos.sticky && g_write_calls > g_chaos.fail_write_at)) {
    return g_chaos.error;
  }
  return 0;
}

int chaos_next_fsync_error() {
  std::lock_guard<std::mutex> lock(g_chaos_mutex);
  if (g_chaos.fail_fsync_at == 0) return 0;
  ++g_fsync_calls;
  if (g_fsync_calls == g_chaos.fail_fsync_at ||
      (g_chaos.sticky && g_fsync_calls > g_chaos.fail_fsync_at)) {
    return g_chaos.error;
  }
  return 0;
}

// --- CRC32C ---------------------------------------------------------------

std::array<std::uint32_t, 256> make_crc32c_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int k = 0; k < 8; ++k) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0x82F63B78u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t len, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_crc32c_table();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < len; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ p[i]) & 0xFFu];
  }
  return ~crc;
}

std::uint64_t fnv1a64(const void* data, std::size_t len, std::uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ull;
  }
  return h;
}

bool get_string(const std::string& data, std::size_t* offset,
                std::string* value, std::uint32_t max_len) {
  std::uint32_t len = 0;
  if (!get_le(data, offset, &len)) return false;
  if (len > max_len || data.size() - *offset < len) return false;
  value->assign(data.data() + *offset, len);
  *offset += len;
  return true;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

void chaos_install(const ChaosFile& chaos) {
  std::lock_guard<std::mutex> lock(g_chaos_mutex);
  g_chaos = chaos;
  g_write_calls = 0;
  g_fsync_calls = 0;
}

void chaos_reset() {
  std::lock_guard<std::mutex> lock(g_chaos_mutex);
  g_chaos = ChaosFile{};
  g_write_calls = 0;
  g_fsync_calls = 0;
}

bool errno_is_transient(int err) {
  return err == EINTR || err == EAGAIN || err == EWOULDBLOCK;
}

bool errno_is_storage_full(int err) {
  return err == ENOSPC || err == EDQUOT || err == EIO;
}

namespace {

// Overload dispatch over the two strerror_r flavors: XSI returns int (0 on
// success), GNU returns a char* that may point at either `buf` or a static
// (but immutable) string. Which one <string.h> declares depends on feature
// macros, so resolve it at compile time instead of guessing.
[[maybe_unused]] std::string strerror_pick(int rc, const char* buf, int err) {
  if (rc == 0) return buf;
  return "unknown error " + std::to_string(err);
}

[[maybe_unused]] std::string strerror_pick(const char* msg,
                                           const char* /*buf*/, int err) {
  if (msg != nullptr) return msg;
  return "unknown error " + std::to_string(err);
}

}  // namespace

std::string errno_message(int err) {
  char buf[256];
  buf[0] = '\0';
  return strerror_pick(::strerror_r(err, buf, sizeof(buf)), buf, err);
}

Status status_from_errno(int err, const std::string& what) {
  const ErrorCode code = errno_is_storage_full(err) ? ErrorCode::kStorageFull
                                                    : ErrorCode::kIoError;
  return Status(code, what + ": " + errno_message(err) + " (errno " +
                          std::to_string(err) + ")");
}

Status write_all(std::FILE* f, const void* data, std::size_t len,
                 const std::string& what) {
  const char* p = static_cast<const char*>(data);
  std::size_t remaining = len;
  int attempts = 0;
  while (remaining > 0) {
    if (const int injected = chaos_next_write_error()) {
      if (errno_is_transient(injected) && attempts < kMaxRetries) {
        backoff_sleep(attempts++);
        continue;
      }
      return status_from_errno(injected, "write " + what);
    }
    errno = 0;
    const std::size_t n = std::fwrite(p, 1, remaining, f);
    p += n;
    remaining -= n;
    if (remaining == 0) break;
    if (n > 0) attempts = 0;  // progress: a fresh retry budget
    const int err = errno != 0 ? errno : EIO;
    if (errno_is_transient(err) && attempts < kMaxRetries) {
      std::clearerr(f);
      backoff_sleep(attempts++);
      continue;
    }
    return status_from_errno(err, "write " + what);
  }
  return Status::ok();
}

Status flush_and_fsync(std::FILE* f, const std::string& what) {
  for (int attempts = 0;; ++attempts) {
    if (const int injected = chaos_next_fsync_error()) {
      if (errno_is_transient(injected) && attempts < kMaxRetries) {
        backoff_sleep(attempts);
        continue;
      }
      return status_from_errno(injected, "fsync " + what);
    }
    errno = 0;
    if (std::fflush(f) == 0 && ::fsync(fileno(f)) == 0) return Status::ok();
    const int err = errno != 0 ? errno : EIO;
    if (errno_is_transient(err) && attempts < kMaxRetries) {
      std::clearerr(f);
      backoff_sleep(attempts);
      continue;
    }
    return status_from_errno(err, "fsync " + what);
  }
}

Status fsync_dir(const std::string& dir) {
  if (const int injected = chaos_next_fsync_error()) {
    return status_from_errno(injected, "fsync directory " + dir);
  }
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) {
    return status_from_errno(errno, "open directory " + dir + " for fsync");
  }
  int rc;
  do {
    rc = ::fsync(fd);
  } while (rc != 0 && errno == EINTR);
  const int err = errno;
  ::close(fd);
  if (rc != 0) return status_from_errno(err, "fsync directory " + dir);
  return Status::ok();
}

Status atomic_write_file(const std::string& path, const std::string& contents) {
  const std::filesystem::path target(path);
  std::error_code ec;
  if (target.has_parent_path()) {
    std::filesystem::create_directories(target.parent_path(), ec);
    // A failure here surfaces as the fopen error below, with a better errno.
  }
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return status_from_errno(errno, "open " + tmp + " for writing");
  }
  Status st = write_all(f, contents.data(), contents.size(), tmp);
  if (st.is_ok()) st = flush_and_fsync(f, tmp);
  std::fclose(f);
  if (!st.is_ok()) {
    std::remove(tmp.c_str());
    return st;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const Status renamed =
        status_from_errno(errno, "rename " + tmp + " over " + path);
    std::remove(tmp.c_str());
    return renamed;
  }
  const std::string parent =
      target.has_parent_path() ? target.parent_path().string() : ".";
  return fsync_dir(parent);
}

Result<std::string> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return status_from_errno(errno, "open " + path + " for reading");
  }
  struct Closer {
    std::FILE* f;
    ~Closer() { std::fclose(f); }
  } closer{f};
  std::string contents;
  char buf[1 << 16];
  for (;;) {
    const std::size_t n = std::fread(buf, 1, sizeof(buf), f);
    contents.append(buf, n);
    if (n < sizeof(buf)) {
      if (std::ferror(f) != 0) {
        return status_from_errno(errno != 0 ? errno : EIO, "read " + path);
      }
      break;
    }
  }
  return contents;
}

Status FileLock::acquire(const std::string& path, std::uint64_t timeout_ms) {
  FAV_CHECK(fd_ < 0);
  const int fd = ::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
  if (fd < 0) {
    return status_from_errno(errno, "open lock file " + path);
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  std::uint64_t backoff_ms = 5;
  for (;;) {
    if (::flock(fd, LOCK_EX | LOCK_NB) == 0) {
      fd_ = fd;
      return Status::ok();
    }
    if (errno != EWOULDBLOCK && errno != EINTR) {
      const int err = errno;
      ::close(fd);
      return status_from_errno(err, "flock " + path);
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      ::close(fd);
      return Status(ErrorCode::kDeadlineExceeded,
                    "timed out after " + std::to_string(timeout_ms) +
                        " ms waiting for lock " + path);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    if (backoff_ms < 200) backoff_ms *= 2;
  }
}

void FileLock::release() {
  if (fd_ >= 0) {
    ::flock(fd_, LOCK_UN);
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace fav::io
