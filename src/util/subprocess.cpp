#include "util/subprocess.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "util/io.h"
#include "util/metrics.h"

#ifdef __linux__
#include <sys/prctl.h>
#endif

namespace fav {

namespace {

/// Restartable write of the remaining tail after an EINTR/short write.
/// Returns 0 on success, else the errno of the failing write(2) — captured
/// at the call site, because by the time the caller formats an error the
/// global errno may have been clobbered by an intervening retry or by
/// another thread's syscall.
int write_all(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno != 0 ? errno : EIO;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return 0;
}

}  // namespace

Status write_frame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) {
    return Status(ErrorCode::kInvalidArgument, "frame exceeds kMaxFrameBytes");
  }
  // One contiguous buffer, one write(2): frames below PIPE_BUF are atomic on
  // a pipe, so concurrent heartbeats from worker threads never interleave.
  std::string buf;
  buf.reserve(sizeof(std::uint32_t) + payload.size());
  const auto len = static_cast<std::uint32_t>(payload.size());
  buf.append(reinterpret_cast<const char*>(&len), sizeof(len));
  buf.append(payload.data(), payload.size());
  if (const int err = write_all(fd, buf.data(), buf.size())) {
    return Status(ErrorCode::kSubprocessFailed,
                  "pipe write failed: " + io::errno_message(err));
  }
  return Status::ok();
}

Status write_frame_deadline(int fd, std::string_view payload, int timeout_ms) {
  if (payload.size() > kMaxFrameBytes) {
    return Status(ErrorCode::kInvalidArgument, "frame exceeds kMaxFrameBytes");
  }
  std::string buf;
  buf.reserve(sizeof(std::uint32_t) + payload.size());
  const auto len = static_cast<std::uint32_t>(payload.size());
  buf.append(reinterpret_cast<const char*>(&len), sizeof(len));
  buf.append(payload.data(), payload.size());
  const char* data = buf.data();
  std::size_t left = buf.size();
  const std::uint64_t deadline_ns =
      timeout_ms < 0
          ? 0
          : monotonic_ns() + static_cast<std::uint64_t>(timeout_ms) * 1'000'000ull;
  while (left > 0) {
    const ssize_t n = ::write(fd, data, left);
    if (n >= 0) {
      data += n;
      left -= static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno != EAGAIN && errno != EWOULDBLOCK) {
      return Status(ErrorCode::kSubprocessFailed,
                    "socket write failed: " + io::errno_message(errno));
    }
    int wait_ms = -1;
    if (timeout_ms >= 0) {
      const std::uint64_t now = monotonic_ns();
      if (now >= deadline_ns) {
        return Status(ErrorCode::kDeadlineExceeded,
                      "frame write timed out (peer not draining)");
      }
      wait_ms = static_cast<int>((deadline_ns - now) / 1'000'000ull) + 1;
    }
    struct pollfd pfd {};
    pfd.fd = fd;
    pfd.events = POLLOUT;
    const int rc = ::poll(&pfd, 1, wait_ms);
    if (rc < 0 && errno != EINTR) {
      return Status(ErrorCode::kSubprocessFailed,
                    "poll failed: " + io::errno_message(errno));
    }
    if (rc == 0) {
      return Status(ErrorCode::kDeadlineExceeded,
                    "frame write timed out (peer not draining)");
    }
  }
  return Status::ok();
}

bool FrameBuffer::next(std::string* payload) {
  if (corrupt_) return false;
  // Compact the consumed prefix once it dominates the buffer.
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  if (buf_.size() - pos_ < sizeof(std::uint32_t)) return false;
  std::uint32_t len = 0;
  std::memcpy(&len, buf_.data() + pos_, sizeof(len));
  if (len > kMaxFrameBytes) {
    corrupt_ = true;
    return false;
  }
  if (buf_.size() - pos_ < sizeof(len) + len) return false;
  payload->assign(buf_.data() + pos_ + sizeof(len), len);
  pos_ += sizeof(len) + len;
  return true;
}

bool drain_into(int fd, FrameBuffer& buf) {
  char chunk[4096];
  const ssize_t n = ::read(fd, chunk, sizeof(chunk));
  if (n < 0) return errno == EINTR || errno == EAGAIN;
  if (n == 0) return false;  // EOF: peer is gone
  buf.feed(chunk, static_cast<std::size_t>(n));
  return true;
}

Result<std::string> read_frame(int fd, FrameBuffer& buf, int timeout_ms) {
  std::string payload;
  for (;;) {
    if (buf.next(&payload)) return payload;
    if (buf.corrupt()) {
      return Status(ErrorCode::kSubprocessFailed,
                    "corrupt frame stream (length prefix out of range)");
    }
    struct pollfd pfd {};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) {
        // A signal (e.g. the graceful-stop handler) interrupted the wait;
        // surface it as a timeout so the caller re-checks its stop flag.
        return Status(ErrorCode::kDeadlineExceeded,
                      "frame read interrupted by signal");
      }
      return Status(ErrorCode::kSubprocessFailed,
                    "poll failed: " + io::errno_message(errno));
    }
    if (rc == 0) {
      return Status(ErrorCode::kDeadlineExceeded, "frame read timed out");
    }
    if (!drain_into(fd, buf)) {
      return Status(ErrorCode::kSubprocessFailed,
                    "pipe closed before a complete frame arrived");
    }
  }
}

Result<Subprocess> Subprocess::spawn(const std::vector<std::string>& argv) {
  if (argv.empty()) {
    return Status(ErrorCode::kInvalidArgument, "spawn requires an argv");
  }
  int to_child[2];    // parent writes -> child stdin
  int from_child[2];  // child stdout -> parent reads
  // O_CLOEXEC on both pipes: a later fork/exec (sibling worker, serve
  // client) must not inherit these fds. The child's own copies survive the
  // exec because dup2 onto stdin/stdout clears the flag on the duplicates.
  if (::pipe2(to_child, O_CLOEXEC) != 0) {
    return Status(ErrorCode::kSubprocessFailed,
                  "pipe2 failed: " + io::errno_message(errno));
  }
  if (::pipe2(from_child, O_CLOEXEC) != 0) {
    const int err = errno;
    ::close(to_child[0]);
    ::close(to_child[1]);
    return Status(ErrorCode::kSubprocessFailed,
                  "pipe2 failed: " + io::errno_message(err));
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    for (const int fd : {to_child[0], to_child[1], from_child[0],
                         from_child[1]}) {
      ::close(fd);
    }
    return Status(ErrorCode::kSubprocessFailed,
                  "fork failed: " + io::errno_message(errno));
  }
  if (pid == 0) {
    // Child: wire the pipes onto stdin/stdout, close every parent end, and
    // exec. Only async-signal-safe calls between fork and exec.
#ifdef __linux__
    ::prctl(PR_SET_PDEATHSIG, SIGTERM);
#endif
    ::dup2(to_child[0], STDIN_FILENO);
    ::dup2(from_child[1], STDOUT_FILENO);
    for (const int fd : {to_child[0], to_child[1], from_child[0],
                         from_child[1]}) {
      ::close(fd);
    }
    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (const std::string& a : argv) {
      cargv.push_back(const_cast<char*>(a.c_str()));
    }
    cargv.push_back(nullptr);
    ::execvp(cargv[0], cargv.data());
    _exit(127);  // exec failed; 127 mirrors the shell convention
  }
  ::close(to_child[0]);
  ::close(from_child[1]);
  Subprocess child;
  child.pid_ = pid;
  child.stdin_fd_ = to_child[1];
  child.stdout_fd_ = from_child[0];
  return child;
}

Subprocess& Subprocess::operator=(Subprocess&& other) noexcept {
  if (this != &other) {
    close_pipes();
    pid_ = other.pid_;
    stdin_fd_ = other.stdin_fd_;
    stdout_fd_ = other.stdout_fd_;
    reaped_ = other.reaped_;
    exit_ = other.exit_;
    other.pid_ = -1;
    other.stdin_fd_ = -1;
    other.stdout_fd_ = -1;
    other.reaped_ = false;
  }
  return *this;
}

void Subprocess::kill(int sig) {
  if (pid_ > 0 && !reaped_) ::kill(pid_, sig);
}

bool Subprocess::try_wait(ExitStatus* status) {
  if (reaped_) {
    *status = exit_;
    return true;
  }
  if (pid_ <= 0) return false;
  int wstatus = 0;
  const pid_t rc = ::waitpid(pid_, &wstatus, WNOHANG);
  if (rc == 0) return false;  // still running
  if (rc < 0) {
    if (errno == EINTR) return false;  // retry on the next poll tick
    // Terminal waitpid failure (ECHILD: SIGCHLD is SIG_IGN, or something
    // else already reaped the pid). The real status is gone; returning
    // false forever would wedge the caller on an unreapable slot, so
    // synthesize a terminal status and record where it came from.
    mark_unreapable(errno);
    *status = exit_;
    return true;
  }
  reaped_ = true;
  exit_.signaled = WIFSIGNALED(wstatus);
  exit_.exit_code = WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : 0;
  exit_.term_signal = exit_.signaled ? WTERMSIG(wstatus) : 0;
  *status = exit_;
  return true;
}

Subprocess::ExitStatus Subprocess::wait() {
  if (reaped_ || pid_ <= 0) return exit_;
  int wstatus = 0;
  pid_t rc;
  do {
    rc = ::waitpid(pid_, &wstatus, 0);
  } while (rc < 0 && errno == EINTR);
  if (rc == pid_) {
    reaped_ = true;
    exit_.signaled = WIFSIGNALED(wstatus);
    exit_.exit_code = WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : 0;
    exit_.term_signal = exit_.signaled ? WTERMSIG(wstatus) : 0;
  } else {
    mark_unreapable(rc < 0 ? errno : 0);
  }
  return exit_;
}

void Subprocess::mark_unreapable(int err) {
  std::fprintf(stderr,
               "fav: waitpid(%d) failed: %s (errno %d); synthesizing exit "
               "status %d\n",
               static_cast<int>(pid_), io::errno_message(err).c_str(), err,
               kUnreapableExitCode);
  reaped_ = true;
  exit_.signaled = false;
  exit_.exit_code = kUnreapableExitCode;
  exit_.term_signal = 0;
  exit_.reap_errno = err != 0 ? err : ECHILD;
}

void Subprocess::close_stdin() {
  if (stdin_fd_ >= 0) {
    ::close(stdin_fd_);
    stdin_fd_ = -1;
  }
}

void Subprocess::close_pipes() {
  close_stdin();
  if (stdout_fd_ >= 0) {
    ::close(stdout_fd_);
    stdout_fd_ = -1;
  }
}

}  // namespace fav
