#include "util/subprocess.h"

#include <errno.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>

#ifdef __linux__
#include <sys/prctl.h>
#endif

namespace fav {

namespace {

/// Restartable write of the remaining tail after an EINTR/short write.
bool write_all(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

Status write_frame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) {
    return Status(ErrorCode::kInvalidArgument, "frame exceeds kMaxFrameBytes");
  }
  // One contiguous buffer, one write(2): frames below PIPE_BUF are atomic on
  // a pipe, so concurrent heartbeats from worker threads never interleave.
  std::string buf;
  buf.reserve(sizeof(std::uint32_t) + payload.size());
  const auto len = static_cast<std::uint32_t>(payload.size());
  buf.append(reinterpret_cast<const char*>(&len), sizeof(len));
  buf.append(payload.data(), payload.size());
  if (!write_all(fd, buf.data(), buf.size())) {
    return Status(ErrorCode::kSubprocessFailed,
                  std::string("pipe write failed: ") + std::strerror(errno));
  }
  return Status::ok();
}

bool FrameBuffer::next(std::string* payload) {
  if (corrupt_) return false;
  // Compact the consumed prefix once it dominates the buffer.
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  if (buf_.size() - pos_ < sizeof(std::uint32_t)) return false;
  std::uint32_t len = 0;
  std::memcpy(&len, buf_.data() + pos_, sizeof(len));
  if (len > kMaxFrameBytes) {
    corrupt_ = true;
    return false;
  }
  if (buf_.size() - pos_ < sizeof(len) + len) return false;
  payload->assign(buf_.data() + pos_ + sizeof(len), len);
  pos_ += sizeof(len) + len;
  return true;
}

bool drain_into(int fd, FrameBuffer& buf) {
  char chunk[4096];
  const ssize_t n = ::read(fd, chunk, sizeof(chunk));
  if (n < 0) return errno == EINTR || errno == EAGAIN;
  if (n == 0) return false;  // EOF: peer is gone
  buf.feed(chunk, static_cast<std::size_t>(n));
  return true;
}

Result<std::string> read_frame(int fd, FrameBuffer& buf, int timeout_ms) {
  std::string payload;
  for (;;) {
    if (buf.next(&payload)) return payload;
    if (buf.corrupt()) {
      return Status(ErrorCode::kSubprocessFailed,
                    "corrupt frame stream (length prefix out of range)");
    }
    struct pollfd pfd {};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) {
        // A signal (e.g. the graceful-stop handler) interrupted the wait;
        // surface it as a timeout so the caller re-checks its stop flag.
        return Status(ErrorCode::kDeadlineExceeded,
                      "frame read interrupted by signal");
      }
      return Status(ErrorCode::kSubprocessFailed,
                    std::string("poll failed: ") + std::strerror(errno));
    }
    if (rc == 0) {
      return Status(ErrorCode::kDeadlineExceeded, "frame read timed out");
    }
    if (!drain_into(fd, buf)) {
      return Status(ErrorCode::kSubprocessFailed,
                    "pipe closed before a complete frame arrived");
    }
  }
}

Result<Subprocess> Subprocess::spawn(const std::vector<std::string>& argv) {
  if (argv.empty()) {
    return Status(ErrorCode::kInvalidArgument, "spawn requires an argv");
  }
  int to_child[2];    // parent writes -> child stdin
  int from_child[2];  // child stdout -> parent reads
  if (::pipe(to_child) != 0) {
    return Status(ErrorCode::kSubprocessFailed,
                  std::string("pipe failed: ") + std::strerror(errno));
  }
  if (::pipe(from_child) != 0) {
    ::close(to_child[0]);
    ::close(to_child[1]);
    return Status(ErrorCode::kSubprocessFailed,
                  std::string("pipe failed: ") + std::strerror(errno));
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    for (const int fd : {to_child[0], to_child[1], from_child[0],
                         from_child[1]}) {
      ::close(fd);
    }
    return Status(ErrorCode::kSubprocessFailed,
                  std::string("fork failed: ") + std::strerror(errno));
  }
  if (pid == 0) {
    // Child: wire the pipes onto stdin/stdout, close every parent end, and
    // exec. Only async-signal-safe calls between fork and exec.
#ifdef __linux__
    ::prctl(PR_SET_PDEATHSIG, SIGTERM);
#endif
    ::dup2(to_child[0], STDIN_FILENO);
    ::dup2(from_child[1], STDOUT_FILENO);
    for (const int fd : {to_child[0], to_child[1], from_child[0],
                         from_child[1]}) {
      ::close(fd);
    }
    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (const std::string& a : argv) {
      cargv.push_back(const_cast<char*>(a.c_str()));
    }
    cargv.push_back(nullptr);
    ::execvp(cargv[0], cargv.data());
    _exit(127);  // exec failed; 127 mirrors the shell convention
  }
  ::close(to_child[0]);
  ::close(from_child[1]);
  Subprocess child;
  child.pid_ = pid;
  child.stdin_fd_ = to_child[1];
  child.stdout_fd_ = from_child[0];
  return child;
}

Subprocess& Subprocess::operator=(Subprocess&& other) noexcept {
  if (this != &other) {
    close_pipes();
    pid_ = other.pid_;
    stdin_fd_ = other.stdin_fd_;
    stdout_fd_ = other.stdout_fd_;
    reaped_ = other.reaped_;
    exit_ = other.exit_;
    other.pid_ = -1;
    other.stdin_fd_ = -1;
    other.stdout_fd_ = -1;
    other.reaped_ = false;
  }
  return *this;
}

void Subprocess::kill(int sig) {
  if (pid_ > 0 && !reaped_) ::kill(pid_, sig);
}

bool Subprocess::try_wait(ExitStatus* status) {
  if (reaped_) {
    *status = exit_;
    return true;
  }
  if (pid_ <= 0) return false;
  int wstatus = 0;
  const pid_t rc = ::waitpid(pid_, &wstatus, WNOHANG);
  if (rc != pid_) return false;
  reaped_ = true;
  exit_.signaled = WIFSIGNALED(wstatus);
  exit_.exit_code = WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : 0;
  exit_.term_signal = exit_.signaled ? WTERMSIG(wstatus) : 0;
  *status = exit_;
  return true;
}

Subprocess::ExitStatus Subprocess::wait() {
  if (reaped_ || pid_ <= 0) return exit_;
  int wstatus = 0;
  pid_t rc;
  do {
    rc = ::waitpid(pid_, &wstatus, 0);
  } while (rc < 0 && errno == EINTR);
  reaped_ = true;
  if (rc == pid_) {
    exit_.signaled = WIFSIGNALED(wstatus);
    exit_.exit_code = WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : 0;
    exit_.term_signal = exit_.signaled ? WTERMSIG(wstatus) : 0;
  }
  return exit_;
}

void Subprocess::close_stdin() {
  if (stdin_fd_ >= 0) {
    ::close(stdin_fd_);
    stdin_fd_ = -1;
  }
}

void Subprocess::close_pipes() {
  close_stdin();
  if (stdout_fd_ >= 0) {
    ::close(stdout_fd_);
    stdout_fd_ = -1;
  }
}

}  // namespace fav
