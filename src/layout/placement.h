// Physical placement model for the radiation fault technique.
//
// Radiation-based injection (paper Section 3.2) is parameterized by a spot
// center g and radius r; the impacted gates are those whose placed location
// falls inside the radiated disc (following [18]). A real flow would take
// coordinates from the P&R database; here we synthesize a deterministic
// levelized placement: combinational gates sit in columns by logic level,
// and each sequential cell sits in the column of the logic driving its D
// input (registers interleave with the datapath). Cells advance within a
// column by their footprint — flip-flops are several gate-heights tall — so
// cell density, and with it the multi-cell-upset rate, is realistic.
//
// Radius queries are served by a uniform grid built once at construction:
// every placed cell is bucketed by position (bucket edge = one gate pitch),
// and a query visits only the buckets overlapping the disc's bounding box.
// The Monte Carlo engine and the pre-characterization loops issue one query
// per sample / per candidate center, so this is a hot path.
#pragma once

#include <vector>

#include "netlist/netlist.h"

namespace fav::layout {

struct Point {
  double x = 0;
  double y = 0;
};

class Placement {
 public:
  /// `dff_height` is the sequential-cell footprint in units of the gate
  /// pitch (standard-cell DFFs are ~3-6 gate-equivalents tall).
  explicit Placement(const netlist::Netlist& nl, double cell_pitch = 1.0,
                     double dff_height = 3.0);

  /// Gates and DFFs are placed; primary inputs and constants are not.
  bool is_placed(netlist::NodeId id) const;
  Point position(netlist::NodeId id) const;

  /// All placed cells, ascending id.
  const std::vector<netlist::NodeId>& placed_nodes() const { return placed_; }

  /// Placed cells within Euclidean distance `radius` of `center`
  /// (the radiated region), ascending id.
  std::vector<netlist::NodeId> nodes_within(Point center, double radius) const;
  std::vector<netlist::NodeId> nodes_within(netlist::NodeId center,
                                            double radius) const;
  /// Allocation-free variant for query loops: `out` is cleared and refilled.
  void nodes_within(Point center, double radius,
                    std::vector<netlist::NodeId>& out) const;
  void nodes_within(netlist::NodeId center, double radius,
                    std::vector<netlist::NodeId>& out) const;

  double width() const { return width_; }
  double height() const { return height_; }

 private:
  std::size_t bucket_x(double x) const;
  std::size_t bucket_y(double y) const;

  double pitch_;
  std::vector<Point> positions_;   // indexed by NodeId
  std::vector<char> placed_mask_;  // indexed by NodeId
  std::vector<netlist::NodeId> placed_;
  double width_ = 0;
  double height_ = 0;

  // Uniform grid over the die area (CSR layout: bucket b holds the ids in
  // items_[start_[b] .. start_[b+1]), ascending id within a bucket).
  double cell_ = 1.0;  // bucket edge length
  std::size_t nx_ = 1;
  std::size_t ny_ = 1;
  std::vector<std::size_t> bucket_start_;
  std::vector<netlist::NodeId> bucket_items_;
};

}  // namespace fav::layout
