// Physical placement model for the radiation fault technique.
//
// Radiation-based injection (paper Section 3.2) is parameterized by a spot
// center g and radius r; the impacted gates are those whose placed location
// falls inside the radiated disc (following [18]). A real flow would take
// coordinates from the P&R database; here we synthesize a deterministic
// levelized placement: combinational gates sit in columns by logic level,
// and each sequential cell sits in the column of the logic driving its D
// input (registers interleave with the datapath). Cells advance within a
// column by their footprint — flip-flops are several gate-heights tall — so
// cell density, and with it the multi-cell-upset rate, is realistic.
#pragma once

#include <vector>

#include "netlist/netlist.h"

namespace fav::layout {

struct Point {
  double x = 0;
  double y = 0;
};

class Placement {
 public:
  /// `dff_height` is the sequential-cell footprint in units of the gate
  /// pitch (standard-cell DFFs are ~3-6 gate-equivalents tall).
  explicit Placement(const netlist::Netlist& nl, double cell_pitch = 1.0,
                     double dff_height = 3.0);

  /// Gates and DFFs are placed; primary inputs and constants are not.
  bool is_placed(netlist::NodeId id) const;
  Point position(netlist::NodeId id) const;

  /// All placed cells, ascending id.
  const std::vector<netlist::NodeId>& placed_nodes() const { return placed_; }

  /// Placed cells within Euclidean distance `radius` of `center`
  /// (the radiated region).
  std::vector<netlist::NodeId> nodes_within(Point center, double radius) const;
  std::vector<netlist::NodeId> nodes_within(netlist::NodeId center,
                                            double radius) const;

  double width() const { return width_; }
  double height() const { return height_; }

 private:
  struct Cell {
    double y = 0;
    netlist::NodeId id = 0;
  };
  struct Column {
    double x = 0;
    std::vector<Cell> cells;  // ascending y
  };

  double pitch_;
  std::vector<Point> positions_;   // indexed by NodeId
  std::vector<char> placed_mask_;  // indexed by NodeId
  std::vector<netlist::NodeId> placed_;
  std::vector<Column> columns_;
  double width_ = 0;
  double height_ = 0;
};

}  // namespace fav::layout
