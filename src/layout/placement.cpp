#include "layout/placement.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace fav::layout {

using netlist::CellType;
using netlist::NodeId;

Placement::Placement(const netlist::Netlist& nl, double cell_pitch,
                     double dff_height)
    : pitch_(cell_pitch) {
  FAV_ENSURE(cell_pitch > 0);
  FAV_ENSURE(dff_height >= 1.0);
  positions_.resize(nl.node_count());
  placed_mask_.assign(nl.node_count(), 0);

  const auto& levels = nl.levels();
  const int max_level = nl.max_level();
  std::vector<double> cursor(static_cast<std::size_t>(max_level) + 1, 0.0);

  // Combinational gates go to their logic-level column; each DFF sits next
  // to the logic that drives its D input (real placers keep registers close
  // to their input cones), interleaving sequential cells with the datapath.
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    const CellType t = nl.node(id).type;
    int col = -1;
    double footprint = pitch_;
    if (t == CellType::kDff) {
      const auto& fanins = nl.node(id).fanins;
      col = fanins.empty() ? 0 : levels[fanins[0]];
      footprint = pitch_ * dff_height;
    } else if (netlist::is_combinational_gate(t)) {
      col = levels[id];
    }
    if (col < 0) continue;
    auto& y = cursor[static_cast<std::size_t>(col)];
    positions_[id] = {pitch_ * col, y};
    y += footprint;
    placed_mask_[id] = 1;
    placed_.push_back(id);
    height_ = std::max(height_, positions_[id].y);
  }
  width_ = pitch_ * max_level;

  // Build the uniform grid. One pitch per bucket keeps buckets small (a few
  // cells) while typical query radii (~1-2 pitches) touch only a handful of
  // buckets.
  cell_ = pitch_;
  nx_ = static_cast<std::size_t>(std::floor(width_ / cell_)) + 1;
  ny_ = static_cast<std::size_t>(std::floor(height_ / cell_)) + 1;
  std::vector<std::size_t> count(nx_ * ny_ + 1, 0);
  auto bucket_of = [&](NodeId id) {
    return bucket_y(positions_[id].y) * nx_ + bucket_x(positions_[id].x);
  };
  for (const NodeId id : placed_) ++count[bucket_of(id) + 1];
  for (std::size_t b = 1; b < count.size(); ++b) count[b] += count[b - 1];
  bucket_start_ = count;
  bucket_items_.resize(placed_.size());
  // placed_ ascends by id, so each bucket's slice also ascends by id.
  std::vector<std::size_t> fill = bucket_start_;
  for (const NodeId id : placed_) bucket_items_[fill[bucket_of(id)]++] = id;
}

std::size_t Placement::bucket_x(double x) const {
  const double b = std::floor(std::max(x, 0.0) / cell_);
  return std::min(nx_ - 1, static_cast<std::size_t>(b));
}

std::size_t Placement::bucket_y(double y) const {
  const double b = std::floor(std::max(y, 0.0) / cell_);
  return std::min(ny_ - 1, static_cast<std::size_t>(b));
}

bool Placement::is_placed(NodeId id) const {
  FAV_ENSURE(id < placed_mask_.size());
  return placed_mask_[id] != 0;
}

Point Placement::position(NodeId id) const {
  FAV_ENSURE_MSG(is_placed(id), "node " << id << " is not placed");
  return positions_[id];
}

void Placement::nodes_within(Point center, double radius,
                             std::vector<NodeId>& out) const {
  FAV_ENSURE(radius >= 0);
  out.clear();
  const double r2 = radius * radius;
  // Buckets overlapping the disc's bounding box; the box is clamped to the
  // grid, so centers outside the die still work.
  const std::size_t bx_lo = bucket_x(center.x - radius);
  const std::size_t bx_hi = bucket_x(center.x + radius);
  const std::size_t by_lo = bucket_y(center.y - radius);
  const std::size_t by_hi = bucket_y(center.y + radius);
  for (std::size_t by = by_lo; by <= by_hi; ++by) {
    for (std::size_t bx = bx_lo; bx <= bx_hi; ++bx) {
      const std::size_t b = by * nx_ + bx;
      for (std::size_t i = bucket_start_[b]; i < bucket_start_[b + 1]; ++i) {
        const NodeId id = bucket_items_[i];
        const double dx = positions_[id].x - center.x;
        const double dy = positions_[id].y - center.y;
        if (dx * dx + dy * dy <= r2) out.push_back(id);
      }
    }
  }
  // Buckets are visited row-major, so ids arrive out of order across rows.
  std::sort(out.begin(), out.end());
}

std::vector<NodeId> Placement::nodes_within(Point center, double radius) const {
  std::vector<NodeId> out;
  nodes_within(center, radius, out);
  return out;
}

void Placement::nodes_within(NodeId center, double radius,
                             std::vector<NodeId>& out) const {
  nodes_within(position(center), radius, out);
}

std::vector<NodeId> Placement::nodes_within(NodeId center,
                                            double radius) const {
  return nodes_within(position(center), radius);
}

}  // namespace fav::layout
