#include "layout/placement.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace fav::layout {

using netlist::CellType;
using netlist::NodeId;

Placement::Placement(const netlist::Netlist& nl, double cell_pitch,
                     double dff_height)
    : pitch_(cell_pitch) {
  FAV_CHECK(cell_pitch > 0);
  FAV_CHECK(dff_height >= 1.0);
  positions_.resize(nl.node_count());
  placed_mask_.assign(nl.node_count(), 0);

  const auto& levels = nl.levels();
  const int max_level = nl.max_level();
  columns_.resize(static_cast<std::size_t>(max_level) + 1);
  std::vector<double> cursor(columns_.size(), 0.0);
  for (int c = 0; c <= max_level; ++c) {
    columns_[static_cast<std::size_t>(c)].x = pitch_ * c;
  }

  // Combinational gates go to their logic-level column; each DFF sits next
  // to the logic that drives its D input (real placers keep registers close
  // to their input cones), interleaving sequential cells with the datapath.
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    const CellType t = nl.node(id).type;
    int col = -1;
    double footprint = pitch_;
    if (t == CellType::kDff) {
      const auto& fanins = nl.node(id).fanins;
      col = fanins.empty() ? 0 : levels[fanins[0]];
      footprint = pitch_ * dff_height;
    } else if (netlist::is_combinational_gate(t)) {
      col = levels[id];
    }
    if (col < 0) continue;
    auto& column = columns_[static_cast<std::size_t>(col)];
    auto& y = cursor[static_cast<std::size_t>(col)];
    positions_[id] = {column.x, y};
    column.cells.push_back({y, id});
    y += footprint;
    placed_mask_[id] = 1;
    placed_.push_back(id);
    height_ = std::max(height_, positions_[id].y);
  }
  width_ = pitch_ * max_level;
}

bool Placement::is_placed(NodeId id) const {
  FAV_CHECK(id < placed_mask_.size());
  return placed_mask_[id] != 0;
}

Point Placement::position(NodeId id) const {
  FAV_CHECK_MSG(is_placed(id), "node " << id << " is not placed");
  return positions_[id];
}

std::vector<NodeId> Placement::nodes_within(Point center, double radius) const {
  FAV_CHECK(radius >= 0);
  std::vector<NodeId> out;
  for (const Column& col : columns_) {
    const double dx = col.x - center.x;
    if (std::abs(dx) > radius) continue;
    const double dy_max = std::sqrt(radius * radius - dx * dx);
    const auto lo = std::lower_bound(
        col.cells.begin(), col.cells.end(), center.y - dy_max,
        [](const Cell& c, double y) { return c.y < y; });
    for (auto it = lo; it != col.cells.end() && it->y <= center.y + dy_max;
         ++it) {
      out.push_back(it->id);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<NodeId> Placement::nodes_within(NodeId center,
                                            double radius) const {
  return nodes_within(position(center), radius);
}

}  // namespace fav::layout
