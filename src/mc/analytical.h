// Analytical outcome evaluation for errors confined to memory-type registers
// (paper Section 4, Observation 3; Fig. 5 step 6).
//
// When the latched fault hits only memory-type registers, the attack outcome
// does not depend on the timing distance — it is fixed by the corrupted
// system configuration, the benchmark's access trace, and the security
// policy. The evaluator replays the golden run's data-access trace against
// the corrupted MPU state:
//   e = 1  iff  the benchmark's illegal access is now permitted,
//               every legitimate access remains permitted (a denied legal
//               access would set the sticky flag and expose the attack),
//               and the corrupted state itself does not flag a violation.
//
// Soundness preconditions (checked; nullopt = fall back to RTL simulation):
//  * no device-page write occurs at/after the injection cycle (the program
//    would overwrite the corrupted configuration),
//  * faults are limited to MPU configuration/status registers — the only
//    memory-type registers by construction of MCU16; values loaded by the
//    (now permitted) illegal access must not steer later control flow, which
//    holds because the benchmarks' aftermath is address-independent.
#pragma once

#include <optional>

#include "rtl/golden.h"
#include "soc/benchmark.h"

namespace fav::mc {

class AnalyticalEvaluator {
 public:
  /// `golden` must be the golden run of `bench.program`; both must outlive
  /// this object.
  AnalyticalEvaluator(const soc::SecurityBenchmark& bench,
                      const rtl::GoldenRun& golden);

  /// Decides the attack outcome for a fault whose post-injection state is
  /// `faulty` (architectural state at the beginning of cycle
  /// `first_faulty_cycle`). Returns nullopt when the preconditions do not
  /// hold and RTL simulation is required.
  std::optional<bool> evaluate(const rtl::ArchState& faulty,
                               std::uint64_t first_faulty_cycle) const;

  std::uint64_t target_cycle() const { return target_cycle_; }

 private:
  const soc::SecurityBenchmark* bench_;
  const rtl::GoldenRun* golden_;
  std::uint64_t target_cycle_ = 0;
};

}  // namespace fav::mc
