// Two-stage adaptive importance sampling.
//
// The pre-characterized g_{T,P} is built from structural predictions
// (correlations, lifetimes, analytical potency). A pilot run reveals where
// successes *actually* concentrate; the adaptive sampler refits the sampling
// distribution to the empirical success mass:
//
//   g2(t, c) ∝ smoothed_success_count(t-stratum, c) + floor,
//   mixed defensively with f (weights stay exact likelihood ratios, so the
//   second-stage estimate remains unbiased regardless of the pilot).
//
// Classic adaptive MC; exposed as an optional refinement on top of the
// paper's strategy (see bench_ablation).
#pragma once

#include <map>

#include "faultsim/clock_glitch.h"
#include "mc/evaluator.h"

namespace fav::mc {

struct AdaptiveConfig {
  /// Smoothing added to every observed center's success count.
  double smoothing = 0.25;
  /// Defensive f-mixture weight (bounds importance weights by 1/epsilon).
  double defensive_mix = 0.1;
  /// Timing strata: success counts are pooled over t within a stratum
  /// (individual (t, c) counts are too sparse after a short pilot).
  int t_stratum = 10;
};

class AdaptiveImportanceSampler final : public Sampler {
 public:
  /// Builds the refit distribution from `pilot` (any strategy's result with
  /// keep_records on). Throws if the pilot contains no successes — there is
  /// nothing to adapt to, keep using the pilot sampler instead.
  AdaptiveImportanceSampler(const faultsim::AttackModel& attack,
                            const SsfResult& pilot,
                            const AdaptiveConfig& config = {});

  faultsim::FaultSample draw(Rng& rng) override;
  const std::string& name() const override { return name_; }

  /// Joint pmf over (t stratum, center) including the defensive mixture.
  double g_pmf(int t, netlist::NodeId center) const;

 private:
  int stratum_of(int t) const;

  faultsim::AttackModel attack_;
  AdaptiveConfig config_;
  std::string name_ = "adaptive";
  int strata_ = 0;

  // Per-stratum weighted center table.
  struct Stratum {
    std::vector<netlist::NodeId> centers;
    std::vector<double> weights;
    DiscreteDistribution conditional;
    std::map<netlist::NodeId, int> index;
    double total = 0;
  };
  std::vector<Stratum> strata_tables_;
  DiscreteDistribution stratum_dist_;
};

/// Adaptive refit for the clock-glitch technique. The attack space is a
/// small finite (t, depth) grid, so no stratification is needed: the refit
/// distribution puts smoothing + pilot success mass on every cell and mixes
/// defensively with the uniform f, and samples carry exact f/g weights.
class AdaptiveGlitchSampler final : public Sampler {
 public:
  /// Builds the refit grid from `pilot` (a glitch run with keep_records on).
  /// Throws if the pilot contains no successes — nothing to adapt to; keep
  /// using the uniform GlitchSampler instead.
  AdaptiveGlitchSampler(const faultsim::ClockGlitchAttackModel& model,
                        std::uint64_t target_cycle, const SsfResult& pilot,
                        const AdaptiveConfig& config = {});

  faultsim::FaultSample draw(Rng& rng) override;
  const std::string& name() const override { return name_; }

  /// Joint pmf over (t, depth index) including the defensive mixture.
  double g_pmf(int t, std::size_t depth_index) const;

 private:
  std::size_t cell_of(int t, std::size_t depth_index) const;

  faultsim::ClockGlitchAttackModel model_;
  AdaptiveConfig config_;
  std::string name_ = "glitch-adaptive";
  DiscreteDistribution cell_dist_;  // over the flattened (t, depth) grid
};

}  // namespace fav::mc
