#include "mc/journal.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <iterator>

#include "util/io.h"

namespace fav::mc {

namespace {

// "FAVJRNL2": version 2 added the technique tag + depth to the record
// format; version-1 journals are rejected as header-corrupt rather than
// silently misparsed.
constexpr char kFileMagic[8] = {'F', 'A', 'V', 'J', 'R', 'N', 'L', '2'};
constexpr std::uint32_t kFrameMagic = 0x4652414Du;  // "MARF" on disk
// Garbage frames must not trigger huge allocations: no sane shard payload
// approaches this (a record is ~100 bytes, shards are a few hundred records).
constexpr std::uint32_t kMaxPayload = 1u << 28;

// Checksums and serialization come from the shared util/io layer; the
// journal keeps only its format knowledge (magic, frame layout) here.
using io::fnv1a64;
using io::get_le;
using io::get_string;
using io::put_le;

/// Journal writes report two failure classes: storage-full errnos keep
/// kStorageFull (the caller stops gracefully and the campaign stays
/// resumable); anything else is a journal I/O error.
Status classify_write(Status status) {
  if (status.is_ok() || status.code() == ErrorCode::kStorageFull) {
    return status;
  }
  return Status(ErrorCode::kJournalIoError, status.message());
}

std::string serialize_meta(const JournalMeta& meta) {
  std::string out;
  put_le(out, meta.fingerprint);
  put_le(out, meta.total_samples);
  put_le(out, static_cast<std::uint32_t>(meta.context.size()));
  out += meta.context;
  return out;
}

std::string journal_path(const std::string& dir, const std::string& file) {
  return (std::filesystem::path(dir) / file).string();
}

bool read_exact(std::FILE* f, void* buf, std::size_t len) {
  return std::fread(buf, 1, len, f) == len;
}

/// Core reader shared by read_journal and JournalReader::read_shards: header
/// + frames with torn-tail tolerance and mid-file damage detection. Frames
/// may start at any index but must be strictly increasing and
/// non-overlapping; adjacent frames coalesce into one span.
Result<JournalShards> read_shards_impl(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status(ErrorCode::kJournalIoError,
                  "cannot open journal " + path + " for reading");
  }
  struct Closer {
    std::FILE* f;
    ~Closer() { std::fclose(f); }
  } closer{f};

  // Header: magic + meta + meta checksum.
  char magic[sizeof(kFileMagic)];
  std::uint32_t meta_len = 0;
  if (!read_exact(f, magic, sizeof(magic)) ||
      std::memcmp(magic, kFileMagic, sizeof(magic)) != 0 ||
      !read_exact(f, &meta_len, sizeof(meta_len)) || meta_len > kMaxPayload) {
    return Status(ErrorCode::kJournalCorrupt,
                  "journal header corrupt in " + path);
  }
  std::string meta_bytes(meta_len, '\0');
  std::uint64_t meta_sum = 0;
  if (!read_exact(f, meta_bytes.data(), meta_len) ||
      !read_exact(f, &meta_sum, sizeof(meta_sum)) ||
      meta_sum != fnv1a64(meta_bytes.data(), meta_bytes.size())) {
    return Status(ErrorCode::kJournalCorrupt,
                  "journal header corrupt in " + path);
  }
  JournalShards shards;
  {
    std::size_t off = 0;
    if (!get_le(meta_bytes, &off, &shards.meta.fingerprint) ||
        !get_le(meta_bytes, &off, &shards.meta.total_samples) ||
        !get_string(meta_bytes, &off, &shards.meta.context, kMaxPayload)) {
      return Status(ErrorCode::kJournalCorrupt,
                    "journal meta corrupt in " + path);
    }
  }

  shards.valid_bytes = static_cast<std::uint64_t>(std::ftell(f));

  // Frames. `bad_frame` defers the corrupt-vs-torn decision: a bad frame at
  // the physical end of the file is the normal crash artifact (dropped); a
  // bad frame followed by more data means the file was damaged in the
  // middle.
  bool bad_frame = false;
  std::string payload;
  for (;;) {
    std::uint32_t frame_magic = 0;
    std::uint64_t first_index = 0;
    std::uint32_t count = 0, payload_len = 0;
    if (!read_exact(f, &frame_magic, sizeof(frame_magic))) break;  // clean EOF
    if (frame_magic != kFrameMagic ||
        !read_exact(f, &first_index, sizeof(first_index)) ||
        !read_exact(f, &count, sizeof(count)) ||
        !read_exact(f, &payload_len, sizeof(payload_len)) ||
        payload_len > kMaxPayload) {
      bad_frame = true;
      break;
    }
    payload.resize(payload_len);
    std::uint64_t sum = 0;
    if (!read_exact(f, payload.data(), payload_len) ||
        !read_exact(f, &sum, sizeof(sum))) {
      bad_frame = true;  // truncated mid-frame: torn tail candidate
      break;
    }
    std::uint64_t expect = fnv1a64(&first_index, sizeof(first_index));
    expect = fnv1a64(&count, sizeof(count), expect);
    expect = fnv1a64(payload.data(), payload.size(), expect);
    if (sum != expect) {
      bad_frame = true;
      break;
    }
    // Frames need not be in index order: a supervised worker journals shards
    // in *assignment* order, and a shard rescued from a crashed peer lands
    // after higher-indexed shards in the survivor's file. Spans are sorted
    // and overlap-checked after the scan.
    JournalSpan* span;
    if (!shards.spans.empty() &&
        first_index == shards.spans.back().end_index()) {
      span = &shards.spans.back();
    } else {
      shards.spans.emplace_back();
      span = &shards.spans.back();
      span->first_index = first_index;
    }
    std::size_t off = 0;
    for (std::uint32_t i = 0; i < count; ++i) {
      SampleRecord rec;
      if (!deserialize_record(payload, &off, &rec)) {
        return Status(ErrorCode::kJournalCorrupt,
                      "journal frame payload corrupt in " + path);
      }
      span->records.push_back(std::move(rec));
    }
    if (off != payload.size()) {
      return Status(ErrorCode::kJournalCorrupt,
                    "journal frame payload corrupt in " + path);
    }
    shards.valid_bytes = static_cast<std::uint64_t>(std::ftell(f));
  }
  if (bad_frame) {
    // Anything readable after the bad frame proves mid-file damage; a bad
    // frame that extends to EOF is a torn tail and simply dropped.
    char probe;
    if (std::fread(&probe, 1, 1, f) == 1) {
      return Status(ErrorCode::kJournalCorrupt,
                    "journal damaged mid-file in " + path +
                        " (bad frame followed by more data)");
    }
  }
  // Restore the JournalShards contract (strictly increasing, non-overlapping,
  // coalesced spans) independently of the on-disk frame order.
  std::sort(shards.spans.begin(), shards.spans.end(),
            [](const JournalSpan& a, const JournalSpan& b) {
              return a.first_index < b.first_index;
            });
  std::vector<JournalSpan> coalesced;
  for (JournalSpan& span : shards.spans) {
    const std::uint64_t back_end =
        coalesced.empty() ? 0 : coalesced.back().end_index();
    if (!coalesced.empty() && span.first_index < back_end) {
      return Status(ErrorCode::kJournalCorrupt,
                    "journal shards overlap in " + path +
                        " (both cover sample " +
                        std::to_string(span.first_index) + ")");
    }
    if (!coalesced.empty() && span.first_index == back_end) {
      std::vector<SampleRecord>& dst = coalesced.back().records;
      dst.insert(dst.end(), std::make_move_iterator(span.records.begin()),
                 std::make_move_iterator(span.records.end()));
    } else {
      coalesced.push_back(std::move(span));
    }
  }
  shards.spans = std::move(coalesced);
  return shards;
}

/// Single-`*` glob match (e.g. "worker-*.fj"): literal prefix + literal
/// suffix, anything (including nothing) in between. No `*` means an exact
/// match.
bool glob_matches(const std::string& pattern, const std::string& name) {
  const std::size_t star = pattern.find('*');
  if (star == std::string::npos) return pattern == name;
  const std::string prefix = pattern.substr(0, star);
  const std::string suffix = pattern.substr(star + 1);
  return name.size() >= prefix.size() + suffix.size() &&
         name.compare(0, prefix.size(), prefix) == 0 &&
         name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

void serialize_record(const SampleRecord& record, std::string& out) {
  put_le(out, static_cast<std::uint8_t>(record.sample.technique));
  put_le(out, static_cast<std::int32_t>(record.sample.t));
  put_le(out, static_cast<std::uint32_t>(record.sample.center));
  put_le(out, record.sample.radius);
  put_le(out, record.sample.strike_frac);
  put_le(out, record.sample.depth);
  put_le(out, static_cast<std::int32_t>(record.sample.impact_cycles));
  put_le(out, record.sample.weight);
  put_le(out, record.te);
  put_le(out, static_cast<std::uint8_t>(record.path));
  put_le(out, static_cast<std::uint8_t>(record.success ? 1 : 0));
  put_le(out, static_cast<std::uint8_t>(record.retried ? 1 : 0));
  put_le(out, static_cast<std::uint16_t>(record.fail_code));
  put_le(out, record.contribution);
  put_le(out, static_cast<std::uint32_t>(record.flipped_bits.size()));
  for (const int bit : record.flipped_bits) {
    put_le(out, static_cast<std::int32_t>(bit));
  }
  put_le(out, static_cast<std::uint32_t>(record.fail_reason.size()));
  out += record.fail_reason;
}

bool deserialize_record(const std::string& data, std::size_t* offset,
                        SampleRecord* record) {
  std::int32_t t = 0, impact = 0;
  std::uint32_t center = 0;
  std::uint8_t technique = 0, path = 0, success = 0, retried = 0;
  std::uint16_t fail_code = 0;
  if (!get_le(data, offset, &technique)) return false;
  if (technique >
      static_cast<std::uint8_t>(faultsim::TechniqueKind::kVoltageGlitch)) {
    return false;
  }
  if (!get_le(data, offset, &t)) return false;
  if (!get_le(data, offset, &center)) return false;
  if (!get_le(data, offset, &record->sample.radius)) return false;
  if (!get_le(data, offset, &record->sample.strike_frac)) return false;
  if (!get_le(data, offset, &record->sample.depth)) return false;
  if (!get_le(data, offset, &impact)) return false;
  if (!get_le(data, offset, &record->sample.weight)) return false;
  if (!get_le(data, offset, &record->te)) return false;
  if (!get_le(data, offset, &path)) return false;
  if (!get_le(data, offset, &success)) return false;
  if (!get_le(data, offset, &retried)) return false;
  if (!get_le(data, offset, &fail_code)) return false;
  if (!get_le(data, offset, &record->contribution)) return false;
  record->sample.technique = static_cast<faultsim::TechniqueKind>(technique);
  record->sample.t = t;
  record->sample.center = center;
  record->sample.impact_cycles = impact;
  if (path > static_cast<std::uint8_t>(OutcomePath::kFailed)) return false;
  record->path = static_cast<OutcomePath>(path);
  record->success = success != 0;
  record->retried = retried != 0;
  record->fail_code = static_cast<ErrorCode>(fail_code);
  std::uint32_t nflips = 0;
  if (!get_le(data, offset, &nflips)) return false;
  if (nflips > kMaxPayload / sizeof(std::int32_t)) return false;
  record->flipped_bits.clear();
  record->flipped_bits.reserve(nflips);
  for (std::uint32_t i = 0; i < nflips; ++i) {
    std::int32_t bit = 0;
    if (!get_le(data, offset, &bit)) return false;
    record->flipped_bits.push_back(bit);
  }
  return get_string(data, offset, &record->fail_reason, kMaxPayload);
}

bool sample_matches(const faultsim::FaultSample& a,
                    const faultsim::FaultSample& b) {
  return a.technique == b.technique && a.t == b.t && a.center == b.center &&
         a.radius == b.radius && a.strike_frac == b.strike_frac &&
         a.depth == b.depth && a.impact_cycles == b.impact_cycles &&
         a.weight == b.weight;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>>
MergedJournal::missing_ranges() const {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ranges;
  std::size_t i = 0;
  while (i < present.size()) {
    if (present[i] != 0) {
      ++i;
      continue;
    }
    const std::size_t first = i;
    while (i < present.size() && present[i] == 0) ++i;
    ranges.emplace_back(first, i);
  }
  return ranges;
}

Result<JournalContents> read_journal(const std::string& dir) {
  const std::string path = journal_path(dir, "campaign.fj");
  Result<JournalShards> shards = read_shards_impl(path);
  if (!shards.is_ok()) return shards.status();
  JournalShards& s = shards.value();
  // The single-process journal must be a contiguous prefix of the campaign;
  // a gap or a nonzero start means the file was not written by this engine.
  if (!s.spans.empty() &&
      (s.spans.size() != 1 || s.spans.front().first_index != 0)) {
    return Status(ErrorCode::kJournalCorrupt,
                  "journal frames out of order in " + path);
  }
  JournalContents contents;
  contents.meta = std::move(s.meta);
  contents.valid_bytes = s.valid_bytes;
  if (!s.spans.empty()) contents.records = std::move(s.spans.front().records);
  return contents;
}

Result<JournalShards> JournalReader::read_shards(const std::string& dir,
                                                 const std::string& file) {
  return read_shards_impl(journal_path(dir, file));
}

Result<MergedJournal> JournalReader::merge_partial(const std::string& dir,
                                                   const std::string& pattern) {
  std::vector<std::string> names;
  {
    std::error_code ec;
    std::filesystem::directory_iterator it(dir, ec);
    if (ec) {
      return Status(ErrorCode::kJournalIoError,
                    "cannot list journal directory " + dir + ": " +
                        ec.message());
    }
    for (const auto& entry : it) {
      const std::string name = entry.path().filename().string();
      if (glob_matches(pattern, name)) names.push_back(name);
    }
  }
  if (names.empty()) {
    return Status(ErrorCode::kJournalIoError,
                  "no journal shards matching " + pattern + " in " + dir);
  }
  // Deterministic merge order (directory iteration order is not specified).
  std::sort(names.begin(), names.end());

  MergedJournal merged;
  // Tracks which file contributed each sample, for the overlap diagnostic.
  std::vector<std::uint32_t> owner;
  for (std::size_t fi = 0; fi < names.size(); ++fi) {
    const std::string& name = names[fi];
    Result<JournalShards> shards = read_shards(dir, name);
    if (!shards.is_ok()) return shards.status();
    JournalShards& s = shards.value();
    if (fi == 0) {
      merged.meta = s.meta;
      merged.records.resize(merged.meta.total_samples);
      merged.present.assign(merged.meta.total_samples, 0);
      owner.assign(merged.meta.total_samples, 0);
    } else if (s.meta.fingerprint != merged.meta.fingerprint ||
               s.meta.total_samples != merged.meta.total_samples) {
      return Status(ErrorCode::kJournalCorrupt,
                    "journal shard " + name +
                        " belongs to a different campaign than " + names[0] +
                        " (fingerprint or sample count mismatch)");
    }
    merged.valid_bytes[name] = s.valid_bytes;
    for (JournalSpan& span : s.spans) {
      if (span.end_index() > merged.meta.total_samples) {
        return Status(ErrorCode::kJournalCorrupt,
                      "journal shard " + name + " covers samples [" +
                          std::to_string(span.first_index) + ", " +
                          std::to_string(span.end_index()) +
                          ") past the campaign end " +
                          std::to_string(merged.meta.total_samples));
      }
      for (std::size_t i = 0; i < span.records.size(); ++i) {
        const std::uint64_t index = span.first_index + i;
        if (merged.present[index] != 0) {
          return Status(ErrorCode::kJournalCorrupt,
                        "journal shards " + names[owner[index]] + " and " +
                            name + " both cover sample " +
                            std::to_string(index));
        }
        merged.records[index] = std::move(span.records[i]);
        merged.present[index] = 1;
        owner[index] = static_cast<std::uint32_t>(fi);
        ++merged.present_count;
      }
    }
  }
  return merged;
}

Result<JournalContents> JournalReader::merge(const std::string& dir,
                                             const std::string& pattern) {
  Result<MergedJournal> merged = merge_partial(dir, pattern);
  if (!merged.is_ok()) return merged.status();
  MergedJournal& m = merged.value();
  if (!m.complete()) {
    const auto ranges = m.missing_ranges();
    std::string msg = "journal shards matching " + pattern + " in " + dir +
                      " are incomplete: missing samples [" +
                      std::to_string(ranges.front().first) + ", " +
                      std::to_string(ranges.front().second) + ")";
    if (ranges.size() > 1) {
      msg += " and " + std::to_string(ranges.size() - 1) + " more range(s)";
    }
    return Status(ErrorCode::kFailedPrecondition, msg);
  }
  JournalContents contents;
  contents.meta = std::move(m.meta);
  contents.records = std::move(m.records);
  return contents;
}

JournalWriter::~JournalWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status JournalWriter::open_fresh(const std::string& dir,
                                 const JournalMeta& meta,
                                 const std::string& file) {
  FAV_CHECK(file_ == nullptr);
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status(ErrorCode::kJournalIoError,
                  "cannot create journal directory " + dir + ": " +
                      ec.message());
  }
  const std::string path = journal_path(dir, file);
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    return Status(ErrorCode::kJournalIoError,
                  "cannot open journal " + path + " for writing");
  }
  const std::string meta_bytes = serialize_meta(meta);
  // The whole header goes out as one hardened write: one retry scope, and
  // exactly one chaos-countable physical write per header.
  std::string header(kFileMagic, sizeof(kFileMagic));
  put_le(header, static_cast<std::uint32_t>(meta_bytes.size()));
  header += meta_bytes;
  put_le(header, fnv1a64(meta_bytes.data(), meta_bytes.size()));
  const Status written = classify_write(
      io::write_all(file_, header.data(), header.size(), "journal " + path));
  if (!written.is_ok()) return written;
  // The header is fsynced immediately (commit), exactly like every shard
  // frame after it: a crash between open and the first append must leave a
  // valid, durable empty journal behind.
  const Status committed = commit();
  if (!committed.is_ok()) return committed;
  // The header fsync above made the *contents* durable; the name->inode link
  // of the freshly created (or truncated) file lives in the directory, which
  // needs its own fsync — otherwise a crash here can lose the journal file
  // entirely while the caller believes it exists.
  return sync_dir(dir);
}

Status JournalWriter::open_append(const std::string& dir,
                                  std::uint64_t valid_bytes,
                                  const std::string& file) {
  FAV_CHECK(file_ == nullptr);
  const std::string path = journal_path(dir, file);
  // Cut off any torn tail first: appending after it would bury the partial
  // frame mid-file, which the next read must treat as corruption.
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec || size < valid_bytes) {
    return Status(ErrorCode::kJournalIoError,
                  "cannot stat journal " + path + " for appending");
  }
  if (size > valid_bytes) {
    std::filesystem::resize_file(path, valid_bytes, ec);
    if (ec) {
      return Status(ErrorCode::kJournalIoError,
                    "cannot truncate torn tail of journal " + path + ": " +
                        ec.message());
    }
  }
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    return Status(ErrorCode::kJournalIoError,
                  "cannot open journal " + path + " for appending");
  }
  if (size > valid_bytes) {
    // Make the truncation itself durable before appending after it: the new
    // length is inode metadata (file fsync) but a crash between truncate and
    // the next append must not resurrect the torn tail mid-file, so the
    // directory entry is synced as well, mirroring open_fresh.
    const Status committed = commit();
    if (!committed.is_ok()) return committed;
  }
  return sync_dir(dir);
}

Status JournalWriter::append_shard(std::size_t first_index,
                                   const SampleRecord* records,
                                   std::size_t count) {
  FAV_CHECK(file_ != nullptr);
  std::string payload;
  for (std::size_t i = 0; i < count; ++i) {
    serialize_record(records[i], payload);
  }
  const auto index64 = static_cast<std::uint64_t>(first_index);
  const auto count32 = static_cast<std::uint32_t>(count);
  std::uint64_t sum = fnv1a64(&index64, sizeof(index64));
  sum = fnv1a64(&count32, sizeof(count32), sum);
  sum = fnv1a64(payload.data(), payload.size(), sum);
  // One frame, one hardened write (retry/backoff and errno classification
  // live in util/io): a storage-full failure surfaces as kStorageFull so the
  // campaign can stop gracefully and resume later.
  std::string frame;
  put_le(frame, kFrameMagic);
  put_le(frame, index64);
  put_le(frame, count32);
  put_le(frame, static_cast<std::uint32_t>(payload.size()));
  frame += payload;
  put_le(frame, sum);
  const Status written = classify_write(
      io::write_all(file_, frame.data(), frame.size(), "journal frame"));
  if (!written.is_ok()) return written;
  if (metrics_ != nullptr) {
    metrics_->add_counter("journal.shards");
    metrics_->add_counter("journal.bytes_written", frame.size());
  }
  return commit();
}

Status JournalWriter::commit() {
  ScopeTimer timer(metrics_, "journal.fsync_ns");
  if (metrics_ != nullptr) metrics_->add_counter("journal.commits");
  return classify_write(io::flush_and_fsync(file_, "journal"));
}

Status JournalWriter::sync_dir(const std::string& dir) {
  ScopeTimer timer(metrics_, "journal.dir_fsync_ns");
  if (metrics_ != nullptr) metrics_->add_counter("journal.dir_fsyncs");
  return classify_write(io::fsync_dir(dir));
}

}  // namespace fav::mc
