// Cross-level Monte Carlo SSF evaluation engine (paper Fig. 5).
//
// For each fault sample (t, p):
//   1. Te = Tt - t; restore the RTL machine from the nearest golden
//      checkpoint and warm up to Te,
//   2. hand the state to the gate level, settle the injection cycle, and ask
//      the AttackTechnique for the latched bit errors its parameters p cause
//      (radiation: transient simulation; clock glitch: setup-miss analysis),
//   3. if no bits flipped            -> masked, e = 0,
//      if only memory-type bits flip -> analytical evaluation,
//      otherwise                     -> inject the errors back into the RTL
//                                       model, resume to completion, apply
//                                       the benchmark's success oracle,
//   4. accumulate e * (f/g) into the importance-weighted SSF estimate.
//
// The engine is technique-generic: only step 2's flip-set computation is
// delegated (see faultsim/technique.h), so every technique inherits the
// worker pool, scratch reuse, isolation/budgets, journaled resume and
// observability below.
//
// Robustness: a campaign of 1e4–1e6 samples must survive individual
// pathological samples. Each evaluation inside run()/run_journaled() is
// isolated — it executes under a configurable RTL cycle budget and wall-clock
// deadline, exceptions and overruns are captured, retried once on fresh
// scratch, and otherwise recorded as OutcomePath::kFailed with the reason.
// The estimate stays well-defined over completed samples; the failed-weight
// fraction is reported in SsfResult.
#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "faultsim/injection.h"
#include "faultsim/technique.h"
#include "layout/placement.h"
#include "mc/analytical.h"
#include "mc/samplers.h"
#include "precharac/characterize.h"
#include "rtl/golden.h"
#include "soc/gate_machine.h"
#include "util/metrics.h"
#include "util/stats.h"
#include "util/status.h"

namespace fav::mc {

enum class OutcomePath {
  kMasked,      // no latched error
  kAnalytical,  // memory-type-only error, decided without simulation
  kRtl,         // required RTL-level resumption
  kFailed,      // evaluation failed (budget overrun or captured exception)
};

/// Stable lowercase name ("masked" / "analytical" / "rtl" / "failed") used
/// for metric and trace-event names.
const char* outcome_path_name(OutcomePath path);

struct SampleRecord {
  faultsim::FaultSample sample;
  std::uint64_t te = 0;
  std::vector<int> flipped_bits;  // flat register-map bits
  OutcomePath path = OutcomePath::kMasked;
  bool success = false;
  double contribution = 0.0;  // e * importance weight
  /// Isolation metadata: why the evaluation failed (kOk for completed
  /// samples) and whether it was re-attempted on fresh scratch.
  ErrorCode fail_code = ErrorCode::kOk;
  std::string fail_reason;
  bool retried = false;
};

struct SsfResult {
  RunningStats stats;  // over per-sample contributions of *completed* samples
  std::size_t masked = 0;
  std::size_t analytical = 0;
  std::size_t rtl = 0;
  std::size_t successes = 0;
  /// Isolation counters: samples whose evaluation failed (excluded from
  /// stats) and samples that needed a retry (whether it then succeeded).
  std::size_t failed = 0;
  std::size_t retried = 0;
  /// Importance weight drawn by failed samples vs. the whole batch: bounds
  /// the estimate mass the failures could have carried.
  double failed_weight = 0.0;
  double total_weight = 0.0;
  /// Failure reasons, keyed by error code.
  std::map<ErrorCode, std::size_t> failure_counts;
  /// Σw and Σw² over *completed* samples, accumulated in sample-index order
  /// by the reduction (so they are bitwise-identical at every thread count).
  /// They define the importance-sampling effective sample size below.
  double completed_weight = 0.0;
  double completed_weight_sq = 0.0;
  /// Running estimate recorded every `trace_stride` samples (Fig. 9a).
  std::vector<double> trace;
  std::vector<SampleRecord> records;
  /// Samples this result actually covers. Equals the requested batch size
  /// unless a cooperative stop (EvaluatorConfig::stop) cut the run short, in
  /// which case every field above covers only the prefix [0, evaluated).
  std::size_t evaluated = 0;
  /// True when EvaluatorConfig::stop ended the run before all samples were
  /// evaluated (graceful SIGINT/SIGTERM). A journaled interrupted run can be
  /// continued later with JournalOptions::resume.
  bool interrupted = false;
  /// Exhaustive sweeps (run_exhaustive): the total size of the enumerable
  /// fault space this result was swept against. 0 for sampled campaigns,
  /// where no finite space is bound and coverage() is meaningless.
  std::uint64_t fault_space_size = 0;
  /// SSF attribution: each success's contribution is split equally among
  /// the flipped bits (= DFF cells) and, in parallel, among the flipped
  /// register fields. Bit granularity drives hardening (each bit is a
  /// standard cell that can be swapped for a resilient one); field
  /// granularity is for human-readable reports.
  std::map<int, double> bit_contribution;
  std::map<int, double> field_contribution;

  double ssf() const { return stats.mean(); }
  double sample_variance() const { return stats.variance(); }
  /// ESS = (Σw)²/Σw² (Kong 1992): how many unweighted samples the
  /// importance-weighted run is worth. Equals the completed-sample count for
  /// an unweighted (w == 1) campaign; a low ESS flags a proposal mismatch.
  double effective_sample_size() const {
    return completed_weight_sq > 0.0
               ? completed_weight * completed_weight / completed_weight_sq
               : 0.0;
  }
  double failed_weight_fraction() const {
    return total_weight > 0.0 ? failed_weight / total_weight : 0.0;
  }
  /// Fraction of the bound fault space this result covers: 1.0 for a
  /// completed exhaustive sweep, less under --space-limit or interruption,
  /// 0.0 for sampled campaigns (fault_space_size == 0).
  double coverage() const {
    return fault_space_size > 0
               ? static_cast<double>(evaluated) /
                     static_cast<double>(fault_space_size)
               : 0.0;
  }
};

struct EvaluatorConfig {
  /// Enables the analytical shortcut for memory-type-only errors.
  bool use_analytical = true;
  /// Record the running estimate every this many samples.
  std::size_t trace_stride = 50;
  /// Keep full per-sample records (needed for hardening re-evaluation).
  bool keep_records = true;
  /// Cap on SsfResult::records (0 = unlimited). With keep_records on, a
  /// 1e6-sample campaign otherwise accumulates every record in memory; the
  /// reduction keeps the first `record_capacity` records (sample-index
  /// order, so the kept prefix is thread-count independent) and counts the
  /// rest in the "eval.records_dropped" metric. Estimates, counters and
  /// contribution maps always cover every sample regardless of the cap.
  std::size_t record_capacity = 0;
  /// Worker threads for run(): 1 = sequential, 0 = hardware concurrency.
  /// Results are bitwise-identical for every value — samples are pre-drawn
  /// on the calling thread and reduced in sample-index order.
  std::size_t threads = 1;
  /// Per-sample RTL cycle budget (warm-up + injection + resume cycles);
  /// 0 = unlimited. Deterministic: a sample that overruns does so at the
  /// same cycle on every run and thread count.
  std::uint64_t cycle_budget = 0;
  /// Per-sample wall-clock deadline in milliseconds; 0 = unlimited.
  /// A fired deadline depends on machine load, so enabling it trades the
  /// bitwise-determinism contract for hang protection — prefer cycle_budget
  /// when journaled resume must be bit-exact.
  std::uint64_t sample_deadline_ms = 0;
  /// Retry a failed evaluation once on fresh scratch before recording
  /// kFailed (cycle-budget overruns are deterministic and never retried).
  bool retry_failed = true;
  /// Word-parallel batching width: samples sharing one injection cycle te
  /// (and impact_cycles == 1) are evaluated up to `batch_lanes` at a time,
  /// sharing a single checkpoint restore + gate-level settle and computing
  /// their flip sets in one bit-parallel topological sweep (lane = sample =
  /// one bit of a 64-bit word). 0 or 1 disables batching; values above 64
  /// are clamped. Batching never changes results: every record is bitwise
  /// identical to the scalar path at every lane count and thread count —
  /// grouping only changes how the work is scheduled.
  std::size_t batch_lanes = 64;

  /// --- observability (util/metrics.h; all optional, null = disabled) ----
  /// Aggregated campaign metrics. Per-worker sinks are created inside
  /// run()/run_journaled() and merged into *metrics in worker-index order
  /// when the run completes; sample-derived statistics (outcome-path
  /// counters, ESS) are recorded during the sample-index-ordered reduction.
  /// Enabling metrics never changes SSF results — counters are
  /// schedule-independent, timers are wall-clock and only feed reports.
  /// Successive runs through the same config accumulate into the same sink.
  MetricsSink* metrics = nullptr;
  /// Chrome-trace events: one complete event per evaluated sample (lane =
  /// worker index, args.sample = sample index), merged per worker and
  /// written in sample-index order by TraceBuffer::write_json.
  TraceBuffer* trace = nullptr;
  /// Throttled live progress; record() is invoked once per completed sample
  /// in completion order (see ProgressMeter for the determinism caveat on
  /// the *displayed* running mean).
  ProgressMeter* progress = nullptr;

  /// --- cooperative control (all optional) -------------------------------
  /// Graceful-stop flag, polled between evaluation chunks in run()/
  /// run_batch() and between shards in run_journaled(). When it flips true
  /// the run finishes its in-flight chunk, reduces the evaluated prefix, and
  /// returns with SsfResult::interrupted set — already-journaled work stays
  /// valid for a later resume. Null disables polling entirely.
  const std::atomic<bool>* stop = nullptr;
  /// Invoked once per evaluated sample, from the worker thread that finished
  /// it, right after its record slot is written (completion order, not
  /// sample order). Supervised workers use it for heartbeat frames. Must be
  /// thread-safe and must not throw; null disables.
  std::function<void(const SampleRecord&, std::size_t)> on_sample;
  /// Emit the reduce-derived eval.* counters/gauges into `metrics`. A
  /// supervised worker sets this false: its shards are re-reduced by the
  /// supervisor, which would double-count every sample-derived aggregate
  /// after merging the worker's shipped sink.
  bool reduce_metrics = true;
};

/// Per-evaluation resource budget. charge_cycles() throws StatusError with
/// kCycleBudgetExceeded / kDeadlineExceeded when exhausted; the isolation
/// layer converts that into a kFailed sample record.
class EvalBudget {
 public:
  EvalBudget(std::uint64_t cycle_budget, std::uint64_t deadline_ms);

  void charge_cycles(std::uint64_t cycles);

 private:
  std::uint64_t cycles_left_;
  bool limit_cycles_;
  bool limit_time_;
  std::uint64_t ticks_ = 0;
  std::chrono::steady_clock::time_point deadline_{};
};

class SsfEvaluator;

/// Reusable per-worker evaluation state: one RTL machine, one gate-level
/// machine, and the technique/flip-set query buffers, constructed once and
/// re-loaded for every sample. Constructing a GateLevelMachine allocates the
/// full logic-simulator state (~every net of the SoC) and a 64K-word RAM;
/// doing that per sample dominates the masked-sample path, so the engine
/// keeps one scratch per worker thread. Not thread-safe: one scratch per
/// thread.
class EvalScratch {
 public:
  explicit EvalScratch(const SsfEvaluator& evaluator);

 private:
  friend class SsfEvaluator;
  rtl::Machine machine_;
  soc::GateLevelMachine gate_;
  faultsim::TechniqueScratch technique_;
  std::vector<netlist::NodeId> flipped_dffs_;
  /// Word-parallel batch state: the 64-lane simulator the settled injection
  /// cycle is broadcast into, the per-lane sample/flip buffers, and the
  /// machine a diverging lane's RTL resume runs on (copied from the shared
  /// post-injection state so machine_ stays valid for the other lanes).
  netlist::WordSimulator words_;
  rtl::Machine resume_;
  std::vector<faultsim::FaultSample> lane_samples_;
  std::vector<std::vector<netlist::NodeId>> lane_flips_;
};

/// Options for crash-safe journaled campaigns (see mc/journal.h for the
/// on-disk format). The journal directory accumulates completed sample-index
/// shards with checksums; a resumed run replays them and continues from the
/// first missing index, bitwise-identical to an uninterrupted run.
struct JournalOptions {
  std::string dir;
  /// Replay an existing journal and continue; false starts a fresh journal
  /// (overwriting any previous one in `dir`).
  bool resume = false;
  /// Samples per journal shard: the flush/commit granularity. A crash loses
  /// at most one shard of work.
  std::size_t shard_size = 256;
  /// Campaign identity (hash of benchmark/sampler/seed/config); a resume
  /// against a journal with a different fingerprint is rejected.
  std::uint64_t fingerprint = 0;
  /// Human-readable campaign description stored in the journal header.
  std::string context;
};

class SsfEvaluator {
 public:
  /// Technique-generic engine: evaluates samples of `technique`'s family.
  /// `characterization` may be null: the analytical path is then disabled
  /// (every unmasked sample resumes at RTL level). All references must
  /// outlive the evaluator.
  SsfEvaluator(const soc::SocNetlist& soc,
               const faultsim::AttackTechnique& technique,
               const soc::SecurityBenchmark& bench,
               const rtl::GoldenRun& golden,
               const precharac::RegisterCharacterization* characterization,
               const EvaluatorConfig& config = {});

  /// Radiation convenience: builds and owns a RadiationTechnique over
  /// `placement` + `injector` (the common case and the historical
  /// constructor signature).
  SsfEvaluator(const soc::SocNetlist& soc, const layout::Placement& placement,
               const faultsim::InjectionSimulator& injector,
               const soc::SecurityBenchmark& bench,
               const rtl::GoldenRun& golden,
               const precharac::RegisterCharacterization* characterization,
               const EvaluatorConfig& config = {});

  std::uint64_t target_cycle() const { return target_cycle_; }
  const rtl::GoldenRun& golden() const { return *golden_; }
  const soc::SecurityBenchmark& benchmark() const { return *bench_; }
  const soc::SocNetlist& soc() const { return *soc_; }
  const faultsim::AttackTechnique& technique() const { return *technique_; }
  const precharac::RegisterCharacterization* characterization() const {
    return charac_;
  }
  const EvaluatorConfig& config() const { return config_; }

  /// Full evaluation of one fault sample (convenience: builds a fresh
  /// scratch; use the scratch overload inside sampling loops). Throws on
  /// invalid samples and budget overruns — campaign loops use the isolated
  /// variant below instead.
  SampleRecord evaluate_sample(const faultsim::FaultSample& sample) const;
  /// Same, reusing `scratch`'s machines and buffers. Thread-safe as long as
  /// each thread uses its own scratch: the evaluator itself is only read.
  /// A non-null `sink` receives the per-phase time split of this sample
  /// (eval.restore_ns / eval.gate_inject_ns / eval.rtl_resume_ns /
  /// eval.analytical_ns) and simulation-cost counters (rtl.warmup_cycles,
  /// rtl.restore_bytes, rtl.resume_cycles, gate.injection_cycles,
  /// gate.settle_passes); the sink must be private to the calling thread.
  SampleRecord evaluate_sample(const faultsim::FaultSample& sample,
                               EvalScratch& scratch,
                               MetricsSink* sink = nullptr) const;

  /// Fault-isolated evaluation: never throws on a per-sample failure.
  /// Exceptions and budget overruns are captured; non-deterministic failures
  /// are retried once on a fresh scratch (replacing `scratch`), and a sample
  /// that still fails returns a record with path == OutcomePath::kFailed
  /// carrying the error code and reason.
  SampleRecord evaluate_sample_isolated(
      const faultsim::FaultSample& sample,
      std::unique_ptr<EvalScratch>& scratch,
      MetricsSink* sink = nullptr) const;

  /// Decides the outcome of a given flipped-bit set injected at the end of
  /// cycle `te` (used by evaluate_sample and by hardening re-evaluation,
  /// which filters flip sets).
  bool outcome_for_flips(std::uint64_t te, const std::vector<int>& flips,
                         OutcomePath* path = nullptr) const;

  /// Draws `n` samples from `sampler` and accumulates the SSF estimate.
  ///
  /// With config.threads != 1 the samples are evaluated on a worker pool.
  /// Determinism contract: the sample batch is pre-drawn sequentially from
  /// `sampler` (the stateful Rng stream is untouched by the workers), each
  /// worker evaluates into its sample's slot using per-thread scratch state,
  /// and the result is reduced in sample-index order — so ssf(), variance,
  /// trace, records, and the contribution maps are bitwise-identical for
  /// every thread count, including the sequential engine.
  ///
  /// Per-sample failures are isolated (see evaluate_sample_isolated) and
  /// surface as SsfResult counters, not exceptions. A sampler that throws
  /// while drawing the batch aborts the run with StatusError(kSamplerFailed).
  SsfResult run(Sampler& sampler, Rng& rng, std::size_t n) const;

  /// Evaluates an explicit, pre-drawn batch through the full pipeline
  /// (worker pool, isolation, observability, sample-index-ordered
  /// reduction). The seam run() uses after drawing its batch, and the
  /// supervisor's workers use for their assigned shards.
  SsfResult run_batch(std::vector<faultsim::FaultSample> samples) const;

  /// Exhaustively sweeps the technique's bound fault space (see
  /// AttackTechnique::bind_space / enumerate): every enumeration index in
  /// [0, min(space_size, space_limit)) is evaluated exactly once, streamed
  /// through the batch pipeline in bounded chunks — the full space is never
  /// materialized, so memory stays O(chunk) regardless of grid size. The
  /// result carries fault_space_size so coverage() reports the swept
  /// fraction, and is bitwise-identical to run_batch over the materialized
  /// enumeration at every thread and lane count. space_limit == 0 sweeps
  /// everything. Throws StatusError(kInvalidArgument) when no space is
  /// bound.
  SsfResult run_exhaustive(std::uint64_t space_limit = 0) const;

  /// Crash-safe variant of run_exhaustive(): completed enumeration-index
  /// shards are appended to the journal as they finish. Resume re-enumerates
  /// the journaled prefix from the bound space (the index -> sample mapping
  /// is the determinism contract) and cross-checks it before continuing from
  /// the first missing index — the final result is bitwise-identical to an
  /// uninterrupted sweep.
  Result<SsfResult> run_exhaustive_journaled(const JournalOptions& options,
                                             std::uint64_t space_limit =
                                                 0) const;

  /// Crash-safe variant of run(): completed sample shards are appended to
  /// the journal in `options.dir` as they finish. With options.resume, the
  /// journal is replayed first and evaluation continues from the first
  /// missing sample index — the returned SsfResult is bitwise-identical to
  /// an uninterrupted run at every thread count (samples are re-drawn from
  /// the same sampler/rng state and cross-checked against the journal).
  /// Journal integrity/IO failures are reported as a non-ok Result.
  Result<SsfResult> run_journaled(Sampler& sampler, Rng& rng, std::size_t n,
                                  const JournalOptions& options) const;

  /// Draws the whole batch sequentially (determinism contract: the stateful
  /// Rng stream is consumed on the calling thread only); wraps sampler
  /// exceptions into StatusError(kSamplerFailed). Public seam for the
  /// supervisor, whose processes each re-derive the identical sample stream
  /// from the same seed.
  std::vector<faultsim::FaultSample> draw_batch(Sampler& sampler, Rng& rng,
                                                std::size_t n) const;

  /// Folds externally-evaluated records (e.g. merged supervised-worker
  /// journal shards) through the same sample-index-ordered reduction as
  /// run_batch, so the resulting SsfResult is bitwise-identical to the
  /// single-process engine evaluating the same samples.
  SsfResult reduce_records(std::vector<SampleRecord> records) const;

 private:
  /// Per-worker observability buffers for one run. The vectors are empty
  /// when the corresponding config pointer is null; otherwise they hold one
  /// slot per scratch/worker, merged in worker-index order by
  /// merge_observers() so the aggregate is schedule-independent.
  struct WorkerObservers {
    std::vector<MetricsSink> sinks;
    std::vector<TraceBuffer> traces;
  };

  /// Evaluates samples[lo, hi) into records[lo, hi) on the worker pool,
  /// reusing `scratch` (one slot per worker; isolated evaluation).
  /// `observers` may be null (no instrumentation) or sized to the pool.
  void evaluate_range(const std::vector<faultsim::FaultSample>& samples,
                      std::vector<SampleRecord>& records, std::size_t lo,
                      std::size_t hi,
                      std::vector<std::unique_ptr<EvalScratch>>& scratch,
                      WorkerObservers* observers) const;
  /// Evaluates one te-group of batch-eligible samples (unit = their indices,
  /// all sharing the same injection cycle) through the word-parallel path:
  /// one restore + settle, one bit-parallel flip-set sweep, then per-lane
  /// finalization with scalar-identical budget accounting. Lanes the batch
  /// path cannot finish identically (non-budget exceptions) are replayed
  /// through `scalar_eval`, the same per-sample evaluation the scalar
  /// engine runs, so every record stays bitwise-identical to the scalar
  /// baseline.
  void evaluate_group(
      const std::vector<faultsim::FaultSample>& samples,
      std::vector<SampleRecord>& records,
      const std::vector<std::size_t>& unit,
      std::unique_ptr<EvalScratch>& scratch, MetricsSink* sink,
      TraceBuffer* trace_buf, std::uint32_t worker,
      const std::function<void(std::size_t, std::size_t)>& scalar_eval) const;
  WorkerObservers make_observers(std::size_t workers) const;
  /// Folds the per-worker sinks/traces into config_.metrics/config_.trace
  /// in worker-index order.
  void merge_observers(WorkerObservers&& observers) const;
  /// Builds one scratch per resolved worker (capped by `n` work items).
  std::vector<std::unique_ptr<EvalScratch>> make_scratch_pool(
      std::size_t n) const;
  /// Incremental reduction state: fold_record() accumulates one record at a
  /// time in sample-index order, finish_reduce() seals the result and emits
  /// the reduce-derived metrics. Folding records chunk by chunk performs the
  /// exact accumulation one reduce() over the concatenation would — the seam
  /// run_exhaustive streams through without materializing every record.
  struct ReduceState {
    SsfResult result;
    std::uint64_t records_dropped = 0;
    std::size_t index = 0;  // records folded so far
  };
  void fold_record(ReduceState& state, SampleRecord&& rec) const;
  SsfResult finish_reduce(ReduceState&& state) const;
  /// Seed-order accumulation of evaluated records into an SsfResult; the
  /// single reduction path shared by the sequential and parallel engines.
  SsfResult reduce(std::vector<SampleRecord>&& records) const;
  /// Shared outcome decision on a machine already positioned just past the
  /// (last) injection cycle with the errors overlaid.
  bool decide_outcome(rtl::Machine& machine, const std::vector<int>& flips,
                      std::uint64_t first_faulty_cycle, OutcomePath* path,
                      EvalBudget& budget, MetricsSink* sink = nullptr) const;

  const soc::SocNetlist* soc_;
  /// Owns the technique only for the radiation convenience constructor;
  /// technique_ always points at the active one.
  std::unique_ptr<faultsim::AttackTechnique> owned_technique_;
  const faultsim::AttackTechnique* technique_;
  const soc::SecurityBenchmark* bench_;
  const rtl::GoldenRun* golden_;
  const precharac::RegisterCharacterization* charac_;
  EvaluatorConfig config_;
  AnalyticalEvaluator analytical_;
  std::uint64_t target_cycle_ = 0;
};

}  // namespace fav::mc
