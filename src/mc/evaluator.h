// Cross-level Monte Carlo SSF evaluation engine (paper Fig. 5).
//
// For each fault sample (t, p):
//   1. Te = Tt - t; restore the RTL machine from the nearest golden
//      checkpoint and warm up to Te,
//   2. hand the state to the gate level, settle the injection cycle, and run
//      the transient simulation to obtain the latched bit errors,
//   3. if no bits flipped            -> masked, e = 0,
//      if only memory-type bits flip -> analytical evaluation,
//      otherwise                     -> inject the errors back into the RTL
//                                       model, resume to completion, apply
//                                       the benchmark's success oracle,
//   4. accumulate e * (f/g) into the importance-weighted SSF estimate.
#pragma once

#include <map>
#include <vector>

#include "faultsim/injection.h"
#include "layout/placement.h"
#include "mc/analytical.h"
#include "mc/samplers.h"
#include "precharac/characterize.h"
#include "rtl/golden.h"
#include "soc/gate_machine.h"
#include "util/stats.h"

namespace fav::mc {

enum class OutcomePath {
  kMasked,      // no latched error
  kAnalytical,  // memory-type-only error, decided without simulation
  kRtl,         // required RTL-level resumption
};

struct SampleRecord {
  faultsim::FaultSample sample;
  std::uint64_t te = 0;
  std::vector<int> flipped_bits;  // flat register-map bits
  OutcomePath path = OutcomePath::kMasked;
  bool success = false;
  double contribution = 0.0;  // e * importance weight
};

struct SsfResult {
  RunningStats stats;  // over per-sample contributions
  std::size_t masked = 0;
  std::size_t analytical = 0;
  std::size_t rtl = 0;
  std::size_t successes = 0;
  /// Running estimate recorded every `trace_stride` samples (Fig. 9a).
  std::vector<double> trace;
  std::vector<SampleRecord> records;
  /// SSF attribution: each success's contribution is split equally among
  /// the flipped bits (= DFF cells) and, in parallel, among the flipped
  /// register fields. Bit granularity drives hardening (each bit is a
  /// standard cell that can be swapped for a resilient one); field
  /// granularity is for human-readable reports.
  std::map<int, double> bit_contribution;
  std::map<int, double> field_contribution;

  double ssf() const { return stats.mean(); }
  double sample_variance() const { return stats.variance(); }
};

struct EvaluatorConfig {
  /// Enables the analytical shortcut for memory-type-only errors.
  bool use_analytical = true;
  /// Record the running estimate every this many samples.
  std::size_t trace_stride = 50;
  /// Keep full per-sample records (needed for hardening re-evaluation).
  bool keep_records = true;
  /// Worker threads for run(): 1 = sequential, 0 = hardware concurrency.
  /// Results are bitwise-identical for every value — samples are pre-drawn
  /// on the calling thread and reduced in sample-index order.
  std::size_t threads = 1;
};

class SsfEvaluator;

/// Reusable per-worker evaluation state: one RTL machine, one gate-level
/// machine, and the struck-cell query buffer, constructed once and re-loaded
/// for every sample. Constructing a GateLevelMachine allocates the full
/// logic-simulator state (~every net of the SoC) and a 64K-word RAM; doing
/// that per sample dominates the masked-sample path, so the engine keeps one
/// scratch per worker thread. Not thread-safe: one scratch per thread.
class EvalScratch {
 public:
  explicit EvalScratch(const SsfEvaluator& evaluator);

 private:
  friend class SsfEvaluator;
  rtl::Machine machine_;
  soc::GateLevelMachine gate_;
  std::vector<netlist::NodeId> struck_;
};

class SsfEvaluator {
 public:
  /// `characterization` may be null: the analytical path is then disabled
  /// (every unmasked sample resumes at RTL level). All references must
  /// outlive the evaluator.
  SsfEvaluator(const soc::SocNetlist& soc, const layout::Placement& placement,
               const faultsim::InjectionSimulator& injector,
               const soc::SecurityBenchmark& bench,
               const rtl::GoldenRun& golden,
               const precharac::RegisterCharacterization* characterization,
               const EvaluatorConfig& config = {});

  std::uint64_t target_cycle() const { return target_cycle_; }
  const rtl::GoldenRun& golden() const { return *golden_; }
  const soc::SecurityBenchmark& benchmark() const { return *bench_; }
  const soc::SocNetlist& soc() const { return *soc_; }

  /// Full evaluation of one fault sample (convenience: builds a fresh
  /// scratch; use the scratch overload inside sampling loops).
  SampleRecord evaluate_sample(const faultsim::FaultSample& sample) const;
  /// Same, reusing `scratch`'s machines and buffers. Thread-safe as long as
  /// each thread uses its own scratch: the evaluator itself is only read.
  SampleRecord evaluate_sample(const faultsim::FaultSample& sample,
                               EvalScratch& scratch) const;

  /// Decides the outcome of a given flipped-bit set injected at the end of
  /// cycle `te` (used by evaluate_sample and by hardening re-evaluation,
  /// which filters flip sets).
  bool outcome_for_flips(std::uint64_t te, const std::vector<int>& flips,
                         OutcomePath* path = nullptr) const;

  /// Draws `n` samples from `sampler` and accumulates the SSF estimate.
  ///
  /// With config.threads != 1 the samples are evaluated on a worker pool.
  /// Determinism contract: the sample batch is pre-drawn sequentially from
  /// `sampler` (the stateful Rng stream is untouched by the workers), each
  /// worker evaluates into its sample's slot using per-thread scratch state,
  /// and the result is reduced in sample-index order — so ssf(), variance,
  /// trace, records, and the contribution maps are bitwise-identical for
  /// every thread count, including the sequential engine.
  SsfResult run(Sampler& sampler, Rng& rng, std::size_t n) const;

 private:
  /// Seed-order accumulation of evaluated records into an SsfResult; the
  /// single reduction path shared by the sequential and parallel engines.
  SsfResult reduce(std::vector<SampleRecord>&& records) const;
  /// Shared outcome decision on a machine already positioned just past the
  /// (last) injection cycle with the errors overlaid.
  bool decide_outcome(rtl::Machine& machine, const std::vector<int>& flips,
                      std::uint64_t first_faulty_cycle,
                      OutcomePath* path) const;

  const soc::SocNetlist* soc_;
  const layout::Placement* placement_;
  const faultsim::InjectionSimulator* injector_;
  const soc::SecurityBenchmark* bench_;
  const rtl::GoldenRun* golden_;
  const precharac::RegisterCharacterization* charac_;
  EvaluatorConfig config_;
  AnalyticalEvaluator analytical_;
  std::uint64_t target_cycle_ = 0;
};

}  // namespace fav::mc
