#include "mc/serve.h"

#include <errno.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <utility>

#include "util/io.h"
#include "util/metrics.h"
#include "util/subprocess.h"

namespace fav::mc {

namespace {

// --- wire codec (same shape as the supervisor's) --------------------------

template <typename T>
void put(std::string& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  out.append(bytes, sizeof(T));
}

template <typename T>
bool get(std::string_view data, std::size_t* offset, T* value) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (data.size() - *offset < sizeof(T)) return false;
  std::memcpy(value, data.data() + *offset, sizeof(T));
  *offset += sizeof(T);
  return true;
}

void put_string(std::string& out, std::string_view s) {
  put(out, static_cast<std::uint32_t>(s.size()));
  out.append(s.data(), s.size());
}

bool get_string(std::string_view data, std::size_t* offset, std::string* s) {
  std::uint32_t len = 0;
  if (!get(data, offset, &len)) return false;
  if (data.size() - *offset < len) return false;
  s->assign(data.data() + *offset, len);
  *offset += len;
  return true;
}

// --- socket plumbing ------------------------------------------------------

Status fill_sockaddr(const std::string& path, sockaddr_un* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr->sun_path)) {
    return Status(ErrorCode::kInvalidArgument,
                  "socket path must be 1.." +
                      std::to_string(sizeof(addr->sun_path) - 1) +
                      " bytes, got " + std::to_string(path.size()));
  }
  std::memcpy(addr->sun_path, path.data(), path.size());
  return Status::ok();
}

/// RAII fd so every early return in the protocol paths closes the socket.
class UniqueFd {
 public:
  explicit UniqueFd(int fd = -1) : fd_(fd) {}
  ~UniqueFd() { reset(); }
  UniqueFd(UniqueFd&& other) noexcept : fd_(other.release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;
  int get() const { return fd_; }
  int release() { return std::exchange(fd_, -1); }
  void reset() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
};

Result<UniqueFd> connect_unix(const std::string& path) {
  sockaddr_un addr;
  const Status named = fill_sockaddr(path, &addr);
  if (!named.is_ok()) return named;
  UniqueFd fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (fd.get() < 0) {
    return Status(ErrorCode::kSubprocessFailed,
                  "socket failed: " + io::errno_message(errno));
  }
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    return Status(ErrorCode::kSubprocessFailed,
                  "cannot connect to " + path + ": " +
                      io::errno_message(errno));
  }
  return fd;
}

Result<UniqueFd> bind_and_listen(const std::string& path) {
  sockaddr_un addr;
  const Status named = fill_sockaddr(path, &addr);
  if (!named.is_ok()) return named;
  UniqueFd fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (fd.get() < 0) {
    return Status(ErrorCode::kSubprocessFailed,
                  "socket failed: " + io::errno_message(errno));
  }
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    if (errno != EADDRINUSE) {
      return Status(ErrorCode::kIoError,
                    "bind " + path + " failed: " + io::errno_message(errno));
    }
    // The path exists. If a daemon is accepting on it, refuse to hijack;
    // if nothing answers, it is a stale file from a crashed daemon —
    // replace it.
    Result<UniqueFd> probe = connect_unix(path);
    if (probe.is_ok()) {
      return Status(ErrorCode::kFailedPrecondition,
                    "another daemon is already serving on " + path);
    }
    if (::unlink(path.c_str()) != 0) {
      return Status(ErrorCode::kIoError, "cannot replace stale socket " +
                                             path + ": " +
                                             io::errno_message(errno));
    }
    if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      return Status(ErrorCode::kIoError,
                    "bind " + path + " failed: " + io::errno_message(errno));
    }
  }
  if (::listen(fd.get(), 64) != 0) {
    return Status(ErrorCode::kIoError,
                  "listen on " + path + " failed: " + io::errno_message(errno));
  }
  return fd;
}

/// Serialized, throttled progress frames for one client. Campaign progress
/// arrives from arbitrary evaluator threads; the mutex keeps frames whole
/// relative to the end-of-campaign messages, and the throttle keeps a fast
/// campaign from turning the socket into a firehose.
class ProgressStream {
 public:
  ProgressStream(int fd, std::uint64_t interval_ms)
      : fd_(fd), interval_ns_(interval_ms * 1'000'000ull) {}

  void send(std::uint64_t done, std::uint64_t total) {
    std::lock_guard<std::mutex> lock(mu_);
    if (dead_) return;
    const std::uint64_t now = monotonic_ns();
    if (done < total && now - last_sent_ns_ < interval_ns_ &&
        last_sent_ns_ != 0) {
      return;
    }
    last_sent_ns_ = now;
    // A failed write means the client went away; the campaign keeps
    // running (its journal and report are still produced server-side),
    // we just stop streaming.
    if (!write_frame(fd_, encode_serve_progress(done, total)).is_ok()) {
      dead_ = true;
    }
  }

  /// Final messages, serialized against in-flight progress frames.
  void finish(const std::vector<std::string>& frames) {
    std::lock_guard<std::mutex> lock(mu_);
    for (const std::string& frame : frames) {
      if (dead_) return;
      if (!write_frame(fd_, frame).is_ok()) dead_ = true;
    }
  }

 private:
  const int fd_;
  const std::uint64_t interval_ns_;
  std::mutex mu_;
  std::uint64_t last_sent_ns_ = 0;
  bool dead_ = false;
};

}  // namespace

// --- codec ----------------------------------------------------------------

std::string encode_serve_request(const std::vector<std::string>& args) {
  std::string out;
  put(out, static_cast<std::uint8_t>(ServeWire::kRequest));
  put(out, static_cast<std::uint32_t>(args.size()));
  for (const std::string& a : args) put_string(out, a);
  return out;
}

std::string encode_serve_accepted(std::uint64_t campaign_id) {
  std::string out;
  put(out, static_cast<std::uint8_t>(ServeWire::kAccepted));
  put(out, campaign_id);
  return out;
}

std::string encode_serve_progress(std::uint64_t done, std::uint64_t total) {
  std::string out;
  put(out, static_cast<std::uint8_t>(ServeWire::kProgress));
  put(out, done);
  put(out, total);
  return out;
}

std::string encode_serve_stdout(std::string_view text) {
  std::string out;
  put(out, static_cast<std::uint8_t>(ServeWire::kStdout));
  put_string(out, text);
  return out;
}

std::string encode_serve_report(std::string_view json) {
  std::string out;
  put(out, static_cast<std::uint8_t>(ServeWire::kReport));
  put_string(out, json);
  return out;
}

std::string encode_serve_finished(std::int32_t exit_code) {
  std::string out;
  put(out, static_cast<std::uint8_t>(ServeWire::kFinished));
  put(out, exit_code);
  return out;
}

std::string encode_serve_error(std::string_view message,
                               std::int32_t exit_code) {
  std::string out;
  put(out, static_cast<std::uint8_t>(ServeWire::kError));
  put_string(out, message);
  put(out, exit_code);
  return out;
}

bool decode_serve_message(std::string_view payload, ServeMessage* out) {
  *out = ServeMessage{};
  std::size_t off = 0;
  std::uint8_t type = 0;
  if (!get(payload, &off, &type)) return false;
  if (type < static_cast<std::uint8_t>(ServeWire::kRequest) ||
      type > static_cast<std::uint8_t>(ServeWire::kError)) {
    return false;
  }
  out->type = static_cast<ServeWire>(type);
  switch (out->type) {
    case ServeWire::kRequest: {
      std::uint32_t argc = 0;
      if (!get(payload, &off, &argc)) return false;
      if (argc == 0 || argc > kMaxRequestArgs) return false;
      out->args.reserve(argc);
      for (std::uint32_t i = 0; i < argc; ++i) {
        std::string arg;
        if (!get_string(payload, &off, &arg)) return false;
        if (arg.size() > kMaxRequestArgBytes) return false;
        out->args.push_back(std::move(arg));
      }
      return off == payload.size();
    }
    case ServeWire::kAccepted:
      return get(payload, &off, &out->campaign_id) && off == payload.size();
    case ServeWire::kProgress:
      return get(payload, &off, &out->done) &&
             get(payload, &off, &out->total) && off == payload.size();
    case ServeWire::kStdout:
    case ServeWire::kReport:
      return get_string(payload, &off, &out->text) && off == payload.size();
    case ServeWire::kFinished:
      return get(payload, &off, &out->exit_code) && off == payload.size();
    case ServeWire::kError:
      return get_string(payload, &off, &out->text) &&
             get(payload, &off, &out->exit_code) && off == payload.size();
  }
  return false;
}

// --- server ---------------------------------------------------------------

CampaignServer::CampaignServer(ServeConfig config, CampaignRunner runner)
    : config_(std::move(config)), runner_(std::move(runner)) {}

void CampaignServer::log_line(const std::string& line) const {
  if (config_.log) {
    config_.log(line);
  } else {
    std::fprintf(stderr, "fav serve: %s\n", line.c_str());
  }
}

bool CampaignServer::acquire_slot() {
  std::unique_lock<std::mutex> lock(mu_);
  slot_cv_.wait(lock, [this] {
    return draining_ || active_ < config_.max_concurrent;
  });
  if (draining_) return false;
  ++active_;
  return true;
}

void CampaignServer::release_slot() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --active_;
  }
  slot_cv_.notify_all();
}

Status CampaignServer::serve() {
  if (config_.stop == nullptr) {
    return Status(ErrorCode::kInvalidArgument,
                  "serve requires a stop flag (how else would it ever exit)");
  }
  if (config_.max_concurrent == 0 || !runner_) {
    return Status(ErrorCode::kInvalidArgument,
                  "serve requires max_concurrent >= 1 and a runner");
  }
  // A client that hangs up mid-stream must surface as a write error on that
  // one socket, never SIGPIPE the daemon (process-wide and idempotent, like
  // the supervisor's).
  ::signal(SIGPIPE, SIG_IGN);
  Result<UniqueFd> bound = bind_and_listen(config_.socket_path);
  if (!bound.is_ok()) return bound.status();
  UniqueFd listen_fd = std::move(bound).value();
  log_line("listening on " + config_.socket_path + " (max " +
           std::to_string(config_.max_concurrent) +
           " concurrent campaigns)");

  std::vector<std::thread> handlers;
  std::uint64_t next_id = 1;
  while (!config_.stop->load(std::memory_order_relaxed)) {
    struct pollfd pfd {};
    pfd.fd = listen_fd.get();
    pfd.events = POLLIN;
    const int rc = ::poll(&pfd, 1, 200);
    if (rc < 0 && errno != EINTR) {
      log_line("accept poll failed: " + io::errno_message(errno));
      break;
    }
    if (rc <= 0) continue;
    const int client =
        ::accept4(listen_fd.get(), nullptr, nullptr, SOCK_CLOEXEC);
    if (client < 0) {
      if (errno != EINTR && errno != ECONNABORTED) {
        log_line("accept failed: " + io::errno_message(errno));
      }
      continue;
    }
    handlers.emplace_back(&CampaignServer::handle_client, this, client,
                          next_id++);
  }

  // Drain: wake queued requests so they fail fast, then wait for in-flight
  // campaigns (they share the stop flag and wind down on their own).
  {
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
  }
  slot_cv_.notify_all();
  listen_fd.reset();
  for (std::thread& t : handlers) t.join();
  ::unlink(config_.socket_path.c_str());
  log_line("drained; " + std::to_string(stats_.completed) + " campaign(s) " +
           "served, " + std::to_string(stats_.rejected) + " rejected");
  return Status::ok();
}

void CampaignServer::handle_client(int fd, std::uint64_t campaign_id) {
  UniqueFd client(fd);
  FrameBuffer buf;
  Result<std::string> frame =
      read_frame(client.get(), buf, config_.request_timeout_ms);
  ServeMessage msg;
  if (!frame.is_ok() || !decode_serve_message(frame.value(), &msg) ||
      msg.type != ServeWire::kRequest) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.rejected;
    (void)write_frame(client.get(),
                      encode_serve_error("malformed campaign request", 2));
    return;
  }
  (void)write_frame(client.get(), encode_serve_accepted(campaign_id));

  if (!acquire_slot()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.rejected;
    (void)write_frame(client.get(),
                      encode_serve_error("server is shutting down", 1));
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.accepted;
  }
  std::string argv_line;
  for (const std::string& a : msg.args) {
    if (!argv_line.empty()) argv_line += ' ';
    argv_line += a;
  }
  log_line("campaign " + std::to_string(campaign_id) + ": " + argv_line);

  ProgressStream progress(client.get(), config_.progress_interval_ms);
  CampaignOutcome outcome = runner_(
      msg.args, [&progress](std::uint64_t done, std::uint64_t total) {
        progress.send(done, total);
      });
  release_slot();

  std::vector<std::string> tail;
  if (!outcome.error.empty()) {
    tail.push_back(encode_serve_error(
        outcome.error, static_cast<std::int32_t>(outcome.exit_code)));
  } else {
    tail.push_back(encode_serve_stdout(outcome.stdout_block));
    if (!outcome.report_json.empty()) {
      tail.push_back(encode_serve_report(outcome.report_json));
    }
    tail.push_back(
        encode_serve_finished(static_cast<std::int32_t>(outcome.exit_code)));
  }
  progress.finish(tail);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.completed;
  }
  log_line("campaign " + std::to_string(campaign_id) + ": exit " +
           std::to_string(outcome.exit_code) +
           (outcome.error.empty() ? "" : " (" + outcome.error + ")"));
}

// --- client ---------------------------------------------------------------

Result<SubmitResult> submit_campaign(const std::string& socket_path,
                                     const std::vector<std::string>& args,
                                     const ProgressFn& on_progress) {
  if (args.empty() || args.size() > kMaxRequestArgs) {
    return Status(ErrorCode::kInvalidArgument,
                  "a campaign request needs 1.." +
                      std::to_string(kMaxRequestArgs) + " arguments");
  }
  for (const std::string& a : args) {
    if (a.size() > kMaxRequestArgBytes) {
      return Status(ErrorCode::kInvalidArgument,
                    "campaign argument exceeds " +
                        std::to_string(kMaxRequestArgBytes) + " bytes");
    }
  }
  Result<UniqueFd> connected = connect_unix(socket_path);
  if (!connected.is_ok()) return connected.status();
  UniqueFd fd = std::move(connected).value();
  const Status sent = write_frame(fd.get(), encode_serve_request(args));
  if (!sent.is_ok()) return sent;

  SubmitResult result;
  FrameBuffer buf;
  for (;;) {
    // No client-side deadline: a queued campaign may legitimately wait on a
    // slot for a long time, and a dead server surfaces as EOF here.
    Result<std::string> frame = read_frame(fd.get(), buf, -1);
    if (!frame.is_ok()) {
      return Status(frame.status().code(),
                    "serve stream ended early: " + frame.status().to_string());
    }
    ServeMessage msg;
    if (!decode_serve_message(frame.value(), &msg)) {
      return Status(ErrorCode::kSubprocessFailed,
                    "malformed frame from serve daemon");
    }
    switch (msg.type) {
      case ServeWire::kAccepted:
        break;  // informational
      case ServeWire::kProgress:
        if (on_progress) on_progress(msg.done, msg.total);
        break;
      case ServeWire::kStdout:
        result.stdout_block = std::move(msg.text);
        break;
      case ServeWire::kReport:
        result.report_json = std::move(msg.text);
        break;
      case ServeWire::kFinished:
        result.exit_code = static_cast<int>(msg.exit_code);
        return result;
      case ServeWire::kError:
        result.error = std::move(msg.text);
        result.exit_code = static_cast<int>(msg.exit_code);
        return result;
      case ServeWire::kRequest:
        return Status(ErrorCode::kSubprocessFailed,
                      "unexpected request frame from serve daemon");
    }
  }
}

}  // namespace fav::mc
