#include "mc/serve.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>
#include <utility>

#include "util/io.h"
#include "util/metrics.h"
#include "util/subprocess.h"

namespace fav::mc {

namespace {

// --- wire codec (same shape as the supervisor's) --------------------------

template <typename T>
void put(std::string& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  out.append(bytes, sizeof(T));
}

template <typename T>
bool get(std::string_view data, std::size_t* offset, T* value) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (data.size() - *offset < sizeof(T)) return false;
  std::memcpy(value, data.data() + *offset, sizeof(T));
  *offset += sizeof(T);
  return true;
}

void put_string(std::string& out, std::string_view s) {
  put(out, static_cast<std::uint32_t>(s.size()));
  out.append(s.data(), s.size());
}

bool get_string(std::string_view data, std::size_t* offset, std::string* s) {
  std::uint32_t len = 0;
  if (!get(data, offset, &len)) return false;
  if (data.size() - *offset < len) return false;
  s->assign(data.data() + *offset, len);
  *offset += len;
  return true;
}

// --- socket plumbing ------------------------------------------------------

Status fill_sockaddr(const std::string& path, sockaddr_un* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr->sun_path)) {
    return Status(ErrorCode::kInvalidArgument,
                  "socket path must be 1.." +
                      std::to_string(sizeof(addr->sun_path) - 1) +
                      " bytes, got " + std::to_string(path.size()));
  }
  std::memcpy(addr->sun_path, path.data(), path.size());
  return Status::ok();
}

/// RAII fd so every early return in the protocol paths closes the socket.
class UniqueFd {
 public:
  explicit UniqueFd(int fd = -1) : fd_(fd) {}
  ~UniqueFd() { reset(); }
  UniqueFd(UniqueFd&& other) noexcept : fd_(other.release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;
  int get() const { return fd_; }
  int release() { return std::exchange(fd_, -1); }
  void reset() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
};

Result<UniqueFd> connect_unix(const std::string& path) {
  sockaddr_un addr;
  const Status named = fill_sockaddr(path, &addr);
  if (!named.is_ok()) return named;
  UniqueFd fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (fd.get() < 0) {
    return Status(ErrorCode::kSubprocessFailed,
                  "socket failed: " + io::errno_message(errno));
  }
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    return Status(ErrorCode::kSubprocessFailed,
                  "cannot connect to " + path + ": " +
                      io::errno_message(errno));
  }
  return fd;
}

Result<UniqueFd> bind_and_listen(const std::string& path) {
  sockaddr_un addr;
  const Status named = fill_sockaddr(path, &addr);
  if (!named.is_ok()) return named;
  UniqueFd fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (fd.get() < 0) {
    return Status(ErrorCode::kSubprocessFailed,
                  "socket failed: " + io::errno_message(errno));
  }
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    if (errno != EADDRINUSE) {
      return Status(ErrorCode::kIoError,
                    "bind " + path + " failed: " + io::errno_message(errno));
    }
    // The path exists. If a daemon is accepting on it, refuse to hijack;
    // if nothing answers, it is a stale file from a crashed daemon —
    // replace it.
    Result<UniqueFd> probe = connect_unix(path);
    if (probe.is_ok()) {
      return Status(ErrorCode::kFailedPrecondition,
                    "another daemon is already serving on " + path);
    }
    if (::unlink(path.c_str()) != 0) {
      return Status(ErrorCode::kIoError, "cannot replace stale socket " +
                                             path + ": " +
                                             io::errno_message(errno));
    }
    if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      return Status(ErrorCode::kIoError,
                    "bind " + path + " failed: " + io::errno_message(errno));
    }
  }
  if (::listen(fd.get(), 64) != 0) {
    return Status(ErrorCode::kIoError,
                  "listen on " + path + " failed: " + io::errno_message(errno));
  }
  return fd;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// Serialized, throttled progress frames for one client. Campaign progress
/// arrives from arbitrary evaluator threads; the mutex keeps frames whole
/// relative to heartbeats and the end-of-campaign messages, and the throttle
/// keeps a fast campaign from turning the socket into a firehose. Every
/// write carries the configured deadline: a client that stopped draining its
/// socket marks the stream dead instead of wedging an evaluator thread.
class ProgressStream {
 public:
  ProgressStream(int fd, std::uint64_t interval_ms, int write_timeout_ms)
      : fd_(fd),
        interval_ns_(interval_ms * 1'000'000ull),
        write_timeout_ms_(write_timeout_ms) {}

  void send(std::uint64_t done, std::uint64_t total) {
    std::lock_guard<std::mutex> lock(mu_);
    if (dead_.load(std::memory_order_relaxed)) return;
    const std::uint64_t now = monotonic_ns();
    if (done < total && now - last_sent_ns_ < interval_ns_ &&
        last_sent_ns_ != 0) {
      return;
    }
    last_sent_ns_ = now;
    // A failed write means the client went away (or wedged); the monitor
    // notices the dead stream and cancels the campaign to a resumable stop.
    write_locked(encode_serve_progress(done, total));
  }

  void heartbeat(bool running) {
    std::lock_guard<std::mutex> lock(mu_);
    if (dead_.load(std::memory_order_relaxed)) return;
    write_locked(encode_serve_heartbeat(running));
  }

  /// Final messages, serialized against in-flight progress frames.
  void finish(const std::vector<std::string>& frames) {
    std::lock_guard<std::mutex> lock(mu_);
    for (const std::string& frame : frames) {
      if (dead_.load(std::memory_order_relaxed)) return;
      write_locked(frame);
    }
  }

  bool dead() const { return dead_.load(std::memory_order_relaxed); }

 private:
  void write_locked(std::string_view frame) {
    if (!write_frame_deadline(fd_, frame, write_timeout_ms_).is_ok()) {
      dead_.store(true, std::memory_order_relaxed);
    }
  }

  const int fd_;
  const std::uint64_t interval_ns_;
  const int write_timeout_ms_;
  std::mutex mu_;
  std::uint64_t last_sent_ns_ = 0;
  std::atomic<bool> dead_{false};
};

// --- campaign monitor -----------------------------------------------------

/// Why a campaign's cancel token was tripped.
enum class CancelCause { kNone, kClientGone, kClientCancel, kDeadline };

/// Per-campaign watchdog thread: watches the client socket for hangup /
/// kCancel frames, enforces the wall-clock deadline, forwards the daemon's
/// stop flag, and emits heartbeats so the client can tell a slow campaign
/// from a wedged daemon. Works with fd < 0 (ledger-recovered campaigns have
/// no client): only the deadline and stop-flag duties remain.
class CampaignMonitor {
 public:
  CampaignMonitor(int client_fd, FrameBuffer* buf, ProgressStream* stream,
                  const ServeConfig& config, std::atomic<bool>* cancel)
      : fd_(client_fd),
        buf_(buf),
        stream_(stream),
        config_(config),
        cancel_(cancel),
        thread_([this] { loop(); }) {}

  ~CampaignMonitor() { stop(); }

  /// Flips the heartbeat payload from "queued" to "running".
  void set_running() { running_.store(true, std::memory_order_relaxed); }

  void stop() {
    done_.store(true, std::memory_order_relaxed);
    if (thread_.joinable()) thread_.join();
  }

  CancelCause cause() const { return cause_.load(std::memory_order_relaxed); }

 private:
  static constexpr int kPollMs = 20;

  void trip(CancelCause cause) {
    cause_.store(cause, std::memory_order_relaxed);
    cancel_->store(true, std::memory_order_relaxed);
  }

  void loop() {
    const std::uint64_t start_ns = monotonic_ns();
    const std::uint64_t heartbeat_ns =
        config_.heartbeat_interval_ms * 1'000'000ull;
    std::uint64_t next_heartbeat_ns = start_ns + heartbeat_ns;
    while (!done_.load(std::memory_order_relaxed)) {
      if (config_.stop->load(std::memory_order_relaxed)) {
        // Daemon drain: stop the campaign but leave the cause unset — a
        // drained campaign completed (interrupted), it was not cancelled.
        cancel_->store(true, std::memory_order_relaxed);
        return;
      }
      if (config_.campaign_deadline_ms != 0 &&
          monotonic_ns() - start_ns >=
              config_.campaign_deadline_ms * 1'000'000ull) {
        trip(CancelCause::kDeadline);
        return;
      }
      if (stream_ != nullptr && stream_->dead()) {
        trip(CancelCause::kClientGone);
        return;
      }
      if (fd_ >= 0) {
        struct pollfd pfd {};
        pfd.fd = fd_;
        pfd.events = POLLIN;
        const int rc = ::poll(&pfd, 1, kPollMs);
        if (rc < 0 && errno != EINTR) {
          trip(CancelCause::kClientGone);
          return;
        }
        // POLLIN covers both data and EOF; the drain decides which.
        if (rc > 0 && !drain_client()) return;
      } else {
        ::poll(nullptr, 0, kPollMs);
      }
      if (stream_ != nullptr && heartbeat_ns != 0 &&
          monotonic_ns() >= next_heartbeat_ns) {
        stream_->heartbeat(running_.load(std::memory_order_relaxed));
        next_heartbeat_ns += heartbeat_ns;
      }
    }
  }

  /// Reads whatever the client sent mid-campaign. Returns false once the
  /// cancel token was tripped (EOF, kCancel, or protocol garbage).
  bool drain_client() {
    if (!drain_into(fd_, *buf_)) {
      trip(CancelCause::kClientGone);
      return false;
    }
    std::string payload;
    while (buf_->next(&payload)) {
      ServeMessage msg;
      if (!decode_serve_message(payload, &msg)) {
        trip(CancelCause::kClientGone);  // protocol violation = broken peer
        return false;
      }
      if (msg.type == ServeWire::kCancel) {
        trip(CancelCause::kClientCancel);
        return false;
      }
      // Anything else mid-campaign is unexpected but harmless chatter.
    }
    if (buf_->corrupt()) {
      trip(CancelCause::kClientGone);
      return false;
    }
    return true;
  }

  const int fd_;
  FrameBuffer* const buf_;
  ProgressStream* const stream_;
  const ServeConfig& config_;
  std::atomic<bool>* const cancel_;
  std::atomic<bool> running_{false};
  std::atomic<bool> done_{false};
  std::atomic<CancelCause> cause_{CancelCause::kNone};
  std::thread thread_;
};

// --- ledger wire ----------------------------------------------------------

constexpr char kLedgerMagic[8] = {'F', 'A', 'V', 'L', 'D', 'G', 'R', '1'};
/// A ledger payload is a state byte, an id, and at most a request argv.
constexpr std::uint32_t kMaxLedgerPayload =
    1u + 8u + 4u +
    static_cast<std::uint32_t>(kMaxRequestArgs * (4u + kMaxRequestArgBytes));

std::string encode_ledger_payload(CampaignState state, std::uint64_t id) {
  std::string out;
  io::put_le(out, static_cast<std::uint8_t>(state));
  io::put_le(out, id);
  return out;
}

/// Appends `--resume` to a recovered argv when its journal directory already
/// holds shard files; a campaign that died before its first shard restarts
/// fresh (resume of an empty journal would be refused).
bool maybe_append_resume(std::vector<std::string>* args) {
  std::string journal_dir;
  bool has_resume = false;
  for (std::size_t i = 0; i < args->size(); ++i) {
    if ((*args)[i] == "--journal" && i + 1 < args->size()) {
      journal_dir = (*args)[i + 1];
    }
    if ((*args)[i] == "--resume") has_resume = true;
  }
  if (journal_dir.empty() || has_resume) return false;
  std::error_code ec;
  std::filesystem::directory_iterator it(journal_dir, ec);
  const std::filesystem::directory_iterator end;
  for (; !ec && it != end; it.increment(ec)) {
    if (it->path().extension() == ".fj") {
      args->push_back("--resume");
      return true;
    }
  }
  return false;
}

}  // namespace

// --- codec ----------------------------------------------------------------

std::string encode_serve_request(const std::vector<std::string>& args) {
  std::string out;
  put(out, static_cast<std::uint8_t>(ServeWire::kRequest));
  put(out, static_cast<std::uint32_t>(args.size()));
  for (const std::string& a : args) put_string(out, a);
  return out;
}

std::string encode_serve_accepted(std::uint64_t campaign_id) {
  std::string out;
  put(out, static_cast<std::uint8_t>(ServeWire::kAccepted));
  put(out, campaign_id);
  return out;
}

std::string encode_serve_progress(std::uint64_t done, std::uint64_t total) {
  std::string out;
  put(out, static_cast<std::uint8_t>(ServeWire::kProgress));
  put(out, done);
  put(out, total);
  return out;
}

std::string encode_serve_stdout(std::string_view text) {
  std::string out;
  put(out, static_cast<std::uint8_t>(ServeWire::kStdout));
  put_string(out, text);
  return out;
}

std::string encode_serve_report(std::string_view json) {
  std::string out;
  put(out, static_cast<std::uint8_t>(ServeWire::kReport));
  put_string(out, json);
  return out;
}

std::string encode_serve_finished(std::int32_t exit_code) {
  std::string out;
  put(out, static_cast<std::uint8_t>(ServeWire::kFinished));
  put(out, exit_code);
  return out;
}

std::string encode_serve_error(std::string_view message,
                               std::int32_t exit_code) {
  std::string out;
  put(out, static_cast<std::uint8_t>(ServeWire::kError));
  put_string(out, message);
  put(out, exit_code);
  return out;
}

std::string encode_serve_busy(std::uint64_t retry_after_ms) {
  std::string out;
  put(out, static_cast<std::uint8_t>(ServeWire::kBusy));
  put(out, retry_after_ms);
  return out;
}

std::string encode_serve_heartbeat(bool running) {
  std::string out;
  put(out, static_cast<std::uint8_t>(ServeWire::kHeartbeat));
  put(out, static_cast<std::uint8_t>(running ? 1 : 0));
  return out;
}

std::string encode_serve_cancel() {
  std::string out;
  put(out, static_cast<std::uint8_t>(ServeWire::kCancel));
  return out;
}

bool decode_serve_message(std::string_view payload, ServeMessage* out) {
  *out = ServeMessage{};
  std::size_t off = 0;
  std::uint8_t type = 0;
  if (!get(payload, &off, &type)) return false;
  if (type < static_cast<std::uint8_t>(ServeWire::kRequest) ||
      type > static_cast<std::uint8_t>(ServeWire::kCancel)) {
    return false;
  }
  out->type = static_cast<ServeWire>(type);
  switch (out->type) {
    case ServeWire::kRequest: {
      std::uint32_t argc = 0;
      if (!get(payload, &off, &argc)) return false;
      if (argc == 0 || argc > kMaxRequestArgs) return false;
      out->args.reserve(argc);
      for (std::uint32_t i = 0; i < argc; ++i) {
        std::string arg;
        if (!get_string(payload, &off, &arg)) return false;
        if (arg.size() > kMaxRequestArgBytes) return false;
        out->args.push_back(std::move(arg));
      }
      return off == payload.size();
    }
    case ServeWire::kAccepted:
      return get(payload, &off, &out->campaign_id) && off == payload.size();
    case ServeWire::kProgress:
      return get(payload, &off, &out->done) &&
             get(payload, &off, &out->total) && off == payload.size();
    case ServeWire::kStdout:
    case ServeWire::kReport:
      return get_string(payload, &off, &out->text) && off == payload.size();
    case ServeWire::kFinished:
      return get(payload, &off, &out->exit_code) && off == payload.size();
    case ServeWire::kError:
      return get_string(payload, &off, &out->text) &&
             get(payload, &off, &out->exit_code) && off == payload.size();
    case ServeWire::kBusy:
      return get(payload, &off, &out->retry_after_ms) &&
             off == payload.size();
    case ServeWire::kHeartbeat: {
      std::uint8_t running = 0;
      if (!get(payload, &off, &running)) return false;
      if (running > 1) return false;
      out->running = running == 1;
      return off == payload.size();
    }
    case ServeWire::kCancel:
      return off == payload.size();
  }
  return false;
}

// --- ledger ---------------------------------------------------------------

CampaignLedger::~CampaignLedger() {
  if (file_ != nullptr) std::fclose(file_);
}

CampaignLedger::CampaignLedger(CampaignLedger&& other) noexcept {
  *this = std::move(other);
}

CampaignLedger& CampaignLedger::operator=(CampaignLedger&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    path_ = std::move(other.path_);
    file_ = std::exchange(other.file_, nullptr);
    entries_ = std::move(other.entries_);
    next_id_ = other.next_id_;
    discarded_bytes_ = other.discarded_bytes_;
  }
  return *this;
}

Result<CampaignLedger> CampaignLedger::open(const std::string& path) {
  CampaignLedger ledger;
  ledger.path_ = path;
  std::string content;
  if (Result<std::string> read = io::read_file(path); read.is_ok()) {
    content = std::move(read).value();
  }
  std::size_t valid_len = 0;
  if (!content.empty()) {
    if (content.size() < sizeof(kLedgerMagic) ||
        std::memcmp(content.data(), kLedgerMagic, sizeof(kLedgerMagic)) != 0) {
      return Status(ErrorCode::kJournalCorrupt,
                    "not a campaign ledger (bad magic): " + path);
    }
    std::size_t off = sizeof(kLedgerMagic);
    valid_len = off;
    // Replay whole records; stop at the first torn or corrupt one and
    // truncate it away — a SIGKILL mid-append must never brick the daemon.
    for (;;) {
      std::size_t record_off = off;
      std::uint32_t len = 0;
      if (!io::get_le(content, &record_off, &len)) break;
      if (len == 0 || len > kMaxLedgerPayload) break;
      if (content.size() - record_off < len + sizeof(std::uint32_t)) break;
      const std::string_view payload(content.data() + record_off, len);
      record_off += len;
      std::uint32_t crc = 0;
      (void)io::get_le(content, &record_off, &crc);
      if (crc != io::crc32c(payload.data(), payload.size())) break;

      // Decode into locals first: a malformed (but CRC-valid) record must
      // truncate the tail without leaving a half-parsed entry behind.
      std::size_t p = 0;
      std::uint8_t state = 0;
      std::uint64_t id = 0;
      if (!get(payload, &p, &state) || !get(payload, &p, &id)) break;
      bool ok = false;
      std::vector<std::string> args;
      std::int32_t exit_code = 0;
      switch (static_cast<CampaignState>(state)) {
        case CampaignState::kAccepted: {
          std::uint32_t argc = 0;
          if (!get(payload, &p, &argc) || argc > kMaxRequestArgs) break;
          ok = true;
          for (std::uint32_t i = 0; i < argc; ++i) {
            std::string arg;
            if (!get_string(payload, &p, &arg) ||
                arg.size() > kMaxRequestArgBytes) {
              ok = false;
              break;
            }
            args.push_back(std::move(arg));
          }
          ok = ok && p == payload.size();
          break;
        }
        case CampaignState::kRunning:
          ok = p == payload.size();
          break;
        case CampaignState::kFinished:
          ok = get(payload, &p, &exit_code) && p == payload.size();
          break;
        default:
          break;
      }
      if (!ok) break;
      Entry& entry = ledger.entries_[id];
      entry.id = id;
      entry.state = static_cast<CampaignState>(state);
      if (static_cast<CampaignState>(state) == CampaignState::kAccepted) {
        entry.args = std::move(args);
      } else if (static_cast<CampaignState>(state) ==
                 CampaignState::kFinished) {
        entry.exit_code = exit_code;
      }
      ledger.next_id_ = std::max(ledger.next_id_, id + 1);
      off = record_off;
      valid_len = off;
    }
    ledger.discarded_bytes_ = content.size() - valid_len;
    if (ledger.discarded_bytes_ > 0 &&
        ::truncate(path.c_str(), static_cast<off_t>(valid_len)) != 0) {
      return io::status_from_errno(errno,
                                   "truncate torn ledger tail of " + path);
    }
  }
  ledger.file_ = std::fopen(path.c_str(), "ab");
  if (ledger.file_ == nullptr) {
    return io::status_from_errno(errno, "open campaign ledger " + path);
  }
  if (content.empty()) {
    if (Status s = io::write_all(ledger.file_, kLedgerMagic,
                                 sizeof(kLedgerMagic), "ledger magic");
        !s.is_ok()) {
      return s;
    }
    if (Status s = io::flush_and_fsync(ledger.file_, "ledger magic");
        !s.is_ok()) {
      return s;
    }
    const std::filesystem::path parent =
        std::filesystem::path(path).parent_path();
    (void)io::fsync_dir(parent.empty() ? "." : parent.string());
  }
  return ledger;
}

Status CampaignLedger::append(std::string_view payload) {
  if (file_ == nullptr) {
    return Status(ErrorCode::kFailedPrecondition, "ledger is not open");
  }
  std::string record;
  io::put_le(record, static_cast<std::uint32_t>(payload.size()));
  record.append(payload.data(), payload.size());
  io::put_le(record, io::crc32c(payload.data(), payload.size()));
  if (Status s = io::write_all(file_, record.data(), record.size(),
                               "campaign ledger " + path_);
      !s.is_ok()) {
    return s;
  }
  return io::flush_and_fsync(file_, "campaign ledger " + path_);
}

Status CampaignLedger::accepted(std::uint64_t id,
                                const std::vector<std::string>& args) {
  std::string payload = encode_ledger_payload(CampaignState::kAccepted, id);
  io::put_le(payload, static_cast<std::uint32_t>(args.size()));
  for (const std::string& a : args) {
    io::put_le(payload, static_cast<std::uint32_t>(a.size()));
    payload.append(a);
  }
  Entry& entry = entries_[id];
  entry.id = id;
  entry.state = CampaignState::kAccepted;
  entry.args = args;
  next_id_ = std::max(next_id_, id + 1);
  return append(payload);
}

Status CampaignLedger::running(std::uint64_t id) {
  Entry& entry = entries_[id];
  entry.id = id;
  entry.state = CampaignState::kRunning;
  next_id_ = std::max(next_id_, id + 1);
  return append(encode_ledger_payload(CampaignState::kRunning, id));
}

Status CampaignLedger::finished(std::uint64_t id, std::int32_t exit_code) {
  Entry& entry = entries_[id];
  entry.id = id;
  entry.state = CampaignState::kFinished;
  entry.exit_code = exit_code;
  next_id_ = std::max(next_id_, id + 1);
  std::string payload = encode_ledger_payload(CampaignState::kFinished, id);
  io::put_le(payload, exit_code);
  return append(payload);
}

std::vector<CampaignLedger::Entry> CampaignLedger::interrupted() const {
  std::vector<Entry> out;
  for (const auto& [id, entry] : entries_) {
    if (entry.state != CampaignState::kFinished) out.push_back(entry);
  }
  return out;
}

// --- server ---------------------------------------------------------------

CampaignServer::CampaignServer(ServeConfig config, CampaignRunner runner)
    : config_(std::move(config)), runner_(std::move(runner)) {}

void CampaignServer::log_line(const std::string& line) const {
  if (config_.log) {
    config_.log(line);
  } else {
    std::fprintf(stderr, "fav serve: %s\n", line.c_str());
  }
}

ServeStats CampaignServer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t CampaignServer::live_handlers() const {
  std::lock_guard<std::mutex> lock(handlers_mu_);
  return handlers_.size();
}

std::string CampaignServer::stats_json() const {
  const ServeStats s = stats();
  std::string json = "{\n  \"schema\": \"fav.serve_stats.v1\",\n";
  json += "  \"socket\": \"" + io::json_escape(config_.socket_path) + "\",\n";
  auto field = [&json](const char* name, std::uint64_t value, bool last) {
    json += "  \"";
    json += name;
    json += "\": " + std::to_string(value) + (last ? "\n" : ",\n");
  };
  field("accepted", s.accepted, false);
  field("completed", s.completed, false);
  field("failed", s.failed, false);
  field("cancelled", s.cancelled, false);
  field("deadline_stopped", s.deadline_stopped, false);
  field("recovered", s.recovered, false);
  field("rejected", s.rejected, false);
  field("busy", s.busy, true);
  json += "}\n";
  return json;
}

void CampaignServer::write_stats_snapshot() const {
  if (config_.stats_path.empty()) return;
  const Status s = io::atomic_write_file(config_.stats_path, stats_json());
  if (!s.is_ok()) {
    log_line("stats snapshot failed: " + s.to_string());
  }
}

Status CampaignServer::ledger_append(
    const std::function<Status(CampaignLedger&)>& op) {
  std::lock_guard<std::mutex> lock(ledger_mu_);
  if (ledger_ == nullptr) return Status::ok();
  const Status s = op(*ledger_);
  if (!s.is_ok()) {
    // A failing ledger medium degrades recovery, it must not take down the
    // campaign that is still producing its journal and report.
    log_line("ledger append failed: " + s.to_string());
  }
  return s;
}

void CampaignServer::start_handler(std::function<void()> body) {
  auto handler = std::make_unique<Handler>();
  Handler* raw = handler.get();
  std::thread thread([raw, body = std::move(body)] {
    body();
    raw->done.store(true, std::memory_order_release);
  });
  // The thread member is assigned before the handler becomes visible to the
  // reaper (same mutex), so a join can never observe a half-formed Handler
  // even when the body finishes before push_back.
  std::lock_guard<std::mutex> lock(handlers_mu_);
  handler->thread = std::move(thread);
  handlers_.push_back(std::move(handler));
}

void CampaignServer::reap_handlers() {
  std::lock_guard<std::mutex> lock(handlers_mu_);
  for (auto it = handlers_.begin(); it != handlers_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      (*it)->thread.join();
      it = handlers_.erase(it);
    } else {
      ++it;
    }
  }
}

void CampaignServer::join_all_handlers() {
  for (;;) {
    std::unique_ptr<Handler> handler;
    {
      std::lock_guard<std::mutex> lock(handlers_mu_);
      if (handlers_.empty()) return;
      handler = std::move(handlers_.front());
      handlers_.pop_front();
    }
    handler->thread.join();
  }
}

CampaignServer::Admission CampaignServer::acquire_slot(
    const std::atomic<bool>& cancel) {
  std::unique_lock<std::mutex> lock(mu_);
  if (draining_) return Admission::kStopped;
  if (active_ < config_.max_concurrent) {
    ++active_;
    return Admission::kRun;
  }
  if (queued_ >= config_.max_queued) return Admission::kBusy;
  ++queued_;
  for (;;) {
    if (draining_) {
      --queued_;
      return Admission::kStopped;
    }
    if (cancel.load(std::memory_order_relaxed)) {
      --queued_;
      return Admission::kCancelled;
    }
    if (active_ < config_.max_concurrent) {
      --queued_;
      ++active_;
      return Admission::kRun;
    }
    // Bounded wait: the cancel token is tripped by the campaign monitor
    // without a condition-variable signal, so the queue polls it.
    slot_cv_.wait_for(lock, std::chrono::milliseconds(50));
  }
}

void CampaignServer::release_slot() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --active_;
  }
  slot_cv_.notify_all();
}

Status CampaignServer::serve() {
  if (config_.stop == nullptr) {
    return Status(ErrorCode::kInvalidArgument,
                  "serve requires a stop flag (how else would it ever exit)");
  }
  if (config_.max_concurrent == 0 || !runner_) {
    return Status(ErrorCode::kInvalidArgument,
                  "serve requires max_concurrent >= 1 and a runner");
  }
  // A client that hangs up mid-stream must surface as a write error on that
  // one socket, never SIGPIPE the daemon (process-wide and idempotent, like
  // the supervisor's).
  ::signal(SIGPIPE, SIG_IGN);

  std::vector<CampaignLedger::Entry> to_recover;
  std::uint64_t next_id = 1;
  if (!config_.ledger_path.empty()) {
    Result<CampaignLedger> opened = CampaignLedger::open(config_.ledger_path);
    if (!opened.is_ok()) return opened.status();
    auto ledger = std::make_unique<CampaignLedger>(std::move(opened).value());
    if (ledger->discarded_bytes() > 0) {
      log_line("ledger: discarded " +
               std::to_string(ledger->discarded_bytes()) +
               " byte(s) of torn tail");
    }
    to_recover = ledger->interrupted();
    next_id = ledger->next_campaign_id();
    std::lock_guard<std::mutex> lock(ledger_mu_);
    ledger_ = std::move(ledger);
  }

  Result<UniqueFd> bound = bind_and_listen(config_.socket_path);
  if (!bound.is_ok()) return bound.status();
  UniqueFd listen_fd = std::move(bound).value();
  log_line("listening on " + config_.socket_path + " (max " +
           std::to_string(config_.max_concurrent) +
           " concurrent campaigns, queue " +
           std::to_string(config_.max_queued) + ")");

  for (CampaignLedger::Entry& entry : to_recover) {
    log_line("campaign " + std::to_string(entry.id) +
             ": interrupted by a previous crash, recovering");
    start_handler([this, entry = std::move(entry)]() mutable {
      run_recovered(std::move(entry));
    });
  }

  while (!config_.stop->load(std::memory_order_relaxed)) {
    struct pollfd pfd {};
    pfd.fd = listen_fd.get();
    pfd.events = POLLIN;
    const int rc = ::poll(&pfd, 1, 200);
    reap_handlers();
    if (rc < 0 && errno != EINTR) {
      log_line("accept poll failed: " + io::errno_message(errno));
      break;
    }
    if (rc <= 0) continue;
    const int client =
        ::accept4(listen_fd.get(), nullptr, nullptr, SOCK_CLOEXEC);
    if (client < 0) {
      if (errno != EINTR && errno != ECONNABORTED) {
        log_line("accept failed: " + io::errno_message(errno));
      }
      continue;
    }
    start_handler([this, client, id = next_id++] {
      handle_client(client, id);
    });
  }

  // Drain: wake queued requests so they fail fast, then wait for in-flight
  // campaigns (their monitors forward the stop flag through the cancel
  // tokens and they wind down on their own).
  {
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
  }
  slot_cv_.notify_all();
  listen_fd.reset();
  join_all_handlers();
  ::unlink(config_.socket_path.c_str());
  write_stats_snapshot();
  const ServeStats s = stats();
  log_line("drained; " + std::to_string(s.completed) + " completed, " +
           std::to_string(s.failed) + " failed, " +
           std::to_string(s.cancelled) + " cancelled, " +
           std::to_string(s.deadline_stopped) + " deadline-stopped, " +
           std::to_string(s.recovered) + " recovered, " +
           std::to_string(s.rejected) + " rejected, " +
           std::to_string(s.busy) + " busy");
  return Status::ok();
}

void CampaignServer::handle_client(int fd, std::uint64_t campaign_id) {
  UniqueFd client(fd);
  // Non-blocking from the start: every write goes through
  // write_frame_deadline, so a peer that stops draining can only cost one
  // write timeout, never a wedged handler or evaluator thread.
  set_nonblocking(client.get());
  FrameBuffer buf;
  Result<std::string> frame =
      read_frame(client.get(), buf, config_.request_timeout_ms);
  ServeMessage msg;
  if (!frame.is_ok() || !decode_serve_message(frame.value(), &msg) ||
      msg.type != ServeWire::kRequest) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.rejected;
    }
    (void)write_frame_deadline(
        client.get(), encode_serve_error("malformed campaign request", 2),
        config_.write_timeout_ms);
    write_stats_snapshot();
    return;
  }
  // The accepted frame is what tells the client to start reading; a client
  // that cannot take it is already gone and must not consume a slot.
  if (!write_frame_deadline(client.get(),
                            encode_serve_accepted(campaign_id),
                            config_.write_timeout_ms)
           .is_ok()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.cancelled;
    }
    log_line("campaign " + std::to_string(campaign_id) +
             ": client gone before accept");
    write_stats_snapshot();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.accepted;
  }
  (void)ledger_append([&](CampaignLedger& ledger) {
    return ledger.accepted(campaign_id, msg.args);
  });

  std::atomic<bool> cancel{false};
  ProgressStream progress(client.get(), config_.progress_interval_ms,
                          config_.write_timeout_ms);
  CampaignMonitor monitor(client.get(), &buf, &progress, config_, &cancel);

  const Admission admission = acquire_slot(cancel);
  if (admission != Admission::kRun) {
    monitor.stop();
    std::string note;
    switch (admission) {
      case Admission::kBusy:
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.busy;
        }
        (void)write_frame_deadline(
            client.get(), encode_serve_busy(config_.busy_retry_after_ms),
            config_.write_timeout_ms);
        note = "queue full, sent busy (retry after " +
               std::to_string(config_.busy_retry_after_ms) + " ms)";
        break;
      case Admission::kStopped:
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.rejected;
        }
        (void)write_frame_deadline(
            client.get(), encode_serve_error("server is shutting down", 1),
            config_.write_timeout_ms);
        note = "refused, shutting down";
        break;
      case Admission::kCancelled:
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.cancelled;
        }
        note = "client gone while queued";
        break;
      case Admission::kRun:
        break;
    }
    // The campaign never ran; close its ledger entry so a restart does not
    // replay work the client already knows was turned away.
    (void)ledger_append([&](CampaignLedger& ledger) {
      return ledger.finished(campaign_id, 1);
    });
    log_line("campaign " + std::to_string(campaign_id) + ": " + note);
    write_stats_snapshot();
    return;
  }

  (void)ledger_append([&](CampaignLedger& ledger) {
    return ledger.running(campaign_id);
  });
  monitor.set_running();
  std::string argv_line;
  for (const std::string& a : msg.args) {
    if (!argv_line.empty()) argv_line += ' ';
    argv_line += a;
  }
  log_line("campaign " + std::to_string(campaign_id) + ": " + argv_line);

  CampaignOutcome outcome = runner_(
      msg.args,
      [&progress](std::uint64_t done, std::uint64_t total) {
        progress.send(done, total);
      },
      cancel);
  release_slot();
  monitor.stop();
  const CancelCause cause = monitor.cause();

  std::vector<std::string> tail;
  if (!outcome.error.empty()) {
    tail.push_back(encode_serve_error(
        outcome.error, static_cast<std::int32_t>(outcome.exit_code)));
  } else {
    tail.push_back(encode_serve_stdout(outcome.stdout_block));
    if (!outcome.report_json.empty()) {
      tail.push_back(encode_serve_report(outcome.report_json));
    }
    tail.push_back(
        encode_serve_finished(static_cast<std::int32_t>(outcome.exit_code)));
  }
  progress.finish(tail);
  (void)ledger_append([&](CampaignLedger& ledger) {
    return ledger.finished(campaign_id,
                           static_cast<std::int32_t>(outcome.exit_code));
  });
  std::string note;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!outcome.error.empty()) {
      ++stats_.failed;
    } else if (cause == CancelCause::kClientGone) {
      ++stats_.cancelled;
      note = " (client gone, journal resumable)";
    } else if (cause == CancelCause::kClientCancel) {
      ++stats_.cancelled;
      note = " (cancelled by client, journal resumable)";
    } else if (cause == CancelCause::kDeadline) {
      ++stats_.deadline_stopped;
      note = " (deadline exceeded, journal resumable)";
    } else {
      ++stats_.completed;
    }
  }
  write_stats_snapshot();
  log_line("campaign " + std::to_string(campaign_id) + ": exit " +
           std::to_string(outcome.exit_code) + note +
           (outcome.error.empty() ? "" : " (" + outcome.error + ")"));
}

void CampaignServer::run_recovered(CampaignLedger::Entry entry) {
  std::atomic<bool> cancel{false};
  CampaignMonitor monitor(-1, nullptr, nullptr, config_, &cancel);
  const Admission admission = acquire_slot(cancel);
  if (admission != Admission::kRun) {
    // Drained before it got a slot: leave the ledger entry open so the next
    // start picks the campaign up again.
    monitor.stop();
    return;
  }
  (void)ledger_append([&](CampaignLedger& ledger) {
    return ledger.running(entry.id);
  });
  monitor.set_running();
  std::vector<std::string> args = entry.args;
  const bool resumed = maybe_append_resume(&args);
  log_line("campaign " + std::to_string(entry.id) + ": recovering" +
           (resumed ? " (resuming journal)" : " (restarting fresh)"));
  const CampaignRunner& runner =
      config_.recovery_runner ? config_.recovery_runner : runner_;
  CampaignOutcome outcome = runner(args, ProgressFn{}, cancel);
  release_slot();
  monitor.stop();
  const CancelCause cause = monitor.cause();
  // Interrupted again by a drain (not by its deadline): still resumable,
  // leave the entry open for the next start. Exit 3 is the CLI's
  // resumable-stop code.
  if (cause == CancelCause::kNone && outcome.error.empty() &&
      outcome.exit_code == 3 &&
      config_.stop->load(std::memory_order_relaxed)) {
    log_line("campaign " + std::to_string(entry.id) +
             ": recovery interrupted by drain, will resume on next start");
    return;
  }
  (void)ledger_append([&](CampaignLedger& ledger) {
    return ledger.finished(entry.id,
                           static_cast<std::int32_t>(outcome.exit_code));
  });
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!outcome.error.empty()) {
      ++stats_.failed;
    } else if (cause == CancelCause::kDeadline) {
      ++stats_.deadline_stopped;
    } else {
      ++stats_.recovered;
    }
  }
  write_stats_snapshot();
  log_line("campaign " + std::to_string(entry.id) + ": recovered, exit " +
           std::to_string(outcome.exit_code) +
           (outcome.error.empty() ? "" : " (" + outcome.error + ")"));
}

// --- client ---------------------------------------------------------------

namespace {

/// One connect + request + stream-until-terminal attempt. Sets *busy (with
/// the server's retry hint) instead of failing when the daemon turned the
/// request away with kBusy.
Result<SubmitResult> submit_once(const std::string& socket_path,
                                 const std::vector<std::string>& args,
                                 const SubmitOptions& options, bool* busy,
                                 std::uint64_t* retry_after_ms) {
  *busy = false;
  Result<UniqueFd> connected = connect_unix(socket_path);
  if (!connected.is_ok()) return connected.status();
  UniqueFd fd = std::move(connected).value();
  const Status sent = write_frame(fd.get(), encode_serve_request(args));
  if (!sent.is_ok()) return sent;

  SubmitResult result;
  FrameBuffer buf;
  bool cancel_sent = false;
  std::uint64_t last_frame_ns = monotonic_ns();
  // Slice the wait so cancellation and the idle timeout stay responsive
  // even while the daemon is silent; with neither configured a single
  // blocking read suffices (a dead server still surfaces as EOF).
  const bool sliced = options.idle_timeout_ms >= 0 || options.cancel != nullptr;
  for (;;) {
    Result<std::string> frame = read_frame(fd.get(), buf, sliced ? 100 : -1);
    if (!frame.is_ok()) {
      if (sliced && frame.status().code() == ErrorCode::kDeadlineExceeded) {
        if (options.cancel != nullptr && !cancel_sent &&
            options.cancel->load(std::memory_order_relaxed)) {
          cancel_sent = true;
          const Status cancel_status =
              write_frame(fd.get(), encode_serve_cancel());
          if (!cancel_status.is_ok()) {
            return Status(cancel_status.code(),
                          "cannot send cancel: " + cancel_status.to_string());
          }
        }
        if (options.idle_timeout_ms >= 0 &&
            monotonic_ns() - last_frame_ns >=
                static_cast<std::uint64_t>(options.idle_timeout_ms) *
                    1'000'000ull) {
          return Status(ErrorCode::kDeadlineExceeded,
                        "no frame from the serve daemon in " +
                            std::to_string(options.idle_timeout_ms) +
                            " ms (wedged daemon?)");
        }
        continue;
      }
      return Status(frame.status().code(),
                    "serve stream ended early: " + frame.status().to_string());
    }
    last_frame_ns = monotonic_ns();
    ServeMessage msg;
    if (!decode_serve_message(frame.value(), &msg)) {
      return Status(ErrorCode::kSubprocessFailed,
                    "malformed frame from serve daemon");
    }
    switch (msg.type) {
      case ServeWire::kAccepted:
        break;  // informational
      case ServeWire::kHeartbeat:
        if (options.on_heartbeat) options.on_heartbeat();
        break;
      case ServeWire::kProgress:
        if (options.on_progress) options.on_progress(msg.done, msg.total);
        break;
      case ServeWire::kStdout:
        result.stdout_block = std::move(msg.text);
        break;
      case ServeWire::kReport:
        result.report_json = std::move(msg.text);
        break;
      case ServeWire::kFinished:
        result.exit_code = static_cast<int>(msg.exit_code);
        return result;
      case ServeWire::kError:
        result.error = std::move(msg.text);
        result.exit_code = static_cast<int>(msg.exit_code);
        return result;
      case ServeWire::kBusy:
        *busy = true;
        *retry_after_ms = msg.retry_after_ms;
        return result;
      case ServeWire::kRequest:
      case ServeWire::kCancel:
        return Status(ErrorCode::kSubprocessFailed,
                      "unexpected frame from serve daemon");
    }
  }
}

}  // namespace

Result<SubmitResult> submit_campaign(const std::string& socket_path,
                                     const std::vector<std::string>& args,
                                     const SubmitOptions& options) {
  if (args.empty() || args.size() > kMaxRequestArgs) {
    return Status(ErrorCode::kInvalidArgument,
                  "a campaign request needs 1.." +
                      std::to_string(kMaxRequestArgs) + " arguments");
  }
  for (const std::string& a : args) {
    if (a.size() > kMaxRequestArgBytes) {
      return Status(ErrorCode::kInvalidArgument,
                    "campaign argument exceeds " +
                        std::to_string(kMaxRequestArgBytes) + " bytes");
    }
  }
  for (std::size_t attempt = 0;; ++attempt) {
    bool busy = false;
    std::uint64_t retry_after_ms = 0;
    Result<SubmitResult> outcome =
        submit_once(socket_path, args, options, &busy, &retry_after_ms);
    if (!outcome.is_ok() || !busy) return outcome;
    if (attempt >= options.busy_retries) {
      return Status(ErrorCode::kUnavailable,
                    "server is at capacity (busy after " +
                        std::to_string(attempt + 1) + " attempt(s))");
    }
    // Bounded exponential backoff from the server's hint (or the caller's
    // override), capped so a long outage cannot push retries out by hours.
    const std::uint64_t base = options.retry_backoff_ms != 0
                                   ? options.retry_backoff_ms
                                   : std::max<std::uint64_t>(retry_after_ms, 1);
    const std::uint64_t delay_ms = std::min<std::uint64_t>(
        base << std::min<std::size_t>(attempt, 10), 30'000);
    if (options.on_busy) options.on_busy(delay_ms);
    const std::uint64_t resume_ns = monotonic_ns() + delay_ms * 1'000'000ull;
    while (monotonic_ns() < resume_ns) {
      if (options.cancel != nullptr &&
          options.cancel->load(std::memory_order_relaxed)) {
        return Status(ErrorCode::kUnavailable,
                      "cancelled while backing off from a busy server");
      }
      ::poll(nullptr, 0, 10);
    }
  }
}

Result<SubmitResult> submit_campaign(const std::string& socket_path,
                                     const std::vector<std::string>& args,
                                     const ProgressFn& on_progress) {
  SubmitOptions options;
  options.on_progress = on_progress;
  return submit_campaign(socket_path, args, options);
}

}  // namespace fav::mc
