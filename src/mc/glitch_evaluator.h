// SSF evaluation for the clock-glitch technique.
//
// A thin driver over the shared technique-generic engine: it owns a
// ClockGlitchTechnique plus an SsfEvaluator configured with it, so glitch
// campaigns inherit everything the radiation path has — worker threads,
// per-sample budget isolation, journaled resume, metrics/trace/progress —
// and return the same SsfResult/SampleRecord types.
//
// A glitch's flip set is a deterministic function of (cycle, depth): no
// spatial or intra-cycle randomness. Besides Monte Carlo estimation over the
// holistic model (see GlitchSampler), the evaluator therefore also supports
// exact SSF computation by exhaustive enumeration of the attack space —
// a useful cross-check of the sampling machinery and a capability the paper
// notes deterministic techniques admit.
#pragma once

#include "faultsim/clock_glitch.h"
#include "faultsim/technique.h"
#include "mc/evaluator.h"

namespace fav::mc {

class ClockGlitchEvaluator {
 public:
  /// `base` supplies the benchmark, golden run, characterization and
  /// engine configuration (threads, budgets, observability sinks); all
  /// references must outlive this object.
  ClockGlitchEvaluator(const SsfEvaluator& base, const soc::SocNetlist& soc,
                       const faultsim::ClockGlitchSimulator& glitch);
  // engine_ holds a pointer into technique_, so relocation would dangle.
  ClockGlitchEvaluator(const ClockGlitchEvaluator&) = delete;
  ClockGlitchEvaluator& operator=(const ClockGlitchEvaluator&) = delete;

  /// Outcome of one glitch attack at timing distance t with the given depth
  /// (fraction of the nominal clock period).
  SampleRecord evaluate(int t, double depth) const;

  /// Plain Monte Carlo over the holistic glitch model, through the full
  /// pipeline (threads, isolation, observability; bitwise-deterministic at
  /// every thread count).
  SsfResult run(const faultsim::ClockGlitchAttackModel& model, Rng& rng,
                std::size_t n) const;

  /// Exact SSF: binds the model as the technique's enumerable fault space
  /// and streams every (t, depth) point — t outer, depth inner, weight 1 —
  /// through SsfEvaluator::run_exhaustive, so the exact pass parallelizes
  /// and stays O(chunk) in memory. Not thread-safe against concurrent runs
  /// on the same evaluator (it rebinds the shared technique's space).
  SsfResult evaluate_exact(const faultsim::ClockGlitchAttackModel& model) const;

  /// The underlying technique-generic engine: use it directly for journaled
  /// campaigns (engine().run_journaled with a GlitchSampler) or single-sample
  /// evaluation with explicit scratch.
  const SsfEvaluator& engine() const { return engine_; }

 private:
  // mutable: evaluate_exact() const rebinds the enumerable space before the
  // sweep starts — never concurrently with an evaluation (see its contract).
  mutable faultsim::ClockGlitchTechnique technique_;
  SsfEvaluator engine_;
};

}  // namespace fav::mc
