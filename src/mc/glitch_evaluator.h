// SSF evaluation for the clock-glitch technique.
//
// A glitch's flip set is a deterministic function of (cycle, depth): no
// spatial or intra-cycle randomness. The evaluator therefore supports both
// Monte Carlo estimation over the holistic model (uniform t and depth) and
// exact SSF computation by exhaustive enumeration of the attack space —
// a useful cross-check of the sampling machinery and a capability the paper
// notes deterministic techniques admit.
#pragma once

#include "faultsim/clock_glitch.h"
#include "mc/evaluator.h"

namespace fav::mc {

struct GlitchSampleRecord {
  int t = 0;
  double depth = 0;
  std::uint64_t te = 0;
  std::vector<int> flipped_bits;
  OutcomePath path = OutcomePath::kMasked;
  bool success = false;
};

struct GlitchSsfResult {
  RunningStats stats;
  std::size_t successes = 0;
  std::vector<GlitchSampleRecord> records;

  double ssf() const { return stats.mean(); }
};

class ClockGlitchEvaluator {
 public:
  /// `base` supplies the benchmark, golden run, analytical path, and the
  /// DFF binding; all references must outlive this object.
  ClockGlitchEvaluator(const SsfEvaluator& base, const soc::SocNetlist& soc,
                       const faultsim::ClockGlitchSimulator& glitch);

  /// Outcome of one glitch attack at timing distance t with the given depth
  /// (fraction of the nominal clock period).
  GlitchSampleRecord evaluate(int t, double depth) const;

  /// Plain Monte Carlo over the holistic glitch model.
  GlitchSsfResult run(const faultsim::ClockGlitchAttackModel& model, Rng& rng,
                      std::size_t n) const;

  /// Exact SSF: enumerates every (t, depth) of the (finite, deterministic)
  /// attack space and averages the outcomes under the uniform model.
  GlitchSsfResult evaluate_exact(
      const faultsim::ClockGlitchAttackModel& model) const;

 private:
  const SsfEvaluator* base_;
  const soc::SocNetlist* soc_;
  const faultsim::ClockGlitchSimulator* glitch_;
};

}  // namespace fav::mc
