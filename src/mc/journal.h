// Crash-safe append-only run journal for Monte Carlo campaigns.
//
// A campaign of 1e4–1e6 samples can run for hours; the journal makes a
// SIGKILL (or power loss) cost at most one shard of work. On-disk layout
// (single file `<dir>/campaign.fj`, all integers little-endian):
//
//   header:  magic "FAVJRNL2" | u32 meta_len | meta | u64 fnv1a(meta)
//   meta:    u64 fingerprint | u64 total_samples | u32 ctx_len | ctx bytes
//   frame*:  u32 'MARF' | u64 first_index | u32 count | u32 payload_len
//            | payload | u64 fnv1a(frame header fields + payload)
//
// Each frame holds the serialized SampleRecords of one completed shard of
// consecutive sample indices and is flushed + fsynced before the next shard
// starts, so the file always contains a checksummed prefix of the campaign.
// The reader accepts a torn tail (a partially-written last frame is the
// normal crash artifact and is simply dropped) but reports kJournalCorrupt
// for mid-file damage — a bad frame followed by further valid data — and for
// header/meta corruption. Resume re-draws the sample stream deterministically
// and continues from the first missing index, so a killed-and-resumed run is
// bitwise-identical to an uninterrupted one (see SsfEvaluator::run_journaled).
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "mc/evaluator.h"
#include "util/metrics.h"
#include "util/status.h"

namespace fav::mc {

/// Campaign identity stored in the journal header. A resume whose
/// fingerprint or sample count differs from the journal's is rejected.
struct JournalMeta {
  std::uint64_t fingerprint = 0;
  std::uint64_t total_samples = 0;
  std::string context;
};

/// Everything recovered from a journal: the header meta plus the contiguous
/// prefix of completed sample records [0, records.size()).
struct JournalContents {
  JournalMeta meta;
  std::vector<SampleRecord> records;
  /// File size of the validated prefix (header + intact frames). A torn
  /// tail lives past this offset; pass to JournalWriter::open_append so it
  /// is truncated away before new frames are appended after it.
  std::uint64_t valid_bytes = 0;
};

/// One run of consecutive sample records starting at `first_index`. Worker
/// shard files hold several spans: a worker journals every shard it is
/// assigned, and assignments interleave across workers, so one file covers a
/// non-contiguous subset of the campaign.
struct JournalSpan {
  std::uint64_t first_index = 0;
  std::vector<SampleRecord> records;

  std::uint64_t end_index() const { return first_index + records.size(); }
};

/// Everything recovered from one shard file: the header meta plus its spans
/// in strictly increasing, non-overlapping index order (adjacent frames are
/// coalesced, so `campaign.fj` written by a single-process run reads back as
/// one span at index 0). On-disk frame order is free — a supervised worker
/// journals shards in *assignment* order, which drops below earlier indices
/// when it picks up a shard rescued from a crashed peer — so the reader
/// sorts; overlapping frames within one file are corruption.
struct JournalShards {
  JournalMeta meta;
  std::vector<JournalSpan> spans;
  std::uint64_t valid_bytes = 0;
};

/// Sparse union of several shard files (see JournalReader::merge_partial):
/// `records[i]` is valid iff `present[i]`. Also carries what a resuming
/// writer needs: the validated prefix size of every source file.
struct MergedJournal {
  JournalMeta meta;
  std::vector<SampleRecord> records;   // size == meta.total_samples
  std::vector<std::uint8_t> present;   // parallel to records
  std::size_t present_count = 0;
  /// Validated prefix size per shard file name (for JournalWriter::
  /// open_append when a worker resumes its own file).
  std::map<std::string, std::uint64_t> valid_bytes;

  bool complete() const { return present_count == records.size(); }
  /// Maximal runs [first, last) of missing sample indices, in order.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> missing_ranges() const;
};

/// Serialization used by the journal frames (exposed for tests).
void serialize_record(const SampleRecord& record, std::string& out);
/// Deserializes one record from `data` starting at `*offset`, advancing it.
/// Returns false on malformed input (offset position is then unspecified).
bool deserialize_record(const std::string& data, std::size_t* offset,
                        SampleRecord* record);

/// Field-wise identity of two fault samples, used by the resume cross-checks:
/// a journaled sample that differs from the deterministically re-drawn one
/// means the sampler/seed/config changed under the journal.
bool sample_matches(const faultsim::FaultSample& a,
                    const faultsim::FaultSample& b);

/// Reads and verifies `<dir>/campaign.fj`. Torn tails are tolerated (the
/// partial frame is dropped); header corruption, mid-file damage, and
/// out-of-order frames yield kJournalCorrupt; a missing/unreadable file
/// yields kJournalIoError.
Result<JournalContents> read_journal(const std::string& dir);

/// Multi-file journal access for supervised campaigns, where every worker
/// process appends the shards it completes to its own `worker-<k>.fj` and
/// the supervisor stitches the campaign back together.
class JournalReader {
 public:
  /// Reads and verifies one shard file. Frames may start at any sample index
  /// but must be strictly increasing and non-overlapping within the file;
  /// torn tails are tolerated exactly like read_journal.
  static Result<JournalShards> read_shards(const std::string& dir,
                                           const std::string& file);

  /// Merges every file in `dir` whose name matches `pattern` (a single-`*`
  /// glob, e.g. "worker-*.fj"). Validates that all files carry the same
  /// fingerprint and total-sample count, that every span lies inside the
  /// campaign, and that no two spans overlap; gaps are allowed — this is the
  /// resume path, which continues from whatever survived. Matching zero
  /// files yields an empty merge only when a meta cannot be established —
  /// kJournalIoError, since there is nothing to resume from.
  static Result<MergedJournal> merge_partial(const std::string& dir,
                                             const std::string& pattern);

  /// Strict merge for completed campaigns: additionally requires full
  /// coverage of [0, total_samples). A gap fails with kFailedPrecondition
  /// naming the exact missing index range, e.g. "missing samples
  /// [512, 768)".
  static Result<JournalContents> merge(const std::string& dir,
                                       const std::string& pattern);
};

/// Appends completed shards to `<dir>/campaign.fj`. Every append is flushed
/// and fsynced before returning, so a completed shard survives SIGKILL.
/// Durability requires fsyncing the *parent directory* too after the file is
/// created or truncated — POSIX treats the name->inode link as directory
/// data, so without it a crash right after open_fresh can lose the file
/// itself even though its contents were fsynced.
class JournalWriter {
 public:
  JournalWriter() = default;
  ~JournalWriter();
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Optional observability (see util/metrics.h): fsync latencies
  /// ("journal.fsync_ns", "journal.dir_fsync_ns") and I/O counters
  /// ("journal.commits", "journal.dir_fsyncs", "journal.bytes_written").
  /// The sink must outlive the writer; the caller serializes access.
  void set_metrics(MetricsSink* sink) { metrics_ = sink; }

  /// Starts a new journal (truncating any existing one) and commits the
  /// header. Creates `dir` if needed. `file` selects the file name inside
  /// `dir`; the default is the single-process campaign journal, supervised
  /// workers pass their own "worker-<k>.fj".
  Status open_fresh(const std::string& dir, const JournalMeta& meta,
                    const std::string& file = "campaign.fj");
  /// Opens an existing journal for appending (after read_journal /
  /// JournalReader validated it). The file is first truncated to
  /// `valid_bytes` — the validated-prefix size — so a torn tail left by a
  /// crash is cut off instead of ending up buried between frames (which the
  /// next read would rightly flag as mid-file corruption).
  Status open_append(const std::string& dir, std::uint64_t valid_bytes,
                     const std::string& file = "campaign.fj");

  /// Appends one frame covering records[0, count) at sample indices
  /// [first_index, first_index + count) and commits it to disk.
  Status append_shard(std::size_t first_index, const SampleRecord* records,
                      std::size_t count);

 private:
  Status commit();
  /// fsyncs the directory entry of `dir` (create/truncate durability).
  Status sync_dir(const std::string& dir);

  std::FILE* file_ = nullptr;
  MetricsSink* metrics_ = nullptr;
};

}  // namespace fav::mc
