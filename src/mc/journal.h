// Crash-safe append-only run journal for Monte Carlo campaigns.
//
// A campaign of 1e4–1e6 samples can run for hours; the journal makes a
// SIGKILL (or power loss) cost at most one shard of work. On-disk layout
// (single file `<dir>/campaign.fj`, all integers little-endian):
//
//   header:  magic "FAVJRNL2" | u32 meta_len | meta | u64 fnv1a(meta)
//   meta:    u64 fingerprint | u64 total_samples | u32 ctx_len | ctx bytes
//   frame*:  u32 'MARF' | u64 first_index | u32 count | u32 payload_len
//            | payload | u64 fnv1a(frame header fields + payload)
//
// Each frame holds the serialized SampleRecords of one completed shard of
// consecutive sample indices and is flushed + fsynced before the next shard
// starts, so the file always contains a checksummed prefix of the campaign.
// The reader accepts a torn tail (a partially-written last frame is the
// normal crash artifact and is simply dropped) but reports kJournalCorrupt
// for mid-file damage — a bad frame followed by further valid data — and for
// header/meta corruption. Resume re-draws the sample stream deterministically
// and continues from the first missing index, so a killed-and-resumed run is
// bitwise-identical to an uninterrupted one (see SsfEvaluator::run_journaled).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "mc/evaluator.h"
#include "util/metrics.h"
#include "util/status.h"

namespace fav::mc {

/// Campaign identity stored in the journal header. A resume whose
/// fingerprint or sample count differs from the journal's is rejected.
struct JournalMeta {
  std::uint64_t fingerprint = 0;
  std::uint64_t total_samples = 0;
  std::string context;
};

/// Everything recovered from a journal: the header meta plus the contiguous
/// prefix of completed sample records [0, records.size()).
struct JournalContents {
  JournalMeta meta;
  std::vector<SampleRecord> records;
  /// File size of the validated prefix (header + intact frames). A torn
  /// tail lives past this offset; pass to JournalWriter::open_append so it
  /// is truncated away before new frames are appended after it.
  std::uint64_t valid_bytes = 0;
};

/// Serialization used by the journal frames (exposed for tests).
void serialize_record(const SampleRecord& record, std::string& out);
/// Deserializes one record from `data` starting at `*offset`, advancing it.
/// Returns false on malformed input (offset position is then unspecified).
bool deserialize_record(const std::string& data, std::size_t* offset,
                        SampleRecord* record);

/// Reads and verifies `<dir>/campaign.fj`. Torn tails are tolerated (the
/// partial frame is dropped); header corruption, mid-file damage, and
/// out-of-order frames yield kJournalCorrupt; a missing/unreadable file
/// yields kJournalIoError.
Result<JournalContents> read_journal(const std::string& dir);

/// Appends completed shards to `<dir>/campaign.fj`. Every append is flushed
/// and fsynced before returning, so a completed shard survives SIGKILL.
/// Durability requires fsyncing the *parent directory* too after the file is
/// created or truncated — POSIX treats the name->inode link as directory
/// data, so without it a crash right after open_fresh can lose the file
/// itself even though its contents were fsynced.
class JournalWriter {
 public:
  JournalWriter() = default;
  ~JournalWriter();
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Optional observability (see util/metrics.h): fsync latencies
  /// ("journal.fsync_ns", "journal.dir_fsync_ns") and I/O counters
  /// ("journal.commits", "journal.dir_fsyncs", "journal.bytes_written").
  /// The sink must outlive the writer; the caller serializes access.
  void set_metrics(MetricsSink* sink) { metrics_ = sink; }

  /// Starts a new journal (truncating any existing one) and commits the
  /// header. Creates `dir` if needed.
  Status open_fresh(const std::string& dir, const JournalMeta& meta);
  /// Opens an existing journal for appending (after read_journal validated
  /// it). The file is first truncated to `valid_bytes` — read_journal's
  /// validated-prefix size — so a torn tail left by a crash is cut off
  /// instead of ending up buried between frames (which the next read would
  /// rightly flag as mid-file corruption).
  Status open_append(const std::string& dir, std::uint64_t valid_bytes);

  /// Appends one frame covering records[0, count) at sample indices
  /// [first_index, first_index + count) and commits it to disk.
  Status append_shard(std::size_t first_index, const SampleRecord* records,
                      std::size_t count);

 private:
  Status commit();
  /// fsyncs the directory entry of `dir` (create/truncate durability).
  Status sync_dir(const std::string& dir);

  std::FILE* file_ = nullptr;
  MetricsSink* metrics_ = nullptr;
};

}  // namespace fav::mc
