// The campaign serving tier: a Unix-domain-socket daemon that accepts
// campaign requests, schedules them across per-campaign supervisor fleets,
// and streams progress plus the final run report back to clients.
//
// Design (DESIGN.md §6k, lifecycle + recovery in §6m):
//   * Transport reuses the supervisor's length-prefixed frame codec
//     (util/subprocess.h): every message is `u32 length | payload` and the
//     payload starts with a ServeWire type byte. One codec for pipes and
//     sockets means one set of framing tests and one corruption story.
//   * The server is generic over a CampaignRunner callback. The CLI supplies
//     a runner that parses the request argv with the *same* parser and runs
//     the *same* evaluation path as local `fav evaluate` — which is what
//     makes a served campaign byte-identical to a local one. mc/ stays
//     independent of core/ (layering: core depends on mc, not vice versa).
//   * One handler thread per connection; a counting slot gate bounds how
//     many campaigns run concurrently and a bounded admission queue bounds
//     how many may wait (overflow is turned away with kBusy + a retry-after
//     hint instead of queuing without bound). Finished handler threads are
//     reaped opportunistically, so a long-lived daemon holds O(in-flight)
//     threads, not O(connections ever accepted).
//   * Every campaign is cancellable: a per-campaign cancel token reaches the
//     evaluator/supervisor stop path through the runner, and a monitor
//     thread trips it when the client hangs up (POLLHUP/EOF), sends an
//     explicit kCancel frame, or the per-campaign deadline expires. A
//     cancelled campaign winds down to a journaled, resumable partial
//     report — it never burns the slot to completion.
//   * Crash recovery: when configured with a ledger path, the daemon records
//     each campaign's argv and lifecycle (accepted / running / finished) in
//     an append-only CRC-framed ledger. On restart it replays the ledger and
//     re-runs every campaign that never reached `finished`, resuming from
//     the journal when one exists — the serving-tier analogue of the
//     supervisor's worker watchdog.
//   * Shutdown: the stop flag stops the accept loop; in-flight campaigns
//     see the flag through their monitors and wind down gracefully
//     (journaled prefix + interrupted report), then serve() joins every
//     handler and unlinks the socket.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "util/status.h"

namespace fav::mc {

/// --- serve wire protocol (exposed for tests) ------------------------------
/// Values are part of the protocol; append new types at the end only.
enum class ServeWire : std::uint8_t {
  kRequest = 1,    // client -> server: campaign argv (evaluate flags)
  kAccepted = 2,   // server -> client: request decoded, campaign id assigned
  kProgress = 3,   // server -> client: throttled samples-done / total
  kStdout = 4,     // server -> client: the full `fav evaluate` stdout block
  kReport = 5,     // server -> client: fav.run_report.v1 JSON bytes
  kFinished = 6,   // server -> client: campaign exit code; closes the stream
  kError = 7,      // server -> client: rejected / failed; closes the stream
  kBusy = 8,       // server -> client: admission queue full, retry-after hint
  kHeartbeat = 9,  // server -> client: liveness while queued / running
  kCancel = 10,    // client -> server: stop my campaign (resumable)
};

/// Request sanity bounds: a campaign argv is a few dozen short flags, so
/// anything beyond these is a confused or hostile client, not a real
/// campaign.
constexpr std::size_t kMaxRequestArgs = 256;
constexpr std::size_t kMaxRequestArgBytes = 4096;

/// Decoded form of any serve message; only the fields of the given type are
/// meaningful.
struct ServeMessage {
  ServeWire type = ServeWire::kRequest;
  std::vector<std::string> args;     // kRequest
  std::uint64_t campaign_id = 0;     // kAccepted
  std::uint64_t done = 0;            // kProgress
  std::uint64_t total = 0;           // kProgress
  std::string text;                  // kStdout / kReport / kError
  std::int32_t exit_code = 0;        // kFinished / kError
  std::uint64_t retry_after_ms = 0;  // kBusy
  bool running = false;              // kHeartbeat (false = still queued)
};

std::string encode_serve_request(const std::vector<std::string>& args);
std::string encode_serve_accepted(std::uint64_t campaign_id);
std::string encode_serve_progress(std::uint64_t done, std::uint64_t total);
std::string encode_serve_stdout(std::string_view text);
std::string encode_serve_report(std::string_view json);
std::string encode_serve_finished(std::int32_t exit_code);
std::string encode_serve_error(std::string_view message,
                               std::int32_t exit_code);
std::string encode_serve_busy(std::uint64_t retry_after_ms);
std::string encode_serve_heartbeat(bool running);
std::string encode_serve_cancel();
/// Strict: trailing bytes, truncated fields, unknown types and out-of-bound
/// request shapes all fail.
bool decode_serve_message(std::string_view payload, ServeMessage* out);

/// --- campaign runner ------------------------------------------------------

/// What one served campaign produced. `error` non-empty means the request
/// was rejected or failed before producing a result; otherwise stdout_block
/// (and report_json, when the request asked for a report) are streamed back
/// verbatim.
struct CampaignOutcome {
  int exit_code = 1;
  std::string stdout_block;
  std::string report_json;
  std::string error;
};

/// Streams progress to the client. Called from whatever thread evaluates
/// samples (engine workers or a supervisor event loop); the server
/// serializes and throttles the socket writes internally.
using ProgressFn =
    std::function<void(std::uint64_t done, std::uint64_t total)>;

/// Runs one campaign from its request argv (e.g. {"evaluate", "--samples",
/// "400", ...}). Must be thread-safe: the server invokes it concurrently,
/// once per in-flight campaign. `cancel` is the per-campaign stop token; the
/// runner must wire it into the evaluator/supervisor stop path so a tripped
/// token winds the campaign down to a resumable partial result (exit 3).
using CampaignRunner = std::function<CampaignOutcome(
    const std::vector<std::string>& args, const ProgressFn& progress,
    const std::atomic<bool>& cancel)>;

/// --- crash-recovery ledger ------------------------------------------------

/// Lifecycle states a campaign passes through in the ledger. Values are part
/// of the on-disk format; append new states at the end only.
enum class CampaignState : std::uint8_t {
  kAccepted = 1,  // request decoded, argv recorded
  kRunning = 2,   // slot acquired, evaluation started
  kFinished = 3,  // terminal: completed / failed / cancelled / deadline
};

/// Append-only, CRC-framed campaign ledger (DESIGN.md §6m). Each record is
/// `u32 payload_len | payload | u32 crc32c(payload)` after an 8-byte magic;
/// replay tolerates a torn tail (truncated back to the last whole record,
/// like the journal) so a SIGKILL mid-append never bricks the daemon. A
/// campaign that never reached kFinished is *interrupted* and is re-run on
/// the next start.
class CampaignLedger {
 public:
  struct Entry {
    std::uint64_t id = 0;
    CampaignState state = CampaignState::kAccepted;
    std::vector<std::string> args;
    std::int32_t exit_code = 0;  // meaningful once state == kFinished
  };

  /// Opens `path` (creating it if absent) and replays every intact record.
  /// A torn or corrupt tail is truncated away; a bad magic fails instead
  /// (that file is not a ledger — refuse to append garbage to it).
  static Result<CampaignLedger> open(const std::string& path);

  CampaignLedger() = default;
  ~CampaignLedger();
  CampaignLedger(CampaignLedger&& other) noexcept;
  CampaignLedger& operator=(CampaignLedger&& other) noexcept;
  CampaignLedger(const CampaignLedger&) = delete;
  CampaignLedger& operator=(const CampaignLedger&) = delete;

  /// Lifecycle appends; each record is fsynced before returning so the
  /// ledger never claims less than what actually happened.
  Status accepted(std::uint64_t id, const std::vector<std::string>& args);
  Status running(std::uint64_t id);
  Status finished(std::uint64_t id, std::int32_t exit_code);

  /// Campaigns replayed from disk that never reached kFinished, in id order.
  std::vector<Entry> interrupted() const;
  /// One past the largest id ever recorded — campaign ids stay unique
  /// across daemon restarts.
  std::uint64_t next_campaign_id() const { return next_id_; }
  /// Bytes of torn/corrupt tail discarded by open(), for the caller's log.
  std::uint64_t discarded_bytes() const { return discarded_bytes_; }
  const std::string& path() const { return path_; }

 private:
  Status append(std::string_view payload);

  std::string path_;
  std::FILE* file_ = nullptr;
  std::map<std::uint64_t, Entry> entries_;
  std::uint64_t next_id_ = 1;
  std::uint64_t discarded_bytes_ = 0;
};

/// --- server ---------------------------------------------------------------

struct ServeConfig {
  /// Unix-domain socket path (sun_path-limited, ~100 bytes). A stale socket
  /// file left by a crashed daemon is detected (nothing accepts on it) and
  /// replaced; a live one fails the bind instead of hijacking the server.
  std::string socket_path;
  /// Campaigns evaluated at once; further accepted requests wait for a slot.
  std::size_t max_concurrent = 2;
  /// Accepted requests allowed to wait for a slot. One more would get a
  /// kBusy frame (with `busy_retry_after_ms` as the hint) instead of
  /// queuing without bound.
  std::size_t max_queued = 16;
  /// Retry-after hint shipped in kBusy frames.
  std::uint64_t busy_retry_after_ms = 500;
  /// Minimum spacing of kProgress frames per client (the final frame always
  /// ships). 0 streams every sample — test use only.
  std::uint64_t progress_interval_ms = 200;
  /// Spacing of kHeartbeat frames while a campaign is queued or running, so
  /// clients can tell a wedged daemon from a slow campaign. 0 disables.
  std::uint64_t heartbeat_interval_ms = 1000;
  /// Per-campaign wall-clock budget; an expired campaign is stopped through
  /// its cancel token (resumable, exit 3). 0 = unlimited.
  std::uint64_t campaign_deadline_ms = 0;
  /// How long a connected client may take to send its request frame.
  int request_timeout_ms = 10'000;
  /// Wall-clock budget for any single frame write to a client that has
  /// stopped draining its socket; an expired write marks the stream dead
  /// (and the campaign cancelled) instead of wedging an evaluator thread.
  int write_timeout_ms = 10'000;
  /// Crash-recovery ledger path; empty disables recovery.
  std::string ledger_path;
  /// Stats snapshot path (JSON, atomically rewritten as counters change);
  /// empty disables the snapshot.
  std::string stats_path;
  /// Graceful stop (required): checked by the accept loop, queued requests
  /// and every campaign monitor (which forwards it to in-flight campaigns
  /// through their cancel tokens).
  const std::atomic<bool>* stop = nullptr;
  /// Diagnostics sink; null routes to stderr.
  std::function<void(const std::string&)> log;
  /// Runner for ledger-recovered campaigns; defaults to the ctor runner.
  /// The CLI supplies one that also writes the originally requested local
  /// artifacts (--metrics-out), since the original client is gone.
  CampaignRunner recovery_runner;
};

struct ServeStats {
  std::uint64_t accepted = 0;          // decoded requests that got a slot path
  std::uint64_t completed = 0;         // ran to a successful outcome
  std::uint64_t failed = 0;            // ran to an error outcome
  std::uint64_t cancelled = 0;         // client hung up / sent kCancel
  std::uint64_t deadline_stopped = 0;  // stopped by campaign_deadline_ms
  std::uint64_t recovered = 0;         // replayed from the ledger to success
  std::uint64_t rejected = 0;          // malformed / refused requests
  std::uint64_t busy = 0;              // turned away with kBusy
};

class CampaignServer {
 public:
  CampaignServer(ServeConfig config, CampaignRunner runner);

  /// Binds the socket, replays the ledger (when configured) and serves until
  /// the stop flag is set, then joins all in-flight handlers and unlinks the
  /// socket. Returns a config / bind / ledger failure, Status::ok()
  /// otherwise.
  Status serve();

  /// Snapshot of the counters; safe to call from other threads while
  /// serving (tests poll it).
  ServeStats stats() const;

  /// Handler threads currently alive (in-flight + not yet reaped); the soak
  /// test asserts this stays bounded by the slot/queue budget instead of
  /// growing with every connection ever accepted.
  std::size_t live_handlers() const;

 private:
  struct Handler {
    std::thread thread;
    std::atomic<bool> done{false};
  };
  /// Why a campaign should wind down early (or why admission failed).
  enum class Admission { kRun, kBusy, kCancelled, kStopped };

  void start_handler(std::function<void()> body);
  void reap_handlers();
  void join_all_handlers();
  void handle_client(int fd, std::uint64_t campaign_id);
  void run_recovered(CampaignLedger::Entry entry);
  Admission acquire_slot(const std::atomic<bool>& cancel);
  void release_slot();
  void log_line(const std::string& line) const;
  void write_stats_snapshot() const;
  std::string stats_json() const;
  Status ledger_append(const std::function<Status(CampaignLedger&)>& op);

  ServeConfig config_;
  CampaignRunner runner_;
  ServeStats stats_;
  mutable std::mutex mu_;
  std::condition_variable slot_cv_;
  std::size_t active_ = 0;
  std::size_t queued_ = 0;
  bool draining_ = false;
  mutable std::mutex handlers_mu_;
  std::list<std::unique_ptr<Handler>> handlers_;
  std::mutex ledger_mu_;
  std::unique_ptr<CampaignLedger> ledger_;
};

/// --- client ---------------------------------------------------------------

struct SubmitResult {
  int exit_code = 1;
  std::string stdout_block;
  std::string report_json;
  /// Server-side rejection/failure message (kError); empty on success.
  std::string error;
};

/// Knobs for submit_campaign. The defaults reproduce the fire-and-wait
/// behaviour of the plain overload: no idle timeout, no cancellation, and a
/// few busy retries honouring the server's retry-after hint.
struct SubmitOptions {
  ProgressFn on_progress;
  /// Called per kHeartbeat frame (after it refreshes the idle timer).
  std::function<void()> on_heartbeat;
  /// Called per kBusy frame with the backoff about to be slept.
  std::function<void(std::uint64_t backoff_ms)> on_busy;
  /// Fail with kDeadlineExceeded when the daemon sends *nothing* (progress,
  /// heartbeat or otherwise) for this long — a wedged daemon, as opposed to
  /// a slow campaign, which keeps heartbeating. < 0 waits forever.
  int idle_timeout_ms = -1;
  /// When non-null and set, sends one kCancel frame and keeps reading until
  /// the server winds the campaign down to its final (interrupted) frames.
  const std::atomic<bool>* cancel = nullptr;
  /// Reconnect attempts after kBusy before giving up with kUnavailable.
  std::size_t busy_retries = 4;
  /// Base backoff doubled per attempt; 0 uses the server's retry-after hint.
  std::uint64_t retry_backoff_ms = 0;
};

/// Submits one campaign to a serving daemon and blocks until it finishes.
/// Returns a Status error only for transport problems (cannot connect,
/// server died mid-campaign, protocol corruption, kUnavailable once busy
/// retries are exhausted) — a server-side campaign failure comes back as
/// SubmitResult::error with the server's exit code.
Result<SubmitResult> submit_campaign(const std::string& socket_path,
                                     const std::vector<std::string>& args,
                                     const SubmitOptions& options);

/// Convenience overload: progress only, defaults for everything else.
Result<SubmitResult> submit_campaign(const std::string& socket_path,
                                     const std::vector<std::string>& args,
                                     const ProgressFn& on_progress = {});

}  // namespace fav::mc
