// The campaign serving tier: a Unix-domain-socket daemon that accepts
// campaign requests, schedules them across per-campaign supervisor fleets,
// and streams progress plus the final run report back to clients.
//
// Design (DESIGN.md §6k):
//   * Transport reuses the supervisor's length-prefixed frame codec
//     (util/subprocess.h): every message is `u32 length | payload` and the
//     payload starts with a ServeWire type byte. One codec for pipes and
//     sockets means one set of framing tests and one corruption story.
//   * The server is generic over a CampaignRunner callback. The CLI supplies
//     a runner that parses the request argv with the *same* parser and runs
//     the *same* evaluation path as local `fav evaluate` — which is what
//     makes a served campaign byte-identical to a local one. mc/ stays
//     independent of core/ (layering: core depends on mc, not vice versa).
//   * One handler thread per connection; a counting slot gate bounds how
//     many campaigns run concurrently (excess requests queue FIFO-ish on
//     the gate). Each campaign forks its own worker fleet; O_CLOEXEC pipes
//     and SOCK_CLOEXEC sockets keep concurrent fleets and clients from
//     inheriting each other's fds.
//   * Shutdown: the stop flag stops the accept loop; in-flight campaigns
//     see the same flag through the runner and wind down gracefully
//     (journaled prefix + interrupted report), then serve() joins every
//     handler and unlinks the socket.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "util/status.h"

namespace fav::mc {

/// --- serve wire protocol (exposed for tests) ------------------------------
/// Values are part of the protocol; append new types at the end only.
enum class ServeWire : std::uint8_t {
  kRequest = 1,   // client -> server: campaign argv (evaluate flags)
  kAccepted = 2,  // server -> client: request decoded, campaign id assigned
  kProgress = 3,  // server -> client: throttled samples-done / total
  kStdout = 4,    // server -> client: the full `fav evaluate` stdout block
  kReport = 5,    // server -> client: fav.run_report.v1 JSON bytes
  kFinished = 6,  // server -> client: campaign exit code; closes the stream
  kError = 7,     // server -> client: rejected / failed; closes the stream
};

/// Request sanity bounds: a campaign argv is a few dozen short flags, so
/// anything beyond these is a confused or hostile client, not a real
/// campaign.
constexpr std::size_t kMaxRequestArgs = 256;
constexpr std::size_t kMaxRequestArgBytes = 4096;

/// Decoded form of any serve message; only the fields of the given type are
/// meaningful.
struct ServeMessage {
  ServeWire type = ServeWire::kRequest;
  std::vector<std::string> args;  // kRequest
  std::uint64_t campaign_id = 0;  // kAccepted
  std::uint64_t done = 0;         // kProgress
  std::uint64_t total = 0;        // kProgress
  std::string text;               // kStdout / kReport / kError
  std::int32_t exit_code = 0;     // kFinished / kError
};

std::string encode_serve_request(const std::vector<std::string>& args);
std::string encode_serve_accepted(std::uint64_t campaign_id);
std::string encode_serve_progress(std::uint64_t done, std::uint64_t total);
std::string encode_serve_stdout(std::string_view text);
std::string encode_serve_report(std::string_view json);
std::string encode_serve_finished(std::int32_t exit_code);
std::string encode_serve_error(std::string_view message,
                               std::int32_t exit_code);
/// Strict: trailing bytes, truncated fields, unknown types and out-of-bound
/// request shapes all fail.
bool decode_serve_message(std::string_view payload, ServeMessage* out);

/// --- campaign runner ------------------------------------------------------

/// What one served campaign produced. `error` non-empty means the request
/// was rejected or failed before producing a result; otherwise stdout_block
/// (and report_json, when the request asked for a report) are streamed back
/// verbatim.
struct CampaignOutcome {
  int exit_code = 1;
  std::string stdout_block;
  std::string report_json;
  std::string error;
};

/// Streams progress to the client. Called from whatever thread evaluates
/// samples (engine workers or a supervisor event loop); the server
/// serializes and throttles the socket writes internally.
using ProgressFn =
    std::function<void(std::uint64_t done, std::uint64_t total)>;

/// Runs one campaign from its request argv (e.g. {"evaluate", "--samples",
/// "400", ...}). Must be thread-safe: the server invokes it concurrently,
/// once per in-flight campaign.
using CampaignRunner = std::function<CampaignOutcome(
    const std::vector<std::string>& args, const ProgressFn& progress)>;

/// --- server ---------------------------------------------------------------

struct ServeConfig {
  /// Unix-domain socket path (sun_path-limited, ~100 bytes). A stale socket
  /// file left by a crashed daemon is detected (nothing accepts on it) and
  /// replaced; a live one fails the bind instead of hijacking the server.
  std::string socket_path;
  /// Campaigns evaluated at once; further accepted requests wait for a slot.
  std::size_t max_concurrent = 2;
  /// Minimum spacing of kProgress frames per client (the final frame always
  /// ships). 0 streams every sample — test use only.
  std::uint64_t progress_interval_ms = 200;
  /// How long a connected client may take to send its request frame.
  int request_timeout_ms = 10'000;
  /// Graceful stop (required): checked by the accept loop and by queued
  /// requests; the CLI shares the same flag with in-flight campaigns.
  const std::atomic<bool>* stop = nullptr;
  /// Diagnostics sink; null routes to stderr.
  std::function<void(const std::string&)> log;
};

struct ServeStats {
  std::uint64_t accepted = 0;   // requests that decoded and got a slot path
  std::uint64_t completed = 0;  // campaigns that ran to an outcome
  std::uint64_t rejected = 0;   // malformed / refused requests
};

class CampaignServer {
 public:
  CampaignServer(ServeConfig config, CampaignRunner runner);

  /// Binds the socket and serves until the stop flag is set, then joins all
  /// in-flight handlers and unlinks the socket. Returns a config / bind
  /// failure, Status::ok() otherwise.
  Status serve();

  /// Totals for the finished serve() run (not thread-safe while serving).
  const ServeStats& stats() const { return stats_; }

 private:
  void handle_client(int fd, std::uint64_t campaign_id);
  bool acquire_slot();
  void release_slot();
  void log_line(const std::string& line) const;

  ServeConfig config_;
  CampaignRunner runner_;
  ServeStats stats_;
  std::mutex mu_;
  std::condition_variable slot_cv_;
  std::size_t active_ = 0;
  bool draining_ = false;
};

/// --- client ---------------------------------------------------------------

struct SubmitResult {
  int exit_code = 1;
  std::string stdout_block;
  std::string report_json;
  /// Server-side rejection/failure message (kError); empty on success.
  std::string error;
};

/// Submits one campaign to a serving daemon and blocks until it finishes,
/// invoking `on_progress` (when non-null) per progress frame. Returns a
/// Status error only for transport problems (cannot connect, server died
/// mid-campaign, protocol corruption) — a server-side campaign failure comes
/// back as SubmitResult::error with the server's exit code.
Result<SubmitResult> submit_campaign(const std::string& socket_path,
                                     const std::vector<std::string>& args,
                                     const ProgressFn& on_progress = {});

}  // namespace fav::mc
