#include "mc/samplers.h"

#include <algorithm>
#include <unordered_set>

namespace fav::mc {

using faultsim::FaultSample;
using netlist::NodeId;

RandomSampler::RandomSampler(const faultsim::AttackModel& attack)
    : attack_(&attack) {
  attack.check_valid();
}

FaultSample RandomSampler::draw(Rng& rng) { return attack_->sample(rng); }

ConeSampler::ConeSampler(const faultsim::AttackModel& attack,
                         const netlist::UnrolledCone& cone,
                         const layout::Placement& placement)
    : attack_(&attack) {
  attack.check_valid();
  const double max_radius =
      *std::max_element(attack.radii.begin(), attack.radii.end());
  std::vector<std::vector<NodeId>> spots(attack.candidate_centers.size());
  for (std::size_t i = 0; i < attack.candidate_centers.size(); ++i) {
    placement.nodes_within(attack.candidate_centers[i], max_radius, spots[i]);
  }
  for (int t = attack.t_min; t <= attack.t_max; ++t) {
    Frame fr;
    fr.t = t;
    for (std::size_t i = 0; i < attack.candidate_centers.size(); ++i) {
      bool touches = false;
      for (const NodeId g : spots[i]) {
        // Gates align with frame t, direct register upsets with frame t-1.
        if (cone.contains(t, g) || (t >= 1 && cone.contains(t - 1, g))) {
          touches = true;
          break;
        }
      }
      if (touches) fr.centers.push_back(attack.candidate_centers[i]);
    }
    if (!fr.centers.empty()) frames_.push_back(std::move(fr));
  }
  FAV_ENSURE_MSG(!frames_.empty(),
                "no candidate spot touches the responding signal's cones");
}

FaultSample ConeSampler::draw(Rng& rng) {
  // g: uniform over non-empty frames, then uniform over that frame's
  // in-cone candidates, radius uniform (same as f).
  const Frame& fr = frames_[rng.uniform_below(frames_.size())];
  FaultSample s;
  s.t = fr.t;
  s.center = fr.centers[rng.uniform_below(fr.centers.size())];
  s.radius = attack_->radii[rng.uniform_below(attack_->radii.size())];
  s.strike_frac = attack_->draw_strike_frac(rng);
  s.impact_cycles = attack_->impact_cycles;
  const double f_tc = 1.0 / (static_cast<double>(attack_->t_count()) *
                             static_cast<double>(attack_->candidate_centers.size()));
  const double g_tc = 1.0 / (static_cast<double>(frames_.size()) *
                             static_cast<double>(fr.centers.size()));
  s.weight = f_tc / g_tc;
  return s;
}

GlitchSampler::GlitchSampler(const faultsim::ClockGlitchAttackModel& model,
                             std::uint64_t target_cycle)
    : model_(model) {
  model_.check_valid(target_cycle);
}

FaultSample GlitchSampler::draw(Rng& rng) {
  FaultSample s;
  s.technique = faultsim::TechniqueKind::kClockGlitch;
  s.t = rng.uniform_int(model_.t_min, model_.t_max);
  s.depth = model_.depths[rng.uniform_below(model_.depths.size())];
  s.weight = 1.0;  // g == f: the draw is the holistic model itself
  return s;
}

VoltageGlitchSampler::VoltageGlitchSampler(
    const faultsim::VoltageGlitchAttackModel& model,
    std::uint64_t target_cycle)
    : model_(model) {
  model_.check_valid(target_cycle);
}

FaultSample VoltageGlitchSampler::draw(Rng& rng) {
  FaultSample s;
  s.technique = faultsim::TechniqueKind::kVoltageGlitch;
  s.t = rng.uniform_int(model_.t_min, model_.t_max);
  s.depth = model_.droops[rng.uniform_below(model_.droops.size())];
  s.weight = 1.0;  // g == f: the draw is the holistic model itself
  return s;
}

ImportanceSampler::ImportanceSampler(const precharac::SamplingModel& model)
    : model_(&model) {}

FaultSample ImportanceSampler::draw(Rng& rng) { return model_->sample(rng); }

}  // namespace fav::mc
