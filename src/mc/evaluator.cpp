#include "mc/evaluator.h"

#include <set>
#include <unordered_set>

namespace fav::mc {

using rtl::Machine;
using rtl::RegisterMap;

SsfEvaluator::SsfEvaluator(
    const soc::SocNetlist& soc, const layout::Placement& placement,
    const faultsim::InjectionSimulator& injector,
    const soc::SecurityBenchmark& bench, const rtl::GoldenRun& golden,
    const precharac::RegisterCharacterization* characterization,
    const EvaluatorConfig& config)
    : soc_(&soc),
      placement_(&placement),
      injector_(&injector),
      bench_(&bench),
      golden_(&golden),
      charac_(characterization),
      config_(config),
      analytical_(bench, golden) {
  target_cycle_ = analytical_.target_cycle();
  FAV_CHECK(config.trace_stride > 0);
}

bool SsfEvaluator::decide_outcome(rtl::Machine& machine,
                                  const std::vector<int>& flips,
                                  std::uint64_t first_faulty_cycle,
                                  OutcomePath* path) const {
  if (flips.empty()) {
    if (path != nullptr) *path = OutcomePath::kMasked;
    return false;
  }
  if (config_.use_analytical && charac_ != nullptr) {
    bool all_memory_type = true;
    for (const int bit : flips) {
      if (!charac_->is_memory_type(bit)) {
        all_memory_type = false;
        break;
      }
    }
    if (all_memory_type) {
      const auto verdict =
          analytical_.evaluate(machine.state(), first_faulty_cycle);
      if (verdict.has_value()) {
        if (path != nullptr) *path = OutcomePath::kAnalytical;
        return *verdict;
      }
    }
  }
  if (path != nullptr) *path = OutcomePath::kRtl;
  while (!machine.halted() && machine.cycle() < bench_->max_cycles) {
    machine.step();
  }
  return bench_->attack_succeeded(machine.state(), machine.ram());
}

bool SsfEvaluator::outcome_for_flips(std::uint64_t te,
                                     const std::vector<int>& flips,
                                     OutcomePath* path) const {
  const RegisterMap& map = Machine::reg_map();
  if (flips.empty()) {
    if (path != nullptr) *path = OutcomePath::kMasked;
    return false;
  }
  // Execute the injection cycle at RTL level, then overlay the latched
  // errors: they take effect from cycle te+1 (Fig. 5 step 5).
  Machine machine = golden_->restore(te);
  machine.step();
  for (const int bit : flips) map.flip_bit(machine.mutable_state(), bit);
  return decide_outcome(machine, flips, te + 1, path);
}

SampleRecord SsfEvaluator::evaluate_sample(
    const faultsim::FaultSample& sample) const {
  SampleRecord rec;
  rec.sample = sample;
  FAV_CHECK_MSG(sample.t >= 0, "negative timing distance not supported");
  if (static_cast<std::uint64_t>(sample.t) > target_cycle_) {
    // Injection before the program starts: nothing to strike.
    rec.te = 0;
    rec.path = OutcomePath::kMasked;
    return rec;
  }
  rec.te = target_cycle_ - static_cast<std::uint64_t>(sample.t);

  // Gate-level injection cycle(s). Multi-cycle impact (sample.impact_cycles
  // > 1) strikes the same spot on consecutive cycles: each cycle is settled
  // on the *already-corrupted* state, its latched errors overlaid, and the
  // machine advanced — the paper's "multi-cycle impact" extension.
  FAV_CHECK_MSG(sample.impact_cycles >= 1, "impact_cycles must be >= 1");
  const auto struck = placement_->nodes_within(sample.center, sample.radius);
  const double strike_time =
      sample.strike_frac * injector_->timing().clock_period();
  const RegisterMap& map = Machine::reg_map();

  Machine machine = golden_->restore(rec.te);
  soc::GateLevelMachine gate(*soc_, golden_->program());
  std::set<int> flipped;
  for (int j = 0; j < sample.impact_cycles && !machine.halted(); ++j) {
    gate.load_state(machine.state());
    gate.mutable_ram() = machine.ram();
    gate.settle_inputs();
    const auto inj = injector_->inject(gate.sim(), struck, strike_time);
    machine.step();
    for (const netlist::NodeId dff : inj.flipped_dffs) {
      const int bit = soc_->flat_bit_for_dff(dff);
      FAV_CHECK(bit >= 0);
      map.flip_bit(machine.mutable_state(), bit);
      flipped.insert(bit);
    }
  }
  rec.flipped_bits.assign(flipped.begin(), flipped.end());

  // `machine` is already positioned just past the last injection cycle with
  // every latched error overlaid; for impact_cycles == 1 this is exactly the
  // state outcome_for_flips would reconstruct.
  rec.success = decide_outcome(
      machine, rec.flipped_bits,
      rec.te + static_cast<std::uint64_t>(sample.impact_cycles), &rec.path);
  rec.contribution = rec.success ? sample.weight : 0.0;
  return rec;
}

SsfResult SsfEvaluator::run(Sampler& sampler, Rng& rng, std::size_t n) const {
  const RegisterMap& map = Machine::reg_map();
  SsfResult result;
  for (std::size_t i = 0; i < n; ++i) {
    SampleRecord rec = evaluate_sample(sampler.draw(rng));
    result.stats.add(rec.contribution);
    switch (rec.path) {
      case OutcomePath::kMasked: ++result.masked; break;
      case OutcomePath::kAnalytical: ++result.analytical; break;
      case OutcomePath::kRtl: ++result.rtl; break;
    }
    if (rec.success) {
      ++result.successes;
      std::unordered_set<int> fields;
      for (const int bit : rec.flipped_bits) {
        fields.insert(map.locate(bit).first);
      }
      if (!fields.empty()) {
        const double share =
            rec.contribution / static_cast<double>(fields.size());
        for (const int f : fields) result.field_contribution[f] += share;
      }
      if (!rec.flipped_bits.empty()) {
        const double share =
            rec.contribution / static_cast<double>(rec.flipped_bits.size());
        for (const int bit : rec.flipped_bits) {
          result.bit_contribution[bit] += share;
        }
      }
    }
    if ((i + 1) % config_.trace_stride == 0) {
      result.trace.push_back(result.stats.mean());
    }
    if (config_.keep_records) result.records.push_back(std::move(rec));
  }
  return result;
}

}  // namespace fav::mc
